// F3 — The presentation system (the paper's Fig. 3): latency of
// defaultPresentation and reconfigPresentation as the document grows and
// as more viewers pin choices. The paper's architecture hinges on the
// interaction server recomputing the optimal presentation on every viewer
// action, so this must stay interactive (well under a frame) even for
// large records.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "doc/builder.h"
#include "doc/document.h"
#include "doc/tuning.h"

namespace {

using mmconf::Rng;
using mmconf::cpnet::Assignment;
using mmconf::doc::MakeRandomDocument;
using mmconf::doc::MultimediaDocument;
using mmconf::doc::ViewerChoice;

std::vector<ViewerChoice> RandomChoices(const MultimediaDocument& document,
                                        int count, Rng& rng) {
  std::vector<ViewerChoice> choices;
  const auto& components = document.components();
  for (int i = 0; i < count; ++i) {
    const auto* component = components[rng.NextBelow(components.size())];
    std::vector<std::string> domain = component->DomainValueNames();
    choices.push_back(
        {component->name(), domain[rng.NextBelow(domain.size())]});
  }
  return choices;
}

void PrintFigure3() {
  std::printf("== F3: reconfiguration latency vs document size ==\n");
  std::printf("%-10s %-12s %-18s %-18s\n", "leaves", "variables",
              "default(us)", "reconfig-3(us)");
  for (int leaves : {8, 32, 128, 512}) {
    Rng rng(static_cast<uint64_t>(leaves));
    MultimediaDocument document =
        MakeRandomDocument(leaves / 4, leaves, rng).value();
    std::vector<ViewerChoice> choices = RandomChoices(document, 3, rng);
    auto now_us = [] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count() /
             1000.0;
    };
    const int reps = 200;
    double t0 = now_us();
    for (int rep = 0; rep < reps; ++rep) {
      benchmark::DoNotOptimize(document.DefaultPresentation());
    }
    double default_us = (now_us() - t0) / reps;
    double t1 = now_us();
    for (int rep = 0; rep < reps; ++rep) {
      benchmark::DoNotOptimize(document.ReconfigPresentation(choices));
    }
    double reconfig_us = (now_us() - t1) / reps;
    std::printf("%-10d %-12zu %-18.2f %-18.2f\n", leaves,
                document.num_variables(), default_us, reconfig_us);
  }

  // Section 4.4 first alternative: tuning variables conditioned on the
  // measured bandwidth, extended automatically from ordering templates.
  std::printf("\n== Section 4.4 bandwidth tuning (medical record) ==\n");
  std::printf("%-10s %-18s %s\n", "level", "delivery(B)", "CT form");
  MultimediaDocument tuned =
      mmconf::doc::MakeMedicalRecordDocument().value();
  mmconf::doc::AddBandwidthTuning(tuned, "net").value();
  for (auto level : {mmconf::doc::BandwidthLevel::kHigh,
                     mmconf::doc::BandwidthLevel::kMedium,
                     mmconf::doc::BandwidthLevel::kLow}) {
    Assignment config =
        tuned
            .ReconfigPresentation({mmconf::doc::TuningChoice("net", level)})
            .value();
    std::printf("%-10s %-18zu %s\n",
                mmconf::doc::BandwidthLevelToString(level),
                tuned.DeliveryCostBytes(config).value(),
                tuned.PresentationFor(config, "CT").value().name.c_str());
  }
  std::printf("\n");
}

void BM_DefaultPresentation(benchmark::State& state) {
  Rng rng(1);
  MultimediaDocument document =
      MakeRandomDocument(static_cast<int>(state.range(0)) / 4,
                         static_cast<int>(state.range(0)), rng)
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(document.DefaultPresentation());
  }
  state.counters["components"] =
      static_cast<double>(document.num_components());
}
BENCHMARK(BM_DefaultPresentation)->Arg(16)->Arg(64)->Arg(256);

void BM_ReconfigPresentation(benchmark::State& state) {
  Rng rng(2);
  MultimediaDocument document = MakeRandomDocument(16, 64, rng).value();
  std::vector<ViewerChoice> choices =
      RandomChoices(document, static_cast<int>(state.range(0)), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(document.ReconfigPresentation(choices));
  }
  state.counters["choices"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_ReconfigPresentation)->Arg(1)->Arg(4)->Arg(16);

void BM_DeliveryCost(benchmark::State& state) {
  Rng rng(3);
  MultimediaDocument document = MakeRandomDocument(16, 64, rng).value();
  Assignment config = document.DefaultPresentation().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(document.DeliveryCostBytes(config));
  }
}
BENCHMARK(BM_DeliveryCost);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
