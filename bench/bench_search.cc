// S1 (extension) — the intro's intelligent-retrieval scenario: "similar
// cases from the same database" via content descriptors, and supporting
// "views with articles" via TF-IDF text retrieval. Reports retrieval
// quality on a labeled synthetic archive plus query throughput.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "media/synthetic.h"
#include "search/similarity_index.h"
#include "search/text_index.h"
#include "storage/database.h"

namespace {

using namespace mmconf;
using search::SimilarityHit;
using search::SimilarityIndex;
using search::TextIndex;
using storage::DatabaseServer;
using storage::ObjectRef;

/// Archive of phantoms in two "pathology classes": few large structures
/// vs many small ones. A good descriptor retrieves same-class neighbours.
struct Archive {
  DatabaseServer db;
  std::vector<ObjectRef> refs;
  std::vector<int> labels;
  std::unique_ptr<SimilarityIndex> index;

  explicit Archive(int per_class) {
    db.RegisterStandardTypes().ok();
    Rng rng(99);
    for (int cls = 0; cls < 2; ++cls) {
      for (int i = 0; i < per_class; ++i) {
        media::PhantomOptions options;
        options.width = 128;
        options.height = 128;
        options.num_structures = cls == 0 ? 2 : 12;
        options.noise_stddev = 2.0;
        media::Image image = media::MakePhantomCt(options, rng);
        ObjectRef ref = db.Store("Image",
                                 {{"FLD_QUALITY", int64_t{90}},
                                  {"FLD_TEXTS",
                                   std::string(cls == 0 ? "sparse"
                                                        : "dense")},
                                  {"FLD_CM", std::string("t")}},
                                 {{"FLD_DATA", image.Encode()}})
                            .value();
        refs.push_back(ref);
        labels.push_back(cls);
      }
    }
    index = std::make_unique<SimilarityIndex>(&db);
    index->AddAllImages().value();
  }
};

void PrintRetrievalQuality() {
  std::printf("== S1: similar-case retrieval quality "
              "(2 pathology classes, 20 images each) ==\n");
  Archive archive(20);
  std::printf("%-6s %s\n", "k", "same-class precision@k");
  for (int k : {1, 3, 5}) {
    double precision_sum = 0;
    for (size_t q = 0; q < archive.refs.size(); ++q) {
      std::vector<SimilarityHit> hits =
          archive.index->QuerySimilarTo(archive.refs[q], k).value();
      int same = 0;
      for (const SimilarityHit& hit : hits) {
        for (size_t j = 0; j < archive.refs.size(); ++j) {
          if (archive.refs[j] == hit.ref &&
              archive.labels[j] == archive.labels[q]) {
            ++same;
          }
        }
      }
      precision_sum +=
          static_cast<double>(same) / static_cast<double>(hits.size());
    }
    std::printf("%-6d %.3f\n", k,
                precision_sum / static_cast<double>(archive.refs.size()));
  }

  std::printf("\n== S1: text retrieval over consultation notes ==\n");
  DatabaseServer db;
  db.RegisterStandardTypes().ok();
  const char* notes[] = {
      "ct shows a lesion in the left lung upper lobe",
      "lungs clear no abnormality detected on ct",
      "echo normal ejection fraction no pericardial effusion",
      "followup the lung lesion is stable in size",
      "mri brain unremarkable no mass lesion",
  };
  for (const char* note : notes) {
    std::string text(note);
    db.Store("Text", {{"FLD_TITLE", std::string("note")}},
             {{"FLD_DATA", Bytes(text.begin(), text.end())}})
        .value();
  }
  TextIndex text_index(&db);
  text_index.AddAllTexts().value();
  for (const char* query : {"lung lesion", "ejection fraction"}) {
    auto hits = text_index.Query(query, 3).value();
    std::printf("query \"%s\": %zu hits, top object #%llu (score %.3f)\n",
                query, hits.size(),
                static_cast<unsigned long long>(hits.empty()
                                                    ? 0
                                                    : hits[0].ref.id),
                hits.empty() ? 0.0 : hits[0].score);
  }
  std::printf("\n");
}

void BM_SimilarityQuery(benchmark::State& state) {
  Archive archive(static_cast<int>(state.range(0)));
  Rng rng(5);
  media::Image query = media::MakePhantomCt({128, 128, 5, 2.0}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(archive.index->QueryImage(query, 5));
  }
  state.counters["indexed"] = static_cast<double>(archive.refs.size());
}
BENCHMARK(BM_SimilarityQuery)->Arg(10)->Arg(50);

void BM_DescribeImage(benchmark::State& state) {
  Rng rng(6);
  media::Image image = media::MakePhantomCt({256, 256, 5, 2.0}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(search::DescribeImage(image));
  }
}
BENCHMARK(BM_DescribeImage);

void BM_TextQuery(benchmark::State& state) {
  DatabaseServer db;
  db.RegisterStandardTypes().ok();
  Rng rng(7);
  const char* vocabulary[] = {"lesion", "lung",  "ct",    "normal",
                              "stable", "brain", "heart", "report"};
  for (int i = 0; i < 200; ++i) {
    std::string text;
    for (int w = 0; w < 30; ++w) {
      text += vocabulary[rng.NextBelow(8)];
      text += ' ';
    }
    db.Store("Text", {{"FLD_TITLE", std::string("n")}},
             {{"FLD_DATA", Bytes(text.begin(), text.end())}})
        .value();
  }
  TextIndex index(&db);
  index.AddAllTexts().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(index.Query("lung lesion stable", 10));
  }
}
BENCHMARK(BM_TextQuery);

}  // namespace

int main(int argc, char** argv) {
  PrintRetrievalQuality();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
