// Trace-driven chaos suite: seeded workload scenarios (lecture flash
// crowds, medical consults, mixed rooms) replayed against the full
// stack — federated interaction tier over the sharded durable database,
// streams, broadcast fan-out — with net, storage and stream faults
// injected concurrently, asserting the whole-run invariants: no base
// layer ever dropped, byte-exact storage recovery after every shard
// crash, Serialize()-level room convergence, and bounded stall /
// tail-latency budgets.
//
// Results are printed and written as machine-readable JSON
// (BENCH_chaos.json; override with --json_out=PATH). --smoke runs the
// scenario-mix x seed matrix and exits nonzero when any invariant
// breaks. A failing cell prints the exact command line that replays it
// locally; --scenario=NAME --seed=N runs that one cell. --seed_base=B
// and --seeds=N widen the seed range (the nightly CI leg's sweep).
//
// --metrics_out=PATH dumps the obs MetricsRegistry snapshot of the
// first failing cell (or the last cell when all held) and
// --trace_out=PATH the corresponding workload trace text — the
// artifacts CI uploads for replay.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_obs.h"
#include "workload/chaos.h"
#include "workload/generator.h"

namespace {

using namespace mmconf;

/// --node_loss: run every cell with WAL-shipping replication (one
/// follower per shard) and a scheduled primary-loss event, so follower
/// promotion is exercised under the standing chaos gate.
bool g_node_loss = false;

workload::GeneratorOptions OptionsFor(workload::ScenarioMix mix) {
  workload::GeneratorOptions options;
  options.mix = mix;
  switch (mix) {
    case workload::ScenarioMix::kLecture:
      options.rooms = 1;
      options.clients = 8;
      options.duration_micros = 12'000'000;
      break;
    case workload::ScenarioMix::kConsult:
      options.rooms = 3;
      options.clients = 10;
      options.duration_micros = 10'000'000;
      break;
    case workload::ScenarioMix::kBrowse:
      options.rooms = 5;
      options.clients = 6;
      options.duration_micros = 10'000'000;
      break;
    case workload::ScenarioMix::kMixed:
      options.rooms = 3;
      options.clients = 12;
      options.duration_micros = 12'000'000;
      break;
  }
  options.inject_node_loss = g_node_loss;
  return options;
}

struct ChaosCell {
  workload::ScenarioMix mix = workload::ScenarioMix::kConsult;
  uint64_t seed = 0;
  workload::ChaosReport report;
};

workload::WorkloadTrace GenerateCell(workload::ScenarioMix mix,
                                     uint64_t seed) {
  workload::WorkloadGenerator generator(seed, OptionsFor(mix));
  return generator.Generate();
}

ChaosCell RunCell(workload::ScenarioMix mix, uint64_t seed,
                  obs::MetricsRegistry* metrics) {
  ChaosCell cell;
  cell.mix = mix;
  cell.seed = seed;
  workload::WorkloadTrace trace = GenerateCell(mix, seed);
  workload::ChaosOptions chaos_options;
  if (g_node_loss) chaos_options.replication_followers = 1;
  workload::ChaosDriver driver(chaos_options, metrics);
  cell.report = driver.Run(trace).value();
  return cell;
}

void PrintCell(const ChaosCell& cell, const char* argv0) {
  const workload::ChaosReport& r = cell.report;
  std::printf("%-8s %-6llu %-7zu %-7zu %-5zu %-6zu %-5zu %-7zu %-8zu "
              "%-10zu %s\n",
              workload::ScenarioMixToString(cell.mix),
              static_cast<unsigned long long>(cell.seed), r.events_total,
              r.events_applied, r.events_skipped, r.migrations,
              r.shard_crashes, r.streams_opened, r.broadcast_frames,
              r.wire_bytes, r.invariants.AllHeld() ? "held" : "VIOLATED");
  if (!r.invariants.AllHeld()) {
    for (const std::string& violation : r.invariants.violations) {
      std::printf("    violation: %s\n", violation.c_str());
    }
    for (const std::string& sample : r.skip_samples) {
      std::printf("    skipped: %s\n", sample.c_str());
    }
    std::printf("    repro: %s --smoke%s --scenario=%s --seed=%llu "
                "--metrics_out=chaos-metrics.json "
                "--trace_out=chaos-trace.txt\n",
                argv0, g_node_loss ? " --node_loss" : "",
                workload::ScenarioMixToString(cell.mix),
                static_cast<unsigned long long>(cell.seed));
  }
}

bool WriteJson(const std::string& path, const std::vector<ChaosCell>& cells,
               bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"chaos_suite\",\n"
               "  \"smoke\": %s,\n  \"cells\": [\n",
               smoke ? "true" : "false");
  for (size_t i = 0; i < cells.size(); ++i) {
    const ChaosCell& cell = cells[i];
    const workload::ChaosReport& r = cell.report;
    const workload::InvariantReport& inv = r.invariants;
    std::fprintf(
        out,
        "    {\"scenario\": \"%s\", \"seed\": %llu, \"events\": %zu, "
        "\"applied\": %zu, \"skipped\": %zu, \"rooms_opened\": %zu, "
        "\"rooms_closed\": %zu, \"migrations\": %zu, "
        "\"migrations_failed\": %zu, \"shard_crashes\": %zu, "
        "\"node_losses\": %zu, \"promotions\": %zu, "
        "\"streams\": %zu, \"frames\": %zu, \"wire_bytes\": %zu, "
        "\"end_ms\": %.1f, \"max_stall_ms\": %.2f, \"max_t2c_ms\": %.2f, "
        "\"base_layers_intact\": %s, \"storage_recovery_exact\": %s, "
        "\"rooms_converged\": %s, \"serialize_converged\": %s, "
        "\"stalls_within_budget\": %s, \"t2c_within_budget\": %s, "
        "\"replication_failover_exact\": %s, "
        "\"invariants_held\": %s}%s\n",
        workload::ScenarioMixToString(cell.mix),
        static_cast<unsigned long long>(cell.seed), r.events_total,
        r.events_applied, r.events_skipped, r.rooms_opened, r.rooms_closed,
        r.migrations, r.migrations_failed, r.shard_crashes, r.node_losses,
        r.promotions, r.streams_opened, r.broadcast_frames, r.wire_bytes,
        static_cast<double>(r.end_micros) / 1000.0,
        static_cast<double>(r.max_stall_micros) / 1000.0,
        static_cast<double>(r.max_t2c_micros) / 1000.0,
        inv.base_layers_intact ? "true" : "false",
        inv.storage_recovery_exact ? "true" : "false",
        inv.rooms_converged ? "true" : "false",
        inv.serialize_converged ? "true" : "false",
        inv.stalls_within_budget ? "true" : "false",
        inv.t2c_within_budget ? "true" : "false",
        inv.replication_failover_exact ? "true" : "false",
        inv.AllHeld() ? "true" : "false", i + 1 < cells.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  return bench::CloseChecked(out, path);
}

void BM_GenerateTrace(benchmark::State& state) {
  auto mix = static_cast<workload::ScenarioMix>(state.range(0));
  uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GenerateCell(mix, seed++));
  }
}
BENCHMARK(BM_GenerateTrace)->Arg(0)->Arg(1)->Arg(3);

void BM_ChaosConsultRun(benchmark::State& state) {
  // One full consult-mix chaos run end to end (generation + replay +
  // invariant checks), all in virtual time.
  uint64_t seed = 1;
  for (auto _ : state) {
    obs::MetricsRegistry metrics;
    benchmark::DoNotOptimize(
        RunCell(workload::ScenarioMix::kConsult, seed++, &metrics));
  }
}
BENCHMARK(BM_ChaosConsultRun);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_chaos.json";
  std::string metrics_path;
  std::string trace_path;
  std::string only_scenario;
  uint64_t only_seed = 0;
  bool have_only_seed = false;
  uint64_t seed_base = 1;
  size_t num_seeds = 3;
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--node_loss") == 0) {
      g_node_loss = true;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace_out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else if (std::strncmp(argv[i], "--scenario=", 11) == 0) {
      only_scenario = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      only_seed = std::strtoull(argv[i] + 7, nullptr, 10);
      have_only_seed = true;
    } else if (std::strncmp(argv[i], "--seed_base=", 12) == 0) {
      seed_base = std::strtoull(argv[i] + 12, nullptr, 10);
    } else if (std::strncmp(argv[i], "--seeds=", 8) == 0) {
      num_seeds = std::strtoull(argv[i] + 8, nullptr, 10);
      if (num_seeds == 0) num_seeds = 1;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // An unwritable output path should fail before the sweep, not after.
  if (!bench::ProbeWritable(json_path)) return 1;
  if (!metrics_path.empty() && !bench::ProbeWritable(metrics_path)) return 1;
  if (!trace_path.empty() && !bench::ProbeWritable(trace_path)) return 1;

  std::vector<workload::ScenarioMix> mixes = {
      workload::ScenarioMix::kLecture, workload::ScenarioMix::kConsult,
      workload::ScenarioMix::kMixed};
  if (!only_scenario.empty()) {
    Result<workload::ScenarioMix> parsed =
        workload::ScenarioMixFromString(only_scenario);
    if (!parsed.ok()) {
      std::fprintf(stderr, "%s\n", parsed.status().ToString().c_str());
      return 1;
    }
    mixes = {parsed.value()};
  }
  std::vector<uint64_t> seeds;
  if (have_only_seed) {
    seeds = {only_seed};
  } else {
    for (size_t i = 0; i < num_seeds; ++i) seeds.push_back(seed_base + i);
  }

  std::printf("== chaos: %zu scenario mix(es) x %zu seed(s), "
              "net+storage+stream faults injected ==\n",
              mixes.size(), seeds.size());
  std::printf("%-8s %-6s %-7s %-7s %-5s %-6s %-5s %-7s %-8s %-10s %s\n",
              "mix", "seed", "events", "applied", "skip", "migr", "crash",
              "streams", "frames", "wire(B)", "invariants");
  std::vector<ChaosCell> cells;
  bool healthy = true;
  std::string artifact_metrics;
  std::string artifact_trace;
  for (workload::ScenarioMix mix : mixes) {
    for (uint64_t seed : seeds) {
      obs::MetricsRegistry metrics;
      ChaosCell cell = RunCell(mix, seed, &metrics);
      PrintCell(cell, argv[0]);
      bool held = cell.report.invariants.AllHeld();
      // Keep the first failing cell's artifacts (or the last cell's,
      // when everything held) for --metrics_out / --trace_out: capture
      // while no failure has been seen, then stop overwriting.
      if (healthy && (!metrics_path.empty() || !trace_path.empty())) {
        artifact_metrics = metrics.Snapshot().ToJson();
        artifact_trace = GenerateCell(mix, seed).ToText();
      }
      if (!held) healthy = false;
      cells.push_back(std::move(cell));
    }
  }

  bool wrote = WriteJson(json_path, cells, smoke);
  if (!metrics_path.empty()) {
    wrote = bench::WriteFileChecked(metrics_path, artifact_metrics) && wrote;
  }
  if (!trace_path.empty()) {
    wrote = bench::WriteFileChecked(trace_path, artifact_trace) && wrote;
  }
  if (smoke) {
    // ctest / CI gate: fail when any invariant breaks or a report
    // cannot be produced.
    return healthy && wrote ? 0 : 1;
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return healthy && wrote ? 0 : 1;
}
