// F8 — The shared "room" (the paper's Fig. 8): join latency, change
// propagation fan-out as the room grows ("If a client makes a change on
// a multi-media object, that change is immediately propagated to other
// clients in the room"), and the cost of the room's reconfiguration
// machinery.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "doc/builder.h"
#include "net/network.h"
#include "server/interaction_server.h"
#include "storage/database.h"

namespace {

using namespace mmconf;

struct Fleet {
  Clock clock;
  storage::DatabaseServer db;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<server::InteractionServer> server;
  net::NodeId server_node = 0, db_node = 0;
  std::vector<net::NodeId> clients;

  explicit Fleet(int num_clients) {
    network = std::make_unique<net::Network>(&clock);
    server_node = network->AddNode("server");
    db_node = network->AddNode("db");
    network->SetDuplexLink(server_node, db_node, {50e6, 500}).ok();
    for (int i = 0; i < num_clients; ++i) {
      net::NodeId node = network->AddNode("client-" + std::to_string(i));
      // Heterogeneous downlinks: 2 MB/s down to 128 KB/s.
      double bandwidth = 2e6 / (1 + i % 4);
      network->SetDuplexLink(server_node, node, {bandwidth, 20000}).ok();
      clients.push_back(node);
    }
    db.RegisterStandardTypes().ok();
    server = std::make_unique<server::InteractionServer>(
        &db, network.get(), server_node, db_node);
    doc::MultimediaDocument document =
        doc::MakeMedicalRecordDocument().value();
    storage::ObjectRef ref = server->StoreDocument(document, "p").value();
    server->OpenRoom("room", ref).value();
    for (int i = 0; i < num_clients; ++i) {
      server->Join("room", {"viewer-" + std::to_string(i), clients[i]})
          .value();
    }
    network->AdvanceUntilIdle();
  }
};

void PrintFigure8() {
  std::printf("== F8: change propagation fan-out vs room size ==\n");
  std::printf("%-10s %-16s %-18s %-16s\n", "clients", "delta(B)",
              "last-settled(ms)", "bytes-pushed");
  for (int n : {2, 4, 8, 16, 32}) {
    Fleet fleet(n);
    size_t pushed_before = fleet.server->bytes_propagated();
    MicrosT t0 = fleet.clock.NowMicros();
    server::ReconfigResult result =
        fleet.server->SubmitChoice("room", "viewer-0", "CT", "hidden")
            .value();
    fleet.network->AdvanceUntilIdle();
    std::printf("%-10d %-16zu %-18.2f %-16zu\n", n,
                result.delta_cost_bytes,
                (fleet.clock.NowMicros() - t0) / 1000.0,
                fleet.server->bytes_propagated() - pushed_before);
  }
  std::printf("\n");
}

void BM_SubmitChoiceFanout(benchmark::State& state) {
  Fleet fleet(static_cast<int>(state.range(0)));
  bool hide = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(fleet.server->SubmitChoice(
        "room", "viewer-0", "CT", hide ? "hidden" : "flat"));
    hide = !hide;
    fleet.network->AdvanceUntilIdle();
  }
  state.counters["clients"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_SubmitChoiceFanout)->Arg(2)->Arg(8)->Arg(32);

void BM_JoinRoom(benchmark::State& state) {
  Fleet fleet(1);
  int i = 100;
  for (auto _ : state) {
    net::NodeId node =
        fleet.network->AddNode("late-" + std::to_string(i));
    fleet.network->SetDuplexLink(fleet.server_node, node, {1e6, 20000})
        .ok();
    benchmark::DoNotOptimize(fleet.server->Join(
        "room", {"late-" + std::to_string(i), node}));
    ++i;
    fleet.network->AdvanceUntilIdle();
  }
}
BENCHMARK(BM_JoinRoom);

void BM_FreezeReleaseCycle(benchmark::State& state) {
  Fleet fleet(2);
  server::Room* room = fleet.server->GetRoom("room").value();
  for (auto _ : state) {
    room->Freeze("viewer-0", "CT").ok();
    room->ReleaseFreeze("viewer-0", "CT").ok();
  }
}
BENCHMARK(BM_FreezeReleaseCycle);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure8();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
