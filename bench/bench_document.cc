// F6 — The multimedia document model (the paper's Fig. 6 OOD):
// construction, serialization, and per-query costs of the document
// operations every other tier leans on (visibility, presentation lookup,
// delivery cost, encode/decode for BLOB storage).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "doc/builder.h"
#include "doc/document.h"

namespace {

using mmconf::Bytes;
using mmconf::Rng;
using mmconf::cpnet::Assignment;
using mmconf::doc::MakeMedicalRecordDocument;
using mmconf::doc::MakeRandomDocument;
using mmconf::doc::MultimediaDocument;

void PrintFigure6() {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  std::printf("== F6: medical record document (Fig. 6 entity relation) ==\n");
  std::printf("components: %zu (CP-net variables: %zu)\n",
              document.num_components(), document.num_variables());
  Bytes encoded = document.Encode();
  std::printf("serialized document: %zu bytes\n", encoded.size());
  std::printf("\n%-10s %-12s %-14s\n", "leaves", "variables",
              "encoded(B)");
  for (int leaves : {8, 32, 128}) {
    Rng rng(static_cast<uint64_t>(leaves));
    MultimediaDocument random =
        MakeRandomDocument(leaves / 4, leaves, rng).value();
    std::printf("%-10d %-12zu %-14zu\n", leaves, random.num_variables(),
                random.Encode().size());
  }
  std::printf("\n");
}

void BM_BuildMedicalRecord(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MakeMedicalRecordDocument());
  }
}
BENCHMARK(BM_BuildMedicalRecord);

void BM_EncodeDocument(benchmark::State& state) {
  Rng rng(1);
  MultimediaDocument document =
      MakeRandomDocument(static_cast<int>(state.range(0)) / 4,
                         static_cast<int>(state.range(0)), rng)
          .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(document.Encode());
  }
}
BENCHMARK(BM_EncodeDocument)->Arg(16)->Arg(128);

void BM_DecodeDocument(benchmark::State& state) {
  Rng rng(2);
  MultimediaDocument document =
      MakeRandomDocument(static_cast<int>(state.range(0)) / 4,
                         static_cast<int>(state.range(0)), rng)
          .value();
  Bytes encoded = document.Encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(MultimediaDocument::Decode(encoded));
  }
}
BENCHMARK(BM_DecodeDocument)->Arg(16)->Arg(128);

void BM_VisibilityQuery(benchmark::State& state) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  Assignment config = document.DefaultPresentation().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(document.IsVisible(config, "CT"));
  }
}
BENCHMARK(BM_VisibilityQuery);

void BM_AddOperationVariable(benchmark::State& state) {
  int i = 0;
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(document.AddOperationVariable(
        "CT", "flat", "op" + std::to_string(i++)));
  }
}
BENCHMARK(BM_AddOperationVariable);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure6();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
