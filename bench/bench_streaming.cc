// A4 — Adaptive layered streaming (src/stream/): stall rate and mean
// delivered quality (decodable layers per object) across a downlink
// bandwidth sweep. Each run opens a stream of layered-codec objects
// toward a room member over the reliable transport and drives the
// virtual clock until every object has played: ample links deliver every
// layer on time, squeezed links shed enhancement layers (never the base)
// to protect continuity.
//
// Results are printed and written as machine-readable JSON
// (BENCH_streaming.json; override with --json_out=PATH). --smoke shrinks
// the sweep for a ctest-able perf smoke run and exits nonzero when a
// streaming invariant breaks (a base layer dropped, a stream aborted, a
// stall on the ample link) or the JSON cannot be written.
//
// --metrics_out=PATH additionally dumps the obs MetricsRegistry snapshot
// (byte-identical across runs — the simulation is deterministic) and
// --trace_out=PATH a Chrome trace_event timeline of the whole sweep
// (one pid namespace per sweep point; open in chrome://tracing or
// Perfetto).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_obs.h"
#include "common/rng.h"
#include "compress/layered_codec.h"
#include "doc/builder.h"
#include "media/synthetic.h"
#include "net/network.h"
#include "net/reliable.h"
#include "server/interaction_server.h"
#include "storage/database.h"
#include "stream/chunker.h"
#include "stream/playout.h"
#include "stream/scheduler.h"

namespace {

using namespace mmconf;
using compress::LayeredCodec;

std::vector<Bytes> EncodeObjects(size_t count, int side, uint64_t seed) {
  Rng rng(seed);
  std::vector<Bytes> objects;
  LayeredCodec codec;
  for (size_t k = 0; k < count; ++k) {
    media::Image image = media::MakePhantomCt({side, side, 5, 2.0}, rng);
    objects.push_back(codec.Encode(image).value());
  }
  return objects;
}

struct SweepRow {
  double bandwidth_bytes_per_sec = 0;
  size_t objects = 0;
  size_t objects_played = 0;
  size_t stalls = 0;
  double stall_rate = 0;         ///< stalled objects / played objects
  double mean_stall_ms = 0;      ///< stall time per stalled object
  double mean_layers = 0;        ///< decodable layers per played object
  int min_layers = 0;
  size_t layers_dropped = 0;
  size_t bytes_sent = 0;
  size_t full_bytes = 0;         ///< what full quality would have cost
  bool finished = false;
  bool aborted = false;
};

/// Streams `objects` to one room member over a `bandwidth` B/s downlink
/// (20 ms latency) and reports the delivered quality. `sinks` (optional)
/// collects metrics and the trace timeline; `index` namespaces this
/// fleet's trace pids.
SweepRow RunSweepPoint(const std::vector<Bytes>& objects, double bandwidth,
                       MicrosT interval_micros,
                       const bench::ObsSinks& sinks = {}, int index = 0) {
  Clock clock;
  net::Network network(&clock, /*fault_seed=*/0x57ea3ull);
  net::NodeId server_node = network.AddNode("interaction-server");
  net::NodeId db_node = network.AddNode("oracle");
  net::NodeId client = network.AddNode("client");
  network.SetDuplexLink(server_node, db_node, {50e6, 1000}).ok();
  network.SetDuplexLink(server_node, client, {bandwidth, 20000}).ok();

  storage::DatabaseServer db;
  db.RegisterStandardTypes().ok();
  server::InteractionServer server(&db, &network, server_node, db_node);
  net::ReliableTransport transport(&network);
  server.UseReliableTransport(&transport);
  if (sinks.enabled()) {
    sinks.BeginFleet(&clock, index);
    network.SetObserver(sinks.metrics, sinks.tracer);
    transport.SetObserver(sinks.metrics, sinks.tracer);
    server.SetObserver(sinks.metrics, sinks.tracer);
  }
  server
      .OpenRoomWithDocument("consult",
                            doc::MakeMedicalRecordDocument().value())
      .value();
  server.Join("consult", {"radiologist", client}).value();
  transport.AdvanceUntilIdle();

  stream::StreamOptions options;
  options.start_deadline_micros = clock.NowMicros() + 2 * interval_micros;
  options.interval_micros = interval_micros;
  options.chunk_bytes = 4 << 10;
  stream::StreamId id =
      server.OpenStream("consult", "radiologist", objects, options).value();
  server.AdvanceStreamsUntilIdle().value();

  stream::StreamStats stats = server.StreamSessionStats(id).value();
  SweepRow row;
  row.bandwidth_bytes_per_sec = bandwidth;
  row.objects = objects.size();
  row.objects_played = stats.playout.objects_played;
  row.stalls = stats.playout.stalls;
  row.stall_rate =
      stats.playout.objects_played > 0
          ? static_cast<double>(stats.playout.stalls) /
                static_cast<double>(stats.playout.objects_played)
          : 0;
  row.mean_stall_ms =
      stats.playout.stalls > 0
          ? static_cast<double>(stats.playout.total_stall_micros) / 1000.0 /
                static_cast<double>(stats.playout.stalls)
          : 0;
  row.mean_layers = stats.playout.MeanLayers();
  row.min_layers = stats.playout.min_layers;
  row.layers_dropped = stats.layers_dropped;
  row.bytes_sent = stats.bytes_sent;
  for (const Bytes& object : objects) row.full_bytes += object.size();
  row.finished = stats.finished;
  row.aborted = stats.aborted;
  return row;
}

std::vector<SweepRow> RunSweep(bool smoke,
                               const bench::ObsSinks& sinks = {}) {
  const size_t count = smoke ? 4 : 12;
  const int side = smoke ? 64 : 128;
  const MicrosT interval = 150000;
  std::vector<double> bandwidths =
      smoke ? std::vector<double>{8e3, 256e3}
            : std::vector<double>{8e3, 16e3, 32e3, 64e3, 128e3, 1e6};
  std::vector<Bytes> objects = EncodeObjects(count, side, /*seed=*/41);

  std::vector<SweepRow> rows;
  std::printf("== A4: layered streaming across downlink bandwidths "
              "(%zu objects, %d ms cadence, %s) ==\n",
              count, static_cast<int>(interval / 1000),
              smoke ? "smoke" : "full");
  std::printf("%-14s %-10s %-12s %-14s %-12s %-12s %-14s %-12s\n",
              "bandwidth", "stalls", "stall-rate", "mean-stall(ms)",
              "mean-layers", "min-layers", "layers-drop", "bytes-sent");
  for (size_t i = 0; i < bandwidths.size(); ++i) {
    double bandwidth = bandwidths[i];
    SweepRow row = RunSweepPoint(objects, bandwidth, interval, sinks,
                                 static_cast<int>(i));
    std::printf("%-14.0f %-10zu %-12.2f %-14.1f %-12.2f %-12d %-14zu "
                "%-12zu\n",
                row.bandwidth_bytes_per_sec, row.stalls, row.stall_rate,
                row.mean_stall_ms, row.mean_layers, row.min_layers,
                row.layers_dropped, row.bytes_sent);
    rows.push_back(row);
  }
  std::printf("\n");
  return rows;
}

/// Invariants the sweep must uphold regardless of timing: every stream
/// finishes unaborted with at least the base layer of every object, and
/// the fastest link in the sweep delivers full quality with zero stalls.
bool CheckInvariants(const std::vector<SweepRow>& rows) {
  bool ok = true;
  for (const SweepRow& row : rows) {
    if (!row.finished || row.aborted) {
      std::fprintf(stderr, "FAIL: stream at %.0f B/s did not finish\n",
                   row.bandwidth_bytes_per_sec);
      ok = false;
    }
    if (row.objects_played != row.objects || row.min_layers < 1) {
      std::fprintf(stderr,
                   "FAIL: base-layer continuity broken at %.0f B/s\n",
                   row.bandwidth_bytes_per_sec);
      ok = false;
    }
  }
  if (!rows.empty()) {
    const SweepRow& fastest = rows.back();
    if (fastest.stalls != 0 || fastest.layers_dropped != 0) {
      std::fprintf(stderr, "FAIL: ample link stalled or dropped layers\n");
      ok = false;
    }
  }
  return ok;
}

bool WriteJson(const std::string& path, const std::vector<SweepRow>& rows,
               bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"streaming_bandwidth_sweep\",\n"
               "  \"smoke\": %s,\n  \"sweep\": [\n",
               smoke ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const SweepRow& row = rows[i];
    std::fprintf(
        out,
        "    {\"bandwidth_bytes_per_sec\": %.0f, \"objects\": %zu, "
        "\"objects_played\": %zu, \"stalls\": %zu, \"stall_rate\": %.4f, "
        "\"mean_stall_ms\": %.2f, \"mean_layers\": %.3f, "
        "\"min_layers\": %d, \"layers_dropped\": %zu, "
        "\"bytes_sent\": %zu, \"full_bytes\": %zu, \"finished\": %s, "
        "\"aborted\": %s}%s\n",
        row.bandwidth_bytes_per_sec, row.objects, row.objects_played,
        row.stalls, row.stall_rate, row.mean_stall_ms, row.mean_layers,
        row.min_layers, row.layers_dropped, row.bytes_sent, row.full_bytes,
        row.finished ? "true" : "false", row.aborted ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  return bench::CloseChecked(out, path);
}

void BM_ChunkerPlan(benchmark::State& state) {
  std::vector<Bytes> objects =
      EncodeObjects(1, static_cast<int>(state.range(0)), 5);
  stream::Chunker chunker(4 << 10);
  for (auto _ : state) {
    benchmark::DoNotOptimize(chunker.Plan(objects[0], 1, 0, 0, 1000000));
  }
  state.counters["bytes"] = static_cast<double>(objects[0].size());
}
BENCHMARK(BM_ChunkerPlan)->Arg(64)->Arg(128)->Arg(256);

void BM_StreamToPlayout(benchmark::State& state) {
  std::vector<Bytes> objects = EncodeObjects(4, 64, 6);
  double bandwidth = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunSweepPoint(objects, bandwidth, 150000));
  }
}
BENCHMARK(BM_StreamToPlayout)->Arg(16000)->Arg(256000);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_streaming.json";
  std::string metrics_path;
  std::string trace_path;
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace_out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // An unwritable output path should fail before the sweep, not after.
  if (!bench::ProbeWritable(json_path)) return 1;
  if (!metrics_path.empty() && !bench::ProbeWritable(metrics_path)) return 1;
  if (!trace_path.empty() && !bench::ProbeWritable(trace_path)) return 1;

  obs::MetricsRegistry registry;
  obs::Tracer tracer(nullptr);
  bench::ObsSinks sinks;
  if (!metrics_path.empty()) sinks.metrics = &registry;
  if (!trace_path.empty()) sinks.tracer = &tracer;

  std::vector<SweepRow> rows = RunSweep(smoke, sinks);
  bool ok = CheckInvariants(rows);
  bool wrote = WriteJson(json_path, rows, smoke);
  if (!metrics_path.empty()) {
    wrote = bench::WriteFileChecked(metrics_path,
                                    registry.Snapshot().ToJson()) &&
            wrote;
  }
  if (!trace_path.empty()) {
    wrote = bench::WriteFileChecked(trace_path, tracer.ToJson()) && wrote;
  }
  if (smoke) {
    // ctest perf smoke: fail on a broken streaming invariant or an
    // unwritable report; timing itself is not asserted.
    return ok && wrote ? 0 : 1;
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return ok && wrote ? 0 : 1;
}
