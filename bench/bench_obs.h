// Shared helpers for the bench binaries: hardened report writing and
// the --metrics_out= / --trace_out= observability flags.

#ifndef MMCONF_BENCH_BENCH_OBS_H_
#define MMCONF_BENCH_BENCH_OBS_H_

#include <cstdio>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace mmconf::bench {

/// Fails fast when `path` cannot be opened for writing — run before a
/// long sweep so a bad --json_out path errors in milliseconds, not
/// minutes. Leaves an (empty or existing) file behind; the real report
/// overwrites it.
inline bool ProbeWritable(const std::string& path) {
  std::FILE* out = std::fopen(path.c_str(), "a");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fclose(out);
  return true;
}

/// Writes `content` to `path`, reporting *any* failure — including
/// buffered-write errors (e.g. ENOSPC) that a bare fprintf/fclose
/// sequence silently swallows.
inline bool WriteFileChecked(const std::string& path,
                             const std::string& content) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  size_t written = std::fwrite(content.data(), 1, content.size(), out);
  bool ok = written == content.size() && std::ferror(out) == 0;
  if (std::fclose(out) != 0) ok = false;
  if (!ok) std::fprintf(stderr, "failed writing %s\n", path.c_str());
  return ok;
}

/// Finalizes a hand-fprintf'd report stream: checks the stream error
/// flag and the close result so buffered-write failures turn into a
/// nonzero bench exit instead of a truncated file and a green run.
inline bool CloseChecked(std::FILE* out, const std::string& path) {
  bool ok = std::ferror(out) == 0;
  if (std::fclose(out) != 0) ok = false;
  if (!ok) std::fprintf(stderr, "failed writing %s\n", path.c_str());
  return ok;
}

/// Optional observability sinks a bench threads through its sweep.
/// `pid_stride` spaces the per-fleet pid namespaces so node 0 of sweep
/// point N does not collide with node 0 of sweep point 0 in the trace.
struct ObsSinks {
  obs::MetricsRegistry* metrics = nullptr;
  obs::Tracer* tracer = nullptr;
  int pid_stride = 8;

  bool enabled() const { return metrics != nullptr || tracer != nullptr; }

  /// Points the tracer at sweep point `index`'s clock and pid namespace.
  void BeginFleet(const Clock* clock, int index) const {
    if (tracer == nullptr) return;
    tracer->SetClock(clock);
    tracer->set_pid_offset(index * pid_stride);
  }
};

}  // namespace mmconf::bench

#endif  // MMCONF_BENCH_BENCH_OBS_H_
