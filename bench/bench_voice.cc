// F10 — Speaker identification (the paper's Fig. 10) and the rest of the
// voice module: automatic segmentation accuracy, text-independent speaker
// spotting accuracy (overall and vs. segment length), word spotting
// operating point, plus throughput benchmarks of the CD-HMM machinery.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "audio/segmentation.h"
#include "audio/speaker_spotting.h"
#include "audio/word_spotting.h"
#include "common/rng.h"
#include "media/synthetic.h"

namespace {

using namespace mmconf;
using media::AudioClass;
using media::AudioSegment;
using media::AudioSignal;

struct VoiceBed {
  std::vector<media::SpeakerProfile> speakers;
  std::vector<media::Word> vocab;
  std::vector<media::Conversation> train;
  media::Conversation test;
  audio::AudioSegmenter segmenter;
  audio::SpeakerSpotter speaker_spotter;
  audio::WordSpotter word_spotter;

  VoiceBed() {
    Rng rng(515);
    speakers = media::MakeSpeakers(3, rng);
    vocab = media::MakeVocabulary(4, 3, 6, rng);
    media::ConversationOptions options;
    options.num_turns = 10;
    options.words_per_turn = 2;
    options.music_probability = 0.3;
    options.artifact_probability = 0.3;
    for (int i = 0; i < 3; ++i) {
      train.push_back(media::MakeConversation(speakers, vocab, options, rng));
    }
    test = media::MakeConversation(speakers, vocab, options, rng);

    Rng seg_rng(1);
    segmenter.TrainFromConversations(train, seg_rng).ok();
    std::map<int, std::vector<AudioSignal>> by_speaker, by_keyword;
    std::vector<AudioSignal> garbage;
    for (const media::Conversation& conv : train) {
      for (const AudioSegment& segment : conv.segments) {
        if (segment.cls != AudioClass::kSpeech) continue;
        AudioSignal span = conv.signal.Slice(segment.begin, segment.end);
        by_speaker[segment.speaker].push_back(span);
        if (segment.keyword <= 1) {
          by_keyword[segment.keyword].push_back(span);
        } else {
          garbage.push_back(span);
        }
      }
    }
    Rng spk_rng(2);
    speaker_spotter.Train(by_speaker, {}, spk_rng).ok();
    Rng word_rng(3);
    word_spotter.Train(by_keyword, garbage, word_rng).ok();
  }
};

VoiceBed& Bed() {
  static VoiceBed* bed = new VoiceBed();
  return *bed;
}

void PrintFigure10() {
  VoiceBed& bed = Bed();
  const int rate = bed.test.signal.sample_rate();

  std::vector<AudioSegment> hypothesis =
      bed.segmenter.Segment(bed.test.signal).value();
  double seg_accuracy = audio::SegmentationFrameAccuracy(
      hypothesis, bed.test.segments, bed.test.signal.size());
  std::printf("== F10: automatic audio segmentation ==\n");
  std::printf("recording %.1f s -> %zu segments, frame accuracy %.1f%%\n\n",
              bed.test.signal.DurationSeconds(), hypothesis.size(),
              seg_accuracy * 100);

  std::printf("== F10: speaker spotting (text-independent) ==\n");
  std::vector<audio::SpeakerDetection> detections =
      bed.speaker_spotter.Spot(bed.test.signal, bed.test.segments).value();
  double accuracy =
      audio::SpeakerSpottingAccuracy(detections, bed.test.segments);
  std::printf("segment attribution accuracy: %.1f%% (chance 33%%)\n",
              accuracy * 100);
  std::printf("speakers counted: %d (truth: 3 key speakers)\n\n",
              bed.speaker_spotter
                  .CountSpeakers(bed.test.signal, bed.test.segments)
                  .value());

  std::printf("accuracy vs segment length:\n%-14s %-10s %s\n", "length(s)",
              "segments", "accuracy");
  for (double max_seconds : {0.2, 0.4, 0.8, 10.0}) {
    int total = 0, correct = 0;
    for (const AudioSegment& segment : bed.test.segments) {
      if (segment.cls != AudioClass::kSpeech) continue;
      double seconds = static_cast<double>(segment.length()) / rate;
      if (seconds > max_seconds) continue;
      auto detection = bed.speaker_spotter.ScoreSpan(
          bed.test.signal, segment.begin, segment.end);
      if (!detection.ok()) continue;
      ++total;
      if (detection->speaker == segment.speaker) ++correct;
    }
    if (total > 0) {
      std::printf("<= %-10.1f %-10d %.1f%%\n", max_seconds, total,
                  100.0 * correct / total);
    }
  }

  std::printf("\n== F10: word spotting operating point ==\n");
  std::vector<audio::WordDetection> word_hits =
      bed.word_spotter.Spot(bed.test.signal, bed.test.segments).value();
  std::vector<AudioSegment> watched = bed.test.segments;
  for (AudioSegment& segment : watched) {
    if (segment.keyword > 1) segment.keyword = -1;
  }
  audio::SpottingScore score =
      audio::ScoreWordSpotting(word_hits, watched);
  std::printf("detections=%d false-alarms=%d misses=%d rate=%.1f%%\n\n",
              score.true_detections, score.false_alarms, score.misses,
              score.DetectionRate() * 100);
}

void BM_FeatureExtraction(benchmark::State& state) {
  VoiceBed& bed = Bed();
  audio::FeatureOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        audio::ExtractFeatures(bed.test.signal, options));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(bed.test.signal.size() * 4));
}
BENCHMARK(BM_FeatureExtraction);

void BM_Segment(benchmark::State& state) {
  VoiceBed& bed = Bed();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.segmenter.Segment(bed.test.signal));
  }
}
BENCHMARK(BM_Segment);

void BM_SpeakerScoreSpan(benchmark::State& state) {
  VoiceBed& bed = Bed();
  // First speech segment.
  const AudioSegment* speech = nullptr;
  for (const AudioSegment& segment : bed.test.segments) {
    if (segment.cls == AudioClass::kSpeech) {
      speech = &segment;
      break;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.speaker_spotter.ScoreSpan(
        bed.test.signal, speech->begin, speech->end));
  }
}
BENCHMARK(BM_SpeakerScoreSpan);

void BM_WordScoreSpan(benchmark::State& state) {
  VoiceBed& bed = Bed();
  const AudioSegment* speech = nullptr;
  for (const AudioSegment& segment : bed.test.segments) {
    if (segment.cls == AudioClass::kSpeech) {
      speech = &segment;
      break;
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.word_spotter.ScoreSpan(
        bed.test.signal, speech->begin, speech->end));
  }
}
BENCHMARK(BM_WordScoreSpan);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure10();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
