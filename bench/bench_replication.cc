// Replication failover bench: primary/follower WAL shipping for the
// sharded durable tier (storage/replication) over the lossy simulated
// network. The sweep runs shard-count x drop-rate cells, each driving a
// seeded mutation workload with the shipper pumped between bursts, then
// measures the two failure modes that matter:
//
//  - drained kill (RPO = 0 by contract): the wire is drained, the
//    primary of shard 0 is lost, a follower is promoted, and the
//    promoted image must be byte-identical to a never-crashed control
//    (checkpoint + durable-log replay) — the zero-acked-write-loss
//    invariant, asserted per cell.
//  - abrupt kill (bounded RPO): extra mutations are group-committed but
//    never shipped before the primary of shard 1 dies; the recovery
//    point (acked-but-unshipped records lost) is reported.
//
// Checkpoint/compaction counts, resync time after promotion (virtual
// time: the epoch snapshot + batch resync on the wire), and the
// read-through cache's hit rate across a failover invalidation are
// reported per cell. Everything asserted or written to JSON is
// virtual-time or count based, so BENCH_replication.json gates in CI
// like the other benches (--smoke exits nonzero when an invariant
// breaks). --json_out/--metrics_out/--trace_out as in the other benches.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_obs.h"
#include "common/clock.h"
#include "common/rng.h"
#include "net/network.h"
#include "net/reliable.h"
#include "storage/database.h"
#include "storage/replication.h"
#include "storage/sharded_db.h"
#include "storage/wal.h"

namespace {

using namespace mmconf;
using storage::DatabaseServer;
using storage::ObjectRef;

Bytes RandomBytes(size_t n, Rng& rng) {
  Bytes data(n);
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

struct ReplRow {
  size_t shards = 0;
  double drop = 0.0;
  size_t mutations = 0;
  size_t batches = 0;
  size_t batch_bytes = 0;
  size_t snapshots = 0;
  size_t checkpoints = 0;
  size_t wire_bytes = 0;
  MicrosT end_micros = 0;
  // Drained kill of shard 0's primary.
  size_t drained_replayed = 0;
  bool drained_exact = false;
  MicrosT resync_micros = 0;  ///< wire time to resync followers after it
  // Abrupt kill of shard 1's primary (cells with >= 2 shards).
  size_t abrupt_rpo_records = 0;
  bool abrupt_clean = true;  ///< promoted prefix verified, no divergence
  // Read-through cache across the failover invalidation.
  size_t cache_hits = 0;
  size_t cache_misses = 0;

  bool Ok() const { return drained_exact && abrupt_clean; }
};

/// Drives transport + shipper to quiescence: every committed batch
/// shipped, every ack folded. The generous retry policy below makes
/// message failure (and thus shipper stalls) unreachable at the swept
/// drop rates, so quiescence means fully acked.
bool Pump(net::ReliableTransport& transport, storage::ReplicatedShardSet& repl,
          ReplRow& row) {
  while (true) {
    std::vector<net::Delivery> deliveries = transport.AdvanceUntilIdle();
    size_t consumed = 0;
    for (const net::Delivery& delivery : deliveries) {
      if (repl.HandleDelivery(delivery)) ++consumed;
    }
    Result<storage::ShipReport> shipped = repl.Ship();
    if (!shipped.ok()) return false;
    row.batches += shipped.value().batches;
    row.batch_bytes += shipped.value().batch_bytes;
    row.snapshots += shipped.value().snapshots;
    row.checkpoints += shipped.value().checkpoints;
    if (consumed == 0 && shipped.value().batches == 0 &&
        shipped.value().snapshots == 0) {
      return true;
    }
  }
}

ReplRow RunCell(size_t shards, double drop, size_t mutations,
                const bench::ObsSinks& sinks, int index) {
  ReplRow row;
  row.shards = shards;
  row.drop = drop;
  row.mutations = mutations;

  Clock clock;
  if (sinks.enabled()) sinks.BeginFleet(&clock, index);
  net::Network network(&clock, 0x5eed0e11ull);
  net::NodeId db_node = network.AddNode("db");
  storage::ShardedDatabaseServer::Options db_options;
  db_options.num_shards = shards;
  storage::ShardedDatabaseServer db(&clock, db_options);
  net::RetryPolicy retry{120000, 2.0, 1000000, 12, 1 << 16};
  net::ReliableTransport transport(&network, retry);
  storage::ReplicationOptions repl_options;
  repl_options.checkpoint_log_bytes = 96 * 1024;  // exercise compaction
  storage::ReplicatedShardSet repl(&db, &transport, &clock, db_node,
                                   repl_options);
  storage::ReadThroughCache cache(&db, 4 << 20);
  if (sinks.enabled()) {
    db.SetObserver(sinks.metrics, sinks.tracer, index);
    repl.SetObserver(sinks.metrics, sinks.tracer, index);
    cache.SetObserver(sinks.metrics);
  }
  if (drop > 0.0) {
    net::FaultSpec fault;
    fault.drop_probability = drop;
    fault.jitter_micros = 1500;
    for (size_t s = 0; s < shards; ++s) {
      network.SetDuplexFault(db_node, repl.follower_node(s, 0), fault).ok();
    }
  }
  cache.RegisterStandardTypes().ok();

  Rng rng(4242 + shards * 17 + static_cast<uint64_t>(drop * 1000));
  std::vector<ObjectRef> live;
  for (size_t step = 0; step < mutations; ++step) {
    uint64_t roll = rng.NextBelow(100);
    if (roll < 60 || live.empty()) {
      live.push_back(cache
                         .Store("Image",
                                {{"FLD_QUALITY", static_cast<int64_t>(step)},
                                 {"FLD_TEXTS", std::string("t")},
                                 {"FLD_CM", std::string("c")}},
                                {{"FLD_DATA",
                                  RandomBytes(rng.NextBelow(3000), rng)}})
                         .value());
    } else if (roll < 85) {
      cache
          .Modify(live[rng.NextBelow(live.size())],
                  {{"FLD_QUALITY", static_cast<int64_t>(step)}}, {})
          .ok();
    } else {
      size_t pick = rng.NextBelow(live.size());
      cache.Delete(live[pick]).ok();
      live.erase(live.begin() + pick);
    }
    clock.AdvanceMicros(2000 + static_cast<MicrosT>(rng.NextBelow(1000)));
    if (step % 8 == 7 && !Pump(transport, repl, row)) return row;
  }

  // Warm the cache: two fetch rounds over the live set (first misses,
  // second hits).
  for (int round = 0; round < 2; ++round) {
    for (const ObjectRef& ref : live) {
      cache.FetchBlob(ref, "FLD_DATA").ok();
    }
  }

  // Abrupt kill: group-commit a burst the shipper never sees, then lose
  // shard 1's primary. The recovery point is the acked-but-unshipped
  // tail the promoted follower cannot have.
  if (shards >= 2) {
    db.SyncAll();
    if (!Pump(transport, repl, row)) return row;
    for (int burst = 0; burst < 12; ++burst) {
      cache
          .Store("Image",
                 {{"FLD_QUALITY", int64_t{-burst}},
                  {"FLD_TEXTS", std::string("t")},
                  {"FLD_CM", std::string("c")}},
                 {{"FLD_DATA", RandomBytes(1024, rng)}})
          .ok();
      clock.AdvanceMicros(6000);
    }
    db.SyncAll();
    size_t durable = db.shard_wal(1)->durable_records();
    size_t held = repl.follower_records(1, 0);
    Result<storage::PromotionReport> promoted = repl.Promote(1, 0);
    row.abrupt_clean = promoted.ok() && !promoted.value().diverged;
    row.abrupt_rpo_records = durable - (held < durable ? held : durable);
    cache.InvalidateShard(1, [&db](const ObjectRef& ref) {
      return db.ShardOf(ref);
    });
    if (!Pump(transport, repl, row)) return row;
  }

  // Drained kill: settle the wire, then lose shard 0's primary. With
  // shipping drained, promotion must reproduce the never-crashed
  // control byte for byte — zero acked-write loss.
  db.SyncAll();
  if (!Pump(transport, repl, row)) return row;
  DatabaseServer control;
  bool control_ok = true;
  if (!repl.checkpoint(0).empty()) {
    control_ok = control.LoadFrom(repl.checkpoint(0)).ok();
  }
  Result<storage::WalReplayStats> control_replay =
      storage::ShardedDatabaseServer::ReplayLogInto(
          db.shard_wal(0)->durable(), &control);
  size_t acked = db.shard_wal(0)->durable_records();
  Result<storage::PromotionReport> promoted = repl.Promote(0, 0);
  control_ok = control_ok && db.HealSchema(&control, nullptr).ok();
  row.drained_replayed =
      promoted.ok() ? promoted.value().replayed_records : 0;
  row.drained_exact = control_ok && control_replay.ok() && promoted.ok() &&
                      !promoted.value().diverged &&
                      promoted.value().replayed_records == acked &&
                      db.shard(0)->Serialize() == control.Serialize();
  cache.InvalidateShard(0, [&db](const ObjectRef& ref) {
    return db.ShardOf(ref);
  });

  // Resync the remaining followers behind the new primary and measure
  // the wire time it takes (epoch snapshot + batches).
  MicrosT resync_start = clock.NowMicros();
  if (!Pump(transport, repl, row)) return row;
  row.resync_micros = clock.NowMicros() - resync_start;

  // Post-failover read traffic: shard-0 entries were invalidated, the
  // rest of the cache stays warm.
  for (const ObjectRef& ref : live) {
    cache.FetchBlob(ref, "FLD_DATA").ok();
  }
  row.cache_hits = cache.hits();
  row.cache_misses = cache.misses();
  row.wire_bytes = network.TotalBytesSent();
  row.end_micros = clock.NowMicros();
  return row;
}

std::vector<ReplRow> RunSweep(bool smoke, const bench::ObsSinks& sinks) {
  const size_t mutations = smoke ? 240 : 1200;
  std::printf("== replication: WAL shipping + failover, %zu mutations per "
              "cell (%s) ==\n",
              mutations, smoke ? "smoke" : "full");
  std::printf("%-8s %-6s %-8s %-7s %-6s %-10s %-8s %-7s %-10s %s\n",
              "shards", "drop", "batches", "snaps", "ckpts", "resync(ms)",
              "rpo", "cache%", "wire(B)", "drained");
  struct Cell {
    size_t shards;
    double drop;
  };
  const Cell cells[] = {{1, 0.0}, {2, 0.0}, {2, 0.02}, {4, 0.02}};
  std::vector<ReplRow> rows;
  int index = 0;
  for (const Cell& cell : cells) {
    ReplRow row = RunCell(cell.shards, cell.drop, mutations, sinks, index++);
    double hit_rate =
        row.cache_hits + row.cache_misses > 0
            ? 100.0 * static_cast<double>(row.cache_hits) /
                  static_cast<double>(row.cache_hits + row.cache_misses)
            : 0.0;
    std::printf("%-8zu %-6.2f %-8zu %-7zu %-6zu %-10.1f %-7zu %-7.1f "
                "%-10zu %s\n",
                row.shards, row.drop, row.batches, row.snapshots,
                row.checkpoints,
                static_cast<double>(row.resync_micros) / 1000.0,
                row.abrupt_rpo_records, hit_rate, row.wire_bytes,
                row.drained_exact ? "exact" : "LOST-WRITES");
    rows.push_back(row);
  }
  std::printf("\n");
  return rows;
}

bool WriteJson(const std::string& path, const std::vector<ReplRow>& rows,
               bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"replication_failover\",\n"
               "  \"smoke\": %s,\n  \"sweep\": [\n",
               smoke ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const ReplRow& row = rows[i];
    std::fprintf(
        out,
        "    {\"shards\": %zu, \"drop\": %.2f, \"mutations\": %zu, "
        "\"batches\": %zu, \"batch_bytes\": %zu, \"snapshots\": %zu, "
        "\"checkpoints\": %zu, \"wire_bytes\": %zu, \"end_ms\": %.1f, "
        "\"drained_replayed\": %zu, \"drained_exact\": %s, "
        "\"resync_ms\": %.1f, \"abrupt_rpo_records\": %zu, "
        "\"abrupt_clean\": %s, \"cache_hits\": %zu, \"cache_misses\": %zu}%s\n",
        row.shards, row.drop, row.mutations, row.batches, row.batch_bytes,
        row.snapshots, row.checkpoints, row.wire_bytes,
        static_cast<double>(row.end_micros) / 1000.0, row.drained_replayed,
        row.drained_exact ? "true" : "false",
        static_cast<double>(row.resync_micros) / 1000.0,
        row.abrupt_rpo_records, row.abrupt_clean ? "true" : "false",
        row.cache_hits, row.cache_misses, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  return bench::CloseChecked(out, path);
}

void BM_ShipRound(benchmark::State& state) {
  // One mutation burst -> Ship -> settle round, the steady-state cost
  // the chaos driver pays between event batches.
  Clock clock;
  net::Network network(&clock, 7);
  net::NodeId db_node = network.AddNode("db");
  storage::ShardedDatabaseServer db(&clock);
  net::ReliableTransport transport(&network, {});
  storage::ReplicatedShardSet repl(&db, &transport, &clock, db_node);
  db.RegisterStandardTypes().ok();
  Rng rng(9);
  Bytes payload = RandomBytes(2048, rng);
  for (auto _ : state) {
    db.Store("Image",
             {{"FLD_QUALITY", int64_t{1}},
              {"FLD_TEXTS", std::string("t")},
              {"FLD_CM", std::string("c")}},
             {{"FLD_DATA", payload}})
        .value();
    clock.AdvanceMicros(6000);
    db.SyncAll();
    benchmark::DoNotOptimize(repl.Ship());
    for (const net::Delivery& d : transport.AdvanceUntilIdle()) {
      repl.HandleDelivery(d);
    }
  }
}
BENCHMARK(BM_ShipRound);

void BM_CacheFetchHit(benchmark::State& state) {
  Clock clock;
  storage::ShardedDatabaseServer db(&clock);
  storage::ReadThroughCache cache(&db, 16 << 20);
  cache.RegisterStandardTypes().ok();
  Rng rng(11);
  ObjectRef ref = cache
                      .Store("Image",
                             {{"FLD_QUALITY", int64_t{1}},
                              {"FLD_TEXTS", std::string("t")},
                              {"FLD_CM", std::string("c")}},
                             {{"FLD_DATA", RandomBytes(262144, rng)}})
                      .value();
  cache.FetchBlob(ref, "FLD_DATA").ok();  // populate
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.FetchBlob(ref, "FLD_DATA"));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 262144);
}
BENCHMARK(BM_CacheFetchHit);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_replication.json";
  std::string metrics_path;
  std::string trace_path;
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace_out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // An unwritable output path should fail before the sweep, not after.
  if (!bench::ProbeWritable(json_path)) return 1;
  if (!metrics_path.empty() && !bench::ProbeWritable(metrics_path)) return 1;
  if (!trace_path.empty() && !bench::ProbeWritable(trace_path)) return 1;

  obs::MetricsRegistry registry;
  obs::Tracer tracer(nullptr);
  bench::ObsSinks sinks;
  if (!metrics_path.empty()) sinks.metrics = &registry;
  if (!trace_path.empty()) sinks.tracer = &tracer;

  std::vector<ReplRow> rows = RunSweep(smoke, sinks);
  bool wrote = WriteJson(json_path, rows, smoke);
  if (!metrics_path.empty()) {
    wrote = bench::WriteFileChecked(metrics_path,
                                    registry.Snapshot().ToJson()) &&
            wrote;
  }
  if (!trace_path.empty()) {
    wrote = bench::WriteFileChecked(trace_path, tracer.ToJson()) && wrote;
  }
  bool invariants = true;
  for (const ReplRow& row : rows) invariants = invariants && row.Ok();
  if (smoke) {
    // ctest perf smoke: fail when a drained failover loses acked writes,
    // an abrupt promotion diverges, or the JSON cannot be produced;
    // timing itself is not asserted.
    return invariants && wrote ? 0 : 1;
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return invariants && wrote ? 0 : 1;
}
