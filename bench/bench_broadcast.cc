// Broadcast fan-out at scale: what the relay tree buys over per-viewer
// unicast as the audience grows 1k -> 100k. Each sweep point hosts a
// BroadcastSession, admits an aggregated audience split across the
// three bandwidth classes plus a few fully simulated viewers on lossy
// last-mile links, pushes composed frames through the tree, and — at
// the larger points — hard-partitions a relay's upstream link mid-run
// so the reparent + history-replay repair path is on the measured path.
//
// The headline columns: server egress stays O(fanout) while the
// unicast-equivalent bytes grow linearly with the audience, and the
// only audience-linear term left is the modeled last hop every
// distribution scheme pays. The no-base-drop invariant is asserted on
// the sampled viewers' real scheduler streams.
//
// Results are printed and written as machine-readable JSON
// (BENCH_broadcast.json; override with --json_out=PATH). --smoke runs
// a shrunk sweep and exits nonzero when a stream aborts (base-layer
// loss), a session fails to drain, the tree fails to undercut unicast,
// or the JSON cannot be written.
//
// --metrics_out=PATH dumps the obs MetricsRegistry snapshot (fanout.*
// and mix.* counters included) and --trace_out=PATH a Chrome
// trace_event timeline with push/reparent instants.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_obs.h"
#include "common/rng.h"
#include "doc/tuning.h"
#include "fanout/broadcast.h"
#include "fanout/compositor.h"
#include "media/synthetic.h"
#include "net/network.h"
#include "net/reliable.h"

namespace {

using namespace mmconf;

/// Frame inputs shared by every sweep point: two phantom-CT image
/// objects and two speakers with full-coverage speech segmentation.
struct FrameSource {
  std::vector<media::Image> images;
  media::AudioSignal voice_a, voice_b;
  std::vector<fanout::SpeakerTrack> tracks;

  FrameSource() {
    Rng rng(17);
    images.push_back(media::MakePhantomCt({64, 64, 3, 2.0}, rng));
    images.push_back(media::MakePhantomCt({64, 64, 2, 2.0}, rng));
    voice_a = media::AudioSignal(std::vector<float>(64000, 0.3f), 8000);
    voice_b = media::AudioSignal(std::vector<float>(64000, -0.2f), 8000);
    tracks.push_back(Track(1, &voice_a, 64000));
    tracks.push_back(Track(2, &voice_b, 32000));
  }

  static fanout::SpeakerTrack Track(int speaker,
                                    const media::AudioSignal* signal,
                                    size_t speech_samples) {
    fanout::SpeakerTrack track;
    track.speaker = speaker;
    track.signal = signal;
    media::AudioSegment segment;
    segment.begin = 0;
    segment.end = speech_samples;
    segment.cls = media::AudioClass::kSpeech;
    segment.speaker = speaker;
    track.segments.push_back(segment);
    return track;
  }
};

fanout::BroadcastOptions LectureOptions() {
  fanout::BroadcastOptions options;
  options.tree.fanout = 8;
  options.tree.viewers_per_edge = 1024;
  options.compositor.high_px = 64;
  options.compositor.medium_px = 32;
  options.compositor.low_px = 16;
  return options;
}

struct FanoutRow {
  size_t audience = 0;
  size_t frames = 0;
  size_t relays = 0;
  size_t rebuilds = 0;
  size_t server_egress_bytes = 0;
  size_t tree_wire_bytes = 0;
  size_t modeled_last_hop_bytes = 0;
  size_t unicast_equiv_bytes = 0;
  double per_viewer_bytes = 0;  ///< last-hop bytes / audience
  size_t streams_opened = 0;
  size_t streams_aborted = 0;
  size_t enhancement_dropped = 0;
  bool no_base_drops = false;
  bool all_finished = false;
};

FanoutRow RunPoint(size_t audience, size_t frames, bool inject_failure,
                   const FrameSource& source, const bench::ObsSinks& sinks,
                   int index) {
  Clock clock;
  net::Network network(&clock, 4242);
  if (sinks.enabled()) sinks.BeginFleet(&clock, index);
  net::NodeId origin = network.AddNode("origin");
  net::RetryPolicy retry;
  retry.initial_timeout_micros = 150000;
  retry.max_attempts = 4;
  net::ReliableTransport transport(&network, retry);

  fanout::BroadcastSession session(&network, &transport, origin, "lecture",
                                   LectureOptions());
  session.SetObserver(sinks.metrics, sinks.tracer);
  session.OpenAudience(audience).ok();
  // Class split: half the audience on the high tier, the rest across
  // medium and low — every class exercises its own composed stream.
  session.AdmitAudience(audience / 2, doc::BandwidthLevel::kHigh).ok();
  session.AdmitAudience(audience * 3 / 10, doc::BandwidthLevel::kMedium)
      .ok();
  session
      .AdmitAudience(audience - audience / 2 - audience * 3 / 10,
                     doc::BandwidthLevel::kLow)
      .ok();
  net::FaultSpec lossy;
  lossy.drop_probability = 0.05;
  std::vector<net::NodeId> viewers = {
      session
          .AdmitSampledViewer(doc::BandwidthLevel::kHigh, {1e6, 20000},
                              lossy)
          .value(),
      session
          .AdmitSampledViewer(doc::BandwidthLevel::kMedium, {1e6, 20000},
                              lossy)
          .value(),
      session
          .AdmitSampledViewer(doc::BandwidthLevel::kLow, {5e5, 30000},
                              lossy)
          .value(),
  };

  for (size_t frame = 0; frame < frames; ++frame) {
    session.PushFrame(source.images, source.tracks).ok();
    session.Settle().ok();
    if (inject_failure && frame + 1 == frames / 2 &&
        session.tree()->edge_relays().size() > 1) {
      // Kill a loaded edge relay's upstream link mid-broadcast: the next
      // frame exhausts its retries there, the failure callback re-hangs
      // the subtree, and the history replay recovers the frames the dead
      // link ate.
      net::NodeId edge = session.tree()->edge_relays()[0];
      net::NodeId parent = session.tree()->ParentOf(edge).value();
      network.Partition(parent, edge);
    }
  }

  fanout::BroadcastStats stats = session.Stats();
  FanoutRow row;
  row.audience = stats.audience;
  row.frames = stats.frames;
  row.relays = stats.relays;
  row.rebuilds = stats.rebuilds;
  row.server_egress_bytes = stats.server_egress_bytes;
  row.tree_wire_bytes = stats.tree_wire_bytes;
  row.modeled_last_hop_bytes = stats.modeled_last_hop_bytes;
  row.unicast_equiv_bytes = stats.unicast_equiv_bytes;
  row.per_viewer_bytes =
      stats.audience > 0
          ? static_cast<double>(stats.modeled_last_hop_bytes) /
                static_cast<double>(stats.audience)
          : 0;
  row.streams_opened = stats.streams_opened;
  row.streams_aborted = stats.streams_aborted;
  row.enhancement_dropped = stats.enhancement_layers_dropped;
  row.no_base_drops = stats.streams_aborted == 0;
  row.all_finished = stats.all_finished;
  for (net::NodeId viewer : viewers) {
    fanout::SampledViewerStats vs = session.ViewerStats(viewer).value();
    row.all_finished = row.all_finished && vs.frames_delivered == frames;
  }
  return row;
}

std::vector<FanoutRow> RunAudienceSweep(bool smoke,
                                        const bench::ObsSinks& sinks = {}) {
  const size_t frames = smoke ? 3 : 5;
  std::vector<size_t> audiences = smoke
                                      ? std::vector<size_t>{1000, 10000}
                                      : std::vector<size_t>{1000, 10000,
                                                            100000};
  FrameSource source;
  std::vector<FanoutRow> rows;
  std::printf("== broadcast: composed lecture stream over a fan-out tree "
              "(%zu frames, %s) ==\n",
              frames, smoke ? "smoke" : "full");
  std::printf("%-9s %-7s %-9s %-11s %-11s %-12s %-13s %-9s %-7s %-5s\n",
              "audience", "relays", "rebuilds", "egress(B)", "tree(B)",
              "lasthop(B)", "unicast(B)", "B/viewer", "abort", "ok");
  int index = 0;
  for (size_t audience : audiences) {
    FanoutRow row = RunPoint(audience, frames, /*inject_failure=*/true,
                             source, sinks, index++);
    std::printf("%-9zu %-7zu %-9zu %-11zu %-11zu %-12zu %-13zu %-9.0f "
                "%-7zu %s\n",
                row.audience, row.relays, row.rebuilds,
                row.server_egress_bytes, row.tree_wire_bytes,
                row.modeled_last_hop_bytes, row.unicast_equiv_bytes,
                row.per_viewer_bytes, row.streams_aborted,
                row.no_base_drops && row.all_finished ? "yes" : "NO");
    rows.push_back(row);
  }
  return rows;
}

bool WriteJson(const std::string& path, const std::vector<FanoutRow>& rows,
               bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"broadcast_audience_sweep\",\n"
               "  \"smoke\": %s,\n  \"sweep\": [\n",
               smoke ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const FanoutRow& row = rows[i];
    std::fprintf(
        out,
        "    {\"audience\": %zu, \"frames\": %zu, \"relays\": %zu, "
        "\"rebuilds\": %zu, \"server_egress_bytes\": %zu, "
        "\"tree_wire_bytes\": %zu, \"modeled_last_hop_bytes\": %zu, "
        "\"unicast_equiv_bytes\": %zu, \"per_viewer_bytes\": %.1f, "
        "\"streams_opened\": %zu, \"streams_aborted\": %zu, "
        "\"enhancement_dropped\": %zu, \"no_base_drops\": %s, "
        "\"all_finished\": %s}%s\n",
        row.audience, row.frames, row.relays, row.rebuilds,
        row.server_egress_bytes, row.tree_wire_bytes,
        row.modeled_last_hop_bytes, row.unicast_equiv_bytes,
        row.per_viewer_bytes, row.streams_opened, row.streams_aborted,
        row.enhancement_dropped, row.no_base_drops ? "true" : "false",
        row.all_finished ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  return bench::CloseChecked(out, path);
}

void BM_ComposeFrame(benchmark::State& state) {
  // One full composition: mix the active speakers, mosaic the images,
  // and encode all three bandwidth classes. The arg is the high-tier
  // mosaic side; the lower tiers scale with it.
  int side = static_cast<int>(state.range(0));
  fanout::CompositorOptions options;
  options.high_px = side;
  options.medium_px = side / 2;
  options.low_px = side / 4;
  fanout::Compositor compositor(options);
  FrameSource source;
  uint32_t frame = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        compositor.ComposeFrame(frame++ % 8, source.images, source.tracks)
            .value());
  }
}
BENCHMARK(BM_ComposeFrame)->Arg(64)->Arg(128)->Arg(256);

void BM_PushFrameThroughTree(benchmark::State& state) {
  // Push + settle of one composed frame over the tree for an audience of
  // `arg` — the per-frame wall the origin pays, independent of how many
  // aggregated viewers the edges carry.
  size_t audience = static_cast<size_t>(state.range(0));
  Clock clock;
  net::Network network(&clock, 4242);
  net::NodeId origin = network.AddNode("origin");
  net::ReliableTransport transport(&network);
  fanout::BroadcastSession session(&network, &transport, origin, "lecture",
                                   LectureOptions());
  session.OpenAudience(audience).ok();
  session.AdmitAudience(audience, doc::BandwidthLevel::kMedium).ok();
  FrameSource source;
  for (auto _ : state) {
    session.PushFrame(source.images, source.tracks).ok();
    session.Settle().ok();
  }
}
BENCHMARK(BM_PushFrameThroughTree)->Arg(1000)->Arg(10000);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_broadcast.json";
  std::string metrics_path;
  std::string trace_path;
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace_out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // An unwritable output path should fail before the sweep, not after.
  if (!bench::ProbeWritable(json_path)) return 1;
  if (!metrics_path.empty() && !bench::ProbeWritable(metrics_path)) return 1;
  if (!trace_path.empty() && !bench::ProbeWritable(trace_path)) return 1;

  obs::MetricsRegistry registry;
  obs::Tracer tracer(nullptr);
  bench::ObsSinks sinks;
  if (!metrics_path.empty()) sinks.metrics = &registry;
  if (!trace_path.empty()) sinks.tracer = &tracer;

  std::vector<FanoutRow> rows = RunAudienceSweep(smoke, sinks);
  bool wrote = WriteJson(json_path, rows, smoke);
  if (!metrics_path.empty()) {
    wrote = bench::WriteFileChecked(metrics_path,
                                    registry.Snapshot().ToJson()) &&
            wrote;
  }
  if (!trace_path.empty()) {
    wrote = bench::WriteFileChecked(trace_path, tracer.ToJson()) && wrote;
  }
  bool healthy = true;
  for (const FanoutRow& row : rows) {
    healthy = healthy && row.no_base_drops && row.all_finished &&
              row.server_egress_bytes < row.unicast_equiv_bytes;
  }
  // The tentpole claim, asserted across the sweep: egress grows far
  // slower than the audience (sub-linear; with a fixed-fanout tree it
  // is near flat while the audience grows 10x per point).
  if (rows.size() >= 2) {
    const FanoutRow& first = rows.front();
    const FanoutRow& last = rows.back();
    double audience_ratio = static_cast<double>(last.audience) /
                            static_cast<double>(first.audience);
    double egress_ratio =
        static_cast<double>(last.server_egress_bytes) /
        static_cast<double>(first.server_egress_bytes);
    healthy = healthy && egress_ratio < audience_ratio / 2.0;
  }
  if (smoke) {
    // ctest perf smoke: fail when a base layer drops, a viewer stream
    // never resolves, the tree fails to undercut unicast, or the JSON
    // cannot be produced.
    return healthy && wrote ? 0 : 1;
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return healthy && wrote ? 0 : 1;
}
