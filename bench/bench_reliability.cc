// Reliability under lossy links: how much latency and wire overhead the
// ack/retry/backoff layer (net/reliable) pays to keep a room consistent
// as last-mile loss climbs from 0 to 20%. The paper assumes changes are
// "immediately propagated to other clients in the room"; this bench
// quantifies what "immediately" costs once the wire stops cooperating.
//
// Results are printed and written as machine-readable JSON
// (BENCH_reliability.json; override with --json_out=PATH). --smoke runs
// fewer rounds and exits nonzero when a room fails to converge or the
// JSON cannot be written.
//
// --metrics_out=PATH dumps the obs MetricsRegistry snapshot
// (byte-identical across runs) and --trace_out=PATH a Chrome
// trace_event timeline (one pid namespace per loss point).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_obs.h"
#include "doc/builder.h"
#include "net/network.h"
#include "net/reliable.h"
#include "server/interaction_server.h"
#include "storage/database.h"

namespace {

using namespace mmconf;

constexpr int kClients = 4;
constexpr int kRounds = 8;

struct LossyFleet {
  Clock clock;
  storage::DatabaseServer db;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<net::ReliableTransport> transport;
  std::unique_ptr<server::InteractionServer> server;
  net::NodeId server_node = 0, db_node = 0;
  std::vector<net::NodeId> clients;

  explicit LossyFleet(double loss, uint64_t seed = 99,
                      const bench::ObsSinks& sinks = {}, int index = 0) {
    network = std::make_unique<net::Network>(&clock, seed);
    if (sinks.enabled()) sinks.BeginFleet(&clock, index);
    server_node = network->AddNode("server");
    db_node = network->AddNode("db");
    network->SetDuplexLink(server_node, db_node, {50e6, 500}).ok();
    net::FaultSpec fault;
    fault.drop_probability = loss;
    fault.duplicate_probability = loss / 4;
    fault.jitter_micros = 2000;
    for (int i = 0; i < kClients; ++i) {
      net::NodeId node = network->AddNode("client-" + std::to_string(i));
      network->SetDuplexLink(server_node, node, {1e6, 20000}).ok();
      if (loss > 0) network->SetDuplexFault(server_node, node, fault).ok();
      clients.push_back(node);
    }
    net::RetryPolicy policy;
    policy.initial_timeout_micros = 150000;
    policy.max_attempts = 10;
    transport =
        std::make_unique<net::ReliableTransport>(network.get(), policy);
    db.RegisterStandardTypes().ok();
    server = std::make_unique<server::InteractionServer>(
        &db, network.get(), server_node, db_node);
    server->UseReliableTransport(transport.get());
    if (sinks.enabled()) {
      network->SetObserver(sinks.metrics, sinks.tracer);
      transport->SetObserver(sinks.metrics, sinks.tracer);
      server->SetObserver(sinks.metrics, sinks.tracer);
    }
    doc::MultimediaDocument document =
        doc::MakeMedicalRecordDocument().value();
    storage::ObjectRef ref = server->StoreDocument(document, "p").value();
    server->OpenRoom("room", ref).value();
    for (int i = 0; i < kClients; ++i) {
      server->Join("room", {"viewer-" + std::to_string(i), clients[i]})
          .value();
    }
    transport->AdvanceUntilIdle();
  }
};

const char* Choice(int round) {
  static const char* kChoices[] = {"hidden", "thumbnail", "segmented"};
  return kChoices[round % 3];
}

struct LossRow {
  double loss = 0;
  double worst_t2c_ms = 0;
  size_t retries = 0;
  size_t duplicates_suppressed = 0;
  size_t wire_dropped = 0;
  size_t wire_bytes = 0;
  size_t app_bytes = 0;
  bool converged = false;
  double Overhead() const {
    return app_bytes > 0 ? static_cast<double>(wire_bytes) /
                               static_cast<double>(app_bytes)
                         : 0;
  }
};

std::vector<LossRow> RunLossSweep(bool smoke,
                                  const bench::ObsSinks& sinks = {}) {
  const int rounds = smoke ? 3 : kRounds;
  std::vector<LossRow> rows;
  std::printf("== reliability: room consistency vs last-mile loss "
              "(%d rounds, %s) ==\n", rounds, smoke ? "smoke" : "full");
  std::printf("%-7s %-10s %-9s %-9s %-12s %-14s %-10s\n", "loss%",
              "t2c(ms)", "retries", "dups", "drops-wire", "wire/app(B)",
              "overhead");
  int index = 0;
  for (double loss : {0.0, 0.05, 0.10, 0.20}) {
    LossyFleet fleet(loss, 99, sinks, index++);
    size_t app_bytes_before = fleet.server->bytes_propagated();
    size_t wire_before = fleet.network->TotalBytesSent();
    LossRow row;
    row.loss = loss;
    for (int round = 0; round < rounds; ++round) {
      fleet.server
          ->SubmitChoice("room",
                         "viewer-" + std::to_string(round % kClients), "CT",
                         Choice(round))
          .value();
      fleet.transport->AdvanceUntilIdle();
      server::RoomReliabilityStats stats =
          fleet.server->RoomStats("room").value();
      double t2c_ms = static_cast<double>(stats.last_converged_at -
                                          stats.last_propagate_at) /
                      1000.0;
      if (t2c_ms > row.worst_t2c_ms) row.worst_t2c_ms = t2c_ms;
    }
    server::RoomReliabilityStats room =
        fleet.server->RoomStats("room").value();
    net::ChannelStats totals = fleet.transport->TotalStats();
    net::FaultStats wire_faults = fleet.network->TotalFaultStats();
    row.retries = room.retries;
    row.duplicates_suppressed = totals.duplicates_suppressed;
    row.wire_dropped = wire_faults.dropped;
    row.app_bytes = fleet.server->bytes_propagated() - app_bytes_before;
    row.wire_bytes = fleet.network->TotalBytesSent() - wire_before;
    row.converged = fleet.server->RoomConverged("room");
    std::printf("%-7.0f %-10.1f %-9zu %-9zu %-12zu %zu/%-8zu %.2fx\n",
                row.loss * 100, row.worst_t2c_ms, row.retries,
                row.duplicates_suppressed, row.wire_dropped, row.wire_bytes,
                row.app_bytes, row.Overhead());
    rows.push_back(row);
  }
  return rows;
}

bool WriteJson(const std::string& path, const std::vector<LossRow>& rows,
               bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"reliability_loss_sweep\",\n"
               "  \"smoke\": %s,\n  \"sweep\": [\n",
               smoke ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const LossRow& row = rows[i];
    std::fprintf(
        out,
        "    {\"loss\": %.2f, \"worst_t2c_ms\": %.2f, \"retries\": %zu, "
        "\"duplicates_suppressed\": %zu, \"wire_dropped\": %zu, "
        "\"wire_bytes\": %zu, \"app_bytes\": %zu, \"overhead\": %.3f, "
        "\"converged\": %s}%s\n",
        row.loss, row.worst_t2c_ms, row.retries, row.duplicates_suppressed,
        row.wire_dropped, row.wire_bytes, row.app_bytes, row.Overhead(),
        row.converged ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  return bench::CloseChecked(out, path);
}

void BM_PropagateUnderLoss(benchmark::State& state) {
  double loss = static_cast<double>(state.range(0)) / 100.0;
  LossyFleet fleet(loss);
  int round = 0;
  for (auto _ : state) {
    fleet.server
        ->SubmitChoice("room", "viewer-" + std::to_string(round % kClients),
                       "CT", Choice(round))
        .value();
    benchmark::DoNotOptimize(fleet.transport->AdvanceUntilIdle());
    ++round;
  }
  state.counters["retries"] = static_cast<double>(
      fleet.transport->TotalStats().retries);
}
BENCHMARK(BM_PropagateUnderLoss)->Arg(0)->Arg(5)->Arg(10)->Arg(20);

void BM_ReliableEcho(benchmark::State& state) {
  // Raw transport round-trip on a lossy duplex link, no server on top.
  double loss = static_cast<double>(state.range(0)) / 100.0;
  Clock clock;
  net::Network network(&clock, 7);
  net::NodeId a = network.AddNode("a");
  net::NodeId b = network.AddNode("b");
  network.SetDuplexLink(a, b, {10e6, 5000}).ok();
  if (loss > 0) {
    net::FaultSpec fault;
    fault.drop_probability = loss;
    network.SetDuplexFault(a, b, fault).ok();
  }
  net::RetryPolicy policy;
  policy.initial_timeout_micros = 50000;
  policy.max_attempts = 12;
  net::ReliableTransport transport(&network, policy);
  for (auto _ : state) {
    transport.Send(a, b, 1500, "echo").value();
    benchmark::DoNotOptimize(transport.AdvanceUntilIdle());
  }
}
BENCHMARK(BM_ReliableEcho)->Arg(0)->Arg(20);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_reliability.json";
  std::string metrics_path;
  std::string trace_path;
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace_out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // An unwritable output path should fail before the sweep, not after.
  if (!bench::ProbeWritable(json_path)) return 1;
  if (!metrics_path.empty() && !bench::ProbeWritable(metrics_path)) return 1;
  if (!trace_path.empty() && !bench::ProbeWritable(trace_path)) return 1;

  obs::MetricsRegistry registry;
  obs::Tracer tracer(nullptr);
  bench::ObsSinks sinks;
  if (!metrics_path.empty()) sinks.metrics = &registry;
  if (!trace_path.empty()) sinks.tracer = &tracer;

  std::vector<LossRow> rows = RunLossSweep(smoke, sinks);
  bool wrote = WriteJson(json_path, rows, smoke);
  if (!metrics_path.empty()) {
    wrote = bench::WriteFileChecked(metrics_path,
                                    registry.Snapshot().ToJson()) &&
            wrote;
  }
  if (!trace_path.empty()) {
    wrote = bench::WriteFileChecked(trace_path, tracer.ToJson()) && wrote;
  }
  bool converged = true;
  for (const LossRow& row : rows) converged = converged && row.converged;
  if (smoke) {
    // ctest perf smoke: fail when a lossy room never converges or the
    // JSON cannot be produced; timing itself is not asserted.
    return converged && wrote ? 0 : 1;
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return converged && wrote ? 0 : 1;
}
