// F7 — The BLOB database schema (the paper's Fig. 7): store/fetch
// throughput of the typed object tables + page-chained BLOB store across
// payload sizes, plus a mixed workload resembling a live consultation
// (images dominate bytes, texts dominate ops).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "storage/database.h"

namespace {

using namespace mmconf;
using storage::DatabaseServer;
using storage::ObjectRef;

Bytes RandomBytes(size_t n, Rng& rng) {
  Bytes data(n);
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

void PrintFigure7() {
  std::printf("== F7: BLOB store throughput vs payload size ==\n");
  std::printf("%-12s %-14s %-14s\n", "size(KB)", "store(MB/s)",
              "fetch(MB/s)");
  for (size_t kb : {4, 64, 512, 4096}) {
    DatabaseServer db;
    db.RegisterStandardTypes().ok();
    Rng rng(kb);
    Bytes payload = RandomBytes(kb * 1024, rng);
    auto now_us = [] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count() /
             1000.0;
    };
    const int reps = kb >= 4096 ? 20 : 100;
    double t0 = now_us();
    std::vector<ObjectRef> refs;
    for (int i = 0; i < reps; ++i) {
      refs.push_back(db.Store("Image",
                              {{"FLD_QUALITY", int64_t{90}},
                               {"FLD_TEXTS", std::string("t")},
                               {"FLD_CM", std::string("c")}},
                              {{"FLD_DATA", payload}})
                         .value());
    }
    double store_s = (now_us() - t0) * 1e-6;
    double t1 = now_us();
    for (const ObjectRef& ref : refs) {
      benchmark::DoNotOptimize(db.FetchBlob(ref, "FLD_DATA"));
    }
    double fetch_s = (now_us() - t1) * 1e-6;
    double mb = static_cast<double>(payload.size()) * reps / (1 << 20);
    std::printf("%-12zu %-14.1f %-14.1f\n", kb, mb / store_s,
                mb / fetch_s);
  }
  std::printf("\n");
}

void BM_StoreImage(benchmark::State& state) {
  DatabaseServer db;
  db.RegisterStandardTypes().ok();
  Rng rng(1);
  Bytes payload = RandomBytes(static_cast<size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto ref = db.Store("Image",
                        {{"FLD_QUALITY", int64_t{90}},
                         {"FLD_TEXTS", std::string("t")},
                         {"FLD_CM", std::string("c")}},
                        {{"FLD_DATA", payload}})
                   .value();
    benchmark::DoNotOptimize(ref);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StoreImage)->Arg(4096)->Arg(262144);

void BM_FetchBlob(benchmark::State& state) {
  DatabaseServer db;
  db.RegisterStandardTypes().ok();
  Rng rng(2);
  Bytes payload = RandomBytes(static_cast<size_t>(state.range(0)), rng);
  ObjectRef ref = db.Store("Image",
                           {{"FLD_QUALITY", int64_t{90}},
                            {"FLD_TEXTS", std::string("t")},
                            {"FLD_CM", std::string("c")}},
                           {{"FLD_DATA", payload}})
                      .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.FetchBlob(ref, "FLD_DATA"));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FetchBlob)->Arg(4096)->Arg(262144);

void BM_FetchBlobRange(benchmark::State& state) {
  DatabaseServer db;
  db.RegisterStandardTypes().ok();
  Rng rng(3);
  Bytes payload = RandomBytes(1 << 20, rng);
  ObjectRef ref = db.Store("Image",
                           {{"FLD_QUALITY", int64_t{90}},
                            {"FLD_TEXTS", std::string("t")},
                            {"FLD_CM", std::string("c")}},
                           {{"FLD_DATA", payload}})
                      .value();
  size_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.FetchBlobRange(ref, "FLD_DATA", offset, 16384));
    offset = (offset + 16384) % (1 << 20);
  }
}
BENCHMARK(BM_FetchBlobRange);

void BM_MixedWorkload(benchmark::State& state) {
  DatabaseServer db;
  db.RegisterStandardTypes().ok();
  Rng rng(4);
  Bytes image = RandomBytes(262144, rng);
  Bytes note = RandomBytes(512, rng);
  std::vector<ObjectRef> texts;
  for (int i = 0; i < 32; ++i) {
    texts.push_back(db.Store("Text", {{"FLD_TITLE", std::string("n")}},
                             {{"FLD_DATA", note}})
                        .value());
  }
  for (auto _ : state) {
    // 1 image store : 4 text fetches : 1 text update.
    benchmark::DoNotOptimize(db.Store("Image",
                                      {{"FLD_QUALITY", int64_t{1}},
                                       {"FLD_TEXTS", std::string("t")},
                                       {"FLD_CM", std::string("c")}},
                                      {{"FLD_DATA", image}}));
    for (int i = 0; i < 4; ++i) {
      benchmark::DoNotOptimize(
          db.FetchBlob(texts[rng.NextBelow(texts.size())], "FLD_DATA"));
    }
    db.Modify(texts[rng.NextBelow(texts.size())], {},
              {{"FLD_DATA", note}})
        .ok();
  }
}
BENCHMARK(BM_MixedWorkload);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure7();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
