// F7 — The BLOB database schema (the paper's Fig. 7): store/fetch
// throughput of the typed object tables + page-chained BLOB store across
// payload sizes, plus a mixed workload resembling a live consultation
// (images dominate bytes, texts dominate ops).
//
// The durability sweep exercises the sharded WAL tier
// (storage/sharded_db): shard count x mutation mix, reporting WAL
// record/byte/sync counts, verifying that replaying every shard's log
// onto a fresh DatabaseServer reproduces it byte-for-byte, and
// crash-recovering each shard through the seeded fault injector.
// Results land in BENCH_storage.json (--json_out=PATH); --smoke shrinks
// the workload and exits nonzero when a durability invariant breaks or
// the JSON cannot be written. --metrics_out/--trace_out dump the obs
// layer as in the other benches.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_obs.h"
#include "common/clock.h"
#include "common/rng.h"
#include "storage/database.h"
#include "storage/sharded_db.h"
#include "storage/wal.h"

namespace {

using namespace mmconf;
using storage::DatabaseServer;
using storage::ObjectRef;

Bytes RandomBytes(size_t n, Rng& rng) {
  Bytes data(n);
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

void PrintFigure7() {
  std::printf("== F7: BLOB store throughput vs payload size ==\n");
  std::printf("%-12s %-14s %-14s\n", "size(KB)", "store(MB/s)",
              "fetch(MB/s)");
  for (size_t kb : {4, 64, 512, 4096}) {
    DatabaseServer db;
    db.RegisterStandardTypes().ok();
    Rng rng(kb);
    Bytes payload = RandomBytes(kb * 1024, rng);
    auto now_us = [] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count() /
             1000.0;
    };
    const int reps = kb >= 4096 ? 20 : 100;
    double t0 = now_us();
    std::vector<ObjectRef> refs;
    for (int i = 0; i < reps; ++i) {
      refs.push_back(db.Store("Image",
                              {{"FLD_QUALITY", int64_t{90}},
                               {"FLD_TEXTS", std::string("t")},
                               {"FLD_CM", std::string("c")}},
                              {{"FLD_DATA", payload}})
                         .value());
    }
    double store_s = (now_us() - t0) * 1e-6;
    double t1 = now_us();
    for (const ObjectRef& ref : refs) {
      benchmark::DoNotOptimize(db.FetchBlob(ref, "FLD_DATA"));
    }
    double fetch_s = (now_us() - t1) * 1e-6;
    double mb = static_cast<double>(payload.size()) * reps / (1 << 20);
    std::printf("%-12zu %-14.1f %-14.1f\n", kb, mb / store_s,
                mb / fetch_s);
  }
  std::printf("\n");
}

void BM_StoreImage(benchmark::State& state) {
  DatabaseServer db;
  db.RegisterStandardTypes().ok();
  Rng rng(1);
  Bytes payload = RandomBytes(static_cast<size_t>(state.range(0)), rng);
  for (auto _ : state) {
    auto ref = db.Store("Image",
                        {{"FLD_QUALITY", int64_t{90}},
                         {"FLD_TEXTS", std::string("t")},
                         {"FLD_CM", std::string("c")}},
                        {{"FLD_DATA", payload}})
                   .value();
    benchmark::DoNotOptimize(ref);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_StoreImage)->Arg(4096)->Arg(262144);

void BM_FetchBlob(benchmark::State& state) {
  DatabaseServer db;
  db.RegisterStandardTypes().ok();
  Rng rng(2);
  Bytes payload = RandomBytes(static_cast<size_t>(state.range(0)), rng);
  ObjectRef ref = db.Store("Image",
                           {{"FLD_QUALITY", int64_t{90}},
                            {"FLD_TEXTS", std::string("t")},
                            {"FLD_CM", std::string("c")}},
                           {{"FLD_DATA", payload}})
                      .value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.FetchBlob(ref, "FLD_DATA"));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FetchBlob)->Arg(4096)->Arg(262144);

void BM_FetchBlobRange(benchmark::State& state) {
  DatabaseServer db;
  db.RegisterStandardTypes().ok();
  Rng rng(3);
  Bytes payload = RandomBytes(1 << 20, rng);
  ObjectRef ref = db.Store("Image",
                           {{"FLD_QUALITY", int64_t{90}},
                            {"FLD_TEXTS", std::string("t")},
                            {"FLD_CM", std::string("c")}},
                           {{"FLD_DATA", payload}})
                      .value();
  size_t offset = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        db.FetchBlobRange(ref, "FLD_DATA", offset, 16384));
    offset = (offset + 16384) % (1 << 20);
  }
}
BENCHMARK(BM_FetchBlobRange);

void BM_MixedWorkload(benchmark::State& state) {
  DatabaseServer db;
  db.RegisterStandardTypes().ok();
  Rng rng(4);
  Bytes image = RandomBytes(262144, rng);
  Bytes note = RandomBytes(512, rng);
  std::vector<ObjectRef> texts;
  for (int i = 0; i < 32; ++i) {
    texts.push_back(db.Store("Text", {{"FLD_TITLE", std::string("n")}},
                             {{"FLD_DATA", note}})
                        .value());
  }
  for (auto _ : state) {
    // 1 image store : 4 text fetches : 1 text update.
    benchmark::DoNotOptimize(db.Store("Image",
                                      {{"FLD_QUALITY", int64_t{1}},
                                       {"FLD_TEXTS", std::string("t")},
                                       {"FLD_CM", std::string("c")}},
                                      {{"FLD_DATA", image}}));
    for (int i = 0; i < 4; ++i) {
      benchmark::DoNotOptimize(
          db.FetchBlob(texts[rng.NextBelow(texts.size())], "FLD_DATA"));
    }
    db.Modify(texts[rng.NextBelow(texts.size())], {},
              {{"FLD_DATA", note}})
        .ok();
  }
}
BENCHMARK(BM_MixedWorkload);

// --- durability sweep: sharded WAL tier ------------------------------

struct MutationMix {
  const char* name;
  int store_pct;   // remainder after store+modify is deletes
  int modify_pct;
};

constexpr MutationMix kMixes[] = {
    {"store-heavy", 70, 20},
    {"balanced", 40, 40},
    {"churn", 25, 35},
};

struct DurabilityRow {
  size_t shards = 0;
  std::string mix;
  size_t mutations = 0;
  size_t stores = 0;
  size_t modifies = 0;
  size_t deletes = 0;
  size_t objects = 0;
  size_t wal_records = 0;
  size_t wal_bytes = 0;
  size_t syncs = 0;
  size_t replayed_records = 0;
  bool replay_matches = false;
  bool crash_recovered = false;

  bool Ok() const { return replay_matches && crash_recovered; }
};

DurabilityRow RunDurabilityPoint(size_t shards, const MutationMix& mix,
                                 size_t mutations,
                                 const bench::ObsSinks& sinks, int index) {
  Clock clock;
  if (sinks.enabled()) sinks.BeginFleet(&clock, index);
  storage::ShardedDatabaseServer::Options options;
  options.num_shards = shards;
  storage::ShardedDatabaseServer db(&clock, options);
  if (sinks.enabled()) db.SetObserver(sinks.metrics, sinks.tracer, index);
  db.RegisterStandardTypes().ok();

  DurabilityRow row;
  row.shards = shards;
  row.mix = mix.name;
  row.mutations = mutations;
  Rng rng(1000 + shards * 10 + static_cast<uint64_t>(mix.store_pct));
  std::vector<ObjectRef> live;
  for (size_t step = 0; step < mutations; ++step) {
    uint64_t roll = rng.NextBelow(100);
    if (roll < static_cast<uint64_t>(mix.store_pct) || live.empty()) {
      Bytes blob = RandomBytes(rng.NextBelow(2048), rng);
      live.push_back(db.Store("Image",
                              {{"FLD_QUALITY",
                                static_cast<int64_t>(step)},
                               {"FLD_TEXTS", std::string("t")},
                               {"FLD_CM", std::string("c")}},
                              {{"FLD_DATA", blob}})
                         .value());
      ++row.stores;
    } else if (roll <
               static_cast<uint64_t>(mix.store_pct + mix.modify_pct)) {
      const ObjectRef& ref = live[rng.NextBelow(live.size())];
      db.Modify(ref,
                {{"FLD_QUALITY", static_cast<int64_t>(step)}},
                {{"FLD_DATA", RandomBytes(rng.NextBelow(2048), rng)}})
          .ok();
      ++row.modifies;
    } else {
      size_t pick = rng.NextBelow(live.size());
      db.Delete(live[pick]).ok();
      live.erase(live.begin() + pick);
      ++row.deletes;
    }
    clock.AdvanceMicros(static_cast<MicrosT>(rng.NextBelow(2500)));
  }
  db.SyncAll();
  row.objects = db.List("Image").value().size();

  // Replay every shard's log onto a fresh server: the recovered image
  // must be byte-identical to the live shard.
  row.replay_matches = true;
  for (size_t s = 0; s < db.num_shards(); ++s) {
    const storage::WriteAheadLog* wal = db.shard_wal(s);
    row.wal_records += wal->durable_records();
    row.wal_bytes += wal->durable().size();
    row.syncs += wal->sync_count();
    DatabaseServer fresh;
    auto stats =
        storage::ShardedDatabaseServer::ReplayLogInto(wal->durable(),
                                                      &fresh);
    if (!stats.ok() || !stats.value().clean_end ||
        fresh.Serialize() != db.shard(s)->Serialize()) {
      row.replay_matches = false;
      continue;
    }
    row.replayed_records += stats.value().records_applied;
  }

  // Crash each shard with a torn tail (pending appends mid-write) and
  // recover it through the facade.
  for (size_t i = 0; i < 16 && i < live.size(); ++i) {
    db.Modify(live[i], {{"FLD_QUALITY", int64_t{-1}}}, {}).ok();
  }
  row.crash_recovered = true;
  storage::WalCrashInjector injector(shards * 977 +
                                     static_cast<uint64_t>(mix.store_pct));
  for (size_t s = 0; s < db.num_shards(); ++s) {
    storage::WalCrashImage image =
        injector.Crash(*db.shard_wal(s), storage::WalCrashKind::kTornTail);
    auto stats = db.RecoverShardFromLog(s, image.log);
    if (!stats.ok() ||
        stats.value().records_applied != image.clean_records ||
        !db.shard(s)->blob_store().VerifyAllPages().ok()) {
      row.crash_recovered = false;
    }
  }
  return row;
}

std::vector<DurabilityRow> RunDurabilitySweep(bool smoke,
                                              const bench::ObsSinks& sinks) {
  const size_t mutations = smoke ? 300 : 3000;
  std::printf("== durability: sharded WAL tier, %zu mutations per point "
              "(%s) ==\n",
              mutations, smoke ? "smoke" : "full");
  std::printf("%-8s %-12s %-9s %-12s %-11s %-7s %-9s %-8s\n", "shards",
              "mix", "objects", "wal-recs", "wal-bytes", "syncs", "replay",
              "crash");
  std::vector<DurabilityRow> rows;
  int index = 0;
  for (size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    for (const MutationMix& mix : kMixes) {
      DurabilityRow row =
          RunDurabilityPoint(shards, mix, mutations, sinks, index++);
      std::printf("%-8zu %-12s %-9zu %-12zu %-11zu %-7zu %-9s %-8s\n",
                  row.shards, row.mix.c_str(), row.objects, row.wal_records,
                  row.wal_bytes, row.syncs,
                  row.replay_matches ? "exact" : "DIVERGED",
                  row.crash_recovered ? "ok" : "FAILED");
      rows.push_back(row);
    }
  }
  std::printf("\n");
  return rows;
}

bool WriteJson(const std::string& path,
               const std::vector<DurabilityRow>& rows, bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"storage_durability_sweep\",\n"
               "  \"smoke\": %s,\n  \"sweep\": [\n",
               smoke ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const DurabilityRow& row = rows[i];
    std::fprintf(
        out,
        "    {\"shards\": %zu, \"mix\": \"%s\", \"mutations\": %zu, "
        "\"stores\": %zu, \"modifies\": %zu, \"deletes\": %zu, "
        "\"objects\": %zu, \"wal_records\": %zu, \"wal_bytes\": %zu, "
        "\"syncs\": %zu, \"replayed_records\": %zu, "
        "\"replay_matches\": %s, \"crash_recovered\": %s}%s\n",
        row.shards, row.mix.c_str(), row.mutations, row.stores,
        row.modifies, row.deletes, row.objects, row.wal_records,
        row.wal_bytes, row.syncs, row.replayed_records,
        row.replay_matches ? "true" : "false",
        row.crash_recovered ? "true" : "false",
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  return bench::CloseChecked(out, path);
}

void BM_ShardedStore(benchmark::State& state) {
  Clock clock;
  storage::ShardedDatabaseServer::Options options;
  options.num_shards = static_cast<size_t>(state.range(0));
  storage::ShardedDatabaseServer db(&clock, options);
  db.RegisterStandardTypes().ok();
  Rng rng(6);
  Bytes payload = RandomBytes(65536, rng);
  for (auto _ : state) {
    auto ref = db.Store("Image",
                        {{"FLD_QUALITY", int64_t{90}},
                         {"FLD_TEXTS", std::string("t")},
                         {"FLD_CM", std::string("c")}},
                        {{"FLD_DATA", payload}})
                   .value();
    benchmark::DoNotOptimize(ref);
    clock.AdvanceMicros(1000);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * 65536);
}
BENCHMARK(BM_ShardedStore)->Arg(1)->Arg(4);

void BM_WalReplay(benchmark::State& state) {
  Clock clock;
  storage::ShardedDatabaseServer db(&clock);
  db.RegisterStandardTypes().ok();
  Rng rng(8);
  for (int i = 0; i < 128; ++i) {
    db.Store("Image",
             {{"FLD_QUALITY", int64_t{i}},
              {"FLD_TEXTS", std::string("t")},
              {"FLD_CM", std::string("c")}},
             {{"FLD_DATA", RandomBytes(4096, rng)}})
        .value();
  }
  db.SyncAll();
  Bytes log = db.shard_wal(0)->durable();
  for (auto _ : state) {
    DatabaseServer fresh;
    benchmark::DoNotOptimize(
        storage::ShardedDatabaseServer::ReplayLogInto(log, &fresh));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(log.size()));
}
BENCHMARK(BM_WalReplay);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_storage.json";
  std::string metrics_path;
  std::string trace_path;
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace_out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // An unwritable output path should fail before the sweep, not after.
  if (!bench::ProbeWritable(json_path)) return 1;
  if (!metrics_path.empty() && !bench::ProbeWritable(metrics_path)) return 1;
  if (!trace_path.empty() && !bench::ProbeWritable(trace_path)) return 1;

  obs::MetricsRegistry registry;
  obs::Tracer tracer(nullptr);
  bench::ObsSinks sinks;
  if (!metrics_path.empty()) sinks.metrics = &registry;
  if (!trace_path.empty()) sinks.tracer = &tracer;

  if (!smoke) PrintFigure7();
  std::vector<DurabilityRow> rows = RunDurabilitySweep(smoke, sinks);
  bool wrote = WriteJson(json_path, rows, smoke);
  if (!metrics_path.empty()) {
    wrote = bench::WriteFileChecked(metrics_path,
                                    registry.Snapshot().ToJson()) &&
            wrote;
  }
  if (!trace_path.empty()) {
    wrote = bench::WriteFileChecked(trace_path, tracer.ToJson()) && wrote;
  }
  bool durable = true;
  for (const DurabilityRow& row : rows) durable = durable && row.Ok();
  if (smoke) {
    // ctest perf smoke: fail when WAL replay diverges from the live
    // shard, crash recovery breaks, or the JSON cannot be produced;
    // timing itself is not asserted.
    return durable && wrote ? 0 : 1;
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return durable && wrote ? 0 : 1;
}
