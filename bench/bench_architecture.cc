// F1 — The three-tier architecture (the paper's Fig. 1): an end-to-end
// consultation flow — store document, open room (db fetch), clients join
// over asymmetric links, choices propagate — with a simulated-time
// breakdown per stage and a wall-time benchmark of the whole scenario.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "client/client.h"
#include "doc/builder.h"
#include "net/network.h"
#include "server/interaction_server.h"
#include "storage/database.h"

namespace {

using namespace mmconf;

void PrintFigure1() {
  Clock clock;
  net::Network network(&clock);
  net::NodeId server_node = network.AddNode("interaction-server");
  net::NodeId db_node = network.AddNode("oracle");
  net::NodeId fast = network.AddNode("client-fast");
  net::NodeId slow = network.AddNode("client-slow");
  network.SetDuplexLink(server_node, db_node, {50e6, 500}).ok();
  network.SetDuplexLink(server_node, fast, {10e6, 10000}).ok();
  network.SetDuplexLink(server_node, slow, {128e3, 60000}).ok();

  storage::DatabaseServer db;
  db.RegisterStandardTypes().ok();
  server::InteractionServer server(&db, &network, server_node, db_node);

  std::printf("== F1: end-to-end flow through the Fig. 1 architecture ==\n");
  std::printf("%-42s %12s\n", "stage", "sim-time(ms)");

  MicrosT t0 = clock.NowMicros();
  doc::MultimediaDocument document =
      doc::MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server.StoreDocument(document, "p").value();
  network.AdvanceUntilIdle();
  std::printf("%-42s %12.2f\n", "store document (server->db)",
              (clock.NowMicros() - t0) / 1000.0);

  MicrosT t1 = clock.NowMicros();
  server.OpenRoom("room", ref).value();
  network.AdvanceUntilIdle();
  std::printf("%-42s %12.2f\n", "open room (db fetch + decode)",
              (clock.NowMicros() - t1) / 1000.0);

  MicrosT t2 = clock.NowMicros();
  MicrosT fast_at = server.Join("room", {"dr-fast", fast}).value();
  MicrosT slow_at = server.Join("room", {"dr-slow", slow}).value();
  network.AdvanceUntilIdle();
  std::printf("%-42s %12.2f\n", "join: initial content to fast client",
              (fast_at - t2) / 1000.0);
  std::printf("%-42s %12.2f\n", "join: initial content to slow client",
              (slow_at - t2) / 1000.0);

  MicrosT t3 = clock.NowMicros();
  server.SubmitChoice("room", "dr-fast", "CT", "hidden").value();
  network.AdvanceUntilIdle();
  std::printf("%-42s %12.2f\n", "choice + delta propagation (settled)",
              (clock.NowMicros() - t3) / 1000.0);

  std::printf("%-42s %12.2f\n", "total scenario",
              clock.NowMicros() / 1000.0);
  std::printf("bytes on the wire: %zu\n\n", network.TotalBytesSent());
}

void BM_EndToEndScenario(benchmark::State& state) {
  for (auto _ : state) {
    Clock clock;
    net::Network network(&clock);
    net::NodeId server_node = network.AddNode("s");
    net::NodeId db_node = network.AddNode("d");
    net::NodeId client = network.AddNode("c");
    network.SetDuplexLink(server_node, db_node, {50e6, 500}).ok();
    network.SetDuplexLink(server_node, client, {1e6, 20000}).ok();
    storage::DatabaseServer db;
    db.RegisterStandardTypes().ok();
    server::InteractionServer server(&db, &network, server_node, db_node);
    doc::MultimediaDocument document =
        doc::MakeMedicalRecordDocument().value();
    storage::ObjectRef ref = server.StoreDocument(document, "p").value();
    server.OpenRoom("room", ref).value();
    server.Join("room", {"v", client}).value();
    server.SubmitChoice("room", "v", "CT", "hidden").value();
    benchmark::DoNotOptimize(network.AdvanceUntilIdle());
  }
}
BENCHMARK(BM_EndToEndScenario);

void BM_RenderView(benchmark::State& state) {
  doc::MultimediaDocument document =
      doc::MakeMedicalRecordDocument().value();
  cpnet::Assignment config = document.DefaultPresentation().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(client::RenderDocumentView(document, config));
  }
}
BENCHMARK(BM_RenderView);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
