// F9 — Multi-resolution views (the paper's Fig. 9) and the
// image-compression-transfer module: rate-distortion of the multi-layered
// hybrid codec (wavelet base + wavelet-packet + local-cosine residuals),
// progressive prefix decoding, per-bandwidth adaptation, and the
// single-basis-vs-hybrid ablation the Meyer-Averbuch-Coifman scheme
// argues for.

#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "compress/best_basis.h"
#include "compress/layered_codec.h"
#include "media/synthetic.h"

namespace {

using namespace mmconf;
using compress::CodecOptions;
using compress::LayerBasis;
using compress::LayeredCodec;
using compress::StreamInfo;

media::Image TestImage() {
  Rng rng(77);
  return media::MakePhantomCt({256, 256, 6, 3.0}, rng);
}

void PrintFigure9() {
  media::Image ct = TestImage();
  LayeredCodec codec;
  Bytes stream = codec.Encode(ct).value();
  StreamInfo info = LayeredCodec::Inspect(stream).value();

  std::printf("== F9: PSNR vs stream prefix (progressive layers) ==\n");
  std::printf("%-8s %-16s %-12s %-12s %-10s\n", "layers", "basis", "bytes",
              "bpp", "PSNR(dB)");
  const double pixels = 256.0 * 256.0;
  for (size_t k = 0; k < info.layers.size(); ++k) {
    media::Image decoded =
        LayeredCodec::Decode(stream, static_cast<int>(k) + 1).value();
    std::printf("%-8zu %-16s %-12zu %-12.3f %-10.2f\n", k + 1,
                compress::LayerBasisToString(info.layers[k].basis),
                info.layer_end[k],
                8.0 * static_cast<double>(info.layer_end[k]) / pixels,
                media::Image::Psnr(ct, decoded).value());
  }

  std::printf("\n== F9: per-partner resolution adaptation "
              "(2 s deadline) ==\n");
  std::printf("%-24s %-14s %-10s %-10s\n", "partner", "budget(B)",
              "layers", "PSNR(dB)");
  struct Partner {
    const char* name;
    double bandwidth;
  };
  for (Partner partner : std::vector<Partner>{{"workstation-10MB/s", 10e6},
                                              {"dsl-16KB/s", 16e3},
                                              {"isdn-4KB/s", 4e3},
                                              {"gsm-1.2KB/s", 1.2e3}}) {
    size_t budget = static_cast<size_t>(partner.bandwidth * 2.0);
    int layers = LayeredCodec::LayersWithinBudget(stream, budget).value();
    if (layers > 0) {
      media::Image view = LayeredCodec::Decode(stream, layers).value();
      std::printf("%-24s %-14zu %-10d %-10.2f\n", partner.name, budget,
                  layers, media::Image::Psnr(ct, view).value());
    } else {
      media::Image thumb = LayeredCodec::DecodeThumbnail(stream, 2).value();
      std::printf("%-24s %-14zu %-10s %dx%d thumb\n", partner.name, budget,
                  "0", thumb.width(), thumb.height());
    }
  }

  std::printf("\n== ablation: hybrid residual bases vs wavelet-only at "
              "matched rate ==\n");
  std::printf("%-28s %-12s %-10s\n", "configuration", "bytes", "PSNR(dB)");
  struct Config {
    const char* name;
    CodecOptions options;
  };
  std::vector<Config> configs;
  configs.push_back({"hybrid (wav+packet+lct)", CodecOptions{}});
  CodecOptions wavelet_only;
  wavelet_only.layers = {{LayerBasis::kWavelet, 4, 16.0},
                         {LayerBasis::kWavelet, 4, 8.0},
                         {LayerBasis::kWavelet, 4, 4.0}};
  configs.push_back({"wavelet-only residuals", wavelet_only});
  CodecOptions single;
  single.layers = {{LayerBasis::kWavelet, 4, 4.0}};
  configs.push_back({"single layer (step 4)", single});
  for (const Config& config : configs) {
    Bytes encoded = LayeredCodec(config.options).Encode(ct).value();
    media::Image decoded = LayeredCodec::Decode(encoded).value();
    std::printf("%-28s %-12zu %-10.2f\n", config.name, encoded.size(),
                media::Image::Psnr(ct, decoded).value());
  }

  std::printf("\n== rate control: EncodeToBudget ==\n");
  std::printf("%-12s %-12s %-10s\n", "budget(B)", "actual(B)", "PSNR(dB)");
  LayeredCodec rc;
  for (size_t budget : {size_t{20000}, size_t{8000}, size_t{3000}}) {
    auto constrained = rc.EncodeToBudget(ct, budget);
    if (!constrained.ok()) {
      std::printf("%-12zu (unreachable)\n", budget);
      continue;
    }
    media::Image decoded = LayeredCodec::Decode(*constrained).value();
    std::printf("%-12zu %-12zu %-10.2f\n", budget, constrained->size(),
                media::Image::Psnr(ct, decoded).value());
  }

  std::printf("\n== best-basis search (l1 cost, Daub4, depth 4) ==\n");
  std::printf("%-12s %-12s %-12s %-12s %-12s %s\n", "content", "identity",
              "pyramid-4", "uniform-4", "best", "best-leaves");
  compress::Plane smooth = compress::PlaneFromImage(ct);
  compress::Plane texture(256, 256);
  for (int y = 0; y < 256; ++y) {
    for (int x = 0; x < 256; ++x) {
      texture.at(x, y) = 100.0 * std::sin(2.0 * M_PI * x * 37 / 256.0) *
                         std::sin(2.0 * M_PI * y * 41 / 256.0);
    }
  }
  struct Content {
    const char* name;
    const compress::Plane* plane;
  };
  for (Content content : std::vector<Content>{{"ct-phantom", &smooth},
                                              {"oscillatory", &texture}}) {
    compress::BasisNode best =
        compress::BestBasisSearch(*content.plane, 4,
                                  compress::WaveletBasis::kDaub4)
            .value();
    std::printf(
        "%-12s %-12.0f %-12.0f %-12.0f %-12.0f %zu\n", content.name,
        compress::L1Cost(*content.plane),
        compress::PyramidCost(*content.plane, 4,
                              compress::WaveletBasis::kDaub4)
            .value(),
        compress::UniformPacketCost(*content.plane, 4,
                                    compress::WaveletBasis::kDaub4)
            .value(),
        best.cost, best.LeafCount());
  }
  std::printf("\n");
}

void BM_Encode(benchmark::State& state) {
  media::Image ct = TestImage();
  LayeredCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(ct));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ct.pixels().size()));
}
BENCHMARK(BM_Encode);

void BM_DecodeLayers(benchmark::State& state) {
  media::Image ct = TestImage();
  Bytes stream = LayeredCodec().Encode(ct).value();
  int layers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayeredCodec::Decode(stream, layers));
  }
  state.counters["layers"] = layers;
}
BENCHMARK(BM_DecodeLayers)->Arg(1)->Arg(2)->Arg(3);

void BM_EncodeToBudget(benchmark::State& state) {
  media::Image ct = TestImage();
  LayeredCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec.EncodeToBudget(ct, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_EncodeToBudget)->Arg(8000);

void BM_BestBasisSearch(benchmark::State& state) {
  media::Image ct = TestImage();
  compress::Plane plane = compress::PlaneFromImage(ct);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::BestBasisSearch(
        plane, static_cast<int>(state.range(0)),
        compress::WaveletBasis::kDaub4));
  }
}
BENCHMARK(BM_BestBasisSearch)->Arg(2)->Arg(4);

void BM_DecodeThumbnail(benchmark::State& state) {
  media::Image ct = TestImage();
  Bytes stream = LayeredCodec().Encode(ct).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LayeredCodec::DecodeThumbnail(stream,
                                      static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_DecodeThumbnail)->Arg(1)->Arg(3);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure9();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
