// F9 — Multi-resolution views (the paper's Fig. 9) and the
// image-compression-transfer module: rate-distortion of the multi-layered
// hybrid codec (wavelet base + wavelet-packet + local-cosine residuals),
// progressive prefix decoding, per-bandwidth adaptation, and the
// single-basis-vs-hybrid ablation the Meyer-Averbuch-Coifman scheme
// argues for.
//
// Plus the kernel ablation: the allocation-free flat DWT kernels against
// a textbook formulation (runtime filter vectors, per-call scratch,
// modulo indexing) carried here as the "before", and the dispatched
// CRC32C engine against the portable table engine — with bit-identity /
// engine-agreement checks. Results are printed and written as JSON
// (BENCH_compression.json; override with --json_out=PATH). --smoke
// shrinks the inputs for a ctest-able perf smoke run and skips the
// figures and google-benchmark sweeps.
//
// --metrics_out=PATH dumps the obs MetricsRegistry snapshot (the
// compress.kernel.* work counters accumulated by the check pass;
// byte-identical across runs).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_obs.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "compress/best_basis.h"
#include "compress/layered_codec.h"
#include "media/synthetic.h"
#include "obs/metrics.h"

namespace {

using namespace mmconf;
using compress::CodecOptions;
using compress::LayerBasis;
using compress::LayeredCodec;
using compress::StreamInfo;

media::Image TestImage() {
  Rng rng(77);
  return media::MakePhantomCt({256, 256, 6, 3.0}, rng);
}

void PrintFigure9() {
  media::Image ct = TestImage();
  LayeredCodec codec;
  Bytes stream = codec.Encode(ct).value();
  StreamInfo info = LayeredCodec::Inspect(stream).value();

  std::printf("== F9: PSNR vs stream prefix (progressive layers) ==\n");
  std::printf("%-8s %-16s %-12s %-12s %-10s\n", "layers", "basis", "bytes",
              "bpp", "PSNR(dB)");
  const double pixels = 256.0 * 256.0;
  for (size_t k = 0; k < info.layers.size(); ++k) {
    media::Image decoded =
        LayeredCodec::Decode(stream, static_cast<int>(k) + 1).value();
    std::printf("%-8zu %-16s %-12zu %-12.3f %-10.2f\n", k + 1,
                compress::LayerBasisToString(info.layers[k].basis),
                info.layer_end[k],
                8.0 * static_cast<double>(info.layer_end[k]) / pixels,
                media::Image::Psnr(ct, decoded).value());
  }

  std::printf("\n== F9: per-partner resolution adaptation "
              "(2 s deadline) ==\n");
  std::printf("%-24s %-14s %-10s %-10s\n", "partner", "budget(B)",
              "layers", "PSNR(dB)");
  struct Partner {
    const char* name;
    double bandwidth;
  };
  for (Partner partner : std::vector<Partner>{{"workstation-10MB/s", 10e6},
                                              {"dsl-16KB/s", 16e3},
                                              {"isdn-4KB/s", 4e3},
                                              {"gsm-1.2KB/s", 1.2e3}}) {
    size_t budget = static_cast<size_t>(partner.bandwidth * 2.0);
    int layers = LayeredCodec::LayersWithinBudget(stream, budget).value();
    if (layers > 0) {
      media::Image view = LayeredCodec::Decode(stream, layers).value();
      std::printf("%-24s %-14zu %-10d %-10.2f\n", partner.name, budget,
                  layers, media::Image::Psnr(ct, view).value());
    } else {
      media::Image thumb = LayeredCodec::DecodeThumbnail(stream, 2).value();
      std::printf("%-24s %-14zu %-10s %dx%d thumb\n", partner.name, budget,
                  "0", thumb.width(), thumb.height());
    }
  }

  std::printf("\n== ablation: hybrid residual bases vs wavelet-only at "
              "matched rate ==\n");
  std::printf("%-28s %-12s %-10s\n", "configuration", "bytes", "PSNR(dB)");
  struct Config {
    const char* name;
    CodecOptions options;
  };
  std::vector<Config> configs;
  configs.push_back({"hybrid (wav+packet+lct)", CodecOptions{}});
  CodecOptions wavelet_only;
  wavelet_only.layers = {{LayerBasis::kWavelet, 4, 16.0},
                         {LayerBasis::kWavelet, 4, 8.0},
                         {LayerBasis::kWavelet, 4, 4.0}};
  configs.push_back({"wavelet-only residuals", wavelet_only});
  CodecOptions single;
  single.layers = {{LayerBasis::kWavelet, 4, 4.0}};
  configs.push_back({"single layer (step 4)", single});
  for (const Config& config : configs) {
    Bytes encoded = LayeredCodec(config.options).Encode(ct).value();
    media::Image decoded = LayeredCodec::Decode(encoded).value();
    std::printf("%-28s %-12zu %-10.2f\n", config.name, encoded.size(),
                media::Image::Psnr(ct, decoded).value());
  }

  std::printf("\n== rate control: EncodeToBudget ==\n");
  std::printf("%-12s %-12s %-10s\n", "budget(B)", "actual(B)", "PSNR(dB)");
  LayeredCodec rc;
  for (size_t budget : {size_t{20000}, size_t{8000}, size_t{3000}}) {
    auto constrained = rc.EncodeToBudget(ct, budget);
    if (!constrained.ok()) {
      std::printf("%-12zu (unreachable)\n", budget);
      continue;
    }
    media::Image decoded = LayeredCodec::Decode(*constrained).value();
    std::printf("%-12zu %-12zu %-10.2f\n", budget, constrained->size(),
                media::Image::Psnr(ct, decoded).value());
  }

  std::printf("\n== best-basis search (l1 cost, Daub4, depth 4) ==\n");
  std::printf("%-12s %-12s %-12s %-12s %-12s %s\n", "content", "identity",
              "pyramid-4", "uniform-4", "best", "best-leaves");
  compress::Plane smooth = compress::PlaneFromImage(ct);
  compress::Plane texture(256, 256);
  for (int y = 0; y < 256; ++y) {
    for (int x = 0; x < 256; ++x) {
      texture.at(x, y) = 100.0 * std::sin(2.0 * M_PI * x * 37 / 256.0) *
                         std::sin(2.0 * M_PI * y * 41 / 256.0);
    }
  }
  struct Content {
    const char* name;
    const compress::Plane* plane;
  };
  for (Content content : std::vector<Content>{{"ct-phantom", &smooth},
                                              {"oscillatory", &texture}}) {
    compress::BasisNode best =
        compress::BestBasisSearch(*content.plane, 4,
                                  compress::WaveletBasis::kDaub4)
            .value();
    std::printf(
        "%-12s %-12.0f %-12.0f %-12.0f %-12.0f %zu\n", content.name,
        compress::L1Cost(*content.plane),
        compress::PyramidCost(*content.plane, 4,
                              compress::WaveletBasis::kDaub4)
            .value(),
        compress::UniformPacketCost(*content.plane, 4,
                                    compress::WaveletBasis::kDaub4)
            .value(),
        best.cost, best.LeafCount());
  }
  std::printf("\n");
}

void BM_Encode(benchmark::State& state) {
  media::Image ct = TestImage();
  LayeredCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(codec.Encode(ct));
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(ct.pixels().size()));
}
BENCHMARK(BM_Encode);

void BM_DecodeLayers(benchmark::State& state) {
  media::Image ct = TestImage();
  Bytes stream = LayeredCodec().Encode(ct).value();
  int layers = static_cast<int>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(LayeredCodec::Decode(stream, layers));
  }
  state.counters["layers"] = layers;
}
BENCHMARK(BM_DecodeLayers)->Arg(1)->Arg(2)->Arg(3);

void BM_EncodeToBudget(benchmark::State& state) {
  media::Image ct = TestImage();
  LayeredCodec codec;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        codec.EncodeToBudget(ct, static_cast<size_t>(state.range(0))));
  }
}
BENCHMARK(BM_EncodeToBudget)->Arg(8000);

void BM_BestBasisSearch(benchmark::State& state) {
  media::Image ct = TestImage();
  compress::Plane plane = compress::PlaneFromImage(ct);
  for (auto _ : state) {
    benchmark::DoNotOptimize(compress::BestBasisSearch(
        plane, static_cast<int>(state.range(0)),
        compress::WaveletBasis::kDaub4));
  }
}
BENCHMARK(BM_BestBasisSearch)->Arg(2)->Arg(4);

void BM_DecodeThumbnail(benchmark::State& state) {
  media::Image ct = TestImage();
  Bytes stream = LayeredCodec().Encode(ct).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        LayeredCodec::DecodeThumbnail(stream,
                                      static_cast<int>(state.range(0))));
  }
}
BENCHMARK(BM_DecodeThumbnail)->Arg(1)->Arg(3);

// --- Kernel ablation ------------------------------------------------

double NowUs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1000.0;
}

struct TapSet {
  std::vector<double> low, high;
};

/// Filters recomputed from their defining sqrt expressions each call —
/// the textbook formulation the flat kernels replaced.
TapSet MakeTaps(compress::WaveletBasis basis) {
  if (basis == compress::WaveletBasis::kHaar) {
    const double s = 1.0 / std::sqrt(2.0);
    return {{s, s}, {s, -s}};
  }
  const double s3 = std::sqrt(3.0);
  const double norm = 4.0 * std::sqrt(2.0);
  TapSet taps;
  taps.low = {(1 + s3) / norm, (3 + s3) / norm, (3 - s3) / norm,
              (1 - s3) / norm};
  taps.high.resize(4);
  for (size_t k = 0; k < 4; ++k) {
    taps.high[k] = (k % 2 == 0 ? 1.0 : -1.0) * taps.low[3 - k];
  }
  return taps;
}

/// Textbook 1D step: circular `% n` indexing, per-call output vector.
void TextbookLine(std::vector<double>& line, const TapSet& taps,
                  bool forward) {
  const size_t n = line.size();
  const size_t half = n / 2;
  if (forward) {
    std::vector<double> out(n);
    for (size_t k = 0; k < half; ++k) {
      double a = 0, d = 0;
      for (size_t m = 0; m < taps.low.size(); ++m) {
        double x = line[(2 * k + m) % n];
        a += taps.low[m] * x;
        d += taps.high[m] * x;
      }
      out[k] = a;
      out[half + k] = d;
    }
    line = out;
  } else {
    std::vector<double> out(n, 0.0);
    for (size_t k = 0; k < half; ++k) {
      for (size_t m = 0; m < taps.low.size(); ++m) {
        out[(2 * k + m) % n] +=
            taps.low[m] * line[k] + taps.high[m] * line[half + k];
      }
    }
    line = out;
  }
}

/// Textbook pyramid: per level, rows through TextbookLine, then columns
/// gathered/scattered one at a time — the "before" of Transform2DRegion.
void TextbookDwt2D(compress::Plane& plane, int levels, bool forward,
                   compress::WaveletBasis basis) {
  std::vector<int> order(static_cast<size_t>(levels));
  for (int i = 0; i < levels; ++i) order[static_cast<size_t>(i)] = i;
  if (!forward) {
    for (int i = 0; i < levels; ++i) {
      order[static_cast<size_t>(i)] = levels - 1 - i;
    }
  }
  for (int level : order) {
    TapSet taps = MakeTaps(basis);  // recomputed per level, as before
    const int w = plane.width >> level;
    const int h = plane.height >> level;
    // Rows then gathered columns, both directions — the pass order the
    // region kernel uses, so outputs stay comparable bit for bit.
    std::vector<double> line(static_cast<size_t>(w));
    for (int y = 0; y < h; ++y) {
      for (int x = 0; x < w; ++x) {
        line[static_cast<size_t>(x)] = plane.at(x, y);
      }
      TextbookLine(line, taps, forward);
      for (int x = 0; x < w; ++x) {
        plane.at(x, y) = line[static_cast<size_t>(x)];
      }
    }
    line.resize(static_cast<size_t>(h));
    for (int x = 0; x < w; ++x) {
      for (int y = 0; y < h; ++y) {
        line[static_cast<size_t>(y)] = plane.at(x, y);
      }
      TextbookLine(line, taps, forward);
      for (int y = 0; y < h; ++y) {
        plane.at(x, y) = line[static_cast<size_t>(y)];
      }
    }
  }
}

struct ScenarioResult {
  std::string name;
  size_t bytes = 0;        ///< workload size (plane/buffer/encoded bytes)
  double baseline_us = 0;  ///< textbook kernel / table CRC (0: no baseline)
  double fast_us = 0;      ///< flat kernel / dispatched CRC
  bool ok = false;         ///< bit-identity / engine-agreement check
  double Speedup() const {
    return fast_us > 0 && baseline_us > 0 ? baseline_us / fast_us : 0;
  }
};

ScenarioResult RunDwtScenario(compress::WaveletBasis basis, int size,
                              int reps) {
  ScenarioResult result;
  result.name = basis == compress::WaveletBasis::kHaar ? "dwt2d-haar"
                                                       : "dwt2d-daub4";
  result.bytes =
      static_cast<size_t>(size) * static_cast<size_t>(size) * 8;
  const int levels = 3;
  Rng rng(19);
  compress::Plane input(size, size);
  for (double& v : input.data) v = rng.Uniform(-100, 100);

  // Bit-identity: the flat region kernel against the textbook pyramid,
  // forward and inverse.
  compress::Plane fast = input;
  compress::Dwt2D(fast, levels, basis).ok();
  compress::Plane reference = input;
  TextbookDwt2D(reference, levels, /*forward=*/true, basis);
  result.ok = fast.data == reference.data;
  compress::Idwt2D(fast, levels, basis).ok();
  TextbookDwt2D(reference, levels, /*forward=*/false, basis);
  result.ok = result.ok && fast.data == reference.data;

  double t0 = NowUs();
  for (int rep = 0; rep < reps; ++rep) {
    compress::Plane plane = input;
    TextbookDwt2D(plane, levels, true, basis);
    TextbookDwt2D(plane, levels, false, basis);
    benchmark::DoNotOptimize(plane.data.data());
  }
  result.baseline_us = (NowUs() - t0) / reps;
  double t1 = NowUs();
  for (int rep = 0; rep < reps; ++rep) {
    compress::Plane plane = input;
    compress::Dwt2D(plane, levels, basis).ok();
    compress::Idwt2D(plane, levels, basis).ok();
    benchmark::DoNotOptimize(plane.data.data());
  }
  result.fast_us = (NowUs() - t1) / reps;
  return result;
}

ScenarioResult RunCrcScenario(size_t buffer_bytes, int reps) {
  ScenarioResult result;
  result.name = "crc32c";
  result.bytes = buffer_bytes;
  Rng rng(29);
  std::vector<uint8_t> buffer(buffer_bytes);
  for (uint8_t& b : buffer) {
    b = static_cast<uint8_t>(rng.NextBelow(256));
  }

  // Engine agreement across every available engine, short lengths with
  // unaligned offsets plus the full buffer.
  std::vector<Crc32cImpl> engines = {Crc32cImpl::kTable,
                                     Crc32cImpl::kSlice8};
  if (SetCrc32cImpl(Crc32cImpl::kHardware)) {
    engines.push_back(Crc32cImpl::kHardware);
  }
  result.ok = true;
  for (size_t offset : {size_t{0}, size_t{3}}) {
    for (size_t n = 0; n + offset <= 260 && n + offset <= buffer_bytes;
         ++n) {
      SetCrc32cImpl(engines[0]);
      uint32_t expected = Crc32c(buffer.data() + offset, n, 0x1234);
      for (size_t e = 1; e < engines.size(); ++e) {
        SetCrc32cImpl(engines[e]);
        if (Crc32c(buffer.data() + offset, n, 0x1234) != expected) {
          result.ok = false;
        }
      }
    }
  }
  SetCrc32cImpl(engines[0]);
  uint32_t expected_full = Crc32c(buffer.data(), buffer.size());
  for (size_t e = 1; e < engines.size(); ++e) {
    SetCrc32cImpl(engines[e]);
    if (Crc32c(buffer.data(), buffer.size()) != expected_full) {
      result.ok = false;
    }
  }

  SetCrc32cImpl(Crc32cImpl::kTable);
  double t0 = NowUs();
  for (int rep = 0; rep < reps; ++rep) {
    benchmark::DoNotOptimize(Crc32c(buffer.data(), buffer.size()));
  }
  result.baseline_us = (NowUs() - t0) / reps;
  SetCrc32cImpl(Crc32cImpl::kAuto);
  double t1 = NowUs();
  for (int rep = 0; rep < reps; ++rep) {
    benchmark::DoNotOptimize(Crc32c(buffer.data(), buffer.size()));
  }
  result.fast_us = (NowUs() - t1) / reps;
  return result;
}

ScenarioResult RunCodecScenario(int size, int reps) {
  ScenarioResult result;
  result.name = "codec-roundtrip";
  Rng rng(77);
  media::Image ct =
      media::MakePhantomCt({size, size, 6, 3.0}, rng);
  LayeredCodec codec;
  Bytes stream = codec.Encode(ct).value();
  result.bytes = stream.size();
  media::Image decoded = LayeredCodec::Decode(stream).value();
  result.ok = media::Image::Psnr(ct, decoded).value() > 28.0;

  // No "before" codec is carried; only the current pipeline is timed.
  double t1 = NowUs();
  for (int rep = 0; rep < reps; ++rep) {
    Bytes encoded = codec.Encode(ct).value();
    benchmark::DoNotOptimize(LayeredCodec::Decode(encoded));
  }
  result.fast_us = (NowUs() - t1) / reps;
  return result;
}

std::vector<ScenarioResult> RunKernelAblation(
    bool smoke, obs::MetricsRegistry* metrics) {
  // Deterministic work counters: the check passes run observed, the
  // timing loops do not (the flags are read per call inside the
  // kernels, so attach/detach order is what keeps snapshots stable).
  compress::SetKernelObserver(metrics);
  const int plane = smoke ? 64 : 256;
  const int reps = smoke ? 2 : 20;
  std::vector<ScenarioResult> results;
  results.push_back(
      RunDwtScenario(compress::WaveletBasis::kHaar, plane, reps));
  results.push_back(
      RunDwtScenario(compress::WaveletBasis::kDaub4, plane, reps));
  results.push_back(
      RunCrcScenario(smoke ? size_t{256} << 10 : size_t{4} << 20,
                     smoke ? 4 : 40));
  results.push_back(RunCodecScenario(smoke ? 64 : 256, smoke ? 1 : 5));
  compress::SetKernelObserver(nullptr);

  const char* impl = "table";
  if (ActiveCrc32cImpl() == Crc32cImpl::kHardware) impl = "hardware";
  if (ActiveCrc32cImpl() == Crc32cImpl::kSlice8) impl = "slice8";
  std::printf("== Codec kernels: flat/allocation-free vs textbook, "
              "CRC32C %s vs table (%s) ==\n",
              impl, smoke ? "smoke" : "full");
  std::printf("%-16s %-12s %-14s %-12s %-9s %s\n", "scenario", "bytes",
              "baseline(us)", "fast(us)", "speedup", "ok");
  for (const ScenarioResult& result : results) {
    std::printf("%-16s %-12zu %-14.1f %-12.1f %-9.1f %s\n",
                result.name.c_str(), result.bytes, result.baseline_us,
                result.fast_us, result.Speedup(),
                result.ok ? "yes" : "NO");
  }
  std::printf("\n");
  return results;
}

bool WriteJson(const std::string& path,
               const std::vector<ScenarioResult>& results, bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"compression_kernels\",\n"
               "  \"smoke\": %s,\n  \"scenarios\": [\n",
               smoke ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& result = results[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"bytes\": %zu, \"baseline_us\": %.3f, "
        "\"fast_us\": %.3f, \"speedup\": %.2f, \"ok\": %s}%s\n",
        result.name.c_str(), result.bytes, result.baseline_us,
        result.fast_us, result.Speedup(), result.ok ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  return bench::CloseChecked(out, path);
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_compression.json";
  std::string metrics_path;
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_path = argv[i] + 14;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // An unwritable output path should fail before the sweep, not after.
  if (!bench::ProbeWritable(json_path)) return 1;
  if (!metrics_path.empty() && !bench::ProbeWritable(metrics_path)) return 1;

  obs::MetricsRegistry registry;
  obs::MetricsRegistry* metrics =
      metrics_path.empty() ? nullptr : &registry;

  std::vector<ScenarioResult> results = RunKernelAblation(smoke, metrics);
  bool wrote = WriteJson(json_path, results, smoke);
  if (!metrics_path.empty()) {
    wrote = bench::WriteFileChecked(metrics_path,
                                    registry.Snapshot().ToJson()) &&
            wrote;
  }
  bool checks_ok = true;
  for (const ScenarioResult& result : results) {
    checks_ok = checks_ok && result.ok;
  }
  if (smoke) {
    // ctest perf smoke: fail when a kernel diverges from its reference
    // or the JSON cannot be produced; timing itself is not asserted.
    return checks_ok && wrote ? 0 : 1;
  }
  PrintFigure9();
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return checks_ok && wrote ? 0 : 1;
}
