// Federated interaction tier at scale: what splitting the room
// population across N interaction nodes costs (forwarded hops, backbone
// bytes) and buys (per-node load), and what a live-room migration costs
// end to end — snapshot transfer, log replay, verified cutover, stream
// carryover — all in deterministic virtual time.
//
// Results are printed and written as machine-readable JSON
// (BENCH_federation.json; override with --json_out=PATH). --smoke runs
// a shrunk sweep and exits nonzero when a room fails to converge, a
// migration fails verification, or the JSON cannot be written.
//
// --metrics_out=PATH dumps the obs MetricsRegistry snapshot (per-node
// fed.node.<i>.* gauges and tail-latency histograms included) and
// --trace_out=PATH a Chrome trace_event timeline with migration spans.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_obs.h"
#include "common/rng.h"
#include "compress/layered_codec.h"
#include "doc/builder.h"
#include "federation/placement.h"
#include "federation/tier.h"
#include "media/synthetic.h"
#include "net/network.h"
#include "server/interaction_server.h"
#include "storage/database.h"

namespace {

using namespace mmconf;

constexpr int kClients = 4;

Bytes EncodeObject(uint64_t seed) {
  Rng rng(seed);
  media::Image image = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
  compress::LayeredCodec codec;
  return codec.Encode(image).value();
}

struct FedFleet {
  Clock clock;
  storage::DatabaseServer db;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<federation::FederatedInteractionTier> tier;
  obs::MetricsRegistry local_metrics;  ///< used when no --metrics_out sink
  obs::MetricsRegistry* metrics = nullptr;
  net::NodeId db_node = 0;
  std::vector<net::NodeId> clients;

  explicit FedFleet(size_t num_nodes, const bench::ObsSinks& sinks = {},
                    int index = 0) {
    network = std::make_unique<net::Network>(&clock, 4242);
    if (sinks.enabled()) sinks.BeginFleet(&clock, index);
    db_node = network->AddNode("db");
    db.RegisterStandardTypes().ok();
    federation::FederationOptions options;
    options.num_nodes = num_nodes;
    options.backbone = {50e6, 1000};
    options.retry.initial_timeout_micros = 150000;
    options.retry.max_attempts = 10;
    tier = std::make_unique<federation::FederatedInteractionTier>(
        &db, network.get(), db_node, options);
    metrics = sinks.metrics != nullptr ? sinks.metrics : &local_metrics;
    tier->SetObserver(metrics, sinks.tracer);
    if (sinks.enabled()) {
      network->SetObserver(sinks.metrics, sinks.tracer);
      tier->transport()->SetObserver(sinks.metrics, sinks.tracer);
    }
    for (int i = 0; i < kClients; ++i) {
      net::NodeId node = network->AddNode("client-" + std::to_string(i));
      tier->ConnectClient(node, {1e6, 20000}).ok();
      clients.push_back(node);
    }
  }
};

const char* Choice(int round) {
  static const char* kChoices[] = {"hidden", "thumbnail", "segmented"};
  return kChoices[round % 3];
}

struct FedRow {
  size_t nodes = 0;
  size_t rooms = 0;
  int rounds = 0;
  size_t routed = 0;      ///< cross-node forwarded hops
  double worst_t2c_ms = 0;
  size_t wire_bytes = 0;
  size_t max_node_rooms = 0;
  size_t min_node_rooms = 0;
  double migration_ms = 0;
  size_t migration_delta = 0;
  size_t streams_carried = 0;
  bool migration_verified = false;
  bool converged = false;
};

FedRow RunPoint(size_t num_nodes, size_t num_rooms, int rounds,
                const bench::ObsSinks& sinks, int index) {
  FedFleet fleet(num_nodes, sinks, index);
  uint64_t routed_before = fleet.metrics->GetCounter("fed.routed")->value();
  FedRow row;
  row.nodes = num_nodes;
  row.rooms = num_rooms;
  row.rounds = rounds;

  std::vector<std::string> rooms;
  for (size_t r = 0; r < num_rooms; ++r) {
    std::string id = "case-" + std::to_string(r);
    fleet.tier
        ->OpenRoomWithDocument(id, doc::MakeMedicalRecordDocument().value())
        .value();
    for (int m = 0; m < 2; ++m) {
      fleet.tier
          ->Join(id, {"viewer-" + std::to_string(r) + "-" + std::to_string(m),
                      fleet.clients[(2 * r + m) % kClients]})
          .value();
    }
    rooms.push_back(id);
  }
  fleet.tier->Settle().value();

  // Choice rounds, deliberately entering through a rotating (often
  // wrong) node so the forwarding path is on the hot path.
  for (int round = 0; round < rounds; ++round) {
    for (size_t r = 0; r < rooms.size(); ++r) {
      size_t via = (r + static_cast<size_t>(round)) % num_nodes;
      fleet.tier
          ->SubmitChoiceVia(via, rooms[r],
                            "viewer-" + std::to_string(r) + "-0", "CT",
                            Choice(round + static_cast<int>(r)))
          .value();
    }
    fleet.tier->Settle().value();
    for (const std::string& id : rooms) {
      size_t owner = fleet.tier->NodeOf(id).value();
      server::RoomReliabilityStats stats =
          fleet.tier->node(owner)->RoomStats(id).value();
      if (stats.last_propagate_at > 0 &&
          stats.last_converged_at >= stats.last_propagate_at) {
        double t2c_ms = static_cast<double>(stats.last_converged_at -
                                            stats.last_propagate_at) /
                        1000.0;
        if (t2c_ms > row.worst_t2c_ms) row.worst_t2c_ms = t2c_ms;
      }
    }
  }

  // One live migration per point: rooms[0] with a mid-flight stream and
  // an action in the delta window, to its neighbour node.
  if (num_nodes > 1) {
    std::string moving = rooms[0];
    size_t owner = fleet.tier->NodeOf(moving).value();
    size_t target = (owner + 1) % num_nodes;
    std::vector<Bytes> objects = {EncodeObject(3), EncodeObject(4)};
    fleet.tier->node(owner)
        ->OpenStream(moving, "viewer-0-0", objects, {})
        .value();
    fleet.tier->StartMigration(moving, target).ok();
    fleet.tier
        ->SubmitChoice(moving, "viewer-0-1", "CT", "icon")
        .value();
    federation::MigrationReport report =
        fleet.tier->FinishMigration(moving).value();
    row.migration_ms = static_cast<double>(report.completed_at -
                                           report.started_at) /
                       1000.0;
    row.migration_delta = report.delta_actions;
    row.streams_carried = report.streams_carried;
    row.migration_verified = report.verified;
    fleet.tier->Settle().value();
  } else {
    row.migration_verified = true;  // nothing to migrate inside one node
  }

  std::vector<federation::NodeLoad> loads = fleet.tier->Loads();
  row.max_node_rooms = 0;
  row.min_node_rooms = num_rooms;
  for (const federation::NodeLoad& load : loads) {
    if (load.rooms > row.max_node_rooms) row.max_node_rooms = load.rooms;
    if (load.rooms < row.min_node_rooms) row.min_node_rooms = load.rooms;
  }
  row.routed =
      fleet.metrics->GetCounter("fed.routed")->value() - routed_before;
  row.wire_bytes = fleet.network->TotalBytesSent();
  row.converged = true;
  for (const std::string& id : rooms) {
    size_t node = fleet.tier->NodeOf(id).value();
    row.converged =
        row.converged && fleet.tier->node(node)->RoomConverged(id);
  }
  return row;
}

std::vector<FedRow> RunScaleSweep(bool smoke,
                                  const bench::ObsSinks& sinks = {}) {
  const int rounds = smoke ? 2 : 6;
  const size_t num_rooms = smoke ? 4 : 12;
  std::vector<FedRow> rows;
  std::printf("== federation: %zu rooms across N interaction nodes "
              "(%d choice rounds, %s) ==\n",
              num_rooms, rounds, smoke ? "smoke" : "full");
  std::printf("%-6s %-7s %-8s %-10s %-12s %-11s %-10s %-9s %-8s\n", "nodes",
              "routed", "t2c(ms)", "wire(B)", "rooms/node", "migr(ms)",
              "delta", "streams", "verified");
  int index = 0;
  for (size_t nodes : {1, 2, 4}) {
    FedRow row = RunPoint(nodes, num_rooms, rounds, sinks, index++);
    std::printf("%-6zu %-7zu %-8.1f %-10zu %zu..%-9zu %-11.1f %-10zu "
                "%-9zu %s\n",
                row.nodes, row.routed, row.worst_t2c_ms, row.wire_bytes,
                row.min_node_rooms, row.max_node_rooms, row.migration_ms,
                row.migration_delta, row.streams_carried,
                row.migration_verified ? "yes" : "NO");
    rows.push_back(row);
  }
  return rows;
}

bool WriteJson(const std::string& path, const std::vector<FedRow>& rows,
               bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"federation_scale_sweep\",\n"
               "  \"smoke\": %s,\n  \"sweep\": [\n",
               smoke ? "true" : "false");
  for (size_t i = 0; i < rows.size(); ++i) {
    const FedRow& row = rows[i];
    std::fprintf(
        out,
        "    {\"nodes\": %zu, \"rooms\": %zu, \"rounds\": %d, "
        "\"routed\": %zu, \"worst_t2c_ms\": %.2f, \"wire_bytes\": %zu, "
        "\"max_node_rooms\": %zu, \"min_node_rooms\": %zu, "
        "\"migration_ms\": %.2f, \"migration_delta\": %zu, "
        "\"streams_carried\": %zu, \"migration_verified\": %s, "
        "\"converged\": %s}%s\n",
        row.nodes, row.rooms, row.rounds, row.routed, row.worst_t2c_ms,
        row.wire_bytes, row.max_node_rooms, row.min_node_rooms,
        row.migration_ms, row.migration_delta, row.streams_carried,
        row.migration_verified ? "true" : "false",
        row.converged ? "true" : "false", i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  return bench::CloseChecked(out, path);
}

void BM_FederatedChoiceRound(benchmark::State& state) {
  // One choice entering through the wrong node: forward hop + propagate
  // + settle, as a function of the node count.
  size_t nodes = static_cast<size_t>(state.range(0));
  FedFleet fleet(nodes);
  fleet.tier
      ->OpenRoomWithDocument("room", doc::MakeMedicalRecordDocument().value())
      .value();
  fleet.tier->Join("room", {"viewer", fleet.clients[0]}).value();
  fleet.tier->Settle().value();
  size_t owner = fleet.tier->NodeOf("room").value();
  size_t via = nodes > 1 ? (owner + 1) % nodes : owner;
  int round = 0;
  for (auto _ : state) {
    fleet.tier->SubmitChoiceVia(via, "room", "viewer", "CT", Choice(round))
        .value();
    benchmark::DoNotOptimize(fleet.tier->Settle().value());
    ++round;
  }
}
BENCHMARK(BM_FederatedChoiceRound)->Arg(1)->Arg(2)->Arg(4);

void BM_RoomPlacement(benchmark::State& state) {
  federation::RoomPlacement placement(16);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        placement.NodeFor("room-" + std::to_string(i++ % 4096)));
  }
}
BENCHMARK(BM_RoomPlacement);

void BM_RoomMigration(benchmark::State& state) {
  // Full Start+Finish cycle of a room with history, ping-ponging the
  // same room between two nodes so each iteration migrates live state.
  FedFleet fleet(2);
  fleet.tier
      ->OpenRoomWithDocument("room", doc::MakeMedicalRecordDocument().value())
      .value();
  fleet.tier->Join("room", {"viewer", fleet.clients[0]}).value();
  fleet.tier->SubmitChoice("room", "viewer", "CT", "hidden").value();
  fleet.tier->Settle().value();
  size_t here = fleet.tier->NodeOf("room").value();
  for (auto _ : state) {
    size_t there = 1 - here;
    benchmark::DoNotOptimize(fleet.tier->MigrateRoom("room", there).value());
    here = there;
  }
}
BENCHMARK(BM_RoomMigration);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_federation.json";
  std::string metrics_path;
  std::string trace_path;
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace_out=", 12) == 0) {
      trace_path = argv[i] + 12;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // An unwritable output path should fail before the sweep, not after.
  if (!bench::ProbeWritable(json_path)) return 1;
  if (!metrics_path.empty() && !bench::ProbeWritable(metrics_path)) return 1;
  if (!trace_path.empty() && !bench::ProbeWritable(trace_path)) return 1;

  obs::MetricsRegistry registry;
  obs::Tracer tracer(nullptr);
  bench::ObsSinks sinks;
  if (!metrics_path.empty()) sinks.metrics = &registry;
  if (!trace_path.empty()) sinks.tracer = &tracer;

  std::vector<FedRow> rows = RunScaleSweep(smoke, sinks);
  bool wrote = WriteJson(json_path, rows, smoke);
  if (!metrics_path.empty()) {
    wrote = bench::WriteFileChecked(metrics_path,
                                    registry.Snapshot().ToJson()) &&
            wrote;
  }
  if (!trace_path.empty()) {
    wrote = bench::WriteFileChecked(trace_path, tracer.ToJson()) && wrote;
  }
  bool healthy = true;
  for (const FedRow& row : rows) {
    healthy = healthy && row.converged && row.migration_verified;
  }
  if (smoke) {
    // ctest perf smoke: fail when a room never converges, a migration
    // fails verification, or the JSON cannot be produced.
    return healthy && wrote ? 0 : 1;
  }
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return healthy && wrote ? 0 : 1;
}
