// A2 — Preference-based pre-fetching (the paper's Section 4.4 / [12]):
// cache hit rate and simulated response time of the client buffer under
// three policies (no cache, LRU, preference-based prefetch), swept over
// buffer size, against a preference-correlated stream of viewer choices.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "doc/builder.h"
#include "net/network.h"
#include "prefetch/cache.h"
#include "prefetch/predictor.h"
#include "prefetch/session.h"

namespace {

using namespace mmconf;
using cpnet::Assignment;
using doc::MultimediaDocument;
using doc::ViewerChoice;
using prefetch::CachePolicy;
using prefetch::ClientCache;
using prefetch::PrefetchCandidate;
using prefetch::PrefetchPredictor;

/// Draws the viewer's next choice: a random component, with the new
/// presentation drawn geometrically down the author's ranking (viewers
/// mostly follow the author's taste, occasionally diverge) — the
/// assumption the paper's predictor [12] exploits.
ViewerChoice DrawChoice(const MultimediaDocument& document,
                        const Assignment& current, Rng& rng) {
  const auto& components = document.components();
  while (true) {
    size_t i = rng.NextBelow(components.size());
    const doc::MultimediaComponent* component = components[i];
    if (component->IsComposite()) continue;
    const cpnet::CpNet& net = document.net();
    cpnet::VarId var = static_cast<cpnet::VarId>(i);
    std::vector<cpnet::ValueId> parent_values;
    for (cpnet::VarId parent : net.Parents(var)) {
      parent_values.push_back(current.Get(parent));
    }
    size_t row = net.CptOf(var).RowIndex(parent_values).value();
    cpnet::PreferenceRanking ranking =
        net.CptOf(var).Ranking(row).value();
    size_t position = 0;
    while (position + 1 < ranking.size() && rng.Chance(0.45)) ++position;
    return {component->name(),
            net.ValueNames(var)[static_cast<size_t>(ranking[position])]};
  }
}

struct RunResult {
  double hit_rate = 0;
  double mean_response_ms = 0;
};

/// Replays `steps` viewer choices through a PrefetchSession over the
/// simulated 256 KB/s downlink: on-demand misses occupy the wire (that
/// is the user-visible response time); the preference policy then
/// prefetches in the background. The virtual clock idles 2 s between
/// choices, modelling viewer think time during which prefetch traffic
/// drains.
RunResult Simulate(CachePolicy policy, size_t buffer_bytes, int steps,
                   uint64_t seed) {
  Rng rng(seed);
  MultimediaDocument document =
      doc::MakeRandomDocument(6, 24, rng).value();
  Clock clock;
  net::Network network(&clock);
  net::NodeId server = network.AddNode("server");
  net::NodeId client = network.AddNode("client");
  network.SetLink(server, client, {256e3, 10000}).ok();
  prefetch::PrefetchSession::Options options;
  options.buffer_bytes = buffer_bytes;
  options.policy = policy;
  prefetch::PrefetchSession session(&document, &network, server, client,
                                    options);

  double total_response_s = 0;
  int reconfigurations = 0;
  std::vector<ViewerChoice> history;
  Assignment current = document.DefaultPresentation().value();
  session.OnConfiguration(current).value();
  network.AdvanceUntilIdle();
  for (int step = 0; step < steps; ++step) {
    ViewerChoice choice = DrawChoice(document, current, rng);
    history.push_back(choice);
    Assignment next = document.ReconfigPresentation(history).value();
    MicrosT asked = clock.NowMicros();
    MicrosT delivered = session.OnConfiguration(next).value();
    total_response_s += static_cast<double>(delivered - asked) * 1e-6;
    ++reconfigurations;
    current = next;
    if (history.size() > 4) history.erase(history.begin());
    // Think time: background prefetch drains before the next choice.
    network.AdvanceTo(clock.NowMicros() + 2000000);
  }
  RunResult result;
  result.hit_rate = session.stats().HitRate();
  result.mean_response_ms = reconfigurations > 0
                                ? total_response_s * 1000.0 /
                                      reconfigurations
                                : 0;
  return result;
}

void PrintAblation() {
  std::printf("== A2: client-buffer policy ablation "
              "(256 KB/s downlink, 120 choices) ==\n");
  std::printf("%-12s %-14s %-12s %-18s\n", "buffer", "policy", "hit-rate",
              "mean-response(ms)");
  for (size_t buffer_kb : {64, 256, 1024, 4096}) {
    for (CachePolicy policy :
         {CachePolicy::kNone, CachePolicy::kLru, CachePolicy::kPreference}) {
      // Average over three seeds.
      RunResult sum;
      const int kSeeds = 3;
      for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        RunResult run = Simulate(policy, buffer_kb * 1024, 120, seed);
        sum.hit_rate += run.hit_rate;
        sum.mean_response_ms += run.mean_response_ms;
      }
      std::printf("%-12zu %-14s %-12.3f %-18.1f\n", buffer_kb,
                  prefetch::CachePolicyToString(policy),
                  sum.hit_rate / kSeeds, sum.mean_response_ms / kSeeds);
    }
  }
  std::printf("\n");
}

void BM_RankCandidates(benchmark::State& state) {
  Rng rng(9);
  MultimediaDocument document =
      doc::MakeRandomDocument(static_cast<int>(state.range(0)) / 4,
                              static_cast<int>(state.range(0)), rng)
          .value();
  PrefetchPredictor predictor(&document);
  Assignment config = document.DefaultPresentation().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.RankCandidates(config));
  }
  state.counters["leaves"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RankCandidates)->Arg(8)->Arg(24)->Arg(64);

void BM_CacheLookupInsert(benchmark::State& state) {
  ClientCache cache(1 << 20, CachePolicy::kLru);
  Rng rng(10);
  int i = 0;
  for (auto _ : state) {
    std::string key = "component-" + std::to_string(i % 100);
    if (!cache.Lookup(key)) {
      cache.Insert(key, 8192, 1.0).ok();
    }
    ++i;
  }
}
BENCHMARK(BM_CacheLookupInsert);

}  // namespace

int main(int argc, char** argv) {
  PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
