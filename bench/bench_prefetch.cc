// A2 — Preference-based pre-fetching (the paper's Section 4.4 / [12]):
// cache hit rate and simulated response time of the client buffer under
// three policies (no cache, LRU, preference-based prefetch), swept over
// buffer size, against a preference-correlated stream of viewer choices.
//
// Plus the incremental-ranking ablation: RankCandidates (descendant-cone
// re-sweeps + dense accumulators) against RankCandidatesBaseline (full
// sweeps + string-keyed maps) over wide, deep-chain, and high-fan-out
// documents, with an output-equality sanity check. Results are printed
// and written as machine-readable JSON (BENCH_prefetch.json; override
// with --json_out=PATH). --smoke shrinks the scenarios for a ctest-able
// perf smoke run and skips the slower ablations.
//
// --metrics_out=PATH dumps the obs MetricsRegistry snapshot
// (prefetch.rank.* work counters; byte-identical across runs).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_obs.h"
#include "common/rng.h"
#include "doc/builder.h"
#include "net/network.h"
#include "prefetch/cache.h"
#include "prefetch/predictor.h"
#include "prefetch/session.h"

namespace {

using namespace mmconf;
using cpnet::Assignment;
using doc::MultimediaDocument;
using doc::ViewerChoice;
using prefetch::CachePolicy;
using prefetch::ClientCache;
using prefetch::PrefetchCandidate;
using prefetch::PrefetchPredictor;

/// Draws the viewer's next choice: a random component, with the new
/// presentation drawn geometrically down the author's ranking (viewers
/// mostly follow the author's taste, occasionally diverge) — the
/// assumption the paper's predictor [12] exploits.
ViewerChoice DrawChoice(const MultimediaDocument& document,
                        const Assignment& current, Rng& rng) {
  const auto& components = document.components();
  while (true) {
    size_t i = rng.NextBelow(components.size());
    const doc::MultimediaComponent* component = components[i];
    if (component->IsComposite()) continue;
    const cpnet::CpNet& net = document.net();
    cpnet::VarId var = static_cast<cpnet::VarId>(i);
    std::vector<cpnet::ValueId> parent_values;
    for (cpnet::VarId parent : net.Parents(var)) {
      parent_values.push_back(current.Get(parent));
    }
    size_t row = net.CptOf(var).RowIndex(parent_values).value();
    cpnet::PreferenceRanking ranking =
        net.CptOf(var).Ranking(row).value();
    size_t position = 0;
    while (position + 1 < ranking.size() && rng.Chance(0.45)) ++position;
    return {component->name(),
            net.ValueNames(var)[static_cast<size_t>(ranking[position])]};
  }
}

struct RunResult {
  double hit_rate = 0;
  double mean_response_ms = 0;
};

/// Replays `steps` viewer choices through a PrefetchSession over the
/// simulated 256 KB/s downlink: on-demand misses occupy the wire (that
/// is the user-visible response time); the preference policy then
/// prefetches in the background. The virtual clock idles 2 s between
/// choices, modelling viewer think time during which prefetch traffic
/// drains.
RunResult Simulate(CachePolicy policy, size_t buffer_bytes, int steps,
                   uint64_t seed) {
  Rng rng(seed);
  MultimediaDocument document =
      doc::MakeRandomDocument(6, 24, rng).value();
  Clock clock;
  net::Network network(&clock);
  net::NodeId server = network.AddNode("server");
  net::NodeId client = network.AddNode("client");
  network.SetLink(server, client, {256e3, 10000}).ok();
  prefetch::PrefetchSession::Options options;
  options.buffer_bytes = buffer_bytes;
  options.policy = policy;
  prefetch::PrefetchSession session(&document, &network, server, client,
                                    options);

  double total_response_s = 0;
  int reconfigurations = 0;
  std::vector<ViewerChoice> history;
  Assignment current = document.DefaultPresentation().value();
  session.OnConfiguration(current).value();
  network.AdvanceUntilIdle();
  for (int step = 0; step < steps; ++step) {
    ViewerChoice choice = DrawChoice(document, current, rng);
    history.push_back(choice);
    Assignment next = document.ReconfigPresentation(history).value();
    MicrosT asked = clock.NowMicros();
    MicrosT delivered = session.OnConfiguration(next).value();
    total_response_s += static_cast<double>(delivered - asked) * 1e-6;
    ++reconfigurations;
    current = next;
    if (history.size() > 4) history.erase(history.begin());
    // Think time: background prefetch drains before the next choice.
    network.AdvanceTo(clock.NowMicros() + 2000000);
  }
  RunResult result;
  result.hit_rate = session.stats().HitRate();
  result.mean_response_ms = reconfigurations > 0
                                ? total_response_s * 1000.0 /
                                      reconfigurations
                                : 0;
  return result;
}

void PrintAblation() {
  std::printf("== A2: client-buffer policy ablation "
              "(256 KB/s downlink, 120 choices) ==\n");
  std::printf("%-12s %-14s %-12s %-18s\n", "buffer", "policy", "hit-rate",
              "mean-response(ms)");
  for (size_t buffer_kb : {64, 256, 1024, 4096}) {
    for (CachePolicy policy :
         {CachePolicy::kNone, CachePolicy::kLru, CachePolicy::kPreference}) {
      // Average over three seeds.
      RunResult sum;
      const int kSeeds = 3;
      for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
        RunResult run = Simulate(policy, buffer_kb * 1024, 120, seed);
        sum.hit_rate += run.hit_rate;
        sum.mean_response_ms += run.mean_response_ms;
      }
      std::printf("%-12zu %-14s %-12.3f %-18.1f\n", buffer_kb,
                  prefetch::CachePolicyToString(policy),
                  sum.hit_rate / kSeeds, sum.mean_response_ms / kSeeds);
    }
  }
  std::printf("\n");
}

// --- Incremental-ranking ablation -----------------------------------

double NowUs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1000.0;
}

/// Rotates a domain-name ranking by `shift` — a cheap way to make a
/// component's preference genuinely conditional on a parent value.
std::vector<std::string> RotatedRanking(
    const std::vector<std::string>& names, size_t shift) {
  std::vector<std::string> ranking;
  ranking.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    ranking.push_back(names[(i + shift) % names.size()]);
  }
  return ranking;
}

/// Chains every leaf's preference on the previous leaf while the tree
/// itself nests one group per level: both the component hierarchy and
/// the CP-net are `depth` deep, so a pin near the top re-sweeps almost
/// everything and a pin near the bottom almost nothing.
MultimediaDocument MakeDeepChainDocument(int depth) {
  doc::TreeBuilder builder("root");
  std::string parent = "root";
  for (int i = 0; i < depth; ++i) {
    std::string group = "g" + std::to_string(i);
    std::string leaf = "leaf" + std::to_string(i);
    builder.Group(parent, group);
    builder.Leaf(group, leaf,
                 {"Image", static_cast<uint64_t>(i), 64u << 10},
                 doc::ImagePresentations());
    parent = group;
  }
  MultimediaDocument document = builder.Build().value();
  for (int i = 1; i < depth; ++i) {
    std::string prev = "leaf" + std::to_string(i - 1);
    std::string leaf = "leaf" + std::to_string(i);
    document.SetParentsByName(leaf, {prev}).ok();
    std::vector<std::string> prev_names =
        document.Find(prev).value()->DomainValueNames();
    std::vector<std::string> leaf_names =
        document.Find(leaf).value()->DomainValueNames();
    for (size_t v = 0; v < prev_names.size(); ++v) {
      document
          .SetPreferenceByName(leaf, {prev_names[v]},
                               RotatedRanking(leaf_names, v))
          .ok();
    }
  }
  document.Finalize().ok();
  return document;
}

/// One hub leaf that every other leaf's preference conditions on: a pin
/// of the hub re-sweeps every leaf, a pin of a spoke only itself.
MultimediaDocument MakeFanOutDocument(int leaves) {
  doc::TreeBuilder builder("root");
  builder.Leaf("root", "hub", {"Image", 0, 64u << 10},
               doc::ImagePresentations());
  for (int i = 1; i < leaves; ++i) {
    builder.Leaf("root", "leaf" + std::to_string(i),
                 {"Image", static_cast<uint64_t>(i), 64u << 10},
                 doc::ImagePresentations());
  }
  MultimediaDocument document = builder.Build().value();
  std::vector<std::string> hub_names =
      document.Find("hub").value()->DomainValueNames();
  for (int i = 1; i < leaves; ++i) {
    std::string leaf = "leaf" + std::to_string(i);
    document.SetParentsByName(leaf, {"hub"}).ok();
    std::vector<std::string> leaf_names =
        document.Find(leaf).value()->DomainValueNames();
    for (size_t v = 0; v < hub_names.size(); ++v) {
      document
          .SetPreferenceByName(leaf, {hub_names[v]},
                               RotatedRanking(leaf_names, v))
          .ok();
    }
  }
  document.Finalize().ok();
  return document;
}

struct ScenarioResult {
  std::string name;
  size_t components = 0;
  size_t candidates = 0;
  double baseline_us = 0;  ///< per RankCandidatesBaseline call
  double fast_us = 0;      ///< per RankCandidates call
  bool identical = false;  ///< outputs byte-identical
  double Speedup() const {
    return fast_us > 0 ? baseline_us / fast_us : 0;
  }
};

bool SameRanking(const std::vector<PrefetchCandidate>& a,
                 const std::vector<PrefetchCandidate>& b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i].component != b[i].component ||
        a[i].presentation != b[i].presentation ||
        a[i].score != b[i].score || a[i].cost_bytes != b[i].cost_bytes) {
      return false;
    }
  }
  return true;
}

ScenarioResult RunScenario(const std::string& name,
                           MultimediaDocument document, int reps,
                           obs::MetricsRegistry* metrics) {
  PrefetchPredictor predictor(&document);
  predictor.SetObserver(metrics);
  Assignment config = document.DefaultPresentation().value();
  ScenarioResult result;
  result.name = name;
  result.components = document.num_components();

  std::vector<PrefetchCandidate> baseline =
      predictor.RankCandidatesBaseline(config).value();
  std::vector<PrefetchCandidate> fast =
      predictor.RankCandidates(config).value();
  result.candidates = fast.size();
  result.identical = SameRanking(fast, baseline);

  double t0 = NowUs();
  for (int rep = 0; rep < reps; ++rep) {
    benchmark::DoNotOptimize(predictor.RankCandidatesBaseline(config));
  }
  result.baseline_us = (NowUs() - t0) / reps;
  double t1 = NowUs();
  for (int rep = 0; rep < reps; ++rep) {
    benchmark::DoNotOptimize(predictor.RankCandidates(config));
  }
  result.fast_us = (NowUs() - t1) / reps;
  return result;
}

std::vector<ScenarioResult> RunRankingAblation(
    bool smoke, obs::MetricsRegistry* metrics) {
  Rng rng(2002);
  const int reps = smoke ? 2 : 10;
  std::vector<ScenarioResult> results;
  results.push_back(RunScenario(
      "wide-document",
      doc::MakeRandomDocument(smoke ? 4 : 6, smoke ? 16 : 48, rng).value(),
      reps, metrics));
  results.push_back(RunScenario(
      "deep-chain", MakeDeepChainDocument(smoke ? 8 : 24), reps, metrics));
  results.push_back(RunScenario(
      "high-fanout", MakeFanOutDocument(smoke ? 12 : 40), reps, metrics));

  std::printf("== Prefetch ranking: incremental re-sweep vs full-sweep "
              "baseline (%s) ==\n", smoke ? "smoke" : "full");
  std::printf("%-16s %-12s %-12s %-14s %-14s %-10s %s\n", "scenario",
              "components", "candidates", "baseline(us)", "fast(us)",
              "speedup", "identical");
  for (const ScenarioResult& result : results) {
    std::printf("%-16s %-12zu %-12zu %-14.1f %-14.1f %-10.1f %s\n",
                result.name.c_str(), result.components, result.candidates,
                result.baseline_us, result.fast_us, result.Speedup(),
                result.identical ? "yes" : "NO");
  }
  std::printf("\n");
  return results;
}

bool WriteJson(const std::string& path,
               const std::vector<ScenarioResult>& results, bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"prefetch_ranking\",\n"
               "  \"smoke\": %s,\n  \"scenarios\": [\n",
               smoke ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& result = results[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"components\": %zu, \"candidates\": %zu, "
        "\"baseline_us\": %.3f, \"fast_us\": %.3f, \"speedup\": %.2f, "
        "\"identical\": %s}%s\n",
        result.name.c_str(), result.components, result.candidates,
        result.baseline_us, result.fast_us, result.Speedup(),
        result.identical ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  return bench::CloseChecked(out, path);
}

void BM_RankCandidates(benchmark::State& state) {
  Rng rng(9);
  MultimediaDocument document =
      doc::MakeRandomDocument(static_cast<int>(state.range(0)) / 4,
                              static_cast<int>(state.range(0)), rng)
          .value();
  PrefetchPredictor predictor(&document);
  Assignment config = document.DefaultPresentation().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.RankCandidates(config));
  }
  state.counters["leaves"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RankCandidates)->Arg(8)->Arg(24)->Arg(64);

void BM_RankCandidatesBaseline(benchmark::State& state) {
  Rng rng(9);
  MultimediaDocument document =
      doc::MakeRandomDocument(static_cast<int>(state.range(0)) / 4,
                              static_cast<int>(state.range(0)), rng)
          .value();
  PrefetchPredictor predictor(&document);
  Assignment config = document.DefaultPresentation().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(predictor.RankCandidatesBaseline(config));
  }
  state.counters["leaves"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_RankCandidatesBaseline)->Arg(8)->Arg(24)->Arg(64);

void BM_CacheLookupInsert(benchmark::State& state) {
  ClientCache cache(1 << 20, CachePolicy::kLru);
  Rng rng(10);
  int i = 0;
  for (auto _ : state) {
    std::string key = "component-" + std::to_string(i % 100);
    if (!cache.Lookup(key)) {
      cache.Insert(key, 8192, 1.0).ok();
    }
    ++i;
  }
}
BENCHMARK(BM_CacheLookupInsert);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_prefetch.json";
  std::string metrics_path;
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_path = argv[i] + 14;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // An unwritable output path should fail before the sweep, not after.
  if (!bench::ProbeWritable(json_path)) return 1;
  if (!metrics_path.empty() && !bench::ProbeWritable(metrics_path)) return 1;

  obs::MetricsRegistry registry;
  obs::MetricsRegistry* metrics =
      metrics_path.empty() ? nullptr : &registry;

  std::vector<ScenarioResult> results = RunRankingAblation(smoke, metrics);
  bool wrote = WriteJson(json_path, results, smoke);
  if (!metrics_path.empty()) {
    wrote = bench::WriteFileChecked(metrics_path,
                                    registry.Snapshot().ToJson()) &&
            wrote;
  }
  bool identical = true;
  for (const ScenarioResult& result : results) {
    identical = identical && result.identical;
  }
  if (smoke) {
    // ctest perf smoke: fail when the implementations disagree or the
    // JSON cannot be produced; timing itself is not asserted.
    return identical && wrote ? 0 : 1;
  }
  PrintAblation();
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return identical && wrote ? 0 : 1;
}
