// F4 — The paper's Fig. 4 use cases: (a) "Retrieving a document" (client
// requests a document; the interaction server fetches it from the
// database, computes the optimal presentation, ships the content) and
// (b) "Updating the presentation" (a viewer choice arrives; the server
// determines the new optimal presentation and returns the updated
// specification). Reported in simulated network time and wall time.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>
#include <memory>
#include <string>

#include "doc/builder.h"
#include "net/network.h"
#include "server/interaction_server.h"
#include "storage/database.h"

namespace {

using namespace mmconf;

struct Testbed {
  Clock clock;
  storage::DatabaseServer db;
  std::unique_ptr<net::Network> network;
  std::unique_ptr<server::InteractionServer> server;
  net::NodeId server_node = 0, db_node = 0, client_node = 0,
              peer_node = 0;
  storage::ObjectRef doc_ref;

  Testbed() {
    network = std::make_unique<net::Network>(&clock);
    server_node = network->AddNode("server");
    db_node = network->AddNode("db");
    client_node = network->AddNode("client");
    peer_node = network->AddNode("peer");
    network->SetDuplexLink(server_node, db_node, {50e6, 500}).ok();
    network->SetDuplexLink(server_node, client_node, {1e6, 20000}).ok();
    network->SetDuplexLink(server_node, peer_node, {1e6, 20000}).ok();
    db.RegisterStandardTypes().ok();
    server = std::make_unique<server::InteractionServer>(
        &db, network.get(), server_node, db_node);
    doc::MultimediaDocument document =
        doc::MakeMedicalRecordDocument().value();
    doc_ref = server->StoreDocument(document, "patient").value();
    network->AdvanceUntilIdle();
  }
};

void PrintFigure4() {
  std::printf("== F4a: retrieve-document use case (simulated time) ==\n");
  Testbed bed;
  MicrosT t0 = bed.clock.NowMicros();
  bed.server->OpenRoom("room", bed.doc_ref).value();
  bed.network->AdvanceUntilIdle();
  MicrosT fetched = bed.clock.NowMicros();
  MicrosT delivered =
      bed.server->Join("room", {"viewer", bed.client_node}).value();
  bed.server->Join("room", {"peer", bed.peer_node}).value();
  bed.network->AdvanceUntilIdle();
  std::printf("  fetch+decode from db : %8.2f ms\n",
              (fetched - t0) / 1000.0);
  std::printf("  initial content at   : %8.2f ms\n",
              (delivered - t0) / 1000.0);

  std::printf("\n== F4b: update-presentation use case ==\n");
  MicrosT u0 = bed.clock.NowMicros();
  server::ReconfigResult result =
      bed.server->SubmitChoice("room", "viewer", "CT", "hidden").value();
  bed.network->AdvanceUntilIdle();
  std::printf("  changed components   : %zu\n",
              result.changed_components.size());
  std::printf("  delta payload        : %zu bytes\n",
              result.delta_cost_bytes);
  std::printf("  room settled after   : %8.2f ms (simulated)\n\n",
              (bed.clock.NowMicros() - u0) / 1000.0);
}

void BM_RetrieveDocument(benchmark::State& state) {
  int i = 0;
  Testbed bed;
  for (auto _ : state) {
    std::string room_id = "room-" + std::to_string(i++);
    benchmark::DoNotOptimize(bed.server->OpenRoom(room_id, bed.doc_ref));
    bed.network->AdvanceUntilIdle();
  }
}
BENCHMARK(BM_RetrieveDocument);

void BM_UpdatePresentation(benchmark::State& state) {
  Testbed bed;
  bed.server->OpenRoom("room", bed.doc_ref).value();
  bed.server->Join("room", {"viewer", bed.client_node}).value();
  bed.network->AdvanceUntilIdle();
  bool hide = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.server->SubmitChoice(
        "room", "viewer", "CT", hide ? "hidden" : "flat"));
    hide = !hide;
    bed.network->AdvanceUntilIdle();
  }
}
BENCHMARK(BM_UpdatePresentation);

void BM_StoreDocument(benchmark::State& state) {
  Testbed bed;
  doc::MultimediaDocument document =
      doc::MakeMedicalRecordDocument().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bed.server->StoreDocument(document, "p"));
    bed.network->AdvanceUntilIdle();
  }
}
BENCHMARK(BM_StoreDocument);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure4();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
