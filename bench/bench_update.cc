// A3 — Online CP-net update (the paper's Section 4.2): the cost of the
// derived operation-variable construction vs. rebuilding the preference
// model from scratch, and global updates vs. per-viewer overlay
// extensions ("the original CP-network should not be duplicated").

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include <memory>

#include "common/rng.h"
#include "cpnet/update.h"
#include "doc/builder.h"
#include "doc/component.h"

namespace {

using namespace mmconf;
using cpnet::CpNet;
using cpnet::CpNetEditor;
using cpnet::ViewerOverlay;

double NowUs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1000.0;
}

void PrintAblation() {
  std::printf("== A3: operation-variable update vs full rebuild ==\n");
  std::printf("%-8s %-22s %-22s %-22s\n", "vars", "op-variable(us)",
              "overlay-extend(us)", "rebuild+revalidate(us)");
  for (int n : {16, 64, 256, 1024}) {
    Rng rng(static_cast<uint64_t>(n));
    CpNet net = doc::MakeRandomCpNet(n, 2, 3, rng);

    const int reps = 50;
    // Global operation variable (includes revalidation of the whole net).
    double t0 = NowUs();
    CpNet scratch = net;
    for (int i = 0; i < reps; ++i) {
      CpNetEditor::AddOperationVariable(scratch, 0, 0,
                                        "op" + std::to_string(i), "a", "p")
          .value();
    }
    double op_us = (NowUs() - t0) / reps;

    // Per-viewer overlay extension (no global revalidation at all).
    ViewerOverlay overlay(&net);
    double t1 = NowUs();
    for (int i = 0; i < reps; ++i) {
      overlay
          .AddOperationVariable(0, 0, "op" + std::to_string(i), "a", "p")
          .value();
    }
    double overlay_us = (NowUs() - t1) / reps;

    // Full rebuild: copy the structure into a fresh net and revalidate —
    // what a system without Section 4.2's incremental update would do.
    double t2 = NowUs();
    for (int i = 0; i < 5; ++i) {
      Rng rebuild_rng(static_cast<uint64_t>(n));
      CpNet rebuilt = doc::MakeRandomCpNet(n, 2, 3, rebuild_rng);
      benchmark::DoNotOptimize(rebuilt);
    }
    double rebuild_us = (NowUs() - t2) / 5;

    std::printf("%-8d %-22.1f %-22.2f %-22.1f\n", n, op_us, overlay_us,
                rebuild_us);
  }
  std::printf("\n== A3: component removal (restriction policy) ==\n");
  std::printf("%-8s %-18s\n", "vars", "remove+rebuild(us)");
  for (int n : {16, 64, 256}) {
    Rng rng(static_cast<uint64_t>(n) + 7);
    CpNet net = doc::MakeRandomCpNet(n, 2, 2, rng);
    double t0 = NowUs();
    const int reps = 20;
    for (int i = 0; i < reps; ++i) {
      benchmark::DoNotOptimize(
          CpNetEditor::RemoveComponent(net, n / 2, 0));
    }
    std::printf("%-8d %-18.1f\n", n, (NowUs() - t0) / reps);
  }
  std::printf("\n");
}

void BM_AddOperationVariable(benchmark::State& state) {
  Rng rng(1);
  CpNet net = doc::MakeRandomCpNet(static_cast<int>(state.range(0)), 2, 3,
                                   rng);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(CpNetEditor::AddOperationVariable(
        net, 0, 0, "op" + std::to_string(i++), "a", "p"));
  }
}
BENCHMARK(BM_AddOperationVariable)->Arg(16)->Arg(256);

void BM_OverlayAddOperation(benchmark::State& state) {
  Rng rng(2);
  CpNet net = doc::MakeRandomCpNet(static_cast<int>(state.range(0)), 2, 3,
                                   rng);
  ViewerOverlay overlay(&net);
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(overlay.AddOperationVariable(
        0, 0, "op" + std::to_string(i++), "a", "p"));
  }
}
BENCHMARK(BM_OverlayAddOperation)->Arg(16)->Arg(256);

void BM_DocumentAddRemoveComponent(benchmark::State& state) {
  // The full §4.2 document path: add a leaf (rebind + transplant) then
  // remove it again.
  doc::MultimediaDocument document =
      doc::MakeMedicalRecordDocument().value();
  int i = 0;
  for (auto _ : state) {
    std::string name = "MRI" + std::to_string(i++);
    auto leaf = std::make_unique<doc::PrimitiveMultimediaComponent>(
        name, doc::ContentRef{"Image", 9, 1024},
        doc::ImagePresentations());
    document.AddComponent("Imaging", std::move(leaf)).value();
    document.RemoveComponent(name).ok();
  }
}
BENCHMARK(BM_DocumentAddRemoveComponent);

void BM_RemoveComponent(benchmark::State& state) {
  Rng rng(3);
  CpNet net = doc::MakeRandomCpNet(static_cast<int>(state.range(0)), 2, 2,
                                   rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(CpNetEditor::RemoveComponent(
        net, static_cast<int>(state.range(0)) / 2, 0));
  }
}
BENCHMARK(BM_RemoveComponent)->Arg(16)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  PrintAblation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
