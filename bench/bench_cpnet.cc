// F2 + A1 — Reproduces the paper's Figure 2 (the worked CP-net c1..c5
// with its CPTs and implied optimal configurations) and the Section 4.1
// claim that CP-nets "support fast algorithms for optimal configuration
// determination": the topological sweep vs. exhaustive enumeration
// ablation, swept over network size.
//
// Plus the incremental-recompletion ablation: RecompleteInto over the
// flat arena (watched cone sweep) against a full OptimalCompletion per
// pin, over chain / fan-out / random net shapes, with byte-identity and
// brute-force oracle checks. Results are printed and written as
// machine-readable JSON (BENCH_cpnet.json; override with
// --json_out=PATH). --smoke shrinks the scenarios for a ctest-able perf
// smoke run and skips the slower figures and google-benchmark sweeps.
//
// --metrics_out=PATH dumps the obs MetricsRegistry snapshot (the
// cpnet.sweep.* / cpnet.recomplete.* work counters accumulated by the
// check pass; byte-identical across runs).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_obs.h"
#include "common/rng.h"
#include "cpnet/brute_force.h"
#include "cpnet/cpnet.h"
#include "doc/builder.h"
#include "obs/metrics.h"

namespace {

namespace obs = mmconf::obs;

using mmconf::Rng;
using mmconf::cpnet::Assignment;
using mmconf::cpnet::BruteForceOptimalCompletion;
using mmconf::cpnet::BruteForceRecompleteFrom;
using mmconf::cpnet::CpNet;
using mmconf::cpnet::ValueId;
using mmconf::cpnet::VarId;

void PrintFigure2() {
  CpNet net = mmconf::doc::MakePaperFigure2Net();
  std::printf("== Figure 2: the paper's example CP-network ==\n%s\n",
              net.DebugString().c_str());
  Assignment optimal = net.OptimalOutcome().value();
  std::printf("optimal outcome (topological sweep): %s\n",
              optimal.ToString().c_str());
  std::printf("\n%-24s %s\n", "evidence", "optimal completion");
  for (VarId v = 0; v < static_cast<VarId>(net.num_variables()); ++v) {
    for (ValueId value = 0; value < net.DomainSize(v); ++value) {
      Assignment evidence(net.num_variables());
      evidence.Set(v, value);
      Assignment completion = net.OptimalCompletion(evidence).value();
      std::string label = net.VariableName(v) + "=" +
                          net.ValueNames(v)[static_cast<size_t>(value)];
      std::printf("%-24s %s\n", label.c_str(),
                  completion.ToString().c_str());
    }
  }
  std::printf("\n== A1: sweep vs exhaustive enumeration (binary domains,"
              " time per query) ==\n");
  std::printf("%-8s %-16s %-16s %s\n", "vars", "sweep(us)", "brute(us)",
              "speedup");
  for (int n : {4, 8, 12, 16, 20}) {
    Rng rng(100 + static_cast<uint64_t>(n));
    CpNet net_n = mmconf::doc::MakeRandomCpNet(n, 2, 2, rng);
    Assignment evidence(net_n.num_variables());
    // Time the sweep.
    auto clock_us = [] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count() /
             1000.0;
    };
    double t0 = clock_us();
    const int sweep_reps = 1000;
    for (int rep = 0; rep < sweep_reps; ++rep) {
      benchmark::DoNotOptimize(net_n.OptimalCompletion(evidence));
    }
    double sweep_us = (clock_us() - t0) / sweep_reps;
    double brute_us = -1;
    if (n <= 16) {
      double t1 = clock_us();
      benchmark::DoNotOptimize(
          BruteForceOptimalCompletion(net_n, evidence));
      brute_us = clock_us() - t1;
    }
    if (brute_us >= 0) {
      std::printf("%-8d %-16.2f %-16.1f %.0fx\n", n, sweep_us, brute_us,
                  brute_us / sweep_us);
    } else {
      std::printf("%-8d %-16.2f %-16s %s\n", n, sweep_us, "(intractable)",
                  "-");
    }
  }
  std::printf("\n");
}

void BM_SweepOptimalCompletion(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(42);
  CpNet net = mmconf::doc::MakeRandomCpNet(n, 3, 3, rng);
  Assignment evidence(net.num_variables());
  evidence.Set(0, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.OptimalCompletion(evidence));
  }
  state.counters["vars"] = n;
}
BENCHMARK(BM_SweepOptimalCompletion)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_BruteForceCompletion(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(42);
  CpNet net = mmconf::doc::MakeRandomCpNet(n, 2, 2, rng);
  Assignment evidence(net.num_variables());
  for (auto _ : state) {
    benchmark::DoNotOptimize(BruteForceOptimalCompletion(net, evidence));
  }
  state.counters["outcomes"] = static_cast<double>(1) * (1 << n);
}
BENCHMARK(BM_BruteForceCompletion)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

/// Binary chain v0 -> v1 -> ... -> v(n-1): pinning v0 re-sweeps the
/// whole net, pinning v(n-1) a single variable.
CpNet MakeChainNet(int n) {
  CpNet net;
  for (int i = 0; i < n; ++i) {
    net.AddVariable("v" + std::to_string(i), {"a", "b"});
  }
  net.SetUnconditionalPreference(0, {0, 1}).ok();
  for (int i = 1; i < n; ++i) {
    net.SetParents(i, {static_cast<VarId>(i - 1)}).ok();
    net.SetPreference(i, {0}, {0, 1}).ok();
    net.SetPreference(i, {1}, {1, 0}).ok();
  }
  net.Validate().ok();
  return net;
}

/// Star: one root, n-1 children conditioned on it.
CpNet MakeFanOutNet(int n) {
  CpNet net;
  for (int i = 0; i < n; ++i) {
    net.AddVariable("v" + std::to_string(i), {"a", "b"});
  }
  net.SetUnconditionalPreference(0, {0, 1}).ok();
  for (int i = 1; i < n; ++i) {
    net.SetParents(i, {0}).ok();
    net.SetPreference(i, {0}, {0, 1}).ok();
    net.SetPreference(i, {1}, {1, 0}).ok();
  }
  net.Validate().ok();
  return net;
}

// --- Incremental-recompletion ablation ------------------------------

double NowUs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
             .count() /
         1000.0;
}

struct ScenarioResult {
  std::string name;
  size_t vars = 0;
  size_t pairs = 0;           ///< (variable, value) pins swept
  uint64_t rows_touched = 0;  ///< CPT rows the watched sweep read
  uint64_t vars_skipped = 0;  ///< cone vars skipped as clean
  double baseline_us = 0;     ///< per full OptimalCompletion pin
  double fast_us = 0;         ///< per RecompleteInto pin
  bool identical = false;     ///< fast == full sweep on every pin
  bool oracle_match = true;   ///< fast == brute force (small nets only)
  double Speedup() const {
    return fast_us > 0 ? baseline_us / fast_us : 0;
  }
};

/// Sweeps every (variable, value) pin of `net` through both the
/// incremental path (RecompleteInto over the shared base optimum) and
/// the full-sweep baseline (OptimalCompletion of the single-pin
/// evidence), checking byte-identity pin by pin. Nets small enough to
/// enumerate are additionally pinned against the brute-force oracle.
ScenarioResult RunScenario(const std::string& name, const CpNet& net,
                           int reps, obs::MetricsRegistry* metrics) {
  ScenarioResult result;
  result.name = name;
  result.vars = net.num_variables();
  result.identical = true;

  Assignment base = net.OptimalOutcome().value();
  Assignment fast(net.num_variables());

  // Check pass: deterministic work counters come from exactly this one
  // sweep over all pins (the timing loops below run unobserved).
  obs::MetricsRegistry work;
  net.SetObserver(&work);
  const bool oracle_feasible = net.num_variables() <= 12;
  for (VarId v = 0; v < static_cast<VarId>(net.num_variables()); ++v) {
    for (ValueId value = 0; value < net.DomainSize(v); ++value) {
      ++result.pairs;
      net.RecompleteInto(base, v, value, &fast).ok();
      Assignment evidence(net.num_variables());
      evidence.Set(v, value);
      Assignment full = net.OptimalCompletion(evidence).value();
      if (!(fast == full)) result.identical = false;
      if (oracle_feasible) {
        Assignment oracle =
            BruteForceRecompleteFrom(net, Assignment(net.num_variables()),
                                     v, value)
                .value();
        if (!(fast == oracle)) result.oracle_match = false;
      }
    }
  }
  result.rows_touched =
      work.GetCounter("cpnet.recomplete.rows_touched")->value();
  result.vars_skipped =
      work.GetCounter("cpnet.recomplete.vars_skipped")->value();
  // The caller's registry accumulates the same pass across scenarios.
  net.SetObserver(metrics);
  if (metrics != nullptr) {
    for (VarId v = 0; v < static_cast<VarId>(net.num_variables()); ++v) {
      for (ValueId value = 0; value < net.DomainSize(v); ++value) {
        net.RecompleteInto(base, v, value, &fast).ok();
      }
    }
  }
  net.SetObserver(nullptr);  // timing loops run unobserved

  double t0 = NowUs();
  for (int rep = 0; rep < reps; ++rep) {
    for (VarId v = 0; v < static_cast<VarId>(net.num_variables()); ++v) {
      for (ValueId value = 0; value < net.DomainSize(v); ++value) {
        Assignment evidence(net.num_variables());
        evidence.Set(v, value);
        benchmark::DoNotOptimize(net.OptimalCompletion(evidence));
      }
    }
  }
  result.baseline_us =
      (NowUs() - t0) / (reps * static_cast<double>(result.pairs));
  double t1 = NowUs();
  for (int rep = 0; rep < reps; ++rep) {
    for (VarId v = 0; v < static_cast<VarId>(net.num_variables()); ++v) {
      for (ValueId value = 0; value < net.DomainSize(v); ++value) {
        benchmark::DoNotOptimize(net.RecompleteInto(base, v, value, &fast));
      }
    }
  }
  result.fast_us =
      (NowUs() - t1) / (reps * static_cast<double>(result.pairs));
  return result;
}

std::vector<ScenarioResult> RunRecompleteAblation(
    bool smoke, obs::MetricsRegistry* metrics) {
  const int n = smoke ? 64 : 512;
  const int reps = smoke ? 2 : 10;
  Rng rng(2003);
  std::vector<ScenarioResult> results;
  results.push_back(
      RunScenario("chain", MakeChainNet(n), reps, metrics));
  results.push_back(
      RunScenario("fanout", MakeFanOutNet(n), reps, metrics));
  results.push_back(RunScenario(
      "random",
      mmconf::doc::MakeRandomCpNet(smoke ? 24 : 96, 3, 3, rng), reps,
      metrics));
  // Small net: every pin double-checked against exhaustive enumeration.
  results.push_back(RunScenario(
      "oracle", mmconf::doc::MakeRandomCpNet(10, 2, 3, rng), reps,
      metrics));

  std::printf("== CP-net recompletion: watched cone sweep vs full sweep "
              "(%s) ==\n", smoke ? "smoke" : "full");
  std::printf("%-10s %-6s %-7s %-12s %-12s %-14s %-12s %-9s %-10s %s\n",
              "scenario", "vars", "pairs", "rows", "skipped",
              "baseline(us)", "fast(us)", "speedup", "identical",
              "oracle");
  for (const ScenarioResult& result : results) {
    std::printf(
        "%-10s %-6zu %-7zu %-12llu %-12llu %-14.3f %-12.3f %-9.1f "
        "%-10s %s\n",
        result.name.c_str(), result.vars, result.pairs,
        static_cast<unsigned long long>(result.rows_touched),
        static_cast<unsigned long long>(result.vars_skipped),
        result.baseline_us, result.fast_us, result.Speedup(),
        result.identical ? "yes" : "NO",
        result.oracle_match ? "yes" : "NO");
  }
  std::printf("\n");
  return results;
}

bool WriteJson(const std::string& path,
               const std::vector<ScenarioResult>& results, bool smoke) {
  std::FILE* out = std::fopen(path.c_str(), "w");
  if (out == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  std::fprintf(out, "{\n  \"bench\": \"cpnet_recomplete\",\n"
               "  \"smoke\": %s,\n  \"scenarios\": [\n",
               smoke ? "true" : "false");
  for (size_t i = 0; i < results.size(); ++i) {
    const ScenarioResult& result = results[i];
    std::fprintf(
        out,
        "    {\"name\": \"%s\", \"vars\": %zu, \"pairs\": %zu, "
        "\"rows_touched\": %llu, \"vars_skipped\": %llu, "
        "\"baseline_us\": %.3f, \"fast_us\": %.3f, \"speedup\": %.2f, "
        "\"identical\": %s, \"oracle_match\": %s}%s\n",
        result.name.c_str(), result.vars, result.pairs,
        static_cast<unsigned long long>(result.rows_touched),
        static_cast<unsigned long long>(result.vars_skipped),
        result.baseline_us, result.fast_us, result.Speedup(),
        result.identical ? "true" : "false",
        result.oracle_match ? "true" : "false",
        i + 1 < results.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
  return mmconf::bench::CloseChecked(out, path);
}

/// Full re-sweep under a single-variable pin — the "before" of the
/// incremental re-optimization; compare against BM_RecompleteFrom* with
/// the same shape and pin.
void BM_PinnedFullSweep(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CpNet net = state.range(1) == 0 ? MakeChainNet(n) : MakeFanOutNet(n);
  VarId pinned = static_cast<VarId>(n - 1);  // leaf / one spoke
  Assignment evidence(net.num_variables());
  evidence.Set(pinned, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.OptimalCompletion(evidence));
  }
  state.counters["vars"] = n;
}
BENCHMARK(BM_PinnedFullSweep)
    ->Args({64, 0})
    ->Args({512, 0})
    ->Args({64, 1})
    ->Args({512, 1});

void BM_RecompleteFromLeaf(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CpNet net = state.range(1) == 0 ? MakeChainNet(n) : MakeFanOutNet(n);
  VarId pinned = static_cast<VarId>(n - 1);  // cone of size 1
  Assignment base = net.OptimalOutcome().value();
  Assignment scratch(net.num_variables());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.RecompleteInto(base, pinned, 1, &scratch));
  }
  state.counters["vars"] = n;
  state.counters["cone"] =
      static_cast<double>(net.DescendantCone(pinned).size());
}
BENCHMARK(BM_RecompleteFromLeaf)
    ->Args({64, 0})
    ->Args({512, 0})
    ->Args({64, 1})
    ->Args({512, 1});

void BM_RecompleteFromRoot(benchmark::State& state) {
  // Worst case: the pin's cone is the whole net, so the incremental
  // sweep degenerates to the full one (minus the allocation).
  int n = static_cast<int>(state.range(0));
  CpNet net = state.range(1) == 0 ? MakeChainNet(n) : MakeFanOutNet(n);
  Assignment base = net.OptimalOutcome().value();
  Assignment scratch(net.num_variables());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.RecompleteInto(base, 0, 1, &scratch));
  }
  state.counters["vars"] = n;
  state.counters["cone"] = static_cast<double>(net.DescendantCone(0).size());
}
BENCHMARK(BM_RecompleteFromRoot)->Args({512, 0})->Args({512, 1});

void BM_ImprovingFlips(benchmark::State& state) {
  Rng rng(7);
  CpNet net = mmconf::doc::MakeRandomCpNet(
      static_cast<int>(state.range(0)), 3, 3, rng);
  Assignment outcome = net.OptimalOutcome().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.ImprovingFlips(outcome));
  }
}
BENCHMARK(BM_ImprovingFlips)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string json_path = "BENCH_cpnet.json";
  std::string metrics_path;
  // Strip our flags before google-benchmark sees (and rejects) them.
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strncmp(argv[i], "--json_out=", 11) == 0) {
      json_path = argv[i] + 11;
    } else if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_path = argv[i] + 14;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  // An unwritable output path should fail before the sweep, not after.
  if (!mmconf::bench::ProbeWritable(json_path)) return 1;
  if (!metrics_path.empty() &&
      !mmconf::bench::ProbeWritable(metrics_path)) {
    return 1;
  }

  mmconf::obs::MetricsRegistry registry;
  mmconf::obs::MetricsRegistry* metrics =
      metrics_path.empty() ? nullptr : &registry;

  std::vector<ScenarioResult> results =
      RunRecompleteAblation(smoke, metrics);
  bool wrote = WriteJson(json_path, results, smoke);
  if (!metrics_path.empty()) {
    wrote = mmconf::bench::WriteFileChecked(
                metrics_path, registry.Snapshot().ToJson()) &&
            wrote;
  }
  bool checks_ok = true;
  for (const ScenarioResult& result : results) {
    checks_ok = checks_ok && result.identical && result.oracle_match;
  }
  if (smoke) {
    // ctest perf smoke: fail when the incremental sweep disagrees with
    // the full sweep or the oracle, or the JSON cannot be produced;
    // timing itself is not asserted.
    return checks_ok && wrote ? 0 : 1;
  }
  PrintFigure2();
  int pass_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pass_argc, passthrough.data());
  benchmark::RunSpecifiedBenchmarks();
  return checks_ok && wrote ? 0 : 1;
}
