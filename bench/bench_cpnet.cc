// F2 + A1 — Reproduces the paper's Figure 2 (the worked CP-net c1..c5
// with its CPTs and implied optimal configurations) and the Section 4.1
// claim that CP-nets "support fast algorithms for optimal configuration
// determination": the topological sweep vs. exhaustive enumeration
// ablation, swept over network size.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "common/rng.h"
#include "cpnet/brute_force.h"
#include "cpnet/cpnet.h"
#include "doc/builder.h"

namespace {

using mmconf::Rng;
using mmconf::cpnet::Assignment;
using mmconf::cpnet::BruteForceOptimalCompletion;
using mmconf::cpnet::CpNet;
using mmconf::cpnet::ValueId;
using mmconf::cpnet::VarId;

void PrintFigure2() {
  CpNet net = mmconf::doc::MakePaperFigure2Net();
  std::printf("== Figure 2: the paper's example CP-network ==\n%s\n",
              net.DebugString().c_str());
  Assignment optimal = net.OptimalOutcome().value();
  std::printf("optimal outcome (topological sweep): %s\n",
              optimal.ToString().c_str());
  std::printf("\n%-24s %s\n", "evidence", "optimal completion");
  for (VarId v = 0; v < static_cast<VarId>(net.num_variables()); ++v) {
    for (ValueId value = 0; value < net.DomainSize(v); ++value) {
      Assignment evidence(net.num_variables());
      evidence.Set(v, value);
      Assignment completion = net.OptimalCompletion(evidence).value();
      std::string label = net.VariableName(v) + "=" +
                          net.ValueNames(v)[static_cast<size_t>(value)];
      std::printf("%-24s %s\n", label.c_str(),
                  completion.ToString().c_str());
    }
  }
  std::printf("\n== A1: sweep vs exhaustive enumeration (binary domains,"
              " time per query) ==\n");
  std::printf("%-8s %-16s %-16s %s\n", "vars", "sweep(us)", "brute(us)",
              "speedup");
  for (int n : {4, 8, 12, 16, 20}) {
    Rng rng(100 + static_cast<uint64_t>(n));
    CpNet net_n = mmconf::doc::MakeRandomCpNet(n, 2, 2, rng);
    Assignment evidence(net_n.num_variables());
    // Time the sweep.
    auto clock_us = [] {
      return std::chrono::duration_cast<std::chrono::nanoseconds>(
                 std::chrono::steady_clock::now().time_since_epoch())
                 .count() /
             1000.0;
    };
    double t0 = clock_us();
    const int sweep_reps = 1000;
    for (int rep = 0; rep < sweep_reps; ++rep) {
      benchmark::DoNotOptimize(net_n.OptimalCompletion(evidence));
    }
    double sweep_us = (clock_us() - t0) / sweep_reps;
    double brute_us = -1;
    if (n <= 16) {
      double t1 = clock_us();
      benchmark::DoNotOptimize(
          BruteForceOptimalCompletion(net_n, evidence));
      brute_us = clock_us() - t1;
    }
    if (brute_us >= 0) {
      std::printf("%-8d %-16.2f %-16.1f %.0fx\n", n, sweep_us, brute_us,
                  brute_us / sweep_us);
    } else {
      std::printf("%-8d %-16.2f %-16s %s\n", n, sweep_us, "(intractable)",
                  "-");
    }
  }
  std::printf("\n");
}

void BM_SweepOptimalCompletion(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(42);
  CpNet net = mmconf::doc::MakeRandomCpNet(n, 3, 3, rng);
  Assignment evidence(net.num_variables());
  evidence.Set(0, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.OptimalCompletion(evidence));
  }
  state.counters["vars"] = n;
}
BENCHMARK(BM_SweepOptimalCompletion)->Arg(8)->Arg(32)->Arg(128)->Arg(512);

void BM_BruteForceCompletion(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Rng rng(42);
  CpNet net = mmconf::doc::MakeRandomCpNet(n, 2, 2, rng);
  Assignment evidence(net.num_variables());
  for (auto _ : state) {
    benchmark::DoNotOptimize(BruteForceOptimalCompletion(net, evidence));
  }
  state.counters["outcomes"] = static_cast<double>(1) * (1 << n);
}
BENCHMARK(BM_BruteForceCompletion)->Arg(4)->Arg(8)->Arg(12)->Arg(16);

/// Binary chain v0 -> v1 -> ... -> v(n-1): pinning v0 re-sweeps the
/// whole net, pinning v(n-1) a single variable.
CpNet MakeChainNet(int n) {
  CpNet net;
  for (int i = 0; i < n; ++i) {
    net.AddVariable("v" + std::to_string(i), {"a", "b"});
  }
  net.SetUnconditionalPreference(0, {0, 1}).ok();
  for (int i = 1; i < n; ++i) {
    net.SetParents(i, {static_cast<VarId>(i - 1)}).ok();
    net.SetPreference(i, {0}, {0, 1}).ok();
    net.SetPreference(i, {1}, {1, 0}).ok();
  }
  net.Validate().ok();
  return net;
}

/// Star: one root, n-1 children conditioned on it.
CpNet MakeFanOutNet(int n) {
  CpNet net;
  for (int i = 0; i < n; ++i) {
    net.AddVariable("v" + std::to_string(i), {"a", "b"});
  }
  net.SetUnconditionalPreference(0, {0, 1}).ok();
  for (int i = 1; i < n; ++i) {
    net.SetParents(i, {0}).ok();
    net.SetPreference(i, {0}, {0, 1}).ok();
    net.SetPreference(i, {1}, {1, 0}).ok();
  }
  net.Validate().ok();
  return net;
}

/// Full re-sweep under a single-variable pin — the "before" of the
/// incremental re-optimization; compare against BM_RecompleteFrom* with
/// the same shape and pin.
void BM_PinnedFullSweep(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CpNet net = state.range(1) == 0 ? MakeChainNet(n) : MakeFanOutNet(n);
  VarId pinned = static_cast<VarId>(n - 1);  // leaf / one spoke
  Assignment evidence(net.num_variables());
  evidence.Set(pinned, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.OptimalCompletion(evidence));
  }
  state.counters["vars"] = n;
}
BENCHMARK(BM_PinnedFullSweep)
    ->Args({64, 0})
    ->Args({512, 0})
    ->Args({64, 1})
    ->Args({512, 1});

void BM_RecompleteFromLeaf(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  CpNet net = state.range(1) == 0 ? MakeChainNet(n) : MakeFanOutNet(n);
  VarId pinned = static_cast<VarId>(n - 1);  // cone of size 1
  Assignment base = net.OptimalOutcome().value();
  Assignment scratch(net.num_variables());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.RecompleteInto(base, pinned, 1, &scratch));
  }
  state.counters["vars"] = n;
  state.counters["cone"] =
      static_cast<double>(net.DescendantCone(pinned).size());
}
BENCHMARK(BM_RecompleteFromLeaf)
    ->Args({64, 0})
    ->Args({512, 0})
    ->Args({64, 1})
    ->Args({512, 1});

void BM_RecompleteFromRoot(benchmark::State& state) {
  // Worst case: the pin's cone is the whole net, so the incremental
  // sweep degenerates to the full one (minus the allocation).
  int n = static_cast<int>(state.range(0));
  CpNet net = state.range(1) == 0 ? MakeChainNet(n) : MakeFanOutNet(n);
  Assignment base = net.OptimalOutcome().value();
  Assignment scratch(net.num_variables());
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.RecompleteInto(base, 0, 1, &scratch));
  }
  state.counters["vars"] = n;
  state.counters["cone"] = static_cast<double>(net.DescendantCone(0).size());
}
BENCHMARK(BM_RecompleteFromRoot)->Args({512, 0})->Args({512, 1});

void BM_ImprovingFlips(benchmark::State& state) {
  Rng rng(7);
  CpNet net = mmconf::doc::MakeRandomCpNet(
      static_cast<int>(state.range(0)), 3, 3, rng);
  Assignment outcome = net.OptimalOutcome().value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.ImprovingFlips(outcome));
  }
}
BENCHMARK(BM_ImprovingFlips)->Arg(32)->Arg(256);

}  // namespace

int main(int argc, char** argv) {
  PrintFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
