// The interaction tier, federated: three interaction nodes share one
// database and one reliable transport. A front door admits physicians
// to the node their room hashes to, a mis-directed request is forwarded
// between nodes, and then the room — members, choices, a mid-flight CT
// stream — migrates live to another node with byte-verified log replay
// before the cutover.
//
//   ./build/examples/federated_conference

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "compress/layered_codec.h"
#include "doc/builder.h"
#include "federation/tier.h"
#include "media/synthetic.h"
#include "obs/metrics.h"
#include "storage/database.h"

using namespace mmconf;

int main() {
  Clock clock;
  net::Network network(&clock);
  net::NodeId db_node = network.AddNode("oracle");
  storage::DatabaseServer db;
  if (!db.RegisterStandardTypes().ok()) return 1;

  federation::FederationOptions options;
  options.num_nodes = 3;
  options.backbone = {50e6, 1000};
  federation::FederatedInteractionTier tier(&db, &network, db_node, options);
  obs::MetricsRegistry metrics;
  tier.SetObserver(&metrics, nullptr);

  net::NodeId ws = network.AddNode("hospital-workstation");
  net::NodeId dsl = network.AddNode("home-dsl");
  tier.ConnectClient(ws, {10e6, 10000}).ok();
  tier.ConnectClient(dsl, {1e6, 30000}).ok();

  const std::string room_id = "tumor-board";
  tier.OpenRoomWithDocument(room_id, doc::MakeMedicalRecordDocument().value())
      .value();
  size_t home = tier.NodeOf(room_id).value();
  std::printf("room '%s' hashes to fed-node-%zu of %zu nodes\n\n",
              room_id.c_str(), home, tier.num_nodes());

  // Front-door admission: node 0 forwards the join to the owning node.
  tier.Join(room_id, {"dr-cohen", ws}).value();
  tier.Join(room_id, {"dr-levi", dsl}).value();
  tier.Settle().value();
  std::printf("both physicians admitted via the front door (node 0 -> "
              "node %zu)\n", home);

  // dr-levi's stale client sends its choice to the wrong node; the tier
  // forwards it over the backbone and applies it on the owner.
  size_t wrong = (home + 1) % tier.num_nodes();
  tier.SubmitChoiceVia(wrong, room_id, "dr-levi", "CT", "segmented").value();
  tier.Settle().value();
  std::printf("dr-levi's CT=segmented entered at node %zu, forwarded to "
              "node %zu (fed.routed=%llu)\n\n",
              wrong, home,
              static_cast<unsigned long long>(
                  metrics.GetCounter("fed.routed")->value()));

  // Open a layered CT stream toward dr-cohen, then migrate the room
  // while the stream still has objects to deliver.
  Rng rng(7);
  compress::LayeredCodec codec;
  std::vector<Bytes> slices;
  for (int s = 0; s < 3; ++s) {
    slices.push_back(
        codec.Encode(media::MakePhantomCt({64, 64, 4, 2.0}, rng)).value());
  }
  tier.node(home)->OpenStream(room_id, "dr-cohen", slices, {}).value();

  size_t target = (home + 2) % tier.num_nodes();
  tier.StartMigration(room_id, target).ok();
  // The room keeps serving while the snapshot is in flight.
  tier.SubmitChoice(room_id, "dr-cohen", "XRay", "flat").value();
  federation::MigrationReport report = tier.FinishMigration(room_id).value();

  std::printf("== migrated '%s' node %zu -> node %zu ==\n", room_id.c_str(),
              report.from_node, report.to_node);
  std::printf("  snapshot        %zu bytes over the backbone\n",
              report.state_bytes);
  std::printf("  replayed        %zu actions (%zu arrived mid-migration)\n",
              report.replayed_actions, report.delta_actions);
  std::printf("  streams carried %zu (resumed at their chunk boundary)\n",
              report.streams_carried);
  std::printf("  verified        %s (Room::Serialize byte-equal before "
              "cutover)\n",
              report.verified ? "yes" : "NO");
  std::printf("  took            %.1f ms of virtual time\n\n",
              (report.completed_at - report.started_at) / 1000.0);

  // Let the carried stream finish from its new node, then show the
  // per-node load the gauges publish.
  tier.Settle().value();
  std::vector<federation::NodeLoad> loads = tier.Loads();
  std::printf("per-node load after migration:\n");
  for (size_t i = 0; i < loads.size(); ++i) {
    std::printf("  fed-node-%zu: %zu rooms, %zu members, %zu reliable "
                "msgs, %zu bytes propagated\n",
                i, loads[i].rooms, loads[i].members, loads[i].messages,
                loads[i].bytes_propagated);
  }
  stream::StreamStats stats =
      tier.node(target)->RoomStreamStats(room_id).value()[0];
  std::printf("\nstream %llu finished on node %zu: %zu/%zu chunks acked\n",
              static_cast<unsigned long long>(stats.id), target,
              stats.chunks_acked, stats.chunks_total);
  return report.verified && stats.finished ? 0 : 1;
}
