// A multi-party tele-consultation (the paper's Figs. 5 and 8): two
// physicians share a "room" over asymmetric links, browse a patient
// record, make viewing choices, freeze and segment the CT, and every
// change propagates to the other partner.
//
//   ./build/examples/medical_conference

#include <cstdio>

#include "client/client.h"
#include "client/layout.h"
#include "doc/builder.h"
#include "imaging/ops.h"
#include "media/synthetic.h"
#include "server/interaction_server.h"
#include "storage/database.h"

using namespace mmconf;

int main() {
  Clock clock;
  net::Network network(&clock);
  net::NodeId server_node = network.AddNode("interaction-server");
  net::NodeId db_node = network.AddNode("oracle");
  net::NodeId ws = network.AddNode("hospital-workstation");
  net::NodeId dsl = network.AddNode("home-dsl");
  network.SetDuplexLink(server_node, db_node, {50e6, 500}).ok();
  network.SetDuplexLink(server_node, ws, {10e6, 10000}).ok();
  network.SetDuplexLink(server_node, dsl, {128e3, 60000}).ok();

  storage::DatabaseServer db;
  if (!db.RegisterStandardTypes().ok()) return 1;
  server::InteractionServer server(&db, &network, server_node, db_node);

  // Store the CT image and the record document in the database.
  Rng rng(7);
  media::Image ct = media::MakePhantomCt({256, 256, 5, 3.0}, rng);
  auto ct_ref = db.Store("Image",
                         {{"FLD_QUALITY", int64_t{95}},
                          {"FLD_TEXTS", std::string("chest ct")},
                          {"FLD_CM", std::string("slice 42")}},
                         {{"FLD_DATA", ct.Encode()}});
  auto document = doc::MakeMedicalRecordDocument();
  auto doc_ref = server.StoreDocument(*document, "patient-17");
  auto* room = *server.OpenRoom("tumor-board", *doc_ref);

  std::printf("room '%s' opened on patient-17\n\n", room->id().c_str());

  // Two physicians join; the slow link receives its initial content
  // later.
  client::ClientModule cohen("dr-cohen", ws);
  client::ClientModule levi("dr-levi", dsl);
  MicrosT t_cohen = *server.Join("tumor-board", {"dr-cohen", ws});
  MicrosT t_levi = *server.Join("tumor-board", {"dr-levi", dsl});
  std::printf("dr-cohen initial content at %6.1f ms (10 Mb workstation)\n",
              t_cohen / 1000.0);
  std::printf("dr-levi  initial content at %6.1f ms (128 kB/s home DSL)\n\n",
              t_levi / 1000.0);

  std::printf("== shared view (author-optimal default) ==\n%s\n",
              client::RenderDocumentView(room->document(),
                                         room->configuration())
                  ->c_str());

  // dr-cohen wants the CT segmented; the choice pins the CT variable and
  // the presentation module re-optimizes everything else around it.
  server.SubmitChoice("tumor-board", "dr-cohen", "CT", "segmented").value();
  std::printf("== after dr-cohen chooses CT=segmented ==\n%s\n",
              client::RenderDocumentView(room->document(),
                                         room->configuration())
                  ->c_str());

  // dr-levi freezes the CT (nobody else may mutate it), segments the
  // actual pixels, and releases.
  room->Freeze("dr-levi", "CT").ok();
  media::Image fetched =
      *media::Image::Decode(*db.FetchBlob(*ct_ref, "FLD_DATA"));
  media::Image segmented = *imaging::SegmentedView(fetched, 4);
  segmented.AddTextElement(8, 8, "SEE LESION", 255);
  db.Modify(*ct_ref, {}, {{"FLD_DATA", segmented.Encode()}}).ok();
  server::UserAction op;
  op.type = server::ActionType::kSegmentOp;
  op.viewer = "dr-levi";
  op.component = "CT";
  server.ApplyOperation("tumor-board", op, /*globally_important=*/true)
      .value();
  room->ReleaseFreeze("dr-levi", "CT").ok();
  std::printf("dr-levi segmented the CT; the operation variable extends "
              "the CP-net to %zu variables\n\n",
              room->document().num_variables());

  // How the shared view lays out on each partner's screen.
  client::Layout workstation_layout =
      *client::LayoutView(room->document(), room->configuration(), 1280,
                          800);
  client::Layout laptop_layout = *client::LayoutView(
      room->document(), room->configuration(), 640, 400);
  std::printf("workstation layout: %s",
              client::LayoutToString(workstation_layout).c_str());
  std::printf("laptop layout:      %s\n",
              client::LayoutToString(laptop_layout).c_str());

  // Drain the network: both partners received every propagated change.
  std::vector<net::Delivery> deliveries = network.AdvanceUntilIdle();
  cohen.HandleDeliveries(deliveries);
  levi.HandleDeliveries(deliveries);
  std::printf("dr-cohen received %zu deliveries / %zu bytes\n",
              cohen.deliveries_received(), cohen.bytes_received());
  std::printf("dr-levi  received %zu deliveries / %zu bytes\n",
              levi.deliveries_received(), levi.bytes_received());
  std::printf("server pushed %zu bytes total; virtual time %.1f ms\n",
              server.bytes_propagated(), clock.NowSeconds() * 1000.0);
  return 0;
}
