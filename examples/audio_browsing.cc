// Audio browsing for tele-consulting (the paper's voice module and
// Fig. 10): train the AudioBrowser facade on enrollment recordings, then
// browse a new consultation — automatic segmentation, "how many speakers
// participate? who speaks where?", and watched-keyword spotting, all
// CD-HMM/GMM based.
//
//   ./build/examples/audio_browsing

#include <cstdio>

#include <vector>

#include "audio/browser.h"
#include "media/synthetic.h"

using namespace mmconf;
using media::AudioClass;
using media::AudioSegment;

int main() {
  Rng rng(2024);
  std::vector<media::SpeakerProfile> speakers = media::MakeSpeakers(3, rng);
  std::vector<media::Word> vocab = media::MakeVocabulary(4, 3, 6, rng);

  media::ConversationOptions options;
  options.num_turns = 10;
  options.words_per_turn = 2;
  options.music_probability = 0.25;
  options.artifact_probability = 0.25;

  // Enrollment recordings (with ground truth) and the recording to
  // browse.
  std::vector<media::Conversation> enrollment;
  for (int i = 0; i < 3; ++i) {
    enrollment.push_back(
        media::MakeConversation(speakers, vocab, options, rng));
  }
  media::Conversation consult =
      media::MakeConversation(speakers, vocab, options, rng);
  std::printf("consultation recording: %.1f s, %zu true segments\n\n",
              consult.signal.DurationSeconds(), consult.segments.size());

  // One facade, one training pass: segmenter + speaker spotter (keyed to
  // all 3 physicians) + word spotter (watch list {0, 1}).
  audio::AudioBrowser browser;
  Rng train_rng(7);
  if (!browser.Train(enrollment, train_rng).ok()) return 1;

  audio::BrowseReport report = *browser.Browse(consult.signal);
  std::printf("== browse report ==\n%s\n", report.ToString().c_str());

  double accuracy = audio::SegmentationFrameAccuracy(
      report.segments, consult.segments, consult.signal.size());
  std::printf("segmentation frame accuracy vs ground truth: %.1f%%\n\n",
              accuracy * 100);

  std::printf("speaker timeline (Fig. 10's colored regions):\n");
  std::printf("%-12s %-12s %-10s %s\n", "begin(s)", "end(s)", "speaker",
              "score");
  const int rate = consult.signal.sample_rate();
  int shown = 0;
  for (const audio::SpeakerDetection& hit : report.speaker_timeline) {
    if (shown++ >= 8) break;
    std::printf("%-12.2f %-12.2f spk-%-6d %+.2f\n",
                static_cast<double>(hit.begin) / rate,
                static_cast<double>(hit.end) / rate, hit.speaker,
                hit.score);
  }

  std::printf("\nkeyword flags (watch list {0, 1}):\n");
  for (size_t i = 0; i < report.keyword_flags.size() && i < 8; ++i) {
    const audio::WordDetection& hit = report.keyword_flags[i];
    std::printf("  keyword %d at %.2f-%.2f s (llr %+.2f)\n", hit.keyword,
                static_cast<double>(hit.begin) / rate,
                static_cast<double>(hit.end) / rate, hit.score);
  }
  if (report.keyword_flags.empty()) {
    std::printf("  (none above threshold on automatic segments; "
                "word-level spans via SpotSliding)\n");
  }
  return 0;
}
