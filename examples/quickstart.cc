// Quickstart: build a multimedia document with author preferences, ask
// the presentation module for the optimal configuration, apply a viewer
// choice, and watch the presentation reconfigure.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "client/client.h"
#include "doc/builder.h"
#include "doc/document.h"

int main() {
  using mmconf::doc::MakeMedicalRecordDocument;
  using mmconf::doc::MultimediaDocument;

  // A patient medical record: CT + X-ray images, voice fragment of
  // expertise, test results — with the author's CP-net preferences from
  // the paper's Section 4 ("if a CT image is presented, then a
  // correlated X-ray image is preferred by the author to be hidden").
  mmconf::Result<MultimediaDocument> document = MakeMedicalRecordDocument();
  if (!document.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 document.status().ToString().c_str());
    return 1;
  }

  // defaultPresentation(): the optimal configuration with no viewer
  // choices.
  auto initial = document->DefaultPresentation();
  std::printf("== default presentation ==\n%s\n",
              mmconf::client::RenderDocumentView(*document, *initial)
                  ->c_str());

  // A viewer explicitly hides the CT; reconfigPresentation finds the best
  // completion honoring that choice — the X-ray surfaces and the expert
  // voice falls back to a summary.
  auto after_choice = document->ReconfigPresentation({{"CT", "hidden"}});
  std::printf("== after viewer hides the CT ==\n%s\n",
              mmconf::client::RenderDocumentView(*document, *after_choice)
                  ->c_str());

  // Delivery planning: how many bytes each configuration costs to ship.
  std::printf("delivery cost: default=%zu bytes, after choice=%zu bytes\n",
              *document->DeliveryCostBytes(*initial),
              *document->DeliveryCostBytes(*after_choice));
  return 0;
}
