// Adaptive layered streaming (§4.4 delivery machinery, DESIGN.md §9):
// a CT cine — a deadline-spaced sequence of layered bitstreams — is
// streamed to two partners in the same room over very different links.
// The workstation receives every layer; the clinic's thin link forces
// the scheduler to shed enhancement layers so that every base still
// lands before its playout deadline: quality degrades, continuity does
// not.
//
//   ./build/examples/streaming_consult
//
// Optional flags: --metrics_out=PATH dumps the obs MetricsRegistry
// snapshot as JSON; --trace_out=PATH writes a Chrome trace_event
// timeline of the consult (open in chrome://tracing or Perfetto).

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "compress/layered_codec.h"
#include "doc/builder.h"
#include "media/synthetic.h"
#include "net/network.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/interaction_server.h"
#include "storage/database.h"
#include "stream/scheduler.h"

using namespace mmconf;

int main(int argc, char** argv) {
  std::string metrics_path;
  std::string trace_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--metrics_out=", 14) == 0) {
      metrics_path = argv[i] + 14;
    } else if (std::strncmp(argv[i], "--trace_out=", 12) == 0) {
      trace_path = argv[i] + 12;
    }
  }
  // A 10-slice CT cine, each slice encoded once with the layered codec.
  Rng rng(23);
  compress::LayeredCodec codec;
  std::vector<Bytes> cine;
  for (int i = 0; i < 10; ++i) {
    media::Image slice = media::MakePhantomCt({96, 96, 5, 2.5}, rng);
    cine.push_back(*codec.Encode(slice));
  }
  compress::StreamInfo info = *compress::LayeredCodec::Inspect(cine[0]);
  std::printf("CT cine: %zu slices, %zu layers each, ~%zu B/slice\n\n",
              cine.size(), info.layers.size(), info.total_bytes);

  // The usual fleet: server + database + two physicians. Dr. Cohen sits
  // at the hospital workstation (1 MB/s); Dr. Levi dials in from the
  // clinic (8 kB/s) — fast enough for bases, not for every refinement.
  Clock clock;
  net::Network network(&clock, /*fault_seed=*/42);
  net::NodeId server_node = network.AddNode("server");
  net::NodeId db_node = network.AddNode("db");
  net::NodeId workstation = network.AddNode("workstation");
  net::NodeId clinic = network.AddNode("clinic");
  network.SetDuplexLink(server_node, db_node, {50e6, 500}).ok();
  network.SetDuplexLink(server_node, workstation, {1e6, 15000}).ok();
  network.SetDuplexLink(server_node, clinic, {8e3, 40000}).ok();

  net::ReliableTransport transport(&network, {});
  storage::DatabaseServer db;
  db.RegisterStandardTypes().ok();
  server::InteractionServer server(&db, &network, server_node, db_node);
  server.UseReliableTransport(&transport);

  obs::MetricsRegistry registry;
  obs::Tracer tracer(&clock);
  obs::MetricsRegistry* metrics =
      metrics_path.empty() ? nullptr : &registry;
  obs::Tracer* trace = trace_path.empty() ? nullptr : &tracer;
  if (metrics != nullptr || trace != nullptr) {
    network.SetObserver(metrics, trace);
    transport.SetObserver(metrics, trace);
    server.SetObserver(metrics, trace);
  }

  doc::MultimediaDocument document = doc::MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server.StoreDocument(document, "patient-7").value();
  server.OpenRoom("consult", ref).value();
  server.Join("consult", {"dr-cohen", workstation}).value();
  server.Join("consult", {"dr-levi", clinic}).value();
  transport.AdvanceUntilIdle();

  // One stream per partner: a slice every 250 ms, first deadline 600 ms
  // out. Same content, same deadlines — only the links differ.
  stream::StreamOptions options;
  options.start_deadline_micros = clock.NowMicros() + 600000;
  options.interval_micros = 250000;
  options.chunk_bytes = 2048;
  stream::StreamId to_cohen =
      server.OpenStream("consult", "dr-cohen", cine, options).value();
  stream::StreamId to_levi =
      server.OpenStream("consult", "dr-levi", cine, options).value();
  server.AdvanceStreamsUntilIdle().value();

  struct Row {
    const char* who;
    stream::StreamId id;
  };
  const Row rows[] = {{"dr-cohen (workstation)", to_cohen},
                      {"dr-levi  (clinic)", to_levi}};
  std::printf("%-24s %-8s %-8s %-8s %-10s %-10s %-9s\n", "partner",
              "played", "stalls", "dropped", "layers", "min-layer",
              "bytes");
  for (const Row& row : rows) {
    stream::StreamStats stats = server.StreamSessionStats(row.id).value();
    std::printf("%-24s %zu/%-6zu %-8zu %-8zu %-10.2f %-9d %zu\n", row.who,
                stats.playout.objects_played, stats.playout.objects_expected,
                stats.playout.stalls, stats.layers_dropped,
                stats.playout.MeanLayers(), stats.playout.min_layers,
                stats.bytes_sent);
  }

  stream::StreamStats levi = server.StreamSessionStats(to_levi).value();
  std::printf("\nclinic link verdict: %zu enhancement layers shed, "
              "min quality %d layer(s), %zu stall(s) — the base layer is "
              "never dropped, so the cine keeps moving.\n",
              levi.layers_dropped, levi.playout.min_layers,
              levi.playout.stalls);
  std::printf("estimated clinic rate from ack spacing: %.0f B/s "
              "(link: 8000 B/s)\n",
              levi.estimated_rate_bytes_per_sec);

  if (metrics != nullptr) {
    Status wrote = registry.Snapshot().WriteJson(metrics_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "metrics: %s\n", wrote.ToString().c_str());
      return 1;
    }
    std::printf("metrics snapshot -> %s\n", metrics_path.c_str());
  }
  if (trace != nullptr) {
    Status wrote = tracer.WriteJson(trace_path);
    if (!wrote.ok()) {
      std::fprintf(stderr, "trace: %s\n", wrote.ToString().c_str());
      return 1;
    }
    std::printf("trace timeline (%zu events) -> %s\n", tracer.num_events(),
                trace_path.c_str());
  }
  return 0;
}
