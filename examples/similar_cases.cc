// The paper's opening scenario beyond the room itself: "While discussing
// the case, some of them would like to consider similar cases either from
// the same database or from other medical databases... some of them may
// like to support their views with articles from databases." This example
// builds a small case archive, then answers both needs: content-based
// similar-case retrieval for the CT under discussion, and keyword
// retrieval over consultation notes — with the bandwidth-tuned
// presentation choosing how to show what was found.
//
//   ./build/examples/similar_cases

#include <cstdio>
#include <string>
#include <vector>

#include "doc/builder.h"
#include "doc/tuning.h"
#include "media/synthetic.h"
#include "search/similarity_index.h"
#include "search/text_index.h"
#include "storage/database.h"

using namespace mmconf;

int main() {
  storage::DatabaseServer db;
  if (!db.RegisterStandardTypes().ok()) return 1;
  Rng rng(31);

  // 1. An archive of past cases: sparse-pathology and dense-pathology
  // phantoms with their consultation notes.
  struct Case {
    storage::ObjectRef image;
    storage::ObjectRef note;
    const char* summary;
  };
  std::vector<Case> archive;
  const char* notes[] = {
      "single large lesion left lobe, biopsy recommended",
      "one dominant mass, margins smooth, likely benign",
      "solitary nodule stable since prior study",
      "multiple small nodules scattered both lungs",
      "diffuse micronodular pattern, infectious etiology suspected",
      "numerous small lesions, miliary distribution",
  };
  for (int i = 0; i < 6; ++i) {
    media::PhantomOptions options;
    options.width = 128;
    options.height = 128;
    options.num_structures = i < 3 ? 2 : 14;  // sparse vs dense pathology
    media::Image scan = media::MakePhantomCt(options, rng);
    storage::ObjectRef image =
        db.Store("Image",
                 {{"FLD_QUALITY", int64_t{90}},
                  {"FLD_TEXTS", std::string(notes[i])},
                  {"FLD_CM", std::string("archive")}},
                 {{"FLD_DATA", scan.Encode()}})
            .value();
    std::string text(notes[i]);
    storage::ObjectRef note =
        db.Store("Text", {{"FLD_TITLE", std::string("note")}},
                 {{"FLD_DATA", Bytes(text.begin(), text.end())}})
            .value();
    archive.push_back({image, note, notes[i]});
  }

  // 2. Index the archive.
  search::SimilarityIndex similarity(&db);
  similarity.AddAllImages().value();
  search::TextIndex text_index(&db);
  text_index.AddAllTexts().value();
  std::printf("archive: %zu cases indexed (%zu media, %zu notes)\n\n",
              archive.size(), similarity.size(),
              text_index.num_documents());

  // 3. The case under discussion: a new dense-pathology scan.
  media::PhantomOptions query_options;
  query_options.width = 128;
  query_options.height = 128;
  query_options.num_structures = 12;
  media::Image query = media::MakePhantomCt(query_options, rng);

  std::printf("== similar cases for the scan under discussion ==\n");
  for (const search::SimilarityHit& hit :
       similarity.QueryImage(query, 3).value()) {
    storage::ObjectRecord record = db.FetchRecord(hit.ref).value();
    std::printf("  dist %.3f  case #%llu: %s\n", hit.distance,
                static_cast<unsigned long long>(hit.ref.id),
                std::get<std::string>(record.fields.at("FLD_TEXTS"))
                    .c_str());
  }

  // 4. Literature-style keyword lookup over the notes.
  std::printf("\n== notes matching \"multiple nodules\" ==\n");
  for (const search::TextHit& hit :
       text_index.Query("multiple nodules", 3).value()) {
    Bytes payload = db.FetchBlob(hit.ref, "FLD_DATA").value();
    std::printf("  score %.3f  %s\n", hit.score,
                std::string(payload.begin(), payload.end()).c_str());
  }

  // 5. Present the retrieved case in a bandwidth-tuned document: the
  // same record renders rich on the ward workstation and lean on a
  // phone.
  doc::MultimediaDocument record = doc::MakeMedicalRecordDocument().value();
  doc::AddBandwidthTuning(record, "net").value();
  std::printf("\n== presenting the retrieved case per link quality ==\n");
  for (double bandwidth : {10e6, 64e3, 2e3}) {
    doc::BandwidthLevel level = doc::ClassifyBandwidth(bandwidth);
    cpnet::Assignment config =
        record.ReconfigPresentation({doc::TuningChoice("net", level)})
            .value();
    std::printf("  %8.0f B/s (%s): CT=%s, delivery %zu bytes\n", bandwidth,
                doc::BandwidthLevelToString(level),
                record.PresentationFor(config, "CT").value().name.c_str(),
                record.DeliveryCostBytes(config).value());
  }
  return 0;
}
