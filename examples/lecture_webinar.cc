// The lecture/webinar tier: one small interaction room (the lecturer
// and a moderator) broadcasts to a ten-thousand-viewer audience that
// never joins the room. The hosting node composes the room's visible
// images into one mosaic stream per bandwidth class and mixes the
// active speakers; a relay tree replicates the composed stream so the
// server's egress stays O(fanout) while only the (unavoidable) last
// hop scales with the audience. Mid-run the microphone changes hands
// and the mix follows within one selection window.
//
//   ./build/examples/lecture_webinar

#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.h"
#include "doc/builder.h"
#include "fanout/director.h"
#include "federation/tier.h"
#include "media/synthetic.h"
#include "obs/metrics.h"
#include "storage/database.h"

using namespace mmconf;

int main() {
  Clock clock;
  net::Network network(&clock);
  net::NodeId db_node = network.AddNode("oracle");
  storage::DatabaseServer db;
  if (!db.RegisterStandardTypes().ok()) return 1;

  federation::FederationOptions fed_options;
  fed_options.num_nodes = 3;
  fed_options.backbone = {50e6, 1000};
  federation::FederatedInteractionTier tier(&db, &network, db_node,
                                            fed_options);
  fanout::BroadcastDirector director(&tier, &network);
  obs::MetricsRegistry metrics;
  director.SetObserver(&metrics, nullptr);

  // The room itself stays tiny: the lecturer and a moderator.
  net::NodeId podium = network.AddNode("lecture-hall-podium");
  tier.ConnectClient(podium, {10e6, 10000}).ok();
  const std::string room_id = "grand-rounds";
  tier.OpenRoomWithDocument(room_id, doc::MakeMedicalRecordDocument().value())
      .value();
  tier.Join(room_id, {"dr-lecturer", podium}).value();
  tier.Join(room_id, {"moderator", podium}).value();
  director.Settle().value();
  size_t host = tier.NodeOf(room_id).value();
  std::printf("room '%s' hosts its broadcast on fed-node-%zu\n", room_id.c_str(),
              host);

  // Stand the broadcast up and bind the room's CT to its pixels.
  fanout::BroadcastOptions options;
  options.compositor.high_px = 64;
  options.compositor.medium_px = 32;
  options.compositor.low_px = 16;
  fanout::BroadcastSession* session =
      director.HostBroadcast(room_id, 10000, options).value();
  Rng rng(7);
  media::Image ct = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
  director.RegisterImage(room_id, "CT", ct).ok();

  // The speaker handoff, on the audio timeline: the lecturer talks for
  // the first second (frames 0-1), then hands the microphone to the
  // moderator for the second (frames 2-3). 8 kHz, 500 ms per frame.
  media::AudioSignal lecturer(std::vector<float>(16000, 0.3f), 8000);
  media::AudioSignal moderator(std::vector<float>(16000, -0.25f), 8000);
  director
      .RegisterSpeaker(room_id, 1, lecturer,
                       {{0, 8000, media::AudioClass::kSpeech, 1, -1}})
      .ok();
  director
      .RegisterSpeaker(room_id, 2, moderator,
                       {{8000, 16000, media::AudioClass::kSpeech, 2, -1}})
      .ok();

  // Ten thousand view-only clients through the front door — they never
  // join the room — plus two fully simulated viewers on lossy DSL.
  director.AdmitViewers(room_id, 6000, doc::BandwidthLevel::kHigh).ok();
  director.AdmitViewers(room_id, 3000, doc::BandwidthLevel::kMedium).ok();
  director.AdmitViewers(room_id, 1000, doc::BandwidthLevel::kLow).ok();
  net::FaultSpec lossy;
  lossy.drop_probability = 0.05;
  net::NodeId dsl_viewer =
      director
          .AdmitSampledViewer(room_id, doc::BandwidthLevel::kMedium,
                              {1e6, 30000}, lossy)
          .value();
  director
      .AdmitSampledViewer(room_id, doc::BandwidthLevel::kLow, {5e5, 40000},
                          lossy)
      .value();
  std::printf("audience: %zu aggregated over %zu edge relays, 2 sampled "
              "end-to-end\n\n",
              session->tree()->total_viewers(),
              session->tree()->edge_relays().size());

  // Four composed frames: the mix follows the handoff automatically.
  for (int frame = 0; frame < 4; ++frame) {
    director.PushFrame(room_id).ok();
    director.Settle().value();
  }
  // Replay the composition (it is pure) to show who was live per frame.
  std::vector<fanout::SpeakerTrack> tracks = {
      {1, &lecturer, {{0, 8000, media::AudioClass::kSpeech, 1, -1}}},
      {2, &moderator, {{8000, 16000, media::AudioClass::kSpeech, 2, -1}}},
  };
  for (uint32_t frame = 0; frame < 4; ++frame) {
    auto composed =
        session->compositor().ComposeFrame(frame, {ct}, tracks).value();
    std::printf("frame %u: active speaker(s):", frame);
    for (int speaker : composed[0].active_speakers) {
      std::printf(" %s", speaker == 1 ? "dr-lecturer" : "moderator");
    }
    std::printf("  (%zu composed bytes @high)\n", composed[0].video.size());
  }

  fanout::BroadcastStats stats = session->Stats();
  std::printf("\n== what the tree bought ==\n");
  std::printf("  server egress     %10zu B (O(fanout), audience-blind)\n",
              stats.server_egress_bytes);
  std::printf("  tree wire         %10zu B over %zu relays\n",
              stats.tree_wire_bytes, stats.relays);
  std::printf("  modeled last hop  %10zu B (the hop every scheme pays)\n",
              stats.modeled_last_hop_bytes);
  std::printf("  unicast instead   %10zu B would have left the server\n",
              stats.unicast_equiv_bytes);
  std::printf("  reduction         %10.0fx\n",
              static_cast<double>(stats.unicast_equiv_bytes) /
                  static_cast<double>(stats.server_egress_bytes));
  fanout::SampledViewerStats viewer = session->ViewerStats(dsl_viewer).value();
  std::printf("\nsampled DSL viewer: %zu/%zu frames delivered, %zu aborted, "
              "%zu audio msgs (loss injected, bases never dropped)\n",
              viewer.frames_delivered, stats.frames, viewer.frames_aborted,
              viewer.audio_messages);
  std::printf("mix.windows=%llu mix.ties_broken=%llu fanout.frames=%llu\n",
              static_cast<unsigned long long>(
                  metrics.GetCounter("mix.windows")->value()),
              static_cast<unsigned long long>(
                  metrics.GetCounter("mix.ties_broken")->value()),
              static_cast<unsigned long long>(
                  metrics.GetCounter("fanout.frames")->value()));

  bool healthy = stats.all_finished && stats.streams_aborted == 0 &&
                 stats.server_egress_bytes < stats.unicast_equiv_bytes &&
                 viewer.frames_delivered == stats.frames;
  return healthy ? 0 : 1;
}
