// Multi-resolution image delivery (the paper's Fig. 9 and its
// image-compression-transfer module): the same CT is encoded once with
// the multi-layered hybrid codec, and each partner in the room receives
// as much of the stream as their bandwidth affords — full quality on the
// workstation, fewer layers or a thumbnail on the slow link.
//
//   ./build/examples/adaptive_imaging

#include <cstdio>

#include "compress/layered_codec.h"
#include "imaging/ops.h"
#include "media/synthetic.h"
#include "storage/cmp_store.h"

using namespace mmconf;
using compress::LayeredCodec;
using compress::StreamInfo;

int main() {
  Rng rng(11);
  media::Image ct = media::MakePhantomCt({256, 256, 6, 3.0}, rng);
  std::printf("CT phantom: %dx%d, raw %zu bytes\n\n", ct.width(),
              ct.height(), ct.pixels().size());

  LayeredCodec codec;  // wavelet base + packet and local-cosine residuals
  Bytes stream = *codec.Encode(ct);
  StreamInfo info = *LayeredCodec::Inspect(stream);

  std::printf("layered stream: %zu bytes total\n", info.total_bytes);
  std::printf("%-8s %-16s %-10s %-12s %-10s\n", "layer", "basis", "step",
              "prefix(B)", "PSNR(dB)");
  for (size_t k = 0; k < info.layers.size(); ++k) {
    media::Image decoded =
        *LayeredCodec::Decode(stream, static_cast<int>(k) + 1);
    double psnr = *media::Image::Psnr(ct, decoded);
    std::printf("%-8zu %-16s %-10.1f %-12zu %-10.2f\n", k,
                compress::LayerBasisToString(info.layers[k].basis),
                info.layers[k].quant_step, info.layer_end[k], psnr);
  }

  // Per-partner adaptation: 2-second interactive budget on each link.
  struct Partner {
    const char* name;
    double bandwidth_bytes_per_sec;
  };
  const Partner partners[] = {
      {"hospital-workstation", 10e6},
      {"clinic-isdn", 4e3},
      {"mobile-gsm", 1.2e3},
  };
  std::printf("\nper-partner delivery (2 s interactive deadline):\n");
  for (const Partner& partner : partners) {
    size_t budget =
        static_cast<size_t>(partner.bandwidth_bytes_per_sec * 2.0);
    int layers = *LayeredCodec::LayersWithinBudget(stream, budget);
    if (layers > 0) {
      media::Image view = *LayeredCodec::Decode(stream, layers);
      std::printf("  %-22s budget %8zu B -> %d layer(s), PSNR %.2f dB\n",
                  partner.name, budget, layers,
                  *media::Image::Psnr(ct, view));
    } else {
      media::Image thumb = *LayeredCodec::DecodeThumbnail(stream, 2);
      std::printf("  %-22s budget %8zu B -> thumbnail %dx%d\n",
                  partner.name, budget, thumb.width(), thumb.height());
    }
  }

  // Thumbnails straight from the base layer (progressive resolution).
  std::printf("\nthumbnails from the base layer:\n");
  for (int scale = 1; scale <= 3; ++scale) {
    media::Image thumb = *LayeredCodec::DecodeThumbnail(stream, scale);
    std::printf("  scale 1/%d: %dx%d\n", 1 << scale, thumb.width(),
                thumb.height());
  }

  // Resumable transfer through the Fig. 7 CMP_OBJECTS_TABLE: a 4 KB/s
  // session pulls 4 KB bursts; FLD_CURRENTPOSITION remembers progress,
  // and every burst improves the image the consumer can already decode.
  std::printf("\nresumable transfer (CMP_OBJECTS_TABLE, 4 KB bursts):\n");
  storage::DatabaseServer db;
  db.RegisterStandardTypes().ok();
  storage::CmpObjectStore cmp(&db);
  storage::ObjectRef ref = *cmp.StoreStream("ct.mlc", stream);
  int burst = 0;
  while (!*cmp.Complete(ref)) {
    cmp.FetchNext(ref, 4096).value();
    Bytes prefix = *cmp.AssembleCurrent(ref);
    int layers = *LayeredCodec::LayersWithinBudget(prefix, prefix.size());
    std::printf("  burst %d: position %6zu -> %d layer(s) decodable",
                ++burst, *cmp.Position(ref), layers);
    if (layers > 0) {
      media::Image view = *LayeredCodec::DecodePrefix(prefix, prefix.size());
      std::printf(", PSNR %.2f dB", *media::Image::Psnr(ct, view));
    }
    std::printf("\n");
  }
  return 0;
}
