#!/usr/bin/env python3
"""Gate a fresh bench JSON report against a checked-in baseline.

Usage:
    tools/bench_check.py BASELINE.json FRESH.json [--tolerance 0.25]

Every scalar in the baseline must appear at the same path in the fresh
report: numbers within a relative tolerance (default +/-25%), booleans
and strings exactly. Wall-clock fields (--skip, default baseline_us,
fast_us, speedup) are ignored — the simulation is virtual-time
deterministic, so everything else reproduces exactly and the tolerance
is pure headroom against toolchain drift. Exits nonzero listing every
violation.
"""

import argparse
import json
import sys

DEFAULT_SKIP = "baseline_us,fast_us,speedup"


def compare(base, fresh, path, tolerance, skip, violations):
    if isinstance(base, dict):
        if not isinstance(fresh, dict):
            violations.append(f"{path}: expected object, got {type(fresh).__name__}")
            return
        for key, value in base.items():
            if key in skip:
                continue
            if key not in fresh:
                violations.append(f"{path}/{key}: missing from fresh report")
                continue
            compare(value, fresh[key], f"{path}/{key}", tolerance, skip, violations)
    elif isinstance(base, list):
        if not isinstance(fresh, list):
            violations.append(f"{path}: expected array, got {type(fresh).__name__}")
            return
        if len(base) != len(fresh):
            violations.append(f"{path}: length {len(fresh)} != baseline {len(base)}")
            return
        for i, (b, f) in enumerate(zip(base, fresh)):
            compare(b, f, f"{path}[{i}]", tolerance, skip, violations)
    elif isinstance(base, bool):
        # bool before number: bool is an int subclass in Python.
        if fresh is not base:
            violations.append(f"{path}: {fresh!r} != baseline {base!r}")
    elif isinstance(base, (int, float)):
        if not isinstance(fresh, (int, float)) or isinstance(fresh, bool):
            violations.append(f"{path}: {fresh!r} is not numeric")
        elif base == 0:
            if fresh != 0:
                violations.append(f"{path}: {fresh} != baseline 0")
        elif abs(fresh - base) > tolerance * abs(base):
            violations.append(
                f"{path}: {fresh} outside +/-{tolerance:.0%} of baseline {base}"
            )
    else:
        if fresh != base:
            violations.append(f"{path}: {fresh!r} != baseline {base!r}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("fresh")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="relative tolerance for numbers (default 0.25)")
    parser.add_argument("--skip", default=DEFAULT_SKIP,
                        help="comma-separated keys to ignore (wall-clock)")
    args = parser.parse_args()

    try:
        with open(args.baseline) as f:
            base = json.load(f)
        with open(args.fresh) as f:
            fresh = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_check: cannot load report: {e}")
        return 2

    violations = []
    skip = {k for k in args.skip.split(",") if k}
    compare(base, fresh, "", args.tolerance, skip, violations)
    if violations:
        print(f"{args.fresh}: {len(violations)} violation(s) vs {args.baseline}:")
        for violation in violations:
            print(f"  {violation}")
        return 1
    print(f"{args.fresh}: within +/-{args.tolerance:.0%} of {args.baseline}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
