#!/usr/bin/env python3
"""Tests for tools/bench_check.py — the bench-gate comparator CI runs.

Covers the failure modes the gate must catch (missing/extra keys,
tolerance edges, flipped booleans, shape changes, malformed JSON) and
that every violation in a file pair is reported in one pass. Pure
stdlib; run directly or via unittest discovery:

    python3 tools/bench_check_test.py
"""

import json
import os
import subprocess
import sys
import tempfile
import unittest

CHECK = os.path.join(os.path.dirname(os.path.abspath(__file__)), "bench_check.py")


def run_check(baseline, fresh, *extra_args, write_fresh=True):
    """Writes both documents to temp files and runs bench_check.py."""
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "baseline.json")
        fresh_path = os.path.join(tmp, "fresh.json")
        with open(base_path, "w") as f:
            if isinstance(baseline, str):
                f.write(baseline)
            else:
                json.dump(baseline, f)
        with open(fresh_path, "w") as f:
            if isinstance(fresh, str):
                f.write(fresh)
            else:
                json.dump(fresh, f)
        return subprocess.run(
            [sys.executable, CHECK, base_path, fresh_path, *extra_args],
            capture_output=True,
            text=True,
        )


BASE = {
    "bench": "suite",
    "smoke": True,
    "cells": [{"metric": 100, "held": True}, {"metric": 200, "held": True}],
    "baseline_us": 5000,
}


class BenchCheckTest(unittest.TestCase):
    def test_identical_reports_pass(self):
        result = run_check(BASE, BASE)
        self.assertEqual(result.returncode, 0, result.stdout + result.stderr)

    def test_within_tolerance_passes(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["cells"][0]["metric"] = 124  # +24% < 25%
        self.assertEqual(run_check(BASE, fresh).returncode, 0)

    def test_outside_tolerance_fails(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["cells"][0]["metric"] = 126  # +26% > 25%
        result = run_check(BASE, fresh)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("metric", result.stdout)

    def test_tolerance_flag_respected(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["cells"][0]["metric"] = 140  # +40%
        self.assertNotEqual(run_check(BASE, fresh).returncode, 0)
        self.assertEqual(run_check(BASE, fresh, "--tolerance", "0.5").returncode, 0)

    def test_baseline_zero_requires_fresh_zero(self):
        self.assertNotEqual(run_check({"n": 0}, {"n": 1}).returncode, 0)
        self.assertEqual(run_check({"n": 0}, {"n": 0}).returncode, 0)

    def test_missing_key_fails(self):
        fresh = json.loads(json.dumps(BASE))
        del fresh["cells"][1]["held"]
        result = run_check(BASE, fresh)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("missing", result.stdout)

    def test_extra_keys_in_fresh_are_allowed(self):
        # New metrics may land before the baseline is regenerated; only
        # baseline keys gate.
        fresh = json.loads(json.dumps(BASE))
        fresh["new_metric"] = 7
        self.assertEqual(run_check(BASE, fresh).returncode, 0)

    def test_boolean_flip_fails_even_within_numeric_tolerance(self):
        # bool is an int subclass in Python; True -> False must fail even
        # though 0 and 1 could slip through a numeric comparison.
        fresh = json.loads(json.dumps(BASE))
        fresh["cells"][1]["held"] = False
        result = run_check(BASE, fresh)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("held", result.stdout)

    def test_bool_baseline_rejects_numeric_fresh(self):
        self.assertNotEqual(run_check({"ok": True}, {"ok": 1}).returncode, 0)

    def test_string_mismatch_fails(self):
        self.assertNotEqual(
            run_check({"bench": "a"}, {"bench": "b"}).returncode, 0
        )

    def test_array_length_change_fails(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["cells"].pop()
        result = run_check(BASE, fresh)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("length", result.stdout)

    def test_shape_change_fails(self):
        self.assertNotEqual(run_check({"a": {"b": 1}}, {"a": [1]}).returncode, 0)

    def test_wall_clock_keys_skipped(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["baseline_us"] = 999999  # wall clock: never gated
        self.assertEqual(run_check(BASE, fresh).returncode, 0)

    def test_malformed_fresh_json_fails_cleanly(self):
        result = run_check(BASE, "{not json")
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("cannot load", result.stdout)
        self.assertEqual(result.stderr, "")

    def test_malformed_baseline_json_fails_cleanly(self):
        result = run_check("][", {"n": 1})
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("cannot load", result.stdout)

    def test_missing_file_fails_cleanly(self):
        result = subprocess.run(
            [sys.executable, CHECK, "/no/such/base.json", "/no/such/fresh.json"],
            capture_output=True,
            text=True,
        )
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("cannot load", result.stdout)

    def test_all_violations_reported_in_one_pass(self):
        fresh = json.loads(json.dumps(BASE))
        fresh["cells"][0]["metric"] = 1000  # out of tolerance
        fresh["cells"][1]["held"] = False  # boolean flip
        del fresh["smoke"]  # missing key
        result = run_check(BASE, fresh)
        self.assertNotEqual(result.returncode, 0)
        self.assertIn("3 violation(s)", result.stdout)
        self.assertIn("metric", result.stdout)
        self.assertIn("held", result.stdout)
        self.assertIn("smoke", result.stdout)


if __name__ == "__main__":
    unittest.main()
