#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "net/network.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "storage/database.h"
#include "storage/replication.h"
#include "storage/sharded_db.h"
#include "storage/wal.h"

namespace mmconf::storage {
namespace {

Bytes RandomBytes(size_t n, Rng& rng) {
  Bytes data(n);
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

std::map<std::string, FieldValue> ImageFields(int64_t quality) {
  return {{"FLD_QUALITY", FieldValue{quality}},
          {"FLD_TEXTS", FieldValue{std::string("t")}},
          {"FLD_CM", FieldValue{std::string("c")}}};
}

/// A primary + transport + replica set on one clock, with the settle
/// loop the drivers use: deliver, fold, ship, until quiescent.
struct Rig {
  Clock clock;
  net::Network network{&clock, 0xfee1d00dull};
  net::NodeId db_node;
  std::unique_ptr<ShardedDatabaseServer> db;
  std::unique_ptr<net::ReliableTransport> transport;
  std::unique_ptr<ReplicatedShardSet> repl;

  explicit Rig(size_t shards, ReplicationOptions options = {}) {
    db_node = network.AddNode("db");
    ShardedDatabaseServer::Options db_options;
    db_options.num_shards = shards;
    db = std::make_unique<ShardedDatabaseServer>(&clock, db_options);
    transport = std::make_unique<net::ReliableTransport>(&network);
    repl = std::make_unique<ReplicatedShardSet>(db.get(), transport.get(),
                                                &clock, db_node, options);
  }

  ShipReport Pump() {
    ShipReport total;
    while (true) {
      std::vector<net::Delivery> deliveries = transport->AdvanceUntilIdle();
      size_t consumed = 0;
      for (const net::Delivery& delivery : deliveries) {
        if (repl->HandleDelivery(delivery)) ++consumed;
      }
      ShipReport round = repl->Ship().value();
      total.batches += round.batches;
      total.batch_bytes += round.batch_bytes;
      total.snapshots += round.snapshots;
      total.acks_folded += round.acks_folded;
      total.checkpoints += round.checkpoints;
      if (consumed == 0 && round.batches == 0 && round.snapshots == 0) {
        return total;
      }
    }
  }

  /// Seeded store/modify/delete mutations with clock advance, synced
  /// and drained at the end.
  void Mutate(int steps, uint64_t seed) {
    Rng rng(seed);
    std::vector<ObjectRef> live;
    for (int step = 0; step < steps; ++step) {
      uint64_t roll = rng.NextBelow(100);
      if (roll < 60 || live.empty()) {
        live.push_back(db->Store("Image", ImageFields(step),
                                 {{"FLD_DATA",
                                   RandomBytes(rng.NextBelow(700), rng)}})
                           .value());
      } else if (roll < 85) {
        ASSERT_TRUE(db->Modify(live[rng.NextBelow(live.size())],
                               {{"FLD_QUALITY",
                                 FieldValue{static_cast<int64_t>(step)}}},
                               {})
                        .ok());
      } else {
        size_t pick = rng.NextBelow(live.size());
        ASSERT_TRUE(db->Delete(live[pick]).ok());
        live.erase(live.begin() + pick);
      }
      clock.AdvanceMicros(2000 + static_cast<MicrosT>(rng.NextBelow(1500)));
    }
    db->SyncAll();
    Pump();
  }
};

TEST(ReplicationTest, ShipsOneBatchPerGroupCommitBoundary) {
  Rig rig(2);
  ASSERT_TRUE(rig.db->RegisterStandardTypes().ok());
  ShipReport setup = rig.Pump();
  EXPECT_EQ(setup.snapshots, 2u);  // one epoch-opening snap per shard
  Rng rng(3);
  ShipReport shipped;
  for (int i = 0; i < 30; ++i) {
    rig.db->Store("Image", ImageFields(i),
                  {{"FLD_DATA", RandomBytes(400, rng)}})
        .value();
    rig.clock.AdvanceMicros(6000);
    rig.db->SyncAll();
    ShipReport round = rig.Pump();
    shipped.batches += round.batches;
    shipped.batch_bytes += round.batch_bytes;
  }
  size_t sync_points = 0;
  size_t durable_bytes = 0;
  for (size_t s = 0; s < rig.db->num_shards(); ++s) {
    sync_points += rig.db->shard_wal(s)->sync_count();
    durable_bytes += rig.db->shard_wal(s)->durable().size();
    ReplicationLag lag = rig.repl->LagOf(s);
    EXPECT_EQ(lag.acked_records, lag.durable_records) << "shard " << s;
    EXPECT_EQ(rig.repl->follower_records(s, 0),
              rig.db->shard_wal(s)->durable_records());
    EXPECT_FALSE(rig.repl->follower_diverged(s, 0));
  }
  // Batch structure mirrors the group-commit structure: one batch per
  // sync point, covering every durable byte exactly once.
  EXPECT_EQ(shipped.batches, sync_points);
  EXPECT_EQ(shipped.batch_bytes, durable_bytes);
}

TEST(ReplicationTest, DrainedPromotionIsByteExactWithZeroAckedLoss) {
  Rig rig(2);
  ASSERT_TRUE(rig.db->RegisterStandardTypes().ok());
  rig.Mutate(120, 11);
  size_t acked = rig.db->shard_wal(0)->durable_records();
  Bytes primary_image = rig.db->shard(0)->Serialize();
  // Independent control replica: replay the durable log the way a
  // never-crashed server would.
  DatabaseServer control;
  WalReplayStats replay = ShardedDatabaseServer::ReplayLogInto(
                              rig.db->shard_wal(0)->durable(), &control)
                              .value();
  ASSERT_TRUE(replay.clean_end);
  ASSERT_TRUE(rig.db->HealSchema(&control, nullptr).ok());
  // The primary machine is gone: promote its follower.
  PromotionReport promoted = rig.repl->Promote(0, 0).value();
  EXPECT_FALSE(promoted.diverged);
  EXPECT_EQ(promoted.replayed_records, acked);
  EXPECT_EQ(rig.db->shard(0)->Serialize(), primary_image);
  EXPECT_EQ(rig.db->shard(0)->Serialize(), control.Serialize());
  // The promoted WAL carries the shipped history: it replays, and the
  // facade keeps serving and assigning fresh ids.
  EXPECT_EQ(rig.db->shard_wal(0)->durable_records(), acked);
  EXPECT_GT(rig.db->shard_wal(0)->sync_count(), 0u);
  rig.Mutate(20, 12);
  for (size_t s = 0; s < rig.db->num_shards(); ++s) {
    DatabaseServer fresh;
    ASSERT_TRUE(ShardedDatabaseServer::ReplayLogInto(
                    rig.db->shard_wal(s)->durable(), &fresh)
                    .ok());
  }
}

TEST(ReplicationTest, CheckpointCompactsLogAndResyncsFollowers) {
  ReplicationOptions options;
  options.checkpoint_log_bytes = 8 * 1024;
  Rig rig(1, options);
  ASSERT_TRUE(rig.db->RegisterStandardTypes().ok());
  Rng rng(7);
  ShipReport total;
  for (int i = 0; i < 40; ++i) {
    rig.db->Store("Image", ImageFields(i),
                  {{"FLD_DATA", RandomBytes(900, rng)}})
        .value();
    rig.clock.AdvanceMicros(6000);
    rig.db->SyncAll();
    ShipReport round = rig.Pump();
    total.checkpoints += round.checkpoints;
  }
  EXPECT_GT(total.checkpoints, 1u);
  EXPECT_EQ(rig.repl->epoch(0), total.checkpoints);
  EXPECT_FALSE(rig.repl->checkpoint(0).empty());
  // Compaction really truncated: the live log holds only the records
  // since the last checkpoint.
  EXPECT_LT(rig.db->shard_wal(0)->durable_records(), 40u);
  // A follower resynced from snapshot + tail batches still promotes to
  // the exact primary image.
  Bytes primary_image = rig.db->shard(0)->Serialize();
  size_t acked = rig.db->shard_wal(0)->durable_records();
  PromotionReport promoted = rig.repl->Promote(0, 0).value();
  EXPECT_FALSE(promoted.diverged);
  EXPECT_GT(promoted.snapshot_bytes, 0u);
  EXPECT_EQ(promoted.replayed_records, acked);
  EXPECT_EQ(rig.db->shard(0)->Serialize(), primary_image);
}

TEST(ReplicationTest, AbruptLossBoundsRpoToUnshippedTail) {
  Rig rig(1);
  ASSERT_TRUE(rig.db->RegisterStandardTypes().ok());
  rig.Mutate(40, 19);
  size_t shipped = rig.repl->follower_records(0, 0);
  // Group-commit a burst the shipper never gets to run for.
  Rng rng(20);
  for (int i = 0; i < 5; ++i) {
    rig.db->Store("Image", ImageFields(1000 + i),
                  {{"FLD_DATA", RandomBytes(300, rng)}})
        .value();
  }
  rig.db->SyncAll();
  size_t durable = rig.db->shard_wal(0)->durable_records();
  ASSERT_GT(durable, shipped);
  PromotionReport promoted = rig.repl->Promote(0, 0).value();
  EXPECT_FALSE(promoted.diverged);
  // The follower promotes exactly what was shipped and acknowledged:
  // the recovery point is the unshipped tail, nothing more.
  EXPECT_EQ(promoted.replayed_records, shipped);
  EXPECT_EQ(rig.db->shard_wal(0)->durable_records(), shipped);
}

TEST(ReplicationTest, CorruptBatchMarksFollowerDivergedAndKeepsPrefix) {
  obs::MetricsRegistry metrics;
  Rig rig(1);
  rig.repl->SetObserver(&metrics, nullptr);
  ASSERT_TRUE(rig.db->RegisterStandardTypes().ok());
  rig.Mutate(10, 23);
  size_t verified = rig.repl->follower_records(0, 0);
  ASSERT_GT(verified, 0u);
  // Ship one more batch but corrupt it in flight: flip a byte in the
  // carried log bytes (past the fixed 32-byte header).
  Rng rng(24);
  rig.db->Store("Image", ImageFields(999),
                {{"FLD_DATA", RandomBytes(200, rng)}})
      .value();
  rig.db->SyncAll();
  ASSERT_EQ(rig.repl->Ship().value().batches, 1u);
  std::vector<net::Delivery> deliveries = rig.transport->AdvanceUntilIdle();
  ASSERT_EQ(deliveries.size(), 1u);
  net::Delivery forged = deliveries[0];
  ASSERT_GT(forged.payload.size(), 40u);
  forged.payload[forged.payload.size() - 1] ^= 0x5a;
  EXPECT_TRUE(rig.repl->HandleDelivery(forged));
  EXPECT_TRUE(rig.repl->follower_diverged(0, 0));
  EXPECT_EQ(metrics.GetCounter("storage.repl.divergences")->value(), 1u);
  // The verified prefix survives; promotion reports the divergence and
  // falls back to it instead of trusting the corrupt history.
  EXPECT_EQ(rig.repl->follower_records(0, 0), verified);
  PromotionReport promoted = rig.repl->Promote(0, 0).value();
  EXPECT_TRUE(promoted.diverged);
  EXPECT_EQ(promoted.replayed_records, verified);
  EXPECT_EQ(rig.db->shard_wal(0)->durable_records(), verified);
}

TEST(ReplicationTest, OutOfOrderAndDuplicateBatchesApplyExactlyOnce) {
  obs::MetricsRegistry metrics;
  Rig rig(1);
  rig.repl->SetObserver(&metrics, nullptr);
  ASSERT_TRUE(rig.db->RegisterStandardTypes().ok());
  rig.Pump();  // epoch snap
  // Produce three distinct batches without letting the wire drain.
  Rng rng(29);
  std::vector<net::Delivery> held;
  for (int i = 0; i < 3; ++i) {
    rig.db->Store("Image", ImageFields(i),
                  {{"FLD_DATA", RandomBytes(150, rng)}})
        .value();
    rig.clock.AdvanceMicros(6000);
    rig.db->SyncAll();
    ASSERT_EQ(rig.repl->Ship().value().batches, 1u);
    std::vector<net::Delivery> round = rig.transport->AdvanceUntilIdle();
    held.insert(held.end(), round.begin(), round.end());
  }
  ASSERT_EQ(held.size(), 3u);
  size_t durable = rig.db->shard_wal(0)->durable_records();
  // Deliver reversed (out-of-order arrivals buffer until the gap
  // fills), then re-deliver an already-applied batch (a retry racing
  // its own ack): the duplicate is dropped, not re-applied.
  EXPECT_TRUE(rig.repl->HandleDelivery(held[2]));
  EXPECT_TRUE(rig.repl->HandleDelivery(held[1]));
  EXPECT_TRUE(rig.repl->HandleDelivery(held[0]));
  EXPECT_TRUE(rig.repl->HandleDelivery(held[1]));
  EXPECT_EQ(rig.repl->follower_records(0, 0), durable);
  EXPECT_FALSE(rig.repl->follower_diverged(0, 0));
  EXPECT_GE(metrics.GetCounter("storage.repl.duplicates")->value(), 1u);
  // The reassembled history is the primary's history.
  Bytes primary_image = rig.db->shard(0)->Serialize();
  PromotionReport promoted = rig.repl->Promote(0, 0).value();
  EXPECT_FALSE(promoted.diverged);
  EXPECT_EQ(rig.db->shard(0)->Serialize(), primary_image);
}

TEST(ReplicationTest, RecoverPrimaryReplaysCheckpointPlusCleanPrefix) {
  ReplicationOptions options;
  options.checkpoint_log_bytes = 8 * 1024;
  Rig rig(1, options);
  ASSERT_TRUE(rig.db->RegisterStandardTypes().ok());
  rig.Mutate(60, 31);
  ASSERT_FALSE(rig.repl->checkpoint(0).empty());
  uint64_t epoch_before = rig.repl->epoch(0);
  // Damage the post-checkpoint log; the checkpoint makes the facade's
  // own RecoverShardFromLog insufficient (the log alone no longer
  // rebuilds the shard) — RecoverPrimary replays on top of it.
  WalCrashInjector injector(33);
  WalCrashImage image =
      injector.Crash(*rig.db->shard_wal(0), WalCrashKind::kTornTail);
  DatabaseServer control;
  ASSERT_TRUE(control.LoadFrom(rig.repl->checkpoint(0)).ok());
  ASSERT_TRUE(
      ShardedDatabaseServer::ReplayLogInto(image.log, &control).ok());
  ASSERT_TRUE(rig.db->HealSchema(&control, nullptr).ok());
  WalReplayStats stats = rig.repl->RecoverPrimary(0, image.log).value();
  EXPECT_EQ(stats.records_applied, image.clean_records);
  EXPECT_EQ(rig.db->shard(0)->Serialize(), control.Serialize());
  // Shipped history beyond the surviving prefix is disowned: a new
  // epoch begins and followers resync to the recovered image.
  EXPECT_GT(rig.repl->epoch(0), epoch_before);
  rig.Pump();
  Bytes recovered_image = rig.db->shard(0)->Serialize();
  PromotionReport promoted = rig.repl->Promote(0, 0).value();
  EXPECT_FALSE(promoted.diverged);
  EXPECT_EQ(rig.db->shard(0)->Serialize(), recovered_image);
}

// --- ReadThroughCache -------------------------------------------------

TEST(CacheTest, ReadThroughHitsAfterFirstFetchAndWritesInvalidate) {
  Clock clock;
  ShardedDatabaseServer db(&clock);
  ReadThroughCache cache(&db, 1 << 20);
  ASSERT_TRUE(cache.RegisterStandardTypes().ok());
  Rng rng(41);
  Bytes blob = RandomBytes(5000, rng);
  ObjectRef ref =
      cache.Store("Image", ImageFields(1), {{"FLD_DATA", blob}}).value();
  EXPECT_EQ(cache.FetchBlob(ref, "FLD_DATA").value(), blob);  // miss
  EXPECT_EQ(cache.FetchBlob(ref, "FLD_DATA").value(), blob);  // hit
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
  // Range reads slice from the cached full blob.
  EXPECT_EQ(cache.FetchBlobRange(ref, "FLD_DATA", 100, 50).value(),
            Bytes(blob.begin() + 100, blob.begin() + 150));
  EXPECT_EQ(cache.hits(), 2u);
  // A write-through invalidates: the next fetch misses and sees the new
  // payload, never the stale cached one.
  Bytes updated = RandomBytes(3000, rng);
  ASSERT_TRUE(cache.Modify(ref, {}, {{"FLD_DATA", updated}}).ok());
  EXPECT_EQ(cache.FetchBlob(ref, "FLD_DATA").value(), updated);
  EXPECT_EQ(cache.misses(), 2u);
  // Deleting drops the entry and the miss surfaces the store's error.
  ASSERT_TRUE(cache.Delete(ref).ok());
  EXPECT_TRUE(cache.FetchBlob(ref, "FLD_DATA").status().IsNotFound());
}

TEST(CacheTest, CapacityBoundEvictsLeastRecentlyUsed) {
  Clock clock;
  ShardedDatabaseServer db(&clock);
  ReadThroughCache cache(&db, 10 * 1024);
  ASSERT_TRUE(cache.RegisterStandardTypes().ok());
  Rng rng(43);
  std::vector<ObjectRef> refs;
  for (int i = 0; i < 8; ++i) {
    refs.push_back(cache
                       .Store("Image", ImageFields(i),
                              {{"FLD_DATA", RandomBytes(4096, rng)}})
                       .value());
  }
  for (const ObjectRef& ref : refs) cache.FetchBlob(ref, "FLD_DATA").value();
  EXPECT_GT(cache.evictions(), 0u);
  EXPECT_LE(cache.size_bytes(), 10u * 1024u);
  // The most recent fetch is resident, the oldest evicted.
  size_t hits_before = cache.hits();
  cache.FetchBlob(refs.back(), "FLD_DATA").value();
  EXPECT_EQ(cache.hits(), hits_before + 1);
  size_t misses_before = cache.misses();
  cache.FetchBlob(refs.front(), "FLD_DATA").value();
  EXPECT_EQ(cache.misses(), misses_before + 1);
}

TEST(CacheTest, InvalidateShardDropsOnlyThatShardsEntries) {
  Clock clock;
  ShardedDatabaseServer::Options options;
  options.num_shards = 4;
  ShardedDatabaseServer db(&clock, options);
  ReadThroughCache cache(&db, 4 << 20);
  ASSERT_TRUE(cache.RegisterStandardTypes().ok());
  Rng rng(47);
  std::vector<ObjectRef> refs;
  for (int i = 0; i < 24; ++i) {
    refs.push_back(cache
                       .Store("Image", ImageFields(i),
                              {{"FLD_DATA", RandomBytes(512, rng)}})
                       .value());
    cache.FetchRecord(refs.back()).value();
    cache.FetchBlob(refs.back(), "FLD_DATA").value();
  }
  auto shard_of = [&db](const ObjectRef& ref) { return db.ShardOf(ref); };
  size_t on_zero = 0;
  for (const ObjectRef& ref : refs) {
    if (db.ShardOf(ref) == 0) ++on_zero;
  }
  ASSERT_GT(on_zero, 0u);
  cache.InvalidateShard(0, shard_of);
  // Refetching everything: shard-0 refs miss (record + blob each), the
  // rest hit.
  size_t misses_before = cache.misses();
  size_t hits_before = cache.hits();
  for (const ObjectRef& ref : refs) {
    cache.FetchRecord(ref).value();
    cache.FetchBlob(ref, "FLD_DATA").value();
  }
  EXPECT_EQ(cache.misses() - misses_before, 2 * on_zero);
  EXPECT_EQ(cache.hits() - hits_before, 2 * (refs.size() - on_zero));
  cache.InvalidateAll();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.size_bytes(), 0u);
}

TEST(CacheTest, ZeroCapacityIsPurePassThrough) {
  Clock clock;
  ShardedDatabaseServer db(&clock);
  ReadThroughCache cache(&db, 0);
  ASSERT_TRUE(cache.RegisterStandardTypes().ok());
  Rng rng(53);
  Bytes blob = RandomBytes(256, rng);
  ObjectRef ref =
      cache.Store("Image", ImageFields(1), {{"FLD_DATA", blob}}).value();
  EXPECT_EQ(cache.FetchBlob(ref, "FLD_DATA").value(), blob);
  EXPECT_EQ(cache.FetchBlob(ref, "FLD_DATA").value(), blob);
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.List("Image").value(), db.List("Image").value());
}

}  // namespace
}  // namespace mmconf::storage
