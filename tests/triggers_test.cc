// Broadcasting and dynamic event triggers — the paper's Section 6 future
// work, implemented on the interaction server.

#include <gtest/gtest.h>

#include "doc/builder.h"
#include "server/interaction_server.h"
#include "storage/database.h"

namespace mmconf::server {
namespace {

class TriggersTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_);
    server_node_ = network_->AddNode("server");
    db_node_ = network_->AddNode("db");
    client1_ = network_->AddNode("c1");
    client2_ = network_->AddNode("c2");
    ASSERT_TRUE(
        network_->SetDuplexLink(server_node_, db_node_, {50e6, 500}).ok());
    ASSERT_TRUE(
        network_->SetDuplexLink(server_node_, client1_, {1e6, 1000}).ok());
    ASSERT_TRUE(
        network_->SetDuplexLink(server_node_, client2_, {1e6, 1000}).ok());
    ASSERT_TRUE(db_.RegisterStandardTypes().ok());
    server_ = std::make_unique<InteractionServer>(&db_, network_.get(),
                                                  server_node_, db_node_);
    server_
        ->OpenRoomWithDocument("room",
                               doc::MakeMedicalRecordDocument().value())
        .value();
    server_->Join("room", {"alice", client1_}).value();
    server_->Join("room", {"bob", client2_}).value();
    network_->AdvanceUntilIdle();
  }

  Clock clock_;
  storage::DatabaseServer db_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<InteractionServer> server_;
  net::NodeId server_node_ = 0, db_node_ = 0, client1_ = 0, client2_ = 0;
};

TEST_F(TriggersTest, BroadcastReachesEveryMember) {
  size_t to_1 = network_->BytesSent(server_node_, client1_);
  size_t to_2 = network_->BytesSent(server_node_, client2_);
  MicrosT delivered =
      server_->Broadcast("room", "announcement", 5000).value();
  EXPECT_GT(delivered, 0);
  EXPECT_EQ(network_->BytesSent(server_node_, client1_), to_1 + 5000);
  EXPECT_EQ(network_->BytesSent(server_node_, client2_), to_2 + 5000);
  EXPECT_TRUE(server_->Broadcast("ghost", "x", 1).status().IsNotFound());
}

TEST_F(TriggersTest, TriggerFiresOnMatchingActionOnly) {
  int choice_fires = 0;
  int freeze_fires = 0;
  server_->RegisterTrigger(
      ActionType::kChoice,
      [&](InteractionServer&, Room&, const UserAction& action) {
        ++choice_fires;
        EXPECT_EQ(action.component, "CT");
      });
  server_->RegisterTrigger(
      ActionType::kFreeze,
      [&](InteractionServer&, Room&, const UserAction&) {
        ++freeze_fires;
      });
  server_->SubmitChoice("room", "alice", "CT", "hidden").value();
  EXPECT_EQ(choice_fires, 1);
  EXPECT_EQ(freeze_fires, 0);
}

TEST_F(TriggersTest, TriggerCanBroadcast) {
  // The "new finding" pattern: whenever someone segments an image, the
  // server broadcasts a notification to the whole room.
  server_->RegisterTrigger(
      ActionType::kSegmentOp,
      [](InteractionServer& server, Room& room, const UserAction&) {
        server.Broadcast(room.id(), "segmentation-alert", 256).value();
      });
  size_t before = server_->bytes_propagated();
  UserAction op;
  op.type = ActionType::kSegmentOp;
  op.viewer = "alice";
  op.component = "CT";
  server_->ApplyOperation("room", op, true).value();
  // 2 members x 256 broadcast bytes on top of any delta propagation.
  EXPECT_GE(server_->bytes_propagated(), before + 512);
}

TEST_F(TriggersTest, RemoveTriggerStopsFiring) {
  int fires = 0;
  int id = server_->RegisterTrigger(
      ActionType::kChoice,
      [&](InteractionServer&, Room&, const UserAction&) { ++fires; });
  server_->SubmitChoice("room", "alice", "CT", "hidden").value();
  EXPECT_EQ(fires, 1);
  ASSERT_TRUE(server_->RemoveTrigger(id).ok());
  EXPECT_TRUE(server_->RemoveTrigger(id).IsNotFound());
  server_->SubmitChoice("room", "alice", "CT", "flat").value();
  EXPECT_EQ(fires, 1);
}

TEST_F(TriggersTest, SelfRemovingTriggerIsSafe) {
  int fires = 0;
  int id = 0;
  id = server_->RegisterTrigger(
      ActionType::kChoice,
      [&](InteractionServer& server, Room&, const UserAction&) {
        ++fires;
        server.RemoveTrigger(id).ok();  // one-shot trigger
      });
  server_->SubmitChoice("room", "alice", "CT", "hidden").value();
  server_->SubmitChoice("room", "alice", "CT", "flat").value();
  EXPECT_EQ(fires, 1);
}

TEST_F(TriggersTest, MultipleTriggersFireInRegistrationOrder) {
  std::vector<int> order;
  server_->RegisterTrigger(
      ActionType::kChoice,
      [&](InteractionServer&, Room&, const UserAction&) {
        order.push_back(1);
      });
  server_->RegisterTrigger(
      ActionType::kChoice,
      [&](InteractionServer&, Room&, const UserAction&) {
        order.push_back(2);
      });
  server_->SubmitChoice("room", "alice", "CT", "hidden").value();
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 1);
  EXPECT_EQ(order[1], 2);
}

}  // namespace
}  // namespace mmconf::server
