#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/clock.h"
#include "net/network.h"
#include "net/reliable.h"

namespace mmconf::net {
namespace {

RetryPolicy FastPolicy() {
  RetryPolicy policy;
  policy.initial_timeout_micros = 100000;
  policy.backoff_factor = 2.0;
  policy.max_timeout_micros = 800000;
  policy.max_attempts = 4;
  return policy;
}

class ReliableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(&clock_);
    a_ = network_->AddNode("a");
    b_ = network_->AddNode("b");
    ASSERT_TRUE(network_->SetDuplexLink(a_, b_, {1e6, 5000}).ok());
    transport_ =
        std::make_unique<ReliableTransport>(network_.get(), FastPolicy());
  }

  Clock clock_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<ReliableTransport> transport_;
  NodeId a_ = 0, b_ = 0;
};

TEST_F(ReliableTest, CleanLinkDeliversOnceWithoutRetries) {
  SendHandle handle =
      transport_->Send(a_, b_, 1000, "hello", {1, 2, 3}).value();
  EXPECT_GT(handle.first_attempt_eta, 0);
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].tag, "hello");
  EXPECT_EQ(got[0].payload, Bytes({1, 2, 3}));
  EXPECT_EQ(transport_->StateOf(handle.id).value(), SendState::kAcked);
  EXPECT_GT(transport_->AckedAt(handle.id).value(), handle.first_attempt_eta);
  ChannelStats stats = transport_->StatsFor(a_, b_);
  EXPECT_EQ(stats.sent, 1u);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.acked, 1u);
  EXPECT_EQ(transport_->in_flight(), 0u);
}

TEST_F(ReliableTest, DroppedMessageIsRetriedUntilDelivered) {
  // Lose exactly the first copy: a flap covering the first attempt only.
  FaultSpec fault;
  fault.flaps.push_back({0, 1});
  ASSERT_TRUE(network_->SetFault(a_, b_, fault).ok());
  SendHandle handle = transport_->Send(a_, b_, 1000, "retry-me").value();
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].tag, "retry-me");
  EXPECT_EQ(transport_->StateOf(handle.id).value(), SendState::kAcked);
  EXPECT_EQ(transport_->AttemptsOf(handle.id).value(), 2);
  EXPECT_EQ(transport_->StatsFor(a_, b_).retries, 1u);
}

TEST_F(ReliableTest, RetryBudgetExhaustionFailsAndFiresCallback) {
  FaultSpec black_hole;
  black_hole.drop_probability = 1.0;
  ASSERT_TRUE(network_->SetFault(a_, b_, black_hole).ok());
  std::vector<FailedMessage> failures;
  transport_->SetFailureCallback(
      [&](const FailedMessage& failure) { failures.push_back(failure); });
  SendHandle handle = transport_->Send(a_, b_, 1000, "doomed").value();
  EXPECT_TRUE(transport_->AdvanceUntilIdle().empty());
  EXPECT_EQ(transport_->StateOf(handle.id).value(), SendState::kFailed);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].id, handle.id);
  EXPECT_EQ(failures[0].to, b_);
  EXPECT_EQ(failures[0].attempts, 4);
  ChannelStats stats = transport_->StatsFor(a_, b_);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.attempts, 4u);
  // Exponential backoff: 100ms + 200ms + 400ms + 800ms of waiting.
  EXPECT_GE(clock_.NowMicros(), 100000 + 200000 + 400000 + 800000);
}

TEST_F(ReliableTest, SendSucceedsOnDownLinkAndRecoversWhenItReturns) {
  // No link at send time: the transport accepts and keeps trying.
  ASSERT_TRUE(network_->RemoveLink(a_, b_).ok());
  SendHandle handle = transport_->Send(a_, b_, 1000, "patient").value();
  EXPECT_EQ(handle.first_attempt_eta, 0);
  // The link comes back before the budget runs out.
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 5000}).ok());
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].tag, "patient");
  EXPECT_EQ(transport_->StateOf(handle.id).value(), SendState::kAcked);
}

TEST_F(ReliableTest, MissingReverseLinkExhaustsBudget) {
  ASSERT_TRUE(network_->RemoveLink(b_, a_).ok());
  SendHandle handle = transport_->Send(a_, b_, 1000, "no-acks").value();
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  // The receiver saw the message (once; retransmits are deduped) but
  // could never ack it, so the sender declares failure.
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(transport_->StateOf(handle.id).value(), SendState::kFailed);
  EXPECT_EQ(transport_->StatsFor(a_, b_).duplicates_suppressed, 3u);
}

TEST_F(ReliableTest, WireDuplicatesAreSuppressed) {
  FaultSpec fault;
  fault.duplicate_probability = 1.0;
  ASSERT_TRUE(network_->SetFault(a_, b_, fault).ok());
  SendHandle handle = transport_->Send(a_, b_, 1000, "once").value();
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].tag, "once");
  EXPECT_EQ(transport_->StateOf(handle.id).value(), SendState::kAcked);
  EXPECT_GE(transport_->StatsFor(a_, b_).duplicates_suppressed, 1u);
}

TEST_F(ReliableTest, NonReliableTrafficPassesThrough) {
  network_->Send(a_, b_, 500, "legacy-tag").value();
  transport_->Send(a_, b_, 500, "reliable-tag").value();
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].tag, "legacy-tag");
  EXPECT_EQ(got[1].tag, "reliable-tag");
}

TEST_F(ReliableTest, InvalidSendsRejected) {
  EXPECT_TRUE(transport_->Send(a_, 99, 10, "x").status().IsOutOfRange());
  EXPECT_TRUE(transport_->Send(a_, b_, 2, "x", {1, 2, 3})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(transport_->StateOf(42).status().IsNotFound());
}

TEST_F(ReliableTest, LossySequenceIsDeliveredExactlyOnceInOrderEnough) {
  FaultSpec fault;
  fault.drop_probability = 0.3;
  fault.duplicate_probability = 0.2;
  fault.jitter_micros = 3000;
  ASSERT_TRUE(network_->SetDuplexFault(a_, b_, fault).ok());
  constexpr int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    transport_->Send(a_, b_, 200, "m" + std::to_string(i)).value();
  }
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ChannelStats stats = transport_->StatsFor(a_, b_);
  // Every message resolves, each at most once at the app layer; with
  // this loss rate most survive via retries (a rare message may burn its
  // whole budget, which counts as failed, never as a duplicate).
  EXPECT_EQ(stats.acked + stats.failed, static_cast<size_t>(kMessages));
  EXPECT_LE(got.size(), static_cast<size_t>(kMessages));
  EXPECT_GE(got.size(), stats.acked);
  EXPECT_GT(stats.acked, static_cast<size_t>(kMessages) / 2);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(transport_->in_flight(), 0u);
}

TEST(ReliableDeterminismTest, SameSeedReproducesIdenticalCounters) {
  auto run = [] {
    Clock clock;
    Network network(&clock, /*fault_seed=*/1234);
    NodeId a = network.AddNode("a");
    NodeId b = network.AddNode("b");
    network.SetDuplexLink(a, b, {1e6, 5000}).ok();
    FaultSpec fault;
    fault.drop_probability = 0.25;
    fault.duplicate_probability = 0.1;
    fault.jitter_micros = 2000;
    network.SetDuplexFault(a, b, fault).ok();
    ReliableTransport transport(&network, FastPolicy());
    for (int i = 0; i < 40; ++i) {
      transport.Send(a, b, 300, "m" + std::to_string(i)).value();
    }
    size_t delivered = transport.AdvanceUntilIdle().size();
    return std::tuple(delivered, transport.StatsFor(a, b).retries,
                      transport.StatsFor(a, b).duplicates_suppressed,
                      network.GetFaultStats(a, b).dropped,
                      clock.NowMicros());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mmconf::net
