#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/clock.h"
#include "net/network.h"
#include "net/reliable.h"

namespace mmconf::net {
namespace {

RetryPolicy FastPolicy() {
  RetryPolicy policy;
  policy.initial_timeout_micros = 100000;
  policy.backoff_factor = 2.0;
  policy.max_timeout_micros = 800000;
  policy.max_attempts = 4;
  return policy;
}

class ReliableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(&clock_);
    a_ = network_->AddNode("a");
    b_ = network_->AddNode("b");
    ASSERT_TRUE(network_->SetDuplexLink(a_, b_, {1e6, 5000}).ok());
    transport_ =
        std::make_unique<ReliableTransport>(network_.get(), FastPolicy());
  }

  Clock clock_;
  std::unique_ptr<Network> network_;
  std::unique_ptr<ReliableTransport> transport_;
  NodeId a_ = 0, b_ = 0;
};

TEST_F(ReliableTest, CleanLinkDeliversOnceWithoutRetries) {
  SendHandle handle =
      transport_->Send(a_, b_, 1000, "hello", {1, 2, 3}).value();
  EXPECT_GT(handle.first_attempt_eta, 0);
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].tag, "hello");
  EXPECT_EQ(got[0].payload, Bytes({1, 2, 3}));
  EXPECT_EQ(transport_->StateOf(handle.id).value(), SendState::kAcked);
  EXPECT_GT(transport_->AckedAt(handle.id).value(), handle.first_attempt_eta);
  ChannelStats stats = transport_->StatsFor(a_, b_);
  EXPECT_EQ(stats.sent, 1u);
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_EQ(stats.acked, 1u);
  EXPECT_EQ(transport_->in_flight(), 0u);
}

TEST_F(ReliableTest, DroppedMessageIsRetriedUntilDelivered) {
  // Lose exactly the first copy: a flap covering the first attempt only.
  FaultSpec fault;
  fault.flaps.push_back({0, 1});
  ASSERT_TRUE(network_->SetFault(a_, b_, fault).ok());
  SendHandle handle = transport_->Send(a_, b_, 1000, "retry-me").value();
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].tag, "retry-me");
  EXPECT_EQ(transport_->StateOf(handle.id).value(), SendState::kAcked);
  EXPECT_EQ(transport_->AttemptsOf(handle.id).value(), 2);
  EXPECT_EQ(transport_->StatsFor(a_, b_).retries, 1u);
}

TEST_F(ReliableTest, RetryBudgetExhaustionFailsAndFiresCallback) {
  FaultSpec black_hole;
  black_hole.drop_probability = 1.0;
  ASSERT_TRUE(network_->SetFault(a_, b_, black_hole).ok());
  std::vector<FailedMessage> failures;
  transport_->SetFailureCallback(
      [&](const FailedMessage& failure) { failures.push_back(failure); });
  SendHandle handle = transport_->Send(a_, b_, 1000, "doomed").value();
  EXPECT_TRUE(transport_->AdvanceUntilIdle().empty());
  EXPECT_EQ(transport_->StateOf(handle.id).value(), SendState::kFailed);
  ASSERT_EQ(failures.size(), 1u);
  EXPECT_EQ(failures[0].id, handle.id);
  EXPECT_EQ(failures[0].to, b_);
  EXPECT_EQ(failures[0].attempts, 4);
  ChannelStats stats = transport_->StatsFor(a_, b_);
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.attempts, 4u);
  // Exponential backoff: 100ms + 200ms + 400ms + 800ms of waiting.
  EXPECT_GE(clock_.NowMicros(), 100000 + 200000 + 400000 + 800000);
}

TEST_F(ReliableTest, SendSucceedsOnDownLinkAndRecoversWhenItReturns) {
  // No link at send time: the transport accepts and keeps trying. The
  // handle's ETA is the explicit sentinel, not a real timestamp a caller
  // could mistake for "delivered at t=0".
  ASSERT_TRUE(network_->RemoveLink(a_, b_).ok());
  SendHandle handle = transport_->Send(a_, b_, 1000, "patient").value();
  EXPECT_EQ(handle.first_attempt_eta, kEtaLinkDown);
  EXPECT_LT(handle.first_attempt_eta, 0);
  // The link comes back before the budget runs out.
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 5000}).ok());
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].tag, "patient");
  EXPECT_EQ(transport_->StateOf(handle.id).value(), SendState::kAcked);
}

TEST_F(ReliableTest, MissingReverseLinkExhaustsBudget) {
  ASSERT_TRUE(network_->RemoveLink(b_, a_).ok());
  SendHandle handle = transport_->Send(a_, b_, 1000, "no-acks").value();
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  // The receiver saw the message (once; retransmits are deduped) but
  // could never ack it, so the sender declares failure.
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(transport_->StateOf(handle.id).value(), SendState::kFailed);
  EXPECT_EQ(transport_->StatsFor(a_, b_).duplicates_suppressed, 3u);
}

TEST_F(ReliableTest, WireDuplicatesAreSuppressed) {
  FaultSpec fault;
  fault.duplicate_probability = 1.0;
  ASSERT_TRUE(network_->SetFault(a_, b_, fault).ok());
  SendHandle handle = transport_->Send(a_, b_, 1000, "once").value();
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].tag, "once");
  EXPECT_EQ(transport_->StateOf(handle.id).value(), SendState::kAcked);
  EXPECT_GE(transport_->StatsFor(a_, b_).duplicates_suppressed, 1u);
}

TEST_F(ReliableTest, NonReliableTrafficPassesThrough) {
  network_->Send(a_, b_, 500, "legacy-tag").value();
  transport_->Send(a_, b_, 500, "reliable-tag").value();
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].tag, "legacy-tag");
  EXPECT_EQ(got[1].tag, "reliable-tag");
}

TEST_F(ReliableTest, InvalidSendsRejected) {
  EXPECT_TRUE(transport_->Send(a_, 99, 10, "x").status().IsOutOfRange());
  EXPECT_TRUE(transport_->Send(a_, b_, 2, "x", {1, 2, 3})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(transport_->StateOf(42).status().IsNotFound());
}

TEST_F(ReliableTest, LossySequenceIsDeliveredExactlyOnceInOrderEnough) {
  FaultSpec fault;
  fault.drop_probability = 0.3;
  fault.duplicate_probability = 0.2;
  fault.jitter_micros = 3000;
  ASSERT_TRUE(network_->SetDuplexFault(a_, b_, fault).ok());
  constexpr int kMessages = 50;
  for (int i = 0; i < kMessages; ++i) {
    transport_->Send(a_, b_, 200, "m" + std::to_string(i)).value();
  }
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ChannelStats stats = transport_->StatsFor(a_, b_);
  // Every message resolves, each at most once at the app layer; with
  // this loss rate most survive via retries (a rare message may burn its
  // whole budget, which counts as failed, never as a duplicate).
  EXPECT_EQ(stats.acked + stats.failed, static_cast<size_t>(kMessages));
  EXPECT_LE(got.size(), static_cast<size_t>(kMessages));
  EXPECT_GE(got.size(), stats.acked);
  EXPECT_GT(stats.acked, static_cast<size_t>(kMessages) / 2);
  EXPECT_GT(stats.retries, 0u);
  EXPECT_EQ(transport_->in_flight(), 0u);
}

TEST_F(ReliableTest, OverlongSeqTagIsRejectedNotWrapped) {
  // 2^64 + 2 as decimal digits: pre-fix ParseSeq silently wrapped this
  // to seq 2, poisoning the dedup set so the *real* seq 2 was falsely
  // suppressed. It must be rejected instead.
  transport_->Send(a_, b_, 100, "m1").value();
  transport_->AdvanceUntilIdle();
  network_->Send(a_, b_, 100, "rel:18446744073709551618:evil").value();
  std::vector<Delivery> attack = transport_->AdvanceUntilIdle();
  EXPECT_TRUE(attack.empty());  // malformed reliable frame is dropped
  transport_->Send(a_, b_, 100, "m2").value();
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].tag, "m2");
}

TEST_F(ReliableTest, MaxUint64SeqStillParses) {
  // Exactly UINT64_MAX is a legal (if absurd) seq: the overflow check
  // must not reject the boundary value itself.
  network_->Send(a_, b_, 100, "rel:18446744073709551615:max").value();
  std::vector<Delivery> got = transport_->AdvanceUntilIdle();
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].tag, "max");
}

TEST_F(ReliableTest, ForgetDropsCompletedRecord) {
  SendHandle handle = transport_->Send(a_, b_, 100, "done").value();
  transport_->AdvanceUntilIdle();
  ASSERT_EQ(transport_->StateOf(handle.id).value(), SendState::kAcked);
  transport_->Forget(handle.id);
  EXPECT_TRUE(transport_->StateOf(handle.id).status().IsNotFound());
  EXPECT_TRUE(transport_->AckedAt(handle.id).status().IsFailedPrecondition());
  EXPECT_EQ(transport_->Footprint().completed, 0u);
}

TEST_F(ReliableTest, CompletedRetentionEvictsOldestRecords) {
  RetryPolicy policy = FastPolicy();
  policy.completed_retention = 4;
  ReliableTransport bounded(network_.get(), policy);
  std::vector<MsgId> ids;
  for (int i = 0; i < 10; ++i) {
    ids.push_back(bounded.Send(a_, b_, 100, "m" + std::to_string(i))->id);
    bounded.AdvanceUntilIdle();
  }
  EXPECT_EQ(bounded.Footprint().completed, 4u);
  EXPECT_TRUE(bounded.StateOf(ids[0]).status().IsNotFound());
  EXPECT_TRUE(bounded.StateOf(ids[5]).status().IsNotFound());
  EXPECT_EQ(bounded.StateOf(ids[9]).value(), SendState::kAcked);
}

TEST_F(ReliableTest, StateStaysBoundedOverHundredThousandMessages) {
  // The week-long-federated-run regression: per-channel dedup state must
  // compact to a watermark and completed records must stay within the
  // retention window, no matter how many messages the channel carried.
  RetryPolicy policy = FastPolicy();
  policy.completed_retention = 512;
  ReliableTransport bounded(network_.get(), policy);
  constexpr size_t kTotal = 100000;
  constexpr size_t kBatch = 1000;
  for (size_t batch = 0; batch < kTotal / kBatch; ++batch) {
    for (size_t i = 0; i < kBatch; ++i) {
      bounded.Send(a_, b_, 32, "t").value();
    }
    bounded.AdvanceUntilIdle();
  }
  EXPECT_EQ(bounded.TotalStats().acked, kTotal);
  ReliableTransport::StateFootprint fp = bounded.Footprint();
  EXPECT_EQ(fp.inflight, 0u);
  EXPECT_EQ(fp.unacked_seqs, 0u);
  EXPECT_LE(fp.completed, 512u);
  // In-order channel: the dedup set is exactly one watermark, no tail.
  EXPECT_EQ(fp.dedup_tail, 0u);
}

TEST_F(ReliableTest, DedupTailStaysSparseUnderLossAndReordering) {
  FaultSpec fault;
  fault.drop_probability = 0.25;
  fault.duplicate_probability = 0.1;
  fault.jitter_micros = 4000;
  ASSERT_TRUE(network_->SetDuplexFault(a_, b_, fault).ok());
  RetryPolicy policy = FastPolicy();
  policy.max_attempts = 10;
  ReliableTransport lossy(network_.get(), policy);
  constexpr size_t kTotal = 2000;
  for (size_t i = 0; i < kTotal; ++i) {
    lossy.Send(a_, b_, 64, "l").value();
    if (i % 50 == 49) lossy.AdvanceUntilIdle();
  }
  lossy.AdvanceUntilIdle();
  ChannelStats stats = lossy.StatsFor(a_, b_);
  EXPECT_EQ(stats.acked + stats.failed, kTotal);
  ReliableTransport::StateFootprint fp = lossy.Footprint();
  EXPECT_EQ(fp.inflight, 0u);
  // Failed messages leave permanent gaps; the tail may hold the seqs
  // above them but stays far below one-entry-per-message.
  EXPECT_LT(fp.dedup_tail, kTotal / 4);
}

TEST(ReliableDeterminismTest, SameSeedReproducesIdenticalCounters) {
  auto run = [] {
    Clock clock;
    Network network(&clock, /*fault_seed=*/1234);
    NodeId a = network.AddNode("a");
    NodeId b = network.AddNode("b");
    network.SetDuplexLink(a, b, {1e6, 5000}).ok();
    FaultSpec fault;
    fault.drop_probability = 0.25;
    fault.duplicate_probability = 0.1;
    fault.jitter_micros = 2000;
    network.SetDuplexFault(a, b, fault).ok();
    ReliableTransport transport(&network, FastPolicy());
    for (int i = 0; i < 40; ++i) {
      transport.Send(a, b, 300, "m" + std::to_string(i)).value();
    }
    size_t delivered = transport.AdvanceUntilIdle().size();
    return std::tuple(delivered, transport.StatsFor(a, b).retries,
                      transport.StatsFor(a, b).duplicates_suppressed,
                      network.GetFaultStats(a, b).dropped,
                      clock.NowMicros());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace mmconf::net
