#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "compress/best_basis.h"
#include "compress/bitstream.h"
#include "compress/layered_codec.h"
#include "compress/local_cosine.h"
#include "compress/plane.h"
#include "compress/quantizer.h"
#include "compress/wavelet.h"
#include "compress/wavelet_packet.h"
#include "media/synthetic.h"
#include "obs/metrics.h"

namespace mmconf::compress {
namespace {

TEST(BitstreamTest, BitsRoundTrip) {
  BitWriter w;
  w.PutBit(true);
  w.PutBits(0b1011, 4);
  w.PutBits(0xdead, 16);
  Bytes data = w.Finish();
  BitReader r(data);
  EXPECT_TRUE(r.GetBit().value());
  EXPECT_EQ(r.GetBits(4).value(), 0b1011u);
  EXPECT_EQ(r.GetBits(16).value(), 0xdeadu);
}

TEST(BitstreamTest, ExpGolombRoundTrip) {
  BitWriter w;
  for (uint32_t v : {0u, 1u, 2u, 7u, 8u, 100u, 65535u, 1000000u}) {
    w.PutUExpGolomb(v);
  }
  for (int32_t v : {0, 1, -1, 5, -5, 1000, -100000}) {
    w.PutSExpGolomb(v);
  }
  Bytes data = w.Finish();
  BitReader r(data);
  for (uint32_t v : {0u, 1u, 2u, 7u, 8u, 100u, 65535u, 1000000u}) {
    EXPECT_EQ(r.GetUExpGolomb().value(), v);
  }
  for (int32_t v : {0, 1, -1, 5, -5, 1000, -100000}) {
    EXPECT_EQ(r.GetSExpGolomb().value(), v);
  }
}

TEST(BitstreamTest, ReaderDetectsExhaustion) {
  Bytes empty;
  BitReader r(empty);
  EXPECT_TRUE(r.GetBit().status().IsCorruption());
}

TEST(BitstreamTest, CoefficientsRoundTrip) {
  Rng rng(1);
  std::vector<int32_t> coefficients(5000, 0);
  for (size_t i = 0; i < coefficients.size(); ++i) {
    if (rng.Chance(0.1)) {
      coefficients[i] = static_cast<int32_t>(rng.UniformInt(-500, 500));
      if (coefficients[i] == 0) coefficients[i] = 1;
    }
  }
  Bytes encoded = EncodeCoefficients(coefficients);
  EXPECT_EQ(DecodeCoefficients(encoded).value(), coefficients);
  // Sparse data compresses well below 4 bytes/coefficient.
  EXPECT_LT(encoded.size(), coefficients.size());
}

TEST(BitstreamTest, EmptyAndAllZeroCoefficients) {
  EXPECT_TRUE(DecodeCoefficients(EncodeCoefficients({})).value().empty());
  std::vector<int32_t> zeros(100, 0);
  EXPECT_EQ(DecodeCoefficients(EncodeCoefficients(zeros)).value(), zeros);
}

class WaveletPrTest
    : public ::testing::TestWithParam<std::tuple<WaveletBasis, int>> {};

TEST_P(WaveletPrTest, PerfectReconstruction1D) {
  auto [basis, size] = GetParam();
  Rng rng(42);
  std::vector<double> signal(static_cast<size_t>(size));
  for (double& s : signal) s = rng.Uniform(-100, 100);
  std::vector<double> original = signal;
  ASSERT_TRUE(DwtStep(signal, basis).ok());
  ASSERT_TRUE(IdwtStep(signal, basis).ok());
  for (size_t i = 0; i < signal.size(); ++i) {
    EXPECT_NEAR(signal[i], original[i], 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    BasesAndSizes, WaveletPrTest,
    ::testing::Combine(::testing::Values(WaveletBasis::kHaar,
                                         WaveletBasis::kDaub4),
                       ::testing::Values(4, 8, 16, 64, 256)));

TEST(WaveletTest, RejectsOddLength) {
  std::vector<double> signal(5, 1.0);
  EXPECT_TRUE(DwtStep(signal, WaveletBasis::kHaar).IsInvalidArgument());
}

TEST(WaveletTest, PerfectReconstruction2DMultiLevel) {
  Rng rng(7);
  for (WaveletBasis basis : {WaveletBasis::kHaar, WaveletBasis::kDaub4}) {
    Plane plane(32, 16);
    for (double& v : plane.data) v = rng.Uniform(0, 255);
    Plane original = plane;
    int levels = MaxDwtLevels(32, 16);
    EXPECT_EQ(levels, 4);
    ASSERT_TRUE(Dwt2D(plane, levels, basis).ok());
    ASSERT_TRUE(Idwt2D(plane, levels, basis).ok());
    for (size_t i = 0; i < plane.data.size(); ++i) {
      EXPECT_NEAR(plane.data[i], original.data[i], 1e-8);
    }
  }
}

TEST(WaveletTest, EnergyPreserved) {
  // Orthonormal transform: sum of squares is invariant.
  Rng rng(8);
  Plane plane(16, 16);
  for (double& v : plane.data) v = rng.Uniform(-10, 10);
  double energy_before = 0;
  for (double v : plane.data) energy_before += v * v;
  ASSERT_TRUE(Dwt2D(plane, 2, WaveletBasis::kDaub4).ok());
  double energy_after = 0;
  for (double v : plane.data) energy_after += v * v;
  EXPECT_NEAR(energy_before, energy_after, 1e-6 * energy_before);
}

TEST(WaveletTest, RoundTripPropertyAcrossBasesAndLevels) {
  // Property sweep: every basis x every feasible level count x two plane
  // shapes must reconstruct the original within tolerance.
  Rng rng(2026);
  const int shapes[][2] = {{64, 32}, {16, 16}};
  for (const auto& shape : shapes) {
    const int w = shape[0], h = shape[1];
    for (WaveletBasis basis : {WaveletBasis::kHaar, WaveletBasis::kDaub4}) {
      for (int levels = 0; levels <= MaxDwtLevels(w, h); ++levels) {
        Plane plane(w, h);
        for (double& v : plane.data) v = rng.Uniform(-255, 255);
        Plane original = plane;
        ASSERT_TRUE(Dwt2D(plane, levels, basis).ok());
        ASSERT_TRUE(Idwt2D(plane, levels, basis).ok());
        for (size_t i = 0; i < plane.data.size(); ++i) {
          ASSERT_NEAR(plane.data[i], original.data[i], 1e-8)
              << "basis " << static_cast<int>(basis) << " levels " << levels
              << " shape " << w << "x" << h << " i " << i;
        }
      }
    }
  }
}

TEST(WaveletTest, FlatKernelsMatchRuntimeFilterReference) {
  // The production kernels use static tap tables and split
  // interior/boundary loops; this pins them bit-for-bit against the
  // textbook formulation — filters recomputed from their defining
  // sqrt expressions, circular `% n` indexing, incremental accumulation.
  const double s = 1.0 / std::sqrt(2.0);
  const double s3 = std::sqrt(3.0);
  const double norm = 4.0 * std::sqrt(2.0);
  const std::vector<double> daub_low = {(1 + s3) / norm, (3 + s3) / norm,
                                        (3 - s3) / norm, (1 - s3) / norm};
  std::vector<double> daub_high(4);
  for (size_t k = 0; k < 4; ++k) {
    daub_high[k] = (k % 2 == 0 ? 1.0 : -1.0) * daub_low[3 - k];
  }
  const std::vector<double> haar_low = {s, s};
  const std::vector<double> haar_high = {s, -s};
  Rng rng(17);
  for (WaveletBasis basis : {WaveletBasis::kHaar, WaveletBasis::kDaub4}) {
    const std::vector<double>& low =
        basis == WaveletBasis::kHaar ? haar_low : daub_low;
    const std::vector<double>& high =
        basis == WaveletBasis::kHaar ? haar_high : daub_high;
    for (size_t n : {2u, 4u, 6u, 64u, 130u}) {
      std::vector<double> signal(n);
      for (double& v : signal) v = rng.Uniform(-100, 100);
      const size_t half = n / 2;
      std::vector<double> expected(n);
      for (size_t k = 0; k < half; ++k) {
        double a = 0, d = 0;
        for (size_t m = 0; m < low.size(); ++m) {
          double x = signal[(2 * k + m) % n];
          a += low[m] * x;
          d += high[m] * x;
        }
        expected[k] = a;
        expected[half + k] = d;
      }
      std::vector<double> forward = signal;
      ASSERT_TRUE(DwtStep(forward, basis).ok());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(forward[i], expected[i]) << "fwd n=" << n << " i=" << i;
      }
      std::vector<double> inverse_expected(n, 0.0);
      for (size_t k = 0; k < half; ++k) {
        for (size_t m = 0; m < low.size(); ++m) {
          size_t idx = (2 * k + m) % n;
          inverse_expected[idx] +=
              low[m] * forward[k] + high[m] * forward[half + k];
        }
      }
      std::vector<double> inverse = forward;
      ASSERT_TRUE(IdwtStep(inverse, basis).ok());
      for (size_t i = 0; i < n; ++i) {
        ASSERT_EQ(inverse[i], inverse_expected[i])
            << "inv n=" << n << " i=" << i;
      }
    }
  }
}

TEST(WaveletTest, RegionKernelMatchesPerColumnReference) {
  // The vectorized column pass of Transform2DRegion must equal per-column
  // 1D transforms exactly, and everything outside the region must stay
  // untouched byte for byte.
  Rng rng(23);
  for (WaveletBasis basis : {WaveletBasis::kHaar, WaveletBasis::kDaub4}) {
    for (bool forward : {true, false}) {
      Plane plane(32, 24);
      for (double& v : plane.data) v = rng.Uniform(-50, 50);
      const int x0 = 8, y0 = 4, w = 16, h = 8;
      Plane reference = plane;
      // Reference: rows then gathered columns through the 1D steps.
      std::vector<double> line(static_cast<size_t>(w));
      for (int y = 0; y < h; ++y) {
        for (int x = 0; x < w; ++x) line[x] = reference.at(x0 + x, y0 + y);
        ASSERT_TRUE((forward ? DwtStep(line, basis)
                             : IdwtStep(line, basis))
                        .ok());
        for (int x = 0; x < w; ++x) reference.at(x0 + x, y0 + y) = line[x];
      }
      line.resize(static_cast<size_t>(h));
      for (int x = 0; x < w; ++x) {
        for (int y = 0; y < h; ++y) line[y] = reference.at(x0 + x, y0 + y);
        ASSERT_TRUE((forward ? DwtStep(line, basis)
                             : IdwtStep(line, basis))
                        .ok());
        for (int y = 0; y < h; ++y) reference.at(x0 + x, y0 + y) = line[y];
      }
      Plane actual = plane;
      ASSERT_TRUE(
          Transform2DRegion(actual, x0, y0, w, h, basis, forward).ok());
      for (int y = 0; y < plane.height; ++y) {
        for (int x = 0; x < plane.width; ++x) {
          ASSERT_EQ(actual.at(x, y), reference.at(x, y))
              << "basis " << static_cast<int>(basis) << " fwd " << forward
              << " at " << x << "," << y;
        }
      }
    }
  }
}

TEST(WaveletTest, RegionKernelValidatesArguments) {
  Plane plane(16, 16);
  EXPECT_TRUE(Transform2DRegion(plane, 0, 0, 15, 16, WaveletBasis::kHaar,
                                true)
                  .IsInvalidArgument());
  EXPECT_TRUE(Transform2DRegion(plane, 0, 0, 16, 0, WaveletBasis::kHaar,
                                true)
                  .IsInvalidArgument());
  EXPECT_TRUE(Transform2DRegion(plane, 8, 0, 16, 16, WaveletBasis::kHaar,
                                true)
                  .IsInvalidArgument());
  EXPECT_TRUE(Transform2DRegion(plane, -2, 0, 4, 4, WaveletBasis::kHaar,
                                true)
                  .IsInvalidArgument());
}

TEST(WaveletTest, KernelCountersAndScratchSteadyState) {
  obs::MetricsRegistry metrics;
  SetKernelObserver(&metrics);
  Rng rng(31);
  Plane plane(32, 32);
  for (double& v : plane.data) v = rng.Uniform(0, 255);
  Plane warm = plane;
  ASSERT_TRUE(Dwt2D(warm, 3, WaveletBasis::kDaub4).ok());
  obs::MetricsSnapshot snap = metrics.Snapshot();
  EXPECT_GT(snap.counters.at("compress.kernel.line_steps"), 0u);
  EXPECT_GT(snap.counters.at("compress.kernel.region_passes"), 0u);
  EXPECT_GT(snap.gauges.at("compress.kernel.scratch_bytes"), 0);
  // Steady state: a second identical transform must not grow the
  // per-thread scratch arena (the kernels are allocation-free once warm).
  const size_t warm_capacity = ThreadKernelScratch().capacity_bytes();
  Plane again = plane;
  ASSERT_TRUE(Dwt2D(again, 3, WaveletBasis::kDaub4).ok());
  EXPECT_EQ(ThreadKernelScratch().capacity_bytes(), warm_capacity);
  for (size_t i = 0; i < warm.data.size(); ++i) {
    ASSERT_EQ(again.data[i], warm.data[i]);
  }
  SetKernelObserver(nullptr);
}

TEST(WaveletTest, LevelsValidated) {
  Plane plane(16, 16);
  EXPECT_TRUE(Dwt2D(plane, 5, WaveletBasis::kHaar).IsInvalidArgument());
  EXPECT_TRUE(Dwt2D(plane, -1, WaveletBasis::kHaar).IsInvalidArgument());
}

TEST(WaveletTest, ThumbnailApproximatesDownscale) {
  Rng rng(9);
  media::Image img = media::MakePhantomCt({64, 64, 3, 0.0}, rng);
  Plane plane = PlaneFromImage(img);
  ASSERT_TRUE(Dwt2D(plane, 3, WaveletBasis::kHaar).ok());
  Plane thumb = ReconstructAtScale(plane, 3, 1, WaveletBasis::kHaar).value();
  EXPECT_EQ(thumb.width, 32);
  EXPECT_EQ(thumb.height, 32);
  // Mean intensity should match the original's (box-average property).
  double original_mean = 0;
  for (uint8_t p : img.pixels()) original_mean += p;
  original_mean /= static_cast<double>(img.pixels().size());
  double thumb_mean = 0;
  for (double v : thumb.data) thumb_mean += v;
  thumb_mean /= static_cast<double>(thumb.data.size());
  EXPECT_NEAR(thumb_mean, original_mean, 2.0);
}

TEST(WaveletPacketTest, PerfectReconstruction) {
  Rng rng(10);
  Plane plane(32, 32);
  for (double& v : plane.data) v = rng.Uniform(-50, 50);
  Plane original = plane;
  ASSERT_TRUE(WaveletPacket2D(plane, 3, WaveletBasis::kDaub4).ok());
  ASSERT_TRUE(InverseWaveletPacket2D(plane, 3, WaveletBasis::kDaub4).ok());
  for (size_t i = 0; i < plane.data.size(); ++i) {
    EXPECT_NEAR(plane.data[i], original.data[i], 1e-8);
  }
}

TEST(WaveletPacketTest, DiffersFromPyramid) {
  Rng rng(11);
  Plane a(16, 16);
  for (double& v : a.data) v = rng.Uniform(-50, 50);
  Plane b = a;
  ASSERT_TRUE(Dwt2D(a, 2, WaveletBasis::kHaar).ok());
  ASSERT_TRUE(WaveletPacket2D(b, 2, WaveletBasis::kHaar).ok());
  double diff = 0;
  for (size_t i = 0; i < a.data.size(); ++i) {
    diff += std::abs(a.data[i] - b.data[i]);
  }
  EXPECT_GT(diff, 1.0);  // Packet re-analyzes detail bands.
}

TEST(LocalCosineTest, PerfectReconstruction) {
  Rng rng(12);
  Plane plane(24, 16);
  for (double& v : plane.data) v = rng.Uniform(-100, 100);
  Plane original = plane;
  ASSERT_TRUE(LocalCosine2D(plane).ok());
  ASSERT_TRUE(InverseLocalCosine2D(plane).ok());
  for (size_t i = 0; i < plane.data.size(); ++i) {
    EXPECT_NEAR(plane.data[i], original.data[i], 1e-9);
  }
}

TEST(LocalCosineTest, RequiresBlockMultiple) {
  Plane plane(20, 16);
  EXPECT_TRUE(LocalCosine2D(plane).IsInvalidArgument());
}

TEST(QuantizerTest, RoundTripWithinStep) {
  Rng rng(13);
  Plane plane(8, 8);
  for (double& v : plane.data) v = rng.Uniform(-200, 200);
  const double step = 4.0;
  std::vector<int32_t> q = Quantize(plane, step);
  Plane restored = Dequantize(q, 8, 8, step).value();
  for (size_t i = 0; i < plane.data.size(); ++i) {
    EXPECT_LE(std::abs(restored.data[i] - plane.data[i]), step);
  }
}

TEST(QuantizerTest, DeadZoneMapsSmallToZero) {
  Plane plane(2, 1);
  plane.data = {0.4, -0.9};
  std::vector<int32_t> q = Quantize(plane, 1.0);
  EXPECT_EQ(q[0], 0);
  EXPECT_EQ(q[1], 0);
}

class CodecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(99);
    image_ = media::MakePhantomCt({128, 128, 5, 2.0}, rng);
  }
  media::Image image_;
};

TEST_F(CodecTest, RoundTripQualityImprovesWithLayers) {
  LayeredCodec codec;
  Bytes stream = codec.Encode(image_).value();
  StreamInfo info = LayeredCodec::Inspect(stream).value();
  ASSERT_EQ(info.layers.size(), 3u);
  double previous_psnr = 0;
  for (int layers = 1; layers <= 3; ++layers) {
    media::Image decoded = LayeredCodec::Decode(stream, layers).value();
    double psnr = media::Image::Psnr(image_, decoded).value();
    EXPECT_GT(psnr, previous_psnr)
        << "layer " << layers << " should refine the approximation";
    previous_psnr = psnr;
  }
  EXPECT_GT(previous_psnr, 30.0);  // all layers: good reconstruction
}

TEST_F(CodecTest, LaterLayersCorrectEarlierArtifacts) {
  LayeredCodec codec;
  Bytes stream = codec.Encode(image_).value();
  media::Image base = LayeredCodec::Decode(stream, 1).value();
  media::Image full = LayeredCodec::Decode(stream, -1).value();
  EXPECT_LT(media::Image::MeanAbsDifference(image_, full).value(),
            media::Image::MeanAbsDifference(image_, base).value());
}

TEST_F(CodecTest, DecodePrefixUsesOnlyFittingLayers) {
  LayeredCodec codec;
  Bytes stream = codec.Encode(image_).value();
  StreamInfo info = LayeredCodec::Inspect(stream).value();
  // Budget exactly covering the base layer.
  size_t budget = info.layer_end[0];
  EXPECT_EQ(LayeredCodec::LayersWithinBudget(stream, budget).value(), 1);
  media::Image prefix = LayeredCodec::DecodePrefix(stream, budget).value();
  media::Image base = LayeredCodec::Decode(stream, 1).value();
  EXPECT_EQ(prefix.pixels(), base.pixels());
  // Too-small budget fails loudly.
  EXPECT_TRUE(LayeredCodec::DecodePrefix(stream, 10)
                  .status()
                  .IsFailedPrecondition());
  // Full budget decodes everything.
  EXPECT_EQ(LayeredCodec::LayersWithinBudget(stream, stream.size()).value(),
            3);
}

TEST_F(CodecTest, BudgetDecodeEdgeCases) {
  LayeredCodec codec;
  Bytes stream = codec.Encode(image_).value();
  StreamInfo info = LayeredCodec::Inspect(stream).value();

  // A budget inside the header cannot cover any layer: a Status, never
  // an empty image.
  ASSERT_GT(info.header_bytes, 1u);
  EXPECT_EQ(
      LayeredCodec::LayersWithinBudget(stream, info.header_bytes - 1).value(),
      0);
  EXPECT_TRUE(LayeredCodec::DecodePrefix(stream, info.header_bytes - 1)
                  .status()
                  .IsFailedPrecondition());
  EXPECT_TRUE(
      LayeredCodec::DecodePrefix(stream, 0).status().IsFailedPrecondition());

  // A budget exactly on a layer boundary includes that layer; one byte
  // less excludes it.
  for (size_t k = 0; k < info.layer_end.size(); ++k) {
    EXPECT_EQ(
        LayeredCodec::LayersWithinBudget(stream, info.layer_end[k]).value(),
        static_cast<int>(k) + 1)
        << "boundary of layer " << k;
    EXPECT_EQ(LayeredCodec::LayersWithinBudget(stream, info.layer_end[k] - 1)
                  .value(),
              static_cast<int>(k))
        << "one byte short of layer " << k;
  }
  media::Image at_boundary =
      LayeredCodec::DecodePrefix(stream, info.layer_end[1]).value();
  media::Image two_layers = LayeredCodec::Decode(stream, 2).value();
  EXPECT_EQ(at_boundary.pixels(), two_layers.pixels());

  // Decoding zero layers is a request error, not an empty image.
  EXPECT_TRUE(LayeredCodec::Decode(stream, 0).status().IsInvalidArgument());
}

TEST_F(CodecTest, ThumbnailScales) {
  LayeredCodec codec;
  Bytes stream = codec.Encode(image_).value();
  media::Image thumb = LayeredCodec::DecodeThumbnail(stream, 2).value();
  EXPECT_EQ(thumb.width(), 32);
  EXPECT_EQ(thumb.height(), 32);
  EXPECT_TRUE(
      LayeredCodec::DecodeThumbnail(stream, 9).status().IsInvalidArgument());
}

TEST_F(CodecTest, InspectRejectsCorruptHeader) {
  LayeredCodec codec;
  Bytes stream = codec.Encode(image_).value();
  stream[0] ^= 0xff;
  EXPECT_TRUE(LayeredCodec::Inspect(stream).status().IsCorruption());
}

TEST_F(CodecTest, TruncatedStreamRejected) {
  LayeredCodec codec;
  Bytes stream = codec.Encode(image_).value();
  // Truncation inside the header is corruption.
  Bytes broken_header(stream.begin(), stream.begin() + 20);
  EXPECT_TRUE(
      LayeredCodec::Inspect(broken_header).status().IsCorruption());
  // Truncation inside the payload is a valid stream *prefix* (the
  // progressive-transfer case): the header still parses, present layers
  // decode, absent layers are refused loudly.
  StreamInfo info = LayeredCodec::Inspect(stream).value();
  Bytes prefix(stream.begin(),
               stream.begin() + static_cast<long>(info.layer_end[0] + 10));
  StreamInfo prefix_info = LayeredCodec::Inspect(prefix).value();
  EXPECT_EQ(prefix_info.total_bytes, info.total_bytes);  // declared total
  EXPECT_EQ(
      LayeredCodec::LayersWithinBudget(prefix, prefix.size()).value(), 1);
  EXPECT_TRUE(LayeredCodec::Decode(prefix, 1).ok());
  EXPECT_TRUE(LayeredCodec::Decode(prefix, 2).status()
                  .IsFailedPrecondition());
}

TEST_F(CodecTest, SmallerQuantStepCostsMoreBytes) {
  CodecOptions coarse;
  coarse.layers = {{LayerBasis::kWavelet, 4, 32.0}};
  CodecOptions fine;
  fine.layers = {{LayerBasis::kWavelet, 4, 4.0}};
  Bytes coarse_stream = LayeredCodec(coarse).Encode(image_).value();
  Bytes fine_stream = LayeredCodec(fine).Encode(image_).value();
  EXPECT_LT(coarse_stream.size(), fine_stream.size());
  double coarse_psnr =
      media::Image::Psnr(image_,
                         LayeredCodec::Decode(coarse_stream).value())
          .value();
  double fine_psnr =
      media::Image::Psnr(image_, LayeredCodec::Decode(fine_stream).value())
          .value();
  EXPECT_GT(fine_psnr, coarse_psnr);
}

TEST_F(CodecTest, EncodeToBudgetHitsTarget) {
  LayeredCodec codec;
  Bytes full = codec.Encode(image_).value();
  ASSERT_GT(full.size(), 4000u);
  Bytes constrained = codec.EncodeToBudget(image_, 4000).value();
  EXPECT_LE(constrained.size(), 4000u);
  // Still decodable, and coarser than the unconstrained stream.
  media::Image decoded = LayeredCodec::Decode(constrained).value();
  double constrained_psnr = media::Image::Psnr(image_, decoded).value();
  double full_psnr =
      media::Image::Psnr(image_, LayeredCodec::Decode(full).value())
          .value();
  EXPECT_LT(constrained_psnr, full_psnr);
  EXPECT_GT(constrained_psnr, 20.0);  // but still a usable image
}

TEST_F(CodecTest, EncodeToBudgetReturnsFullQualityWhenItFits) {
  LayeredCodec codec;
  Bytes full = codec.Encode(image_).value();
  Bytes roomy = codec.EncodeToBudget(image_, full.size() + 1000).value();
  EXPECT_EQ(roomy, full);
}

TEST_F(CodecTest, EncodeToBudgetImpossibleBudgetFails) {
  LayeredCodec codec;
  EXPECT_TRUE(
      codec.EncodeToBudget(image_, 16).status().IsResourceExhausted());
}

TEST_F(CodecTest, OptionValidation) {
  CodecOptions no_layers;
  no_layers.layers.clear();
  EXPECT_TRUE(
      LayeredCodec(no_layers).Encode(image_).status().IsInvalidArgument());
  CodecOptions wrong_base;
  wrong_base.layers = {{LayerBasis::kLocalCosine, 0, 8.0}};
  EXPECT_TRUE(
      LayeredCodec(wrong_base).Encode(image_).status().IsInvalidArgument());
  CodecOptions bad_step;
  bad_step.layers = {{LayerBasis::kWavelet, 4, 0.0}};
  EXPECT_TRUE(
      LayeredCodec(bad_step).Encode(image_).status().IsInvalidArgument());
}

class BestBasisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(31);
    media::Image img = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
    smooth_ = PlaneFromImage(img);
    // Oscillatory texture: a high-frequency checkerboard-ish pattern
    // where packets beat the pyramid.
    texture_ = Plane(64, 64);
    for (int y = 0; y < 64; ++y) {
      for (int x = 0; x < 64; ++x) {
        texture_.at(x, y) =
            100.0 * std::sin(2.0 * M_PI * x * 13 / 64.0) *
            std::sin(2.0 * M_PI * y * 11 / 64.0);
      }
    }
  }
  Plane smooth_;
  Plane texture_;
};

TEST_F(BestBasisTest, PerfectReconstruction) {
  for (const Plane* input : {&smooth_, &texture_}) {
    BasisNode tree =
        BestBasisSearch(*input, 4, WaveletBasis::kDaub4).value();
    Plane work = *input;
    ASSERT_TRUE(ApplyBestBasis(work, tree, WaveletBasis::kDaub4).ok());
    ASSERT_TRUE(InvertBestBasis(work, tree, WaveletBasis::kDaub4).ok());
    for (size_t i = 0; i < work.data.size(); ++i) {
      EXPECT_NEAR(work.data[i], input->data[i], 1e-7);
    }
  }
}

TEST_F(BestBasisTest, CostMatchesAppliedTransform) {
  BasisNode tree = BestBasisSearch(smooth_, 4, WaveletBasis::kHaar).value();
  Plane work = smooth_;
  ASSERT_TRUE(ApplyBestBasis(work, tree, WaveletBasis::kHaar).ok());
  EXPECT_NEAR(L1Cost(work), tree.cost, 1e-6 * tree.cost);
}

TEST_F(BestBasisTest, BeatsEveryUniformDepthAndPyramid) {
  for (const Plane* input : {&smooth_, &texture_}) {
    BasisNode tree =
        BestBasisSearch(*input, 4, WaveletBasis::kDaub4).value();
    for (int depth = 0; depth <= 4; ++depth) {
      EXPECT_LE(tree.cost,
                UniformPacketCost(*input, depth, WaveletBasis::kDaub4)
                        .value() +
                    1e-6);
    }
    for (int levels = 1; levels <= 4; ++levels) {
      EXPECT_LE(
          tree.cost,
          PyramidCost(*input, levels, WaveletBasis::kDaub4).value() + 1e-6);
    }
  }
}

TEST_F(BestBasisTest, SmoothImagePrefersDeepLLSplits) {
  // On smooth content the best basis splits (pyramid-like); on pure
  // oscillation the chosen tree differs from the smooth one's shape.
  BasisNode smooth_tree =
      BestBasisSearch(smooth_, 4, WaveletBasis::kDaub4).value();
  EXPECT_TRUE(smooth_tree.split);
  EXPECT_GE(smooth_tree.MaxDepth(), 2);
}

TEST_F(BestBasisTest, DepthZeroIsIdentity) {
  BasisNode tree = BestBasisSearch(smooth_, 0, WaveletBasis::kHaar).value();
  EXPECT_FALSE(tree.split);
  EXPECT_EQ(tree.LeafCount(), 1u);
  EXPECT_NEAR(tree.cost, L1Cost(smooth_), 1e-9);
}

TEST_F(BestBasisTest, InfeasibleDepthRejected) {
  EXPECT_TRUE(BestBasisSearch(smooth_, 10, WaveletBasis::kHaar)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(BestBasisSearch(smooth_, -1, WaveletBasis::kHaar)
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace mmconf::compress
