#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "doc/builder.h"
#include "fanout/broadcast.h"
#include "fanout/compositor.h"
#include "fanout/director.h"
#include "fanout/relay_tree.h"
#include "federation/tier.h"
#include "imaging/ops.h"
#include "media/image.h"
#include "media/synthetic.h"
#include "net/network.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "storage/database.h"

namespace mmconf::fanout {
namespace {

using doc::BandwidthLevel;
using media::AudioClass;
using media::AudioSegment;
using media::AudioSignal;
using media::Image;

// --- GridCells (imaging) ---

TEST(GridCellsTest, TilesExactlyEvenWhenNonDivisible) {
  // 100 x 70 into 3 x 3: neither extent divides, yet the cells must be
  // non-empty, in bounds, pairwise disjoint, and cover every pixel.
  auto cells = imaging::GridCells(100, 70, 3, 3).value();
  ASSERT_EQ(cells.size(), 9u);
  std::vector<std::vector<int>> hits(70, std::vector<int>(100, 0));
  for (const media::Rect& cell : cells) {
    EXPECT_GT(cell.width, 0);
    EXPECT_GT(cell.height, 0);
    EXPECT_GE(cell.x, 0);
    EXPECT_GE(cell.y, 0);
    EXPECT_LE(cell.x + cell.width, 100);
    EXPECT_LE(cell.y + cell.height, 70);
    for (int y = cell.y; y < cell.y + cell.height; ++y) {
      for (int x = cell.x; x < cell.x + cell.width; ++x) ++hits[y][x];
    }
  }
  for (const auto& row : hits) {
    for (int count : row) EXPECT_EQ(count, 1);
  }
}

TEST(GridCellsTest, RejectsEmptyAndOverfineGrids) {
  EXPECT_TRUE(imaging::GridCells(0, 10, 1, 1).status().IsInvalidArgument());
  EXPECT_TRUE(imaging::GridCells(10, 10, 0, 2).status().IsInvalidArgument());
  // More columns than pixels would force empty cells.
  EXPECT_TRUE(imaging::GridCells(3, 10, 1, 4).status().IsInvalidArgument());
  EXPECT_TRUE(imaging::GridCells(10, 3, 4, 1).status().IsInvalidArgument());
  // 1 x 1 is the degenerate full-canvas cell.
  auto one = imaging::GridCells(10, 10, 1, 1).value();
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], (media::Rect{0, 0, 10, 10}));
}

// --- Mosaic composition ---

Image TestPattern(int width, int height, uint8_t base) {
  Image image = Image::Create(width, height).value();
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      image.set(x, y, static_cast<uint8_t>(base + (x * 7 + y * 13) % 100));
    }
  }
  return image;
}

TEST(MosaicTest, ZeroSourcesIsBareBackground) {
  MosaicOptions options;
  options.width = 48;
  options.height = 48;
  options.background = 33;
  Image mosaic = ComposeMosaic({}, options).value();
  for (int y = 0; y < 48; ++y) {
    for (int x = 0; x < 48; ++x) EXPECT_EQ(mosaic.at(x, y), 33);
  }
}

TEST(MosaicTest, SingleSourceFillsTheCanvas) {
  MosaicOptions options;
  options.width = 64;
  options.height = 64;
  options.background = 0;
  options.draw_borders = false;
  std::vector<Image> sources = {TestPattern(32, 32, 100)};
  Image mosaic = ComposeMosaic(sources, options).value();
  // One source -> one 1x1 cell covering everything: no background pixel
  // survives (the pattern stays >= 100 everywhere, bilinear included).
  for (int y = 0; y < 64; ++y) {
    for (int x = 0; x < 64; ++x) EXPECT_GE(mosaic.at(x, y), 100);
  }
}

TEST(MosaicTest, NonDivisibleGridIsDeterministicAndInBounds) {
  // 3 sources on a 100 x 100 canvas: cols = 2, rows = 2, 100 odd against
  // nothing but the cell edges land on 0/50/100 — and with 5 sources on
  // a 90 x 70 canvas cols = 3, neither extent divisible by 3.
  for (int n : {3, 5}) {
    MosaicOptions options;
    options.width = 90;
    options.height = 70;
    std::vector<Image> sources;
    for (int i = 0; i < n; ++i) {
      sources.push_back(TestPattern(31 + i, 17 + 2 * i, 50));
    }
    Image a = ComposeMosaic(sources, options).value();
    Image b = ComposeMosaic(sources, options).value();
    EXPECT_EQ(a.Encode(), b.Encode()) << n << " sources";
  }
}

// --- Active-speaker mixing ---

/// A track whose speech segments cover [begin, end) of `length` samples.
SpeakerTrack MakeTrack(int speaker, const AudioSignal* signal, size_t begin,
                       size_t end) {
  SpeakerTrack track;
  track.speaker = speaker;
  track.signal = signal;
  AudioSegment segment;
  segment.begin = begin;
  segment.end = end;
  segment.cls = AudioClass::kSpeech;
  segment.speaker = speaker;
  track.segments.push_back(segment);
  return track;
}

TEST(MixTest, LoneSpeakerKeepsFullLevel) {
  AudioSignal voice(std::vector<float>(4000, 0.5f), 8000);
  std::vector<SpeakerTrack> tracks = {MakeTrack(1, &voice, 0, 4000)};
  MixOptions options;
  options.max_active = 2;
  MixResult result = MixActiveSpeakers(tracks, 4000, 8000, options).value();
  ASSERT_EQ(result.mixed.size(), 4000u);
  for (float sample : result.mixed.samples()) EXPECT_FLOAT_EQ(sample, 0.5f);
  ASSERT_EQ(result.windows, 2u);
  for (const auto& window : result.active_per_window) {
    ASSERT_EQ(window.size(), 1u);
    EXPECT_EQ(window[0], 1);
  }
}

TEST(MixTest, SeededTieBreakIsOrderIndependent) {
  // Four speakers, all with identical full-window activity: the cut
  // between selected and muted is decided purely by the seeded rank, so
  // shuffling the input order must not change one sample of the output.
  std::vector<AudioSignal> voices;
  for (int s = 0; s < 4; ++s) {
    voices.emplace_back(std::vector<float>(2000, 0.1f * (s + 1)), 8000);
  }
  std::vector<SpeakerTrack> tracks;
  for (int s = 0; s < 4; ++s) {
    tracks.push_back(MakeTrack(s, &voices[s], 0, 2000));
  }
  MixOptions options;
  options.max_active = 2;
  MixResult baseline = MixActiveSpeakers(tracks, 2000, 8000, options).value();
  EXPECT_GT(baseline.ties_broken, 0u);

  std::vector<SpeakerTrack> shuffled = {tracks[2], tracks[0], tracks[3],
                                        tracks[1]};
  MixResult again = MixActiveSpeakers(shuffled, 2000, 8000, options).value();
  EXPECT_EQ(baseline.mixed.Encode(), again.mixed.Encode());
  EXPECT_EQ(baseline.active_per_window, again.active_per_window);
  EXPECT_EQ(baseline.ties_broken, again.ties_broken);
}

TEST(MixTest, TieRankIsDeterministicPerSeedAndVariesAcrossSeeds) {
  bool any_differ = false;
  for (int speaker = 0; speaker < 8; ++speaker) {
    EXPECT_EQ(SpeakerTieRank(7, speaker), SpeakerTieRank(7, speaker));
    if (SpeakerTieRank(7, speaker) != SpeakerTieRank(8, speaker)) {
      any_differ = true;
    }
  }
  EXPECT_TRUE(any_differ);
}

TEST(MixTest, ActivityOutranksTheTieBreak) {
  // Speaker 5 talks the whole window, the others half of it: 5 must be
  // selected first in every window regardless of seed.
  std::vector<AudioSignal> voices;
  for (int s = 0; s < 3; ++s) {
    voices.emplace_back(std::vector<float>(2000, 0.2f), 8000);
  }
  std::vector<SpeakerTrack> tracks = {MakeTrack(5, &voices[0], 0, 2000),
                                      MakeTrack(1, &voices[1], 0, 1000),
                                      MakeTrack(2, &voices[2], 0, 1000)};
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    MixOptions options;
    options.max_active = 2;
    options.tie_seed = seed;
    MixResult result = MixActiveSpeakers(tracks, 2000, 8000, options).value();
    ASSERT_FALSE(result.active_per_window.empty());
    EXPECT_EQ(result.active_per_window[0][0], 5) << "seed " << seed;
  }
}

TEST(MixTest, RejectsMismatchedRatesAndDuplicateSpeakers) {
  AudioSignal a(std::vector<float>(100, 0.1f), 8000);
  AudioSignal b(std::vector<float>(100, 0.1f), 16000);
  std::vector<SpeakerTrack> mixed_rates = {MakeTrack(1, &a, 0, 100),
                                           MakeTrack(2, &b, 0, 100)};
  EXPECT_TRUE(MixActiveSpeakers(mixed_rates, 100, 8000, {})
                  .status()
                  .IsInvalidArgument());
  std::vector<SpeakerTrack> duplicates = {MakeTrack(1, &a, 0, 100),
                                          MakeTrack(1, &a, 0, 100)};
  EXPECT_TRUE(MixActiveSpeakers(duplicates, 100, 8000, {})
                  .status()
                  .IsInvalidArgument());
}

// --- Compositor ---

CompositorOptions SmallCompositor() {
  CompositorOptions options;
  options.high_px = 64;
  options.medium_px = 32;
  options.low_px = 16;
  return options;
}

TEST(CompositorTest, ComposeFrameIsByteDeterministic) {
  Rng rng(11);
  std::vector<Image> images = {media::MakePhantomCt({64, 64, 3, 2.0}, rng),
                               media::MakePhantomCt({48, 48, 2, 2.0}, rng)};
  AudioSignal voice(std::vector<float>(8000, 0.3f), 8000);
  std::vector<SpeakerTrack> tracks = {MakeTrack(1, &voice, 0, 8000)};

  Compositor a(SmallCompositor());
  Compositor b(SmallCompositor());
  auto frames_a = a.ComposeFrame(0, images, tracks).value();
  auto frames_b = b.ComposeFrame(0, images, tracks).value();
  ASSERT_EQ(frames_a.size(), 3u);
  ASSERT_EQ(frames_b.size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(frames_a[i].video, frames_b[i].video);
    EXPECT_EQ(frames_a[i].audio, frames_b[i].audio);
    EXPECT_EQ(frames_a[i].active_speakers, frames_b[i].active_speakers);
    EXPECT_FALSE(frames_a[i].video.empty());
  }
  // Classes are ordered high/medium/low and the mosaic shrinks with the
  // bandwidth class.
  EXPECT_EQ(frames_a[0].level, BandwidthLevel::kHigh);
  EXPECT_EQ(frames_a[2].level, BandwidthLevel::kLow);
  EXPECT_GT(frames_a[0].video.size(), frames_a[2].video.size());
}

// --- Relay tree ---

class RelayTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_);
    root_ = network_->AddNode("origin");
  }

  /// Asserts the structural invariants: single parent, every relay
  /// reachable from the root, viewers on edges only. `fanout` > 0 also
  /// enforces the children cap (a Reparent may legitimately overfill the
  /// root, so post-repair checks pass 0).
  void CheckInvariants(const RelayTree& tree, size_t fanout) {
    std::map<net::NodeId, size_t> child_count;
    for (net::NodeId relay : tree.relays()) {
      net::NodeId parent = tree.ParentOf(relay).value();
      ++child_count[parent];
      EXPECT_TRUE(parent == tree.root() || tree.IsRelay(parent));
    }
    if (fanout > 0) {
      for (const auto& [node, count] : child_count) {
        EXPECT_LE(count, fanout) << "node " << node;
      }
    }
    // BFS from the root covers every relay.
    std::set<net::NodeId> reached;
    std::vector<net::NodeId> frontier = {tree.root()};
    while (!frontier.empty()) {
      net::NodeId node = frontier.back();
      frontier.pop_back();
      for (net::NodeId child : tree.ChildrenOf(node)) {
        EXPECT_TRUE(reached.insert(child).second) << "visited twice";
        frontier.push_back(child);
      }
    }
    EXPECT_EQ(reached.size(), tree.relays().size());
    for (net::NodeId relay : tree.relays()) {
      if (!tree.IsEdge(relay)) {
        EXPECT_TRUE(tree.ViewersAt(relay).status().IsNotFound());
      }
    }
  }

  Clock clock_;
  std::unique_ptr<net::Network> network_;
  net::NodeId root_ = 0;
};

TEST_F(RelayTreeTest, BuildSizesEdgesAndSpineToTheAudience) {
  RelayTreeOptions options;
  options.fanout = 4;
  options.viewers_per_edge = 100;
  RelayTree tree(network_.get(), root_, "lecture", options);
  ASSERT_TRUE(tree.Build(1000).ok());
  // ceil(1000 / 100) = 10 edges; interior spine packs them 4 per parent:
  // 3 interiors over the edges, all 3 fit under the root directly.
  EXPECT_EQ(tree.edge_relays().size(), 10u);
  EXPECT_GE(tree.num_relays(), 13u);
  EXPECT_LE(tree.ChildrenOf(root_).size(), 4u);
  std::map<net::NodeId, size_t> child_count;
  for (net::NodeId relay : tree.relays()) {
    ++child_count[tree.ParentOf(relay).value()];
  }
  for (const auto& [node, count] : child_count) {
    EXPECT_LE(count, 4u) << "node " << node;
  }
  CheckInvariants(tree, 4);
  EXPECT_TRUE(tree.Build(10).IsFailedPrecondition());  // built once
}

TEST_F(RelayTreeTest, AssignmentIsDeterministicLeastLoaded) {
  RelayTreeOptions options;
  options.fanout = 4;
  options.viewers_per_edge = 10;
  RelayTree tree(network_.get(), root_, "lec", options);
  ASSERT_TRUE(tree.Build(30).ok());  // 3 edges
  ASSERT_EQ(tree.edge_relays().size(), 3u);
  // Empty tree: ties across all edges resolve to the lowest index.
  EXPECT_EQ(tree.AssignViewer().value(), tree.edge_relays()[0]);
  EXPECT_EQ(tree.AssignViewer().value(), tree.edge_relays()[1]);
  EXPECT_EQ(tree.AssignViewer().value(), tree.edge_relays()[2]);
  EXPECT_EQ(tree.AssignViewer().value(), tree.edge_relays()[0]);
  ASSERT_TRUE(tree.AssignAudience(32).ok());
  EXPECT_EQ(tree.total_viewers(), 36u);
  // Bulk admission levels the edges to within one viewer.
  size_t low = SIZE_MAX, high = 0;
  for (net::NodeId edge : tree.edge_relays()) {
    size_t viewers = tree.ViewersAt(edge).value();
    low = std::min(low, viewers);
    high = std::max(high, viewers);
  }
  EXPECT_LE(high - low, 1u);
}

TEST_F(RelayTreeTest, ReparentRehangsTheOrphanedSubtree) {
  RelayTreeOptions options;
  options.fanout = 2;
  options.viewers_per_edge = 10;
  RelayTree tree(network_.get(), root_, "lec", options);
  ASSERT_TRUE(tree.Build(80).ok());  // 8 edges, binary spine above
  CheckInvariants(tree, 2);
  // Kill the link feeding the first edge relay and re-hang it: the dead
  // parent was interior, so the orphan lands directly under the root.
  net::NodeId edge = tree.edge_relays()[0];
  net::NodeId old_parent = tree.ParentOf(edge).value();
  ASSERT_TRUE(network_->RemoveLink(old_parent, edge).ok());
  net::NodeId new_parent = tree.Reparent(edge).value();
  EXPECT_NE(new_parent, old_parent);
  EXPECT_EQ(new_parent, tree.root());
  EXPECT_EQ(tree.ParentOf(edge).value(), new_parent);
  EXPECT_EQ(tree.rebuilds(), 1u);
  CheckInvariants(tree, 0);
  // An interior relay re-hangs with its whole subtree intact.
  net::NodeId interior = -1;
  for (net::NodeId relay : tree.relays()) {
    if (!tree.IsEdge(relay) && tree.IsRelay(tree.ParentOf(relay).value())) {
      interior = relay;
      break;
    }
  }
  ASSERT_TRUE(tree.IsRelay(interior));
  std::vector<net::NodeId> below = tree.ChildrenOf(interior);
  ASSERT_FALSE(below.empty());
  EXPECT_EQ(tree.Reparent(interior).value(), tree.root());
  EXPECT_EQ(tree.ChildrenOf(interior), below);  // subtree untouched
  EXPECT_EQ(tree.rebuilds(), 2u);
  CheckInvariants(tree, 0);
}

TEST_F(RelayTreeTest, RerootMovesTheFirstHopLinks) {
  RelayTreeOptions options;
  options.fanout = 4;
  options.viewers_per_edge = 10;
  RelayTree tree(network_.get(), root_, "lec", options);
  ASSERT_TRUE(tree.Build(40).ok());
  std::vector<net::NodeId> first_hop = tree.ChildrenOf(root_);
  ASSERT_FALSE(first_hop.empty());
  net::NodeId new_root = network_->AddNode("origin-2");
  ASSERT_TRUE(tree.Reroot(new_root).ok());
  EXPECT_EQ(tree.root(), new_root);
  EXPECT_TRUE(tree.ChildrenOf(root_).empty());
  EXPECT_EQ(tree.ChildrenOf(new_root), first_hop);
  CheckInvariants(tree, 4);
}

// --- BroadcastSession end to end ---

class BroadcastSessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_);
    origin_ = network_->AddNode("origin");
    transport_ = std::make_unique<net::ReliableTransport>(network_.get());

    Rng rng(3);
    images_.push_back(media::MakePhantomCt({64, 64, 3, 2.0}, rng));
    images_.push_back(media::MakePhantomCt({64, 64, 2, 2.0}, rng));
    voice_a_ = AudioSignal(std::vector<float>(16000, 0.3f), 8000);
    voice_b_ = AudioSignal(std::vector<float>(16000, -0.2f), 8000);
    tracks_ = {MakeTrack(1, &voice_a_, 0, 16000),
               MakeTrack(2, &voice_b_, 0, 8000)};
  }

  BroadcastOptions SmallBroadcast() {
    BroadcastOptions options;
    options.tree.fanout = 2;
    options.tree.viewers_per_edge = 50;
    options.compositor = SmallCompositor();
    return options;
  }

  Clock clock_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<net::ReliableTransport> transport_;
  net::NodeId origin_ = 0;
  std::vector<Image> images_;
  AudioSignal voice_a_, voice_b_;
  std::vector<SpeakerTrack> tracks_;
};

TEST_F(BroadcastSessionTest, TreeBeatsUnicastAndNoBaseDropsUnderLoss) {
  obs::MetricsRegistry metrics;
  BroadcastSession session(network_.get(), transport_.get(), origin_,
                           "lecture", SmallBroadcast());
  session.SetObserver(&metrics, nullptr);
  EXPECT_TRUE(session.PushFrame(images_, tracks_).IsFailedPrecondition());
  ASSERT_TRUE(session.OpenAudience(200).ok());
  ASSERT_TRUE(session.AdmitAudience(120, BandwidthLevel::kHigh).ok());
  ASSERT_TRUE(session.AdmitAudience(80, BandwidthLevel::kLow).ok());

  // Two real viewers ride lossy last-mile links; their composed streams
  // run through the actual StreamScheduler, so base-layer delivery is
  // measured, not assumed.
  net::FaultSpec lossy;
  lossy.drop_probability = 0.08;
  net::NodeId high_viewer =
      session.AdmitSampledViewer(BandwidthLevel::kHigh, {1e6, 20000}, lossy)
          .value();
  net::NodeId low_viewer =
      session.AdmitSampledViewer(BandwidthLevel::kLow, {5e5, 30000}, lossy)
          .value();

  for (int frame = 0; frame < 3; ++frame) {
    ASSERT_TRUE(session.PushFrame(images_, tracks_).ok());
    ASSERT_TRUE(session.Settle().ok());
  }

  BroadcastStats stats = session.Stats();
  EXPECT_EQ(stats.frames, 3u);
  EXPECT_EQ(stats.audience, 200u);
  EXPECT_EQ(stats.sampled_viewers, 2u);
  EXPECT_TRUE(stats.all_finished);
  // The acceptance gates: no composed stream ever lost a base chunk,
  // and the tree's origin egress undercuts per-viewer unicast.
  EXPECT_EQ(stats.streams_aborted, 0u);
  EXPECT_EQ(stats.streams_finished, stats.streams_opened);
  EXPECT_GT(stats.server_egress_bytes, 0u);
  EXPECT_LT(stats.server_egress_bytes, stats.unicast_equiv_bytes);
  EXPECT_GT(stats.modeled_last_hop_bytes, 0u);

  SampledViewerStats high = session.ViewerStats(high_viewer).value();
  EXPECT_EQ(high.frames_delivered, 3u);
  EXPECT_EQ(high.frames_aborted, 0u);
  EXPECT_EQ(high.audio_messages, 3u);
  SampledViewerStats low = session.ViewerStats(low_viewer).value();
  EXPECT_EQ(low.frames_delivered, 3u);
  EXPECT_EQ(low.frames_aborted, 0u);

  EXPECT_EQ(metrics.GetCounter("fanout.frames")->value(), 3u);
  EXPECT_GT(metrics.GetCounter("fanout.relay_forwards")->value(), 0u);
  EXPECT_EQ(metrics.GetCounter("fanout.viewer_streams")->value(),
            stats.streams_opened);
  EXPECT_GT(metrics.GetCounter("mix.windows")->value(), 0u);
}

TEST_F(BroadcastSessionTest, DeadTreeLinkReparentsAndReplaysHistory) {
  BroadcastSession session(network_.get(), transport_.get(), origin_,
                           "lecture", SmallBroadcast());
  ASSERT_TRUE(session.OpenAudience(200).ok());  // 4 edges, binary spine
  net::FaultSpec clean;
  net::NodeId viewer =
      session.AdmitSampledViewer(BandwidthLevel::kHigh, {1e6, 20000}, clean)
          .value();
  ASSERT_TRUE(session.PushFrame(images_, tracks_).ok());
  ASSERT_TRUE(session.Settle().ok());
  ASSERT_EQ(session.ViewerStats(viewer).value().frames_delivered, 1u);

  // Hard-partition the link feeding the viewer's edge relay. The next
  // frame exhausts its retries there, the failure callback reparents the
  // edge, and the history replay re-delivers the missed frame.
  net::NodeId edge = session.ViewerStats(viewer).value().edge;
  net::NodeId parent = session.tree()->ParentOf(edge).value();
  network_->Partition(parent, edge);
  ASSERT_TRUE(session.PushFrame(images_, tracks_).ok());
  ASSERT_TRUE(session.Settle().ok());
  ASSERT_TRUE(session.PushFrame(images_, tracks_).ok());
  ASSERT_TRUE(session.Settle().ok());

  BroadcastStats stats = session.Stats();
  EXPECT_GE(stats.rebuilds, 1u);
  EXPECT_EQ(stats.streams_aborted, 0u);
  EXPECT_TRUE(stats.all_finished);
  EXPECT_NE(session.tree()->ParentOf(edge).value(), parent);
  // Every frame still reached the viewer, the partition notwithstanding.
  EXPECT_EQ(session.ViewerStats(viewer).value().frames_delivered, 3u);
}

// --- Live-broadcast migration through the federation tier ---

class BroadcastMigrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_);
    db_node_ = network_->AddNode("oracle");
    ASSERT_TRUE(db_.RegisterStandardTypes().ok());
    federation::FederationOptions options;
    options.num_nodes = 3;
    options.backbone = {50e6, 1000};
    tier_ = std::make_unique<federation::FederatedInteractionTier>(
        &db_, network_.get(), db_node_, options);
    director_ = std::make_unique<BroadcastDirector>(tier_.get(),
                                                    network_.get());
    speaker_client_ = network_->AddNode("speaker-client");
    ASSERT_TRUE(tier_->ConnectClient(speaker_client_, {1e6, 20000}).ok());

    Rng rng(9);
    ct_ = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
    voice_ = AudioSignal(std::vector<float>(32000, 0.25f), 8000);
    segments_ = {{0, 32000, AudioClass::kSpeech, 1, -1}};
  }

  /// A room id the hash placement puts on `node`.
  std::string RoomOn(size_t node) const {
    for (int i = 0;; ++i) {
      std::string id = "lecture-" + std::to_string(i);
      if (tier_->placement().HashNodeFor(id) == node) return id;
    }
  }

  BroadcastOptions SmallBroadcast() {
    BroadcastOptions options;
    options.tree.fanout = 2;
    options.tree.viewers_per_edge = 50;
    options.compositor = SmallCompositor();
    return options;
  }

  Clock clock_;
  storage::DatabaseServer db_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<federation::FederatedInteractionTier> tier_;
  std::unique_ptr<BroadcastDirector> director_;
  net::NodeId db_node_ = 0, speaker_client_ = 0;
  Image ct_;
  AudioSignal voice_;
  std::vector<AudioSegment> segments_;
};

TEST_F(BroadcastMigrationTest, LiveBroadcastSurvivesRoomMigration) {
  std::string room_id = RoomOn(0);
  tier_->OpenRoomWithDocument(room_id,
                              doc::MakeMedicalRecordDocument().value())
      .value();
  tier_->Join(room_id, {"dr-lecturer", speaker_client_}).value();
  ASSERT_TRUE(director_->Settle().ok());

  BroadcastSession* session =
      director_->HostBroadcast(room_id, 100, SmallBroadcast()).value();
  EXPECT_EQ(session->origin(), tier_->node_net(0));
  ASSERT_TRUE(director_->RegisterImage(room_id, "CT", ct_).ok());
  ASSERT_TRUE(
      director_->RegisterSpeaker(room_id, 1, voice_, segments_).ok());
  ASSERT_TRUE(
      director_->AdmitViewers(room_id, 90, BandwidthLevel::kMedium).ok());
  net::FaultSpec lossy;
  lossy.drop_probability = 0.05;
  net::NodeId viewer =
      director_
          ->AdmitSampledViewer(room_id, BandwidthLevel::kMedium,
                               {1e6, 20000}, lossy)
          .value();

  ASSERT_TRUE(director_->PushFrame(room_id).ok());
  ASSERT_TRUE(director_->PushFrame(room_id).ok());
  ASSERT_TRUE(director_->Settle().ok());
  size_t delivered_before =
      session->ViewerStats(viewer).value().frames_delivered;
  EXPECT_EQ(delivered_before, 2u);

  // Migrate the hosting room mid-broadcast. The director quiesces at a
  // chunk boundary, the tier ships the room, and the room-moved hook
  // re-roots the tree at the target node.
  federation::MigrationReport report =
      director_->MigrateBroadcast(room_id, 2).value();
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(tier_->NodeOf(room_id).value(), 2u);
  EXPECT_EQ(session->origin(), tier_->node_net(2));
  EXPECT_FALSE(session->paused());

  ASSERT_TRUE(director_->PushFrame(room_id).ok());
  ASSERT_TRUE(director_->PushFrame(room_id).ok());
  ASSERT_TRUE(director_->Settle().ok());

  // The viewer's stream kept flowing across the cutover: every frame
  // before and after the move resolved, none lost a base chunk.
  SampledViewerStats viewer_stats = session->ViewerStats(viewer).value();
  EXPECT_EQ(viewer_stats.frames_delivered, 4u);
  EXPECT_EQ(viewer_stats.frames_aborted, 0u);
  BroadcastStats stats = session->Stats();
  EXPECT_EQ(stats.frames, 4u);
  EXPECT_TRUE(stats.all_finished);
  EXPECT_EQ(stats.streams_aborted, 0u);

  // Byte-equal composed output after cutover: the migrated session's
  // compositor produces exactly what a never-migrated control composes
  // for the same post-cutover frame index and inputs.
  std::vector<SpeakerTrack> tracks = {MakeTrack(1, &voice_, 0, 32000)};
  Compositor control(SmallCompositor());
  auto moved = session->compositor().ComposeFrame(3, {ct_}, tracks).value();
  auto expected = control.ComposeFrame(3, {ct_}, tracks).value();
  ASSERT_EQ(moved.size(), expected.size());
  for (size_t i = 0; i < moved.size(); ++i) {
    EXPECT_EQ(moved[i].video, expected[i].video);
    EXPECT_EQ(moved[i].audio, expected[i].audio);
  }

  // And the room itself still serves on the new node.
  EXPECT_TRUE((*tier_->GetRoom(room_id))->HasMember("dr-lecturer"));
}

TEST_F(BroadcastMigrationTest, FailedMigrationResumesAtTheOldOrigin) {
  std::string room_id = RoomOn(0);
  tier_->OpenRoomWithDocument(room_id,
                              doc::MakeMedicalRecordDocument().value())
      .value();
  tier_->Join(room_id, {"dr-lecturer", speaker_client_}).value();
  ASSERT_TRUE(director_->Settle().ok());
  BroadcastSession* session =
      director_->HostBroadcast(room_id, 60, SmallBroadcast()).value();
  ASSERT_TRUE(director_->RegisterImage(room_id, "CT", ct_).ok());
  ASSERT_TRUE(
      director_->RegisterSpeaker(room_id, 1, voice_, segments_).ok());
  ASSERT_TRUE(director_->PushFrame(room_id).ok());
  ASSERT_TRUE(director_->Settle().ok());

  // The target node is unreachable: the migration fails, the room stays
  // on its source, and the broadcast resumes from the old origin.
  network_->Partition(tier_->node_net(0), tier_->node_net(1));
  EXPECT_FALSE(director_->MigrateBroadcast(room_id, 1).ok());
  EXPECT_EQ(tier_->NodeOf(room_id).value(), 0u);
  EXPECT_EQ(session->origin(), tier_->node_net(0));
  EXPECT_FALSE(session->paused());
  ASSERT_TRUE(director_->PushFrame(room_id).ok());
  ASSERT_TRUE(director_->Settle().ok());
  EXPECT_EQ(session->Stats().frames, 2u);
}

}  // namespace
}  // namespace mmconf::fanout
