#include <gtest/gtest.h>

#include "cpnet/brute_force.h"
#include "cpnet/cpnet.h"
#include "cpnet/update.h"
#include "doc/builder.h"

namespace mmconf::cpnet {
namespace {

TEST(AddComponentTest, AddsUnconditionalVariable) {
  CpNet net = doc::MakePaperFigure2Net();
  size_t before = net.num_variables();
  VarId v = CpNetEditor::AddComponent(net, "c6", {"shown", "hidden"},
                                      {0, 1})
                .value();
  EXPECT_EQ(net.num_variables(), before + 1);
  EXPECT_TRUE(net.validated());
  Assignment optimal = net.OptimalOutcome().value();
  EXPECT_EQ(optimal.Get(v), 0);
  // Existing variables keep their optima.
  EXPECT_EQ(optimal.Get(0), 0);
  EXPECT_EQ(optimal.Get(2), 1);
}

TEST(AddComponentTest, RejectsEmptyDomain) {
  CpNet net = doc::MakePaperFigure2Net();
  EXPECT_TRUE(CpNetEditor::AddComponent(net, "bad", {}, {})
                  .status()
                  .IsInvalidArgument());
}

TEST(RemoveComponentTest, RemovesLeaf) {
  CpNet net = doc::MakePaperFigure2Net();
  // Remove c5 (a leaf).
  auto result = CpNetEditor::RemoveComponent(net, 4, 0).value();
  EXPECT_EQ(result.net.num_variables(), 4u);
  EXPECT_EQ(result.old_to_new[4], kUnassigned);
  EXPECT_EQ(result.old_to_new[0], 0);
  EXPECT_TRUE(result.net.validated());
  Assignment optimal = result.net.OptimalOutcome().value();
  // Same values as the original for the surviving variables.
  Assignment original = net.OptimalOutcome().value();
  for (size_t old_v = 0; old_v < 4; ++old_v) {
    EXPECT_EQ(optimal.Get(result.old_to_new[old_v]),
              original.Get(static_cast<VarId>(old_v)));
  }
}

TEST(RemoveComponentTest, ChildrenRestrictedToRemovedValue) {
  CpNet net = doc::MakePaperFigure2Net();
  // Remove c3 restricting to value 0 (c3_1): c4 and c5 keep only the
  // "parent = c3_1" row, i.e. unconditional preference for index 0.
  auto result = CpNetEditor::RemoveComponent(net, 2, 0).value();
  EXPECT_EQ(result.net.num_variables(), 4u);
  VarId new_c4 = result.old_to_new[3];
  EXPECT_TRUE(result.net.Parents(new_c4).empty());
  Assignment optimal = result.net.OptimalOutcome().value();
  EXPECT_EQ(optimal.Get(new_c4), 0);
  EXPECT_EQ(optimal.Get(result.old_to_new[4]), 0);
}

TEST(RemoveComponentTest, ValidatesArguments) {
  CpNet net = doc::MakePaperFigure2Net();
  EXPECT_TRUE(
      CpNetEditor::RemoveComponent(net, 99, 0).status().IsOutOfRange());
  EXPECT_TRUE(
      CpNetEditor::RemoveComponent(net, 0, 7).status().IsOutOfRange());
}

TEST(OperationVariableTest, PaperConstruction) {
  // The paper's exact scenario: ci is an X-ray with three resolutions;
  // a viewer segments it while presented at value c2i (index 1).
  CpNet net;
  VarId ci = net.AddVariable("xray", {"res1", "res2", "res3"});
  net.SetUnconditionalPreference(ci, {0, 1, 2}).ok();
  ASSERT_TRUE(net.Validate().ok());

  VarId op = CpNetEditor::AddOperationVariable(net, ci, /*trigger=*/1,
                                               "xray.seg", "segmented",
                                               "flat")
                 .value();
  ASSERT_TRUE(net.validated());
  EXPECT_EQ(net.num_variables(), 2u);
  ASSERT_EQ(net.Parents(op).size(), 1u);
  EXPECT_EQ(net.Parents(op)[0], ci);

  // "c1i' > c2i' iff ci = c2i": segmented preferred only at res2.
  for (ValueId value = 0; value < 3; ++value) {
    Assignment evidence(net.num_variables());
    evidence.Set(ci, value);
    Assignment completion = net.OptimalCompletion(evidence).value();
    EXPECT_EQ(completion.Get(op), value == 1 ? 0 : 1)
        << "xray at res" << (value + 1);
  }
  // "the domain of the variable ci remains unchanged".
  EXPECT_EQ(net.DomainSize(ci), 3);
}

TEST(OperationVariableTest, ValidatesArguments) {
  CpNet net = doc::MakePaperFigure2Net();
  EXPECT_TRUE(CpNetEditor::AddOperationVariable(net, 99, 0, "op", "a", "b")
                  .status()
                  .IsOutOfRange());
  EXPECT_TRUE(CpNetEditor::AddOperationVariable(net, 0, 9, "op", "a", "b")
                  .status()
                  .IsOutOfRange());
}

TEST(ViewerOverlayTest, PrivateOperationVariable) {
  CpNet net = doc::MakePaperFigure2Net();
  ViewerOverlay overlay(&net);
  VarId op = overlay.AddOperationVariable(/*base_target=*/2,
                                          /*trigger=*/0, "c3.seg",
                                          "segmented", "flat")
                 .value();
  EXPECT_EQ(overlay.size(), 1u);
  // "the original CP-network should not be duplicated": base unchanged.
  EXPECT_EQ(net.num_variables(), 5u);

  Assignment base = net.OptimalOutcome().value();  // c3 = 1 here
  Assignment overlay_config = overlay.OptimalCompletion(base).value();
  EXPECT_EQ(overlay_config.Get(op), 1);  // flat: trigger not met

  Assignment evidence(net.num_variables());
  evidence.Set(2, 0);
  Assignment base2 = net.OptimalCompletion(evidence).value();
  EXPECT_EQ(overlay.OptimalCompletion(base2).value().Get(op), 0);
}

TEST(ViewerOverlayTest, ChainedOverlayVariables) {
  CpNet net = doc::MakePaperFigure2Net();
  ViewerOverlay overlay(&net);
  VarId first = overlay
                    .AddVariable("private1", {"on", "off"},
                                 {{false, 0}},  // parent: base c1
                                 {{0, 1}, {1, 0}})
                    .value();
  VarId second = overlay
                     .AddVariable("private2", {"x", "y"},
                                  {{true, first}},  // parent: overlay var
                                  {{1, 0}, {0, 1}})
                     .value();
  Assignment base = net.OptimalOutcome().value();  // c1 = 0
  Assignment config = overlay.OptimalCompletion(base).value();
  EXPECT_EQ(config.Get(first), 0);   // c1=0 -> on
  EXPECT_EQ(config.Get(second), 1);  // first=on(0) -> y? row 0 -> {1,0}
}

TEST(ViewerOverlayTest, EvidenceRespected) {
  CpNet net = doc::MakePaperFigure2Net();
  ViewerOverlay overlay(&net);
  VarId op =
      overlay.AddOperationVariable(2, 0, "op", "applied", "plain").value();
  Assignment base = net.OptimalOutcome().value();
  Assignment evidence(overlay.size());
  evidence.Set(op, 0);  // viewer insists on the applied form
  EXPECT_EQ(overlay.OptimalCompletion(base, evidence).value().Get(op), 0);
}

TEST(ViewerOverlayTest, ForwardParentRefsRejected) {
  CpNet net = doc::MakePaperFigure2Net();
  ViewerOverlay overlay(&net);
  // Overlay var referencing a not-yet-existing overlay var.
  EXPECT_TRUE(overlay
                  .AddVariable("bad", {"a", "b"}, {{true, 5}},
                               {{0, 1}, {1, 0}})
                  .status()
                  .IsInvalidArgument());
  // Unknown base variable.
  EXPECT_TRUE(overlay
                  .AddVariable("bad2", {"a", "b"}, {{false, 42}},
                               {{0, 1}, {1, 0}})
                  .status()
                  .IsOutOfRange());
  // Wrong number of rankings.
  EXPECT_TRUE(overlay.AddVariable("bad3", {"a", "b"}, {{false, 0}}, {{0, 1}})
                  .status()
                  .IsInvalidArgument());
}

}  // namespace
}  // namespace mmconf::cpnet
