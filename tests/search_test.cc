// The "intelligent retrieval" layer: content-based similar-case lookup
// over stored images/audio and keyword retrieval over stored texts — the
// paper's intro scenario ("consider similar cases... support their views
// with articles from databases").

#include <gtest/gtest.h>

#include "common/rng.h"
#include "media/synthetic.h"
#include "search/descriptors.h"
#include "search/similarity_index.h"
#include "search/text_index.h"

namespace mmconf::search {
namespace {

using media::AudioSignal;
using media::Image;
using storage::DatabaseServer;
using storage::ObjectRef;

TEST(DescriptorTest, ImageDescriptorShape) {
  Rng rng(1);
  Image image = media::MakePhantomCt({64, 64, 3, 2.0}, rng);
  Descriptor descriptor = DescribeImage(image).value();
  ASSERT_EQ(descriptor.size(), static_cast<size_t>(kImageDescriptorDim));
  // Histogram bins sum to 1.
  double histogram_sum = 0;
  for (int b = 0; b < 16; ++b) histogram_sum += descriptor[b];
  EXPECT_NEAR(histogram_sum, 1.0, 1e-9);
  EXPECT_TRUE(DescribeImage(Image()).status().IsInvalidArgument());
}

TEST(DescriptorTest, SelfDistanceIsZero) {
  Rng rng(2);
  Image image = media::MakePhantomCt({64, 64, 3, 2.0}, rng);
  Descriptor descriptor = DescribeImage(image).value();
  EXPECT_DOUBLE_EQ(DescriptorDistance(descriptor, descriptor).value(), 0.0);
  EXPECT_TRUE(
      DescriptorDistance(descriptor, Descriptor{1.0}).status()
          .IsInvalidArgument());
}

TEST(DescriptorTest, SimilarImagesCloserThanDissimilar) {
  Rng rng(3);
  // Two phantoms from the same distribution vs a flat bright image.
  Image a = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
  Image b = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
  Image flat = Image::Create(64, 64, 240).value();
  Descriptor da = DescribeImage(a).value();
  Descriptor db = DescribeImage(b).value();
  Descriptor dflat = DescribeImage(flat).value();
  EXPECT_LT(DescriptorDistance(da, db).value(),
            DescriptorDistance(da, dflat).value());
}

TEST(DescriptorTest, AudioDescriptorSeparatesClasses) {
  Rng rng(4);
  AudioSignal music1 = media::SynthesizeMusic(1.0, 8000, rng);
  AudioSignal music2 = media::SynthesizeMusic(1.0, 8000, rng);
  AudioSignal silence = media::SynthesizeSilence(1.0, 8000, rng);
  Descriptor m1 = DescribeAudio(music1).value();
  Descriptor m2 = DescribeAudio(music2).value();
  Descriptor s = DescribeAudio(silence).value();
  EXPECT_LT(DescriptorDistance(m1, m2).value(),
            DescriptorDistance(m1, s).value());
  EXPECT_TRUE(DescribeAudio(AudioSignal()).status().IsInvalidArgument());
}

class SimilarityTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.RegisterStandardTypes().ok());
    Rng rng(10);
    // Three CT-like phantoms plus one outlier (flat bright disk image).
    for (int i = 0; i < 3; ++i) {
      Image phantom = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
      phantom_refs_.push_back(StoreImage(phantom, "ct"));
    }
    Image outlier = Image::Create(64, 64, 250).value();
    outlier_ref_ = StoreImage(outlier, "calibration");
    index_ = std::make_unique<SimilarityIndex>(&db_);
    ASSERT_EQ(index_->AddAllImages().value(), 4);
  }

  ObjectRef StoreImage(const Image& image, const std::string& label) {
    return db_
        .Store("Image",
               {{"FLD_QUALITY", int64_t{90}},
                {"FLD_TEXTS", std::string(label)},
                {"FLD_CM", std::string("t")}},
               {{"FLD_DATA", image.Encode()}})
        .value();
  }

  DatabaseServer db_;
  std::vector<ObjectRef> phantom_refs_;
  ObjectRef outlier_ref_;
  std::unique_ptr<SimilarityIndex> index_;
};

TEST_F(SimilarityTest, SimilarCasesRankAboveOutlier) {
  std::vector<SimilarityHit> hits =
      index_->QuerySimilarTo(phantom_refs_[0], 3).value();
  ASSERT_EQ(hits.size(), 3u);
  // The outlier must rank last among the three others.
  EXPECT_EQ(hits.back().ref, outlier_ref_);
  // Distances ascend.
  EXPECT_LE(hits[0].distance, hits[1].distance);
  EXPECT_LE(hits[1].distance, hits[2].distance);
}

TEST_F(SimilarityTest, QueryByExternalImage) {
  Rng rng(77);
  Image query = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
  std::vector<SimilarityHit> hits = index_->QueryImage(query, 2).value();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_NE(hits[0].ref, outlier_ref_);
  EXPECT_NE(hits[1].ref, outlier_ref_);
}

TEST_F(SimilarityTest, RemoveAndValidation) {
  EXPECT_TRUE(index_->Remove(outlier_ref_).ok());
  EXPECT_TRUE(index_->Remove(outlier_ref_).IsNotFound());
  EXPECT_EQ(index_->size(), 3u);
  EXPECT_TRUE(index_->QuerySimilarTo(outlier_ref_, 1).status().IsNotFound());
  Rng rng(5);
  Image query = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
  EXPECT_TRUE(index_->QueryImage(query, 0).status().IsInvalidArgument());
}

TEST_F(SimilarityTest, AudioIndexing) {
  Rng rng(20);
  auto speakers = media::MakeSpeakers(2, rng);
  media::Word word{0, {1, 2, 3}};
  AudioSignal speech = media::Synthesize(word, speakers[0], {}, rng);
  AudioSignal music = media::SynthesizeMusic(1.0, 8000, rng);
  ObjectRef speech_ref =
      db_.Store("Audio",
                {{"FLD_FILENAME", std::string("speech.pcm")},
                 {"FLD_SECTORS", int64_t{1}}},
                {{"FLD_DATA", speech.Encode()}})
          .value();
  ObjectRef music_ref =
      db_.Store("Audio",
                {{"FLD_FILENAME", std::string("music.pcm")},
                 {"FLD_SECTORS", int64_t{1}}},
                {{"FLD_DATA", music.Encode()}})
          .value();
  ASSERT_EQ(index_->AddAllAudio().value(), 2);
  // A second utterance by the same speaker retrieves the speech object
  // first.
  AudioSignal query =
      media::Synthesize(media::Word{1, {2, 3, 1}}, speakers[0], {}, rng);
  std::vector<SimilarityHit> hits = index_->QueryAudio(query, 2).value();
  ASSERT_EQ(hits.size(), 2u);
  EXPECT_EQ(hits[0].ref, speech_ref);
  EXPECT_EQ(hits[1].ref, music_ref);
}

TEST(TokenizeTest, LowercasesAndSplits) {
  std::vector<std::string> tokens =
      Tokenize("The CT shows a 3cm Lesion -- URGENT!");
  ASSERT_EQ(tokens.size(), 7u);
  EXPECT_EQ(tokens[0], "the");
  EXPECT_EQ(tokens[1], "ct");
  EXPECT_EQ(tokens[4], "3cm");
  EXPECT_EQ(tokens[6], "urgent");
  EXPECT_TRUE(Tokenize("...!!!").empty());
}

class TextIndexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.RegisterStandardTypes().ok());
    lesion_ref_ = StoreText(
        "CT report: a lesion in the left lung, lesion margins irregular");
    normal_ref_ = StoreText("CT report: lungs clear, no abnormality");
    cardio_ref_ = StoreText("Echo report: ejection fraction normal");
    index_ = std::make_unique<TextIndex>(&db_);
    ASSERT_EQ(index_->AddAllTexts().value(), 3);
  }

  ObjectRef StoreText(const std::string& text) {
    return db_
        .Store("Text", {{"FLD_TITLE", std::string("report")}},
               {{"FLD_DATA", Bytes(text.begin(), text.end())}})
        .value();
  }

  DatabaseServer db_;
  ObjectRef lesion_ref_, normal_ref_, cardio_ref_;
  std::unique_ptr<TextIndex> index_;
};

TEST_F(TextIndexTest, RankedQueryFindsRelevantReport) {
  std::vector<TextHit> hits = index_->Query("lung lesion", 3).value();
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].ref, lesion_ref_);
  // The cardio report contains neither term.
  for (const TextHit& hit : hits) EXPECT_FALSE(hit.ref == cardio_ref_);
}

TEST_F(TextIndexTest, IdfDownweightsCommonTerms) {
  // "report" appears everywhere; "lesion" is rare. A lesion query must
  // outscore a report query on the lesion document.
  std::vector<TextHit> lesion_hits = index_->Query("lesion", 3).value();
  std::vector<TextHit> report_hits = index_->Query("report", 3).value();
  ASSERT_FALSE(lesion_hits.empty());
  ASSERT_EQ(report_hits.size(), 3u);
  EXPECT_EQ(lesion_hits[0].ref, lesion_ref_);
  EXPECT_GT(lesion_hits[0].score, report_hits[0].score);
}

TEST_F(TextIndexTest, BooleanAndQuery) {
  std::vector<ObjectRef> both = index_->QueryAll("ct lesion").value();
  ASSERT_EQ(both.size(), 1u);
  EXPECT_EQ(both[0], lesion_ref_);
  EXPECT_EQ(index_->QueryAll("report").value().size(), 3u);
  EXPECT_TRUE(index_->QueryAll("unicorn").value().empty());
  EXPECT_TRUE(index_->QueryAll("...").status().IsInvalidArgument());
}

TEST_F(TextIndexTest, RemoveAndReindex) {
  ASSERT_TRUE(index_->Remove(lesion_ref_).ok());
  EXPECT_TRUE(index_->Query("lesion", 3).value().empty());
  EXPECT_EQ(index_->num_documents(), 2u);
  // Re-adding after a content change picks up the new text.
  std::string updated = "CT report: lesion resolved after treatment";
  ASSERT_TRUE(db_.Modify(lesion_ref_, {},
                         {{"FLD_DATA",
                           Bytes(updated.begin(), updated.end())}})
                  .ok());
  ASSERT_TRUE(index_->AddText(lesion_ref_).ok());
  std::vector<TextHit> hits = index_->Query("resolved", 1).value();
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0].ref, lesion_ref_);
}

TEST_F(TextIndexTest, QueryValidation) {
  EXPECT_TRUE(index_->Query("lesion", 0).status().IsInvalidArgument());
  EXPECT_TRUE(index_->Query("", 3).status().IsInvalidArgument());
}

}  // namespace
}  // namespace mmconf::search
