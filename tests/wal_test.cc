#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/rng.h"
#include "storage/wal.h"

namespace mmconf::storage {
namespace {

Bytes Payload(const std::string& s) { return Bytes(s.begin(), s.end()); }

/// Collects (op, payload) pairs from a replay.
struct Applied {
  std::vector<std::pair<WalOp, Bytes>> records;

  Status Apply(WalOp op, const Bytes& payload) {
    records.emplace_back(op, payload);
    return Status::OK();
  }
};

TEST(WalTest, AppendBuffersUntilSync) {
  Clock clock;
  WriteAheadLog wal(&clock);
  EXPECT_EQ(wal.Append(WalOp::kStore, Payload("a")), 1u);
  EXPECT_EQ(wal.Append(WalOp::kModify, Payload("b")), 2u);
  EXPECT_EQ(wal.durable_records(), 0u);
  EXPECT_EQ(wal.pending_records(), 2u);
  EXPECT_TRUE(wal.durable().empty());
  wal.Sync();
  EXPECT_EQ(wal.durable_records(), 2u);
  EXPECT_EQ(wal.pending_records(), 0u);
  EXPECT_EQ(wal.sync_count(), 1u);
  EXPECT_EQ(wal.sync_points().back(),
            (WalSyncPoint{wal.durable().size(), 2}));
}

TEST(WalTest, ReplayReproducesOpsAndPayloads) {
  Clock clock;
  WriteAheadLog wal(&clock);
  wal.Append(WalOp::kRegisterStandardTypes, {});
  wal.Append(WalOp::kStore, Payload("hello"));
  wal.Append(WalOp::kDelete, Payload("bye"));
  wal.Sync();
  Applied applied;
  WalReplayStats stats =
      WriteAheadLog::Replay(wal.durable(),
                            [&](WalOp op, const Bytes& payload) {
                              return applied.Apply(op, payload);
                            })
          .value();
  EXPECT_TRUE(stats.clean_end);
  EXPECT_EQ(stats.records_applied, 3u);
  EXPECT_EQ(stats.bytes_scanned, wal.durable().size());
  ASSERT_EQ(applied.records.size(), 3u);
  EXPECT_EQ(applied.records[0].first, WalOp::kRegisterStandardTypes);
  EXPECT_TRUE(applied.records[0].second.empty());
  EXPECT_EQ(applied.records[1].first, WalOp::kStore);
  EXPECT_EQ(applied.records[1].second, Payload("hello"));
  EXPECT_EQ(applied.records[2].first, WalOp::kDelete);
  EXPECT_EQ(applied.records[2].second, Payload("bye"));
}

TEST(WalTest, GroupCommitOnBytesThreshold) {
  Clock clock;
  WriteAheadLog::Options options;
  options.group_commit_bytes = 64;
  options.group_commit_interval_micros = 1'000'000'000;
  WriteAheadLog wal(&clock, options);
  // Each record is 8 bytes of framing + 9 of body + payload; two 32-byte
  // payloads cross the 64-byte threshold.
  wal.Append(WalOp::kStore, Bytes(32, 0xab));
  EXPECT_EQ(wal.sync_count(), 0u);
  wal.Append(WalOp::kStore, Bytes(32, 0xcd));
  EXPECT_EQ(wal.sync_count(), 1u);
  EXPECT_EQ(wal.durable_records(), 2u);
  EXPECT_EQ(wal.pending_records(), 0u);
}

TEST(WalTest, GroupCommitOnSimulatedInterval) {
  Clock clock;
  WriteAheadLog::Options options;
  options.group_commit_interval_micros = 5000;
  WriteAheadLog wal(&clock, options);
  wal.Append(WalOp::kStore, Payload("x"));
  EXPECT_EQ(wal.sync_count(), 0u);
  clock.AdvanceMicros(4999);
  wal.Append(WalOp::kStore, Payload("y"));
  EXPECT_EQ(wal.sync_count(), 0u);
  clock.AdvanceMicros(1);
  wal.Append(WalOp::kStore, Payload("z"));
  EXPECT_EQ(wal.sync_count(), 1u);
  EXPECT_EQ(wal.durable_records(), 3u);
}

TEST(WalTest, ReplayStopsAtTornHeader) {
  Clock clock;
  WriteAheadLog wal(&clock);
  wal.Append(WalOp::kStore, Payload("one"));
  wal.Append(WalOp::kStore, Payload("two"));
  wal.Sync();
  Bytes log = wal.durable();
  // Leave record 1 intact plus 3 stray bytes of record 2's header.
  WalReplayStats probe = WriteAheadLog::Scan(log);
  ASSERT_EQ(probe.records_applied, 2u);
  // Find the first record's end by scanning its frame.
  size_t record1_end = 8 + (static_cast<size_t>(log[4]) |
                            static_cast<size_t>(log[5]) << 8 |
                            static_cast<size_t>(log[6]) << 16 |
                            static_cast<size_t>(log[7]) << 24);
  ASSERT_LT(record1_end + 3, log.size());
  Bytes torn(log.begin(), log.begin() + record1_end + 3);
  WalReplayStats stats = WriteAheadLog::Scan(torn);
  EXPECT_FALSE(stats.clean_end);
  EXPECT_EQ(stats.stop_reason, "torn record header");
  EXPECT_EQ(stats.records_applied, 1u);
  EXPECT_EQ(stats.bytes_scanned, record1_end);
}

TEST(WalTest, ReplayStopsAtTornBody) {
  Clock clock;
  WriteAheadLog wal(&clock);
  wal.Append(WalOp::kStore, Payload("payload-payload-payload"));
  wal.Sync();
  Bytes log = wal.durable();
  Bytes torn(log.begin(), log.end() - 5);
  WalReplayStats stats = WriteAheadLog::Scan(torn);
  EXPECT_FALSE(stats.clean_end);
  EXPECT_EQ(stats.stop_reason, "torn record body");
  EXPECT_EQ(stats.records_applied, 0u);
}

TEST(WalTest, ReplayStopsAtChecksumMismatch) {
  Clock clock;
  WriteAheadLog wal(&clock);
  wal.Append(WalOp::kStore, Payload("first"));
  wal.Append(WalOp::kStore, Payload("second"));
  wal.Sync();
  Bytes log = wal.durable();
  log[log.size() - 1] ^= 0xff;  // damage the final record's payload
  WalReplayStats stats = WriteAheadLog::Scan(log);
  EXPECT_FALSE(stats.clean_end);
  EXPECT_EQ(stats.stop_reason, "record checksum mismatch");
  EXPECT_EQ(stats.records_applied, 1u);
}

TEST(WalTest, ReplayRejectsLsnGap) {
  Clock clock;
  WriteAheadLog a(&clock);
  a.Append(WalOp::kStore, Payload("one"));
  a.Append(WalOp::kStore, Payload("two"));
  a.Sync();
  WriteAheadLog b(&clock);
  b.Append(WalOp::kStore, Payload("one"));
  b.Append(WalOp::kStore, Payload("two"));
  b.Append(WalOp::kStore, Payload("three"));
  b.Sync();
  // Splice: log a's two records followed by log b's third record (lsn 3
  // is next, so instead splice b's records 1..3 after a's 1..2 — lsn 1
  // repeats, which is a gap from the expected 3).
  Bytes spliced = a.durable();
  spliced.insert(spliced.end(), b.durable().begin(), b.durable().end());
  WalReplayStats stats = WriteAheadLog::Scan(spliced);
  EXPECT_FALSE(stats.clean_end);
  EXPECT_EQ(stats.stop_reason, "lsn gap");
  EXPECT_EQ(stats.records_applied, 2u);
}

TEST(WalTest, ReplayPropagatesApplyError) {
  Clock clock;
  WriteAheadLog wal(&clock);
  wal.Append(WalOp::kStore, Payload("boom"));
  wal.Sync();
  Result<WalReplayStats> result = WriteAheadLog::Replay(
      wal.durable(),
      [](WalOp, const Bytes&) { return Status::Corruption("apply failed"); });
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(WalTest, TruncateRestartsHistory) {
  Clock clock;
  WriteAheadLog wal(&clock);
  wal.Append(WalOp::kStore, Payload("old"));
  wal.Sync();
  wal.Truncate();
  EXPECT_TRUE(wal.durable().empty());
  EXPECT_EQ(wal.total_records(), 0u);
  EXPECT_EQ(wal.sync_count(), 0u);
  EXPECT_EQ(wal.Append(WalOp::kStore, Payload("new")), 1u);
}

TEST(WalTest, RestoreDurableResumesLsn) {
  Clock clock;
  WriteAheadLog wal(&clock);
  wal.Append(WalOp::kStore, Payload("a"));
  wal.Append(WalOp::kStore, Payload("b"));
  wal.Sync();
  Bytes survived = wal.durable();
  WriteAheadLog recovered(&clock);
  recovered.RestoreDurable(survived, 2);
  EXPECT_EQ(recovered.durable_records(), 2u);
  EXPECT_EQ(recovered.Append(WalOp::kStore, Payload("c")), 3u);
  recovered.Sync();
  WalReplayStats stats = WriteAheadLog::Scan(recovered.durable());
  EXPECT_TRUE(stats.clean_end);
  EXPECT_EQ(stats.records_applied, 3u);
}

TEST(WalTest, ReplayStopsAtUnknownOp) {
  Clock clock;
  WriteAheadLog wal(&clock);
  wal.Append(WalOp::kStore, Payload("good"));
  wal.Append(WalOp::kStore, Payload("bad-op"));
  wal.Sync();
  Bytes log = wal.durable();
  // Rewrite record 2's op byte to a value past kDelete and re-checksum
  // the body, so the frame is valid but the op is from the future (a
  // log written by a newer incompatible version).
  size_t record1_end = 8 + (static_cast<size_t>(log[4]) |
                            static_cast<size_t>(log[5]) << 8 |
                            static_cast<size_t>(log[6]) << 16 |
                            static_cast<size_t>(log[7]) << 24);
  size_t length2 = static_cast<size_t>(log[record1_end + 4]) |
                   static_cast<size_t>(log[record1_end + 5]) << 8 |
                   static_cast<size_t>(log[record1_end + 6]) << 16 |
                   static_cast<size_t>(log[record1_end + 7]) << 24;
  log[record1_end + 8 + 8] = 0x7f;  // op byte: after 8B header + u64 lsn
  uint32_t crc = Crc32c(log.data() + record1_end + 8, length2);
  for (int i = 0; i < 4; ++i) {
    log[record1_end + i] = static_cast<uint8_t>(crc >> (8 * i));
  }
  WalReplayStats stats = WriteAheadLog::Scan(log);
  EXPECT_FALSE(stats.clean_end);
  EXPECT_EQ(stats.stop_reason, "unknown op");
  EXPECT_EQ(stats.records_applied, 1u);
  EXPECT_EQ(stats.bytes_scanned, record1_end);
}

TEST(WalTest, ZeroLengthPayloadsRoundTrip) {
  Clock clock;
  WriteAheadLog wal(&clock);
  // Every op frames and replays a zero-length payload: the record is
  // pure header + lsn + op, nothing else.
  for (WalOp op : {WalOp::kRegisterStandardTypes, WalOp::kRegisterType,
                   WalOp::kStore, WalOp::kModify, WalOp::kDelete}) {
    wal.Append(op, {});
  }
  wal.Sync();
  Applied applied;
  WalReplayStats stats =
      WriteAheadLog::Replay(wal.durable(),
                            [&](WalOp op, const Bytes& payload) {
                              return applied.Apply(op, payload);
                            })
          .value();
  EXPECT_TRUE(stats.clean_end);
  ASSERT_EQ(applied.records.size(), 5u);
  for (size_t i = 0; i < applied.records.size(); ++i) {
    EXPECT_TRUE(applied.records[i].second.empty()) << "record " << i;
  }
  EXPECT_EQ(applied.records[0].first, WalOp::kRegisterStandardTypes);
  EXPECT_EQ(applied.records[4].first, WalOp::kDelete);
  // Zero-length records still checksum: damaging one stops the scan.
  Bytes log = wal.durable();
  log[0] ^= 0x01;
  WalReplayStats damaged = WriteAheadLog::Scan(log);
  EXPECT_FALSE(damaged.clean_end);
  EXPECT_EQ(damaged.stop_reason, "record checksum mismatch");
  EXPECT_EQ(damaged.records_applied, 0u);
}

TEST(WalTest, RestoreDurablePreservesSyncBoundaries) {
  Clock clock;
  WriteAheadLog wal(&clock);
  for (int batch = 0; batch < 3; ++batch) {
    wal.Append(WalOp::kStore, Bytes(40, static_cast<uint8_t>(batch)));
    wal.Append(WalOp::kStore, Bytes(40, static_cast<uint8_t>(batch)));
    wal.Sync();
  }
  std::vector<WalSyncPoint> points = wal.sync_points();
  ASSERT_EQ(points.size(), 3u);
  // Restoring the full image with its boundary history keeps the exact
  // batch structure — what replication shipping batches on.
  WriteAheadLog full(&clock);
  full.RestoreDurable(wal.durable(), wal.durable_records(), points);
  EXPECT_EQ(full.sync_points(), points);
  EXPECT_EQ(full.sync_count(), 3u);
  // A crash that rolled back to the second commit invalidates only the
  // boundary suffix: points past the surviving image are dropped.
  Bytes prefix(wal.durable().begin(),
               wal.durable().begin() + points[1].bytes);
  WriteAheadLog rolled(&clock);
  rolled.RestoreDurable(prefix, points[1].records, points);
  ASSERT_EQ(rolled.sync_count(), 2u);
  EXPECT_EQ(rolled.sync_points()[0], points[0]);
  EXPECT_EQ(rolled.sync_points()[1], points[1]);
  // Without history the image collapses into a single boundary.
  WriteAheadLog flat(&clock);
  flat.RestoreDurable(wal.durable(), wal.durable_records());
  EXPECT_EQ(flat.sync_count(), 1u);
  EXPECT_EQ(flat.sync_points().back(),
            (WalSyncPoint{wal.durable().size(), wal.durable_records()}));
}

TEST(WalCrashInjectorTest, SameSeedSameDamage) {
  Clock clock;
  WriteAheadLog wal(&clock);
  Rng rng(11);
  for (int i = 0; i < 40; ++i) {
    wal.Append(WalOp::kStore, Bytes(rng.NextBelow(200), 0x5a));
    if (i % 7 == 6) wal.Sync();
  }
  for (WalCrashKind kind :
       {WalCrashKind::kTornTail, WalCrashKind::kPartialPageWrite,
        WalCrashKind::kFsyncLostSuffix}) {
    WalCrashInjector a(1234);
    WalCrashInjector b(1234);
    WalCrashImage ia = a.Crash(wal, kind);
    WalCrashImage ib = b.Crash(wal, kind);
    EXPECT_EQ(ia.log, ib.log) << WalCrashKindToString(kind);
    EXPECT_EQ(ia.clean_records, ib.clean_records);
    WalCrashInjector c(4321);
    WalCrashImage ic = c.Crash(wal, kind);
    // A different seed is allowed to coincide, but clean_records must
    // always agree with a fresh scan of the image.
    EXPECT_EQ(ic.clean_records,
              WriteAheadLog::Scan(ic.log).records_applied);
  }
}

TEST(WalCrashInjectorTest, TornTailKeepsDurablePrefix) {
  Clock clock;
  WriteAheadLog wal(&clock);
  for (int i = 0; i < 10; ++i) wal.Append(WalOp::kStore, Bytes(50, 0x11));
  wal.Sync();
  for (int i = 0; i < 5; ++i) wal.Append(WalOp::kStore, Bytes(50, 0x22));
  WalCrashInjector injector(99);
  WalCrashImage image = injector.Crash(wal, WalCrashKind::kTornTail);
  // The synced records always survive; at most the pending batch tears.
  EXPECT_GE(image.clean_records, wal.durable_records());
  EXPECT_LE(image.clean_records, wal.total_records());
  EXPECT_TRUE(std::equal(wal.durable().begin(), wal.durable().end(),
                         image.log.begin()));
  EXPECT_EQ(image.clean_records,
            WriteAheadLog::Scan(image.log).records_applied);
}

TEST(WalCrashInjectorTest, FsyncLostSuffixLandsOnSyncBoundary) {
  Clock clock;
  WriteAheadLog wal(&clock);
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 3; ++i) wal.Append(WalOp::kStore, Bytes(30, 0x33));
    wal.Sync();
  }
  ASSERT_EQ(wal.sync_count(), 4u);
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    WalCrashInjector injector(seed);
    WalCrashImage image = injector.Crash(wal, WalCrashKind::kFsyncLostSuffix);
    WalReplayStats stats = WriteAheadLog::Scan(image.log);
    // A lying fsync rolls back to a whole group commit: the image is a
    // clean log ending exactly at a sync point.
    EXPECT_TRUE(stats.clean_end);
    EXPECT_EQ(stats.records_applied % 3, 0u);
    EXPECT_EQ(image.clean_records, stats.records_applied);
  }
}

TEST(WalCrashInjectorTest, PartialPageDamagesOnlyLastPage) {
  Clock clock;
  WriteAheadLog wal(&clock);
  // Build an image well past one 4KB page.
  for (int i = 0; i < 60; ++i) wal.Append(WalOp::kStore, Bytes(120, 0x44));
  wal.Sync();
  Bytes full = wal.FullImage();
  ASSERT_GT(full.size(), WalCrashInjector::kPageSize);
  WalCrashInjector injector(7);
  WalCrashImage image = injector.Crash(wal, WalCrashKind::kPartialPageWrite);
  ASSERT_EQ(image.log.size(), full.size());
  size_t last_page_begin =
      (full.size() - 1) / WalCrashInjector::kPageSize *
      WalCrashInjector::kPageSize;
  EXPECT_TRUE(std::equal(full.begin(), full.begin() + last_page_begin,
                         image.log.begin()));
  EXPECT_EQ(image.clean_records,
            WriteAheadLog::Scan(image.log).records_applied);
  EXPECT_LE(image.clean_records, wal.total_records());
}

}  // namespace
}  // namespace mmconf::storage
