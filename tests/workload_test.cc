// Tests for src/workload/: generator determinism (the seed-replay
// contract CI relies on), scenario shapes (flash crowds, handoffs,
// diurnal density), context evidence collapse, the timeline document
// pattern, and chaos-run determinism down to byte-identical metrics
// snapshots.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "workload/chaos.h"
#include "workload/context.h"
#include "workload/generator.h"
#include "workload/timeline.h"
#include "workload/trace.h"

namespace mmconf::workload {
namespace {

GeneratorOptions SmallOptions(ScenarioMix mix) {
  GeneratorOptions options;
  options.mix = mix;
  options.rooms = 2;
  options.clients = 8;
  options.duration_micros = 8'000'000;
  return options;
}

TEST(WorkloadGeneratorTest, SameSeedYieldsByteIdenticalTrace) {
  for (ScenarioMix mix : {ScenarioMix::kLecture, ScenarioMix::kConsult,
                          ScenarioMix::kBrowse, ScenarioMix::kMixed}) {
    WorkloadTrace a = WorkloadGenerator(42, SmallOptions(mix)).Generate();
    WorkloadTrace b = WorkloadGenerator(42, SmallOptions(mix)).Generate();
    EXPECT_EQ(a.ToText(), b.ToText())
        << "mix " << ScenarioMixToString(mix) << " not deterministic";
    EXPECT_FALSE(a.events.empty());
  }
}

TEST(WorkloadGeneratorTest, DifferentSeedsDiverge) {
  WorkloadTrace a =
      WorkloadGenerator(1, SmallOptions(ScenarioMix::kConsult)).Generate();
  WorkloadTrace b =
      WorkloadGenerator(2, SmallOptions(ScenarioMix::kConsult)).Generate();
  EXPECT_NE(a.ToText(), b.ToText());
}

TEST(WorkloadGeneratorTest, TraceIsTimeOrdered) {
  WorkloadTrace trace =
      WorkloadGenerator(7, SmallOptions(ScenarioMix::kMixed)).Generate();
  for (size_t i = 1; i < trace.events.size(); ++i) {
    EXPECT_LE(trace.events[i - 1].at, trace.events[i].at) << "index " << i;
  }
}

TEST(WorkloadGeneratorTest, LectureHasFlashCrowdAndHandoff) {
  GeneratorOptions options = SmallOptions(ScenarioMix::kLecture);
  options.rooms = 1;
  WorkloadTrace trace = WorkloadGenerator(3, options).Generate();

  MicrosT open_at = -1;
  size_t early_joins = 0, admits = 0, frames = 0, leaves = 0;
  bool hosted = false, handoff = false, migrated = false;
  for (const WorkloadEvent& e : trace.events) {
    switch (e.kind) {
      case EventKind::kOpenRoom:
        open_at = e.at;
        EXPECT_EQ(e.a, 1u) << "lecture rooms open on timeline documents";
        break;
      case EventKind::kJoin:
        if (open_at >= 0 && e.at <= open_at + 300'000) ++early_joins;
        break;
      case EventKind::kHostBroadcast:
        hosted = true;
        EXPECT_GT(e.a, 0u);
        break;
      case EventKind::kAdmitViewers:
        ++admits;
        break;
      case EventKind::kPushFrame:
        ++frames;
        break;
      case EventKind::kBroadcast:
        if (e.presentation == "handoff") handoff = true;
        break;
      case EventKind::kMigrateRoom:
        migrated = true;
        break;
      case EventKind::kLeave:
        ++leaves;
        break;
      default:
        break;
    }
  }
  // Flash crowd: most of the audience piles in within 300ms of open.
  EXPECT_GE(early_joins, 4u);
  EXPECT_TRUE(hosted);
  EXPECT_GE(admits, 2u);
  EXPECT_GE(frames, 1u);
  EXPECT_TRUE(handoff) << "mid-lecture speaker handoff missing";
  EXPECT_TRUE(migrated);
  // Mass leave after the lecture body.
  EXPECT_GE(leaves, 2u);
}

TEST(WorkloadGeneratorTest, DiurnalCurveDensifiesMidRun) {
  GeneratorOptions options = SmallOptions(ScenarioMix::kConsult);
  options.duration_micros = 12'000'000;
  WorkloadTrace trace = WorkloadGenerator(11, options).Generate();
  // Activity spacing shrinks where the load curve peaks, so the middle
  // third of the run carries more events than the first third.
  const MicrosT third = options.duration_micros / 3;
  size_t first = 0, middle = 0;
  for (const WorkloadEvent& e : trace.events) {
    if (e.at < third) {
      ++first;
    } else if (e.at < 2 * third) {
      ++middle;
    }
  }
  EXPECT_GT(middle, first);
}

TEST(WorkloadGeneratorTest, FaultScheduleCoversNetAndStorage) {
  WorkloadTrace trace =
      WorkloadGenerator(5, SmallOptions(ScenarioMix::kConsult)).Generate();
  size_t flaps = 0, crashes = 0;
  for (const WorkloadEvent& e : trace.events) {
    if (e.kind == EventKind::kLinkFlap) {
      ++flaps;
      EXPECT_GT(e.a, 0u) << "flap without an outage duration";
    }
    if (e.kind == EventKind::kShardCrash) {
      ++crashes;
      EXPECT_LT(e.a, SmallOptions(ScenarioMix::kConsult).storage_shards);
    }
  }
  EXPECT_GE(flaps, 1u);
  EXPECT_EQ(crashes, 2u);
}

TEST(ClientContextTest, EffectiveLevelCapsAndDegrades) {
  ClientContext ctx;
  EXPECT_EQ(EffectiveLevel(ctx), doc::BandwidthLevel::kHigh);
  ctx.device = DeviceClass::kHandheld;
  EXPECT_EQ(EffectiveLevel(ctx), doc::BandwidthLevel::kMedium);
  ctx.focus = FocusState::kBackground;
  EXPECT_EQ(EffectiveLevel(ctx), doc::BandwidthLevel::kLow);
  ctx = {doc::BandwidthLevel::kLow, DeviceClass::kWorkstation,
         FocusState::kBackground};
  EXPECT_EQ(EffectiveLevel(ctx), doc::BandwidthLevel::kLow);
}

TEST(ClientContextTest, RenderingIsCanonical) {
  ClientContext ctx{doc::BandwidthLevel::kMedium, DeviceClass::kLaptop,
                    FocusState::kBackground};
  EXPECT_EQ(ContextToString(ctx), "bw=medium dev=laptop focus=bg");
}

TEST(TimelineTest, DocumentHasScheduledSegments) {
  TimelineOptions options;
  options.segments = 4;
  Result<doc::MultimediaDocument> doc = MakeTimelineDocument(options);
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  std::set<std::string> names;
  for (const auto* component : doc.value().components()) {
    names.insert(component->name());
  }
  for (size_t i = 0; i < options.segments; ++i) {
    EXPECT_TRUE(names.count(TimelineSegmentName(i)))
        << "missing " << TimelineSegmentName(i);
  }
  EXPECT_TRUE(names.count("notes"));
  // Round-trips through the storage encoding.
  Result<doc::MultimediaDocument> decoded =
      doc::MultimediaDocument::Decode(doc.value().Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().Encode(), doc.value().Encode());
}

TEST(TimelineTest, BoundariesAreEvenlySpaced) {
  TimelineOptions options;
  options.segments = 3;
  options.segment_interval_micros = 1'000'000;
  std::vector<MicrosT> boundaries = TimelineBoundaries(options, 500'000);
  ASSERT_EQ(boundaries.size(), 3u);
  EXPECT_EQ(boundaries[0], 500'000);
  EXPECT_EQ(boundaries[1], 1'500'000);
  EXPECT_EQ(boundaries[2], 2'500'000);
}

TEST(ChaosDriverTest, InvariantsHoldUnderFaults) {
  WorkloadTrace trace =
      WorkloadGenerator(1, SmallOptions(ScenarioMix::kConsult)).Generate();
  ChaosDriver driver({});
  Result<ChaosReport> report = driver.Run(trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  const ChaosReport& r = report.value();
  EXPECT_TRUE(r.invariants.AllHeld())
      << (r.invariants.violations.empty()
              ? std::string("no detail")
              : r.invariants.violations.front());
  EXPECT_GT(r.events_applied, 0u);
  EXPECT_EQ(r.shard_crashes, 2u);
  EXPECT_TRUE(r.invariants.storage_recovery_exact);
  EXPECT_TRUE(r.invariants.base_layers_intact);
}

TEST(ChaosDriverTest, SecondRunRejected) {
  WorkloadTrace trace =
      WorkloadGenerator(1, SmallOptions(ScenarioMix::kBrowse)).Generate();
  ChaosDriver driver({});
  ASSERT_TRUE(driver.Run(trace).ok());
  EXPECT_FALSE(driver.Run(trace).ok());
}

TEST(ChaosDriverTest, MetricsSnapshotsAreByteIdenticalAcrossRuns) {
  WorkloadTrace trace =
      WorkloadGenerator(9, SmallOptions(ScenarioMix::kMixed)).Generate();

  obs::MetricsRegistry metrics_a;
  ChaosDriver driver_a({}, &metrics_a);
  Result<ChaosReport> report_a = driver_a.Run(trace);
  ASSERT_TRUE(report_a.ok()) << report_a.status().ToString();

  obs::MetricsRegistry metrics_b;
  ChaosDriver driver_b({}, &metrics_b);
  Result<ChaosReport> report_b = driver_b.Run(trace);
  ASSERT_TRUE(report_b.ok()) << report_b.status().ToString();

  // The whole stack is virtual-time deterministic, so two runs of the
  // same trace agree down to the serialized metrics snapshot.
  EXPECT_EQ(metrics_a.Snapshot().ToJson(), metrics_b.Snapshot().ToJson());
  EXPECT_EQ(report_a.value().events_applied, report_b.value().events_applied);
  EXPECT_EQ(report_a.value().wire_bytes, report_b.value().wire_bytes);
  EXPECT_EQ(report_a.value().end_micros, report_b.value().end_micros);
}

}  // namespace
}  // namespace mmconf::workload
