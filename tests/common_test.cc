#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace mmconf {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::NotFound("blob 7");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsNotFound());
  EXPECT_EQ(status.message(), "blob 7");
  EXPECT_EQ(status.ToString(), "NotFound: blob 7");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::Unimplemented("x").IsUnimplemented());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

TEST(ResultTest, HoldsValue) {
  Result<int> result = 42;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result = Status::NotFound("gone");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
  EXPECT_EQ(result.value_or(-1), -1);
}

Result<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Result<int> QuarterOf(int x) {
  MMCONF_ASSIGN_OR_RETURN(int half, HalfOf(x));
  MMCONF_ASSIGN_OR_RETURN(int quarter, HalfOf(half));
  return quarter;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = QuarterOf(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  Result<int> bad = QuarterOf(6);  // 6/2=3 is odd
  ASSERT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInvalidArgument());
}

TEST(BytesTest, PrimitivesRoundTrip) {
  ByteWriter w;
  w.PutU8(0xab);
  w.PutU16(0xbeef);
  w.PutU32(0xdeadbeef);
  w.PutU64(0x0123456789abcdefULL);
  w.PutI32(-12345);
  w.PutI64(-9876543210LL);
  w.PutF32(3.5f);
  w.PutF64(-2.25);
  w.PutVarint(0);
  w.PutVarint(127);
  w.PutVarint(128);
  w.PutVarint(987654321098765ULL);
  w.PutString("hello world");
  Bytes payload = {1, 2, 3};
  w.PutBytes(payload);

  ByteReader r(w.data());
  EXPECT_EQ(r.GetU8().value(), 0xab);
  EXPECT_EQ(r.GetU16().value(), 0xbeef);
  EXPECT_EQ(r.GetU32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.GetU64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.GetI32().value(), -12345);
  EXPECT_EQ(r.GetI64().value(), -9876543210LL);
  EXPECT_FLOAT_EQ(r.GetF32().value(), 3.5f);
  EXPECT_DOUBLE_EQ(r.GetF64().value(), -2.25);
  EXPECT_EQ(r.GetVarint().value(), 0u);
  EXPECT_EQ(r.GetVarint().value(), 127u);
  EXPECT_EQ(r.GetVarint().value(), 128u);
  EXPECT_EQ(r.GetVarint().value(), 987654321098765ULL);
  EXPECT_EQ(r.GetString().value(), "hello world");
  EXPECT_EQ(r.GetBytes().value(), payload);
  EXPECT_TRUE(r.exhausted());
}

TEST(BytesTest, TruncatedReadsReportCorruption) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(w.data());
  EXPECT_TRUE(r.GetU32().ok());
  EXPECT_TRUE(r.GetU8().status().IsCorruption());
  EXPECT_TRUE(r.GetU64().status().IsCorruption());
  EXPECT_TRUE(r.GetString().status().IsCorruption());
}

TEST(BytesTest, TruncatedStringLengthDetected) {
  ByteWriter w;
  w.PutVarint(100);  // declares 100 bytes, none follow
  ByteReader r(w.data());
  EXPECT_TRUE(r.GetString().status().IsCorruption());
}

TEST(Crc32cTest, KnownProperties) {
  Bytes empty;
  EXPECT_EQ(Crc32c(empty), 0u);
  Bytes a = {'a'};
  Bytes b = {'b'};
  EXPECT_NE(Crc32c(a), Crc32c(b));
  // One flipped bit changes the checksum.
  Bytes data(100, 0x5a);
  uint32_t before = Crc32c(data);
  data[50] ^= 1;
  EXPECT_NE(before, Crc32c(data));
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMomentsRoughlyStandard) {
  Rng rng(42);
  double sum = 0, sum_sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  double mean = sum / n;
  double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(variance, 1.0, 0.1);
}

TEST(RngTest, ShufflePermutes) {
  Rng rng(5);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  EXPECT_NE(v, original);  // With 8 elements a fixed shuffle is safe.
  std::multiset<int> a(v.begin(), v.end());
  std::multiset<int> b(original.begin(), original.end());
  EXPECT_EQ(a, b);
}

TEST(ClockTest, AdvancesMonotonically) {
  Clock clock;
  EXPECT_EQ(clock.NowMicros(), 0);
  clock.AdvanceMicros(1000);
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.AdvanceMicros(-50);  // negative deltas ignored
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.AdvanceTo(500);  // backwards jumps ignored
  EXPECT_EQ(clock.NowMicros(), 1000);
  clock.AdvanceTo(2500);
  EXPECT_EQ(clock.NowMicros(), 2500);
  EXPECT_DOUBLE_EQ(clock.NowSeconds(), 0.0025);
}

}  // namespace
}  // namespace mmconf
