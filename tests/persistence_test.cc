// Save/load of the database tier: ObjectRefs must survive a snapshot
// round trip, blob payloads must be byte-identical, and damage must be
// detected — the durability story the paper delegates to Oracle.

#include <gtest/gtest.h>

#include <cstdio>

#include "common/rng.h"
#include "storage/database.h"

namespace mmconf::storage {
namespace {

Bytes RandomBytes(size_t n, Rng& rng) {
  Bytes data(n);
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

class PersistenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.RegisterStandardTypes().ok());
    Rng rng(42);
    image_payload_ = RandomBytes(50000, rng);
    image_ref_ = db_.Store("Image",
                           {{"FLD_QUALITY", int64_t{90}},
                            {"FLD_TEXTS", std::string("chest ct")},
                            {"FLD_CM", std::string("slice 3")}},
                           {{"FLD_DATA", image_payload_}})
                     .value();
    text_ref_ = db_.Store("Text", {{"FLD_TITLE", std::string("note")}},
                          {{"FLD_DATA", Bytes{1, 2, 3}}})
                    .value();
    // Create then delete an object so restored id allocation has a gap.
    ObjectRef doomed =
        db_.Store("Text", {{"FLD_TITLE", std::string("tmp")}},
                  {{"FLD_DATA", Bytes{9}}})
            .value();
    ASSERT_TRUE(db_.Delete(doomed).ok());
    survivor_ref_ = db_.Store("Text", {{"FLD_TITLE", std::string("keep")}},
                              {{"FLD_DATA", Bytes{4, 5}}})
                        .value();
  }

  DatabaseServer db_;
  Bytes image_payload_;
  ObjectRef image_ref_, text_ref_, survivor_ref_;
};

TEST_F(PersistenceTest, SnapshotRoundTripPreservesRefs) {
  Bytes snapshot = db_.Serialize();
  DatabaseServer restored;
  ASSERT_TRUE(restored.LoadFrom(snapshot).ok());
  EXPECT_EQ(restored.FetchBlob(image_ref_, "FLD_DATA").value(),
            image_payload_);
  ObjectRecord record = restored.FetchRecord(image_ref_).value();
  EXPECT_EQ(std::get<int64_t>(record.fields.at("FLD_QUALITY")), 90);
  EXPECT_EQ(restored.FetchBlob(survivor_ref_, "FLD_DATA").value(),
            (Bytes{4, 5}));
  EXPECT_EQ(restored.List("Text").value().size(), 2u);
}

TEST_F(PersistenceTest, RestoredDatabaseAllocatesFreshIdsAboveOld) {
  Bytes snapshot = db_.Serialize();
  DatabaseServer restored;
  ASSERT_TRUE(restored.LoadFrom(snapshot).ok());
  ObjectRef fresh =
      restored.Store("Text", {{"FLD_TITLE", std::string("new")}},
                     {{"FLD_DATA", Bytes{7}}})
          .value();
  EXPECT_GT(fresh.id, survivor_ref_.id);
  // Old objects still fetchable.
  EXPECT_TRUE(restored.FetchRecord(text_ref_).ok());
}

TEST_F(PersistenceTest, CorruptedSnapshotRejected) {
  Bytes snapshot = db_.Serialize();
  snapshot[snapshot.size() / 2] ^= 0xff;
  DatabaseServer restored;
  EXPECT_TRUE(restored.LoadFrom(snapshot).IsCorruption());
  Bytes truncated(snapshot.begin(), snapshot.begin() + 10);
  DatabaseServer restored2;
  EXPECT_TRUE(restored2.LoadFrom(truncated).IsCorruption());
}

TEST_F(PersistenceTest, LoadIntoNonEmptyDatabaseRefused) {
  Bytes snapshot = db_.Serialize();
  EXPECT_TRUE(db_.LoadFrom(snapshot).IsFailedPrecondition());
}

TEST_F(PersistenceTest, FileRoundTrip) {
  const std::string path = "/tmp/mmconf_persistence_test.db";
  ASSERT_TRUE(db_.SaveToFile(path).ok());
  DatabaseServer restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.FetchBlob(image_ref_, "FLD_DATA").value(),
            image_payload_);
  std::remove(path.c_str());
  DatabaseServer missing;
  EXPECT_TRUE(missing.LoadFromFile(path).IsNotFound());
}

TEST_F(PersistenceTest, SaveIsAtomicOverExistingSnapshot) {
  const std::string path = "/tmp/mmconf_persistence_atomic.db";
  ASSERT_TRUE(db_.SaveToFile(path).ok());
  // Mutate and save again: the file is replaced wholesale.
  ASSERT_TRUE(db_.Modify(text_ref_, {{"FLD_TITLE", std::string("edited")}},
                         {})
                  .ok());
  ASSERT_TRUE(db_.SaveToFile(path).ok());
  DatabaseServer restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(std::get<std::string>(restored.FetchRecord(text_ref_)
                                      .value()
                                      .fields.at("FLD_TITLE")),
            "edited");
  std::remove(path.c_str());
}

TEST_F(PersistenceTest, LoadIgnoresAndRemovesLeftoverTmpFile) {
  const std::string path = "/tmp/mmconf_persistence_leftover.db";
  const std::string tmp = path + ".tmp";
  ASSERT_TRUE(db_.SaveToFile(path).ok());
  // Simulate a save interrupted mid-write: a half-written .tmp next to
  // a good snapshot. Load must use the snapshot and clean up the .tmp.
  FILE* f = std::fopen(tmp.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("torn half-written snapshot", f);
  std::fclose(f);
  DatabaseServer restored;
  ASSERT_TRUE(restored.LoadFromFile(path).ok());
  EXPECT_EQ(restored.FetchBlob(image_ref_, "FLD_DATA").value(),
            image_payload_);
  f = std::fopen(tmp.c_str(), "rb");
  EXPECT_EQ(f, nullptr) << "leftover .tmp should have been removed";
  if (f != nullptr) std::fclose(f);
  std::remove(path.c_str());
}

TEST_F(PersistenceTest, TruncatedSnapshotFileIsCorruptionNotCrash) {
  const std::string path = "/tmp/mmconf_persistence_truncated.db";
  ASSERT_TRUE(db_.SaveToFile(path).ok());
  Bytes full = db_.Serialize();
  // Every truncation point — including cutting into the trailing CRC —
  // must surface as Corruption, never a crash or a partial load.
  for (size_t keep : {size_t{0}, size_t{3}, size_t{7}, full.size() / 2,
                      full.size() - 2}) {
    FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    if (keep > 0) {
      ASSERT_EQ(std::fwrite(full.data(), 1, keep, f), keep);
    }
    std::fclose(f);
    DatabaseServer restored;
    EXPECT_TRUE(restored.LoadFromFile(path).IsCorruption())
        << "truncated to " << keep << " bytes";
  }
  std::remove(path.c_str());
}

TEST(PersistenceEmptyTest, EmptyDatabaseRoundTrips) {
  DatabaseServer db;
  Bytes snapshot = db.Serialize();
  DatabaseServer restored;
  EXPECT_TRUE(restored.LoadFrom(snapshot).ok());
  EXPECT_TRUE(restored.catalog().ListTypes().empty());
}

}  // namespace
}  // namespace mmconf::storage
