#include <gtest/gtest.h>

#include "common/rng.h"
#include "cpnet/assignment.h"
#include "cpnet/brute_force.h"
#include "cpnet/cpnet.h"
#include "cpnet/cpt.h"
#include "cpnet/serialize.h"
#include "doc/builder.h"

namespace mmconf::cpnet {
namespace {

TEST(AssignmentTest, Basics) {
  Assignment a(3);
  EXPECT_FALSE(a.IsComplete());
  EXPECT_EQ(a.AssignedCount(), 0u);
  a.Set(0, 1);
  a.Set(2, 0);
  EXPECT_TRUE(a.IsAssigned(0));
  EXPECT_FALSE(a.IsAssigned(1));
  EXPECT_EQ(a.AssignedCount(), 2u);
  EXPECT_EQ(a.ToString(), "[1 * 0]");
  a.Set(1, 2);
  EXPECT_TRUE(a.IsComplete());
  a.Clear(1);
  EXPECT_FALSE(a.IsComplete());
}

TEST(AssignmentTest, Extends) {
  Assignment full(std::vector<ValueId>{1, 0, 2});
  Assignment evidence(3);
  evidence.Set(0, 1);
  EXPECT_TRUE(full.Extends(evidence));
  evidence.Set(1, 1);
  EXPECT_FALSE(full.Extends(evidence));
  Assignment other_size(2);
  EXPECT_FALSE(full.Extends(other_size));
}

TEST(CptTest, RowIndexingIsMixedRadix) {
  Cpt cpt({2, 3}, 2);
  EXPECT_EQ(cpt.num_rows(), 6u);
  EXPECT_EQ(cpt.RowIndex({0, 0}).value(), 0u);
  EXPECT_EQ(cpt.RowIndex({0, 2}).value(), 2u);
  EXPECT_EQ(cpt.RowIndex({1, 0}).value(), 3u);
  EXPECT_EQ(cpt.RowIndex({1, 2}).value(), 5u);
  for (size_t row = 0; row < cpt.num_rows(); ++row) {
    EXPECT_EQ(cpt.RowIndex(cpt.RowValues(row)).value(), row);
  }
}

TEST(CptTest, RowIndexValidation) {
  Cpt cpt({2}, 2);
  EXPECT_TRUE(cpt.RowIndex({}).status().IsInvalidArgument());
  EXPECT_TRUE(cpt.RowIndex({5}).status().IsOutOfRange());
  EXPECT_TRUE(cpt.RowIndex({-1}).status().IsOutOfRange());
}

TEST(CptTest, RankingMustBePermutation) {
  Cpt cpt({}, 3);
  EXPECT_TRUE(cpt.SetRanking(size_t{0}, {0, 1}).IsInvalidArgument());
  EXPECT_TRUE(cpt.SetRanking(size_t{0}, {0, 1, 1}).IsInvalidArgument());
  EXPECT_TRUE(cpt.SetRanking(size_t{0}, {0, 1, 5}).IsInvalidArgument());
  EXPECT_TRUE(cpt.SetRanking(size_t{0}, {2, 0, 1}).ok());
  EXPECT_EQ(cpt.BestValue(0).value(), 2);
  EXPECT_EQ(cpt.RankOf(0, 1).value(), 2);
}

TEST(CptTest, MissingRowsReported) {
  Cpt cpt({2}, 2);
  EXPECT_FALSE(cpt.IsComplete());
  EXPECT_EQ(cpt.MissingRows().size(), 2u);
  EXPECT_TRUE(cpt.Ranking(0).status().IsFailedPrecondition());
  cpt.SetRanking(size_t{0}, {0, 1}).ok();
  EXPECT_EQ(cpt.MissingRows().size(), 1u);
}

TEST(CpNetTest, ValidateRejectsCycles) {
  CpNet net;
  VarId a = net.AddVariable("a", {"0", "1"});
  VarId b = net.AddVariable("b", {"0", "1"});
  ASSERT_TRUE(net.SetParents(a, {b}).ok());
  ASSERT_TRUE(net.SetParents(b, {a}).ok());
  net.SetPreference(a, {0}, {0, 1}).ok();
  net.SetPreference(a, {1}, {0, 1}).ok();
  net.SetPreference(b, {0}, {0, 1}).ok();
  net.SetPreference(b, {1}, {0, 1}).ok();
  EXPECT_TRUE(net.Validate().IsInvalidArgument());
}

TEST(CpNetTest, ValidateRejectsIncompleteCpt) {
  CpNet net;
  VarId a = net.AddVariable("a", {"0", "1"});
  VarId b = net.AddVariable("b", {"0", "1"});
  net.SetParents(b, {a}).ok();
  net.SetUnconditionalPreference(a, {0, 1}).ok();
  net.SetPreference(b, {0}, {1, 0}).ok();
  // Row for a=1 missing.
  EXPECT_TRUE(net.Validate().IsInvalidArgument());
  net.SetPreference(b, {1}, {0, 1}).ok();
  EXPECT_TRUE(net.Validate().ok());
}

TEST(CpNetTest, SelfAndDuplicateParentsRejected) {
  CpNet net;
  VarId a = net.AddVariable("a", {"0", "1"});
  VarId b = net.AddVariable("b", {"0", "1"});
  EXPECT_TRUE(net.SetParents(a, {a}).IsInvalidArgument());
  EXPECT_TRUE(net.SetParents(a, {b, b}).IsInvalidArgument());
}

TEST(CpNetTest, QueriesRequireValidation) {
  CpNet net;
  net.AddVariable("a", {"0", "1"});
  EXPECT_TRUE(net.OptimalOutcome().status().IsFailedPrecondition());
  EXPECT_TRUE(net.TopologicalOrder().status().IsFailedPrecondition());
}

// --- The paper's Figure 2 network ---

class Figure2Test : public ::testing::Test {
 protected:
  void SetUp() override { net_ = doc::MakePaperFigure2Net(); }
  CpNet net_;
};

TEST_F(Figure2Test, OptimalOutcomeMatchesHandDerivation) {
  // Sweep: c1 = c1_1 (index 0), c2 = c2_2 (index 1). c1 and c2 disagree
  // in superscript (1 vs 2) -> (c1_1 ^ c2_2) : c3_2 > c3_1, so c3 = 1.
  // c3 = c3_2 -> c4 = c4_2, c5 = c5_2.
  Assignment optimal = net_.OptimalOutcome().value();
  EXPECT_EQ(optimal.Get(0), 0);
  EXPECT_EQ(optimal.Get(1), 1);
  EXPECT_EQ(optimal.Get(2), 1);
  EXPECT_EQ(optimal.Get(3), 1);
  EXPECT_EQ(optimal.Get(4), 1);
  EXPECT_TRUE(net_.IsOptimal(optimal).value());
}

TEST_F(Figure2Test, EvidenceCompletionFollowsCpts) {
  // Pin c2 = c2_1 (index 0): now c1=c1_1, c2=c2_1 agree -> c3 = c3_1 ->
  // c4 = c4_1, c5 = c5_1.
  Assignment evidence(net_.num_variables());
  evidence.Set(1, 0);
  Assignment completion = net_.OptimalCompletion(evidence).value();
  EXPECT_EQ(completion.Get(0), 0);
  EXPECT_EQ(completion.Get(1), 0);
  EXPECT_EQ(completion.Get(2), 0);
  EXPECT_EQ(completion.Get(3), 0);
  EXPECT_EQ(completion.Get(4), 0);
}

TEST_F(Figure2Test, CompletionRespectsAllEvidence) {
  Assignment evidence(net_.num_variables());
  evidence.Set(2, 0);  // force c3 = c3_1 against the flow
  Assignment completion = net_.OptimalCompletion(evidence).value();
  EXPECT_EQ(completion.Get(2), 0);
  // Children follow the forced parent.
  EXPECT_EQ(completion.Get(3), 0);
  EXPECT_EQ(completion.Get(4), 0);
  // Roots keep their unconditional optima.
  EXPECT_EQ(completion.Get(0), 0);
  EXPECT_EQ(completion.Get(1), 1);
}

TEST_F(Figure2Test, BruteForceAgreesOnAllSingleEvidences) {
  for (VarId v = 0; v < static_cast<VarId>(net_.num_variables()); ++v) {
    for (ValueId value = 0; value < net_.DomainSize(v); ++value) {
      Assignment evidence(net_.num_variables());
      evidence.Set(v, value);
      Assignment sweep = net_.OptimalCompletion(evidence).value();
      Assignment brute =
          BruteForceOptimalCompletion(net_, evidence).value();
      EXPECT_EQ(sweep, brute) << "evidence " << evidence.ToString();
    }
  }
}

TEST_F(Figure2Test, DominanceOptimalBeatsWorst) {
  Assignment optimal = net_.OptimalOutcome().value();
  // The "all superscript-2 values flipped" outcome for roots:
  Assignment worst(std::vector<ValueId>{1, 0, 0, 1, 1});
  EXPECT_EQ(DominanceQuery(net_, optimal, worst).value(),
            Dominance::kDominates);
  EXPECT_EQ(DominanceQuery(net_, worst, optimal).value(),
            Dominance::kNotDominates);
}

TEST_F(Figure2Test, DominanceIsIrreflexive) {
  Assignment optimal = net_.OptimalOutcome().value();
  EXPECT_EQ(DominanceQuery(net_, optimal, optimal).value(),
            Dominance::kNotDominates);
}

TEST_F(Figure2Test, ImprovingFlipsEmptyOnlyAtOptimum) {
  Assignment optimal = net_.OptimalOutcome().value();
  std::vector<Assignment> all =
      EnumerateCompletions(net_, Assignment(net_.num_variables())).value();
  EXPECT_EQ(all.size(), 32u);
  int flip_free = 0;
  for (const Assignment& outcome : all) {
    if (net_.ImprovingFlips(outcome).value().empty()) {
      ++flip_free;
      EXPECT_EQ(outcome, optimal);
    }
  }
  EXPECT_EQ(flip_free, 1);
}

// --- Property tests on random acyclic networks ---

class RandomNetTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomNetTest, SweepMatchesBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  CpNet net = doc::MakeRandomCpNet(/*num_vars=*/7, /*max_parents=*/2,
                                   /*max_domain=*/3, rng);
  ASSERT_TRUE(net.validated());
  // No evidence.
  EXPECT_EQ(net.OptimalOutcome().value(),
            BruteForceOptimalCompletion(net, Assignment(7)).value());
  // Random partial evidence.
  for (int trial = 0; trial < 5; ++trial) {
    Assignment evidence(net.num_variables());
    for (VarId v = 0; v < 7; ++v) {
      if (rng.Chance(0.3)) {
        evidence.Set(v, static_cast<ValueId>(
                            rng.NextBelow(
                                static_cast<uint64_t>(net.DomainSize(v)))));
      }
    }
    Assignment sweep = net.OptimalCompletion(evidence).value();
    Assignment brute = BruteForceOptimalCompletion(net, evidence).value();
    EXPECT_EQ(sweep, brute) << "seed " << GetParam() << " evidence "
                            << evidence.ToString();
    EXPECT_TRUE(sweep.Extends(evidence));
  }
}

TEST_P(RandomNetTest, OptimalOutcomeDominatesRandomOutcomes) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 1000);
  CpNet net = doc::MakeRandomCpNet(5, 2, 2, rng);
  Assignment optimal = net.OptimalOutcome().value();
  for (int trial = 0; trial < 3; ++trial) {
    Assignment random(net.num_variables());
    for (VarId v = 0; v < 5; ++v) {
      random.Set(v, static_cast<ValueId>(rng.NextBelow(
                        static_cast<uint64_t>(net.DomainSize(v)))));
    }
    if (random == optimal) continue;
    EXPECT_EQ(DominanceQuery(net, optimal, random).value(),
              Dominance::kDominates)
        << "outcome " << random.ToString();
  }
}

TEST_P(RandomNetTest, SerializeRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 2000);
  CpNet net = doc::MakeRandomCpNet(6, 2, 3, rng);
  std::string text = ToText(net);
  CpNet parsed = FromText(text).value();
  ASSERT_EQ(parsed.num_variables(), net.num_variables());
  EXPECT_EQ(parsed.OptimalOutcome().value(), net.OptimalOutcome().value());
  // Round-trip again: text form is a fixed point.
  EXPECT_EQ(ToText(parsed), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomNetTest,
                         ::testing::Range(1, 21));

TEST(SerializeTest, Figure2RoundTrip) {
  CpNet net = doc::MakePaperFigure2Net();
  CpNet parsed = FromText(ToText(net)).value();
  EXPECT_EQ(parsed.OptimalOutcome().value(), net.OptimalOutcome().value());
  EXPECT_EQ(parsed.VariableName(2), "c3");
  EXPECT_EQ(parsed.Parents(2).size(), 2u);
}

TEST(SerializeTest, ParseErrors) {
  EXPECT_TRUE(FromText("").status().IsInvalidArgument());
  EXPECT_TRUE(FromText("cpnet 2\nend\n").status().IsInvalidArgument());
  EXPECT_TRUE(FromText("cpnet 1\nvar a 2 x y\n").status()
                  .IsInvalidArgument());  // no end
  EXPECT_TRUE(FromText("cpnet 1\nvar a 3 x y\nend\n")
                  .status()
                  .IsInvalidArgument());  // count mismatch
  EXPECT_TRUE(FromText("cpnet 1\nvar a 2 x y\nvar a 2 x y\nend\n")
                  .status()
                  .IsInvalidArgument());  // duplicate
  EXPECT_TRUE(FromText("cpnet 1\nvar a 2 x y\nbogus\nend\n")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(Figure2Test, ImprovingSequenceIsAValidProof) {
  Assignment optimal = net_.OptimalOutcome().value();
  Assignment worst(std::vector<ValueId>{1, 0, 0, 1, 1});
  std::vector<Assignment> path =
      FindImprovingSequence(net_, optimal, worst).value();
  ASSERT_GE(path.size(), 2u);
  EXPECT_EQ(path.front(), worst);
  EXPECT_EQ(path.back(), optimal);
  // Every step flips exactly one variable, and to a strictly better
  // value per the CPT (i.e. the flip appears in ImprovingFlips).
  for (size_t i = 1; i < path.size(); ++i) {
    int changed = 0;
    VarId changed_var = -1;
    for (size_t v = 0; v < path[i].size(); ++v) {
      if (path[i].Get(static_cast<VarId>(v)) !=
          path[i - 1].Get(static_cast<VarId>(v))) {
        ++changed;
        changed_var = static_cast<VarId>(v);
      }
    }
    EXPECT_EQ(changed, 1);
    std::vector<Flip> flips = net_.ImprovingFlips(path[i - 1]).value();
    bool legal = false;
    for (const Flip& flip : flips) {
      if (flip.var == changed_var &&
          flip.better == path[i].Get(changed_var)) {
        legal = true;
      }
    }
    EXPECT_TRUE(legal) << "step " << i << " is not an improving flip";
  }
}

TEST_F(Figure2Test, ImprovingSequenceFailsDownhill) {
  Assignment optimal = net_.OptimalOutcome().value();
  Assignment worst(std::vector<ValueId>{1, 0, 0, 1, 1});
  EXPECT_TRUE(FindImprovingSequence(net_, worst, optimal)
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(FindImprovingSequence(net_, optimal, optimal)
                  .status()
                  .IsNotFound());
}

TEST_P(RandomNetTest, ImprovingSequenceAgreesWithDominance) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 3000);
  CpNet net = doc::MakeRandomCpNet(5, 2, 2, rng);
  Assignment a(net.num_variables()), b(net.num_variables());
  for (VarId v = 0; v < 5; ++v) {
    a.Set(v, static_cast<ValueId>(
                 rng.NextBelow(static_cast<uint64_t>(net.DomainSize(v)))));
    b.Set(v, static_cast<ValueId>(
                 rng.NextBelow(static_cast<uint64_t>(net.DomainSize(v)))));
  }
  if (a == b) return;
  Dominance verdict = DominanceQuery(net, a, b).value();
  Result<std::vector<Assignment>> path = FindImprovingSequence(net, a, b);
  if (verdict == Dominance::kDominates) {
    EXPECT_TRUE(path.ok());
  } else if (verdict == Dominance::kNotDominates) {
    EXPECT_TRUE(path.status().IsNotFound());
  }
}

TEST_F(Figure2Test, CompareOutcomesCoversAllRelations) {
  Assignment optimal = net_.OptimalOutcome().value();
  Assignment worst(std::vector<ValueId>{1, 0, 0, 1, 1});
  EXPECT_EQ(CompareOutcomes(net_, optimal, optimal).value(),
            OutcomeRelation::kEqual);
  EXPECT_EQ(CompareOutcomes(net_, optimal, worst).value(),
            OutcomeRelation::kFirstPreferred);
  EXPECT_EQ(CompareOutcomes(net_, worst, optimal).value(),
            OutcomeRelation::kSecondPreferred);
  // Two one-flip-from-optimal outcomes differing in independent root
  // variables are incomparable (CP-nets are partial orders).
  Assignment flip_c1 = optimal;
  flip_c1.Set(0, 1 - optimal.Get(0));
  Assignment flip_c2 = optimal;
  flip_c2.Set(1, 1 - optimal.Get(1));
  EXPECT_EQ(CompareOutcomes(net_, flip_c1, flip_c2).value(),
            OutcomeRelation::kIncomparable);
}

TEST(CpNetTest, ConfigurationSpaceSize) {
  CpNet net;
  net.AddVariable("a", {"0", "1"});
  net.AddVariable("b", {"0", "1", "2"});
  EXPECT_EQ(net.ConfigurationSpaceSize(), 6u);
}

}  // namespace
}  // namespace mmconf::cpnet
