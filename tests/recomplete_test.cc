#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "cpnet/brute_force.h"
#include "cpnet/cpnet.h"
#include "doc/builder.h"

namespace mmconf::cpnet {
namespace {

using mmconf::Rng;

/// Pins to exercise for one random net: a root, a leaf, and a mid-chain
/// variable (when the net is deep enough), plus a couple of random picks.
std::vector<VarId> PinsToTry(const CpNet& net, Rng& rng) {
  std::vector<VarId> pins;
  VarId root = -1, leaf = -1;
  for (size_t v = 0; v < net.num_variables(); ++v) {
    VarId var = static_cast<VarId>(v);
    if (root < 0 && net.Parents(var).empty()) root = var;
    if (net.Children(var).empty()) leaf = var;  // last childless var
  }
  if (root >= 0) pins.push_back(root);
  if (leaf >= 0 && leaf != root) pins.push_back(leaf);
  VarId mid = static_cast<VarId>(net.num_variables() / 2);
  if (mid != root && mid != leaf) pins.push_back(mid);
  pins.push_back(static_cast<VarId>(
      rng.NextBelow(static_cast<uint64_t>(net.num_variables()))));
  return pins;
}

TEST(RecompleteFromTest, AgreesWithOptimalCompletionOnRandomNets) {
  Rng rng(2026);
  for (int trial = 0; trial < 40; ++trial) {
    CpNet net = doc::MakeRandomCpNet(/*num_vars=*/8, /*max_parents=*/3,
                                     /*max_domain=*/3, rng);
    Result<Assignment> base = net.OptimalOutcome();
    ASSERT_TRUE(base.ok()) << base.status().message();
    for (VarId pinned : PinsToTry(net, rng)) {
      for (ValueId value = 0; value < net.DomainSize(pinned); ++value) {
        Result<Assignment> incremental =
            net.RecompleteFrom(*base, pinned, value);
        ASSERT_TRUE(incremental.ok()) << incremental.status().message();
        Assignment evidence(net.num_variables());
        evidence.Set(pinned, value);
        Result<Assignment> full = net.OptimalCompletion(evidence);
        ASSERT_TRUE(full.ok()) << full.status().message();
        EXPECT_EQ(*incremental, *full)
            << "trial " << trial << " pinned " << pinned << "=" << value;
      }
    }
  }
}

TEST(RecompleteFromTest, AgreesWithBruteForceOnSmallNets) {
  Rng rng(7);
  for (int trial = 0; trial < 15; ++trial) {
    CpNet net = doc::MakeRandomCpNet(/*num_vars=*/5, /*max_parents=*/2,
                                     /*max_domain=*/3, rng);
    Result<Assignment> base = net.OptimalOutcome();
    ASSERT_TRUE(base.ok()) << base.status().message();
    Assignment empty(net.num_variables());
    for (size_t v = 0; v < net.num_variables(); ++v) {
      VarId pinned = static_cast<VarId>(v);
      for (ValueId value = 0; value < net.DomainSize(pinned); ++value) {
        Result<Assignment> incremental =
            net.RecompleteFrom(*base, pinned, value);
        ASSERT_TRUE(incremental.ok()) << incremental.status().message();
        Result<Assignment> oracle =
            BruteForceRecompleteFrom(net, empty, pinned, value);
        ASSERT_TRUE(oracle.ok()) << oracle.status().message();
        EXPECT_EQ(*incremental, *oracle)
            << "trial " << trial << " pinned " << pinned << "=" << value;
      }
    }
  }
}

TEST(RecompleteFromTest, DifferentialFuzzAgainstBruteForce) {
  // Differential fuzz of the flat arena + watched propagation against the
  // exhaustive oracle, across net shapes: arity (max parents per
  // variable) x depth (variable count) x domain size. Every single
  // (variable, value) pin goes through the allocation-free RecompleteInto
  // path and must land byte-identical to BruteForceRecompleteFrom.
  Rng rng(20260808);
  for (int max_parents : {1, 2, 4}) {
    for (int num_vars : {3, 5, 7}) {
      for (int max_domain : {2, 4}) {
        for (int trial = 0; trial < 4; ++trial) {
          CpNet net =
              doc::MakeRandomCpNet(num_vars, max_parents, max_domain, rng);
          Result<Assignment> base = net.OptimalOutcome();
          ASSERT_TRUE(base.ok()) << base.status().message();
          Assignment empty(net.num_variables());
          Assignment scratch;
          for (size_t v = 0; v < net.num_variables(); ++v) {
            VarId pinned = static_cast<VarId>(v);
            for (ValueId value = 0; value < net.DomainSize(pinned);
                 ++value) {
              ASSERT_TRUE(
                  net.RecompleteInto(*base, pinned, value, &scratch).ok());
              Result<Assignment> oracle =
                  BruteForceRecompleteFrom(net, empty, pinned, value);
              ASSERT_TRUE(oracle.ok()) << oracle.status().message();
              EXPECT_EQ(scratch, *oracle)
                  << "arity " << max_parents << " vars " << num_vars
                  << " domain " << max_domain << " trial " << trial
                  << " pinned " << pinned << "=" << value;
            }
          }
        }
      }
    }
  }
}

TEST(RecompleteFromTest, HonorsEvidenceOutsideTheCone) {
  // Base computed under evidence is a valid starting point as long as
  // the evidence assigns nothing inside the pinned variable's cone.
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    CpNet net = doc::MakeRandomCpNet(/*num_vars=*/7, /*max_parents=*/2,
                                     /*max_domain=*/3, rng);
    // Pick a pinned variable, then evidence on a variable outside its
    // descendant cone (if none exists, skip the trial).
    VarId pinned = static_cast<VarId>(
        rng.NextBelow(static_cast<uint64_t>(net.num_variables())));
    std::span<const VarId> cone = net.DescendantCone(pinned);
    VarId outside = -1;
    for (size_t v = 0; v < net.num_variables(); ++v) {
      VarId var = static_cast<VarId>(v);
      bool in_cone = false;
      for (VarId c : cone) {
        if (c == var) {
          in_cone = true;
          break;
        }
      }
      if (!in_cone) {
        outside = var;
        break;
      }
    }
    if (outside < 0) continue;
    Assignment evidence(net.num_variables());
    evidence.Set(outside, net.DomainSize(outside) - 1);
    Result<Assignment> base = net.OptimalCompletion(evidence);
    ASSERT_TRUE(base.ok()) << base.status().message();
    for (ValueId value = 0; value < net.DomainSize(pinned); ++value) {
      Result<Assignment> incremental =
          net.RecompleteFrom(*base, pinned, value);
      ASSERT_TRUE(incremental.ok()) << incremental.status().message();
      Assignment extended = evidence;
      extended.Set(pinned, value);
      Result<Assignment> full = net.OptimalCompletion(extended);
      ASSERT_TRUE(full.ok()) << full.status().message();
      EXPECT_EQ(*incremental, *full) << "trial " << trial;
    }
  }
}

TEST(RecompleteFromTest, PaperFigure2Worked) {
  CpNet net = doc::MakePaperFigure2Net();
  Result<Assignment> base = net.OptimalOutcome();
  ASSERT_TRUE(base.ok());
  // Unconstrained optimum of Figure 2: c1=c1^1, c2=c2^2 (disagree), so
  // c3=c3^2, and then c4=c4^2, c5=c5^2.
  EXPECT_EQ(base->Get(0), 0);
  EXPECT_EQ(base->Get(1), 1);
  EXPECT_EQ(base->Get(2), 1);
  // Pin c3 to c3^1: only c4 and c5 (its children) may move.
  Result<Assignment> repinned = net.RecompleteFrom(*base, 2, 0);
  ASSERT_TRUE(repinned.ok());
  EXPECT_EQ(repinned->Get(0), base->Get(0));
  EXPECT_EQ(repinned->Get(1), base->Get(1));
  EXPECT_EQ(repinned->Get(2), 0);
  EXPECT_EQ(repinned->Get(3), 0);  // c3^1 -> c4^1 > c4^2
  EXPECT_EQ(repinned->Get(4), 0);  // c3^1 -> c5^1 > c5^2
}

TEST(RecompleteFromTest, ScratchReuseMatchesFreshResults) {
  Rng rng(5);
  CpNet net = doc::MakeRandomCpNet(/*num_vars=*/10, /*max_parents=*/3,
                                   /*max_domain=*/4, rng);
  Result<Assignment> base = net.OptimalOutcome();
  ASSERT_TRUE(base.ok());
  Assignment scratch(1);  // deliberately wrong-sized; Into must resize
  for (size_t v = 0; v < net.num_variables(); ++v) {
    VarId pinned = static_cast<VarId>(v);
    for (ValueId value = 0; value < net.DomainSize(pinned); ++value) {
      ASSERT_TRUE(net.RecompleteInto(*base, pinned, value, &scratch).ok());
      Result<Assignment> fresh = net.RecompleteFrom(*base, pinned, value);
      ASSERT_TRUE(fresh.ok());
      EXPECT_EQ(scratch, *fresh);
    }
  }
}

TEST(RecompleteFromTest, DescendantConeIsTopologicalAndStartsAtPin) {
  CpNet net = doc::MakePaperFigure2Net();
  // c3's cone is {c3, c4, c5}; c1's cone contains c1, c3, c4, c5.
  std::span<const VarId> c3_cone = net.DescendantCone(2);
  ASSERT_FALSE(c3_cone.empty());
  EXPECT_EQ(c3_cone.front(), 2);
  EXPECT_EQ(c3_cone.size(), 3u);
  std::span<const VarId> c1_cone = net.DescendantCone(0);
  EXPECT_EQ(c1_cone.front(), 0);
  EXPECT_EQ(c1_cone.size(), 4u);
  // Leaves' cones are singletons.
  EXPECT_EQ(net.DescendantCone(4).size(), 1u);
}

TEST(RecompleteFromTest, ErrorCases) {
  CpNet net = doc::MakePaperFigure2Net();
  Result<Assignment> base = net.OptimalOutcome();
  ASSERT_TRUE(base.ok());
  // Out-of-range variable and value.
  EXPECT_TRUE(net.RecompleteFrom(*base, 99, 0).status().IsOutOfRange());
  EXPECT_TRUE(net.RecompleteFrom(*base, 0, 7).status().IsOutOfRange());
  // Incomplete base.
  Assignment partial(net.num_variables());
  EXPECT_FALSE(net.RecompleteFrom(partial, 0, 0).ok());
  // Null out.
  EXPECT_FALSE(net.RecompleteInto(*base, 0, 0, nullptr).ok());
}

TEST(BruteForceRecompleteFromTest, ValidatesArguments) {
  CpNet net = doc::MakePaperFigure2Net();
  Assignment empty(net.num_variables());
  EXPECT_TRUE(
      BruteForceRecompleteFrom(net, empty, 99, 0).status().IsOutOfRange());
  EXPECT_TRUE(
      BruteForceRecompleteFrom(net, empty, 0, 9).status().IsOutOfRange());
  Assignment wrong(2);
  EXPECT_FALSE(BruteForceRecompleteFrom(net, wrong, 0, 0).ok());
}

}  // namespace
}  // namespace mmconf::cpnet
