// Cross-module property tests: randomized invariants that complement the
// per-module unit suites.

#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "compress/layered_codec.h"
#include "cpnet/serialize.h"
#include "doc/builder.h"
#include "media/synthetic.h"
#include "net/network.h"
#include "server/room.h"
#include "storage/blob_store.h"

namespace mmconf {
namespace {

// --- Room convergence: whatever the viewers do, the shared
// configuration always extends the latest pinned choice per component,
// and every configuration the room publishes is a valid optimal
// completion. ---

class RoomConvergenceTest : public ::testing::TestWithParam<int> {};

TEST_P(RoomConvergenceTest, ConfigurationAlwaysHonorsLatestChoices) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  doc::MultimediaDocument document =
      doc::MakeRandomDocument(4, 10, rng).value();
  auto room = std::make_unique<server::Room>("r", std::move(document));
  const char* viewers[] = {"a", "b", "c"};
  for (const char* viewer : viewers) {
    ASSERT_TRUE(room->Join(viewer).ok());
  }
  // Latest pinned value per component, maintained by the test.
  std::map<std::string, std::string> latest;
  const auto& components = room->document().components();
  for (int step = 0; step < 40; ++step) {
    const char* viewer = viewers[rng.NextBelow(3)];
    const doc::MultimediaComponent* component =
        components[rng.NextBelow(components.size())];
    std::vector<std::string> domain = component->DomainValueNames();
    bool release = rng.Chance(0.2) && latest.count(component->name()) > 0;
    std::string presentation =
        release ? "" : domain[rng.NextBelow(domain.size())];
    auto result = room->SubmitChoice(viewer, component->name(),
                                     presentation);
    ASSERT_TRUE(result.ok()) << result.status();
    if (release) {
      latest.erase(component->name());
    } else {
      latest[component->name()] = presentation;
    }
    // Invariant 1: every latest choice is honored.
    for (const auto& [name, chosen] : latest) {
      EXPECT_EQ(room->document()
                    .PresentationFor(result->configuration, name)
                    .value()
                    .name,
                chosen)
          << "step " << step;
    }
    // Invariant 2: the configuration is the optimal completion of the
    // room's own evidence (no spurious flips among free variables).
    cpnet::Assignment evidence =
        room->document().EvidenceFrom(room->AllChoices()).value();
    EXPECT_EQ(result->configuration,
              room->document().net().OptimalCompletion(evidence).value());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoomConvergenceTest,
                         ::testing::Range(1, 9));

// --- Codec: round trip over assorted geometries and layer configs. ---

class CodecGeometryTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CodecGeometryTest, RoundTripAnySupportedGeometry) {
  auto [width, height] = GetParam();
  Rng rng(static_cast<uint64_t>(width * 1000 + height));
  media::Image image =
      media::MakePhantomCt({width, height, 3, 2.0}, rng);
  compress::CodecOptions options;
  int levels =
      std::min(3, compress::MaxDwtLevels(width, height));
  options.layers = {{compress::LayerBasis::kWavelet, levels, 12.0},
                    {compress::LayerBasis::kWaveletPacket,
                     std::min(2, levels), 6.0}};
  compress::LayeredCodec codec(options);
  Bytes stream = codec.Encode(image).value();
  media::Image decoded = compress::LayeredCodec::Decode(stream).value();
  EXPECT_EQ(decoded.width(), width);
  EXPECT_EQ(decoded.height(), height);
  double psnr = media::Image::Psnr(image, decoded).value();
  EXPECT_GT(psnr, 28.0) << width << "x" << height;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CodecGeometryTest,
    ::testing::Values(std::make_tuple(64, 64), std::make_tuple(128, 64),
                      std::make_tuple(64, 128), std::make_tuple(96, 96),
                      std::make_tuple(160, 96)));

// --- Decoder fuzz: truncating or corrupting valid streams must yield a
// clean error, never a crash or a bogus success that misreports data. ---

TEST(DecoderFuzzTest, TruncatedImageStreamsFailCleanly) {
  Rng rng(5);
  media::Image image = media::MakePhantomCt({48, 32, 3, 2.0}, rng);
  image.AddTextElement(2, 2, "X", 200);
  Bytes encoded = image.Encode();
  for (size_t cut = 0; cut < encoded.size(); cut += 7) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<long>(cut));
    Result<media::Image> decoded = media::Image::Decode(truncated);
    EXPECT_FALSE(decoded.ok()) << "cut at " << cut;
  }
}

TEST(DecoderFuzzTest, TruncatedDocumentsFailCleanly) {
  doc::MultimediaDocument document =
      doc::MakeMedicalRecordDocument().value();
  Bytes encoded = document.Encode();
  for (size_t cut = 0; cut < encoded.size(); cut += 13) {
    Bytes truncated(encoded.begin(),
                    encoded.begin() + static_cast<long>(cut));
    EXPECT_FALSE(doc::MultimediaDocument::Decode(truncated).ok())
        << "cut at " << cut;
  }
}

TEST(DecoderFuzzTest, BitFlippedCodecStreamsNeverCrash) {
  Rng rng(6);
  media::Image image = media::MakePhantomCt({64, 64, 3, 2.0}, rng);
  Bytes stream = compress::LayeredCodec().Encode(image).value();
  for (int trial = 0; trial < 60; ++trial) {
    Bytes damaged = stream;
    damaged[rng.NextBelow(damaged.size())] ^=
        static_cast<uint8_t>(1 + rng.NextBelow(255));
    // Any outcome is fine except a crash; a successful decode must still
    // produce an image with the declared dimensions.
    Result<media::Image> decoded =
        compress::LayeredCodec::Decode(damaged);
    if (decoded.ok()) {
      EXPECT_EQ(decoded->width(), 64);
      EXPECT_EQ(decoded->height(), 64);
    }
  }
}

TEST(DecoderFuzzTest, GarbageCpNetTextRejected) {
  Rng rng(7);
  cpnet::CpNet net = doc::MakePaperFigure2Net();
  std::string text = cpnet::ToText(net);
  for (int trial = 0; trial < 40; ++trial) {
    std::string damaged = text;
    size_t pos = rng.NextBelow(damaged.size());
    damaged[pos] = static_cast<char>('a' + rng.NextBelow(26));
    Result<cpnet::CpNet> parsed = cpnet::FromText(damaged);
    if (parsed.ok()) {
      // A benign mutation (e.g. inside a name used consistently? not
      // possible for single-site edits unless it hit a value it also
      // declares) — if it parses, it must still be a valid net.
      EXPECT_TRUE(parsed->validated());
    }
  }
}

// --- Network: per-link FIFO ordering. ---

TEST(NetworkPropertyTest, PerLinkDeliveriesAreFifo) {
  Clock clock;
  net::Network network(&clock);
  net::NodeId a = network.AddNode("a");
  net::NodeId b = network.AddNode("b");
  ASSERT_TRUE(network.SetLink(a, b, {1e5, 5000}).ok());
  Rng rng(8);
  for (int i = 0; i < 50; ++i) {
    network
        .Send(a, b, 1 + rng.NextBelow(20000), std::to_string(i))
        .value();
  }
  std::vector<net::Delivery> deliveries = network.AdvanceUntilIdle();
  ASSERT_EQ(deliveries.size(), 50u);
  for (size_t i = 0; i < deliveries.size(); ++i) {
    EXPECT_EQ(deliveries[i].tag, std::to_string(i));
    if (i > 0) {
      EXPECT_GE(deliveries[i].delivered_at,
                deliveries[i - 1].delivered_at);
    }
  }
}

// --- Storage/document integration: random documents survive the full
// encode -> blob store -> fetch -> decode chain byte-exactly. ---

class DocumentStorageRoundTripTest : public ::testing::TestWithParam<int> {
};

TEST_P(DocumentStorageRoundTripTest, EncodeStoreFetchDecode) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31);
  doc::MultimediaDocument document =
      doc::MakeRandomDocument(3, 8, rng).value();
  storage::BlobStore store;
  storage::BlobId id = store.Put(document.Encode()).value();
  Bytes fetched = store.Get(id).value();
  doc::MultimediaDocument decoded =
      doc::MultimediaDocument::Decode(fetched).value();
  EXPECT_EQ(decoded.DefaultPresentation().value(),
            document.DefaultPresentation().value());
  EXPECT_EQ(decoded.Encode(), document.Encode());
}

INSTANTIATE_TEST_SUITE_P(Seeds, DocumentStorageRoundTripTest,
                         ::testing::Range(1, 7));

}  // namespace
}  // namespace mmconf
