#include <gtest/gtest.h>

#include "common/rng.h"
#include "doc/builder.h"
#include "doc/component.h"
#include "doc/document.h"
#include "doc/presentation.h"
#include "doc/presentation_view.h"

namespace mmconf::doc {
namespace {

using cpnet::Assignment;

TEST(PresentationTest, CostModelOrdering) {
  const size_t full = 1 << 20;
  MMPresentation hidden{"hidden", PresentationKind::kHidden, 0};
  MMPresentation icon{"icon", PresentationKind::kIcon, 0};
  MMPresentation thumb{"thumb", PresentationKind::kThumbnail, 2};
  MMPresentation flat{"flat", PresentationKind::kImage, 0};
  MMPresentation seg{"seg", PresentationKind::kSegmentedImage, 0};
  EXPECT_EQ(PresentationCostBytes(hidden, full), 0u);
  EXPECT_LT(PresentationCostBytes(icon, full),
            PresentationCostBytes(thumb, full));
  EXPECT_LT(PresentationCostBytes(thumb, full),
            PresentationCostBytes(flat, full));
  EXPECT_LT(PresentationCostBytes(flat, full),
            PresentationCostBytes(seg, full));
}

TEST(ComponentTest, FlattenIsPreOrder) {
  auto root = std::make_unique<CompositeMultimediaComponent>("root");
  auto group = std::make_unique<CompositeMultimediaComponent>("group");
  group->AddChild(std::make_unique<PrimitiveMultimediaComponent>(
      "leaf1", ContentRef{"Text", 1, 10}, TextPresentations()));
  root->AddChild(std::move(group));
  root->AddChild(std::make_unique<PrimitiveMultimediaComponent>(
      "leaf2", ContentRef{"Text", 2, 10}, TextPresentations()));
  std::vector<const MultimediaComponent*> flat = FlattenTree(root.get());
  ASSERT_EQ(flat.size(), 4u);
  EXPECT_EQ(flat[0]->name(), "root");
  EXPECT_EQ(flat[1]->name(), "group");
  EXPECT_EQ(flat[2]->name(), "leaf1");
  EXPECT_EQ(flat[3]->name(), "leaf2");
}

TEST(DocumentTest, DuplicateNamesRejected) {
  auto root = std::make_unique<CompositeMultimediaComponent>("root");
  root->AddChild(std::make_unique<PrimitiveMultimediaComponent>(
      "x", ContentRef{"Text", 1, 10}, TextPresentations()));
  root->AddChild(std::make_unique<PrimitiveMultimediaComponent>(
      "x", ContentRef{"Text", 2, 10}, TextPresentations()));
  EXPECT_TRUE(MultimediaDocument::Create(std::move(root))
                  .status()
                  .IsInvalidArgument());
}

TEST(DocumentTest, NullRootRejected) {
  EXPECT_TRUE(
      MultimediaDocument::Create(nullptr).status().IsInvalidArgument());
}

class MedicalRecordTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Result<MultimediaDocument> document = MakeMedicalRecordDocument();
    ASSERT_TRUE(document.ok()) << document.status();
    document_ = std::make_unique<MultimediaDocument>(
        std::move(document).value());
  }
  std::unique_ptr<MultimediaDocument> document_;
};

TEST_F(MedicalRecordTest, StructureMatchesBuilder) {
  EXPECT_EQ(document_->num_components(), 10u);  // root + 3 groups + 6 leaves
  EXPECT_TRUE(document_->Find("CT").ok());
  EXPECT_TRUE(document_->Find("XRay").ok());
  EXPECT_TRUE(document_->Find("Nonexistent").status().IsNotFound());
}

TEST_F(MedicalRecordTest, DefaultShowsCtHidesXray) {
  Assignment config = document_->DefaultPresentation().value();
  EXPECT_EQ(document_->PresentationFor(config, "CT").value().name, "flat");
  // CT shown -> author prefers the correlated X-ray hidden.
  EXPECT_EQ(document_->PresentationFor(config, "XRay").value().name,
            "hidden");
  // Voice of expertise accompanies the CT.
  EXPECT_EQ(document_->PresentationFor(config, "ExpertVoice").value().name,
            "audio");
}

TEST_F(MedicalRecordTest, HidingCtSurfacesXray) {
  Assignment config =
      document_->ReconfigPresentation({{"CT", "hidden"}}).value();
  EXPECT_EQ(document_->PresentationFor(config, "CT").value().name, "hidden");
  EXPECT_EQ(document_->PresentationFor(config, "XRay").value().name, "flat");
  // Voice drops to summary without the CT.
  EXPECT_EQ(document_->PresentationFor(config, "ExpertVoice").value().name,
            "summary");
}

TEST_F(MedicalRecordTest, ReleaseChoiceRestoresDefault) {
  Assignment with_choice =
      document_->ReconfigPresentation({{"CT", "hidden"}}).value();
  Assignment released =
      document_->ReconfigPresentation({{"CT", "hidden"}, {"CT", ""}})
          .value();
  EXPECT_EQ(released, document_->DefaultPresentation().value());
  EXPECT_NE(with_choice, released);
}

TEST_F(MedicalRecordTest, UnknownChoiceRejected) {
  EXPECT_TRUE(document_->ReconfigPresentation({{"CT", "sepia"}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(document_->ReconfigPresentation({{"Nope", "flat"}})
                  .status()
                  .IsNotFound());
}

TEST_F(MedicalRecordTest, VisibilityFollowsAncestors) {
  Assignment config =
      document_->ReconfigPresentation({{"Imaging", "hidden"}}).value();
  EXPECT_FALSE(document_->IsVisible(config, "CT").value());
  EXPECT_FALSE(document_->IsVisible(config, "XRay").value());
  EXPECT_TRUE(document_->IsVisible(config, "TestResults").value());
  Assignment default_config = document_->DefaultPresentation().value();
  EXPECT_TRUE(document_->IsVisible(default_config, "CT").value());
  // XRay hidden by its own presentation, not its ancestor.
  EXPECT_FALSE(document_->IsVisible(default_config, "XRay").value());
}

TEST_F(MedicalRecordTest, BulkVisibilityMatchesPerComponentQueries) {
  for (const std::vector<ViewerChoice>& choices :
       std::vector<std::vector<ViewerChoice>>{
           {},
           {{"CT", "hidden"}},
           {{"Imaging", "hidden"}},
           {{"CT", "hidden"}, {"XRay", "icon"}}}) {
    Result<cpnet::Assignment> config =
        document_->ReconfigPresentation(choices);
    ASSERT_TRUE(config.ok()) << config.status();
    std::vector<char> bulk;
    ASSERT_TRUE(document_->ComputeVisibility(*config, &bulk).ok());
    ASSERT_EQ(bulk.size(), document_->num_components());
    for (size_t i = 0; i < document_->num_components(); ++i) {
      const std::string& name = document_->components()[i]->name();
      EXPECT_EQ(static_cast<bool>(bulk[i]),
                document_->IsVisible(*config, name).value())
          << name;
    }
  }
  std::vector<char> bulk;
  cpnet::Assignment partial(document_->num_variables());
  EXPECT_FALSE(document_->ComputeVisibility(partial, &bulk).ok());
}

TEST_F(MedicalRecordTest, BulkVisibilityRandomParity) {
  Rng rng(404);
  MultimediaDocument document =
      MakeRandomDocument(/*num_groups=*/4, /*num_leaves=*/12, rng).value();
  for (int trial = 0; trial < 10; ++trial) {
    // A random full configuration, not necessarily optimal.
    cpnet::Assignment config(document.num_variables());
    for (size_t v = 0; v < document.num_variables(); ++v) {
      cpnet::VarId var = static_cast<cpnet::VarId>(v);
      config.Set(var, static_cast<cpnet::ValueId>(rng.NextBelow(
                          static_cast<uint64_t>(document.net().DomainSize(var)))));
    }
    std::vector<char> bulk;
    ASSERT_TRUE(document.ComputeVisibility(config, &bulk).ok());
    for (size_t i = 0; i < document.num_components(); ++i) {
      const std::string& name = document.components()[i]->name();
      EXPECT_EQ(static_cast<bool>(bulk[i]),
                document.IsVisible(config, name).value())
          << name << " trial " << trial;
    }
  }
}

TEST_F(MedicalRecordTest, PresentationViewTracksConfiguration) {
  PresentationView view(document_.get());
  cpnet::Assignment config = document_->DefaultPresentation().value();
  ASSERT_TRUE(view.Rebuild(config).ok());
  ASSERT_EQ(view.num_components(), document_->num_components());
  for (size_t i = 0; i < document_->num_components(); ++i) {
    cpnet::VarId var = static_cast<cpnet::VarId>(i);
    const MultimediaComponent* component = document_->ComponentAt(var);
    const std::string& name = component->name();
    EXPECT_EQ(view.visible(var), document_->IsVisible(config, name).value());
    if (const PrimitiveMultimediaComponent* primitive =
            component->AsPrimitive()) {
      ASSERT_NE(view.presentation(var), nullptr);
      EXPECT_EQ(view.presentation(var)->name,
                document_->PresentationFor(config, name).value().name);
      EXPECT_EQ(view.cost_bytes(var),
                PresentationCostBytes(*view.presentation(var),
                                      primitive->content().content_bytes));
    } else {
      EXPECT_EQ(view.primitive(var), nullptr);
      EXPECT_EQ(view.cost_bytes(var), 0u);
    }
  }
  // Incremental update after a reconfiguration.
  cpnet::Assignment next =
      document_->ReconfigPresentation({{"CT", "hidden"}}).value();
  MultimediaDocument::ConfigurationDelta delta =
      document_->DiffConfigurations(config, next).value();
  ASSERT_TRUE(view.Update(next, delta.changed_vars).ok());
  for (size_t i = 0; i < document_->num_components(); ++i) {
    cpnet::VarId var = static_cast<cpnet::VarId>(i);
    const std::string& name = document_->ComponentAt(var)->name();
    EXPECT_EQ(view.visible(var), document_->IsVisible(next, name).value());
    if (view.primitive(var) != nullptr) {
      EXPECT_EQ(view.presentation(var)->name,
                document_->PresentationFor(next, name).value().name);
    }
  }
}

TEST_F(MedicalRecordTest, PresentationViewRebuildsAfterStructureChange) {
  PresentationView view(document_.get());
  cpnet::Assignment config = document_->DefaultPresentation().value();
  ASSERT_TRUE(view.Rebuild(config).ok());
  uint64_t version_before = document_->structure_version();
  ASSERT_TRUE(document_
                  ->AddComponent(
                      "Imaging",
                      std::make_unique<PrimitiveMultimediaComponent>(
                          "MRI", ContentRef{"Image", 77, 1 << 18},
                          ImagePresentations()))
                  .ok());
  EXPECT_GT(document_->structure_version(), version_before);
  // Update with an empty delta must detect the rebinding and rebuild
  // rather than serve stale pointers.
  cpnet::Assignment rebound = document_->DefaultPresentation().value();
  ASSERT_TRUE(view.Update(rebound, {}).ok());
  EXPECT_EQ(view.num_components(), document_->num_components());
  cpnet::VarId mri = document_->VarOf("MRI").value();
  ASSERT_NE(view.primitive(mri), nullptr);
  EXPECT_EQ(view.primitive(mri)->name(), "MRI");
}

TEST_F(MedicalRecordTest, DeliveryCostTracksChoices) {
  Assignment default_config = document_->DefaultPresentation().value();
  size_t default_cost =
      document_->DeliveryCostBytes(default_config).value();
  EXPECT_GT(default_cost, 0u);
  // Hiding the imaging group removes the CT payload.
  Assignment imaging_hidden =
      document_->ReconfigPresentation({{"Imaging", "hidden"}}).value();
  EXPECT_LT(document_->DeliveryCostBytes(imaging_hidden).value(),
            default_cost);
  // Showing everything flat costs more than the default.
  Assignment all_flat = document_
                            ->ReconfigPresentation({{"CT", "flat"},
                                                    {"XRay", "flat"},
                                                    {"TrendGraph", "flat"}})
                            .value();
  EXPECT_GT(document_->DeliveryCostBytes(all_flat).value(), default_cost);
}

TEST_F(MedicalRecordTest, DiffConfigurations) {
  Assignment before = document_->DefaultPresentation().value();
  Assignment after =
      document_->ReconfigPresentation({{"CT", "hidden"}}).value();
  auto delta = document_->DiffConfigurations(before, after).value();
  // CT, XRay and ExpertVoice all change; only visible ones cost bytes.
  EXPECT_EQ(delta.changed_components.size(), 3u);
  EXPECT_GT(delta.redisplay_cost_bytes, 0u);
  // Identity diff is empty.
  auto none = document_->DiffConfigurations(after, after).value();
  EXPECT_TRUE(none.changed_components.empty());
  EXPECT_EQ(none.redisplay_cost_bytes, 0u);
  // A shorter `before` (extension variable added in between) marks the
  // unseen components as changed rather than crashing.
  document_->AddOperationVariable("CT", "flat", "CT.seg2").value();
  Assignment grown = document_->DefaultPresentation().value();
  EXPECT_TRUE(document_->DiffConfigurations(before, grown).ok());
  // `after` must span the current network.
  EXPECT_TRUE(document_->DiffConfigurations(grown, before)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(MedicalRecordTest, EncodeDecodePreservesBehaviour) {
  Bytes encoded = document_->Encode();
  Result<MultimediaDocument> decoded = MultimediaDocument::Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->num_components(), document_->num_components());
  EXPECT_EQ(decoded->DefaultPresentation().value(),
            document_->DefaultPresentation().value());
  Assignment a = decoded->ReconfigPresentation({{"CT", "hidden"}}).value();
  Assignment b =
      document_->ReconfigPresentation({{"CT", "hidden"}}).value();
  EXPECT_EQ(a, b);
}

TEST_F(MedicalRecordTest, DecodeRejectsGarbage) {
  EXPECT_TRUE(
      MultimediaDocument::Decode({1, 2, 3}).status().IsCorruption());
}

TEST_F(MedicalRecordTest, OperationVariableExtendsConfiguration) {
  size_t before = document_->num_variables();
  cpnet::VarId op =
      document_->AddOperationVariable("CT", "flat", "CT.segmentation")
          .value();
  EXPECT_EQ(document_->num_variables(), before + 1);
  EXPECT_EQ(document_->num_components(), 10u);  // unchanged
  Assignment config = document_->DefaultPresentation().value();
  EXPECT_EQ(config.size(), before + 1);
  // CT defaults to flat -> operation applied.
  EXPECT_EQ(config.Get(op), 0);
  Assignment hidden_ct =
      document_->ReconfigPresentation({{"CT", "hidden"}}).value();
  EXPECT_EQ(hidden_ct.Get(op), 1);  // plain
  // Duplicate op name rejected.
  EXPECT_TRUE(
      document_->AddOperationVariable("CT", "flat", "CT.segmentation")
          .status()
          .IsAlreadyExists());
}

TEST_F(MedicalRecordTest, EncodeDecodeWithOperationVariable) {
  document_->AddOperationVariable("CT", "flat", "CT.seg").value();
  Result<MultimediaDocument> decoded =
      MultimediaDocument::Decode(document_->Encode());
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  EXPECT_EQ(decoded->num_variables(), document_->num_variables());
  EXPECT_EQ(decoded->DefaultPresentation().value(),
            document_->DefaultPresentation().value());
}

TEST_F(MedicalRecordTest, AddComponentPreservesPreferences) {
  auto mri = std::make_unique<PrimitiveMultimediaComponent>(
      "MRI", ContentRef{"Image", 9, 262144}, ImagePresentations());
  cpnet::VarId var =
      document_->AddComponent("Imaging", std::move(mri)).value();
  EXPECT_EQ(document_->num_components(), 11u);
  EXPECT_EQ(document_->net().VariableName(var), "MRI");
  // The new component defaults to its first option...
  Assignment config = document_->DefaultPresentation().value();
  EXPECT_EQ(document_->PresentationFor(config, "MRI").value().name, "flat");
  // ...and every pre-existing preference still holds (CT shown -> XRay
  // hidden, etc).
  EXPECT_EQ(document_->PresentationFor(config, "CT").value().name, "flat");
  EXPECT_EQ(document_->PresentationFor(config, "XRay").value().name,
            "hidden");
  Assignment hidden_ct =
      document_->ReconfigPresentation({{"CT", "hidden"}}).value();
  EXPECT_EQ(document_->PresentationFor(hidden_ct, "XRay").value().name,
            "flat");
}

TEST_F(MedicalRecordTest, AddComponentValidation) {
  auto dup = std::make_unique<PrimitiveMultimediaComponent>(
      "CT", ContentRef{"Image", 9, 1}, ImagePresentations());
  EXPECT_TRUE(document_->AddComponent("Imaging", std::move(dup))
                  .status()
                  .IsAlreadyExists());
  auto orphan = std::make_unique<PrimitiveMultimediaComponent>(
      "Orphan", ContentRef{"Image", 9, 1}, ImagePresentations());
  EXPECT_TRUE(document_->AddComponent("NoSuchGroup", std::move(orphan))
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(
      document_->AddComponent("Imaging", nullptr).status()
          .IsInvalidArgument());
}

TEST_F(MedicalRecordTest, AddComponentKeepsOperationVariables) {
  document_->AddOperationVariable("CT", "flat", "CT.seg").value();
  auto mri = std::make_unique<PrimitiveMultimediaComponent>(
      "MRI", ContentRef{"Image", 9, 1024}, ImagePresentations());
  document_->AddComponent("Imaging", std::move(mri)).value();
  // Operation variable survived the rebinding and still triggers.
  cpnet::VarId op = document_->VarOf("CT.seg").value();
  Assignment config = document_->DefaultPresentation().value();
  EXPECT_EQ(config.Get(op), 0);  // CT flat -> applied
}

TEST_F(MedicalRecordTest, RemoveComponentRestrictsDependents) {
  // XRay and ExpertVoice both condition on the CT. Removing the CT
  // restricts them to the CT=hidden context: XRay surfaces flat, voice
  // degrades to summary.
  ASSERT_TRUE(document_->RemoveComponent("CT").ok());
  EXPECT_EQ(document_->num_components(), 9u);
  EXPECT_TRUE(document_->Find("CT").status().IsNotFound());
  Assignment config = document_->DefaultPresentation().value();
  EXPECT_EQ(document_->PresentationFor(config, "XRay").value().name,
            "flat");
  EXPECT_EQ(document_->PresentationFor(config, "ExpertVoice").value().name,
            "summary");
}

TEST_F(MedicalRecordTest, RemoveComponentValidation) {
  EXPECT_TRUE(document_->RemoveComponent("MedicalRecord")
                  .IsInvalidArgument());  // root
  EXPECT_TRUE(document_->RemoveComponent("Imaging")
                  .IsFailedPrecondition());  // non-empty composite
  EXPECT_TRUE(document_->RemoveComponent("Ghost").IsNotFound());
  // An emptied composite can go.
  ASSERT_TRUE(document_->RemoveComponent("CT").ok());
  ASSERT_TRUE(document_->RemoveComponent("XRay").ok());
  EXPECT_TRUE(document_->RemoveComponent("Imaging").ok());
  EXPECT_EQ(document_->num_components(), 7u);
  EXPECT_TRUE(document_->DefaultPresentation().ok());
}

TEST_F(MedicalRecordTest, AddThenRemoveRoundTrips) {
  Assignment before = document_->DefaultPresentation().value();
  auto mri = std::make_unique<PrimitiveMultimediaComponent>(
      "MRI", ContentRef{"Image", 9, 1024}, ImagePresentations());
  document_->AddComponent("Imaging", std::move(mri)).value();
  ASSERT_TRUE(document_->RemoveComponent("MRI").ok());
  EXPECT_EQ(document_->DefaultPresentation().value(), before);
}

TEST(RandomDocumentTest, GeneratorProducesValidDocuments) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    Rng rng(seed);
    Result<MultimediaDocument> document = MakeRandomDocument(4, 12, rng);
    ASSERT_TRUE(document.ok()) << "seed " << seed << ": "
                               << document.status();
    EXPECT_EQ(document->num_components(), 17u);  // 1 root + 4 + 12
    Assignment config = document->DefaultPresentation().value();
    EXPECT_TRUE(config.IsComplete());
    EXPECT_TRUE(document->DeliveryCostBytes(config).ok());
  }
}

TEST(TreeBuilderTest, UnknownParentDeferredError) {
  TreeBuilder builder("root");
  builder.Leaf("missing", "x", {"Text", 1, 10}, TextPresentations());
  EXPECT_TRUE(builder.Build().status().IsNotFound());
}

}  // namespace
}  // namespace mmconf::doc
