#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "compress/layered_codec.h"
#include "doc/builder.h"
#include "media/synthetic.h"
#include "net/network.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "prefetch/cache.h"
#include "server/interaction_server.h"
#include "storage/database.h"
#include "stream/scheduler.h"

namespace mmconf::obs {
namespace {

// --- Counters and gauges ---

TEST(MetricsRegistryTest, CounterAndGaugeBasics) {
  MetricsRegistry registry;
  Counter* sent = registry.GetCounter("net.sent");
  sent->Add();
  sent->Add(41);
  EXPECT_EQ(sent->value(), 42u);

  Gauge* depth = registry.GetGauge("queue.depth");
  depth->Set(7);
  depth->Add(-3);
  EXPECT_EQ(depth->value(), 4);

  // Re-registration under the same name returns the same handle, so
  // instrumented code can cache raw pointers.
  EXPECT_EQ(registry.GetCounter("net.sent"), sent);
  EXPECT_EQ(registry.GetGauge("queue.depth"), depth);
  EXPECT_EQ(registry.num_metrics(), 2u);
}

TEST(MetricsRegistryTest, ResetZeroesValuesButKeepsHandles) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Histogram* histogram = registry.GetHistogram("h", {10, 100});
  counter->Add(5);
  histogram->Observe(50);

  registry.Reset();
  EXPECT_EQ(counter->value(), 0u);
  EXPECT_EQ(histogram->count(), 0u);
  EXPECT_EQ(histogram->sum(), 0);

  // The old handles still feed the same registry entries.
  counter->Add(1);
  histogram->Observe(7);
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("c"), 1u);
  EXPECT_EQ(snapshot.histograms.at("h").count, 1u);
}

// --- Histogram bucket edges ---

TEST(HistogramTest, ValueBelowFirstBoundLandsInBucketZero) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("h", {10, 100, 1000});
  histogram->Observe(-5);
  histogram->Observe(0);
  histogram->Observe(9);
  ASSERT_EQ(histogram->bucket_counts().size(), 4u);  // 3 bounds + overflow
  EXPECT_EQ(histogram->bucket_counts()[0], 3u);
  EXPECT_EQ(histogram->bucket_counts()[1], 0u);
  EXPECT_EQ(histogram->bucket_counts()[3], 0u);
  EXPECT_EQ(histogram->min(), -5);
  EXPECT_EQ(histogram->max(), 9);
}

TEST(HistogramTest, ValueAboveLastBoundLandsInOverflowBucket) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("h", {10, 100, 1000});
  histogram->Observe(1001);
  histogram->Observe(1 << 30);
  EXPECT_EQ(histogram->bucket_counts()[3], 2u);
  EXPECT_EQ(histogram->count(), 2u);
  EXPECT_EQ(histogram->max(), 1 << 30);
}

TEST(HistogramTest, ExactBoundaryIsInclusive) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("h", {10, 100, 1000});
  // Bounds are inclusive upper edges: v == bounds[i] lands in bucket i.
  histogram->Observe(10);
  histogram->Observe(100);
  histogram->Observe(1000);
  EXPECT_EQ(histogram->bucket_counts()[0], 1u);
  EXPECT_EQ(histogram->bucket_counts()[1], 1u);
  EXPECT_EQ(histogram->bucket_counts()[2], 1u);
  EXPECT_EQ(histogram->bucket_counts()[3], 0u);
  // ...and the value just past an edge spills into the next bucket.
  histogram->Observe(11);
  EXPECT_EQ(histogram->bucket_counts()[1], 2u);
  EXPECT_EQ(histogram->sum(), 10 + 100 + 1000 + 11);
}

TEST(HistogramTest, MinMaxAreZeroBeforeFirstObservation) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("h", {10});
  EXPECT_EQ(histogram->min(), 0);
  EXPECT_EQ(histogram->max(), 0);
  EXPECT_EQ(histogram->count(), 0u);
}

TEST(HistogramTest, InvalidBoundsFallBackToSingleBucket) {
  MetricsRegistry registry;
  Histogram* empty = registry.GetHistogram("empty", {});
  Histogram* unsorted = registry.GetHistogram("unsorted", {100, 10});
  for (Histogram* histogram : {empty, unsorted}) {
    ASSERT_EQ(histogram->bounds().size(), 1u);
    EXPECT_EQ(histogram->bounds()[0], 0);
    EXPECT_EQ(histogram->bucket_counts().size(), 2u);
  }
  // First registration wins: re-registering with different bounds keeps
  // the original edges.
  Histogram* first = registry.GetHistogram("h", {10, 100});
  Histogram* second = registry.GetHistogram("h", {1, 2, 3});
  EXPECT_EQ(first, second);
  EXPECT_EQ(second->bounds(), (std::vector<int64_t>{10, 100}));
}

// --- Snapshots ---

TEST(MetricsSnapshotTest, EqualOperationsYieldEqualSnapshotsAndJson) {
  auto fill = [](MetricsRegistry* registry) {
    registry->GetCounter("a.count")->Add(3);
    registry->GetGauge("b.gauge")->Set(-2);
    registry->GetHistogram("c.hist", {5, 50})->Observe(7);
  };
  MetricsRegistry lhs, rhs;
  fill(&lhs);
  fill(&rhs);
  EXPECT_EQ(lhs.Snapshot(), rhs.Snapshot());
  EXPECT_EQ(lhs.Snapshot().ToJson(), rhs.Snapshot().ToJson());

  rhs.GetCounter("a.count")->Add();
  EXPECT_NE(lhs.Snapshot(), rhs.Snapshot());
}

TEST(MetricsSnapshotTest, DiffSinceSubtractsCountersButKeepsGauges) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("c");
  Gauge* gauge = registry.GetGauge("g");
  Histogram* histogram = registry.GetHistogram("h", {10});
  counter->Add(5);
  gauge->Set(100);
  histogram->Observe(3);
  MetricsSnapshot earlier = registry.Snapshot();

  counter->Add(2);
  gauge->Set(40);
  histogram->Observe(99);
  MetricsSnapshot diff = registry.Snapshot().DiffSince(earlier);

  EXPECT_EQ(diff.counters.at("c"), 2u);   // accumulative: subtracted
  EXPECT_EQ(diff.gauges.at("g"), 40);     // point-in-time: latest wins
  const HistogramSnapshot& h = diff.histograms.at("h");
  EXPECT_EQ(h.count, 1u);
  EXPECT_EQ(h.sum, 99);
  EXPECT_EQ(h.counts[0], 0u);  // the 3 was observed before `earlier`
  EXPECT_EQ(h.counts[1], 1u);
  EXPECT_EQ(h.max, 99);  // min/max are not accumulative either
}

TEST(MetricsSnapshotTest, WriteJsonReportsUnwritablePath) {
  MetricsRegistry registry;
  registry.GetCounter("c")->Add();
  Status status =
      registry.Snapshot().WriteJson("/nonexistent-dir/metrics.json");
  EXPECT_FALSE(status.ok());
}

// --- Tracer ---

TEST(TracerTest, TidsInternPerPidAndNeverHandOutZero) {
  Tracer tracer(nullptr);
  int room = tracer.Tid(1, "room:consult");
  int stream = tracer.Tid(1, "stream:4");
  int other_pid = tracer.Tid(2, "room:consult");
  EXPECT_GT(room, 0);
  EXPECT_GT(stream, 0);
  EXPECT_NE(room, stream);
  EXPECT_EQ(tracer.Tid(1, "room:consult"), room);  // stable
  EXPECT_GT(other_pid, 0);                         // per-pid namespace
}

TEST(TracerTest, JsonCarriesSpansInstantsAndMetadata) {
  Clock clock;
  Tracer tracer(&clock);
  tracer.SetProcessName(3, "server");
  int tid = tracer.Tid(3, "stream:9");
  tracer.Span(3, tid, "stall", "stream", 1000, 2500, "stall_micros", 1500);
  clock.AdvanceTo(4000);
  tracer.Instant(3, tid, "drop-layer", "stream", "layer", 2);
  tracer.CounterSample(3, "queue", 6);

  std::string json = tracer.ToJson();
  EXPECT_NE(json.find("{\"traceEvents\": ["), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 1500"), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ts\": 4000"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"stall_micros\": 1500"), std::string::npos);

  tracer.Clear();
  EXPECT_EQ(tracer.num_events(), 0u);
}

TEST(TracerTest, PidOffsetShiftsEveryEvent) {
  Tracer tracer(nullptr);
  tracer.set_pid_offset(8);
  tracer.Instant(1, 0, "drop", "net");
  std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"pid\": 9"), std::string::npos);
  EXPECT_EQ(json.find("\"pid\": 1,"), std::string::npos);
}

TEST(TracerTest, BeginEndSpanStampsDuration) {
  Clock clock;
  Tracer tracer(&clock);
  clock.AdvanceTo(100);
  size_t handle = tracer.BeginSpan(0, 0, "round", "server");
  clock.AdvanceTo(350);
  tracer.EndSpan(handle);
  std::string json = tracer.ToJson();
  EXPECT_NE(json.find("\"ts\": 100"), std::string::npos);
  EXPECT_NE(json.find("\"dur\": 250"), std::string::npos);
}

TEST(TracerTest, WriteJsonReportsUnwritablePath) {
  Tracer tracer(nullptr);
  tracer.Instant(0, 0, "x", "y");
  EXPECT_FALSE(tracer.WriteJson("/nonexistent-dir/trace.json").ok());
}

// --- Subsystem hookup ---

TEST(ObserverHookupTest, ClientCacheCountsHitsMissesEvictions) {
  MetricsRegistry registry;
  prefetch::ClientCache cache(4 << 10, prefetch::CachePolicy::kLru);
  cache.SetObserver(&registry);
  ASSERT_TRUE(cache.Insert("a", 3 << 10, 1.0).ok());
  cache.Lookup("a");
  cache.Lookup("missing");
  ASSERT_TRUE(cache.Insert("b", 3 << 10, 1.0).ok());  // evicts "a"

  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.counters.at("prefetch.cache.hits"), 1u);
  EXPECT_EQ(snapshot.counters.at("prefetch.cache.misses"), 1u);
  EXPECT_EQ(snapshot.counters.at("prefetch.cache.insertions"), 2u);
  EXPECT_EQ(snapshot.counters.at("prefetch.cache.evictions"), 1u);

  // Detaching stops the flow without touching the cache's own stats.
  cache.SetObserver(nullptr);
  cache.Lookup("b");
  EXPECT_EQ(registry.Snapshot().counters.at("prefetch.cache.hits"), 1u);
}

// --- End-to-end determinism ---

Bytes EncodeObject(uint64_t seed) {
  Rng rng(seed);
  media::Image image = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
  return compress::LayeredCodec().Encode(image).value();
}

/// One lossy streamed consult, fully instrumented. Returns the final
/// metrics snapshot and trace JSON.
struct InstrumentedRun {
  MetricsSnapshot snapshot;
  std::string metrics_json;
  std::string trace_json;
};

InstrumentedRun RunLossyConsult(uint64_t seed) {
  Clock clock;
  MetricsRegistry registry;
  Tracer tracer(&clock);

  net::Network network(&clock, seed);
  net::NodeId server_node = network.AddNode("server");
  net::NodeId db_node = network.AddNode("db");
  net::NodeId client = network.AddNode("client");
  net::NodeId peer = network.AddNode("peer");
  EXPECT_TRUE(network.SetDuplexLink(server_node, db_node, {50e6, 1000}).ok());
  EXPECT_TRUE(network.SetDuplexLink(server_node, client, {1e6, 20000}).ok());
  EXPECT_TRUE(network.SetDuplexLink(server_node, peer, {1e6, 20000}).ok());
  net::FaultSpec faults;
  faults.drop_probability = 0.10;
  faults.jitter_micros = 1500;
  EXPECT_TRUE(network.SetDuplexFault(server_node, client, faults).ok());

  net::RetryPolicy policy;
  policy.initial_timeout_micros = 150000;
  policy.max_attempts = 10;
  net::ReliableTransport transport(&network, policy);
  storage::DatabaseServer db;
  EXPECT_TRUE(db.RegisterStandardTypes().ok());
  server::InteractionServer server(&db, &network, server_node, db_node);
  server.UseReliableTransport(&transport);

  network.SetObserver(&registry, &tracer);
  transport.SetObserver(&registry, &tracer);
  server.SetObserver(&registry, &tracer);

  EXPECT_TRUE(server
                  .OpenRoomWithDocument(
                      "consult", doc::MakeMedicalRecordDocument().value())
                  .ok());
  EXPECT_TRUE(server.Join("consult", {"dr-cohen", client}).ok());
  EXPECT_TRUE(server.Join("consult", {"dr-levi", peer}).ok());
  transport.AdvanceUntilIdle();
  EXPECT_TRUE(
      server.SubmitChoice("consult", "dr-cohen", "CT", "thumbnail").ok());
  transport.AdvanceUntilIdle();
  // Settling the room closes the propagation round: its span and
  // time-to-consistency are only known once the last ack lands.
  EXPECT_TRUE(server.RoomConverged("consult"));

  stream::StreamOptions options;
  options.start_deadline_micros = clock.NowMicros() + 500000;
  options.interval_micros = 200000;
  options.chunk_bytes = 2048;
  std::vector<Bytes> objects = {EncodeObject(7), EncodeObject(8),
                                EncodeObject(9)};
  stream::StreamId id =
      server.OpenStream("consult", "dr-cohen", objects, options).value();
  EXPECT_TRUE(server.AdvanceStreamsUntilIdle().ok());
  EXPECT_TRUE(server.StreamSessionStats(id).value().finished);

  InstrumentedRun run;
  run.snapshot = registry.Snapshot();
  run.metrics_json = run.snapshot.ToJson();
  run.trace_json = tracer.ToJson();
  return run;
}

TEST(ObsDeterminismTest, SameSeedYieldsIdenticalMetricsAndTrace) {
  InstrumentedRun a = RunLossyConsult(1234);
  InstrumentedRun b = RunLossyConsult(1234);

  // The whole registry — every counter, gauge, and histogram bucket —
  // must match value-for-value, and the serialized forms byte-for-byte.
  EXPECT_EQ(a.snapshot, b.snapshot);
  EXPECT_EQ(a.metrics_json, b.metrics_json);
  EXPECT_EQ(a.trace_json, b.trace_json);

  // And the run actually exercised the instrumented paths.
  EXPECT_GT(a.snapshot.counters.at("net.send.messages"), 0u);
  EXPECT_GT(a.snapshot.counters.at("net.drop.random"), 0u);
  EXPECT_GT(a.snapshot.counters.at("rel.retries"), 0u);
  EXPECT_GT(a.snapshot.counters.at("stream.chunks.sent"), 0u);
  EXPECT_EQ(a.snapshot.counters.at("server.joins"), 2u);
  EXPECT_GT(a.snapshot.histograms.at("rel.rtt_micros").count, 0u);
  EXPECT_FALSE(a.trace_json.empty());
  EXPECT_NE(a.trace_json.find("\"join\""), std::string::npos);
  EXPECT_NE(a.trace_json.find("\"propagate\""), std::string::npos);
}

}  // namespace
}  // namespace mmconf::obs
