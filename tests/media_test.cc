#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.h"
#include "media/audio.h"
#include "media/image.h"
#include "media/synthetic.h"

namespace mmconf::media {
namespace {

TEST(ImageTest, CreateValidatesDimensions) {
  EXPECT_TRUE(Image::Create(0, 10).status().IsInvalidArgument());
  EXPECT_TRUE(Image::Create(10, -1).status().IsInvalidArgument());
  Result<Image> img = Image::Create(4, 3, 7);
  ASSERT_TRUE(img.ok());
  EXPECT_EQ(img->width(), 4);
  EXPECT_EQ(img->height(), 3);
  EXPECT_EQ(img->at(2, 1), 7);
}

TEST(ImageTest, PixelAccess) {
  Image img = Image::Create(8, 8).value();
  img.set(3, 5, 200);
  EXPECT_EQ(img.at(3, 5), 200);
  EXPECT_EQ(img.at_clamped(-1, 0), 0);
  EXPECT_EQ(img.at_clamped(100, 100), 0);
  EXPECT_EQ(img.at_clamped(3, 5), 200);
}

TEST(ImageTest, AnnotationsAddAndRemove) {
  Image img = Image::Create(64, 64).value();
  int text_id = img.AddTextElement(4, 4, "CT");
  int line_id = img.AddLineElement(0, 0, 63, 63);
  EXPECT_EQ(img.text_elements().size(), 1u);
  EXPECT_EQ(img.line_elements().size(), 1u);
  EXPECT_NE(text_id, line_id);
  EXPECT_TRUE(img.RemoveTextElement(text_id).ok());
  EXPECT_TRUE(img.RemoveTextElement(text_id).IsNotFound());
  EXPECT_TRUE(img.RemoveLineElement(line_id).ok());
  EXPECT_TRUE(img.RemoveLineElement(999).IsNotFound());
}

TEST(ImageTest, FlattenRasterizesAnnotations) {
  Image img = Image::Create(64, 16).value();
  img.AddTextElement(2, 2, "AB", 255);
  img.AddLineElement(0, 15, 63, 15, 128);
  Image flat = img.Flatten();
  EXPECT_TRUE(flat.text_elements().empty());
  EXPECT_TRUE(flat.line_elements().empty());
  // Some pixels must now be set.
  int lit = 0;
  for (uint8_t p : flat.pixels()) {
    if (p > 0) ++lit;
  }
  EXPECT_GT(lit, 10);
  // Original untouched.
  for (uint8_t p : img.pixels()) EXPECT_EQ(p, 0);
}

TEST(ImageTest, EncodeDecodeRoundTrip) {
  Rng rng(3);
  Image img = MakePhantomCt({64, 48, 3, 2.0}, rng);
  img.AddTextElement(5, 5, "LESION", 250);
  img.AddLineElement(1, 2, 30, 40, 99);
  Bytes encoded = img.Encode();
  Result<Image> decoded = Image::Decode(encoded);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->width(), img.width());
  EXPECT_EQ(decoded->height(), img.height());
  EXPECT_EQ(decoded->pixels(), img.pixels());
  ASSERT_EQ(decoded->text_elements().size(), 1u);
  EXPECT_EQ(decoded->text_elements()[0].text, "LESION");
  ASSERT_EQ(decoded->line_elements().size(), 1u);
  EXPECT_EQ(decoded->line_elements()[0].intensity, 99);
}

TEST(ImageTest, DecodeRejectsGarbage) {
  Bytes junk = {1, 2, 3, 4, 5};
  EXPECT_TRUE(Image::Decode(junk).status().IsCorruption());
}

TEST(ImageTest, PsnrIdenticalIsInfinite) {
  Rng rng(5);
  Image img = MakePhantomCt({32, 32, 2, 0.0}, rng);
  EXPECT_TRUE(std::isinf(Image::Psnr(img, img).value()));
}

TEST(ImageTest, PsnrDropsWithNoise) {
  Rng rng(5);
  Image img = MakePhantomCt({64, 64, 3, 0.0}, rng);
  Image noisy = img;
  Rng noise(6);
  for (uint8_t& p : noisy.mutable_pixels()) {
    p = static_cast<uint8_t>(
        std::clamp(p + noise.Gaussian(0, 10.0), 0.0, 255.0));
  }
  double psnr = Image::Psnr(img, noisy).value();
  EXPECT_GT(psnr, 20.0);
  EXPECT_LT(psnr, 40.0);
}

TEST(ImageTest, PsnrRequiresEqualDims) {
  Image a = Image::Create(8, 8).value();
  Image b = Image::Create(8, 9).value();
  EXPECT_TRUE(Image::Psnr(a, b).status().IsInvalidArgument());
  EXPECT_TRUE(Image::MeanAbsDifference(a, b).status().IsInvalidArgument());
}

TEST(AudioTest, SliceClamps) {
  AudioSignal signal({0.1f, 0.2f, 0.3f, 0.4f}, 8000);
  AudioSignal slice = signal.Slice(1, 3);
  ASSERT_EQ(slice.size(), 2u);
  EXPECT_FLOAT_EQ(slice.samples()[0], 0.2f);
  EXPECT_EQ(signal.Slice(10, 20).size(), 0u);
  EXPECT_EQ(signal.Slice(2, 100).size(), 2u);
}

TEST(AudioTest, AppendChecksRate) {
  AudioSignal a({0.1f}, 8000);
  AudioSignal b({0.2f}, 16000);
  EXPECT_TRUE(a.Append(b).IsInvalidArgument());
  AudioSignal c({0.2f}, 8000);
  EXPECT_TRUE(a.Append(c).ok());
  EXPECT_EQ(a.size(), 2u);
}

TEST(AudioTest, EncodeDecodeRoundTrip) {
  Rng rng(9);
  std::vector<float> samples(500);
  for (float& s : samples) {
    s = static_cast<float>(rng.Uniform(-0.9, 0.9));
  }
  AudioSignal signal(samples, 8000);
  Result<AudioSignal> decoded = AudioSignal::Decode(signal.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->sample_rate(), 8000);
  ASSERT_EQ(decoded->size(), signal.size());
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_NEAR(decoded->samples()[i], samples[i], 1.0f / 32000);
  }
}

TEST(AudioTest, DurationSeconds) {
  AudioSignal signal(std::vector<float>(16000, 0.0f), 8000);
  EXPECT_DOUBLE_EQ(signal.DurationSeconds(), 2.0);
}

TEST(SyntheticTest, PhantomHasStructure) {
  Rng rng(1);
  Image img = MakePhantomCt({128, 128, 4, 3.0}, rng);
  std::set<uint8_t> distinct(img.pixels().begin(), img.pixels().end());
  EXPECT_GT(distinct.size(), 10u);  // body, organs, noise
}

TEST(SyntheticTest, SpeakersAreDistinct) {
  Rng rng(2);
  std::vector<SpeakerProfile> speakers = MakeSpeakers(4, rng);
  ASSERT_EQ(speakers.size(), 4u);
  for (size_t i = 1; i < speakers.size(); ++i) {
    EXPECT_NE(speakers[i].pitch_hz, speakers[i - 1].pitch_hz);
    EXPECT_EQ(speakers[i].formants_hz.size(), 3u);
  }
}

TEST(SyntheticTest, UtteranceHasExpectedLength) {
  Rng rng(3);
  std::vector<SpeakerProfile> speakers = MakeSpeakers(1, rng);
  Word word{0, {1, 2, 3}};
  UtteranceOptions options;
  AudioSignal utterance = Synthesize(word, speakers[0], options, rng);
  EXPECT_EQ(utterance.size(),
            static_cast<size_t>(3 * options.phone_duration_s *
                                options.sample_rate));
  // Not silent.
  double energy = 0;
  for (float s : utterance.samples()) energy += s * s;
  EXPECT_GT(energy / utterance.size(), 1e-4);
}

TEST(SyntheticTest, ConversationSegmentsAreContiguous) {
  Rng rng(4);
  std::vector<SpeakerProfile> speakers = MakeSpeakers(3, rng);
  std::vector<Word> vocab = MakeVocabulary(5, 3, 8, rng);
  ConversationOptions options;
  options.num_turns = 6;
  Conversation conv = MakeConversation(speakers, vocab, options, rng);
  ASSERT_FALSE(conv.segments.empty());
  EXPECT_EQ(conv.segments.front().begin, 0u);
  for (size_t i = 1; i < conv.segments.size(); ++i) {
    EXPECT_EQ(conv.segments[i].begin, conv.segments[i - 1].end);
  }
  EXPECT_EQ(conv.segments.back().end, conv.signal.size());
  // Speech segments carry speaker and keyword ids.
  bool saw_speech = false;
  for (const AudioSegment& segment : conv.segments) {
    if (segment.cls == AudioClass::kSpeech) {
      saw_speech = true;
      EXPECT_GE(segment.speaker, 0);
      EXPECT_GE(segment.keyword, 0);
    }
  }
  EXPECT_TRUE(saw_speech);
}

TEST(SyntheticTest, MusicAndArtifactsNonEmpty) {
  Rng rng(5);
  EXPECT_GT(SynthesizeMusic(0.5, 8000, rng).size(), 1000u);
  EXPECT_GT(SynthesizeArtifact(0.5, 8000, rng).size(), 1000u);
  EXPECT_GT(SynthesizeSilence(0.5, 8000, rng).size(), 1000u);
}

}  // namespace
}  // namespace mmconf::media
