#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/rng.h"

namespace mmconf {
namespace {

/// Every test restores the auto-dispatched engine so the rest of the
/// suite keeps running on whatever this machine resolves to.
class Crc32cEngineTest : public ::testing::Test {
 protected:
  void TearDown() override {
    ASSERT_TRUE(SetCrc32cImpl(Crc32cImpl::kAuto));
  }

  /// Engines available in this build/CPU, table first (the oracle).
  static std::vector<Crc32cImpl> AvailableEngines() {
    std::vector<Crc32cImpl> engines = {Crc32cImpl::kTable,
                                       Crc32cImpl::kSlice8};
    if (SetCrc32cImpl(Crc32cImpl::kHardware)) {
      engines.push_back(Crc32cImpl::kHardware);
    }
    return engines;
  }
};

TEST_F(Crc32cEngineTest, DispatchReportsSelectedEngine) {
  ASSERT_TRUE(SetCrc32cImpl(Crc32cImpl::kTable));
  EXPECT_EQ(ActiveCrc32cImpl(), Crc32cImpl::kTable);
  ASSERT_TRUE(SetCrc32cImpl(Crc32cImpl::kSlice8));
  EXPECT_EQ(ActiveCrc32cImpl(), Crc32cImpl::kSlice8);
  // Auto never reports kAuto: it resolves to a concrete engine.
  ASSERT_TRUE(SetCrc32cImpl(Crc32cImpl::kAuto));
  EXPECT_NE(ActiveCrc32cImpl(), Crc32cImpl::kAuto);
  // A rejected request (hardware may be unavailable) must leave the
  // previous selection in place.
  ASSERT_TRUE(SetCrc32cImpl(Crc32cImpl::kTable));
  if (!SetCrc32cImpl(Crc32cImpl::kHardware)) {
    EXPECT_EQ(ActiveCrc32cImpl(), Crc32cImpl::kTable);
  }
}

TEST_F(Crc32cEngineTest, KnownAnswerVectorsOnEveryEngine) {
  // RFC 3720 (iSCSI) CRC32C test vectors.
  const uint8_t digits[] = {'1', '2', '3', '4', '5', '6', '7', '8', '9'};
  const std::vector<uint8_t> zeros(32, 0x00);
  const std::vector<uint8_t> ones(32, 0xff);
  for (Crc32cImpl engine : AvailableEngines()) {
    ASSERT_TRUE(SetCrc32cImpl(engine));
    EXPECT_EQ(Crc32c(digits, sizeof(digits)), 0xe3069283u);
    EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8a9136aau);
    EXPECT_EQ(Crc32c(ones.data(), ones.size()), 0x62a8ab43u);
    EXPECT_EQ(Crc32c(nullptr, 0), 0u);
  }
}

TEST_F(Crc32cEngineTest, EnginesAgreeAcrossLengthsAndOffsets) {
  // Sweep every length 0..257 (covering the 8-byte slicing boundary and
  // both tail shapes) from every misalignment 0..7, with a zero and a
  // nonzero seed. The single-table engine is the oracle; the others must
  // match bit for bit — this is what keeps WAL frames, blob pages, and
  // transport checksums readable no matter which engine wrote them.
  Rng rng(20260808);
  std::vector<uint8_t> buffer(257 + 8);
  for (uint8_t& b : buffer) b = static_cast<uint8_t>(rng.NextBelow(256));
  const std::vector<Crc32cImpl> engines = AvailableEngines();
  for (size_t offset = 0; offset < 8; ++offset) {
    for (size_t len = 0; len <= 257; ++len) {
      for (uint32_t seed : {0u, 0xdeadbeefu}) {
        ASSERT_TRUE(SetCrc32cImpl(Crc32cImpl::kTable));
        const uint32_t expected = Crc32c(buffer.data() + offset, len, seed);
        for (size_t e = 1; e < engines.size(); ++e) {
          ASSERT_TRUE(SetCrc32cImpl(engines[e]));
          EXPECT_EQ(Crc32c(buffer.data() + offset, len, seed), expected)
              << "engine " << static_cast<int>(engines[e]) << " offset "
              << offset << " len " << len << " seed " << seed;
        }
      }
    }
  }
}

TEST_F(Crc32cEngineTest, SeedChainsAcrossSplits) {
  // Checksumming a buffer in two chunks (seeding the second call with
  // the first's result) must equal one whole-buffer pass, per engine.
  Rng rng(7);
  std::vector<uint8_t> buffer(129);
  for (uint8_t& b : buffer) b = static_cast<uint8_t>(rng.NextBelow(256));
  for (Crc32cImpl engine : AvailableEngines()) {
    ASSERT_TRUE(SetCrc32cImpl(engine));
    const uint32_t whole = Crc32c(buffer.data(), buffer.size());
    for (size_t split : {0u, 1u, 7u, 8u, 64u, 128u, 129u}) {
      uint32_t first = Crc32c(buffer.data(), split);
      uint32_t chained =
          Crc32c(buffer.data() + split, buffer.size() - split, first);
      EXPECT_EQ(chained, whole) << "split " << split;
    }
  }
}

}  // namespace
}  // namespace mmconf
