// Full-system integration tests: the Fig. 1 architecture end-to-end —
// documents in the BLOB database, an interaction server, multiple clients
// on asymmetric links, presentation reconfiguration, media operations and
// the layered codec for multi-resolution delivery (Fig. 9).

#include <gtest/gtest.h>

#include "client/client.h"
#include "compress/layered_codec.h"
#include "search/text_index.h"
#include "doc/builder.h"
#include "imaging/ops.h"
#include "media/synthetic.h"
#include "server/interaction_server.h"
#include "storage/database.h"

namespace mmconf {
namespace {

using compress::LayeredCodec;
using doc::MakeMedicalRecordDocument;
using doc::MultimediaDocument;
using server::ClientEndpoint;
using server::InteractionServer;
using server::ReconfigResult;
using server::Room;

class IntegrationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_);
    server_node_ = network_->AddNode("interaction-server");
    db_node_ = network_->AddNode("oracle");
    fast_client_ = network_->AddNode("workstation");
    slow_client_ = network_->AddNode("home-dsl");
    ASSERT_TRUE(
        network_->SetDuplexLink(server_node_, db_node_, {50e6, 500}).ok());
    ASSERT_TRUE(network_
                    ->SetDuplexLink(server_node_, fast_client_,
                                    {10e6, 10000})
                    .ok());
    ASSERT_TRUE(network_
                    ->SetDuplexLink(server_node_, slow_client_,
                                    {4e3, 80000})  // 4 KB/s mobile link
                    .ok());
    ASSERT_TRUE(db_.RegisterStandardTypes().ok());
    server_ = std::make_unique<InteractionServer>(&db_, network_.get(),
                                                  server_node_, db_node_);
  }

  Clock clock_;
  storage::DatabaseServer db_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<InteractionServer> server_;
  net::NodeId server_node_ = 0, db_node_ = 0, fast_client_ = 0,
              slow_client_ = 0;
};

TEST_F(IntegrationTest, FullConsultationScenario) {
  // 1. A medical record document and its CT image go into the database.
  Rng rng(1);
  media::Image ct = media::MakePhantomCt({256, 256, 5, 3.0}, rng);
  storage::ObjectRef ct_ref =
      db_.Store("Image",
                {{"FLD_QUALITY", int64_t{95}},
                 {"FLD_TEXTS", std::string("chest ct")},
                 {"FLD_CM", std::string("slice 42")}},
                {{"FLD_DATA", ct.Encode()}})
          .value();
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef doc_ref =
      server_->StoreDocument(document, "patient-9").value();

  // 2. Open a room and let two physicians join.
  server_->OpenRoom("tumor-board", doc_ref).value();
  client::ClientModule fast("dr-cohen", fast_client_);
  client::ClientModule slow("dr-levi", slow_client_);
  MicrosT fast_joined =
      server_->Join("tumor-board", {"dr-cohen", fast_client_}).value();
  MicrosT slow_joined =
      server_->Join("tumor-board", {"dr-levi", slow_client_}).value();
  EXPECT_LT(fast_joined, slow_joined);

  std::vector<net::Delivery> deliveries = network_->AdvanceUntilIdle();
  fast.HandleDeliveries(deliveries);
  slow.HandleDeliveries(deliveries);
  EXPECT_GT(fast.bytes_received(), 0u);
  // The 4 KB/s member receives a §4.4-transcoded (smaller) rendition of
  // the same shared view.
  EXPECT_GT(slow.bytes_received(), 0u);
  EXPECT_LT(slow.bytes_received(), fast.bytes_received());
  EXPECT_GT(slow.last_delivery_at(), fast.last_delivery_at());

  // 3. dr-cohen hides the CT; dr-levi sees the X-ray surface.
  ReconfigResult result =
      server_->SubmitChoice("tumor-board", "dr-cohen", "CT", "hidden")
          .value();
  EXPECT_FALSE(result.changed_components.empty());
  deliveries = network_->AdvanceUntilIdle();
  slow.HandleDeliveries(deliveries);
  EXPECT_GT(slow.deliveries_received(), 1u);

  // 4. The room's rendered view reflects the choice.
  Room* room = server_->GetRoom("tumor-board").value();
  std::string view =
      client::RenderDocumentView(room->document(), room->configuration())
          .value();
  EXPECT_NE(view.find("XRay  [flat]"), std::string::npos);
  EXPECT_NE(view.find("CT  [hidden]"), std::string::npos);

  // 5. dr-levi freezes the CT and segments it (a real image op against
  // the stored object).
  ASSERT_TRUE(room->Freeze("dr-levi", "CT").ok());
  Bytes ct_bytes = db_.FetchBlob(ct_ref, "FLD_DATA").value();
  media::Image fetched = media::Image::Decode(ct_bytes).value();
  media::Image segmented = imaging::SegmentedView(fetched, 4).value();
  ASSERT_TRUE(
      db_.Modify(ct_ref, {}, {{"FLD_DATA", segmented.Encode()}}).ok());
  server::UserAction op;
  op.type = server::ActionType::kSegmentOp;
  op.viewer = "dr-levi";
  op.component = "CT";
  EXPECT_TRUE(server_->ApplyOperation("tumor-board", op, true).ok());

  // 6. The modified image is what later fetches see.
  media::Image refetched =
      media::Image::Decode(db_.FetchBlob(ct_ref, "FLD_DATA").value())
          .value();
  EXPECT_EQ(refetched.pixels(), segmented.pixels());
}

TEST_F(IntegrationTest, MultiResolutionDeliveryPerBandwidth) {
  // Fig. 9: "the same image is shown with different resolutions to the
  // various partners in the chat room" — encode the CT with the layered
  // codec and give each client the number of layers its downlink can
  // carry within a 2-second interactive deadline.
  Rng rng(2);
  media::Image ct = media::MakePhantomCt({256, 256, 5, 3.0}, rng);
  LayeredCodec codec;
  Bytes stream = codec.Encode(ct).value();

  const double kDeadlineSeconds = 2.0;
  auto budget_for = [&](net::NodeId client) {
    double bandwidth = network_->GetLink(server_node_, client)
                           .value()
                           .bandwidth_bytes_per_sec;
    return static_cast<size_t>(bandwidth * kDeadlineSeconds);
  };
  int fast_layers =
      LayeredCodec::LayersWithinBudget(stream, budget_for(fast_client_))
          .value();
  int slow_layers =
      LayeredCodec::LayersWithinBudget(stream, budget_for(slow_client_))
          .value();
  EXPECT_EQ(fast_layers, 3);        // full quality
  EXPECT_LT(slow_layers, 3);        // degraded for the slow link
  EXPECT_GE(slow_layers, 0);

  media::Image fast_view =
      LayeredCodec::Decode(stream, fast_layers).value();
  double fast_psnr = media::Image::Psnr(ct, fast_view).value();
  if (slow_layers > 0) {
    media::Image slow_view =
        LayeredCodec::Decode(stream, slow_layers).value();
    EXPECT_GT(fast_psnr, media::Image::Psnr(ct, slow_view).value());
  } else {
    // Even the base layer does not fit: fall back to a thumbnail.
    media::Image thumb = LayeredCodec::DecodeThumbnail(stream, 2).value();
    EXPECT_EQ(thumb.width(), 64);
  }
}

TEST_F(IntegrationTest, CorruptedDocumentBlobDetected) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref =
      server_->StoreDocument(document, "patient-1").value();
  // Flip a byte inside the stored BLOB's pages.
  storage::ObjectRecord record = db_.FetchRecord(ref).value();
  storage::BlobId blob =
      std::get<storage::BlobId>(record.fields.at("FLD_DATA"));
  ASSERT_TRUE(db_.mutable_blob_store().CorruptForTesting(blob, 100).ok());
  EXPECT_TRUE(server_->OpenRoom("r", ref).status().IsCorruption());
}

TEST_F(IntegrationTest, DocumentSurvivesStorageRoundTripWithOperations) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  document.AddOperationVariable("CT", "flat", "CT.seg").value();
  storage::ObjectRef ref =
      server_->StoreDocument(document, "patient-2").value();
  Room* room = server_->OpenRoom("r2", ref).value();
  EXPECT_EQ(room->document().num_variables(), document.num_variables());
  EXPECT_EQ(room->document().DefaultPresentation().value(),
            document.DefaultPresentation().value());
}

TEST_F(IntegrationTest, ArchivedMinutesAreSearchable) {
  // The intro's closing loop: a consultation happens, its minutes are
  // stored, and a later physician finds them by keyword.
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef doc_ref =
      server_->StoreDocument(document, "patient-3").value();
  server_->OpenRoom("board", doc_ref).value();
  server_->Join("board", {"dr-cohen", fast_client_}).value();
  server_->SubmitChoice("board", "dr-cohen", "CT", "segmented").value();
  Room* room = server_->GetRoom("board").value();
  ASSERT_TRUE(room->Freeze("dr-cohen", "CT").ok());

  storage::ObjectRef minutes =
      server_->ArchiveRoomLog("board").value();
  EXPECT_TRUE(server_->ArchiveRoomLog("ghost").status().IsNotFound());

  search::TextIndex index(&db_);
  ASSERT_TRUE(index.AddText(minutes).ok());
  // Find the consultation that segmented a CT.
  std::vector<search::TextHit> hits =
      index.Query("choice CT segmented", 5).value();
  ASSERT_FALSE(hits.empty());
  EXPECT_EQ(hits[0].ref, minutes);
  // The stored text names the actors.
  Bytes payload = db_.FetchBlob(minutes, "FLD_DATA").value();
  std::string text(payload.begin(), payload.end());
  EXPECT_NE(text.find("dr-cohen"), std::string::npos);
  EXPECT_NE(text.find("freeze"), std::string::npos);
}

TEST_F(IntegrationTest, AudioObjectLifecycle) {
  // Voice fragments travel the same storage path as images.
  Rng rng(3);
  std::vector<media::SpeakerProfile> speakers = media::MakeSpeakers(2, rng);
  std::vector<media::Word> vocab = media::MakeVocabulary(3, 3, 6, rng);
  media::ConversationOptions options;
  options.num_turns = 4;
  media::Conversation conv =
      media::MakeConversation(speakers, vocab, options, rng);
  storage::ObjectRef ref =
      db_.Store("Audio",
                {{"FLD_FILENAME", std::string("consult.pcm")},
                 {"FLD_SECTORS",
                  static_cast<int64_t>(conv.signal.size())}},
                {{"FLD_DATA", conv.signal.Encode()}})
          .value();
  media::AudioSignal fetched =
      media::AudioSignal::Decode(db_.FetchBlob(ref, "FLD_DATA").value())
          .value();
  EXPECT_EQ(fetched.size(), conv.signal.size());
  EXPECT_EQ(fetched.sample_rate(), conv.signal.sample_rate());
}

}  // namespace
}  // namespace mmconf
