#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/rng.h"
#include "doc/builder.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/interaction_server.h"
#include "storage/database.h"
#include "storage/sharded_db.h"
#include "storage/wal.h"

namespace mmconf::storage {
namespace {

Bytes RandomBytes(size_t n, Rng& rng) {
  Bytes data(n);
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

std::map<std::string, FieldValue> ImageFields(int64_t quality,
                                              const std::string& note) {
  return {{"FLD_QUALITY", FieldValue{quality}},
          {"FLD_TEXTS", FieldValue{note}},
          {"FLD_CM", FieldValue{std::string("cm")}}};
}

TEST(ShardedDbTest, RoutesAcrossShardsAndFetchesBack) {
  Clock clock;
  ShardedDatabaseServer::Options options;
  options.num_shards = 4;
  ShardedDatabaseServer db(&clock, options);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  Rng rng(5);
  std::map<std::string, Bytes> payloads;
  std::vector<ObjectRef> refs;
  for (int i = 0; i < 32; ++i) {
    Bytes blob = RandomBytes(200 + 40 * i, rng);
    ObjectRef ref = db.Store("Image", ImageFields(i, "img-" + std::to_string(i)),
                             {{"FLD_DATA", blob}})
                        .value();
    payloads.emplace(ref.type + "/" + std::to_string(ref.id), blob);
    refs.push_back(ref);
  }
  // Ids are facade-assigned and dense.
  for (size_t i = 0; i < refs.size(); ++i) {
    EXPECT_EQ(refs[i].id, i + 1);
  }
  // 32 hashed objects land on more than one of 4 shards.
  size_t populated = 0;
  size_t total = 0;
  for (size_t s = 0; s < db.num_shards(); ++s) {
    size_t count = db.shard(s)->List("Image").value().size();
    total += count;
    if (count > 0) ++populated;
  }
  EXPECT_EQ(total, refs.size());
  EXPECT_GT(populated, 1u);
  // Every ref fetches its own content through the facade.
  for (const ObjectRef& ref : refs) {
    ObjectRecord record = db.FetchRecord(ref).value();
    EXPECT_EQ(record.id, ref.id);
    EXPECT_EQ(db.FetchBlob(ref, "FLD_DATA").value(),
              payloads.at(ref.type + "/" + std::to_string(ref.id)));
    EXPECT_EQ(db.BlobSize(ref, "FLD_DATA").value(),
              payloads.at(ref.type + "/" + std::to_string(ref.id)).size());
  }
}

TEST(ShardedDbTest, ListMergesShardsInAscendingIdOrder) {
  Clock clock;
  ShardedDatabaseServer::Options options;
  options.num_shards = 3;
  ShardedDatabaseServer db(&clock, options);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  for (int i = 0; i < 20; ++i) {
    db.Store("Text", {{"FLD_TITLE", FieldValue{std::string("t")}}},
             {{"FLD_DATA", Bytes{1, 2, 3}}})
        .value();
  }
  std::vector<ObjectRef> listed = db.List("Text").value();
  ASSERT_EQ(listed.size(), 20u);
  for (size_t i = 0; i < listed.size(); ++i) {
    EXPECT_EQ(listed[i].id, i + 1);
  }
  EXPECT_TRUE(db.List("Nope").status().IsNotFound());
}

TEST(ShardedDbTest, BehavesLikeSingleDatabaseServer) {
  Clock clock;
  ShardedDatabaseServer::Options options;
  options.num_shards = 4;
  ShardedDatabaseServer sharded(&clock, options);
  DatabaseServer single;
  ASSERT_TRUE(sharded.RegisterStandardTypes().ok());
  ASSERT_TRUE(single.RegisterStandardTypes().ok());
  Rng rng(9);
  std::vector<ObjectRef> refs;
  for (int i = 0; i < 16; ++i) {
    Bytes blob = RandomBytes(100 + 10 * i, rng);
    ObjectRef a =
        sharded.Store("Image", ImageFields(i, "x"), {{"FLD_DATA", blob}})
            .value();
    ObjectRef b =
        single.Store("Image", ImageFields(i, "x"), {{"FLD_DATA", blob}})
            .value();
    ASSERT_EQ(a.id, b.id);
    refs.push_back(a);
  }
  ASSERT_TRUE(sharded
                  .Modify(refs[3], {{"FLD_QUALITY", FieldValue{int64_t{99}}}},
                          {})
                  .ok());
  ASSERT_TRUE(
      single.Modify(refs[3], {{"FLD_QUALITY", FieldValue{int64_t{99}}}}, {})
          .ok());
  ASSERT_TRUE(sharded.Delete(refs[7]).ok());
  ASSERT_TRUE(single.Delete(refs[7]).ok());
  EXPECT_EQ(sharded.List("Image").value(), single.List("Image").value());
  for (const ObjectRef& ref : refs) {
    if (ref.id == refs[7].id) {
      EXPECT_TRUE(sharded.FetchRecord(ref).status().IsNotFound());
      continue;
    }
    // Blob ids are a per-store implementation detail (each shard runs
    // its own BlobStore), so compare scalars and blob payloads instead
    // of raw field maps.
    ObjectRecord a = sharded.FetchRecord(ref).value();
    ObjectRecord b = single.FetchRecord(ref).value();
    ASSERT_EQ(a.fields.size(), b.fields.size());
    for (const auto& [name, value] : a.fields) {
      if (TypeOf(value) == FieldType::kBlob) {
        EXPECT_EQ(sharded.FetchBlob(ref, name).value(),
                  single.FetchBlob(ref, name).value());
      } else {
        EXPECT_EQ(value, b.fields.at(name));
      }
    }
  }
  // Errors surface identically: unknown type, missing object.
  EXPECT_TRUE(sharded.Store("Nope", {}, {}).status().IsNotFound());
  EXPECT_TRUE(sharded.Delete({"Image", 999}).IsNotFound());
  EXPECT_TRUE(sharded
                  .Modify({"Image", 999},
                          {{"FLD_QUALITY", FieldValue{int64_t{1}}}}, {})
                  .IsNotFound());
}

TEST(ShardedDbTest, WalReplayReproducesEachShardByteForByte) {
  Clock clock;
  ShardedDatabaseServer::Options options;
  options.num_shards = 3;
  ShardedDatabaseServer db(&clock, options);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  Rng rng(13);
  std::vector<ObjectRef> refs;
  for (int i = 0; i < 24; ++i) {
    refs.push_back(db.Store("Image", ImageFields(i, "r" + std::to_string(i)),
                            {{"FLD_DATA", RandomBytes(300, rng)}})
                       .value());
    clock.AdvanceMicros(1700);
  }
  ASSERT_TRUE(
      db.Modify(refs[5], {}, {{"FLD_DATA", RandomBytes(900, rng)}}).ok());
  ASSERT_TRUE(db.Delete(refs[11]).ok());
  db.SyncAll();
  for (size_t s = 0; s < db.num_shards(); ++s) {
    const WriteAheadLog* wal = db.shard_wal(s);
    EXPECT_EQ(wal->pending_records(), 0u);
    DatabaseServer fresh;
    WalReplayStats stats =
        ShardedDatabaseServer::ReplayLogInto(wal->durable(), &fresh).value();
    EXPECT_TRUE(stats.clean_end);
    EXPECT_EQ(stats.records_applied, wal->durable_records());
    EXPECT_EQ(fresh.Serialize(), db.shard(s)->Serialize()) << "shard " << s;
  }
}

TEST(ShardedDbTest, RebalancePreservesRefsAndContent) {
  Clock clock;
  ShardedDatabaseServer::Options options;
  options.num_shards = 2;
  ShardedDatabaseServer db(&clock, options);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  Rng rng(17);
  std::map<uint64_t, Bytes> payloads;
  std::vector<ObjectRef> refs;
  for (int i = 0; i < 20; ++i) {
    Bytes blob = RandomBytes(150 + 25 * i, rng);
    ObjectRef ref =
        db.Store("Image", ImageFields(i, "b"), {{"FLD_DATA", blob}}).value();
    payloads.emplace(ref.id, blob);
    refs.push_back(ref);
  }
  std::vector<ObjectRef> listed_before = db.List("Image").value();
  ASSERT_TRUE(db.Rebalance(5).ok());
  EXPECT_EQ(db.num_shards(), 5u);
  EXPECT_EQ(db.List("Image").value(), listed_before);
  for (const ObjectRef& ref : refs) {
    EXPECT_EQ(db.FetchBlob(ref, "FLD_DATA").value(), payloads.at(ref.id));
  }
  // The fresh WALs are a checkpoint: replaying each one reproduces its
  // shard exactly, with no dependence on pre-rebalance history.
  for (size_t s = 0; s < db.num_shards(); ++s) {
    DatabaseServer fresh;
    WalReplayStats stats =
        ShardedDatabaseServer::ReplayLogInto(db.shard_wal(s)->durable(),
                                             &fresh)
            .value();
    EXPECT_TRUE(stats.clean_end);
    EXPECT_EQ(fresh.Serialize(), db.shard(s)->Serialize());
  }
  // New stores keep working and ids continue past the re-stored maximum.
  ObjectRef next =
      db.Store("Image", ImageFields(0, "post"), {{"FLD_DATA", Bytes{9}}})
          .value();
  EXPECT_EQ(next.id, refs.back().id + 1);
}

TEST(ShardedDbTest, ShardEvictionMidListKeepsRefsValid) {
  Clock clock;
  ShardedDatabaseServer::Options options;
  options.num_shards = 4;
  ShardedDatabaseServer db(&clock, options);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  Rng rng(23);
  for (int i = 0; i < 18; ++i) {
    db.Store("Image", ImageFields(i, "e"),
             {{"FLD_DATA", RandomBytes(120, rng)}})
        .value();
  }
  // A client walks a List snapshot while the operator evicts shards by
  // rebalancing 4 -> 2: every previously listed ref must stay valid
  // because refs name (type, id), not a shard.
  std::vector<ObjectRef> snapshot = db.List("Image").value();
  size_t walked = 0;
  for (const ObjectRef& ref : snapshot) {
    if (walked == snapshot.size() / 2) {
      ASSERT_TRUE(db.Rebalance(2).ok());
      EXPECT_EQ(db.num_shards(), 2u);
    }
    EXPECT_TRUE(db.FetchRecord(ref).ok()) << "ref " << ref.id;
    ++walked;
  }
  EXPECT_EQ(db.List("Image").value(), snapshot);
}

TEST(ShardedDbTest, RecoveryResumesWalHistory) {
  Clock clock;
  ShardedDatabaseServer::Options options;
  options.num_shards = 2;
  ShardedDatabaseServer db(&clock, options);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  Rng rng(29);
  for (int i = 0; i < 12; ++i) {
    db.Store("Image", ImageFields(i, "w"),
             {{"FLD_DATA", RandomBytes(80, rng)}})
        .value();
  }
  db.SyncAll();
  // Crash shard 0 with a torn tail and recover it.
  WalCrashInjector injector(31);
  WalCrashImage image = injector.Crash(*db.shard_wal(0),
                                       WalCrashKind::kTornTail);
  WalReplayStats stats = db.RecoverShardFromLog(0, image.log).value();
  EXPECT_EQ(stats.records_applied, image.clean_records);
  EXPECT_EQ(db.shard_wal(0)->durable_records(), image.clean_records);
  EXPECT_TRUE(db.shard(0)->blob_store().VerifyAllPages().ok());
  // The WAL resumes after the surviving history: further mutations log
  // with sequential lsns and a fresh replay reproduces the shard.
  for (int i = 0; i < 6; ++i) {
    db.Store("Image", ImageFields(100 + i, "post-crash"),
             {{"FLD_DATA", RandomBytes(60, rng)}})
        .value();
  }
  db.SyncAll();
  for (size_t s = 0; s < db.num_shards(); ++s) {
    DatabaseServer fresh;
    WalReplayStats replay =
        ShardedDatabaseServer::ReplayLogInto(db.shard_wal(s)->durable(),
                                             &fresh)
            .value();
    EXPECT_TRUE(replay.clean_end);
    EXPECT_EQ(fresh.Serialize(), db.shard(s)->Serialize());
  }
}

TEST(ShardedDbTest, ObserverPublishesWalAndShardMetrics) {
  Clock clock;
  obs::MetricsRegistry metrics;
  obs::Tracer tracer(&clock);
  ShardedDatabaseServer::Options options;
  options.num_shards = 2;
  ShardedDatabaseServer db(&clock, options);
  db.SetObserver(&metrics, &tracer);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  Rng rng(37);
  for (int i = 0; i < 10; ++i) {
    db.Store("Image", ImageFields(i, "m"),
             {{"FLD_DATA", RandomBytes(100, rng)}})
        .value();
  }
  db.SyncAll();
  EXPECT_EQ(metrics.GetGauge("storage.num_shards")->value(), 2);
  // 2 registration records + 10 stores.
  EXPECT_EQ(metrics.GetCounter("storage.wal.appends")->value(), 12u);
  EXPECT_GT(metrics.GetCounter("storage.wal.append_bytes")->value(), 0u);
  EXPECT_GT(metrics.GetCounter("storage.wal.syncs")->value(), 0u);
  int64_t objects = metrics.GetGauge("storage.shard.0.objects")->value() +
                    metrics.GetGauge("storage.shard.1.objects")->value();
  EXPECT_EQ(objects, 10);
  WalCrashInjector injector(41);
  WalCrashImage image = injector.Crash(*db.shard_wal(0),
                                       WalCrashKind::kTornTail);
  db.RecoverShardFromLog(0, image.log).value();
  EXPECT_EQ(metrics.GetCounter("storage.recoveries")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("storage.wal.replayed_records")->value(),
            image.clean_records);
  ASSERT_TRUE(db.Rebalance(3).ok());
  EXPECT_EQ(metrics.GetCounter("storage.rebalances")->value(), 1u);
  EXPECT_EQ(metrics.GetGauge("storage.num_shards")->value(), 3);
  // Recovery and rebalance each left a span on the storage lane.
  EXPECT_GE(tracer.num_events(), 2u);
}

TEST(ShardedDbTest, InteractionServerRunsOverShardedFacade) {
  Clock clock;
  net::Network network(&clock);
  net::NodeId server_node = network.AddNode("interaction-server");
  net::NodeId db_node = network.AddNode("sharded-db");
  net::NodeId client = network.AddNode("client");
  ASSERT_TRUE(network.SetDuplexLink(server_node, db_node, {50e6, 1000}).ok());
  ASSERT_TRUE(
      network.SetDuplexLink(server_node, client, {1e6, 20000}).ok());
  ShardedDatabaseServer::Options options;
  options.num_shards = 3;
  ShardedDatabaseServer db(&clock, options);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  server::InteractionServer server(&db, &network, server_node, db_node);
  doc::MultimediaDocument document =
      doc::MakeMedicalRecordDocument().value();
  ObjectRef ref = server.StoreDocument(document, "patient-17").value();
  server.OpenRoom("consult", ref).value();
  server.Join("consult", {"dr-cohen", client}).value();
  server.SubmitChoice("consult", "dr-cohen", "CT", "hidden").value();
  // The documents live in the sharded tier and replay like any object.
  db.SyncAll();
  for (size_t s = 0; s < db.num_shards(); ++s) {
    DatabaseServer fresh;
    WalReplayStats stats =
        ShardedDatabaseServer::ReplayLogInto(db.shard_wal(s)->durable(),
                                             &fresh)
            .value();
    EXPECT_TRUE(stats.clean_end);
    EXPECT_EQ(fresh.Serialize(), db.shard(s)->Serialize());
  }
}

TEST(ShardedDbTest, RecoveryHealsRegistrationsLostWithTheShard) {
  Clock clock;
  ShardedDatabaseServer::Options options;
  options.num_shards = 2;
  ShardedDatabaseServer db(&clock, options);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  Rng rng(61);
  for (int i = 0; i < 10; ++i) {
    db.Store("Image", ImageFields(i, "h"),
             {{"FLD_DATA", RandomBytes(120, rng)}})
        .value();
  }
  db.SyncAll();
  // Shard 0's machine loses its entire log — registrations included (on
  // a quiet shard they may never even have group-committed). Recovery
  // replays nothing, then heals the schema from the surviving shards:
  // registrations are facade-global bootstrap metadata, not lost data.
  ASSERT_EQ(db.RecoverShardFromLog(0, Bytes{}).value().records_applied, 0u);
  EXPECT_TRUE(db.shard(0)->HasType("Image"));
  EXPECT_TRUE(db.shard(0)->HasType("Text"));
  // The healed registrations landed in shard 0's WAL, so the restored
  // log still replays to the live image.
  db.SyncAll();
  DatabaseServer fresh;
  WalReplayStats replay =
      ShardedDatabaseServer::ReplayLogInto(db.shard_wal(0)->durable(),
                                           &fresh)
          .value();
  EXPECT_TRUE(replay.clean_end);
  EXPECT_EQ(fresh.Serialize(), db.shard(0)->Serialize());
  // The facade keeps serving: new stores route to both shards again.
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(db.Store("Image", ImageFields(100 + i, "post"),
                         {{"FLD_DATA", RandomBytes(90, rng)}})
                    .ok());
  }
}

/// A 1-shard facade carrying a type `db` never registered, with the log
/// that produced it — the "foreign image" the recovery paths must not
/// accept silently.
struct ForeignImage {
  Clock clock;
  std::unique_ptr<ShardedDatabaseServer> facade;

  ForeignImage() {
    facade = std::make_unique<ShardedDatabaseServer>(&clock);
    EXPECT_TRUE(facade->RegisterStandardTypes().ok());
    MediaTypeEntry entry{"Zed", "application/x-zed", "read-write",
                         "ZED_OBJECTS_TABLE", "a type the facade lacks"};
    EXPECT_TRUE(facade->RegisterType(entry, {{"FLD_NAME", FieldType::kString},
                                             {"FLD_DATA", FieldType::kBlob}})
                    .ok());
    facade
        ->Store("Zed", {{"FLD_NAME", FieldValue{std::string("z")}}},
                {{"FLD_DATA", Bytes{1, 2, 3}}})
        .value();
    facade->SyncAll();
  }

  const Bytes& log() const { return facade->shard_wal(0)->durable(); }
};

TEST(ShardedDbTest, RecoverShardFromLogRefusesForeignImageUntouched) {
  Clock clock;
  ShardedDatabaseServer::Options options;
  options.num_shards = 2;
  ShardedDatabaseServer db(&clock, options);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  Rng rng(67);
  for (int i = 0; i < 6; ++i) {
    db.Store("Image", ImageFields(i, "f"),
             {{"FLD_DATA", RandomBytes(100, rng)}})
        .value();
  }
  db.SyncAll();
  ForeignImage foreign;
  Bytes image_before = db.shard(0)->Serialize();
  size_t records_before = db.shard_wal(0)->durable_records();
  // An image carrying a type the facade never registered cannot come
  // from this facade's own history: refuse it before mutating anything.
  Status refused = db.RecoverShardFromLog(0, foreign.log()).status();
  EXPECT_TRUE(refused.IsNotFound());
  EXPECT_EQ(db.shard(0)->Serialize(), image_before);
  EXPECT_EQ(db.shard_wal(0)->durable_records(), records_before);
  EXPECT_FALSE(db.shard(0)->HasType("Zed"));
  EXPECT_TRUE(db.Store("Image", ImageFields(99, "after"),
                       {{"FLD_DATA", Bytes{7}}})
                  .ok());
}

TEST(ShardedDbTest, InstallShardSurfacesForeignTypeAndRebalanceFailsClosed) {
  Clock clock;
  ShardedDatabaseServer::Options options;
  options.num_shards = 2;
  ShardedDatabaseServer db(&clock, options);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  Rng rng(71);
  std::vector<ObjectRef> refs;
  for (int i = 0; i < 8; ++i) {
    refs.push_back(db.Store("Image", ImageFields(i, "rb"),
                            {{"FLD_DATA", RandomBytes(100, rng)}})
                       .value());
  }
  db.SyncAll();
  // A promotion-style takeover installs whatever the follower held —
  // there is no old primary to fall back to — so an image with a type
  // the facade never registered stays installed and the id-counter
  // rebuild error surfaces instead.
  ForeignImage foreign;
  auto replica = std::make_unique<DatabaseServer>();
  ASSERT_TRUE(ShardedDatabaseServer::ReplayLogInto(foreign.log(),
                                                   replica.get())
                  .ok());
  Status installed =
      db.InstallShard(0, std::move(replica), foreign.log(),
                      foreign.facade->shard_wal(0)->durable_records(),
                      foreign.facade->shard_wal(0)->sync_points());
  EXPECT_TRUE(installed.IsNotFound());
  EXPECT_TRUE(db.shard(0)->HasType("Zed"));
  // Rebalance cannot re-shard catalogs that disagree: it fails closed —
  // error surfaced, shard count and surviving content unchanged.
  Status rebalanced = db.Rebalance(3);
  EXPECT_TRUE(rebalanced.IsNotFound());
  EXPECT_EQ(db.num_shards(), 2u);
  for (const ObjectRef& ref : refs) {
    if (db.ShardOf(ref) != 0) {
      EXPECT_TRUE(db.FetchRecord(ref).ok()) << "ref " << ref.id;
    }
  }
}

TEST(ShardedDbTest, ErrorPathsLeaveNoOpenTraceSpans) {
  Clock clock;
  obs::MetricsRegistry metrics;
  obs::Tracer tracer(&clock);
  ShardedDatabaseServer::Options options;
  options.num_shards = 2;
  ShardedDatabaseServer db(&clock, options);
  db.SetObserver(&metrics, &tracer);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  Rng rng(73);
  for (int i = 0; i < 6; ++i) {
    db.Store("Image", ImageFields(i, "sp"),
             {{"FLD_DATA", RandomBytes(80, rng)}})
        .value();
  }
  db.SyncAll();
  // Successful recovery and rebalance, then the refusing/failing legs of
  // both: every span must close, success or error — a leaked open span
  // renders as a zero-length event and poisons the timeline.
  WalCrashInjector injector(79);
  WalCrashImage image =
      injector.Crash(*db.shard_wal(0), WalCrashKind::kTornTail);
  ASSERT_TRUE(db.RecoverShardFromLog(0, image.log).ok());
  ASSERT_TRUE(db.Rebalance(3).ok());
  ForeignImage foreign;
  EXPECT_FALSE(db.RecoverShardFromLog(0, foreign.log()).ok());
  auto replica = std::make_unique<DatabaseServer>();
  ASSERT_TRUE(ShardedDatabaseServer::ReplayLogInto(foreign.log(),
                                                   replica.get())
                  .ok());
  EXPECT_FALSE(db.InstallShard(0, std::move(replica), foreign.log(),
                               foreign.facade->shard_wal(0)->durable_records(),
                               foreign.facade->shard_wal(0)->sync_points())
                   .ok());
  EXPECT_FALSE(db.Rebalance(2).ok());
  EXPECT_GE(tracer.num_events(), 5u);
  EXPECT_EQ(tracer.open_spans(), 0u);
}

// --- Acceptance sweep -------------------------------------------------
//
// A seeded crash injected at any WAL record boundary during a
// 200-mutation workload recovers to a state whose Serialize() matches
// the last group-committed prefix, across >= 3 seeds and >= 2 shard
// counts.

/// Per-shard Serialize() snapshots keyed by the shard WAL's total record
/// count at capture time. Replaying a k-record log prefix must land
/// exactly on the snapshot taken when the shard had k records.
using ShardSnapshots = std::vector<std::map<size_t, Bytes>>;

void CaptureSnapshots(const ShardedDatabaseServer& db,
                      ShardSnapshots* snapshots) {
  for (size_t s = 0; s < db.num_shards(); ++s) {
    (*snapshots)[s][db.shard_wal(s)->total_records()] =
        db.shard(s)->Serialize();
  }
}

/// Runs the 200-mutation store/modify/delete workload, capturing a
/// snapshot of every shard after every mutation.
void RunWorkload(uint64_t seed, ShardedDatabaseServer* db, Clock* clock,
                 ShardSnapshots* snapshots) {
  Rng rng(seed);
  std::vector<ObjectRef> live;
  for (int step = 0; step < 200; ++step) {
    uint64_t roll = rng.NextBelow(100);
    if (roll < 50 || live.empty()) {
      const char* type = rng.NextBelow(2) == 0 ? "Image" : "Text";
      std::map<std::string, FieldValue> fields;
      if (std::string(type) == "Image") {
        fields = ImageFields(static_cast<int64_t>(step), "s" +
                             std::to_string(step));
      } else {
        fields = {{"FLD_TITLE",
                   FieldValue{std::string("note-") + std::to_string(step)}}};
      }
      Bytes blob = RandomBytes(rng.NextBelow(600), rng);
      live.push_back(db->Store(type, fields, {{"FLD_DATA", blob}}).value());
    } else if (roll < 75) {
      const ObjectRef& ref = live[rng.NextBelow(live.size())];
      std::map<std::string, Bytes> blobs;
      if (rng.NextBelow(2) == 0) {
        blobs.emplace("FLD_DATA", RandomBytes(rng.NextBelow(800), rng));
      }
      std::map<std::string, FieldValue> fields;
      if (ref.type == "Image") {
        fields.emplace("FLD_QUALITY",
                       FieldValue{static_cast<int64_t>(step)});
      } else {
        fields.emplace("FLD_TITLE",
                       FieldValue{std::string("mod-") +
                                  std::to_string(step)});
      }
      ASSERT_TRUE(db->Modify(ref, fields, blobs).ok());
    } else {
      size_t pick = rng.NextBelow(live.size());
      ASSERT_TRUE(db->Delete(live[pick]).ok());
      live.erase(live.begin() + pick);
    }
    clock->AdvanceMicros(static_cast<MicrosT>(rng.NextBelow(2500)));
    CaptureSnapshots(*db, snapshots);
  }
}

/// Replays every record-boundary prefix of `log` and checks each lands
/// on the snapshot captured when the shard held that many records.
void SweepRecordBoundaries(const Bytes& log,
                           const std::map<size_t, Bytes>& snapshots,
                           size_t shard) {
  size_t pos = 0;
  size_t records = 0;
  while (true) {
    DatabaseServer fresh;
    Bytes prefix(log.begin(), log.begin() + pos);
    WalReplayStats stats =
        ShardedDatabaseServer::ReplayLogInto(prefix, &fresh).value();
    ASSERT_TRUE(stats.clean_end);
    ASSERT_EQ(stats.records_applied, records);
    auto it = snapshots.find(records);
    ASSERT_NE(it, snapshots.end())
        << "no snapshot at " << records << " records for shard " << shard;
    ASSERT_EQ(fresh.Serialize(), it->second)
        << "shard " << shard << " diverges at record " << records;
    if (pos >= log.size()) break;
    ASSERT_GE(log.size() - pos, 8u);
    size_t length = static_cast<size_t>(log[pos + 4]) |
                    static_cast<size_t>(log[pos + 5]) << 8 |
                    static_cast<size_t>(log[pos + 6]) << 16 |
                    static_cast<size_t>(log[pos + 7]) << 24;
    pos += 8 + length;
    ++records;
  }
}

class ShardedCrashRecoverySweep
    : public ::testing::TestWithParam<std::tuple<uint64_t, size_t>> {};

TEST_P(ShardedCrashRecoverySweep, EveryBoundaryAndCrashKindRecovers) {
  const uint64_t seed = std::get<0>(GetParam());
  const size_t num_shards = std::get<1>(GetParam());
  Clock clock;
  ShardedDatabaseServer::Options options;
  options.num_shards = num_shards;
  options.wal.group_commit_interval_micros = 4000;
  options.wal.group_commit_bytes = 8 * 1024;
  ShardedDatabaseServer db(&clock, options);
  ShardSnapshots snapshots(num_shards);
  // Snapshot the empty state (a crash before any record must recover to
  // a fresh server), then the post-registration state.
  CaptureSnapshots(db, &snapshots);
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  CaptureSnapshots(db, &snapshots);
  RunWorkload(seed, &db, &clock, &snapshots);

  // 1. Deterministic sweep: a crash at ANY record boundary of the full
  //    image replays to the exact snapshot at that record count.
  for (size_t s = 0; s < num_shards; ++s) {
    SweepRecordBoundaries(db.shard_wal(s)->FullImage(), snapshots[s], s);
  }

  // 2. Seeded crash injection: each fault kind on each shard recovers
  //    to the snapshot matching the image's clean prefix.
  for (WalCrashKind kind :
       {WalCrashKind::kTornTail, WalCrashKind::kFsyncLostSuffix,
        WalCrashKind::kPartialPageWrite}) {
    for (size_t s = 0; s < num_shards; ++s) {
      WalCrashInjector injector(seed * 131 + static_cast<uint64_t>(kind));
      WalCrashImage image = injector.Crash(*db.shard_wal(s), kind);
      WalReplayStats stats = db.RecoverShardFromLog(s, image.log).value();
      ASSERT_EQ(stats.records_applied, image.clean_records)
          << WalCrashKindToString(kind);
      auto it = snapshots[s].find(image.clean_records);
      ASSERT_NE(it, snapshots[s].end()) << WalCrashKindToString(kind);
      ASSERT_EQ(db.shard(s)->Serialize(), it->second)
          << WalCrashKindToString(kind) << " shard " << s;
      ASSERT_TRUE(db.shard(s)->blob_store().VerifyAllPages().ok());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndShardCounts, ShardedCrashRecoverySweep,
    ::testing::Combine(::testing::Values(7u, 21u, 42u),
                       ::testing::Values(size_t{2}, size_t{4})),
    [](const ::testing::TestParamInfo<std::tuple<uint64_t, size_t>>& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) + "_shards" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mmconf::storage
