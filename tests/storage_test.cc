#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>

#include "common/rng.h"
#include "storage/blob_store.h"
#include "storage/catalog.h"
#include "storage/database.h"
#include "storage/object_table.h"

namespace mmconf::storage {
namespace {

Bytes RandomBytes(size_t n, Rng& rng) {
  Bytes data(n);
  for (uint8_t& b : data) b = static_cast<uint8_t>(rng.Next());
  return data;
}

TEST(BlobStoreTest, PutGetRoundTrip) {
  BlobStore store;
  Rng rng(1);
  Bytes data = RandomBytes(10000, rng);
  BlobId id = store.Put(data).value();
  EXPECT_EQ(store.Get(id).value(), data);
  EXPECT_EQ(store.SizeOf(id).value(), data.size());
}

TEST(BlobStoreTest, EmptyBlobAllowed) {
  BlobStore store;
  BlobId id = store.Put({}).value();
  EXPECT_TRUE(store.Get(id).value().empty());
  EXPECT_EQ(store.SizeOf(id).value(), 0u);
}

TEST(BlobStoreTest, GetMissingIsNotFound) {
  BlobStore store;
  EXPECT_TRUE(store.Get(42).status().IsNotFound());
  EXPECT_TRUE(store.Delete(42).IsNotFound());
  EXPECT_TRUE(store.SizeOf(42).status().IsNotFound());
}

TEST(BlobStoreTest, RangesAcrossPageBoundaries) {
  BlobStore store;
  Rng rng(2);
  Bytes data = RandomBytes(3 * BlobStore::kPagePayload + 100, rng);
  BlobId id = store.Put(data).value();
  // Range spanning page 0 into page 1.
  size_t offset = BlobStore::kPagePayload - 10;
  Bytes range = store.GetRange(id, offset, 30).value();
  ASSERT_EQ(range.size(), 30u);
  for (size_t i = 0; i < 30; ++i) EXPECT_EQ(range[i], data[offset + i]);
  // Range clamped at the end.
  Bytes tail = store.GetRange(id, data.size() - 5, 100).value();
  EXPECT_EQ(tail.size(), 5u);
  // Range past the end is empty.
  EXPECT_TRUE(store.GetRange(id, data.size() + 10, 10).value().empty());
}

TEST(BlobStoreTest, DeleteReleasesPagesForReuse) {
  BlobStore store;
  Rng rng(3);
  BlobId a = store.Put(RandomBytes(BlobStore::kPagePayload * 4, rng)).value();
  size_t pages_after_a = store.page_count();
  EXPECT_TRUE(store.Delete(a).ok());
  EXPECT_EQ(store.free_page_count(), pages_after_a);
  BlobId b = store.Put(RandomBytes(BlobStore::kPagePayload * 4, rng)).value();
  EXPECT_EQ(store.page_count(), pages_after_a);  // no growth, pages reused
  EXPECT_EQ(store.free_page_count(), 0u);
  EXPECT_TRUE(store.Contains(b));
}

TEST(BlobStoreTest, UpdateReplacesContent) {
  BlobStore store;
  Rng rng(4);
  Bytes v1 = RandomBytes(5000, rng);
  Bytes v2 = RandomBytes(12000, rng);
  BlobId id = store.Put(v1).value();
  EXPECT_TRUE(store.Update(id, v2).ok());
  EXPECT_EQ(store.Get(id).value(), v2);
  EXPECT_TRUE(store.Update(999, v1).IsNotFound());
}

TEST(BlobStoreTest, UpdateShadowWritesBeforeReleasingOldPages) {
  BlobStore store;
  Rng rng(14);
  Bytes v1 = RandomBytes(BlobStore::kPagePayload * 4, rng);
  Bytes v2 = RandomBytes(BlobStore::kPagePayload * 4, rng);
  BlobId id = store.Put(v1).value();
  size_t pages_v1 = store.page_count();
  ASSERT_EQ(store.free_page_count(), 0u);
  EXPECT_TRUE(store.Update(id, v2).ok());
  // Shadow-write contract: the replacement is written to FRESH pages
  // before the old version's pages are released, so with an empty free
  // list the store must grow — reusing the old pages in place would
  // overwrite the prior version mid-update.
  EXPECT_EQ(store.page_count(), pages_v1 * 2);
  EXPECT_EQ(store.free_page_count(), pages_v1);
  EXPECT_EQ(store.Get(id).value(), v2);
  // The released pages are reusable afterwards.
  BlobId other = store.Put(RandomBytes(BlobStore::kPagePayload * 4, rng))
                     .value();
  EXPECT_EQ(store.page_count(), pages_v1 * 2);
  EXPECT_EQ(store.free_page_count(), 0u);
  EXPECT_TRUE(store.Contains(other));
  EXPECT_TRUE(store.VerifyAllPages().ok());
}

TEST(BlobStoreTest, GetRangeHugeLengthDoesNotOverflow) {
  BlobStore store;
  Rng rng(15);
  Bytes data = RandomBytes(10000, rng);
  BlobId id = store.Put(data).value();
  // offset + SIZE_MAX wraps size_t; the range must clamp to the blob
  // end instead of computing a bogus empty (or crashing) window.
  Bytes tail = store.GetRange(id, 100, SIZE_MAX).value();
  ASSERT_EQ(tail.size(), data.size() - 100);
  EXPECT_TRUE(std::equal(tail.begin(), tail.end(), data.begin() + 100));
  Bytes whole = store.GetRange(id, 0, SIZE_MAX).value();
  EXPECT_EQ(whole, data);
  EXPECT_TRUE(store.GetRange(id, data.size(), SIZE_MAX).value().empty());
}

TEST(BlobStoreTest, CorruptionDetectedOnRead) {
  BlobStore store;
  Rng rng(5);
  Bytes data = RandomBytes(9000, rng);
  BlobId id = store.Put(data).value();
  ASSERT_TRUE(store.VerifyAllPages().ok());
  ASSERT_TRUE(store.CorruptForTesting(id, 5000).ok());
  EXPECT_TRUE(store.Get(id).status().IsCorruption());
  EXPECT_TRUE(store.VerifyAllPages().IsCorruption());
  // The undamaged first page is still readable via a range.
  EXPECT_TRUE(store.GetRange(id, 0, 100).ok());
}

TEST(BlobStoreTest, ManyBlobsFuzzRoundTrip) {
  BlobStore store;
  Rng rng(6);
  std::vector<std::pair<BlobId, Bytes>> blobs;
  for (int i = 0; i < 50; ++i) {
    Bytes data = RandomBytes(static_cast<size_t>(rng.UniformInt(0, 20000)),
                             rng);
    BlobId id = store.Put(data).value();
    blobs.emplace_back(id, std::move(data));
    if (i % 3 == 0 && !blobs.empty()) {
      size_t victim = rng.NextBelow(blobs.size());
      EXPECT_TRUE(store.Delete(blobs[victim].first).ok());
      blobs.erase(blobs.begin() + static_cast<long>(victim));
    }
  }
  for (const auto& [id, data] : blobs) {
    EXPECT_EQ(store.Get(id).value(), data);
  }
}

std::vector<FieldDef> ImageSchema() {
  return {{"FLD_QUALITY", FieldType::kInt64},
          {"FLD_TEXTS", FieldType::kString},
          {"FLD_DATA", FieldType::kBlob}};
}

TEST(ObjectTableTest, InsertRequiresFullSchema) {
  ObjectTable table("IMAGE_OBJECTS_TABLE", ImageSchema());
  EXPECT_TRUE(table
                  .Insert({{"FLD_QUALITY", int64_t{90}},
                           {"FLD_TEXTS", std::string("ct scan")}})
                  .status()
                  .IsInvalidArgument());  // missing blob
  Result<ObjectId> id = table.Insert({{"FLD_QUALITY", int64_t{90}},
                                      {"FLD_TEXTS", std::string("ct scan")},
                                      {"FLD_DATA", BlobId{7}}});
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(table.size(), 1u);
}

TEST(ObjectTableTest, InsertRejectsWrongTypesAndUnknownColumns) {
  ObjectTable table("T", ImageSchema());
  EXPECT_TRUE(table
                  .Insert({{"FLD_QUALITY", std::string("high")},
                           {"FLD_TEXTS", std::string("x")},
                           {"FLD_DATA", BlobId{1}}})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(table
                  .Insert({{"FLD_QUALITY", int64_t{1}},
                           {"FLD_TEXTS", std::string("x")},
                           {"FLD_DATA", BlobId{1}},
                           {"BOGUS", int64_t{0}}})
                  .status()
                  .IsInvalidArgument());
}

TEST(ObjectTableTest, GetUpdateDelete) {
  ObjectTable table("T", ImageSchema());
  ObjectId id = table.Insert({{"FLD_QUALITY", int64_t{80}},
                              {"FLD_TEXTS", std::string("before")},
                              {"FLD_DATA", BlobId{3}}})
                    .value();
  EXPECT_TRUE(table.Update(id, {{"FLD_TEXTS", std::string("after")}}).ok());
  ObjectRecord record = table.Get(id).value();
  EXPECT_EQ(std::get<std::string>(record.fields.at("FLD_TEXTS")), "after");
  EXPECT_EQ(std::get<int64_t>(record.fields.at("FLD_QUALITY")), 80);
  EXPECT_TRUE(table.Delete(id).ok());
  EXPECT_TRUE(table.Get(id).status().IsNotFound());
  EXPECT_TRUE(table.Delete(id).IsNotFound());
}

TEST(ObjectTableTest, FindByString) {
  ObjectTable table("T", ImageSchema());
  for (int i = 0; i < 5; ++i) {
    table
        .Insert({{"FLD_QUALITY", int64_t{i}},
                 {"FLD_TEXTS", std::string(i % 2 == 0 ? "even" : "odd")},
                 {"FLD_DATA", BlobId{static_cast<BlobId>(i)}}})
        .value();
  }
  EXPECT_EQ(table.FindByString("FLD_TEXTS", "even").value().size(), 3u);
  EXPECT_EQ(table.FindByString("FLD_TEXTS", "odd").value().size(), 2u);
  EXPECT_TRUE(table.FindByString("FLD_QUALITY", "1")
                  .status()
                  .IsInvalidArgument());
}

TEST(CatalogTest, RegisterAndLookup) {
  Catalog catalog;
  MediaTypeEntry entry{"Image", "image/raw", "read-write",
                       "IMAGE_OBJECTS_TABLE", "raster images"};
  ASSERT_TRUE(catalog.RegisterType(entry, ImageSchema()).ok());
  EXPECT_TRUE(catalog.HasType("Image"));
  EXPECT_FALSE(catalog.HasType("Video"));
  EXPECT_EQ(catalog.GetType("Image").value().mime, "image/raw");
  EXPECT_TRUE(catalog.GetType("Video").status().IsNotFound());
  EXPECT_TRUE(catalog.RegisterType(entry, ImageSchema()).IsAlreadyExists());
  EXPECT_EQ(catalog.ListTypes().size(), 1u);
  EXPECT_EQ(catalog.TableFor("Image").value()->name(),
            "IMAGE_OBJECTS_TABLE");
}

TEST(DatabaseServerTest, StandardTypesMatchPaperSchema) {
  DatabaseServer db;
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  EXPECT_TRUE(db.catalog().HasType("Image"));
  EXPECT_TRUE(db.catalog().HasType("Audio"));
  EXPECT_TRUE(db.catalog().HasType("Cmp"));
  EXPECT_TRUE(db.catalog().HasType("Text"));
  // Idempotent.
  EXPECT_TRUE(db.RegisterStandardTypes().ok());
  EXPECT_EQ(db.catalog().GetType("Cmp").value().table_name,
            "CMP_OBJECTS_TABLE");
}

TEST(DatabaseServerTest, StoreFetchModifyDelete) {
  DatabaseServer db;
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  Rng rng(7);
  Bytes payload = RandomBytes(30000, rng);
  ObjectRef ref = db.Store("Image",
                           {{"FLD_QUALITY", int64_t{95}},
                            {"FLD_TEXTS", std::string("chest ct")},
                            {"FLD_CM", std::string("slice 12")}},
                           {{"FLD_DATA", payload}})
                      .value();
  EXPECT_EQ(db.FetchBlob(ref, "FLD_DATA").value(), payload);
  EXPECT_EQ(db.BlobSize(ref, "FLD_DATA").value(), payload.size());
  Bytes range = db.FetchBlobRange(ref, "FLD_DATA", 100, 50).value();
  ASSERT_EQ(range.size(), 50u);
  for (size_t i = 0; i < 50; ++i) EXPECT_EQ(range[i], payload[100 + i]);

  Bytes new_payload = RandomBytes(1000, rng);
  ASSERT_TRUE(db.Modify(ref, {{"FLD_QUALITY", int64_t{80}}},
                        {{"FLD_DATA", new_payload}})
                  .ok());
  EXPECT_EQ(db.FetchBlob(ref, "FLD_DATA").value(), new_payload);
  EXPECT_EQ(std::get<int64_t>(
                db.FetchRecord(ref).value().fields.at("FLD_QUALITY")),
            80);

  size_t blobs_before = db.blob_store().blob_count();
  ASSERT_TRUE(db.Delete(ref).ok());
  EXPECT_EQ(db.blob_store().blob_count(), blobs_before - 1);
  EXPECT_TRUE(db.FetchRecord(ref).status().IsNotFound());
}

TEST(DatabaseServerTest, ListByType) {
  DatabaseServer db;
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  for (int i = 0; i < 3; ++i) {
    db.Store("Text", {{"FLD_TITLE", std::string("note")}},
             {{"FLD_DATA", Bytes{1, 2, 3}}})
        .value();
  }
  EXPECT_EQ(db.List("Text").value().size(), 3u);
  EXPECT_TRUE(db.List("Video").status().IsNotFound());
}

TEST(DatabaseServerTest, StoreIntoUnknownTypeFails) {
  DatabaseServer db;
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  EXPECT_TRUE(db.Store("Video", {}, {}).status().IsNotFound());
}

TEST(DatabaseServerTest, SchemaEvolutionNewType) {
  DatabaseServer db;
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  MediaTypeEntry entry{"Video", "video/x-mm", "read-write",
                       "VIDEO_OBJECTS_TABLE", "future media type"};
  ASSERT_TRUE(db.RegisterType(entry, {{"FLD_FPS", FieldType::kInt64},
                                      {"FLD_DATA", FieldType::kBlob}})
                  .ok());
  ObjectRef ref = db.Store("Video", {{"FLD_FPS", int64_t{30}}},
                           {{"FLD_DATA", Bytes{9, 9}}})
                      .value();
  EXPECT_EQ(db.FetchBlob(ref, "FLD_DATA").value(), (Bytes{9, 9}));
}

}  // namespace
}  // namespace mmconf::storage
