#include <gtest/gtest.h>

#include <cmath>

#include "audio/features.h"
#include "audio/gmm.h"
#include "audio/hmm.h"
#include "common/rng.h"
#include "media/synthetic.h"

namespace mmconf::audio {
namespace {

TEST(FftTest, MatchesNaiveDft) {
  Rng rng(1);
  const size_t n = 64;
  std::vector<double> real(n), imag(n, 0.0);
  for (double& v : real) v = rng.Uniform(-1, 1);
  std::vector<double> in = real;

  Fft(real, imag);

  for (size_t k = 0; k < n; k += 7) {  // spot-check bins
    double expected_r = 0, expected_i = 0;
    for (size_t t = 0; t < n; ++t) {
      double angle = -2.0 * M_PI * static_cast<double>(k * t) / n;
      expected_r += in[t] * std::cos(angle);
      expected_i += in[t] * std::sin(angle);
    }
    EXPECT_NEAR(real[k], expected_r, 1e-8);
    EXPECT_NEAR(imag[k], expected_i, 1e-8);
  }
}

TEST(FftTest, PureToneLandsInRightBin) {
  const size_t n = 256;
  std::vector<double> real(n), imag(n, 0.0);
  const int bin = 16;
  for (size_t t = 0; t < n; ++t) {
    real[t] = std::cos(2.0 * M_PI * bin * static_cast<double>(t) / n);
  }
  Fft(real, imag);
  double target = std::hypot(real[bin], imag[bin]);
  for (size_t k = 1; k < n / 2; ++k) {
    if (k == bin) continue;
    EXPECT_LT(std::hypot(real[k], imag[k]), target * 0.01);
  }
}

TEST(FeaturesTest, ShapeAndCount) {
  Rng rng(2);
  media::AudioSignal signal = media::SynthesizeSilence(1.0, 8000, rng);
  FeatureOptions options;
  std::vector<FeatureVector> features =
      ExtractFeatures(signal, options).value();
  // (8000 - 200) / 80 + 1 = 98 full frames.
  EXPECT_EQ(features.size(), 98u);
  for (const FeatureVector& f : features) {
    EXPECT_EQ(static_cast<int>(f.size()), FeatureDim(options));
  }
}

TEST(FeaturesTest, TooShortSignalYieldsEmpty) {
  media::AudioSignal signal(std::vector<float>(50, 0.1f), 8000);
  FeatureOptions options;
  EXPECT_TRUE(ExtractFeatures(signal, options).value().empty());
}

TEST(FeaturesTest, InvalidOptionsRejected) {
  media::AudioSignal signal(std::vector<float>(8000, 0.0f), 8000);
  FeatureOptions bad;
  bad.max_hz = 6000;  // above Nyquist for 8 kHz
  EXPECT_TRUE(ExtractFeatures(signal, bad).status().IsInvalidArgument());
  FeatureOptions zero_hop;
  zero_hop.hop = 0;
  EXPECT_TRUE(
      ExtractFeatures(signal, zero_hop).status().IsInvalidArgument());
}

TEST(FeaturesTest, SpeechAndSilenceSeparate) {
  Rng rng(3);
  std::vector<media::SpeakerProfile> speakers = media::MakeSpeakers(1, rng);
  media::Word word{0, {1, 2, 3, 4}};
  media::AudioSignal speech =
      media::Synthesize(word, speakers[0], {}, rng);
  media::AudioSignal silence = media::SynthesizeSilence(0.5, 8000, rng);
  FeatureOptions options;
  auto speech_features = ExtractFeatures(speech, options).value();
  auto silence_features = ExtractFeatures(silence, options).value();
  // Log-energy (dim num_bands) is clearly higher for speech on average.
  auto mean_energy = [&](const std::vector<FeatureVector>& fs) {
    double sum = 0;
    for (const FeatureVector& f : fs) {
      sum += f[static_cast<size_t>(options.num_bands)];
    }
    return sum / static_cast<double>(fs.size());
  };
  EXPECT_GT(mean_energy(speech_features),
            mean_energy(silence_features) + 2.0);
}

TEST(GmmTest, LogSumExpStable) {
  EXPECT_NEAR(LogSumExp({0.0, 0.0}), std::log(2.0), 1e-12);
  EXPECT_NEAR(LogSumExp({-1000.0, -1000.0}), -1000.0 + std::log(2.0), 1e-9);
  EXPECT_NEAR(LogSumExp({-1e9, 0.0}), 0.0, 1e-9);
  EXPECT_TRUE(std::isinf(LogSumExp({})));
}

std::vector<FeatureVector> TwoClusterData(Rng& rng, int per_cluster) {
  std::vector<FeatureVector> data;
  for (int i = 0; i < per_cluster; ++i) {
    data.push_back({rng.Gaussian(0, 1), rng.Gaussian(0, 1)});
    data.push_back({rng.Gaussian(10, 1), rng.Gaussian(-10, 1)});
  }
  return data;
}

TEST(GmmTest, TrainsOnSeparableClusters) {
  Rng rng(4);
  std::vector<FeatureVector> data = TwoClusterData(rng, 200);
  DiagGmm gmm(2, 2);
  ASSERT_TRUE(gmm.Train(data, 10, rng).ok());
  // Means should land near the true cluster centers (in some order).
  const auto& means = gmm.means();
  bool first_near_origin = std::abs(means[0][0]) < 2.0;
  const FeatureVector& origin_mean = first_near_origin ? means[0] : means[1];
  const FeatureVector& far_mean = first_near_origin ? means[1] : means[0];
  EXPECT_NEAR(origin_mean[0], 0.0, 1.0);
  EXPECT_NEAR(far_mean[0], 10.0, 1.0);
  EXPECT_NEAR(far_mean[1], -10.0, 1.0);
  // Points are classified by likelihood.
  EXPECT_GT(gmm.LogLikelihood({0.1, -0.2}),
            gmm.LogLikelihood({5.0, -5.0}));
}

TEST(GmmTest, TrainValidatesInput) {
  Rng rng(5);
  DiagGmm gmm(4, 2);
  std::vector<FeatureVector> tiny = {{0.0, 0.0}};
  EXPECT_TRUE(gmm.Train(tiny, 5, rng).IsInvalidArgument());
  std::vector<FeatureVector> ragged = {
      {0.0, 0.0}, {1.0, 1.0}, {2.0}, {3.0, 3.0}};
  EXPECT_TRUE(gmm.Train(ragged, 5, rng).IsInvalidArgument());
}

TEST(GmmTest, SetParametersFloorsVariance) {
  DiagGmm gmm(1, 1);
  ASSERT_TRUE(gmm.SetParameters({1.0}, {{0.0}}, {{1e-12}}).ok());
  EXPECT_GE(gmm.variances()[0][0], DiagGmm::kVarianceFloor);
}

TEST(GmmTest, TwoModelsDiscriminate) {
  Rng rng(6);
  std::vector<FeatureVector> a, b;
  for (int i = 0; i < 300; ++i) {
    a.push_back({rng.Gaussian(0, 1), rng.Gaussian(0, 1)});
    b.push_back({rng.Gaussian(4, 1), rng.Gaussian(4, 1)});
  }
  DiagGmm model_a(2, 2), model_b(2, 2);
  ASSERT_TRUE(model_a.Train(a, 8, rng).ok());
  ASSERT_TRUE(model_b.Train(b, 8, rng).ok());
  int correct = 0;
  for (int i = 0; i < 100; ++i) {
    FeatureVector x = {rng.Gaussian(0, 1), rng.Gaussian(0, 1)};
    if (model_a.LogLikelihood(x) > model_b.LogLikelihood(x)) ++correct;
  }
  EXPECT_GE(correct, 95);
}

// A hand-built 2-state HMM with well-separated emissions.
Hmm MakeKnownHmm() {
  Hmm hmm = Hmm::Ergodic(2, 1, 1);
  // State 0 emits near 0, state 1 emits near 10.
  // (Reach into the model via Train-free setup: train on ideal data.)
  return hmm;
}

TEST(HmmTest, ViterbiRecoversStatesAfterTraining) {
  Rng rng(7);
  // Training sequences alternate regimes: 20 frames near 0, 20 near 10.
  std::vector<std::vector<FeatureVector>> sequences;
  for (int s = 0; s < 6; ++s) {
    std::vector<FeatureVector> seq;
    for (int block = 0; block < 4; ++block) {
      double mean = block % 2 == 0 ? 0.0 : 10.0;
      for (int t = 0; t < 20; ++t) {
        seq.push_back({rng.Gaussian(mean, 0.5)});
      }
    }
    sequences.push_back(std::move(seq));
  }
  Hmm hmm = MakeKnownHmm();
  ASSERT_TRUE(hmm.Train(sequences, 8, rng).ok());

  // Decode a fresh sequence; the path must switch exactly at the block
  // boundary (up to one frame of slack).
  std::vector<FeatureVector> test;
  for (int t = 0; t < 20; ++t) test.push_back({rng.Gaussian(0, 0.5)});
  for (int t = 0; t < 20; ++t) test.push_back({rng.Gaussian(10, 0.5)});
  ViterbiResult result = hmm.Viterbi(test).value();
  ASSERT_EQ(result.states.size(), 40u);
  EXPECT_EQ(result.states[0], result.states[10]);
  EXPECT_EQ(result.states[30], result.states[39]);
  EXPECT_NE(result.states[10], result.states[30]);
}

TEST(HmmTest, ForwardIsAtLeastViterbi) {
  Rng rng(8);
  std::vector<std::vector<FeatureVector>> sequences;
  for (int s = 0; s < 4; ++s) {
    std::vector<FeatureVector> seq;
    for (int t = 0; t < 30; ++t) {
      seq.push_back({rng.Gaussian(t < 15 ? 0 : 5, 1.0)});
    }
    sequences.push_back(std::move(seq));
  }
  Hmm hmm = Hmm::LeftToRight(3, 1, 1);
  ASSERT_TRUE(hmm.Train(sequences, 5, rng).ok());
  std::vector<FeatureVector> test = sequences[0];
  double forward = hmm.LogForward(test).value();
  double viterbi = hmm.Viterbi(test).value().log_likelihood;
  EXPECT_GE(forward, viterbi - 1e-9);  // sum over paths >= best path
}

TEST(HmmTest, LeftToRightNeverMovesBackwards) {
  Rng rng(9);
  std::vector<std::vector<FeatureVector>> sequences;
  for (int s = 0; s < 4; ++s) {
    std::vector<FeatureVector> seq;
    for (int t = 0; t < 30; ++t) {
      seq.push_back({rng.Gaussian(t / 10, 0.3)});
    }
    sequences.push_back(std::move(seq));
  }
  Hmm hmm = Hmm::LeftToRight(3, 1, 1);
  ASSERT_TRUE(hmm.Train(sequences, 5, rng).ok());
  ViterbiResult result = hmm.Viterbi(sequences[0]).value();
  for (size_t t = 1; t < result.states.size(); ++t) {
    EXPECT_GE(result.states[t], result.states[t - 1]);
    EXPECT_LE(result.states[t], result.states[t - 1] + 1);
  }
  EXPECT_EQ(result.states.front(), 0);  // entry state
}

TEST(HmmTest, TrainingImprovesLikelihood) {
  Rng rng(10);
  std::vector<std::vector<FeatureVector>> sequences;
  for (int s = 0; s < 5; ++s) {
    std::vector<FeatureVector> seq;
    for (int t = 0; t < 40; ++t) {
      seq.push_back({rng.Gaussian(t < 20 ? -3 : 3, 1.0),
                     rng.Gaussian(t < 20 ? 1 : -1, 1.0)});
    }
    sequences.push_back(std::move(seq));
  }
  Rng rng_a(11), rng_b(11);
  Hmm barely_trained = Hmm::LeftToRight(2, 1, 2);
  ASSERT_TRUE(barely_trained.Train(sequences, 0, rng_a).ok());
  Hmm trained = Hmm::LeftToRight(2, 1, 2);
  ASSERT_TRUE(trained.Train(sequences, 10, rng_b).ok());
  double before = 0, after = 0;
  for (const auto& seq : sequences) {
    before += barely_trained.LogForward(seq).value();
    after += trained.LogForward(seq).value();
  }
  EXPECT_GE(after, before - 1e-6);
}

TEST(HmmTest, EmptySequenceRejected) {
  Hmm hmm = Hmm::Ergodic(2, 1, 1);
  EXPECT_TRUE(hmm.LogForward({}).status().IsInvalidArgument());
  EXPECT_TRUE(hmm.Viterbi({}).status().IsInvalidArgument());
}

TEST(HmmTest, TrainRequiresLongEnoughSequence) {
  Rng rng(12);
  Hmm hmm = Hmm::LeftToRight(5, 1, 1);
  std::vector<std::vector<FeatureVector>> sequences = {
      {{0.0}, {1.0}}};  // shorter than state count
  EXPECT_TRUE(hmm.Train(sequences, 3, rng).IsInvalidArgument());
}

}  // namespace
}  // namespace mmconf::audio
