#include <gtest/gtest.h>

#include "common/clock.h"
#include "net/network.h"

namespace mmconf::net {
namespace {

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<Network>(&clock_);
    a_ = network_->AddNode("a");
    b_ = network_->AddNode("b");
  }
  Clock clock_;
  std::unique_ptr<Network> network_;
  NodeId a_ = 0, b_ = 0;
};

TEST_F(NetworkTest, SendRequiresLink) {
  EXPECT_TRUE(network_->Send(a_, b_, 100, "x").status().IsNotFound());
  EXPECT_TRUE(network_->Send(a_, 99, 100, "x").status().IsOutOfRange());
}

TEST_F(NetworkTest, LinkValidation) {
  EXPECT_TRUE(network_->SetLink(a_, b_, {0.0, 10}).IsInvalidArgument());
  EXPECT_TRUE(network_->SetLink(a_, b_, {1e6, -1}).IsInvalidArgument());
  EXPECT_TRUE(network_->SetLink(a_, 99, {1e6, 10}).IsOutOfRange());
  EXPECT_TRUE(network_->SetLink(a_, b_, {1e6, 10}).ok());
  EXPECT_TRUE(network_->GetLink(b_, a_).status().IsNotFound());
  EXPECT_DOUBLE_EQ(network_->GetLink(a_, b_).value().bandwidth_bytes_per_sec,
                   1e6);
}

TEST_F(NetworkTest, DeliveryTimeMatchesBandwidthPlusLatency) {
  // 1 MB/s, 20 ms latency: 100 KB takes 100 ms transfer + 20 ms latency.
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 20000}).ok());
  MicrosT delivered = network_->Send(a_, b_, 100000, "payload").value();
  EXPECT_EQ(delivered, 100000 + 20000);
}

TEST_F(NetworkTest, TransfersSerializeOnTheLink) {
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 0}).ok());
  MicrosT first = network_->Send(a_, b_, 100000, "first").value();
  MicrosT second = network_->Send(a_, b_, 100000, "second").value();
  EXPECT_EQ(first, 100000);
  EXPECT_EQ(second, 200000);  // queued behind the first transfer
}

TEST_F(NetworkTest, SeparateLinksDoNotInterfere) {
  NodeId c = network_->AddNode("c");
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 0}).ok());
  ASSERT_TRUE(network_->SetLink(a_, c, {1e6, 0}).ok());
  MicrosT to_b = network_->Send(a_, b_, 100000, "b").value();
  MicrosT to_c = network_->Send(a_, c, 100000, "c").value();
  EXPECT_EQ(to_b, to_c);  // different wires, parallel transfer
}

TEST_F(NetworkTest, AdvanceToReturnsDueDeliveriesInOrder) {
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 0}).ok());
  network_->Send(a_, b_, 50000, "one").value();
  network_->Send(a_, b_, 50000, "two").value();
  network_->Send(a_, b_, 50000, "three").value();
  std::vector<Delivery> due = network_->AdvanceTo(100000);
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].tag, "one");
  EXPECT_EQ(due[1].tag, "two");
  EXPECT_EQ(network_->pending(), 1u);
  std::vector<Delivery> rest = network_->AdvanceUntilIdle();
  ASSERT_EQ(rest.size(), 1u);
  EXPECT_EQ(rest[0].tag, "three");
  EXPECT_EQ(clock_.NowMicros(), 150000);
}

TEST_F(NetworkTest, AdvanceUntilIdleOnEmptyIsNoop) {
  EXPECT_TRUE(network_->AdvanceUntilIdle().empty());
  EXPECT_EQ(clock_.NowMicros(), 0);
}

TEST_F(NetworkTest, PayloadTravelsIntact) {
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 0}).ok());
  Bytes payload = {1, 2, 3, 4};
  network_->Send(a_, b_, 4, "data", payload).value();
  std::vector<Delivery> due = network_->AdvanceUntilIdle();
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].payload, payload);
  EXPECT_EQ(due[0].from, a_);
  EXPECT_EQ(due[0].to, b_);
}

TEST_F(NetworkTest, StatsAccumulate) {
  ASSERT_TRUE(network_->SetDuplexLink(a_, b_, {1e6, 0}).ok());
  network_->Send(a_, b_, 1000, "x").value();
  network_->Send(a_, b_, 2000, "y").value();
  network_->Send(b_, a_, 500, "z").value();
  EXPECT_EQ(network_->BytesSent(a_, b_), 3000u);
  EXPECT_EQ(network_->BytesSent(b_, a_), 500u);
  EXPECT_EQ(network_->TotalBytesSent(), 3500u);
}

TEST_F(NetworkTest, RemoveLinkStopsFutureSends) {
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 0}).ok());
  network_->Send(a_, b_, 1000, "in-flight").value();
  ASSERT_TRUE(network_->RemoveLink(a_, b_).ok());
  EXPECT_FALSE(network_->HasLink(a_, b_));
  EXPECT_TRUE(network_->RemoveLink(a_, b_).IsNotFound());
  EXPECT_TRUE(network_->Send(a_, b_, 1000, "late").status().IsNotFound());
  // The in-flight delivery still lands.
  EXPECT_EQ(network_->AdvanceUntilIdle().size(), 1u);
}

TEST_F(NetworkTest, PartitionCutsBothDirections) {
  ASSERT_TRUE(network_->SetDuplexLink(a_, b_, {1e6, 0}).ok());
  network_->Partition(a_, b_);
  EXPECT_FALSE(network_->HasLink(a_, b_));
  EXPECT_FALSE(network_->HasLink(b_, a_));
  network_->Partition(a_, b_);  // idempotent on missing links
}

TEST_F(NetworkTest, OversizedPayloadRejected) {
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 0}).ok());
  Bytes payload = {1, 2, 3, 4};
  // Payload exactly filling the billed bytes is fine...
  EXPECT_TRUE(network_->Send(a_, b_, 4, "exact", payload).ok());
  // ...one byte over is not, and nothing is billed to the wire.
  size_t sent_before = network_->BytesSent(a_, b_);
  EXPECT_TRUE(network_->Send(a_, b_, 3, "over", payload)
                  .status()
                  .IsInvalidArgument());
  EXPECT_EQ(network_->BytesSent(a_, b_), sent_before);
  EXPECT_EQ(network_->pending(), 1u);
}

TEST_F(NetworkTest, AdvanceToEarlierThanClockStillDrainsDueDeliveries) {
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 0}).ok());
  network_->Send(a_, b_, 50000, "due").value();  // due at t=50000
  // Something else moved the shared clock past the delivery time.
  clock_.AdvanceTo(200000);
  // A stale target must not strand the already-due delivery.
  std::vector<Delivery> due = network_->AdvanceTo(0);
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].tag, "due");
  EXPECT_EQ(clock_.NowMicros(), 200000);  // the clock never rewinds
}

TEST_F(NetworkTest, FaultRequiresLinkAndValidSpec) {
  EXPECT_TRUE(network_->SetFault(a_, b_, {}).IsNotFound());
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 0}).ok());
  FaultSpec bad;
  bad.drop_probability = 1.5;
  EXPECT_TRUE(network_->SetFault(a_, b_, bad).IsInvalidArgument());
  bad = FaultSpec();
  bad.flaps.push_back({200, 100});
  EXPECT_TRUE(network_->SetFault(a_, b_, bad).IsInvalidArgument());
  EXPECT_TRUE(network_->SetFault(a_, b_, {}).ok());
}

TEST_F(NetworkTest, DropLosesMessagesDeterministically) {
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 0}).ok());
  FaultSpec fault;
  fault.drop_probability = 0.5;
  ASSERT_TRUE(network_->SetFault(a_, b_, fault).ok());
  for (int i = 0; i < 100; ++i) {
    // The sender still gets a delivery estimate for lost messages.
    EXPECT_TRUE(network_->Send(a_, b_, 100, "m").ok());
  }
  size_t delivered = network_->AdvanceUntilIdle().size();
  FaultStats stats = network_->GetFaultStats(a_, b_);
  EXPECT_EQ(delivered + stats.dropped, 100u);
  EXPECT_GT(stats.dropped, 20u);
  EXPECT_LT(stats.dropped, 80u);

  // An identically seeded fresh network reproduces the exact pattern.
  Clock clock2;
  Network other(&clock2);
  NodeId a2 = other.AddNode("a"), b2 = other.AddNode("b");
  ASSERT_TRUE(other.SetLink(a2, b2, {1e6, 0}).ok());
  ASSERT_TRUE(other.SetFault(a2, b2, fault).ok());
  for (int i = 0; i < 100; ++i) other.Send(a2, b2, 100, "m").value();
  EXPECT_EQ(other.AdvanceUntilIdle().size(), delivered);
  EXPECT_EQ(other.GetFaultStats(a2, b2).dropped, stats.dropped);
}

TEST_F(NetworkTest, DuplicationDeliversTwoCopies) {
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 0}).ok());
  FaultSpec fault;
  fault.duplicate_probability = 1.0;
  ASSERT_TRUE(network_->SetFault(a_, b_, fault).ok());
  size_t bytes_before = network_->TotalBytesSent();
  network_->Send(a_, b_, 1000, "dup").value();
  EXPECT_EQ(network_->AdvanceUntilIdle().size(), 2u);
  EXPECT_EQ(network_->GetFaultStats(a_, b_).duplicated, 1u);
  // The sender transmitted once; the copy is not billed.
  EXPECT_EQ(network_->TotalBytesSent(), bytes_before + 1000);
}

TEST_F(NetworkTest, JitterDelaysWithinBound) {
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 10000}).ok());
  FaultSpec fault;
  fault.jitter_micros = 5000;
  ASSERT_TRUE(network_->SetFault(a_, b_, fault).ok());
  // 1000 bytes at 1 MB/s: base arrival = 1000 + 10000.
  network_->Send(a_, b_, 1000, "j").value();
  std::vector<Delivery> due = network_->AdvanceUntilIdle();
  ASSERT_EQ(due.size(), 1u);
  EXPECT_GE(due[0].delivered_at, 11000);
  EXPECT_LE(due[0].delivered_at, 16000);
}

TEST_F(NetworkTest, FlapDropsOnlyInsideWindow) {
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 0}).ok());
  FaultSpec fault;
  fault.flaps.push_back({100000, 200000});
  ASSERT_TRUE(network_->SetFault(a_, b_, fault).ok());
  network_->Send(a_, b_, 100, "before").value();
  clock_.AdvanceTo(150000);
  network_->Send(a_, b_, 100, "inside").value();
  clock_.AdvanceTo(250000);
  network_->Send(a_, b_, 100, "after").value();
  std::vector<Delivery> due = network_->AdvanceUntilIdle();
  ASSERT_EQ(due.size(), 2u);
  EXPECT_EQ(due[0].tag, "before");
  EXPECT_EQ(due[1].tag, "after");
  EXPECT_EQ(network_->GetFaultStats(a_, b_).flap_dropped, 1u);
}

TEST_F(NetworkTest, ClearFaultRestoresPerfectLink) {
  ASSERT_TRUE(network_->SetLink(a_, b_, {1e6, 0}).ok());
  FaultSpec fault;
  fault.drop_probability = 1.0;
  ASSERT_TRUE(network_->SetFault(a_, b_, fault).ok());
  network_->Send(a_, b_, 100, "lost").value();
  network_->ClearFault(a_, b_);
  network_->Send(a_, b_, 100, "kept").value();
  std::vector<Delivery> due = network_->AdvanceUntilIdle();
  ASSERT_EQ(due.size(), 1u);
  EXPECT_EQ(due[0].tag, "kept");
  // Stats survive the clear for post-mortem reporting.
  EXPECT_EQ(network_->TotalFaultStats().dropped, 1u);
}

TEST_F(NetworkTest, SlowLinkDeliversLater) {
  NodeId c = network_->AddNode("c");
  ASSERT_TRUE(network_->SetLink(a_, b_, {10e6, 10000}).ok());   // fast
  ASSERT_TRUE(network_->SetLink(a_, c, {128e3, 10000}).ok());  // slow
  MicrosT fast = network_->Send(a_, b_, 262144, "img").value();
  MicrosT slow = network_->Send(a_, c, 262144, "img").value();
  EXPECT_LT(fast, slow);
  EXPECT_GT(slow, 2000000);  // 256 KB at 128 KB/s > 2 s
}

}  // namespace
}  // namespace mmconf::net
