// Resumable progressive transfer over the Fig. 7 CMP_OBJECTS_TABLE:
// header/payload split, FLD_CURRENTPOSITION bookkeeping, and the
// guarantee that every fetched chunk grows the decodable prefix.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compress/layered_codec.h"
#include "media/synthetic.h"
#include "storage/cmp_store.h"

namespace mmconf::storage {
namespace {

using compress::LayeredCodec;
using compress::StreamInfo;

class CmpStoreTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(db_.RegisterStandardTypes().ok());
    Rng rng(88);
    image_ = media::MakePhantomCt({128, 128, 5, 3.0}, rng);
    stream_ = LayeredCodec().Encode(image_).value();
    info_ = LayeredCodec::Inspect(stream_).value();
    store_ = std::make_unique<CmpObjectStore>(&db_);
    ref_ = store_->StoreStream("ct-slice-42.mlc", stream_).value();
  }

  DatabaseServer db_;
  media::Image image_;
  Bytes stream_;
  StreamInfo info_;
  std::unique_ptr<CmpObjectStore> store_;
  ObjectRef ref_;
};

TEST_F(CmpStoreTest, SplitMatchesStreamStructure) {
  EXPECT_EQ(store_->FetchHeader(ref_).value().size(), info_.header_bytes);
  EXPECT_EQ(store_->PayloadSize(ref_).value(),
            info_.total_bytes - info_.header_bytes);
  EXPECT_EQ(store_->Position(ref_).value(), 0u);
  EXPECT_FALSE(store_->Complete(ref_).value());
  ObjectRecord record = db_.FetchRecord(ref_).value();
  EXPECT_EQ(std::get<std::string>(record.fields.at("FLD_FILENAME")),
            "ct-slice-42.mlc");
}

TEST_F(CmpStoreTest, ChunksAdvancePositionAndExhaust) {
  size_t payload = store_->PayloadSize(ref_).value();
  size_t pulled = 0;
  int chunks = 0;
  while (true) {
    Bytes chunk = store_->FetchNext(ref_, 1500).value();
    if (chunk.empty()) break;
    pulled += chunk.size();
    ++chunks;
    EXPECT_EQ(store_->Position(ref_).value(), pulled);
    ASSERT_LT(chunks, 1000) << "transfer did not terminate";
  }
  EXPECT_EQ(pulled, payload);
  EXPECT_TRUE(store_->Complete(ref_).value());
  // Further fetches return nothing.
  EXPECT_TRUE(store_->FetchNext(ref_, 1500).value().empty());
}

TEST_F(CmpStoreTest, AssembledPrefixEqualsOriginalPrefix) {
  store_->FetchNext(ref_, 5000).value();
  size_t position = store_->Position(ref_).value();
  Bytes prefix = store_->AssembleCurrent(ref_).value();
  ASSERT_EQ(prefix.size(), info_.header_bytes + position);
  for (size_t i = 0; i < prefix.size(); ++i) {
    ASSERT_EQ(prefix[i], stream_[i]) << "byte " << i;
  }
}

TEST_F(CmpStoreTest, EveryChunkImprovesTheDecodablePrefix) {
  // Pull in bursts; after each burst the assembled prefix must decode at
  // least as many layers as before, reaching full quality at the end.
  int last_layers = 0;
  while (!store_->Complete(ref_).value()) {
    store_->FetchNext(ref_, 4000).value();
    Bytes prefix = store_->AssembleCurrent(ref_).value();
    int layers =
        LayeredCodec::LayersWithinBudget(prefix, prefix.size()).value();
    EXPECT_GE(layers, last_layers);
    last_layers = layers;
    if (layers > 0) {
      media::Image decoded =
          LayeredCodec::DecodePrefix(prefix, prefix.size()).value();
      EXPECT_EQ(decoded.width(), image_.width());
    }
  }
  EXPECT_EQ(last_layers, 3);
  media::Image full =
      LayeredCodec::Decode(store_->AssembleCurrent(ref_).value()).value();
  media::Image reference = LayeredCodec::Decode(stream_).value();
  EXPECT_EQ(full.pixels(), reference.pixels());
}

TEST_F(CmpStoreTest, ThumbnailFromHeaderPlusFirstChunks) {
  // Before anything fits, the base-layer thumbnail path works as soon as
  // the base layer is in.
  while (store_->Position(ref_).value() + info_.header_bytes <
         info_.layer_end[0]) {
    store_->FetchNext(ref_, 1024).value();
  }
  Bytes prefix = store_->AssembleCurrent(ref_).value();
  media::Image thumb = LayeredCodec::DecodeThumbnail(prefix, 2).value();
  EXPECT_EQ(thumb.width(), 32);
}

TEST_F(CmpStoreTest, ResetRewinds) {
  store_->FetchNext(ref_, 10000).value();
  EXPECT_GT(store_->Position(ref_).value(), 0u);
  ASSERT_TRUE(store_->Reset(ref_).ok());
  EXPECT_EQ(store_->Position(ref_).value(), 0u);
}

TEST_F(CmpStoreTest, RejectsNonStreams) {
  Bytes junk = {1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_TRUE(
      store_->StoreStream("junk", junk).status().IsCorruption());
  // Non-Cmp objects are rejected by the accessors.
  ObjectRef text = db_.Store("Text", {{"FLD_TITLE", std::string("x")}},
                             {{"FLD_DATA", Bytes{1}}})
                       .value();
  EXPECT_FALSE(store_->Position(text).ok());
}

}  // namespace
}  // namespace mmconf::storage
