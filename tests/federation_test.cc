#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "compress/layered_codec.h"
#include "doc/builder.h"
#include "federation/placement.h"
#include "federation/tier.h"
#include "media/synthetic.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "server/interaction_server.h"
#include "server/room.h"
#include "storage/database.h"

namespace mmconf::federation {
namespace {

using doc::MakeMedicalRecordDocument;
using doc::MultimediaDocument;
using server::ActionType;
using server::ClientEndpoint;
using server::InteractionServer;
using server::Room;
using server::UserAction;

Bytes EncodeObject(uint64_t seed) {
  Rng rng(seed);
  media::Image image = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
  compress::LayeredCodec codec;
  return codec.Encode(image).value();
}

std::vector<Bytes> EncodeObjects(size_t n, uint64_t seed = 7) {
  std::vector<Bytes> objects;
  for (size_t k = 0; k < n; ++k) objects.push_back(EncodeObject(seed + k));
  return objects;
}

// --- Placement ---

TEST(PlacementTest, HashIsDeterministicAndPinsOverride) {
  RoomPlacement a(4);
  RoomPlacement b(4);
  for (const char* id : {"consult", "tumor-board", "room-17", ""}) {
    EXPECT_EQ(a.NodeFor(id), b.NodeFor(id)) << id;
    EXPECT_LT(a.NodeFor(id), 4u);
  }
  size_t hashed = a.NodeFor("consult");
  size_t pinned = (hashed + 1) % 4;
  ASSERT_TRUE(a.Pin("consult", pinned).ok());
  EXPECT_TRUE(a.IsPinned("consult"));
  EXPECT_EQ(a.NodeFor("consult"), pinned);
  EXPECT_EQ(a.HashNodeFor("consult"), hashed);  // hash unaffected by pin
  a.Unpin("consult");
  EXPECT_EQ(a.NodeFor("consult"), hashed);
  EXPECT_TRUE(a.Pin("consult", 4).IsOutOfRange());
}

TEST(PlacementTest, SpreadsRoomsAcrossNodes) {
  RoomPlacement placement(3);
  std::set<size_t> used;
  for (int i = 0; i < 64; ++i) {
    used.insert(placement.NodeFor("room-" + std::to_string(i)));
  }
  EXPECT_EQ(used.size(), 3u);  // FNV-1a spreads 64 ids over 3 nodes
}

// --- Federated tier ---

class FederationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_);
    db_node_ = network_->AddNode("oracle");
    ASSERT_TRUE(db_.RegisterStandardTypes().ok());
    FederationOptions options;
    options.num_nodes = 3;
    options.backbone = {50e6, 1000};
    tier_ = std::make_unique<FederatedInteractionTier>(&db_, network_.get(),
                                                       db_node_, options);
    client1_ = network_->AddNode("client-1");
    client2_ = network_->AddNode("client-2");
    ASSERT_TRUE(tier_->ConnectClient(client1_, {1e6, 20000}).ok());
    ASSERT_TRUE(tier_->ConnectClient(client2_, {1e6, 20000}).ok());
  }

  /// A room id the hash placement puts on `node`.
  std::string RoomOn(size_t node) const {
    for (int i = 0;; ++i) {
      std::string id = "room-" + std::to_string(i);
      if (tier_->placement().HashNodeFor(id) == node) return id;
    }
  }

  Clock clock_;
  storage::DatabaseServer db_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<FederatedInteractionTier> tier_;
  net::NodeId db_node_ = 0, client1_ = 0, client2_ = 0;
};

TEST_F(FederationTest, PlacementIsStableAcrossNetworkFaultSeeds) {
  // A second federation on a network with a different fault seed places
  // every room identically: placement depends only on ids, never on the
  // network's randomness.
  Clock clock2;
  auto network2 = std::make_unique<net::Network>(&clock2, 0xabad1deaull);
  net::NodeId db_node2 = network2->AddNode("oracle");
  storage::DatabaseServer db2;
  ASSERT_TRUE(db2.RegisterStandardTypes().ok());
  FederationOptions options;
  options.num_nodes = 3;
  options.backbone = {50e6, 1000};
  FederatedInteractionTier other(&db2, network2.get(), db_node2, options);
  for (int i = 0; i < 8; ++i) {
    std::string id = "case-" + std::to_string(i);
    tier_->OpenRoomWithDocument(id, MakeMedicalRecordDocument().value())
        .value();
    other.OpenRoomWithDocument(id, MakeMedicalRecordDocument().value())
        .value();
    EXPECT_EQ(tier_->NodeOf(id).value(), other.NodeOf(id).value()) << id;
  }
}

TEST_F(FederationTest, FrontDoorAdmitsClientsToTheOwningNode) {
  std::string room_id = RoomOn(2);
  tier_->OpenRoomWithDocument(room_id, MakeMedicalRecordDocument().value())
      .value();
  EXPECT_EQ(tier_->NodeOf(room_id).value(), 2u);
  size_t admit_before =
      network_->BytesSent(tier_->node_net(0), tier_->node_net(2));
  tier_->Join(room_id, {"dr-cohen", client1_}).value();
  tier_->Settle().value();
  // Only the owning node has the room; the admit hop crossed the
  // front door -> owner backbone link.
  EXPECT_TRUE(tier_->node(2)->GetRoom(room_id).ok());
  EXPECT_TRUE(tier_->node(0)->GetRoom(room_id).status().IsNotFound());
  EXPECT_TRUE(tier_->node(1)->GetRoom(room_id).status().IsNotFound());
  EXPECT_GT(network_->BytesSent(tier_->node_net(0), tier_->node_net(2)),
            admit_before);
  EXPECT_TRUE((*tier_->GetRoom(room_id))->HasMember("dr-cohen"));
}

TEST_F(FederationTest, CrossNodePropagateMatchesSingleServer) {
  // The same action sequence through the federation (including a
  // mis-directed request forwarded between nodes) and through one
  // standalone InteractionServer must converge to byte-identical rooms.
  net::NodeId solo_node = network_->AddNode("solo");
  ASSERT_TRUE(network_->SetDuplexLink(solo_node, db_node_, {50e6, 1000}).ok());
  ASSERT_TRUE(network_->SetDuplexLink(solo_node, client1_, {1e6, 20000}).ok());
  ASSERT_TRUE(network_->SetDuplexLink(solo_node, client2_, {1e6, 20000}).ok());
  InteractionServer solo(&db_, network_.get(), solo_node, db_node_);

  const std::string room_id = "consult";
  tier_->OpenRoomWithDocument(room_id, MakeMedicalRecordDocument().value())
      .value();
  solo.OpenRoomWithDocument(room_id, MakeMedicalRecordDocument().value())
      .value();
  size_t owner = tier_->NodeOf(room_id).value();
  size_t wrong = (owner + 1) % tier_->num_nodes();

  tier_->Join(room_id, {"dr-cohen", client1_}).value();
  tier_->Join(room_id, {"dr-levi", client2_}).value();
  tier_->SubmitChoice(room_id, "dr-cohen", "CT", "hidden").value();
  tier_->SubmitChoiceVia(wrong, room_id, "dr-levi", "XRay", "flat").value();
  UserAction op;
  op.type = ActionType::kSegmentOp;
  op.viewer = "dr-cohen";
  op.component = "CT";
  tier_->ApplyOperation(room_id, op, /*globally_important=*/true).value();
  tier_->SubmitChoice(room_id, "dr-cohen", "CT", "").value();

  solo.Join(room_id, {"dr-cohen", client1_}).value();
  solo.Join(room_id, {"dr-levi", client2_}).value();
  solo.SubmitChoice(room_id, "dr-cohen", "CT", "hidden").value();
  solo.SubmitChoice(room_id, "dr-levi", "XRay", "flat").value();
  solo.ApplyOperation(room_id, op, /*globally_important=*/true).value();
  solo.SubmitChoice(room_id, "dr-cohen", "CT", "").value();

  tier_->Settle().value();
  network_->AdvanceUntilIdle();
  EXPECT_EQ((*tier_->GetRoom(room_id))->Serialize(),
            (*solo.GetRoom(room_id))->Serialize());
}

TEST_F(FederationTest, MigrationReplaysStateByteIdentically) {
  std::string room_id = RoomOn(0);
  tier_->OpenRoomWithDocument(room_id, MakeMedicalRecordDocument().value())
      .value();
  tier_->Join(room_id, {"dr-cohen", client1_}).value();
  tier_->Join(room_id, {"dr-levi", client2_}).value();
  tier_->SubmitChoice(room_id, "dr-cohen", "CT", "hidden").value();
  UserAction op;
  op.type = ActionType::kSegmentOp;
  op.viewer = "dr-levi";
  op.component = "XRay";
  tier_->ApplyOperation(room_id, op, /*globally_important=*/false).value();
  ASSERT_TRUE((*tier_->GetRoom(room_id))->Freeze("dr-cohen", "CT").ok());
  tier_->Settle().value();

  Bytes before = (*tier_->GetRoom(room_id))->Serialize();
  MigrationReport report = tier_->MigrateRoom(room_id, 1).value();
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.from_node, 0u);
  EXPECT_EQ(report.to_node, 1u);
  EXPECT_GT(report.state_bytes, 0u);
  EXPECT_GE(report.replayed_actions, 5u);
  EXPECT_EQ(report.delta_actions, 0u);

  // The room now lives (pinned) on node 1, byte-identical; the source
  // copy is gone; members, choices, freezes and overlays all survived.
  EXPECT_EQ(tier_->NodeOf(room_id).value(), 1u);
  EXPECT_TRUE(tier_->placement().IsPinned(room_id));
  EXPECT_TRUE(tier_->node(0)->GetRoom(room_id).status().IsNotFound());
  Room* moved = tier_->GetRoom(room_id).value();
  EXPECT_EQ(moved->Serialize(), before);
  EXPECT_TRUE(moved->HasMember("dr-levi"));
  EXPECT_TRUE(moved->IsFrozen("CT"));
  EXPECT_EQ((*moved->OverlayFor("dr-levi"))->size(), 1u);
  // And it keeps serving: only the freeze holder may release.
  tier_->SubmitChoice(room_id, "dr-levi", "CT", "thumbnail")
      .status()
      .ok();
  EXPECT_TRUE((*tier_->GetRoom(room_id))->ReleaseFreeze("dr-cohen", "CT").ok());
  tier_->Settle().value();
}

TEST_F(FederationTest, ActionsDuringMigrationLandInTheDelta) {
  std::string room_id = RoomOn(1);
  tier_->OpenRoomWithDocument(room_id, MakeMedicalRecordDocument().value())
      .value();
  tier_->Join(room_id, {"dr-cohen", client1_}).value();
  tier_->Settle().value();

  ASSERT_TRUE(tier_->StartMigration(room_id, 2).ok());
  EXPECT_TRUE(tier_->Migrating(room_id));
  // The room keeps serving on the source while the snapshot is in
  // flight; these actions ride the delta.
  EXPECT_EQ(tier_->NodeOf(room_id).value(), 1u);
  tier_->SubmitChoice(room_id, "dr-cohen", "CT", "hidden").value();
  tier_->Join(room_id, {"dr-levi", client2_}).value();

  MigrationReport report = tier_->FinishMigration(room_id).value();
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.delta_actions, 2u);
  EXPECT_FALSE(tier_->Migrating(room_id));
  Room* moved = tier_->GetRoom(room_id).value();
  EXPECT_TRUE(moved->HasMember("dr-levi"));
  EXPECT_EQ(moved->document()
                .PresentationFor(moved->configuration(), "CT")
                .value()
                .name,
            "hidden");
  // A second migration of the same room also works (pin -> pin).
  tier_->Settle().value();
  EXPECT_EQ(tier_->MigrateRoom(room_id, 0).value().to_node, 0u);
  EXPECT_EQ(tier_->NodeOf(room_id).value(), 0u);
}

TEST_F(FederationTest, NodeLossDuringMigrationLeavesRoomIntactOnSource) {
  std::string room_id = RoomOn(0);
  tier_->OpenRoomWithDocument(room_id, MakeMedicalRecordDocument().value())
      .value();
  tier_->Join(room_id, {"dr-cohen", client1_}).value();
  tier_->SubmitChoice(room_id, "dr-cohen", "CT", "hidden").value();
  tier_->Settle().value();
  Bytes before = (*tier_->GetRoom(room_id))->Serialize();

  ASSERT_TRUE(tier_->StartMigration(room_id, 1).ok());
  // The target node dies (partition) while the snapshot is in flight.
  network_->Partition(tier_->node_net(0), tier_->node_net(1));
  Result<MigrationReport> failed = tier_->FinishMigration(room_id);
  EXPECT_TRUE(failed.status().IsResourceExhausted());
  EXPECT_FALSE(tier_->Migrating(room_id));

  // The room never left the source: same bytes, same owner, still live.
  EXPECT_EQ(tier_->NodeOf(room_id).value(), 0u);
  EXPECT_FALSE(tier_->placement().IsPinned(room_id));
  EXPECT_TRUE(tier_->node(1)->GetRoom(room_id).status().IsNotFound());
  EXPECT_EQ((*tier_->GetRoom(room_id))->Serialize(), before);
  tier_->SubmitChoice(room_id, "dr-cohen", "XRay", "flat").value();
  tier_->Settle().value();

  // Heal the backbone and the migration goes through, delta included.
  ASSERT_TRUE(network_
                  ->SetDuplexLink(tier_->node_net(0), tier_->node_net(1),
                                  {50e6, 1000})
                  .ok());
  MigrationReport report = tier_->MigrateRoom(room_id, 1).value();
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(tier_->NodeOf(room_id).value(), 1u);
  EXPECT_TRUE((*tier_->GetRoom(room_id))->HasMember("dr-cohen"));
}

TEST_F(FederationTest, NonReplayableRoomRefusesToMigrate) {
  std::string room_id = RoomOn(0);
  tier_->OpenRoomWithDocument(room_id, MakeMedicalRecordDocument().value())
      .value();
  tier_->Join(room_id, {"dr-cohen", client1_}).value();
  // A structural edit the action log cannot replay.
  ASSERT_TRUE((*tier_->GetRoom(room_id))
                  ->RemoveComponent("dr-cohen", "ExpertVoice")
                  .ok());
  EXPECT_FALSE((*tier_->GetRoom(room_id))->replayable());
  EXPECT_TRUE(tier_->StartMigration(room_id, 1).IsFailedPrecondition());
  EXPECT_FALSE(tier_->Migrating(room_id));
  EXPECT_EQ(tier_->NodeOf(room_id).value(), 0u);
}

TEST_F(FederationTest, LiveStreamsMigrateWithTheRoom) {
  std::string room_id = RoomOn(0);
  tier_->OpenRoomWithDocument(room_id, MakeMedicalRecordDocument().value())
      .value();
  tier_->Join(room_id, {"dr-cohen", client1_}).value();
  tier_->Settle().value();

  stream::StreamOptions options;
  options.interval_micros = 100000;
  stream::StreamId id =
      tier_->node(0)->OpenStream(room_id, "dr-cohen", EncodeObjects(3),
                                 options)
          .value();
  // Migrate before the scheduler is pumped: every object is still
  // pending, so the whole stream moves with the room.
  MigrationReport report = tier_->MigrateRoom(room_id, 2).value();
  EXPECT_TRUE(report.verified);
  EXPECT_EQ(report.streams_carried, 1u);
  EXPECT_TRUE(tier_->node(0)->StreamsIdle());

  size_t from_source = network_->BytesSent(tier_->node_net(0), client1_);
  size_t from_target = network_->BytesSent(tier_->node_net(2), client1_);
  tier_->Settle().value();
  // Chunks now flow from the new node — and only from it.
  EXPECT_EQ(network_->BytesSent(tier_->node_net(0), client1_), from_source);
  EXPECT_GT(network_->BytesSent(tier_->node_net(2), client1_), from_target);

  std::vector<stream::StreamStats> stats =
      tier_->node(2)->RoomStreamStats(room_id).value();
  ASSERT_EQ(stats.size(), 1u);
  EXPECT_EQ(stats[0].id, id);  // the stream kept its id across nodes
  EXPECT_TRUE(stats[0].finished);
  EXPECT_GT(stats[0].chunks_acked, 0u);
  EXPECT_EQ(stats[0].chunks_failed, 0u);
  // Every chunk was either delivered or was an enhancement-layer chunk
  // the scheduler chose to drop under deadline pressure.
  EXPECT_EQ(stats[0].chunks_acked + stats[0].enhancement_chunks_dropped,
            stats[0].chunks_total);
}

TEST_F(FederationTest, LoadsAndMetricsTrackNodesAndMigrations) {
  obs::MetricsRegistry metrics;
  obs::Tracer tracer(&clock_);
  tier_->SetObserver(&metrics, &tracer);

  std::vector<std::string> rooms = {RoomOn(0), RoomOn(1), RoomOn(2)};
  for (const std::string& id : rooms) {
    tier_->OpenRoomWithDocument(id, MakeMedicalRecordDocument().value())
        .value();
    tier_->Join(id, {"dr-cohen", client1_}).value();
  }
  tier_->SubmitChoice(rooms[0], "dr-cohen", "CT", "hidden").value();
  tier_->Settle().value();
  MigrationReport report = tier_->MigrateRoom(rooms[0], 1).value();
  ASSERT_TRUE(report.verified);
  tier_->Settle().value();

  std::vector<NodeLoad> loads = tier_->Loads();
  ASSERT_EQ(loads.size(), 3u);
  size_t total_rooms = 0, total_members = 0;
  for (const NodeLoad& load : loads) {
    total_rooms += load.rooms;
    total_members += load.members;
  }
  EXPECT_EQ(total_rooms, 3u);
  EXPECT_EQ(total_members, 3u);
  EXPECT_EQ(loads[0].rooms, 0u);  // rooms[0] migrated away, 1 gained it
  EXPECT_EQ(loads[1].rooms, 2u);

  EXPECT_EQ(metrics.GetCounter("fed.migrations")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("fed.migrations_failed")->value(), 0u);
  EXPECT_EQ(metrics.GetGauge("fed.node.1.rooms")->value(), 2);
  EXPECT_GT(metrics.GetGauge("fed.node.1.messages")->value(), 0);
  EXPECT_GT(metrics.GetHistogram("fed.migration_micros", {})->count(), 0u);
}

}  // namespace
}  // namespace mmconf::federation
