// End-to-end tests of the voice-processing applications (segmentation,
// word spotting, speaker spotting) on the synthetic consultation corpus.
// These mirror the paper's Fig. 10 scenario: browse an audio file, find
// who speaks where and which keywords occur.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "audio/browser.h"
#include "audio/segmentation.h"
#include "audio/speaker_spotting.h"
#include "audio/word_spotting.h"
#include "common/rng.h"
#include "media/synthetic.h"

namespace mmconf::audio {
namespace {

using media::AudioClass;
using media::AudioSegment;
using media::AudioSignal;
using media::Conversation;

/// Shared corpus so the expensive training happens once.
class VoiceAppsTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    corpus_ = new Corpus();
    Rng rng(2024);
    corpus_->speakers = media::MakeSpeakers(3, rng);
    corpus_->vocab = media::MakeVocabulary(4, 3, 6, rng);

    media::ConversationOptions options;
    options.num_turns = 10;
    options.words_per_turn = 2;
    options.music_probability = 0.3;
    options.artifact_probability = 0.3;
    for (int i = 0; i < 3; ++i) {
      corpus_->train.push_back(
          media::MakeConversation(corpus_->speakers, corpus_->vocab,
                                  options, rng));
    }
    corpus_->test = media::MakeConversation(corpus_->speakers,
                                            corpus_->vocab, options, rng);

    // Train the segmenter.
    Rng train_rng(7);
    ASSERT_TRUE(
        corpus_->segmenter.TrainFromConversations(corpus_->train, train_rng)
            .ok());

    // Enrollment data for spotting: per-speaker and per-keyword
    // utterances cut from the training conversations' ground truth.
    std::map<int, std::vector<AudioSignal>> by_speaker;
    std::map<int, std::vector<AudioSignal>> by_keyword;
    std::vector<AudioSignal> all_speech;
    for (const Conversation& conv : corpus_->train) {
      for (const AudioSegment& segment : conv.segments) {
        if (segment.cls != AudioClass::kSpeech) continue;
        AudioSignal span = conv.signal.Slice(segment.begin, segment.end);
        by_speaker[segment.speaker].push_back(span);
        by_keyword[segment.keyword].push_back(span);
        all_speech.push_back(std::move(span));
      }
    }
    Rng speaker_rng(8);
    ASSERT_TRUE(
        corpus_->speaker_spotter.Train(by_speaker, {}, speaker_rng).ok());
    Rng word_rng(9);
    // Keywords 0 and 1 are the watch list; everything else is garbage.
    std::map<int, std::vector<AudioSignal>> keywords;
    keywords[0] = by_keyword[0];
    keywords[1] = by_keyword[1];
    std::vector<AudioSignal> garbage;
    for (const auto& [keyword, spans] : by_keyword) {
      if (keyword > 1) {
        garbage.insert(garbage.end(), spans.begin(), spans.end());
      }
    }
    ASSERT_TRUE(corpus_->word_spotter.Train(keywords, garbage, word_rng)
                    .ok());
  }

  static void TearDownTestSuite() {
    delete corpus_;
    corpus_ = nullptr;
  }

  struct Corpus {
    std::vector<media::SpeakerProfile> speakers;
    std::vector<media::Word> vocab;
    std::vector<Conversation> train;
    Conversation test;
    AudioSegmenter segmenter;
    SpeakerSpotter speaker_spotter;
    WordSpotter word_spotter;
  };
  static Corpus* corpus_;
};

VoiceAppsTest::Corpus* VoiceAppsTest::corpus_ = nullptr;

TEST_F(VoiceAppsTest, SegmentationBeatsChance) {
  std::vector<AudioSegment> hypothesis =
      corpus_->segmenter.Segment(corpus_->test.signal).value();
  ASSERT_FALSE(hypothesis.empty());
  double accuracy = SegmentationFrameAccuracy(
      hypothesis, corpus_->test.segments, corpus_->test.signal.size());
  // Four classes: chance is 0.25; a working segmenter should be far
  // above it.
  EXPECT_GT(accuracy, 0.70) << "frame accuracy " << accuracy;
}

TEST_F(VoiceAppsTest, SegmentsAreContiguousAndCoverSignal) {
  std::vector<AudioSegment> hypothesis =
      corpus_->segmenter.Segment(corpus_->test.signal).value();
  EXPECT_EQ(hypothesis.front().begin, 0u);
  for (size_t i = 1; i < hypothesis.size(); ++i) {
    EXPECT_EQ(hypothesis[i].begin, hypothesis[i - 1].end);
  }
  EXPECT_EQ(hypothesis.back().end, corpus_->test.signal.size());
}

TEST_F(VoiceAppsTest, UntrainedSegmenterFails) {
  AudioSegmenter fresh;
  EXPECT_TRUE(fresh.Segment(corpus_->test.signal)
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(VoiceAppsTest, SpeakerSpottingOnGroundTruthSegments) {
  std::vector<SpeakerDetection> detections =
      corpus_->speaker_spotter
          .Spot(corpus_->test.signal, corpus_->test.segments)
          .value();
  ASSERT_FALSE(detections.empty());
  double accuracy =
      SpeakerSpottingAccuracy(detections, corpus_->test.segments);
  // Three speakers: chance is 1/3.
  EXPECT_GT(accuracy, 0.75) << "speaker accuracy " << accuracy;
}

TEST_F(VoiceAppsTest, CountSpeakersFindsAllParticipants) {
  // The tele-consulting question: "How many speakers participate?"
  std::set<int> truth;
  for (const AudioSegment& segment : corpus_->test.segments) {
    if (segment.speaker >= 0) truth.insert(segment.speaker);
  }
  int counted = corpus_->speaker_spotter
                    .CountSpeakers(corpus_->test.signal,
                                   corpus_->test.segments)
                    .value();
  EXPECT_GE(counted, static_cast<int>(truth.size()) - 1);
  EXPECT_LE(counted, 3);
}

TEST_F(VoiceAppsTest, WordSpottingFindsKeywords) {
  std::vector<WordDetection> detections =
      corpus_->word_spotter
          .Spot(corpus_->test.signal, corpus_->test.segments)
          .value();
  SpottingScore score =
      ScoreWordSpotting(detections, corpus_->test.segments);
  // Keywords 2..3 are "garbage" in the ground truth (keyword >= 0 but we
  // only watch 0 and 1). Build a watch-list-only truth for scoring.
  std::vector<AudioSegment> watched_truth;
  for (AudioSegment segment : corpus_->test.segments) {
    if (segment.keyword > 1) segment.keyword = -1;
    watched_truth.push_back(segment);
  }
  SpottingScore watched_score =
      ScoreWordSpotting(detections, watched_truth);
  int keyword_occurrences = 0;
  for (const AudioSegment& segment : watched_truth) {
    if (segment.keyword >= 0) ++keyword_occurrences;
  }
  if (keyword_occurrences > 0) {
    EXPECT_GT(watched_score.DetectionRate(), 0.5)
        << "detected " << watched_score.true_detections << "/"
        << keyword_occurrences;
  }
  (void)score;
}

TEST_F(VoiceAppsTest, ScoreSpanRejectsTooShort) {
  EXPECT_TRUE(corpus_->word_spotter.ScoreSpan(corpus_->test.signal, 0, 10)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(
      corpus_->speaker_spotter.ScoreSpan(corpus_->test.signal, 0, 10)
          .status()
          .IsInvalidArgument());
}

TEST_F(VoiceAppsTest, UntrainedSpottersFail) {
  WordSpotter fresh_word;
  EXPECT_TRUE(fresh_word
                  .ScoreSpan(corpus_->test.signal, 0,
                             corpus_->test.signal.size())
                  .status()
                  .IsFailedPrecondition());
  SpeakerSpotter fresh_speaker;
  EXPECT_TRUE(fresh_speaker
                  .ScoreSpan(corpus_->test.signal, 0,
                             corpus_->test.signal.size())
                  .status()
                  .IsFailedPrecondition());
}

TEST_F(VoiceAppsTest, SlidingWindowSpottingFindsPlantedKeyword) {
  // Continuous spotting over the raw recording: at least one of the
  // keyword-0 utterances must raise a correctly-placed flag. (Windows
  // over music/artifacts may false-alarm — the garbage model only covers
  // speech, which is why the full system segments first; see the
  // operating-point numbers in bench_voice.)
  std::vector<const AudioSegment*> planted;
  for (const AudioSegment& segment : corpus_->test.segments) {
    if (segment.keyword == 0) planted.push_back(&segment);
  }
  if (planted.empty()) GTEST_SKIP() << "corpus has no keyword-0 turn";
  double window_s = static_cast<double>(planted.front()->length()) /
                    corpus_->test.signal.sample_rate();
  std::vector<WordDetection> detections =
      corpus_->word_spotter
          .SpotSliding(corpus_->test.signal, window_s, window_s / 4)
          .value();
  bool found = false;
  for (const WordDetection& detection : detections) {
    if (detection.keyword != 0) continue;
    for (const AudioSegment* truth : planted) {
      size_t lo = std::max(detection.begin, truth->begin);
      size_t hi = std::min(detection.end, truth->end);
      if (hi > lo && (hi - lo) * 2 > truth->length()) found = true;
    }
  }
  EXPECT_TRUE(found) << detections.size()
                     << " detections, none over a planted keyword";
}

TEST_F(VoiceAppsTest, SlidingWindowValidation) {
  EXPECT_TRUE(corpus_->word_spotter
                  .SpotSliding(corpus_->test.signal, 0.0, 0.1)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(corpus_->word_spotter
                  .SpotSliding(corpus_->test.signal, 0.3, -1)
                  .status()
                  .IsInvalidArgument());
  // A signal shorter than the window yields no detections, not an error.
  media::AudioSignal tiny(std::vector<float>(100, 0.0f), 8000);
  EXPECT_TRUE(
      corpus_->word_spotter.SpotSliding(tiny, 1.0, 0.5).value().empty());
}

TEST_F(VoiceAppsTest, EndToEndPipelineSegmentThenSpot) {
  // Fig. 10 reproduction: automatic segmentation first, then speaker
  // attribution on the *hypothesized* speech segments.
  std::vector<AudioSegment> hypothesis =
      corpus_->segmenter.Segment(corpus_->test.signal).value();
  std::vector<SpeakerDetection> detections =
      corpus_->speaker_spotter.Spot(corpus_->test.signal, hypothesis)
          .value();
  // At least half of the true speech segments should receive the right
  // speaker through the full automatic pipeline.
  double accuracy =
      SpeakerSpottingAccuracy(detections, corpus_->test.segments);
  EXPECT_GT(accuracy, 0.5) << "pipeline accuracy " << accuracy;
}

TEST_F(VoiceAppsTest, AudioBrowserAnswersTheBrowsingQuestions) {
  AudioBrowser browser;
  Rng rng(44);
  ASSERT_TRUE(browser.Train(corpus_->train, rng).ok());
  BrowseReport report = browser.Browse(corpus_->test.signal).value();
  // Segments cover the recording.
  ASSERT_FALSE(report.segments.empty());
  EXPECT_EQ(report.segments.back().end, corpus_->test.signal.size());
  // "How many speakers participate?" — all three, within one.
  EXPECT_GE(report.num_speakers, 2);
  EXPECT_LE(report.num_speakers, 3);
  // Class durations sum to the recording length.
  double total = report.speech_seconds + report.music_seconds +
                 report.artifact_seconds + report.silence_seconds;
  EXPECT_NEAR(total, corpus_->test.signal.DurationSeconds(), 0.2);
  EXPECT_GT(report.speech_seconds, 1.0);
  // Keyword histogram matches the flags.
  size_t histogram_total = 0;
  for (const auto& [keyword, count] : report.keyword_histogram) {
    histogram_total += static_cast<size_t>(count);
  }
  EXPECT_EQ(histogram_total, report.keyword_flags.size());
  // The report renders.
  EXPECT_FALSE(report.ToString().empty());
}

TEST_F(VoiceAppsTest, AudioBrowserRequiresTraining) {
  AudioBrowser fresh;
  EXPECT_TRUE(
      fresh.Browse(corpus_->test.signal).status().IsFailedPrecondition());
}

}  // namespace
}  // namespace mmconf::audio
