#include <gtest/gtest.h>

#include "doc/authoring.h"
#include "doc/builder.h"

namespace mmconf::doc {
namespace {

TEST(AuthoringTest, MedicalRecordLintsWithFindings) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  AuthoringReport report = LintDocument(document).value();
  EXPECT_FALSE(report.HasErrors());
  // The medical record intentionally has presentations that never win
  // (e.g. the XRay's "segmented" never tops a row), so the linter must
  // find warnings.
  EXPECT_GT(report.CountAtLeast(LintSeverity::kWarning), 0u);
  EXPECT_FALSE(report.ToString().empty());
}

TEST(AuthoringTest, DetectsUnreachablePresentation) {
  TreeBuilder builder("root");
  builder.Leaf("root", "img", {"Image", 1, 1000}, ImagePresentations());
  MultimediaDocument document = builder.Build().value();
  // Default unconditional ranking: flat first. Everything else never
  // tops a row.
  ASSERT_TRUE(document.Finalize().ok());
  AuthoringReport report = LintDocument(document).value();
  int unreachable = 0;
  for (const LintFinding& finding : report.findings) {
    if (finding.component == "img" &&
        finding.message.find("never optimal") != std::string::npos) {
      ++unreachable;
    }
  }
  EXPECT_EQ(unreachable, 4);  // segmented, thumbnail, icon, hidden
}

TEST(AuthoringTest, DetectsEffectivelyHiddenComponent) {
  TreeBuilder builder("root");
  builder.Leaf("root", "ghost", {"Image", 1, 1000}, ImagePresentations());
  MultimediaDocument document = builder.Build().value();
  ASSERT_TRUE(document
                  .SetUnconditionalPreferenceByName(
                      "ghost",
                      {"hidden", "icon", "thumbnail", "segmented", "flat"})
                  .ok());
  ASSERT_TRUE(document.Finalize().ok());
  AuthoringReport report = LintDocument(document).value();
  bool flagged = false;
  for (const LintFinding& finding : report.findings) {
    if (finding.component == "ghost" &&
        finding.message.find("never appears") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(AuthoringTest, DetectsIrrelevantParents) {
  TreeBuilder builder("root");
  builder.Leaf("root", "a", {"Text", 1, 10}, TextPresentations())
      .Leaf("root", "b", {"Text", 2, 10}, TextPresentations());
  MultimediaDocument document = builder.Build().value();
  ASSERT_TRUE(document.SetParentsByName("b", {"a"}).ok());
  // Same ranking in both contexts: parents carry no information.
  ASSERT_TRUE(
      document.SetPreferenceByName("b", {"text"}, {"text", "hidden"}).ok());
  ASSERT_TRUE(
      document.SetPreferenceByName("b", {"hidden"}, {"text", "hidden"})
          .ok());
  ASSERT_TRUE(document.Finalize().ok());
  AuthoringReport report = LintDocument(document).value();
  bool flagged = false;
  for (const LintFinding& finding : report.findings) {
    if (finding.component == "b" &&
        finding.message.find("irrelevant") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(AuthoringTest, DetectsCptBlowUp) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  // Give TrendGraph four 5-valued parents: 625 rows.
  ASSERT_TRUE(document
                  .SetParentsByName("TrendGraph",
                                    {"CT", "XRay", "TestResults",
                                     "ExpertVoice"})
                  .ok());
  ASSERT_TRUE(document
                  .SetUnconditionalPreferenceByName(
                      "TrendGraph",
                      {"flat", "segmented", "thumbnail", "icon", "hidden"})
                  .ok());
  ASSERT_TRUE(document.Finalize().ok());
  AuthoringReport report = LintDocument(document, /*max_rows=*/64).value();
  bool flagged = false;
  for (const LintFinding& finding : report.findings) {
    if (finding.component == "TrendGraph" &&
        finding.message.find("parent contexts") != std::string::npos) {
      flagged = true;
    }
  }
  EXPECT_TRUE(flagged);
}

TEST(AuthoringTest, RequiresFinalizedDocument) {
  TreeBuilder builder("root");
  builder.Leaf("root", "a", {"Text", 1, 10}, TextPresentations())
      .Leaf("root", "b", {"Text", 2, 10}, TextPresentations());
  MultimediaDocument document = builder.Build().value();
  ASSERT_TRUE(document.SetParentsByName("b", {"a"}).ok());
  // Parents set but no rankings: net invalidated.
  EXPECT_TRUE(LintDocument(document).status().IsFailedPrecondition());
}

TEST(AuthoringTest, DescribeMissingRowsNamesParents) {
  TreeBuilder builder("root");
  builder.Leaf("root", "a", {"Text", 1, 10}, TextPresentations())
      .Leaf("root", "b", {"Text", 2, 10}, TextPresentations());
  MultimediaDocument document = builder.Build().value();
  ASSERT_TRUE(document.SetParentsByName("b", {"a"}).ok());
  ASSERT_TRUE(
      document.SetPreferenceByName("b", {"text"}, {"text", "hidden"}).ok());
  cpnet::VarId b = document.VarOf("b").value();
  std::vector<std::string> missing =
      DescribeMissingRows(document.net(), b);
  ASSERT_EQ(missing.size(), 1u);
  EXPECT_EQ(missing[0], "a=hidden");
  // Completing the table clears the list.
  ASSERT_TRUE(
      document.SetPreferenceByName("b", {"hidden"}, {"hidden", "text"})
          .ok());
  EXPECT_TRUE(DescribeMissingRows(document.net(), b).empty());
}

}  // namespace
}  // namespace mmconf::doc
