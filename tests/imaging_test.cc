#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "imaging/freeze.h"
#include "imaging/ops.h"
#include "media/synthetic.h"

namespace mmconf::imaging {
namespace {

using media::Image;
using media::Rect;

class OpsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Rng rng(17);
    image_ = media::MakePhantomCt({128, 128, 4, 2.0}, rng);
  }
  Image image_;
};

TEST_F(OpsTest, ZoomValidatesRegion) {
  EXPECT_TRUE(Zoom(image_, {0, 0, 0, 10}, 64, 64)
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Zoom(image_, {100, 100, 64, 64}, 64, 64)
                  .status()
                  .IsOutOfRange());
  EXPECT_TRUE(Zoom(image_, {-1, 0, 10, 10}, 64, 64)
                  .status()
                  .IsOutOfRange());
}

TEST_F(OpsTest, ZoomIdentityPreservesPixels) {
  // Zooming the full image to its own size is near-identity.
  Image zoomed =
      Zoom(image_, image_.Bounds(), image_.width(), image_.height())
          .value();
  double diff = Image::MeanAbsDifference(image_, zoomed).value();
  EXPECT_LT(diff, 1.0);
}

TEST_F(OpsTest, ZoomMagnifiesSelectedPart) {
  Rect region{32, 32, 32, 32};
  Image zoomed = Zoom(image_, region, 128, 128).value();
  EXPECT_EQ(zoomed.width(), 128);
  EXPECT_EQ(zoomed.height(), 128);
  // Center pixel of the zoom corresponds to the center of the region.
  int center = static_cast<int>(zoomed.at(64, 64));
  int original = static_cast<int>(image_.at(48, 48));
  EXPECT_NEAR(center, original, 40);  // interpolation slack
}

class SegmentCountTest : public ::testing::TestWithParam<int> {};

TEST_P(SegmentCountTest, SegmentationCoversImageWithRequestedClasses) {
  Rng rng(18);
  Image image = media::MakePhantomCt({96, 96, 5, 2.0}, rng);
  Segmentation seg = Segment(image, GetParam()).value();
  EXPECT_EQ(seg.width, image.width());
  EXPECT_EQ(seg.height, image.height());
  EXPECT_EQ(seg.num_segments, GetParam());
  std::set<int> used;
  for (int label : seg.labels) {
    ASSERT_GE(label, 0);
    ASSERT_LT(label, GetParam());
    used.insert(label);
  }
  // A phantom has at least background/body/structures: most classes used.
  EXPECT_GE(static_cast<int>(used.size()), std::min(GetParam(), 3));
}

INSTANTIATE_TEST_SUITE_P(Counts, SegmentCountTest,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

TEST_F(OpsTest, SegmentLabelsAscendWithIntensity) {
  Segmentation seg = Segment(image_, 3).value();
  // Mean intensity per label must be increasing in label id.
  double mean[3] = {0, 0, 0};
  long count[3] = {0, 0, 0};
  for (int y = 0; y < image_.height(); ++y) {
    for (int x = 0; x < image_.width(); ++x) {
      int label = seg.LabelAt(x, y);
      mean[label] += image_.at(x, y);
      ++count[label];
    }
  }
  for (int k = 0; k < 3; ++k) {
    ASSERT_GT(count[k], 0L);
    mean[k] /= static_cast<double>(count[k]);
  }
  EXPECT_LT(mean[0], mean[1]);
  EXPECT_LT(mean[1], mean[2]);
}

TEST_F(OpsTest, SegmentValidation) {
  EXPECT_TRUE(Segment(image_, 0).status().IsInvalidArgument());
  EXPECT_TRUE(Segment(image_, 300).status().IsInvalidArgument());
}

TEST_F(OpsTest, ApplySegmentationStylesAndBoundaries) {
  Segmentation seg = Segment(image_, 3).value();
  std::vector<SegmentStyle> styles = {
      {FillPattern::kSolid, 10}, {FillPattern::kNone, 0}};
  Image rendered =
      ApplySegmentation(image_, seg, styles, /*draw_boundaries=*/false)
          .value();
  // Label-0 pixels became intensity 10; label-1 pixels untouched.
  for (int y = 0; y < image_.height(); y += 7) {
    for (int x = 0; x < image_.width(); x += 7) {
      if (seg.LabelAt(x, y) == 0) {
        EXPECT_EQ(rendered.at(x, y), 10);
      } else if (seg.LabelAt(x, y) == 1) {
        EXPECT_EQ(rendered.at(x, y), image_.at(x, y));
      }
    }
  }
  // Size mismatch rejected.
  Image small = Image::Create(10, 10).value();
  EXPECT_TRUE(ApplySegmentation(small, seg, styles, false)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(OpsTest, SegmentedViewChangesImage) {
  Image view = SegmentedView(image_, 4).value();
  EXPECT_GT(Image::MeanAbsDifference(image_, view).value(), 1.0);
}

TEST_F(OpsTest, DownscaleAveragesBlocks) {
  Image down = Downscale(image_, 4).value();
  EXPECT_EQ(down.width(), 32);
  EXPECT_EQ(down.height(), 32);
  // Overall mean preserved.
  double full_mean = 0, down_mean = 0;
  for (uint8_t p : image_.pixels()) full_mean += p;
  for (uint8_t p : down.pixels()) down_mean += p;
  full_mean /= static_cast<double>(image_.pixels().size());
  down_mean /= static_cast<double>(down.pixels().size());
  EXPECT_NEAR(full_mean, down_mean, 1.5);
  EXPECT_TRUE(Downscale(image_, 3).status().IsInvalidArgument());  // 128%3
  EXPECT_TRUE(Downscale(image_, 0).status().IsInvalidArgument());
}

TEST_F(OpsTest, RegionStats) {
  Image flat = Image::Create(16, 16, 100).value();
  flat.set(4, 4, 200);
  RegionStats stats = ComputeRegionStats(flat, {0, 0, 16, 16}).value();
  EXPECT_EQ(stats.pixels, 256);
  EXPECT_EQ(stats.min, 100);
  EXPECT_EQ(stats.max, 200);
  EXPECT_NEAR(stats.mean, 100.39, 0.01);
  EXPECT_GT(stats.stddev, 0);
  // Constant region.
  RegionStats corner = ComputeRegionStats(flat, {8, 8, 4, 4}).value();
  EXPECT_DOUBLE_EQ(corner.stddev, 0);
  EXPECT_TRUE(ComputeRegionStats(flat, {0, 0, 0, 1})
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(ComputeRegionStats(flat, {10, 10, 10, 10})
                  .status()
                  .IsOutOfRange());
}

TEST_F(OpsTest, HistogramEqualizationStretchesContrast) {
  // A low-contrast image (values clustered in [100, 130]).
  Rng rng(19);
  Image low = Image::Create(64, 64).value();
  for (uint8_t& p : low.mutable_pixels()) {
    p = static_cast<uint8_t>(100 + rng.NextBelow(30));
  }
  Image equalized = EqualizeHistogram(low).value();
  RegionStats before = ComputeRegionStats(low, low.Bounds()).value();
  RegionStats after =
      ComputeRegionStats(equalized, equalized.Bounds()).value();
  EXPECT_GT(after.max - after.min, before.max - before.min);
  EXPECT_GT(after.stddev, before.stddev);
  // Constant image survives unchanged.
  Image constant = Image::Create(8, 8, 42).value();
  Image same = EqualizeHistogram(constant).value();
  EXPECT_EQ(same.pixels(), constant.pixels());
}

TEST(FreezeTest, BasicLifecycle) {
  FreezeRegistry registry;
  EXPECT_FALSE(registry.IsFrozen("CT"));
  EXPECT_TRUE(registry.Freeze("CT", "alice").ok());
  EXPECT_TRUE(registry.IsFrozen("CT"));
  EXPECT_EQ(registry.HolderOf("CT"), "alice");
  // Idempotent for the holder; blocked for others.
  EXPECT_TRUE(registry.Freeze("CT", "alice").ok());
  EXPECT_TRUE(registry.Freeze("CT", "bob").IsFailedPrecondition());
  EXPECT_TRUE(registry.CheckMutable("CT", "alice").ok());
  EXPECT_TRUE(registry.CheckMutable("CT", "bob").IsFailedPrecondition());
  EXPECT_TRUE(registry.CheckMutable("XRay", "bob").ok());
  // Release rules.
  EXPECT_TRUE(registry.Release("CT", "bob").IsFailedPrecondition());
  EXPECT_TRUE(registry.Release("CT", "alice").ok());
  EXPECT_TRUE(registry.Release("CT", "alice").IsNotFound());
}

TEST(FreezeTest, ReleaseAllHeldBy) {
  FreezeRegistry registry;
  registry.Freeze("a", "alice").ok();
  registry.Freeze("b", "alice").ok();
  registry.Freeze("c", "bob").ok();
  EXPECT_EQ(registry.frozen_count(), 3u);
  EXPECT_EQ(registry.ReleaseAllHeldBy("alice"), 2);
  EXPECT_EQ(registry.frozen_count(), 1u);
  EXPECT_TRUE(registry.IsFrozen("c"));
  EXPECT_EQ(registry.ReleaseAllHeldBy("nobody"), 0);
}

}  // namespace
}  // namespace mmconf::imaging
