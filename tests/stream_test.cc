#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "compress/layered_codec.h"
#include "doc/builder.h"
#include "media/synthetic.h"
#include "net/network.h"
#include "net/reliable.h"
#include "prefetch/cache.h"
#include "server/interaction_server.h"
#include "storage/database.h"
#include "stream/chunk.h"
#include "stream/chunker.h"
#include "stream/playout.h"
#include "stream/rate.h"
#include "stream/scheduler.h"

namespace mmconf::stream {
namespace {

using compress::LayeredCodec;
using compress::StreamInfo;

Bytes EncodeObject(uint64_t seed) {
  Rng rng(seed);
  media::Image image = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
  LayeredCodec codec;
  return codec.Encode(image).value();
}

std::vector<Bytes> EncodeObjects(size_t n, uint64_t seed = 7) {
  std::vector<Bytes> objects;
  for (size_t k = 0; k < n; ++k) objects.push_back(EncodeObject(seed + k));
  return objects;
}

// --- Chunk tags ---

TEST(ChunkTagTest, RoundTrip) {
  std::string tag = ChunkTag(42, 7);
  EXPECT_EQ(tag, "sc:42:7");
  StreamId id = 0;
  uint32_t seq = 0;
  ASSERT_TRUE(ParseChunkTag(tag, &id, &seq));
  EXPECT_EQ(id, 42u);
  EXPECT_EQ(seq, 7u);
}

TEST(ChunkTagTest, RejectsForeignTags) {
  StreamId id = 0;
  uint32_t seq = 0;
  EXPECT_FALSE(ParseChunkTag("presentation-delta", &id, &seq));
  EXPECT_FALSE(ParseChunkTag("sc:12", &id, &seq));
  EXPECT_FALSE(ParseChunkTag("sc:x:1", &id, &seq));
  EXPECT_FALSE(ParseChunkTag("sc:1:2:3", &id, &seq));
}

// --- Chunker ---

TEST(ChunkerTest, SplitsOnLayerBoundaries) {
  Bytes encoded = EncodeObject(11);
  StreamInfo info = LayeredCodec::Inspect(encoded).value();
  int layers = static_cast<int>(info.layer_end.size());
  ASSERT_GE(layers, 2);

  Chunker chunker(/*max_chunk_bytes=*/2048);
  ObjectPlan plan = chunker.Plan(encoded, 9, 0, 100, 500000).value();
  EXPECT_EQ(plan.num_layers, layers);
  ASSERT_EQ(plan.layer_bytes.size(), static_cast<size_t>(layers));

  // Per-layer byte totals from the chunks must match the layer_end table:
  // layer 0 owns the header, layer k the slice up to layer_end[k].
  std::vector<size_t> per_layer(layers, 0);
  uint32_t expect_seq = 100;
  for (const Chunk& chunk : plan.chunks) {
    EXPECT_EQ(chunk.stream, 9u);
    EXPECT_EQ(chunk.object_index, 0u);
    EXPECT_EQ(chunk.seq, expect_seq++);
    EXPECT_LE(chunk.bytes, 2048u);
    EXPECT_GT(chunk.bytes, 0u);
    EXPECT_EQ(chunk.base, chunk.layer == 0);
    EXPECT_EQ(chunk.deadline, 500000);
    ASSERT_LT(chunk.layer, layers);
    per_layer[chunk.layer] += chunk.bytes;
  }
  for (int k = 0; k < layers; ++k) {
    size_t expected = k == 0 ? info.layer_end[0]
                             : info.layer_end[k] - info.layer_end[k - 1];
    EXPECT_EQ(per_layer[k], expected) << "layer " << k;
    EXPECT_EQ(plan.layer_bytes[k], expected) << "layer " << k;
  }
  EXPECT_EQ(plan.total_bytes, info.total_bytes);
}

TEST(ChunkerTest, RejectsTruncatedBitstream) {
  Bytes encoded = EncodeObject(12);
  encoded.resize(encoded.size() - 16);
  Chunker chunker;
  EXPECT_TRUE(
      chunker.Plan(encoded, 1, 0, 0, 1000).status().IsInvalidArgument());
}

// --- Token bucket and rate estimator ---

TEST(TokenBucketTest, PacesToRate) {
  TokenBucket bucket(/*rate=*/1000.0, /*burst=*/2000);
  EXPECT_TRUE(bucket.CanSend(2000));
  bucket.Consume(2000);
  EXPECT_FALSE(bucket.CanSend(1));
  // 1000 bytes at 1000 B/s: available one simulated second later.
  EXPECT_EQ(bucket.WhenAvailable(1000, 0), 1000000);
  bucket.Refill(1000000);
  EXPECT_TRUE(bucket.CanSend(1000));
  EXPECT_FALSE(bucket.CanSend(1001));
}

TEST(TokenBucketTest, OversizedRequestSaturatesAtBurst) {
  TokenBucket bucket(1000.0, 2000);
  bucket.Consume(2000);
  // A 10x-burst request waits only until the bucket is full, so oversized
  // chunks still clear eventually.
  EXPECT_EQ(bucket.WhenAvailable(20000, 0), 2000000);
}

TEST(AckRateEstimatorTest, TracksAckSpacingNotRtt) {
  AckRateEstimator estimator(/*initial=*/1e6);
  // Every ack has a 200ms RTT (latency-dominated), but acks arrive 10ms
  // apart carrying 1000 bytes each: the spacing says 100 kB/s.
  estimator.OnAck(1000, 0, 200000);
  EXPECT_DOUBLE_EQ(estimator.BytesPerSec(), 1e6);  // one ack, no interval
  estimator.OnAck(1000, 10000, 210000);
  EXPECT_NEAR(estimator.BytesPerSec(), 100000.0, 1.0);
  for (int k = 2; k < 10; ++k) {
    estimator.OnAck(1000, k * 10000, 200000 + k * 10000);
  }
  EXPECT_NEAR(estimator.BytesPerSec(), 100000.0, 1.0);
}

// --- Playout buffer ---

TEST(PlayoutBufferTest, EnforcesMonotoneDeadlinesAndOrder) {
  PlayoutBuffer playout(1 << 20);
  ASSERT_TRUE(playout.ExpectObject(0, 1000, {100, 50}).ok());
  EXPECT_TRUE(playout.ExpectObject(2, 2000, {100}).IsInvalidArgument());
  EXPECT_TRUE(playout.ExpectObject(1, 999, {100}).IsInvalidArgument());
  EXPECT_TRUE(playout.ExpectObject(1, 1000, {100}).ok());  // ties allowed
}

TEST(PlayoutBufferTest, BaseLayerIsNeverDropped) {
  PlayoutBuffer playout(1 << 20);
  ASSERT_TRUE(playout.ExpectObject(0, 1000, {100, 50, 25}).ok());
  EXPECT_TRUE(playout.MarkLayerDropped(0, 0).IsInvalidArgument());
  EXPECT_TRUE(playout.MarkLayerDropped(0, 1).ok());
}

TEST(PlayoutBufferTest, StallAndWasteAccounting) {
  PlayoutBuffer playout(1 << 20);
  ASSERT_TRUE(playout.ExpectObject(0, 1000, {100, 50}).ok());

  Chunk base;
  base.object_index = 0;
  base.layer = 0;
  base.bytes = 100;
  base.last_of_layer = true;
  base.deadline = 1000;
  base.base = true;

  // Base misses its deadline by 500us: the object stalls, then plays at
  // base-completion time with only the base layer decodable.
  playout.AdvanceTo(1200);
  EXPECT_EQ(playout.stats().objects_played, 0u);
  ASSERT_TRUE(playout.OnChunk(base, 1500).ok());
  EXPECT_EQ(playout.fill_bytes(), 100u);
  playout.AdvanceTo(1600);
  EXPECT_TRUE(playout.AllPlayed());
  EXPECT_EQ(playout.stats().objects_played, 1u);
  EXPECT_EQ(playout.stats().stalls, 1u);
  EXPECT_EQ(playout.stats().total_stall_micros, 500);
  EXPECT_EQ(playout.stats().max_stall_micros, 500);
  EXPECT_EQ(playout.DeliveredLayers(0).value(), 1);
  EXPECT_EQ(playout.fill_bytes(), 0u);  // played bytes leave the buffer

  // The enhancement limps in after play: wasted, not quality.
  Chunk enh = base;
  enh.layer = 1;
  enh.bytes = 50;
  enh.base = false;
  ASSERT_TRUE(playout.OnChunk(enh, 1700).ok());
  EXPECT_EQ(playout.stats().wasted_bytes, 50u);
  EXPECT_EQ(playout.stats().min_layers, 1);
  EXPECT_EQ(playout.stats().high_water_bytes, 100u);
}

TEST(PlayoutBufferTest, OnTimeObjectPlaysAtDeadlineWithAllLayers) {
  PlayoutBuffer playout(1 << 20);
  ASSERT_TRUE(playout.ExpectObject(0, 1000, {100, 50}).ok());
  Chunk base{};
  base.bytes = 100;
  base.last_of_layer = true;
  base.deadline = 1000;
  base.base = true;
  Chunk enh = base;
  enh.layer = 1;
  enh.bytes = 50;
  enh.base = false;
  ASSERT_TRUE(playout.OnChunk(base, 400).ok());
  ASSERT_TRUE(playout.OnChunk(enh, 600).ok());
  EXPECT_EQ(playout.NextPlayAt(), 1000);
  playout.AdvanceTo(1000);
  EXPECT_EQ(playout.stats().stalls, 0u);
  EXPECT_EQ(playout.DeliveredLayers(0).value(), 2);
  EXPECT_EQ(playout.stats().bytes_played, 150u);
}

// --- End-to-end streaming through the interaction server ---

class StreamServerTest : public ::testing::Test {
 protected:
  void SetUp() override { Build(/*fault_seed=*/0x5eedf00dull); }

  void Build(uint64_t fault_seed) {
    server_.reset();
    transport_.reset();
    network_.reset();
    clock_ = Clock();
    network_ = std::make_unique<net::Network>(&clock_, fault_seed);
    server_node_ = network_->AddNode("interaction-server");
    db_node_ = network_->AddNode("oracle");
    client1_ = network_->AddNode("client-1");
    client2_ = network_->AddNode("client-2");
    ASSERT_TRUE(
        network_->SetDuplexLink(server_node_, db_node_, {50e6, 1000}).ok());
    ASSERT_TRUE(
        network_->SetDuplexLink(server_node_, client1_, {1e6, 20000}).ok());
    ASSERT_TRUE(
        network_->SetDuplexLink(server_node_, client2_, {1e6, 20000}).ok());
    ASSERT_TRUE(db_.RegisterStandardTypes().ok());
    server_ = std::make_unique<server::InteractionServer>(
        &db_, network_.get(), server_node_, db_node_);
    transport_ = std::make_unique<net::ReliableTransport>(network_.get());
    server_->UseReliableTransport(transport_.get());
    ASSERT_TRUE(server_
                    ->OpenRoomWithDocument(
                        "consult", doc::MakeMedicalRecordDocument().value())
                    .ok());
    ASSERT_TRUE(server_->Join("consult", {"dr-cohen", client1_}).ok());
    ASSERT_TRUE(server_->Join("consult", {"dr-levi", client2_}).ok());
    // Settle the join payloads so stream tests start from a quiet wire.
    transport_->AdvanceUntilIdle();
  }

  /// Deadlines relative to the current virtual time (the join handshake
  /// already consumed a few hundred simulated milliseconds).
  StreamOptions Options(MicrosT lead = 500000, MicrosT interval = 200000) {
    StreamOptions options;
    options.start_deadline_micros = clock_.NowMicros() + lead;
    options.interval_micros = interval;
    options.chunk_bytes = 2048;
    return options;
  }

  Clock clock_;
  storage::DatabaseServer db_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<net::ReliableTransport> transport_;
  std::unique_ptr<server::InteractionServer> server_;
  net::NodeId server_node_ = 0, db_node_ = 0, client1_ = 0, client2_ = 0;
};

TEST_F(StreamServerTest, AmpleBandwidthDeliversEveryLayerWithoutStalls) {
  std::vector<Bytes> objects = EncodeObjects(3);
  int layers = static_cast<int>(
      LayeredCodec::Inspect(objects[0]).value().layer_end.size());

  StreamId s1 =
      server_->OpenStream("consult", "dr-cohen", objects, Options()).value();
  StreamId s2 =
      server_->OpenStream("consult", "dr-levi", objects, Options()).value();
  EXPECT_EQ(server_->num_streams(), 2u);
  ASSERT_TRUE(server_->AdvanceStreamsUntilIdle().ok());
  EXPECT_TRUE(server_->StreamsIdle());

  for (StreamId id : {s1, s2}) {
    StreamStats stats = server_->StreamSessionStats(id).value();
    EXPECT_TRUE(stats.finished);
    EXPECT_FALSE(stats.aborted);
    EXPECT_EQ(stats.chunks_acked, stats.chunks_total);
    EXPECT_EQ(stats.chunks_failed, 0u);
    EXPECT_EQ(stats.layers_dropped, 0u);
    EXPECT_EQ(stats.enhancement_chunks_dropped, 0u);
    EXPECT_EQ(stats.playout.objects_played, 3u);
    EXPECT_EQ(stats.playout.stalls, 0u);
    EXPECT_EQ(stats.playout.total_stall_micros, 0);
    EXPECT_EQ(stats.playout.min_layers, layers);
    EXPECT_DOUBLE_EQ(stats.playout.MeanLayers(), layers);
    EXPECT_EQ(stats.playout.wasted_bytes, 0u);
  }
  std::vector<StreamStats> room = server_->RoomStreamStats("consult").value();
  EXPECT_EQ(room.size(), 2u);
}

TEST_F(StreamServerTest, ConstrainedLinkDropsOnlyEnhancementLayers) {
  // Squeeze dr-cohen's downlink so full-quality delivery cannot keep up
  // with the deadline cadence, while base layers alone fit comfortably.
  ASSERT_TRUE(
      network_->SetDuplexLink(server_node_, client1_, {8e3, 20000}).ok());
  std::vector<Bytes> objects = EncodeObjects(6);
  int layers = static_cast<int>(
      LayeredCodec::Inspect(objects[0]).value().layer_end.size());

  // ~10 KB of encoded objects against 8 kB/s x 750 ms of deadline
  // runway: full quality cannot fit, base layers alone can.
  StreamId id = server_->OpenStream("consult", "dr-cohen", objects,
                                    Options(250000, 100000))
                    .value();
  ASSERT_TRUE(server_->AdvanceStreamsUntilIdle().ok());

  StreamStats stats = server_->StreamSessionStats(id).value();
  EXPECT_TRUE(stats.finished);
  EXPECT_FALSE(stats.aborted);
  EXPECT_EQ(stats.chunks_failed, 0u);
  // Quality degraded, continuity preserved: enhancements were shed...
  EXPECT_GT(stats.layers_dropped, 0u);
  EXPECT_GT(stats.enhancement_chunks_dropped, 0u);
  EXPECT_LT(stats.playout.MeanLayers(), static_cast<double>(layers));
  // ...but every object played, its base always on time (no stalls), and
  // at least the base layer was decodable each time.
  EXPECT_EQ(stats.playout.objects_played, 6u);
  EXPECT_EQ(stats.playout.stalls, 0u);
  EXPECT_GE(stats.playout.min_layers, 1);
  // Fewer bytes than full quality crossed the squeezed link.
  size_t full_bytes = 0;
  for (const Bytes& object : objects) full_bytes += object.size();
  EXPECT_LT(stats.bytes_sent, full_bytes);
}

TEST_F(StreamServerTest, LossyLinkStatsAreDeterministicForFixedSeed) {
  auto run = [&](uint64_t seed) {
    Build(seed);
    net::FaultSpec faults;
    faults.drop_probability = 0.10;
    EXPECT_TRUE(network_->SetFault(server_node_, client1_, faults).ok());
    StreamId id =
        server_->OpenStream("consult", "dr-cohen", EncodeObjects(4), Options())
            .value();
    EXPECT_TRUE(server_->AdvanceStreamsUntilIdle().ok());
    return server_->StreamSessionStats(id).value();
  };

  StreamStats a = run(1234);
  StreamStats b = run(1234);
  EXPECT_EQ(a.chunks_sent, b.chunks_sent);
  EXPECT_EQ(a.chunks_acked, b.chunks_acked);
  EXPECT_EQ(a.bytes_sent, b.bytes_sent);
  EXPECT_EQ(a.layers_dropped, b.layers_dropped);
  EXPECT_EQ(a.playout.stalls, b.playout.stalls);
  EXPECT_EQ(a.playout.total_stall_micros, b.playout.total_stall_micros);
  EXPECT_EQ(a.playout.layers_delivered_total, b.playout.layers_delivered_total);

  StreamStats c = run(99);  // a different seed may land elsewhere
  EXPECT_TRUE(c.finished || c.aborted);
}

TEST_F(StreamServerTest, StreamingMixesWithPropagateTraffic) {
  StreamId id =
      server_->OpenStream("consult", "dr-cohen", EncodeObjects(2), Options())
          .value();
  // A presentation choice mid-stream rides the same transport; its delta
  // must reach the other member and come back as a passthrough delivery.
  ASSERT_TRUE(server_->SubmitChoice("consult", "dr-levi", "CT", "hidden").ok());
  std::vector<net::Delivery> passthrough =
      server_->AdvanceStreamsUntilIdle().value();

  bool saw_delta = false;
  for (const net::Delivery& delivery : passthrough) {
    StreamId sid = 0;
    uint32_t seq = 0;
    EXPECT_FALSE(ParseChunkTag(delivery.tag, &sid, &seq))
        << "stream chunk leaked into passthrough: " << delivery.tag;
    if (delivery.tag == "presentation-delta") saw_delta = true;
  }
  EXPECT_TRUE(saw_delta);

  StreamStats stats = server_->StreamSessionStats(id).value();
  EXPECT_TRUE(stats.finished);
  EXPECT_EQ(stats.playout.stalls, 0u);
  EXPECT_TRUE(server_->RoomConverged("consult"));
}

TEST_F(StreamServerTest, PlayoutBudgetSharesClientCacheHeadroom) {
  prefetch::ClientCache cache(64 << 10, prefetch::CachePolicy::kLru);
  ASSERT_TRUE(cache.Insert("CT/full", 48 << 10, 1.0).ok());
  ASSERT_TRUE(server_->AttachClientCache("consult", "dr-cohen", &cache).ok());

  StreamOptions options = Options();
  options.playout_buffer_bytes = 512 << 10;  // clamped to 16 KiB headroom
  StreamId id =
      server_->OpenStream("consult", "dr-cohen", EncodeObjects(3), options)
          .value();
  ASSERT_TRUE(server_->AdvanceStreamsUntilIdle().ok());

  StreamStats stats = server_->StreamSessionStats(id).value();
  EXPECT_TRUE(stats.finished);
  EXPECT_EQ(stats.playout.stalls, 0u);
  // The buffer never grew past the cache's free headroom: streaming and
  // prefetch share the client's one buffer budget.
  EXPECT_LE(stats.playout.high_water_bytes, 16u << 10);

  cache.Lookup("CT/full");
  cache.Lookup("XRay/flat");
  prefetch::CacheStats room = server_->RoomCacheStats("consult").value();
  EXPECT_EQ(room.hits, 1u);
  EXPECT_EQ(room.misses, 1u);
  EXPECT_EQ(room.insertions, 1u);
}

TEST_F(StreamServerTest, OpenStreamValidation) {
  EXPECT_TRUE(server_
                  ->OpenStream("consult", "ghost", EncodeObjects(1), Options())
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(server_->OpenStream("no-room", "dr-cohen", EncodeObjects(1),
                                  Options())
                  .status()
                  .IsNotFound());
  EXPECT_TRUE(
      server_->OpenStream("consult", "dr-cohen", {}, Options())
          .status()
          .IsInvalidArgument());
  EXPECT_TRUE(server_->StreamSessionStats(999).status().IsNotFound());

  StreamId id =
      server_->OpenStream("consult", "dr-cohen", EncodeObjects(1), Options())
          .value();
  EXPECT_EQ(server_->num_streams(), 1u);
  EXPECT_TRUE(server_->CloseStream(id).ok());
  EXPECT_EQ(server_->num_streams(), 0u);
  EXPECT_TRUE(server_->CloseStream(id).IsNotFound());
}

TEST(StreamSchedulerTest, RequiresTransportThroughServer) {
  Clock clock;
  net::Network network(&clock);
  net::NodeId server_node = network.AddNode("s");
  net::NodeId db_node = network.AddNode("db");
  net::NodeId client = network.AddNode("c");
  ASSERT_TRUE(network.SetDuplexLink(server_node, db_node, {50e6, 1000}).ok());
  ASSERT_TRUE(network.SetDuplexLink(server_node, client, {1e6, 20000}).ok());
  storage::DatabaseServer db;
  ASSERT_TRUE(db.RegisterStandardTypes().ok());
  server::InteractionServer server(&db, &network, server_node, db_node);
  ASSERT_TRUE(server
                  .OpenRoomWithDocument(
                      "consult", doc::MakeMedicalRecordDocument().value())
                  .ok());
  ASSERT_TRUE(server.Join("consult", {"dr-cohen", client}).ok());
  EXPECT_TRUE(server
                  .OpenStream("consult", "dr-cohen", EncodeObjects(1), {})
                  .status()
                  .IsFailedPrecondition());
}

}  // namespace
}  // namespace mmconf::stream
