#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "doc/builder.h"
#include "net/reliable.h"
#include "server/interaction_server.h"
#include "server/room.h"
#include "storage/database.h"

namespace mmconf::server {
namespace {

using doc::MakeMedicalRecordDocument;
using doc::MultimediaDocument;

std::unique_ptr<Room> MakeRoom() {
  return std::make_unique<Room>("consult-1",
                                MakeMedicalRecordDocument().value());
}

TEST(RoomTest, JoinAndLeave) {
  auto room = MakeRoom();
  EXPECT_TRUE(room->Join("dr-cohen").ok());
  EXPECT_TRUE(room->Join("dr-levi").ok());
  EXPECT_TRUE(room->Join("dr-cohen").IsAlreadyExists());
  EXPECT_TRUE(room->HasMember("dr-levi"));
  EXPECT_EQ(room->members().size(), 2u);
  EXPECT_TRUE(room->Leave("dr-levi").ok());
  EXPECT_FALSE(room->HasMember("dr-levi"));
  EXPECT_TRUE(room->Leave("dr-levi").status().IsNotFound());
}

TEST(RoomTest, InitialConfigurationIsDefault) {
  auto room = MakeRoom();
  EXPECT_EQ(room->configuration(),
            room->document().DefaultPresentation().value());
}

TEST(RoomTest, ChoiceReconfiguresAndReportsDelta) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  ReconfigResult result =
      room->SubmitChoice("dr-cohen", "CT", "hidden").value();
  // CT changed, and with it the XRay (surfaces) and the voice (summary).
  EXPECT_NE(std::find(result.changed_components.begin(),
                      result.changed_components.end(), "CT"),
            result.changed_components.end());
  EXPECT_NE(std::find(result.changed_components.begin(),
                      result.changed_components.end(), "XRay"),
            result.changed_components.end());
  EXPECT_GT(result.delta_cost_bytes, 0u);
  EXPECT_EQ(room->document()
                .PresentationFor(room->configuration(), "XRay")
                .value()
                .name,
            "flat");
}

TEST(RoomTest, ChoicesFromNonMemberRejected) {
  auto room = MakeRoom();
  EXPECT_TRUE(
      room->SubmitChoice("ghost", "CT", "hidden").status().IsNotFound());
}

TEST(RoomTest, InvalidChoiceLeavesStateUntouched) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  cpnet::Assignment before = room->configuration();
  EXPECT_TRUE(room->SubmitChoice("dr-cohen", "CT", "sepia")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(room->SubmitChoice("dr-cohen", "Ghost", "flat")
                  .status()
                  .IsNotFound());
  EXPECT_EQ(room->configuration(), before);
}

TEST(RoomTest, ReleasingChoiceRestoresDefault) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  room->SubmitChoice("dr-cohen", "CT", "hidden").value();
  ReconfigResult released =
      room->SubmitChoice("dr-cohen", "CT", "").value();
  EXPECT_EQ(released.configuration,
            room->document().DefaultPresentation().value());
}

TEST(RoomTest, LeaveDropsTheLeaversConstraints) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  ASSERT_TRUE(room->Join("dr-levi").ok());
  room->SubmitChoice("dr-levi", "CT", "hidden").value();
  ReconfigResult after_leave = room->Leave("dr-levi").value();
  EXPECT_EQ(after_leave.configuration,
            room->document().DefaultPresentation().value());
}

TEST(RoomTest, LatestSubmissionWinsAcrossViewers) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("alice").ok());
  ASSERT_TRUE(room->Join("zoe").ok());
  // zoe (later alphabetically) chooses first; alice overrides after.
  room->SubmitChoice("zoe", "CT", "thumbnail").value();
  ReconfigResult result =
      room->SubmitChoice("alice", "CT", "segmented").value();
  EXPECT_EQ(room->document()
                .PresentationFor(result.configuration, "CT")
                .value()
                .name,
            "segmented");
  // And the other direction: zoe re-overrides alice.
  result = room->SubmitChoice("zoe", "CT", "flat").value();
  EXPECT_EQ(room->document()
                .PresentationFor(result.configuration, "CT")
                .value()
                .name,
            "flat");
}

TEST(RoomTest, FreezeBlocksOtherPartners) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  ASSERT_TRUE(room->Join("dr-levi").ok());
  ASSERT_TRUE(room->Freeze("dr-cohen", "CT").ok());
  EXPECT_TRUE(room->IsFrozen("CT"));

  UserAction op;
  op.type = ActionType::kSegmentOp;
  op.viewer = "dr-levi";
  op.component = "CT";
  EXPECT_TRUE(
      room->ApplyOperation(op, true).status().IsFailedPrecondition());
  // The holder can operate.
  op.viewer = "dr-cohen";
  EXPECT_TRUE(room->ApplyOperation(op, true).ok());
  // Release and retry.
  EXPECT_TRUE(room->ReleaseFreeze("dr-levi", "CT").IsFailedPrecondition());
  EXPECT_TRUE(room->ReleaseFreeze("dr-cohen", "CT").ok());
  op.viewer = "dr-levi";
  EXPECT_TRUE(room->ApplyOperation(op, true).ok());
}

TEST(RoomTest, LeaveReleasesFreezes) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  ASSERT_TRUE(room->Freeze("dr-cohen", "CT").ok());
  room->Leave("dr-cohen").value();
  EXPECT_FALSE(room->IsFrozen("CT"));
}

TEST(RoomTest, GlobalOperationExtendsDocumentNet) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  size_t vars_before = room->document().num_variables();
  UserAction op;
  op.type = ActionType::kSegmentOp;
  op.viewer = "dr-cohen";
  op.component = "CT";
  room->ApplyOperation(op, /*globally_important=*/true).value();
  EXPECT_EQ(room->document().num_variables(), vars_before + 1);
  EXPECT_EQ(room->configuration().size(), vars_before + 1);
}

TEST(RoomTest, PrivateOperationGrowsOnlyOverlay) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  size_t vars_before = room->document().num_variables();
  UserAction op;
  op.type = ActionType::kSegmentOp;
  op.viewer = "dr-cohen";
  op.component = "CT";
  room->ApplyOperation(op, /*globally_important=*/false).value();
  EXPECT_EQ(room->document().num_variables(), vars_before);
  cpnet::ViewerOverlay* overlay = room->OverlayFor("dr-cohen").value();
  EXPECT_EQ(overlay->size(), 1u);
  // Other viewers have empty overlays.
  ASSERT_TRUE(room->Join("dr-levi").ok());
  EXPECT_EQ(room->OverlayFor("dr-levi").value()->size(), 0u);
}

TEST(RoomTest, ViewerAddsComponentOnline) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  size_t components_before = room->document().num_components();
  auto mri = std::make_unique<doc::PrimitiveMultimediaComponent>(
      "MRI", doc::ContentRef{"Image", 9, 262144},
      doc::ImagePresentations());
  ReconfigResult result =
      room->AddComponent("dr-cohen", "Imaging", std::move(mri)).value();
  EXPECT_EQ(room->document().num_components(), components_before + 1);
  // Structural change forces a full redisplay.
  EXPECT_GE(result.changed_components.size(), components_before);
  EXPECT_TRUE(room->document()
                  .PresentationFor(room->configuration(), "MRI")
                  .ok());
  // Non-members cannot mutate the document.
  auto pet = std::make_unique<doc::PrimitiveMultimediaComponent>(
      "PET", doc::ContentRef{"Image", 10, 1}, doc::ImagePresentations());
  EXPECT_TRUE(room->AddComponent("ghost", "Imaging", std::move(pet))
                  .status()
                  .IsNotFound());
}

TEST(RoomTest, ViewerRemovesComponentOnline) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  ASSERT_TRUE(room->Join("dr-levi").ok());
  // dr-levi pinned a choice on the CT; removal drops it.
  room->SubmitChoice("dr-levi", "CT", "segmented").value();
  ReconfigResult result =
      room->RemoveComponent("dr-cohen", "CT").value();
  EXPECT_TRUE(room->document().Find("CT").status().IsNotFound());
  // The configuration is a valid optimum of the shrunken document.
  EXPECT_EQ(result.configuration.size(),
            room->document().num_variables());
  // The X-ray surfaced (restricted to the CT-hidden context).
  EXPECT_EQ(room->document()
                .PresentationFor(room->configuration(), "XRay")
                .value()
                .name,
            "flat");
}

TEST(RoomTest, RemoveComponentRespectsFreeze) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  ASSERT_TRUE(room->Join("dr-levi").ok());
  ASSERT_TRUE(room->Freeze("dr-levi", "CT").ok());
  EXPECT_TRUE(room->RemoveComponent("dr-cohen", "CT")
                  .status()
                  .IsFailedPrecondition());
  // The holder may remove it; the freeze dies with the component.
  EXPECT_TRUE(room->RemoveComponent("dr-levi", "CT").ok());
  EXPECT_FALSE(room->IsFrozen("CT"));
}

TEST(RoomTest, OperationsOnCompositesRejected) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  UserAction op;
  op.type = ActionType::kZoom;
  op.viewer = "dr-cohen";
  op.component = "Imaging";
  EXPECT_TRUE(room->ApplyOperation(op, true).status().IsInvalidArgument());
}

TEST(RoomTest, ActionLogRecordsEverything) {
  auto room = MakeRoom();
  room->Join("dr-cohen").ok();
  room->SubmitChoice("dr-cohen", "CT", "hidden").value();
  room->Freeze("dr-cohen", "CT").ok();
  room->ReleaseFreeze("dr-cohen", "CT").ok();
  room->Leave("dr-cohen").value();
  ASSERT_EQ(room->action_log().size(), 5u);
  EXPECT_EQ(room->action_log()[0].type, ActionType::kJoin);
  EXPECT_EQ(room->action_log()[1].type, ActionType::kChoice);
  EXPECT_EQ(room->action_log()[2].type, ActionType::kFreeze);
  EXPECT_EQ(room->action_log()[3].type, ActionType::kReleaseFreeze);
  EXPECT_EQ(room->action_log()[4].type, ActionType::kLeave);
}

// --- InteractionServer over storage + network ---

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_);
    server_node_ = network_->AddNode("interaction-server");
    db_node_ = network_->AddNode("oracle");
    client1_ = network_->AddNode("client-1");
    client2_ = network_->AddNode("client-2");
    ASSERT_TRUE(
        network_->SetDuplexLink(server_node_, db_node_, {50e6, 1000}).ok());
    ASSERT_TRUE(
        network_->SetDuplexLink(server_node_, client1_, {1e6, 20000}).ok());
    ASSERT_TRUE(network_
                    ->SetDuplexLink(server_node_, client2_,
                                    {128e3, 50000})  // slow client
                    .ok());
    ASSERT_TRUE(db_.RegisterStandardTypes().ok());
    server_ = std::make_unique<InteractionServer>(&db_, network_.get(),
                                                  server_node_, db_node_);
  }

  Clock clock_;
  storage::DatabaseServer db_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<InteractionServer> server_;
  net::NodeId server_node_ = 0, db_node_ = 0, client1_ = 0, client2_ = 0;
};

TEST_F(ServerTest, StoreAndOpenRoomRoundTrip) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref =
      server_->StoreDocument(document, "patient-17").value();
  Room* room = server_->OpenRoom("consult", ref).value();
  EXPECT_EQ(room->document().num_components(), 10u);
  EXPECT_TRUE(server_->OpenRoom("consult", ref).status().IsAlreadyExists());
  EXPECT_EQ(server_->num_rooms(), 1u);
  EXPECT_TRUE(server_->CloseRoom("consult").ok());
  EXPECT_TRUE(server_->CloseRoom("consult").IsNotFound());
}

TEST_F(ServerTest, JoinDeliversInitialContent) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref =
      server_->StoreDocument(document, "patient-17").value();
  server_->OpenRoom("consult", ref).value();
  MicrosT fast = server_->Join("consult", {"dr-cohen", client1_}).value();
  MicrosT slow = server_->Join("consult", {"dr-levi", client2_}).value();
  EXPECT_GT(fast, 0);
  EXPECT_GT(slow, fast);  // slow downlink -> later delivery
  EXPECT_GT(server_->bytes_propagated(), 0u);
}

TEST_F(ServerTest, ChoicePropagatesToOtherMembersOnly) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server_->StoreDocument(document, "p").value();
  server_->OpenRoom("consult", ref).value();
  server_->Join("consult", {"dr-cohen", client1_}).value();
  server_->Join("consult", {"dr-levi", client2_}).value();
  network_->AdvanceUntilIdle();
  size_t to_1_before = network_->BytesSent(server_node_, client1_);
  size_t to_2_before = network_->BytesSent(server_node_, client2_);

  ReconfigResult result =
      server_->SubmitChoice("consult", "dr-cohen", "CT", "hidden").value();
  EXPECT_FALSE(result.changed_components.empty());
  // The originator already applied the change locally; only dr-levi
  // receives the delta.
  EXPECT_EQ(network_->BytesSent(server_node_, client1_), to_1_before);
  EXPECT_GT(network_->BytesSent(server_node_, client2_), to_2_before);
}

TEST_F(ServerTest, OperationPropagates) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server_->StoreDocument(document, "p").value();
  server_->OpenRoom("consult", ref).value();
  server_->Join("consult", {"dr-cohen", client1_}).value();
  UserAction op;
  op.type = ActionType::kSegmentOp;
  op.viewer = "dr-cohen";
  op.component = "CT";
  EXPECT_TRUE(server_->ApplyOperation("consult", op, true).ok());
  EXPECT_TRUE(server_->ApplyOperation("ghost-room", op, true)
                  .status()
                  .IsNotFound());
}

TEST_F(ServerTest, SlowClientsReceiveTranscodedPayloads) {
  // client1_ is a 1 MB/s (high) link, client2_ 128 KB/s (still high);
  // rewire client2_ to 8 KB/s (low) to exercise §4.4 transcoding.
  ASSERT_TRUE(
      network_->SetDuplexLink(server_node_, client2_, {8e3, 50000}).ok());
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server_->StoreDocument(document, "p").value();
  server_->OpenRoom("consult", ref).value();
  server_->Join("consult", {"fast-doc", client1_}).value();
  server_->Join("consult", {"slow-doc", client2_}).value();
  network_->AdvanceUntilIdle();
  size_t fast_initial = network_->BytesSent(server_node_, client1_);
  size_t slow_initial = network_->BytesSent(server_node_, client2_);
  // The slow client's rendition of the same shared view is much smaller.
  EXPECT_LT(slow_initial, fast_initial / 4);
  EXPECT_GT(slow_initial, 0u);

  // Deltas transcode too: a third (fast) member makes a change; both
  // others get it, sized per link.
  net::NodeId third = network_->AddNode("third");
  ASSERT_TRUE(
      network_->SetDuplexLink(server_node_, third, {10e6, 1000}).ok());
  server_->Join("consult", {"third-doc", third}).value();
  network_->AdvanceUntilIdle();
  size_t fast_before = network_->BytesSent(server_node_, client1_);
  size_t slow_before = network_->BytesSent(server_node_, client2_);
  server_->SubmitChoice("consult", "third-doc", "CT", "hidden").value();
  size_t fast_delta =
      network_->BytesSent(server_node_, client1_) - fast_before;
  size_t slow_delta =
      network_->BytesSent(server_node_, client2_) - slow_before;
  EXPECT_GT(fast_delta, 0u);
  EXPECT_GT(slow_delta, 0u);
  EXPECT_LT(slow_delta, fast_delta);
}

TEST_F(ServerTest, PartitionedClientIsEvictedNotFatal) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server_->StoreDocument(document, "p").value();
  server_->OpenRoom("consult", ref).value();
  server_->Join("consult", {"dr-cohen", client1_}).value();
  server_->Join("consult", {"dr-levi", client2_}).value();
  network_->AdvanceUntilIdle();
  // dr-levi's site drops off the network.
  network_->Partition(server_node_, client2_);
  // A choice from dr-cohen must still succeed...
  ASSERT_TRUE(
      server_->SubmitChoice("consult", "dr-cohen", "CT", "hidden").ok());
  // ...and the unreachable member is evicted from the room.
  Room* room = server_->GetRoom("consult").value();
  EXPECT_FALSE(room->HasMember("dr-levi"));
  EXPECT_TRUE(room->HasMember("dr-cohen"));
}

TEST_F(ServerTest, PartitionMidSessionRetriesThenEvictsAfterCap) {
  net::RetryPolicy policy;
  policy.initial_timeout_micros = 100000;
  policy.backoff_factor = 2.0;
  policy.max_timeout_micros = 400000;
  policy.max_attempts = 3;
  net::ReliableTransport transport(network_.get(), policy);
  server_->UseReliableTransport(&transport);

  net::NodeId third = network_->AddNode("client-3");
  ASSERT_TRUE(
      network_->SetDuplexLink(server_node_, third, {1e6, 20000}).ok());
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server_->StoreDocument(document, "p").value();
  server_->OpenRoom("consult", ref).value();
  server_->Join("consult", {"dr-cohen", client1_}).value();
  server_->Join("consult", {"dr-levi", client2_}).value();
  server_->Join("consult", {"dr-gold", third}).value();
  transport.AdvanceUntilIdle();
  ASSERT_TRUE(server_->RoomConverged("consult"));

  // dr-levi pins a choice, then their site drops off the network.
  server_->SubmitChoice("consult", "dr-levi", "CT", "hidden").value();
  transport.AdvanceUntilIdle();
  network_->Partition(server_node_, client2_);

  // A change mid-partition succeeds immediately — and unlike the
  // single-shot path, the unreachable member is NOT evicted yet.
  ASSERT_TRUE(
      server_->SubmitChoice("consult", "dr-cohen", "CT", "thumbnail").ok());
  Room* room = server_->GetRoom("consult").value();
  EXPECT_TRUE(room->HasMember("dr-levi"));

  // Pumping the transport burns dr-levi's retry budget, then evicts.
  transport.AdvanceUntilIdle();
  EXPECT_FALSE(room->HasMember("dr-levi"));
  EXPECT_TRUE(room->HasMember("dr-cohen"));
  EXPECT_TRUE(room->HasMember("dr-gold"));

  // The failed channel consumed its whole budget.
  net::ChannelStats to_levi = transport.StatsFor(server_node_, client2_);
  EXPECT_EQ(to_levi.failed, 1u);
  EXPECT_EQ(to_levi.attempts, to_levi.acked + 3u);
  RoomReliabilityStats stats = server_->RoomStats("consult").value();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_GE(stats.retries, 2u);

  // Survivors converged: every message to them was acked, and the room
  // settled on dr-cohen's (latest) choice once dr-levi's pin died.
  EXPECT_TRUE(server_->RoomConverged("consult"));
  EXPECT_EQ(transport.in_flight(), 0u);
  EXPECT_EQ(transport.StatsFor(server_node_, client1_).failed, 0u);
  EXPECT_EQ(transport.StatsFor(server_node_, third).failed, 0u);
  EXPECT_EQ(room->document()
                .PresentationFor(room->configuration(), "CT")
                .value()
                .name,
            "thumbnail");
}

/// Counters collected from one seeded lossy-room run, compared across
/// runs to pin down determinism.
struct LossyRunOutcome {
  size_t members = 0;
  size_t failed = 0;
  size_t retries = 0;
  size_t duplicates_suppressed = 0;
  size_t dropped_on_wire = 0;
  size_t duplicated_on_wire = 0;
  std::vector<size_t> client_deliveries;
  std::string final_ct;
  MicrosT finished_at = 0;

  bool operator==(const LossyRunOutcome&) const = default;
};

LossyRunOutcome RunLossyRoom(uint64_t seed) {
  Clock clock;
  net::Network network(&clock, seed);
  net::NodeId server_node = network.AddNode("server");
  net::NodeId db_node = network.AddNode("db");
  network.SetDuplexLink(server_node, db_node, {50e6, 1000}).ok();
  std::vector<net::NodeId> clients;
  net::FaultSpec fault;
  fault.drop_probability = 0.2;
  fault.duplicate_probability = 0.2;
  fault.jitter_micros = 2000;
  for (int i = 0; i < 3; ++i) {
    net::NodeId node = network.AddNode("client-" + std::to_string(i));
    network.SetDuplexLink(server_node, node, {1e6, 20000}).ok();
    network.SetDuplexFault(server_node, node, fault).ok();
    clients.push_back(node);
  }
  net::RetryPolicy policy;
  policy.initial_timeout_micros = 150000;
  policy.max_attempts = 8;  // generous: nothing should fail at 20% loss
  net::ReliableTransport transport(&network, policy);
  storage::DatabaseServer db;
  db.RegisterStandardTypes().ok();
  InteractionServer server(&db, &network, server_node, db_node);
  server.UseReliableTransport(&transport);

  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server.StoreDocument(document, "p").value();
  server.OpenRoom("consult", ref).value();
  std::vector<net::Delivery> all;
  auto pump = [&] {
    std::vector<net::Delivery> batch = transport.AdvanceUntilIdle();
    all.insert(all.end(), batch.begin(), batch.end());
  };
  for (int i = 0; i < 3; ++i) {
    server.Join("consult", {"dr-" + std::to_string(i), clients[i]}).value();
  }
  pump();
  server.SubmitChoice("consult", "dr-0", "CT", "hidden").value();
  pump();
  server.SubmitChoice("consult", "dr-1", "CT", "thumbnail").value();
  pump();
  server.SubmitChoice("consult", "dr-2", "CT", "segmented").value();
  pump();

  LossyRunOutcome outcome;
  Room* room = server.GetRoom("consult").value();
  outcome.members = room->members().size();
  net::ChannelStats totals = transport.TotalStats();
  outcome.failed = totals.failed;
  outcome.retries = totals.retries;
  outcome.duplicates_suppressed = totals.duplicates_suppressed;
  net::FaultStats wire = network.TotalFaultStats();
  outcome.dropped_on_wire = wire.dropped;
  outcome.duplicated_on_wire = wire.duplicated;
  for (net::NodeId client : clients) {
    size_t count = 0;
    for (const net::Delivery& delivery : all) {
      if (delivery.to == client) ++count;
    }
    outcome.client_deliveries.push_back(count);
  }
  outcome.final_ct = room->document()
                         .PresentationFor(room->configuration(), "CT")
                         .value()
                         .name;
  outcome.finished_at = clock.NowMicros();
  return outcome;
}

TEST(ServerReliabilityTest, LossyLinksConvergeDeterministically) {
  LossyRunOutcome outcome = RunLossyRoom(/*seed=*/20020731);
  // Nobody was evicted: every message survived 20% drop + duplication
  // via retries, and each member saw the full change history exactly
  // once (initial content + the two rounds they did not originate).
  EXPECT_EQ(outcome.members, 3u);
  EXPECT_EQ(outcome.failed, 0u);
  EXPECT_GT(outcome.retries, 0u);
  ASSERT_EQ(outcome.client_deliveries.size(), 3u);
  for (size_t deliveries : outcome.client_deliveries) {
    EXPECT_EQ(deliveries, 3u);
  }
  EXPECT_EQ(outcome.final_ct, "segmented");

  // The same seed reproduces every counter bit-for-bit.
  EXPECT_EQ(RunLossyRoom(20020731), outcome);
  // A different seed gives a different loss pattern (sanity check that
  // the fault model is actually live).
  LossyRunOutcome other = RunLossyRoom(7);
  EXPECT_EQ(other.members, 3u);
  EXPECT_NE(other.finished_at, outcome.finished_at);
}

TEST_F(ServerTest, LeaveReoptimizesForRemainingMembers) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server_->StoreDocument(document, "p").value();
  server_->OpenRoom("consult", ref).value();
  server_->Join("consult", {"dr-cohen", client1_}).value();
  server_->Join("consult", {"dr-levi", client2_}).value();
  server_->SubmitChoice("consult", "dr-levi", "CT", "hidden").value();
  ASSERT_TRUE(server_->Leave("consult", "dr-levi").ok());
  Room* room = server_->GetRoom("consult").value();
  EXPECT_EQ(room->configuration(),
            room->document().DefaultPresentation().value());
}

}  // namespace
}  // namespace mmconf::server
