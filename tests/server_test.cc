#include <gtest/gtest.h>

#include <algorithm>

#include "doc/builder.h"
#include "server/interaction_server.h"
#include "server/room.h"

namespace mmconf::server {
namespace {

using doc::MakeMedicalRecordDocument;
using doc::MultimediaDocument;

std::unique_ptr<Room> MakeRoom() {
  return std::make_unique<Room>("consult-1",
                                MakeMedicalRecordDocument().value());
}

TEST(RoomTest, JoinAndLeave) {
  auto room = MakeRoom();
  EXPECT_TRUE(room->Join("dr-cohen").ok());
  EXPECT_TRUE(room->Join("dr-levi").ok());
  EXPECT_TRUE(room->Join("dr-cohen").IsAlreadyExists());
  EXPECT_TRUE(room->HasMember("dr-levi"));
  EXPECT_EQ(room->members().size(), 2u);
  EXPECT_TRUE(room->Leave("dr-levi").ok());
  EXPECT_FALSE(room->HasMember("dr-levi"));
  EXPECT_TRUE(room->Leave("dr-levi").status().IsNotFound());
}

TEST(RoomTest, InitialConfigurationIsDefault) {
  auto room = MakeRoom();
  EXPECT_EQ(room->configuration(),
            room->document().DefaultPresentation().value());
}

TEST(RoomTest, ChoiceReconfiguresAndReportsDelta) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  ReconfigResult result =
      room->SubmitChoice("dr-cohen", "CT", "hidden").value();
  // CT changed, and with it the XRay (surfaces) and the voice (summary).
  EXPECT_NE(std::find(result.changed_components.begin(),
                      result.changed_components.end(), "CT"),
            result.changed_components.end());
  EXPECT_NE(std::find(result.changed_components.begin(),
                      result.changed_components.end(), "XRay"),
            result.changed_components.end());
  EXPECT_GT(result.delta_cost_bytes, 0u);
  EXPECT_EQ(room->document()
                .PresentationFor(room->configuration(), "XRay")
                .value()
                .name,
            "flat");
}

TEST(RoomTest, ChoicesFromNonMemberRejected) {
  auto room = MakeRoom();
  EXPECT_TRUE(
      room->SubmitChoice("ghost", "CT", "hidden").status().IsNotFound());
}

TEST(RoomTest, InvalidChoiceLeavesStateUntouched) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  cpnet::Assignment before = room->configuration();
  EXPECT_TRUE(room->SubmitChoice("dr-cohen", "CT", "sepia")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(room->SubmitChoice("dr-cohen", "Ghost", "flat")
                  .status()
                  .IsNotFound());
  EXPECT_EQ(room->configuration(), before);
}

TEST(RoomTest, ReleasingChoiceRestoresDefault) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  room->SubmitChoice("dr-cohen", "CT", "hidden").value();
  ReconfigResult released =
      room->SubmitChoice("dr-cohen", "CT", "").value();
  EXPECT_EQ(released.configuration,
            room->document().DefaultPresentation().value());
}

TEST(RoomTest, LeaveDropsTheLeaversConstraints) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  ASSERT_TRUE(room->Join("dr-levi").ok());
  room->SubmitChoice("dr-levi", "CT", "hidden").value();
  ReconfigResult after_leave = room->Leave("dr-levi").value();
  EXPECT_EQ(after_leave.configuration,
            room->document().DefaultPresentation().value());
}

TEST(RoomTest, LatestSubmissionWinsAcrossViewers) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("alice").ok());
  ASSERT_TRUE(room->Join("zoe").ok());
  // zoe (later alphabetically) chooses first; alice overrides after.
  room->SubmitChoice("zoe", "CT", "thumbnail").value();
  ReconfigResult result =
      room->SubmitChoice("alice", "CT", "segmented").value();
  EXPECT_EQ(room->document()
                .PresentationFor(result.configuration, "CT")
                .value()
                .name,
            "segmented");
  // And the other direction: zoe re-overrides alice.
  result = room->SubmitChoice("zoe", "CT", "flat").value();
  EXPECT_EQ(room->document()
                .PresentationFor(result.configuration, "CT")
                .value()
                .name,
            "flat");
}

TEST(RoomTest, FreezeBlocksOtherPartners) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  ASSERT_TRUE(room->Join("dr-levi").ok());
  ASSERT_TRUE(room->Freeze("dr-cohen", "CT").ok());
  EXPECT_TRUE(room->IsFrozen("CT"));

  UserAction op;
  op.type = ActionType::kSegmentOp;
  op.viewer = "dr-levi";
  op.component = "CT";
  EXPECT_TRUE(
      room->ApplyOperation(op, true).status().IsFailedPrecondition());
  // The holder can operate.
  op.viewer = "dr-cohen";
  EXPECT_TRUE(room->ApplyOperation(op, true).ok());
  // Release and retry.
  EXPECT_TRUE(room->ReleaseFreeze("dr-levi", "CT").IsFailedPrecondition());
  EXPECT_TRUE(room->ReleaseFreeze("dr-cohen", "CT").ok());
  op.viewer = "dr-levi";
  EXPECT_TRUE(room->ApplyOperation(op, true).ok());
}

TEST(RoomTest, LeaveReleasesFreezes) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  ASSERT_TRUE(room->Freeze("dr-cohen", "CT").ok());
  room->Leave("dr-cohen").value();
  EXPECT_FALSE(room->IsFrozen("CT"));
}

TEST(RoomTest, GlobalOperationExtendsDocumentNet) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  size_t vars_before = room->document().num_variables();
  UserAction op;
  op.type = ActionType::kSegmentOp;
  op.viewer = "dr-cohen";
  op.component = "CT";
  room->ApplyOperation(op, /*globally_important=*/true).value();
  EXPECT_EQ(room->document().num_variables(), vars_before + 1);
  EXPECT_EQ(room->configuration().size(), vars_before + 1);
}

TEST(RoomTest, PrivateOperationGrowsOnlyOverlay) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  size_t vars_before = room->document().num_variables();
  UserAction op;
  op.type = ActionType::kSegmentOp;
  op.viewer = "dr-cohen";
  op.component = "CT";
  room->ApplyOperation(op, /*globally_important=*/false).value();
  EXPECT_EQ(room->document().num_variables(), vars_before);
  cpnet::ViewerOverlay* overlay = room->OverlayFor("dr-cohen").value();
  EXPECT_EQ(overlay->size(), 1u);
  // Other viewers have empty overlays.
  ASSERT_TRUE(room->Join("dr-levi").ok());
  EXPECT_EQ(room->OverlayFor("dr-levi").value()->size(), 0u);
}

TEST(RoomTest, ViewerAddsComponentOnline) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  size_t components_before = room->document().num_components();
  auto mri = std::make_unique<doc::PrimitiveMultimediaComponent>(
      "MRI", doc::ContentRef{"Image", 9, 262144},
      doc::ImagePresentations());
  ReconfigResult result =
      room->AddComponent("dr-cohen", "Imaging", std::move(mri)).value();
  EXPECT_EQ(room->document().num_components(), components_before + 1);
  // Structural change forces a full redisplay.
  EXPECT_GE(result.changed_components.size(), components_before);
  EXPECT_TRUE(room->document()
                  .PresentationFor(room->configuration(), "MRI")
                  .ok());
  // Non-members cannot mutate the document.
  auto pet = std::make_unique<doc::PrimitiveMultimediaComponent>(
      "PET", doc::ContentRef{"Image", 10, 1}, doc::ImagePresentations());
  EXPECT_TRUE(room->AddComponent("ghost", "Imaging", std::move(pet))
                  .status()
                  .IsNotFound());
}

TEST(RoomTest, ViewerRemovesComponentOnline) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  ASSERT_TRUE(room->Join("dr-levi").ok());
  // dr-levi pinned a choice on the CT; removal drops it.
  room->SubmitChoice("dr-levi", "CT", "segmented").value();
  ReconfigResult result =
      room->RemoveComponent("dr-cohen", "CT").value();
  EXPECT_TRUE(room->document().Find("CT").status().IsNotFound());
  // The configuration is a valid optimum of the shrunken document.
  EXPECT_EQ(result.configuration.size(),
            room->document().num_variables());
  // The X-ray surfaced (restricted to the CT-hidden context).
  EXPECT_EQ(room->document()
                .PresentationFor(room->configuration(), "XRay")
                .value()
                .name,
            "flat");
}

TEST(RoomTest, RemoveComponentRespectsFreeze) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  ASSERT_TRUE(room->Join("dr-levi").ok());
  ASSERT_TRUE(room->Freeze("dr-levi", "CT").ok());
  EXPECT_TRUE(room->RemoveComponent("dr-cohen", "CT")
                  .status()
                  .IsFailedPrecondition());
  // The holder may remove it; the freeze dies with the component.
  EXPECT_TRUE(room->RemoveComponent("dr-levi", "CT").ok());
  EXPECT_FALSE(room->IsFrozen("CT"));
}

TEST(RoomTest, OperationsOnCompositesRejected) {
  auto room = MakeRoom();
  ASSERT_TRUE(room->Join("dr-cohen").ok());
  UserAction op;
  op.type = ActionType::kZoom;
  op.viewer = "dr-cohen";
  op.component = "Imaging";
  EXPECT_TRUE(room->ApplyOperation(op, true).status().IsInvalidArgument());
}

TEST(RoomTest, ActionLogRecordsEverything) {
  auto room = MakeRoom();
  room->Join("dr-cohen").ok();
  room->SubmitChoice("dr-cohen", "CT", "hidden").value();
  room->Freeze("dr-cohen", "CT").ok();
  room->ReleaseFreeze("dr-cohen", "CT").ok();
  room->Leave("dr-cohen").value();
  ASSERT_EQ(room->action_log().size(), 5u);
  EXPECT_EQ(room->action_log()[0].type, ActionType::kJoin);
  EXPECT_EQ(room->action_log()[1].type, ActionType::kChoice);
  EXPECT_EQ(room->action_log()[2].type, ActionType::kFreeze);
  EXPECT_EQ(room->action_log()[3].type, ActionType::kReleaseFreeze);
  EXPECT_EQ(room->action_log()[4].type, ActionType::kLeave);
}

// --- InteractionServer over storage + network ---

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    network_ = std::make_unique<net::Network>(&clock_);
    server_node_ = network_->AddNode("interaction-server");
    db_node_ = network_->AddNode("oracle");
    client1_ = network_->AddNode("client-1");
    client2_ = network_->AddNode("client-2");
    ASSERT_TRUE(
        network_->SetDuplexLink(server_node_, db_node_, {50e6, 1000}).ok());
    ASSERT_TRUE(
        network_->SetDuplexLink(server_node_, client1_, {1e6, 20000}).ok());
    ASSERT_TRUE(network_
                    ->SetDuplexLink(server_node_, client2_,
                                    {128e3, 50000})  // slow client
                    .ok());
    ASSERT_TRUE(db_.RegisterStandardTypes().ok());
    server_ = std::make_unique<InteractionServer>(&db_, network_.get(),
                                                  server_node_, db_node_);
  }

  Clock clock_;
  storage::DatabaseServer db_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<InteractionServer> server_;
  net::NodeId server_node_ = 0, db_node_ = 0, client1_ = 0, client2_ = 0;
};

TEST_F(ServerTest, StoreAndOpenRoomRoundTrip) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref =
      server_->StoreDocument(document, "patient-17").value();
  Room* room = server_->OpenRoom("consult", ref).value();
  EXPECT_EQ(room->document().num_components(), 10u);
  EXPECT_TRUE(server_->OpenRoom("consult", ref).status().IsAlreadyExists());
  EXPECT_EQ(server_->num_rooms(), 1u);
  EXPECT_TRUE(server_->CloseRoom("consult").ok());
  EXPECT_TRUE(server_->CloseRoom("consult").IsNotFound());
}

TEST_F(ServerTest, JoinDeliversInitialContent) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref =
      server_->StoreDocument(document, "patient-17").value();
  server_->OpenRoom("consult", ref).value();
  MicrosT fast = server_->Join("consult", {"dr-cohen", client1_}).value();
  MicrosT slow = server_->Join("consult", {"dr-levi", client2_}).value();
  EXPECT_GT(fast, 0);
  EXPECT_GT(slow, fast);  // slow downlink -> later delivery
  EXPECT_GT(server_->bytes_propagated(), 0u);
}

TEST_F(ServerTest, ChoicePropagatesToOtherMembersOnly) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server_->StoreDocument(document, "p").value();
  server_->OpenRoom("consult", ref).value();
  server_->Join("consult", {"dr-cohen", client1_}).value();
  server_->Join("consult", {"dr-levi", client2_}).value();
  network_->AdvanceUntilIdle();
  size_t to_1_before = network_->BytesSent(server_node_, client1_);
  size_t to_2_before = network_->BytesSent(server_node_, client2_);

  ReconfigResult result =
      server_->SubmitChoice("consult", "dr-cohen", "CT", "hidden").value();
  EXPECT_FALSE(result.changed_components.empty());
  // The originator already applied the change locally; only dr-levi
  // receives the delta.
  EXPECT_EQ(network_->BytesSent(server_node_, client1_), to_1_before);
  EXPECT_GT(network_->BytesSent(server_node_, client2_), to_2_before);
}

TEST_F(ServerTest, OperationPropagates) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server_->StoreDocument(document, "p").value();
  server_->OpenRoom("consult", ref).value();
  server_->Join("consult", {"dr-cohen", client1_}).value();
  UserAction op;
  op.type = ActionType::kSegmentOp;
  op.viewer = "dr-cohen";
  op.component = "CT";
  EXPECT_TRUE(server_->ApplyOperation("consult", op, true).ok());
  EXPECT_TRUE(server_->ApplyOperation("ghost-room", op, true)
                  .status()
                  .IsNotFound());
}

TEST_F(ServerTest, SlowClientsReceiveTranscodedPayloads) {
  // client1_ is a 1 MB/s (high) link, client2_ 128 KB/s (still high);
  // rewire client2_ to 8 KB/s (low) to exercise §4.4 transcoding.
  ASSERT_TRUE(
      network_->SetDuplexLink(server_node_, client2_, {8e3, 50000}).ok());
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server_->StoreDocument(document, "p").value();
  server_->OpenRoom("consult", ref).value();
  server_->Join("consult", {"fast-doc", client1_}).value();
  server_->Join("consult", {"slow-doc", client2_}).value();
  network_->AdvanceUntilIdle();
  size_t fast_initial = network_->BytesSent(server_node_, client1_);
  size_t slow_initial = network_->BytesSent(server_node_, client2_);
  // The slow client's rendition of the same shared view is much smaller.
  EXPECT_LT(slow_initial, fast_initial / 4);
  EXPECT_GT(slow_initial, 0u);

  // Deltas transcode too: a third (fast) member makes a change; both
  // others get it, sized per link.
  net::NodeId third = network_->AddNode("third");
  ASSERT_TRUE(
      network_->SetDuplexLink(server_node_, third, {10e6, 1000}).ok());
  server_->Join("consult", {"third-doc", third}).value();
  network_->AdvanceUntilIdle();
  size_t fast_before = network_->BytesSent(server_node_, client1_);
  size_t slow_before = network_->BytesSent(server_node_, client2_);
  server_->SubmitChoice("consult", "third-doc", "CT", "hidden").value();
  size_t fast_delta =
      network_->BytesSent(server_node_, client1_) - fast_before;
  size_t slow_delta =
      network_->BytesSent(server_node_, client2_) - slow_before;
  EXPECT_GT(fast_delta, 0u);
  EXPECT_GT(slow_delta, 0u);
  EXPECT_LT(slow_delta, fast_delta);
}

TEST_F(ServerTest, PartitionedClientIsEvictedNotFatal) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server_->StoreDocument(document, "p").value();
  server_->OpenRoom("consult", ref).value();
  server_->Join("consult", {"dr-cohen", client1_}).value();
  server_->Join("consult", {"dr-levi", client2_}).value();
  network_->AdvanceUntilIdle();
  // dr-levi's site drops off the network.
  network_->Partition(server_node_, client2_);
  // A choice from dr-cohen must still succeed...
  ASSERT_TRUE(
      server_->SubmitChoice("consult", "dr-cohen", "CT", "hidden").ok());
  // ...and the unreachable member is evicted from the room.
  Room* room = server_->GetRoom("consult").value();
  EXPECT_FALSE(room->HasMember("dr-levi"));
  EXPECT_TRUE(room->HasMember("dr-cohen"));
}

TEST_F(ServerTest, LeaveReoptimizesForRemainingMembers) {
  MultimediaDocument document = MakeMedicalRecordDocument().value();
  storage::ObjectRef ref = server_->StoreDocument(document, "p").value();
  server_->OpenRoom("consult", ref).value();
  server_->Join("consult", {"dr-cohen", client1_}).value();
  server_->Join("consult", {"dr-levi", client2_}).value();
  server_->SubmitChoice("consult", "dr-levi", "CT", "hidden").value();
  ASSERT_TRUE(server_->Leave("consult", "dr-levi").ok());
  Room* room = server_->GetRoom("consult").value();
  EXPECT_EQ(room->configuration(),
            room->document().DefaultPresentation().value());
}

}  // namespace
}  // namespace mmconf::server
