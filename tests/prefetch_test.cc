#include <gtest/gtest.h>

#include <algorithm>

#include "common/clock.h"
#include "common/rng.h"
#include "doc/builder.h"
#include "doc/tuning.h"
#include "net/network.h"
#include "prefetch/cache.h"
#include "prefetch/predictor.h"
#include "prefetch/session.h"

namespace mmconf::prefetch {
namespace {

using cpnet::Assignment;
using doc::MakeMedicalRecordDocument;
using doc::MultimediaDocument;

class PredictorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    document_ = std::make_unique<MultimediaDocument>(
        MakeMedicalRecordDocument().value());
    predictor_ = std::make_unique<PrefetchPredictor>(document_.get());
  }
  std::unique_ptr<MultimediaDocument> document_;
  std::unique_ptr<PrefetchPredictor> predictor_;
};

TEST_F(PredictorTest, RequiresFullConfiguration) {
  Assignment partial(document_->num_variables());
  EXPECT_TRUE(
      predictor_->RankCandidates(partial).status().IsInvalidArgument());
}

TEST_F(PredictorTest, RanksXrayHighWhenCtShown) {
  // Default: CT flat, XRay hidden. The likeliest "next" surprise is the
  // viewer hiding/changing CT, which surfaces the XRay — so the XRay
  // must rank among the candidates.
  Assignment config = document_->DefaultPresentation().value();
  std::vector<PrefetchCandidate> candidates =
      predictor_->RankCandidates(config).value();
  ASSERT_FALSE(candidates.empty());
  bool has_xray = false;
  for (const PrefetchCandidate& candidate : candidates) {
    if (candidate.component == "XRay" &&
        candidate.presentation == "flat") {
      has_xray = true;
    }
    EXPECT_GT(candidate.score, 0.0);
    EXPECT_GT(candidate.cost_bytes, 0u);
  }
  EXPECT_TRUE(has_xray);
}

TEST_F(PredictorTest, ScoresAreSortedDescending) {
  Assignment config = document_->DefaultPresentation().value();
  std::vector<PrefetchCandidate> candidates =
      predictor_->RankCandidates(config).value();
  for (size_t i = 1; i < candidates.size(); ++i) {
    EXPECT_GE(candidates[i - 1].score, candidates[i].score);
  }
}

TEST_F(PredictorTest, CurrentlyVisibleContentNotCandidates) {
  Assignment config = document_->DefaultPresentation().value();
  std::vector<PrefetchCandidate> candidates =
      predictor_->RankCandidates(config).value();
  // CT is already shown flat; prefetching it again is pointless.
  for (const PrefetchCandidate& candidate : candidates) {
    EXPECT_FALSE(candidate.component == "CT" &&
                 candidate.presentation == "flat");
  }
}

/// The two implementations must agree to the byte: same candidates, same
/// order, bit-identical scores (the dense accumulator adds weights in
/// the same sequence as the baseline's map).
void ExpectSameRanking(const std::vector<PrefetchCandidate>& fast,
                       const std::vector<PrefetchCandidate>& baseline) {
  ASSERT_EQ(fast.size(), baseline.size());
  for (size_t i = 0; i < fast.size(); ++i) {
    EXPECT_EQ(fast[i].component, baseline[i].component) << "rank " << i;
    EXPECT_EQ(fast[i].presentation, baseline[i].presentation) << "rank " << i;
    EXPECT_EQ(fast[i].score, baseline[i].score) << "rank " << i;
    EXPECT_EQ(fast[i].cost_bytes, baseline[i].cost_bytes) << "rank " << i;
  }
}

TEST_F(PredictorTest, FastRankingMatchesBaselineOnMedicalRecord) {
  Assignment config = document_->DefaultPresentation().value();
  ExpectSameRanking(predictor_->RankCandidates(config).value(),
                    predictor_->RankCandidatesBaseline(config).value());
  // And on a reconfigured state (CT hidden surfaces the XRay).
  Assignment next =
      document_->ReconfigPresentation({{"CT", "hidden"}}).value();
  ExpectSameRanking(predictor_->RankCandidates(next).value(),
                    predictor_->RankCandidatesBaseline(next).value());
}

TEST_F(PredictorTest, FastRankingMatchesBaselineWithExtensionVariables) {
  // A tuning variable is a CP-net variable but not a component: the
  // configuration is longer than the component list.
  ASSERT_TRUE(doc::AddBandwidthTuning(*document_, "net-tuning").ok());
  Assignment config = document_->DefaultPresentation().value();
  ASSERT_GT(document_->num_variables(), document_->num_components());
  ExpectSameRanking(predictor_->RankCandidates(config).value(),
                    predictor_->RankCandidatesBaseline(config).value());
}

TEST(PredictorEquivalenceTest, FastMatchesBaselineOnRandomDocuments) {
  Rng rng(31337);
  for (int trial = 0; trial < 8; ++trial) {
    MultimediaDocument document =
        doc::MakeRandomDocument(/*num_groups=*/3, /*num_leaves=*/8, rng)
            .value();
    PrefetchPredictor predictor(&document);
    Assignment config = document.DefaultPresentation().value();
    SCOPED_TRACE("trial " + std::to_string(trial));
    ExpectSameRanking(predictor.RankCandidates(config).value(),
                      predictor.RankCandidatesBaseline(config).value());
  }
}

TEST(PlanTest, ZeroCostCandidatesAreSkipped) {
  // A zero-cost candidate delivers nothing; with the old behavior it
  // slid into every plan and made tied-budget plans order-dependent.
  std::vector<PrefetchCandidate> ranked = {
      {"free", "icon", 5.0, 0},
      {"a", "flat", 3.0, 1000},
  };
  std::vector<PrefetchCandidate> plan = PlanWithinBudget(ranked, 1000);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].component, "a");
  EXPECT_TRUE(PlanWithinBudget({{"free", "icon", 5.0, 0}}, 0).empty());
}

TEST(PlanTest, RespectsBudget) {
  std::vector<PrefetchCandidate> ranked = {
      {"a", "flat", 3.0, 1000},
      {"b", "flat", 2.0, 800},
      {"c", "flat", 1.0, 400},
  };
  std::vector<PrefetchCandidate> plan = PlanWithinBudget(ranked, 1500);
  ASSERT_EQ(plan.size(), 2u);
  EXPECT_EQ(plan[0].component, "a");
  EXPECT_EQ(plan[1].component, "c");  // b skipped: does not fit after a
  EXPECT_TRUE(PlanWithinBudget(ranked, 0).empty());
}

TEST(CacheTest, NonePolicyAlwaysMisses) {
  ClientCache cache(1 << 20, CachePolicy::kNone);
  EXPECT_TRUE(cache.Insert("x", 100, 1.0).ok());
  EXPECT_FALSE(cache.Lookup("x"));
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(CacheTest, HitAfterInsert) {
  ClientCache cache(1000, CachePolicy::kLru);
  ASSERT_TRUE(cache.Insert("x", 100, 1.0).ok());
  EXPECT_TRUE(cache.Lookup("x"));
  EXPECT_FALSE(cache.Lookup("y"));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
  EXPECT_DOUBLE_EQ(cache.stats().HitRate(), 0.5);
}

TEST(CacheTest, OversizedEntryRejected) {
  ClientCache cache(100, CachePolicy::kLru);
  EXPECT_TRUE(cache.Insert("big", 101, 1.0).IsResourceExhausted());
  EXPECT_TRUE(cache.Insert("fits", 100, 1.0).ok());
}

TEST(CacheTest, LruEvictsLeastRecentlyUsed) {
  ClientCache cache(300, CachePolicy::kLru);
  ASSERT_TRUE(cache.Insert("a", 100, 1.0).ok());
  ASSERT_TRUE(cache.Insert("b", 100, 1.0).ok());
  ASSERT_TRUE(cache.Insert("c", 100, 1.0).ok());
  EXPECT_TRUE(cache.Lookup("a"));  // refresh a
  ASSERT_TRUE(cache.Insert("d", 100, 1.0).ok());
  EXPECT_FALSE(cache.Contains("b"));  // b was the coldest
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_TRUE(cache.Contains("d"));
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(CacheTest, PreferenceEvictsLowestScore) {
  ClientCache cache(300, CachePolicy::kPreference);
  ASSERT_TRUE(cache.Insert("high", 100, 9.0).ok());
  ASSERT_TRUE(cache.Insert("low", 100, 1.0).ok());
  ASSERT_TRUE(cache.Insert("mid", 100, 5.0).ok());
  ASSERT_TRUE(cache.Insert("new", 100, 4.0).ok());
  EXPECT_FALSE(cache.Contains("low"));
  EXPECT_TRUE(cache.Contains("high"));
  EXPECT_TRUE(cache.Contains("mid"));
  EXPECT_TRUE(cache.Contains("new"));
}

TEST(CacheTest, PreferenceBreaksScoreTiesByLruRecency) {
  ClientCache cache(300, CachePolicy::kPreference);
  // All scores tie; recency must decide, not map key order.
  ASSERT_TRUE(cache.Insert("a", 100, 2.0).ok());
  ASSERT_TRUE(cache.Insert("b", 100, 2.0).ok());
  ASSERT_TRUE(cache.Insert("c", 100, 2.0).ok());
  EXPECT_TRUE(cache.Lookup("a"));  // refresh a; b is now coldest
  ASSERT_TRUE(cache.Insert("d", 100, 2.0).ok());
  EXPECT_FALSE(cache.Contains("b"));
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_TRUE(cache.Contains("c"));
  EXPECT_TRUE(cache.Contains("d"));
  // A genuinely lower score still wins over recency.
  ASSERT_TRUE(cache.Insert("worse", 100, 1.0).ok());
  EXPECT_FALSE(cache.Contains("c"));  // c was coldest among the ties
  ASSERT_TRUE(cache.Insert("e", 100, 2.0).ok());
  EXPECT_FALSE(cache.Contains("worse"));  // lowest score goes first
}

TEST(CacheTest, ReinsertUpdatesInPlace) {
  ClientCache cache(300, CachePolicy::kPreference);
  ASSERT_TRUE(cache.Insert("x", 100, 1.0).ok());
  ASSERT_TRUE(cache.Insert("x", 200, 7.0).ok());
  EXPECT_EQ(cache.entry_count(), 1u);
  EXPECT_EQ(cache.used_bytes(), 200u);
}

TEST(CacheTest, KeyFormat) {
  EXPECT_EQ(CacheKey("CT", "flat"), "CT/flat");
}

TEST_F(PredictorTest, PrefetchingRaisesHitRate) {
  // The A2 ablation in miniature: prefetch the predictor's plan, then
  // simulate the viewer's likely next choice; the prefetched cache must
  // hit where an empty cache misses.
  Assignment config = document_->DefaultPresentation().value();
  std::vector<PrefetchCandidate> candidates =
      predictor_->RankCandidates(config).value();
  ClientCache cold(1 << 20, CachePolicy::kPreference);
  ClientCache warm(1 << 20, CachePolicy::kPreference);
  for (const PrefetchCandidate& candidate :
       PlanWithinBudget(candidates, 1 << 20)) {
    ASSERT_TRUE(warm.Insert(
        CacheKey(candidate.component, candidate.presentation),
        candidate.cost_bytes, candidate.score).ok());
  }
  // Viewer hides the CT; the new configuration surfaces the XRay flat.
  Assignment next =
      document_->ReconfigPresentation({{"CT", "hidden"}}).value();
  int cold_hits = 0, warm_hits = 0;
  for (size_t i = 0; i < document_->num_components(); ++i) {
    const doc::MultimediaComponent* component =
        document_->components()[i];
    if (component->IsComposite()) continue;
    if (!document_->IsVisible(next, component->name()).value()) continue;
    doc::MMPresentation presentation =
        document_->PresentationFor(next, component->name()).value();
    std::string key = CacheKey(component->name(), presentation.name);
    if (cold.Lookup(key)) ++cold_hits;
    if (warm.Lookup(key)) ++warm_hits;
  }
  EXPECT_EQ(cold_hits, 0);
  EXPECT_GT(warm_hits, 0);
}

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    document_ = std::make_unique<MultimediaDocument>(
        MakeMedicalRecordDocument().value());
    network_ = std::make_unique<net::Network>(&clock_);
    server_ = network_->AddNode("server");
    client_ = network_->AddNode("client");
    ASSERT_TRUE(network_->SetLink(server_, client_, {256e3, 10000}).ok());
  }

  PrefetchSession MakeSession(CachePolicy policy) {
    PrefetchSession::Options options;
    options.buffer_bytes = 1 << 20;
    options.policy = policy;
    return PrefetchSession(document_.get(), network_.get(), server_,
                           client_, options);
  }

  Clock clock_;
  std::unique_ptr<MultimediaDocument> document_;
  std::unique_ptr<net::Network> network_;
  net::NodeId server_ = 0, client_ = 0;
};

TEST_F(SessionTest, FirstConfigurationFetchesEverythingVisible) {
  PrefetchSession session = MakeSession(CachePolicy::kLru);
  Assignment config = document_->DefaultPresentation().value();
  MicrosT delivered = session.OnConfiguration(config).value();
  EXPECT_GT(delivered, 0);
  EXPECT_GT(session.bytes_fetched_on_demand(), 0u);
  EXPECT_EQ(session.bytes_prefetched(), 0u);  // LRU never prefetches
  // Re-applying the same configuration transfers nothing new.
  size_t before = session.bytes_fetched_on_demand();
  session.OnConfiguration(config).value();
  EXPECT_EQ(session.bytes_fetched_on_demand(), before);
}

TEST_F(SessionTest, PreferencePrefetchTurnsNextChoiceIntoHits) {
  PrefetchSession warm = MakeSession(CachePolicy::kPreference);
  PrefetchSession cold = MakeSession(CachePolicy::kLru);
  Assignment initial = document_->DefaultPresentation().value();
  warm.OnConfiguration(initial).value();
  cold.OnConfiguration(initial).value();
  EXPECT_GT(warm.bytes_prefetched(), 0u);

  // The viewer hides the CT: the XRay (prefetched by the warm session)
  // becomes visible.
  Assignment next =
      document_->ReconfigPresentation({{"CT", "hidden"}}).value();
  size_t warm_demand_before = warm.bytes_fetched_on_demand();
  size_t cold_demand_before = cold.bytes_fetched_on_demand();
  warm.OnConfiguration(next).value();
  cold.OnConfiguration(next).value();
  size_t warm_new = warm.bytes_fetched_on_demand() - warm_demand_before;
  size_t cold_new = cold.bytes_fetched_on_demand() - cold_demand_before;
  EXPECT_LT(warm_new, cold_new);
  EXPECT_GT(warm.stats().hits, 0u);
}

TEST_F(SessionTest, RejectsPartialConfiguration) {
  PrefetchSession session = MakeSession(CachePolicy::kLru);
  Assignment partial(document_->num_variables());
  EXPECT_TRUE(
      session.OnConfiguration(partial).status().IsInvalidArgument());
}

TEST_F(SessionTest, NoneCachePolicyAlwaysRefetches) {
  PrefetchSession session = MakeSession(CachePolicy::kNone);
  Assignment config = document_->DefaultPresentation().value();
  session.OnConfiguration(config).value();
  size_t first = session.bytes_fetched_on_demand();
  // Hide + restore: the restored view refetches from scratch.
  Assignment hidden =
      document_->ReconfigPresentation({{"CT", "hidden"}}).value();
  session.OnConfiguration(hidden).value();
  session.OnConfiguration(config).value();
  EXPECT_GT(session.bytes_fetched_on_demand(), first);
  EXPECT_EQ(session.stats().hits, 0u);
}

}  // namespace
}  // namespace mmconf::prefetch
