#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "client/client.h"
#include "client/layout.h"
#include "common/rng.h"
#include "doc/builder.h"

namespace mmconf::client {
namespace {

using cpnet::Assignment;
using doc::MakeMedicalRecordDocument;
using doc::MultimediaDocument;

bool Overlap(const media::Rect& a, const media::Rect& b) {
  return a.x < b.x + b.width && b.x < a.x + a.width &&
         a.y < b.y + b.height && b.y < a.y + a.height;
}

class LayoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    document_ = std::make_unique<MultimediaDocument>(
        MakeMedicalRecordDocument().value());
    config_ = document_->DefaultPresentation().value();
  }
  std::unique_ptr<MultimediaDocument> document_;
  Assignment config_;
};

TEST_F(LayoutTest, NaturalSizesOrdered) {
  doc::MMPresentation image{"flat", doc::PresentationKind::kImage, 0};
  doc::MMPresentation thumb{"t", doc::PresentationKind::kThumbnail, 2};
  doc::MMPresentation icon{"i", doc::PresentationKind::kIcon, 0};
  doc::MMPresentation hidden{"h", doc::PresentationKind::kHidden, 0};
  EXPECT_GT(NaturalSize(image).Area(), NaturalSize(thumb).Area());
  EXPECT_GT(NaturalSize(thumb).Area(), NaturalSize(icon).Area());
  EXPECT_EQ(NaturalSize(hidden).Area(), 0);
}

TEST_F(LayoutTest, PlacementsNeverOverlapAndStayInside) {
  Layout layout = LayoutView(*document_, config_, 800, 600).value();
  ASSERT_FALSE(layout.placements.empty());
  for (size_t i = 0; i < layout.placements.size(); ++i) {
    const media::Rect& rect = layout.placements[i].rect;
    EXPECT_GE(rect.x, 0);
    EXPECT_GE(rect.y, 0);
    EXPECT_LE(rect.x + rect.width, 800);
    EXPECT_LE(rect.y + rect.height, 600);
    for (size_t j = i + 1; j < layout.placements.size(); ++j) {
      EXPECT_FALSE(Overlap(rect, layout.placements[j].rect))
          << layout.placements[i].component << " vs "
          << layout.placements[j].component;
    }
  }
}

TEST_F(LayoutTest, ExactlyTheVisibleContentIsPlaced) {
  Layout layout = LayoutView(*document_, config_, 1200, 900).value();
  EXPECT_TRUE(layout.everything_fits);
  std::set<std::string> placed;
  for (const Placement& placement : layout.placements) {
    placed.insert(placement.component);
  }
  // Default view: CT flat, XRay hidden, voice audible, texts, graph.
  EXPECT_TRUE(placed.count("CT"));
  EXPECT_FALSE(placed.count("XRay"));
  EXPECT_TRUE(placed.count("ExpertVoice"));
  EXPECT_TRUE(placed.count("WardNotes"));
  EXPECT_TRUE(placed.count("TestResults"));
  EXPECT_TRUE(placed.count("TrendGraph"));
}

TEST_F(LayoutTest, SmallViewportShrinksContent) {
  Layout roomy = LayoutView(*document_, config_, 1200, 900).value();
  Layout cramped = LayoutView(*document_, config_, 320, 240).value();
  double roomy_scale = 1.0, cramped_scale = 1.0;
  for (const Placement& placement : roomy.placements) {
    roomy_scale = std::min(roomy_scale, placement.scale);
  }
  for (const Placement& placement : cramped.placements) {
    cramped_scale = std::min(cramped_scale, placement.scale);
  }
  EXPECT_LT(cramped_scale, roomy_scale);
}

TEST_F(LayoutTest, TinyViewportDropsAndReports) {
  Layout tiny = LayoutView(*document_, config_, 64, 48).value();
  EXPECT_FALSE(tiny.everything_fits);
  EXPECT_FALSE(tiny.dropped_components.empty());
  // Placements that did land still respect the bounds.
  for (const Placement& placement : tiny.placements) {
    EXPECT_LE(placement.rect.x + placement.rect.width, 64);
    EXPECT_LE(placement.rect.y + placement.rect.height, 48);
  }
}

TEST_F(LayoutTest, ViewportValidation) {
  EXPECT_TRUE(
      LayoutView(*document_, config_, 0, 100).status().IsInvalidArgument());
  EXPECT_TRUE(LayoutView(*document_, config_, 100, -5)
                  .status()
                  .IsInvalidArgument());
}

TEST_F(LayoutTest, HiddenConfigurationPlacesNothingFromSubtree) {
  Assignment hidden_imaging =
      document_->ReconfigPresentation({{"Imaging", "hidden"}}).value();
  Layout layout =
      LayoutView(*document_, hidden_imaging, 800, 600).value();
  for (const Placement& placement : layout.placements) {
    EXPECT_NE(placement.component, "CT");
    EXPECT_NE(placement.component, "XRay");
  }
}

TEST_F(LayoutTest, RenderDocumentViewShowsTreeAndPresentations) {
  std::string view = RenderDocumentView(*document_, config_).value();
  // Tree structure with indentation.
  EXPECT_NE(view.find("+ MedicalRecord"), std::string::npos);
  EXPECT_NE(view.find("  + Imaging"), std::string::npos);
  EXPECT_NE(view.find("    - CT  [flat]"), std::string::npos);
  // Hidden components are marked.
  EXPECT_NE(view.find("XRay  [hidden] (hidden)"), std::string::npos);
  // One line per component.
  EXPECT_EQ(static_cast<size_t>(
                std::count(view.begin(), view.end(), '\n')),
            document_->num_components());
}

TEST_F(LayoutTest, RenderDocumentViewRejectsPartialConfig) {
  cpnet::Assignment partial(document_->num_variables());
  EXPECT_FALSE(RenderDocumentView(*document_, partial).ok());
}

TEST_F(LayoutTest, RandomDocumentsLayoutCleanly) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng rng(seed);
    MultimediaDocument document =
        doc::MakeRandomDocument(4, 14, rng).value();
    Assignment config = document.DefaultPresentation().value();
    Layout layout = LayoutView(document, config, 1024, 768).value();
    for (size_t i = 0; i < layout.placements.size(); ++i) {
      for (size_t j = i + 1; j < layout.placements.size(); ++j) {
        EXPECT_FALSE(Overlap(layout.placements[i].rect,
                             layout.placements[j].rect));
      }
    }
    EXPECT_FALSE(LayoutToString(layout).empty());
  }
}

}  // namespace
}  // namespace mmconf::client
