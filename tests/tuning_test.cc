#include <gtest/gtest.h>

#include "doc/builder.h"
#include "doc/tuning.h"

namespace mmconf::doc {
namespace {

using cpnet::Assignment;

class TuningTest : public ::testing::Test {
 protected:
  void SetUp() override {
    document_ = std::make_unique<MultimediaDocument>(
        MakeMedicalRecordDocument().value());
    tuning_ = AddBandwidthTuning(*document_, "net").value();
  }
  std::unique_ptr<MultimediaDocument> document_;
  cpnet::VarId tuning_ = 0;
};

TEST(BandwidthTest, Classification) {
  EXPECT_EQ(ClassifyBandwidth(10e6), BandwidthLevel::kHigh);
  EXPECT_EQ(ClassifyBandwidth(128e3), BandwidthLevel::kHigh);
  EXPECT_EQ(ClassifyBandwidth(64e3), BandwidthLevel::kMedium);
  EXPECT_EQ(ClassifyBandwidth(13e3), BandwidthLevel::kMedium);
  EXPECT_EQ(ClassifyBandwidth(2e3), BandwidthLevel::kLow);
}

TEST_F(TuningTest, AddsOneVariableKeepsComponents) {
  EXPECT_EQ(document_->num_components(), 10u);
  EXPECT_EQ(document_->num_variables(), 11u);
  EXPECT_EQ(document_->net().VariableName(tuning_), "net");
  EXPECT_EQ(document_->net().DomainSize(tuning_), 3);
  // Duplicate registration rejected.
  EXPECT_TRUE(
      AddBandwidthTuning(*document_, "net").status().IsAlreadyExists());
}

TEST_F(TuningTest, HighBandwidthPreservesAuthorPreferences) {
  // With the tuning variable defaulting to (or pinned at) high, the
  // presentation equals the untuned author optimum.
  MultimediaDocument plain = MakeMedicalRecordDocument().value();
  Assignment untuned = plain.DefaultPresentation().value();
  Assignment tuned_default = document_->DefaultPresentation().value();
  Assignment tuned_high =
      document_
          ->ReconfigPresentation({TuningChoice("net", BandwidthLevel::kHigh)})
          .value();
  for (size_t i = 0; i < untuned.size(); ++i) {
    EXPECT_EQ(tuned_default.Get(static_cast<cpnet::VarId>(i)),
              untuned.Get(static_cast<cpnet::VarId>(i)));
    EXPECT_EQ(tuned_high.Get(static_cast<cpnet::VarId>(i)),
              untuned.Get(static_cast<cpnet::VarId>(i)));
  }
}

TEST_F(TuningTest, LowBandwidthDegradesHeavyComponents) {
  Assignment low =
      document_
          ->ReconfigPresentation({TuningChoice("net", BandwidthLevel::kLow)})
          .value();
  // The CT becomes its cheapest form (hidden), not a full image.
  MMPresentation ct = document_->PresentationFor(low, "CT").value();
  EXPECT_EQ(ct.kind, PresentationKind::kHidden);
  // The voice fragment degrades too.
  MMPresentation voice =
      document_->PresentationFor(low, "ExpertVoice").value();
  EXPECT_NE(voice.kind, PresentationKind::kAudio);
  // Pure-text components are untouched by the tuning templates.
  MMPresentation notes =
      document_->PresentationFor(low, "WardNotes").value();
  EXPECT_EQ(notes.kind, PresentationKind::kText);
}

TEST_F(TuningTest, DeliveryCostDecreasesMonotonically) {
  size_t costs[3];
  const BandwidthLevel levels[] = {BandwidthLevel::kHigh,
                                   BandwidthLevel::kMedium,
                                   BandwidthLevel::kLow};
  for (int i = 0; i < 3; ++i) {
    Assignment config =
        document_->ReconfigPresentation({TuningChoice("net", levels[i])})
            .value();
    costs[i] = document_->DeliveryCostBytes(config).value();
  }
  EXPECT_GE(costs[0], costs[1]);
  EXPECT_GE(costs[1], costs[2]);
  EXPECT_GT(costs[0], costs[2]);  // high genuinely heavier than low
}

TEST_F(TuningTest, ViewerChoicesStillWinOverTuning) {
  // A viewer explicitly demanding the flat CT gets it, even on a slow
  // link — tuning shapes defaults, it does not override people.
  Assignment config =
      document_
          ->ReconfigPresentation({TuningChoice("net", BandwidthLevel::kLow),
                                  {"CT", "flat"}})
          .value();
  EXPECT_EQ(document_->PresentationFor(config, "CT").value().name, "flat");
}

TEST_F(TuningTest, MediumPromotesCheapFormsKeepsOrder) {
  Assignment medium =
      document_
          ->ReconfigPresentation(
              {TuningChoice("net", BandwidthLevel::kMedium)})
          .value();
  // Medium prefers the cheap class; for the CT the best cheap author
  // option is the thumbnail (author order: flat, segmented, thumbnail,
  // icon, hidden -> cheap subsequence: thumbnail, icon, hidden).
  EXPECT_EQ(document_->PresentationFor(medium, "CT").value().name,
            "thumbnail");
}

TEST_F(TuningTest, TranscodedDeliveryCostOrdersLevels) {
  // Transcoding applies to any configuration — here the *untuned*
  // author optimum, shipped to three different links.
  MultimediaDocument plain = MakeMedicalRecordDocument().value();
  Assignment config = plain.DefaultPresentation().value();
  size_t high =
      TranscodedDeliveryCost(plain, config, BandwidthLevel::kHigh).value();
  size_t medium =
      TranscodedDeliveryCost(plain, config, BandwidthLevel::kMedium)
          .value();
  size_t low =
      TranscodedDeliveryCost(plain, config, BandwidthLevel::kLow).value();
  EXPECT_EQ(high, plain.DeliveryCostBytes(config).value());
  EXPECT_LT(medium, high);
  EXPECT_LE(low, medium);
  EXPECT_GT(low, 0u);  // content still ships, just cheap forms
}

TEST_F(TuningTest, TranscodedPresentationCostPerComponent) {
  MultimediaDocument plain = MakeMedicalRecordDocument().value();
  const PrimitiveMultimediaComponent* ct =
      plain.Find("CT").value()->AsPrimitive();
  MMPresentation flat{"flat", PresentationKind::kImage, 0};
  size_t full = ct->content().content_bytes;
  EXPECT_EQ(TranscodedPresentationCost(*ct, flat, BandwidthLevel::kHigh),
            PresentationCostBytes(flat, full));
  // Medium drops to the cheapest cheap-class option (icon at 256 B).
  EXPECT_EQ(TranscodedPresentationCost(*ct, flat, BandwidthLevel::kMedium),
            256u);
  EXPECT_LE(TranscodedPresentationCost(*ct, flat, BandwidthLevel::kLow),
            TranscodedPresentationCost(*ct, flat,
                                       BandwidthLevel::kMedium));
  // Hidden components never ship regardless of level (checked at the
  // TranscodedDeliveryCost layer via visibility).
}

TEST_F(TuningTest, SurvivesSerialization) {
  Bytes encoded = document_->Encode();
  MultimediaDocument decoded =
      MultimediaDocument::Decode(encoded).value();
  EXPECT_EQ(decoded.num_variables(), document_->num_variables());
  Assignment low =
      decoded
          .ReconfigPresentation({TuningChoice("net", BandwidthLevel::kLow)})
          .value();
  EXPECT_EQ(decoded.PresentationFor(low, "CT").value().kind,
            PresentationKind::kHidden);
}

}  // namespace
}  // namespace mmconf::doc
