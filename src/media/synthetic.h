#ifndef MMCONF_MEDIA_SYNTHETIC_H_
#define MMCONF_MEDIA_SYNTHETIC_H_

#include <string>
#include <vector>

#include "common/rng.h"
#include "media/audio.h"
#include "media/image.h"

namespace mmconf::media {

/// Synthetic stand-ins for the paper's clinical media. The paper evaluates
/// on real CT scans and recorded consultations which we do not have; these
/// generators produce media with the same structural properties (smooth
/// anatomy-like regions with edges for the codec; speaker-discriminable
/// spectra and keyword patterns for the voice module), with ground truth
/// attached so accuracy is measurable.

/// Parameters for a phantom "CT slice": a large body ellipse containing
/// several internal structures plus mild acquisition noise.
struct PhantomOptions {
  int width = 256;
  int height = 256;
  int num_structures = 5;   ///< internal ellipses ("organs"/"lesions")
  double noise_stddev = 4;  ///< additive Gaussian noise, gray levels
};

/// Generates a phantom CT-like image.
Image MakePhantomCt(const PhantomOptions& options, Rng& rng);

/// Describes one synthetic speaker: a glottal pitch and a set of vocal
/// tract resonances ("formants") that make the speaker's spectrum
/// discriminable from others.
struct SpeakerProfile {
  int id = 0;
  double pitch_hz = 120;
  std::vector<double> formants_hz;  ///< resonance center frequencies
  double formant_bandwidth_hz = 120;
};

/// Creates `count` well-separated speaker profiles.
std::vector<SpeakerProfile> MakeSpeakers(int count, Rng& rng);

/// A synthetic "word" is a sequence of phone ids; each phone selects a
/// deterministic formant perturbation pattern, so different words are
/// spectrally distinguishable while remaining speaker dependent.
struct Word {
  int id = 0;
  std::vector<int> phones;
};

/// Creates a vocabulary of `count` words of `phones_per_word` phones drawn
/// from `num_phones` distinct phones.
std::vector<Word> MakeVocabulary(int count, int phones_per_word,
                                 int num_phones, Rng& rng);

/// Options for rendering an utterance.
struct UtteranceOptions {
  int sample_rate = 8000;
  double phone_duration_s = 0.12;
  double noise_level = 0.01;
};

/// Renders `word` spoken by `speaker`.
AudioSignal Synthesize(const Word& word, const SpeakerProfile& speaker,
                       const UtteranceOptions& options, Rng& rng);

/// Renders non-speech content.
AudioSignal SynthesizeMusic(double duration_s, int sample_rate, Rng& rng);
AudioSignal SynthesizeArtifact(double duration_s, int sample_rate, Rng& rng);
AudioSignal SynthesizeSilence(double duration_s, int sample_rate, Rng& rng);

/// A full labeled "consultation recording": alternating segments of
/// silence / speech (with speaker + word ids) / music / artifacts, with
/// ground-truth segment labels. This stands in for the paper's browsable
/// audio files ("How many speakers participate? Who are the speakers?").
struct Conversation {
  AudioSignal signal;
  std::vector<AudioSegment> segments;  ///< ground truth, sorted by begin
};

struct ConversationOptions {
  int num_turns = 12;             ///< speech turns
  int words_per_turn = 3;
  double music_probability = 0.1;     ///< chance of a music interlude
  double artifact_probability = 0.1;  ///< chance of a click/burst
  double gap_duration_s = 0.15;       ///< silence between turns
  UtteranceOptions utterance;
};

/// Generates a conversation among `speakers` using words from `vocab`.
Conversation MakeConversation(const std::vector<SpeakerProfile>& speakers,
                              const std::vector<Word>& vocab,
                              const ConversationOptions& options, Rng& rng);

}  // namespace mmconf::media

#endif  // MMCONF_MEDIA_SYNTHETIC_H_
