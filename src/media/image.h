#ifndef MMCONF_MEDIA_IMAGE_H_
#define MMCONF_MEDIA_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace mmconf::media {

/// Axis-aligned rectangle in pixel coordinates, half-open on the right and
/// bottom edges ([x, x+width) x [y, y+height)).
struct Rect {
  int x = 0;
  int y = 0;
  int width = 0;
  int height = 0;

  bool Contains(int px, int py) const {
    return px >= x && px < x + width && py >= y && py < y + height;
  }
  long Area() const { return static_cast<long>(width) * height; }
};

bool operator==(const Rect& a, const Rect& b);

/// A text annotation drawn on an image. The paper's image-processing
/// module supports adding and *deleting* text elements, so annotations are
/// kept as vector overlays rather than burned into pixels.
struct TextElement {
  int id = 0;
  int x = 0;
  int y = 0;
  std::string text;
  uint8_t intensity = 255;
};

/// A line annotation (same rationale as TextElement).
struct LineElement {
  int id = 0;
  int x0 = 0;
  int y0 = 0;
  int x1 = 0;
  int y1 = 0;
  uint8_t intensity = 255;
};

/// 8-bit grayscale raster with vector annotation overlays. This is the
/// in-memory representation of the paper's CT/X-ray objects: the pixel
/// plane carries the scan, and annotations carry collaborative markup.
class Image {
 public:
  Image() = default;

  /// Creates a width x height image filled with `fill`.
  /// Dimensions must be positive.
  static Result<Image> Create(int width, int height, uint8_t fill = 0);

  Image(const Image&) = default;
  Image& operator=(const Image&) = default;
  Image(Image&&) = default;
  Image& operator=(Image&&) = default;

  int width() const { return width_; }
  int height() const { return height_; }
  bool empty() const { return width_ == 0 || height_ == 0; }
  Rect Bounds() const { return {0, 0, width_, height_}; }

  uint8_t at(int x, int y) const { return pixels_[Index(x, y)]; }
  void set(int x, int y, uint8_t v) { pixels_[Index(x, y)] = v; }
  /// Returns 0 for out-of-bounds coordinates instead of asserting.
  uint8_t at_clamped(int x, int y) const;

  const std::vector<uint8_t>& pixels() const { return pixels_; }
  std::vector<uint8_t>& mutable_pixels() { return pixels_; }

  /// Annotation overlays. Element ids are unique per image and assigned
  /// by Add*Element.
  const std::vector<TextElement>& text_elements() const {
    return text_elements_;
  }
  const std::vector<LineElement>& line_elements() const {
    return line_elements_;
  }

  /// Adds an annotation and returns its id.
  int AddTextElement(int x, int y, std::string text, uint8_t intensity = 255);
  int AddLineElement(int x0, int y0, int x1, int y1, uint8_t intensity = 255);

  /// Removes the annotation with `id`; NotFound if no such element.
  Status RemoveTextElement(int id);
  Status RemoveLineElement(int id);

  /// Renders pixels plus annotations into a flat raster (annotations
  /// rasterized with a 5x7 bitmap font / Bresenham lines).
  Image Flatten() const;

  /// Serialized form used for BLOB storage and network transfer.
  Bytes Encode() const;
  static Result<Image> Decode(const Bytes& bytes);

  /// Mean of |a - b| over all pixels; images must have equal dimensions.
  static Result<double> MeanAbsDifference(const Image& a, const Image& b);

  /// Peak signal-to-noise ratio in dB between a reference and a
  /// reconstruction; images must have equal dimensions. Identical images
  /// report +infinity.
  static Result<double> Psnr(const Image& reference, const Image& test);

 private:
  size_t Index(int x, int y) const {
    return static_cast<size_t>(y) * width_ + x;
  }

  int width_ = 0;
  int height_ = 0;
  int next_element_id_ = 1;
  std::vector<uint8_t> pixels_;
  std::vector<TextElement> text_elements_;
  std::vector<LineElement> line_elements_;
};

}  // namespace mmconf::media

#endif  // MMCONF_MEDIA_IMAGE_H_
