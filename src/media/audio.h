#ifndef MMCONF_MEDIA_AUDIO_H_
#define MMCONF_MEDIA_AUDIO_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace mmconf::media {

/// Class of content occupying a span of an audio signal. These are the
/// categories the paper's voice module segments automatically: "speech,
/// music, or audio artifacts" plus background noise, with speech further
/// attributed to a speaker.
enum class AudioClass : uint8_t {
  kSilence = 0,
  kSpeech,
  kMusic,
  kArtifact,
};

const char* AudioClassToString(AudioClass c);

/// Ground-truth or hypothesized labeling of a span [begin, end) in samples.
/// `speaker` is >= 0 for speech segments that carry speaker identity, -1
/// otherwise. `keyword` is the keyword id uttered in the segment, -1 if
/// none (used by word-spotting evaluation).
struct AudioSegment {
  size_t begin = 0;
  size_t end = 0;
  AudioClass cls = AudioClass::kSilence;
  int speaker = -1;
  int keyword = -1;

  size_t length() const { return end - begin; }
};

bool operator==(const AudioSegment& a, const AudioSegment& b);

/// Mono PCM audio signal. Samples are float in [-1, 1]; the paper's voice
/// fragments (conversation recordings, dictated expertise) are represented
/// as AudioSignal values stored as BLOBs.
class AudioSignal {
 public:
  AudioSignal() = default;
  AudioSignal(std::vector<float> samples, int sample_rate)
      : samples_(std::move(samples)), sample_rate_(sample_rate) {}

  const std::vector<float>& samples() const { return samples_; }
  std::vector<float>& mutable_samples() { return samples_; }
  int sample_rate() const { return sample_rate_; }
  size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  double DurationSeconds() const {
    return sample_rate_ > 0
               ? static_cast<double>(samples_.size()) / sample_rate_
               : 0.0;
  }

  /// Extracts samples [begin, end); clamps to the signal length.
  AudioSignal Slice(size_t begin, size_t end) const;

  /// Appends another signal; sample rates must match (InvalidArgument
  /// otherwise).
  Status Append(const AudioSignal& other);

  /// 16-bit PCM serialization for BLOB storage / transfer.
  Bytes Encode() const;
  static Result<AudioSignal> Decode(const Bytes& bytes);

 private:
  std::vector<float> samples_;
  int sample_rate_ = 16000;
};

}  // namespace mmconf::media

#endif  // MMCONF_MEDIA_AUDIO_H_
