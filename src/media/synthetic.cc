#include "media/synthetic.h"

#include <algorithm>
#include <cmath>

namespace mmconf::media {

namespace {

struct Ellipse {
  double cx, cy, rx, ry;
  uint8_t level;
};

void FillEllipse(Image& img, const Ellipse& e) {
  int x0 = std::max(0, static_cast<int>(e.cx - e.rx - 1));
  int x1 = std::min(img.width() - 1, static_cast<int>(e.cx + e.rx + 1));
  int y0 = std::max(0, static_cast<int>(e.cy - e.ry - 1));
  int y1 = std::min(img.height() - 1, static_cast<int>(e.cy + e.ry + 1));
  for (int y = y0; y <= y1; ++y) {
    for (int x = x0; x <= x1; ++x) {
      double dx = (x - e.cx) / e.rx;
      double dy = (y - e.cy) / e.ry;
      if (dx * dx + dy * dy <= 1.0) img.set(x, y, e.level);
    }
  }
}

/// A second-order resonator (two-pole bandpass), the classic formant
/// synthesis building block.
class Resonator {
 public:
  Resonator(double center_hz, double bandwidth_hz, int sample_rate) {
    double r = std::exp(-M_PI * bandwidth_hz / sample_rate);
    double theta = 2.0 * M_PI * center_hz / sample_rate;
    a1_ = 2.0 * r * std::cos(theta);
    a2_ = -r * r;
    gain_ = 1.0 - r;
  }

  double Step(double x) {
    double y = gain_ * x + a1_ * y1_ + a2_ * y2_;
    y2_ = y1_;
    y1_ = y;
    return y;
  }

 private:
  double a1_, a2_, gain_;
  double y1_ = 0, y2_ = 0;
};

/// Deterministic per-phone formant multipliers: phone p scales formant k
/// by a fixed factor so every (speaker, phone) pair has a distinct,
/// reproducible spectrum.
double PhoneFormantScale(int phone, int formant_index) {
  // Spread factors over [0.7, 1.5].
  uint32_t h = static_cast<uint32_t>(phone * 2654435761u +
                                     formant_index * 40503u + 12345u);
  h ^= h >> 13;
  h *= 0x5bd1e995u;
  h ^= h >> 15;
  return 0.7 + 0.8 * (static_cast<double>(h % 1000) / 999.0);
}

}  // namespace

Image MakePhantomCt(const PhantomOptions& options, Rng& rng) {
  Image img = Image::Create(options.width, options.height, 8).value();
  double w = options.width, h = options.height;
  // Body outline.
  FillEllipse(img, {w / 2, h / 2, w * 0.45, h * 0.42, 70});
  FillEllipse(img, {w / 2, h / 2, w * 0.42, h * 0.39, 110});
  // Internal structures with varied intensity.
  for (int i = 0; i < options.num_structures; ++i) {
    Ellipse e;
    e.rx = rng.Uniform(w * 0.03, w * 0.14);
    e.ry = rng.Uniform(h * 0.03, h * 0.14);
    e.cx = rng.Uniform(w * 0.25, w * 0.75);
    e.cy = rng.Uniform(h * 0.25, h * 0.75);
    e.level = static_cast<uint8_t>(rng.UniformInt(140, 240));
    FillEllipse(img, e);
  }
  // Acquisition noise.
  if (options.noise_stddev > 0) {
    for (uint8_t& p : img.mutable_pixels()) {
      double v = p + rng.Gaussian(0, options.noise_stddev);
      p = static_cast<uint8_t>(std::clamp(v, 0.0, 255.0));
    }
  }
  return img;
}

std::vector<SpeakerProfile> MakeSpeakers(int count, Rng& rng) {
  std::vector<SpeakerProfile> speakers;
  speakers.reserve(count);
  for (int i = 0; i < count; ++i) {
    SpeakerProfile s;
    s.id = i;
    // Pitches spread across 90..260 Hz with jitter, formant stacks offset
    // per speaker so spectra are separable.
    s.pitch_hz = 90 + 170.0 * i / std::max(1, count - 1) + rng.Uniform(-5, 5);
    double base = 420 + 160.0 * (i % 4) + rng.Uniform(-20, 20);
    s.formants_hz = {base, base * 2.6 + rng.Uniform(-40, 40),
                     base * 4.9 + rng.Uniform(-60, 60)};
    s.formant_bandwidth_hz = rng.Uniform(90, 150);
    speakers.push_back(s);
  }
  return speakers;
}

std::vector<Word> MakeVocabulary(int count, int phones_per_word,
                                 int num_phones, Rng& rng) {
  std::vector<Word> vocab;
  vocab.reserve(count);
  for (int i = 0; i < count; ++i) {
    Word w;
    w.id = i;
    for (int p = 0; p < phones_per_word; ++p) {
      w.phones.push_back(
          static_cast<int>(rng.NextBelow(static_cast<uint64_t>(num_phones))));
    }
    vocab.push_back(std::move(w));
  }
  return vocab;
}

AudioSignal Synthesize(const Word& word, const SpeakerProfile& speaker,
                       const UtteranceOptions& options, Rng& rng) {
  const int rate = options.sample_rate;
  const int phone_len = static_cast<int>(options.phone_duration_s * rate);
  std::vector<float> samples;
  samples.reserve(word.phones.size() * phone_len);

  double phase = 0;
  for (int phone : word.phones) {
    // Formant filters for this (speaker, phone) pair.
    std::vector<Resonator> filters;
    for (size_t k = 0; k < speaker.formants_hz.size(); ++k) {
      double hz = speaker.formants_hz[k] *
                  PhoneFormantScale(phone, static_cast<int>(k));
      hz = std::min(hz, rate * 0.45);
      filters.emplace_back(hz, speaker.formant_bandwidth_hz, rate);
    }
    for (int n = 0; n < phone_len; ++n) {
      // Glottal source: impulse train with aspiration noise.
      phase += speaker.pitch_hz / rate;
      double src = 0;
      if (phase >= 1.0) {
        phase -= 1.0;
        src = 1.0;
      }
      src += rng.Gaussian(0, 0.02);
      double y = 0;
      for (Resonator& f : filters) y += f.Step(src);
      y = y / static_cast<double>(filters.size());
      // Linear attack/release envelope to avoid clicks at phone
      // boundaries (full amplitude across the middle 80% of the phone).
      double t = static_cast<double>(n) / phone_len;
      double env =
          std::min(1.0, 10.0 * t) * std::min(1.0, 10.0 * (1.0 - t));
      samples.push_back(static_cast<float>(y * env));
    }
  }
  // Normalize the voiced signal to a healthy level, then add channel
  // noise — keeps the SNR of the corpus realistic and independent of the
  // resonator gains.
  float peak = 1e-6f;
  for (float s : samples) peak = std::max(peak, std::abs(s));
  const float target = 0.5f;
  for (float& s : samples) {
    double v = s * target / peak + rng.Gaussian(0, options.noise_level);
    s = static_cast<float>(std::clamp(v, -1.0, 1.0));
  }
  return AudioSignal(std::move(samples), rate);
}

AudioSignal SynthesizeMusic(double duration_s, int sample_rate, Rng& rng) {
  int n = static_cast<int>(duration_s * sample_rate);
  std::vector<float> samples(n);
  // A sustained triad with slow vibrato: strongly harmonic, low-variance
  // envelope — separable from both speech (pitch pulses) and noise.
  double root = rng.Uniform(220, 440);
  double freqs[3] = {root, root * 5 / 4, root * 3 / 2};
  for (int i = 0; i < n; ++i) {
    double t = static_cast<double>(i) / sample_rate;
    double vibrato = 1.0 + 0.004 * std::sin(2 * M_PI * 5 * t);
    double y = 0;
    for (double f : freqs) y += std::sin(2 * M_PI * f * vibrato * t);
    samples[i] = static_cast<float>(0.25 * y / 3 + rng.Gaussian(0, 0.005));
  }
  return AudioSignal(std::move(samples), sample_rate);
}

AudioSignal SynthesizeArtifact(double duration_s, int sample_rate, Rng& rng) {
  int n = static_cast<int>(duration_s * sample_rate);
  std::vector<float> samples(n, 0.0f);
  // Broadband click bursts.
  int bursts = std::max(1, n / (sample_rate / 8));
  for (int b = 0; b < bursts; ++b) {
    int start = static_cast<int>(rng.NextBelow(std::max(1, n - 40)));
    for (int i = 0; i < 40 && start + i < n; ++i) {
      samples[start + i] =
          static_cast<float>(rng.Gaussian(0, 0.6) * std::exp(-i / 8.0));
    }
  }
  return AudioSignal(std::move(samples), sample_rate);
}

AudioSignal SynthesizeSilence(double duration_s, int sample_rate, Rng& rng) {
  int n = static_cast<int>(duration_s * sample_rate);
  std::vector<float> samples(n);
  for (float& s : samples) s = static_cast<float>(rng.Gaussian(0, 0.002));
  return AudioSignal(std::move(samples), sample_rate);
}

Conversation MakeConversation(const std::vector<SpeakerProfile>& speakers,
                              const std::vector<Word>& vocab,
                              const ConversationOptions& options, Rng& rng) {
  Conversation conv;
  const int rate = options.utterance.sample_rate;
  conv.signal = AudioSignal({}, rate);

  auto append_segment = [&](const AudioSignal& sig, AudioClass cls,
                            int speaker, int keyword) {
    size_t begin = conv.signal.size();
    // Append never fails here: every generated piece uses `rate`.
    conv.signal.Append(sig).ok();
    conv.segments.push_back({begin, conv.signal.size(), cls, speaker,
                             keyword});
  };

  append_segment(SynthesizeSilence(options.gap_duration_s, rate, rng),
                 AudioClass::kSilence, -1, -1);
  for (int turn = 0; turn < options.num_turns; ++turn) {
    if (rng.Chance(options.music_probability)) {
      append_segment(SynthesizeMusic(0.8, rate, rng), AudioClass::kMusic, -1,
                     -1);
      append_segment(SynthesizeSilence(options.gap_duration_s, rate, rng),
                     AudioClass::kSilence, -1, -1);
    }
    if (rng.Chance(options.artifact_probability)) {
      append_segment(SynthesizeArtifact(0.3, rate, rng),
                     AudioClass::kArtifact, -1, -1);
    }
    const SpeakerProfile& speaker =
        speakers[rng.NextBelow(speakers.size())];
    for (int wi = 0; wi < options.words_per_turn; ++wi) {
      const Word& word = vocab[rng.NextBelow(vocab.size())];
      append_segment(Synthesize(word, speaker, options.utterance, rng),
                     AudioClass::kSpeech, speaker.id, word.id);
    }
    append_segment(SynthesizeSilence(options.gap_duration_s, rate, rng),
                   AudioClass::kSilence, -1, -1);
  }
  return conv;
}

}  // namespace mmconf::media
