#include "media/audio.h"

#include <algorithm>
#include <cmath>

namespace mmconf::media {

const char* AudioClassToString(AudioClass c) {
  switch (c) {
    case AudioClass::kSilence:
      return "silence";
    case AudioClass::kSpeech:
      return "speech";
    case AudioClass::kMusic:
      return "music";
    case AudioClass::kArtifact:
      return "artifact";
  }
  return "unknown";
}

bool operator==(const AudioSegment& a, const AudioSegment& b) {
  return a.begin == b.begin && a.end == b.end && a.cls == b.cls &&
         a.speaker == b.speaker && a.keyword == b.keyword;
}

AudioSignal AudioSignal::Slice(size_t begin, size_t end) const {
  begin = std::min(begin, samples_.size());
  end = std::clamp(end, begin, samples_.size());
  return AudioSignal(
      std::vector<float>(samples_.begin() + begin, samples_.begin() + end),
      sample_rate_);
}

Status AudioSignal::Append(const AudioSignal& other) {
  if (other.sample_rate_ != sample_rate_) {
    return Status::InvalidArgument(
        "sample rate mismatch: " + std::to_string(sample_rate_) + " vs " +
        std::to_string(other.sample_rate_));
  }
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  return Status::OK();
}

Bytes AudioSignal::Encode() const {
  ByteWriter w;
  w.PutU32(0x4d4d4155);  // "MMAU"
  w.PutI32(sample_rate_);
  w.PutVarint(samples_.size());
  for (float s : samples_) {
    float clamped = std::clamp(s, -1.0f, 1.0f);
    w.PutU16(static_cast<uint16_t>(
        static_cast<int16_t>(std::lround(clamped * 32767.0f))));
  }
  return w.Take();
}

Result<AudioSignal> AudioSignal::Decode(const Bytes& bytes) {
  ByteReader r(bytes);
  MMCONF_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != 0x4d4d4155) return Status::Corruption("bad audio magic");
  MMCONF_ASSIGN_OR_RETURN(int32_t rate, r.GetI32());
  if (rate <= 0) return Status::Corruption("bad sample rate");
  MMCONF_ASSIGN_OR_RETURN(uint64_t n, r.GetVarint());
  std::vector<float> samples;
  samples.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    MMCONF_ASSIGN_OR_RETURN(uint16_t raw, r.GetU16());
    samples.push_back(static_cast<float>(static_cast<int16_t>(raw)) /
                      32767.0f);
  }
  return AudioSignal(std::move(samples), rate);
}

}  // namespace mmconf::media
