#include "media/image.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace mmconf::media {

namespace {

// 5x7 bitmap glyphs for a minimal ASCII subset (uppercase letters, digits,
// space, and a few punctuation marks). Each glyph is 7 rows of 5 bits.
// Unknown characters render as a filled box.
struct Glyph {
  char c;
  uint8_t rows[7];
};

constexpr Glyph kGlyphs[] = {
    {' ', {0, 0, 0, 0, 0, 0, 0}},
    {'A', {0x0e, 0x11, 0x11, 0x1f, 0x11, 0x11, 0x11}},
    {'B', {0x1e, 0x11, 0x1e, 0x11, 0x11, 0x11, 0x1e}},
    {'C', {0x0e, 0x11, 0x10, 0x10, 0x10, 0x11, 0x0e}},
    {'D', {0x1e, 0x11, 0x11, 0x11, 0x11, 0x11, 0x1e}},
    {'E', {0x1f, 0x10, 0x1e, 0x10, 0x10, 0x10, 0x1f}},
    {'F', {0x1f, 0x10, 0x1e, 0x10, 0x10, 0x10, 0x10}},
    {'G', {0x0e, 0x11, 0x10, 0x17, 0x11, 0x11, 0x0e}},
    {'H', {0x11, 0x11, 0x11, 0x1f, 0x11, 0x11, 0x11}},
    {'I', {0x0e, 0x04, 0x04, 0x04, 0x04, 0x04, 0x0e}},
    {'L', {0x10, 0x10, 0x10, 0x10, 0x10, 0x10, 0x1f}},
    {'M', {0x11, 0x1b, 0x15, 0x15, 0x11, 0x11, 0x11}},
    {'N', {0x11, 0x19, 0x15, 0x13, 0x11, 0x11, 0x11}},
    {'O', {0x0e, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0e}},
    {'P', {0x1e, 0x11, 0x11, 0x1e, 0x10, 0x10, 0x10}},
    {'R', {0x1e, 0x11, 0x11, 0x1e, 0x14, 0x12, 0x11}},
    {'S', {0x0f, 0x10, 0x10, 0x0e, 0x01, 0x01, 0x1e}},
    {'T', {0x1f, 0x04, 0x04, 0x04, 0x04, 0x04, 0x04}},
    {'U', {0x11, 0x11, 0x11, 0x11, 0x11, 0x11, 0x0e}},
    {'X', {0x11, 0x11, 0x0a, 0x04, 0x0a, 0x11, 0x11}},
    {'0', {0x0e, 0x13, 0x15, 0x15, 0x15, 0x19, 0x0e}},
    {'1', {0x04, 0x0c, 0x04, 0x04, 0x04, 0x04, 0x0e}},
    {'2', {0x0e, 0x11, 0x01, 0x06, 0x08, 0x10, 0x1f}},
    {'3', {0x0e, 0x11, 0x01, 0x06, 0x01, 0x11, 0x0e}},
    {'4', {0x02, 0x06, 0x0a, 0x12, 0x1f, 0x02, 0x02}},
    {'5', {0x1f, 0x10, 0x1e, 0x01, 0x01, 0x11, 0x0e}},
    {'6', {0x0e, 0x10, 0x1e, 0x11, 0x11, 0x11, 0x0e}},
    {'7', {0x1f, 0x01, 0x02, 0x04, 0x08, 0x08, 0x08}},
    {'8', {0x0e, 0x11, 0x11, 0x0e, 0x11, 0x11, 0x0e}},
    {'9', {0x0e, 0x11, 0x11, 0x0f, 0x01, 0x01, 0x0e}},
    {'.', {0x00, 0x00, 0x00, 0x00, 0x00, 0x0c, 0x0c}},
    {':', {0x00, 0x0c, 0x0c, 0x00, 0x0c, 0x0c, 0x00}},
    {'-', {0x00, 0x00, 0x00, 0x1f, 0x00, 0x00, 0x00}},
};

const Glyph* FindGlyph(char c) {
  char u = (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  for (const Glyph& g : kGlyphs) {
    if (g.c == u) return &g;
  }
  return nullptr;
}

void DrawGlyph(Image& img, int x, int y, const Glyph* g, uint8_t intensity) {
  for (int row = 0; row < 7; ++row) {
    for (int col = 0; col < 5; ++col) {
      bool on = g == nullptr || (g->rows[row] >> (4 - col)) & 1;
      if (!on) continue;
      int px = x + col;
      int py = y + row;
      if (px >= 0 && px < img.width() && py >= 0 && py < img.height()) {
        img.set(px, py, intensity);
      }
    }
  }
}

void DrawLine(Image& img, const LineElement& line) {
  // Bresenham.
  int x0 = line.x0, y0 = line.y0, x1 = line.x1, y1 = line.y1;
  int dx = std::abs(x1 - x0), sx = x0 < x1 ? 1 : -1;
  int dy = -std::abs(y1 - y0), sy = y0 < y1 ? 1 : -1;
  int err = dx + dy;
  while (true) {
    if (x0 >= 0 && x0 < img.width() && y0 >= 0 && y0 < img.height()) {
      img.set(x0, y0, line.intensity);
    }
    if (x0 == x1 && y0 == y1) break;
    int e2 = 2 * err;
    if (e2 >= dy) {
      err += dy;
      x0 += sx;
    }
    if (e2 <= dx) {
      err += dx;
      y0 += sy;
    }
  }
}

}  // namespace

bool operator==(const Rect& a, const Rect& b) {
  return a.x == b.x && a.y == b.y && a.width == b.width &&
         a.height == b.height;
}

Result<Image> Image::Create(int width, int height, uint8_t fill) {
  if (width <= 0 || height <= 0) {
    return Status::InvalidArgument("image dimensions must be positive, got " +
                                   std::to_string(width) + "x" +
                                   std::to_string(height));
  }
  Image img;
  img.width_ = width;
  img.height_ = height;
  img.pixels_.assign(static_cast<size_t>(width) * height, fill);
  return img;
}

uint8_t Image::at_clamped(int x, int y) const {
  if (x < 0 || x >= width_ || y < 0 || y >= height_) return 0;
  return at(x, y);
}

int Image::AddTextElement(int x, int y, std::string text, uint8_t intensity) {
  int id = next_element_id_++;
  text_elements_.push_back({id, x, y, std::move(text), intensity});
  return id;
}

int Image::AddLineElement(int x0, int y0, int x1, int y1, uint8_t intensity) {
  int id = next_element_id_++;
  line_elements_.push_back({id, x0, y0, x1, y1, intensity});
  return id;
}

Status Image::RemoveTextElement(int id) {
  auto it = std::find_if(text_elements_.begin(), text_elements_.end(),
                         [&](const TextElement& e) { return e.id == id; });
  if (it == text_elements_.end()) {
    return Status::NotFound("no text element with id " + std::to_string(id));
  }
  text_elements_.erase(it);
  return Status::OK();
}

Status Image::RemoveLineElement(int id) {
  auto it = std::find_if(line_elements_.begin(), line_elements_.end(),
                         [&](const LineElement& e) { return e.id == id; });
  if (it == line_elements_.end()) {
    return Status::NotFound("no line element with id " + std::to_string(id));
  }
  line_elements_.erase(it);
  return Status::OK();
}

Image Image::Flatten() const {
  Image out = *this;
  out.text_elements_.clear();
  out.line_elements_.clear();
  for (const LineElement& line : line_elements_) DrawLine(out, line);
  for (const TextElement& text : text_elements_) {
    int cx = text.x;
    for (char c : text.text) {
      DrawGlyph(out, cx, text.y, FindGlyph(c), text.intensity);
      cx += 6;  // 5 pixel glyph + 1 pixel spacing.
    }
  }
  return out;
}

Bytes Image::Encode() const {
  ByteWriter w;
  w.PutU32(0x4d4d4947);  // "MMIG"
  w.PutI32(width_);
  w.PutI32(height_);
  w.PutI32(next_element_id_);
  w.PutRaw(pixels_.data(), pixels_.size());
  w.PutVarint(text_elements_.size());
  for (const TextElement& e : text_elements_) {
    w.PutI32(e.id);
    w.PutI32(e.x);
    w.PutI32(e.y);
    w.PutString(e.text);
    w.PutU8(e.intensity);
  }
  w.PutVarint(line_elements_.size());
  for (const LineElement& e : line_elements_) {
    w.PutI32(e.id);
    w.PutI32(e.x0);
    w.PutI32(e.y0);
    w.PutI32(e.x1);
    w.PutI32(e.y1);
    w.PutU8(e.intensity);
  }
  return w.Take();
}

Result<Image> Image::Decode(const Bytes& bytes) {
  ByteReader r(bytes);
  MMCONF_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != 0x4d4d4947) return Status::Corruption("bad image magic");
  MMCONF_ASSIGN_OR_RETURN(int32_t width, r.GetI32());
  MMCONF_ASSIGN_OR_RETURN(int32_t height, r.GetI32());
  MMCONF_ASSIGN_OR_RETURN(int32_t next_id, r.GetI32());
  MMCONF_ASSIGN_OR_RETURN(Image img, Image::Create(width, height));
  img.next_element_id_ = next_id;
  size_t n = static_cast<size_t>(width) * height;
  if (r.remaining() < n) return Status::Corruption("truncated image pixels");
  for (size_t i = 0; i < n; ++i) {
    MMCONF_ASSIGN_OR_RETURN(img.pixels_[i], r.GetU8());
  }
  MMCONF_ASSIGN_OR_RETURN(uint64_t n_text, r.GetVarint());
  for (uint64_t i = 0; i < n_text; ++i) {
    TextElement e;
    MMCONF_ASSIGN_OR_RETURN(e.id, r.GetI32());
    MMCONF_ASSIGN_OR_RETURN(e.x, r.GetI32());
    MMCONF_ASSIGN_OR_RETURN(e.y, r.GetI32());
    MMCONF_ASSIGN_OR_RETURN(e.text, r.GetString());
    MMCONF_ASSIGN_OR_RETURN(e.intensity, r.GetU8());
    img.text_elements_.push_back(std::move(e));
  }
  MMCONF_ASSIGN_OR_RETURN(uint64_t n_line, r.GetVarint());
  for (uint64_t i = 0; i < n_line; ++i) {
    LineElement e;
    MMCONF_ASSIGN_OR_RETURN(e.id, r.GetI32());
    MMCONF_ASSIGN_OR_RETURN(e.x0, r.GetI32());
    MMCONF_ASSIGN_OR_RETURN(e.y0, r.GetI32());
    MMCONF_ASSIGN_OR_RETURN(e.x1, r.GetI32());
    MMCONF_ASSIGN_OR_RETURN(e.y1, r.GetI32());
    MMCONF_ASSIGN_OR_RETURN(e.intensity, r.GetU8());
    img.line_elements_.push_back(e);
  }
  return img;
}

Result<double> Image::MeanAbsDifference(const Image& a, const Image& b) {
  if (a.width() != b.width() || a.height() != b.height()) {
    return Status::InvalidArgument("image dimensions differ");
  }
  double sum = 0;
  for (size_t i = 0; i < a.pixels_.size(); ++i) {
    sum += std::abs(static_cast<int>(a.pixels_[i]) -
                    static_cast<int>(b.pixels_[i]));
  }
  return sum / static_cast<double>(a.pixels_.size());
}

Result<double> Image::Psnr(const Image& reference, const Image& test) {
  if (reference.width() != test.width() ||
      reference.height() != test.height()) {
    return Status::InvalidArgument("image dimensions differ");
  }
  double mse = 0;
  for (size_t i = 0; i < reference.pixels_.size(); ++i) {
    double d = static_cast<double>(reference.pixels_[i]) -
               static_cast<double>(test.pixels_[i]);
    mse += d * d;
  }
  mse /= static_cast<double>(reference.pixels_.size());
  if (mse == 0) return std::numeric_limits<double>::infinity();
  return 10.0 * std::log10(255.0 * 255.0 / mse);
}

}  // namespace mmconf::media
