#include "storage/blob_store.h"

#include <algorithm>

namespace mmconf::storage {

uint32_t BlobStore::AllocPage() {
  if (!free_pages_.empty()) {
    uint32_t index = free_pages_.back();
    free_pages_.pop_back();
    return index;
  }
  pages_.emplace_back();
  return static_cast<uint32_t>(pages_.size() - 1);
}

void BlobStore::WritePage(uint32_t index, const uint8_t* data, size_t n) {
  Page& page = pages_[index];
  page.data.assign(data, data + n);
  page.crc = Crc32c(data, n);
}

Result<const BlobStore::Page*> BlobStore::CheckedPage(uint32_t index) const {
  if (index >= pages_.size()) {
    return Status::Corruption("page index out of range");
  }
  const Page& page = pages_[index];
  if (Crc32c(page.data.data(), page.data.size()) != page.crc) {
    return Status::Corruption("page " + std::to_string(index) +
                              " failed checksum");
  }
  return &page;
}

Result<BlobId> BlobStore::Put(const Bytes& data) {
  BlobId id = next_id_++;
  BlobMeta meta;
  meta.size = data.size();
  size_t offset = 0;
  while (offset < data.size()) {
    size_t n = std::min(kPagePayload, data.size() - offset);
    uint32_t page = AllocPage();
    WritePage(page, data.data() + offset, n);
    meta.page_indices.push_back(page);
    offset += n;
  }
  blobs_.emplace(id, std::move(meta));
  return id;
}

Result<Bytes> BlobStore::Get(BlobId id) const {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return Status::NotFound("blob " + std::to_string(id));
  }
  Bytes out;
  out.reserve(it->second.size);
  for (uint32_t index : it->second.page_indices) {
    MMCONF_ASSIGN_OR_RETURN(const Page* page, CheckedPage(index));
    out.insert(out.end(), page->data.begin(), page->data.end());
  }
  if (out.size() != it->second.size) {
    return Status::Corruption("blob " + std::to_string(id) +
                              " size mismatch");
  }
  return out;
}

Result<Bytes> BlobStore::GetRange(BlobId id, size_t offset,
                                  size_t length) const {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return Status::NotFound("blob " + std::to_string(id));
  }
  const BlobMeta& meta = it->second;
  if (offset >= meta.size) return Bytes{};
  // `offset + length` can wrap for huge lengths (e.g. SIZE_MAX meaning
  // "to the end"); clamp against the remaining bytes instead.
  size_t end = length < meta.size - offset ? offset + length : meta.size;
  Bytes out;
  out.reserve(end - offset);
  size_t first_page = offset / kPagePayload;
  size_t last_page = (end - 1) / kPagePayload;
  for (size_t p = first_page; p <= last_page; ++p) {
    MMCONF_ASSIGN_OR_RETURN(const Page* page,
                            CheckedPage(meta.page_indices[p]));
    size_t page_begin = p * kPagePayload;
    size_t lo = offset > page_begin ? offset - page_begin : 0;
    size_t hi = std::min(page->data.size(), end - page_begin);
    out.insert(out.end(), page->data.begin() + lo, page->data.begin() + hi);
  }
  return out;
}

Status BlobStore::Update(BlobId id, const Bytes& data) {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return Status::NotFound("blob " + std::to_string(id));
  }
  // Shadow-write semantics: the replacement is written to fresh pages
  // while the old chain stays intact, meta is swapped, and only then do
  // the old pages return to the free list. Releasing first would hand
  // the LIFO AllocPage the old pages immediately, overwriting the
  // version a concurrent reader (or a crash mid-update) still needs.
  BlobMeta fresh;
  fresh.size = data.size();
  size_t offset = 0;
  while (offset < data.size()) {
    size_t n = std::min(kPagePayload, data.size() - offset);
    uint32_t page = AllocPage();
    WritePage(page, data.data() + offset, n);
    fresh.page_indices.push_back(page);
    offset += n;
  }
  std::vector<uint32_t> released = std::move(it->second.page_indices);
  it->second = std::move(fresh);
  free_pages_.insert(free_pages_.end(), released.begin(), released.end());
  return Status::OK();
}

Status BlobStore::Delete(BlobId id) {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return Status::NotFound("blob " + std::to_string(id));
  }
  free_pages_.insert(free_pages_.end(), it->second.page_indices.begin(),
                     it->second.page_indices.end());
  blobs_.erase(it);
  return Status::OK();
}

Result<size_t> BlobStore::SizeOf(BlobId id) const {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return Status::NotFound("blob " + std::to_string(id));
  }
  return it->second.size;
}

Status BlobStore::VerifyAllPages() const {
  for (const auto& [id, meta] : blobs_) {
    for (uint32_t index : meta.page_indices) {
      Result<const Page*> page = CheckedPage(index);
      if (!page.ok()) {
        return Status::Corruption("blob " + std::to_string(id) + ": " +
                                  page.status().message());
      }
    }
  }
  return Status::OK();
}

Status BlobStore::CorruptForTesting(BlobId id, size_t byte_offset) {
  auto it = blobs_.find(id);
  if (it == blobs_.end()) {
    return Status::NotFound("blob " + std::to_string(id));
  }
  size_t page_index = byte_offset / kPagePayload;
  size_t in_page = byte_offset % kPagePayload;
  if (page_index >= it->second.page_indices.size()) {
    return Status::OutOfRange("offset past end of blob");
  }
  Page& page = pages_[it->second.page_indices[page_index]];
  if (in_page >= page.data.size()) {
    return Status::OutOfRange("offset past end of page payload");
  }
  page.data[in_page] ^= 0xff;  // CRC intentionally left stale.
  return Status::OK();
}

}  // namespace mmconf::storage
