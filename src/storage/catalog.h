#ifndef MMCONF_STORAGE_CATALOG_H_
#define MMCONF_STORAGE_CATALOG_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/object_table.h"

namespace mmconf::storage {

/// One row of the paper's MULTIMEDIA_OBJECTS_TABLE: a supported media type
/// with its MIME, access policy, description, and the name of the object
/// table holding objects of that type.
struct MediaTypeEntry {
  std::string type_name;    ///< e.g. "Image", "Audio"
  std::string mime;         ///< e.g. "image/x-mm-raster"
  std::string access_type;  ///< e.g. "read-write", "read-only"
  std::string table_name;   ///< object table for this type
  std::string description;
};

/// The catalog of supported multimedia types — the paper's main
/// MULTIMEDIA_OBJECTS_TABLE. "This approach was adopted in order to allow
/// addition of new data types as the system evolves": registering a type
/// creates its object table with its own schema at runtime.
class Catalog {
 public:
  Catalog() = default;

  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  /// Registers a new media type and creates its object table.
  /// AlreadyExists if the type is known.
  Status RegisterType(const MediaTypeEntry& entry,
                      std::vector<FieldDef> table_schema);

  bool HasType(const std::string& type_name) const;
  Result<MediaTypeEntry> GetType(const std::string& type_name) const;

  /// All registered types, sorted by name.
  std::vector<MediaTypeEntry> ListTypes() const;

  /// Object table backing a type; NotFound if the type is unregistered.
  Result<ObjectTable*> TableFor(const std::string& type_name);
  Result<const ObjectTable*> TableFor(const std::string& type_name) const;

 private:
  std::map<std::string, MediaTypeEntry> types_;
  std::map<std::string, std::unique_ptr<ObjectTable>> tables_;
};

}  // namespace mmconf::storage

#endif  // MMCONF_STORAGE_CATALOG_H_
