#ifndef MMCONF_STORAGE_CMP_STORE_H_
#define MMCONF_STORAGE_CMP_STORE_H_

#include <string>

#include "common/result.h"
#include "storage/database.h"

namespace mmconf::storage {

/// Resumable progressive image transfer over the paper's
/// CMP_OBJECTS_TABLE (Fig. 7: FLD_FILENAME, FLD_FILESIZE,
/// FLD_CURRENTPOSITION, FLD_HEADER blob, FLD_DATA blob). A layered codec
/// stream is split into its header (fetched once, cheap) and its payload
/// (fetched incrementally); FLD_CURRENTPOSITION records how much of the
/// payload a consultation has already pulled, so a session interrupted
/// mid-transfer — or throttled by Section 4.4's bandwidth limits —
/// resumes exactly where it stopped and every byte fetched improves the
/// reconstructable image.
class CmpObjectStore {
 public:
  /// `db` must outlive the store and have the standard types registered.
  explicit CmpObjectStore(DatabaseServer* db) : db_(db) {}

  /// Stores a layered-codec stream (as produced by LayeredCodec::Encode)
  /// under `filename`. The stream's own header determines the
  /// header/payload split. Corruption if `stream` is not a valid layered
  /// stream.
  Result<ObjectRef> StoreStream(const std::string& filename,
                                const Bytes& stream);

  /// The stream header (needed before any prefix can be decoded).
  Result<Bytes> FetchHeader(const ObjectRef& ref) const;

  /// Fetches up to `budget` more payload bytes, advancing
  /// FLD_CURRENTPOSITION. Returns an empty vector once the payload is
  /// exhausted.
  Result<Bytes> FetchNext(const ObjectRef& ref, size_t budget);

  /// Payload bytes already pulled.
  Result<size_t> Position(const ObjectRef& ref) const;
  /// Total payload bytes.
  Result<size_t> PayloadSize(const ObjectRef& ref) const;
  /// True once the payload is fully transferred.
  Result<bool> Complete(const ObjectRef& ref) const;

  /// Rewinds FLD_CURRENTPOSITION to zero (a fresh consultation).
  Status Reset(const ObjectRef& ref);

  /// Reassembles the decodable prefix a consumer holds after pulling
  /// `position` payload bytes: header + payload[0, position). Feed this
  /// to LayeredCodec::DecodePrefix / DecodeThumbnail.
  Result<Bytes> AssemblePrefix(const ObjectRef& ref,
                               size_t position) const;

  /// AssemblePrefix at the current position.
  Result<Bytes> AssembleCurrent(const ObjectRef& ref) const;

 private:
  DatabaseServer* db_;
};

}  // namespace mmconf::storage

#endif  // MMCONF_STORAGE_CMP_STORE_H_
