#include "storage/catalog.h"

namespace mmconf::storage {

Status Catalog::RegisterType(const MediaTypeEntry& entry,
                             std::vector<FieldDef> table_schema) {
  if (types_.count(entry.type_name) > 0) {
    return Status::AlreadyExists("media type \"" + entry.type_name +
                                 "\" already registered");
  }
  if (entry.type_name.empty() || entry.table_name.empty()) {
    return Status::InvalidArgument("type and table names must be non-empty");
  }
  types_.emplace(entry.type_name, entry);
  tables_.emplace(entry.type_name, std::make_unique<ObjectTable>(
                                       entry.table_name,
                                       std::move(table_schema)));
  return Status::OK();
}

bool Catalog::HasType(const std::string& type_name) const {
  return types_.count(type_name) > 0;
}

Result<MediaTypeEntry> Catalog::GetType(const std::string& type_name) const {
  auto it = types_.find(type_name);
  if (it == types_.end()) {
    return Status::NotFound("media type \"" + type_name + "\"");
  }
  return it->second;
}

std::vector<MediaTypeEntry> Catalog::ListTypes() const {
  std::vector<MediaTypeEntry> out;
  out.reserve(types_.size());
  for (const auto& [name, entry] : types_) out.push_back(entry);
  return out;
}

Result<ObjectTable*> Catalog::TableFor(const std::string& type_name) {
  auto it = tables_.find(type_name);
  if (it == tables_.end()) {
    return Status::NotFound("media type \"" + type_name + "\"");
  }
  return it->second.get();
}

Result<const ObjectTable*> Catalog::TableFor(
    const std::string& type_name) const {
  auto it = tables_.find(type_name);
  if (it == tables_.end()) {
    return Status::NotFound("media type \"" + type_name + "\"");
  }
  return static_cast<const ObjectTable*>(it->second.get());
}

}  // namespace mmconf::storage
