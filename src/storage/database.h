#ifndef MMCONF_STORAGE_DATABASE_H_
#define MMCONF_STORAGE_DATABASE_H_

#include <map>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/blob_store.h"
#include "storage/catalog.h"
#include "storage/object_store.h"
#include "storage/object_table.h"

namespace mmconf::storage {

/// The database-server tier of the paper's Fig. 1 architecture: a facade
/// over the catalog (type registry), the typed object tables, and the BLOB
/// store. "This module is responsible for storing and fetching multimedia
/// objects from the database."
///
/// The standard schema mirrors the paper's Fig. 7:
///  - Image:  quality, texts, cm metadata + a data BLOB
///  - Audio:  filename, sectors + a data BLOB
///  - Cmp:    (compressed/layered payloads) filename, filesize,
///            currentposition + header and data BLOBs
class DatabaseServer : public ObjectStore {
 public:
  DatabaseServer() = default;

  DatabaseServer(const DatabaseServer&) = delete;
  DatabaseServer& operator=(const DatabaseServer&) = delete;

  /// Registers the Fig. 7 standard types ("Image", "Audio", "Cmp",
  /// "Text"). Idempotent setup helper; fails only on internal errors.
  Status RegisterStandardTypes() override;

  /// Registers an additional media type (the schema-evolution path the
  /// paper designed Fig. 7 for). `blob_fields` of the schema must have
  /// FieldType::kBlob.
  Status RegisterType(const MediaTypeEntry& entry,
                      std::vector<FieldDef> table_schema) override;

  bool HasType(const std::string& type_name) const override {
    return catalog_.HasType(type_name);
  }

  /// Stores an object: blob payloads are written to the BLOB store and
  /// their ids substituted into the record's blob columns.
  /// `blob_payloads` maps blob column name -> payload bytes; scalar
  /// columns come in `fields`.
  Result<ObjectRef> Store(
      const std::string& type, std::map<std::string, FieldValue> fields,
      const std::map<std::string, Bytes>& blob_payloads) override;

  /// Stores an object under a caller-chosen id (AlreadyExists if taken,
  /// InvalidArgument for id 0). The WAL replay and shard-routing paths
  /// use this so object ids are assigned once, by the facade, and
  /// reproduce exactly when a log is replayed onto a fresh server.
  Result<ObjectRef> StoreWithId(
      const std::string& type, ObjectId id,
      std::map<std::string, FieldValue> fields,
      const std::map<std::string, Bytes>& blob_payloads);

  /// Fetches the scalar record of an object.
  Result<ObjectRecord> FetchRecord(const ObjectRef& ref) const override;

  /// Fetches one blob column's payload.
  Result<Bytes> FetchBlob(const ObjectRef& ref,
                          const std::string& blob_field) const override;

  /// Fetches a byte range of one blob column (progressive delivery).
  Result<Bytes> FetchBlobRange(const ObjectRef& ref,
                               const std::string& blob_field, size_t offset,
                               size_t length) const override;

  /// Size in bytes of one blob column's payload.
  Result<size_t> BlobSize(const ObjectRef& ref,
                          const std::string& blob_field) const override;

  /// Updates scalar columns and/or replaces blob payloads.
  Status Modify(const ObjectRef& ref,
                const std::map<std::string, FieldValue>& fields,
                const std::map<std::string, Bytes>& blob_payloads) override;

  /// Deletes an object and all blobs it references.
  Status Delete(const ObjectRef& ref) override;

  /// Lists all objects of a type.
  Result<std::vector<ObjectRef>> List(
      const std::string& type) const override;

  /// Serializes the whole database (catalog, tables, blob payloads) with
  /// a trailing CRC32C. ObjectRefs remain valid across a
  /// Serialize/LoadFrom round trip; blob ids are remapped internally.
  Bytes Serialize() const;

  /// Restores a serialized database into this (empty, freshly
  /// constructed) instance. Corruption on checksum or format damage;
  /// FailedPrecondition if this instance already holds types.
  Status LoadFrom(const Bytes& snapshot);

  /// File-backed convenience wrappers around Serialize/LoadFrom. Save
  /// writes to `path`.tmp then renames — a torn write never destroys the
  /// previous snapshot. Load ignores (and removes) a leftover `path`.tmp
  /// from an interrupted save and returns Corruption, never crashes, on
  /// a truncated or damaged snapshot.
  Status SaveToFile(const std::string& path) const;
  Status LoadFromFile(const std::string& path);

  const Catalog& catalog() const { return catalog_; }
  const BlobStore& blob_store() const { return blobs_; }
  BlobStore& mutable_blob_store() { return blobs_; }

 private:
  Result<BlobId> BlobIdOf(const ObjectRef& ref,
                          const std::string& blob_field) const;

  Catalog catalog_;
  BlobStore blobs_;
};

}  // namespace mmconf::storage

#endif  // MMCONF_STORAGE_DATABASE_H_
