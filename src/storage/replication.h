#ifndef MMCONF_STORAGE_REPLICATION_H_
#define MMCONF_STORAGE_REPLICATION_H_

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "net/network.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/object_store.h"
#include "storage/sharded_db.h"
#include "storage/wal.h"

namespace mmconf::storage {

/// Tuning for a ReplicatedShardSet.
struct ReplicationOptions {
  /// Followers per primary shard. Each follower gets its own network
  /// node ("shard<i>-follower<j>") with a duplex link to the primary.
  size_t followers_per_shard = 1;
  /// Checkpoint + compact a shard once its fully-shipped, fully-acked
  /// durable log exceeds this many bytes: the primary snapshots its
  /// serialized image, truncates the log behind it, bumps the shard
  /// epoch and resyncs followers from the snapshot. 0 disables.
  size_t checkpoint_log_bytes = 256 * 1024;
  /// Modeled wire size of the per-message shipping header, added to the
  /// payload size when billing the network.
  size_t header_bytes = 48;
  /// Primary->follower replication links (duplex, for acks).
  net::LinkSpec link{10e6, 5000};
  /// A follower whose in-flight traffic exhausted the transport's retry
  /// budget is stalled for this long before shipping resumes from its
  /// acked prefix (prevents a dead link from spinning the shipper).
  MicrosT stall_backoff_micros = 2'000'000;
};

/// One Ship() round's work, for callers that pump until quiescent.
struct ShipReport {
  size_t batches = 0;          ///< WAL batches handed to the transport
  size_t batch_bytes = 0;      ///< log bytes in those batches
  size_t snapshots = 0;        ///< checkpoint images handed to the transport
  size_t acks_folded = 0;      ///< in-flight messages confirmed this round
  size_t checkpoints = 0;      ///< shards checkpointed this round
};

/// What a follower promotion produced.
struct PromotionReport {
  size_t shard = 0;
  size_t follower = 0;
  /// Records replayed from the follower's verified log prefix (on top
  /// of its snapshot, when it had one).
  size_t replayed_records = 0;
  size_t snapshot_bytes = 0;
  /// True when the follower's received history failed its (lsn, crc)
  /// check against the last shipped sync point — the promoted image is
  /// the longest verified prefix, not the full received log.
  bool diverged = false;
};

/// Replication lag of one shard, against its slowest follower.
struct ReplicationLag {
  size_t durable_records = 0;  ///< group-committed on the primary
  size_t shipped_records = 0;  ///< min over followers, handed to the wire
  size_t acked_records = 0;    ///< min over followers, confirmed received
};

/// Primary/follower replication for a ShardedDatabaseServer: ships each
/// shard's WAL to follower endpoints over the lossy network, batch per
/// group-commit boundary, and promotes a follower into the facade when
/// the primary machine is lost.
///
/// Wire protocol (DESIGN.md §16). Two reliable-transport tags:
///
///   "repl.batch": u32 shard | u64 epoch | u64 start | u64 end_records
///                 | u64 end_lsn | u32 cum_crc | bytes batch
///   "repl.snap":  u32 shard | u64 epoch | u64 base_records | u32 crc
///                 | bytes snapshot
///
/// A batch covers durable log bytes [start, start+batch.size()) of the
/// shard's current epoch; `cum_crc` is the CRC32C of the whole durable
/// prefix [0, end), chained batch over batch, so a follower verifies
/// every byte it has against the primary's history without rescanning.
/// Batches apply in order; out-of-order arrivals (retries reorder) are
/// buffered, duplicates dropped, wrong-epoch messages discarded. A crc
/// or lsn mismatch marks the follower diverged: it stops accepting
/// batches and promotion falls back to its last verified prefix.
///
/// Epochs change on checkpoint/compaction and on primary recovery (the
/// surviving log may have rolled back, so shipped history beyond the
/// surviving prefix must be disowned); each epoch starts with a
/// "repl.snap" carrying the image the epoch's log replays on top of.
///
/// The transport is shared with whatever else pumps the network (the
/// federation tier in the chaos stack): callers forward the unconsumed
/// passthrough deliveries from their settle loop into HandleDelivery
/// and call Ship() afterwards to fold acks and send newly committed
/// batches.
class ReplicatedShardSet {
 public:
  /// `primary`, `transport` and `clock` must outlive the set. Follower
  /// nodes and duplex links are created on `transport`'s network at
  /// construction. The shard count is fixed: Rebalance on the facade is
  /// not supported while a ReplicatedShardSet is attached.
  ReplicatedShardSet(ShardedDatabaseServer* primary,
                     net::ReliableTransport* transport, const Clock* clock,
                     net::NodeId primary_node,
                     ReplicationOptions options = {});

  ReplicatedShardSet(const ReplicatedShardSet&) = delete;
  ReplicatedShardSet& operator=(const ReplicatedShardSet&) = delete;

  size_t num_shards() const { return shards_.size(); }
  size_t followers_per_shard() const { return options_.followers_per_shard; }
  net::NodeId follower_node(size_t shard, size_t follower) const;

  /// Folds acks, ships every fully group-committed batch not yet handed
  /// to the transport, and checkpoints shards whose acked log exceeds
  /// the threshold. Call between settle rounds; idempotent when there
  /// is nothing to do (report all zeros).
  Result<ShipReport> Ship();

  /// Routes one transport passthrough delivery. Returns true when the
  /// delivery was replication traffic (consumed), false to let the
  /// caller keep routing it.
  bool HandleDelivery(const net::Delivery& delivery);

  /// Promotes `follower` to primary for `shard` after the primary
  /// machine (db + WAL + checkpoint) is lost: replays the follower's
  /// verified prefix on top of its snapshot, installs the result into
  /// the facade (routing takeover is inherent — the facade's shard slot
  /// now serves the promoted image), and starts a new epoch so the
  /// remaining followers resync behind the new primary.
  Result<PromotionReport> Promote(size_t shard, size_t follower = 0);

  /// Checkpoint-aware crash recovery of the primary itself (machine
  /// survived, log damaged): replays the damaged log's clean prefix on
  /// top of the shard's checkpoint, reinstalls, and starts a new epoch
  /// — shipped history beyond the surviving prefix is disowned and
  /// followers resync. Replaces facade-level RecoverShardFromLog once a
  /// shard has checkpointed (its WAL alone no longer rebuilds it).
  Result<WalReplayStats> RecoverPrimary(size_t shard, const Bytes& damaged_log);

  /// The image `shard`'s current-epoch log replays on top of (empty
  /// before the first checkpoint).
  const Bytes& checkpoint(size_t shard) const {
    return shards_[shard].checkpoint;
  }
  uint64_t epoch(size_t shard) const { return shards_[shard].epoch; }
  ReplicationLag LagOf(size_t shard) const;
  /// Verified records held by one follower (its promotable prefix).
  size_t follower_records(size_t shard, size_t follower) const {
    return shards_[shard].followers[follower].records;
  }
  bool follower_diverged(size_t shard, size_t follower) const {
    return shards_[shard].followers[follower].diverged;
  }

  /// `storage.repl.*` counters, per-shard lag gauges and checkpoint/
  /// promotion/recovery spans on the tracer lane `pid`:"replication".
  void SetObserver(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                   int pid = 0);

 private:
  /// Receiver + shipper state for one follower endpoint. Both sides
  /// live here: the follower is simulated in-process, the network in
  /// between is real (lossy, retried, reordered).
  struct Follower {
    net::NodeId node = 0;

    // --- receiver side: the follower machine's durable state ---
    uint64_t epoch = 0;
    Bytes snapshot;           ///< image the received log replays on
    size_t snapshot_records = 0;  ///< records folded into the snapshot
    Bytes log;                ///< verified received prefix
    size_t records = 0;       ///< records in `log`
    uint32_t crc = 0;         ///< chained CRC32C over `log`
    std::vector<WalSyncPoint> boundaries;  ///< one per applied batch
    bool diverged = false;
    /// Batches that arrived ahead of the contiguous prefix, keyed by
    /// (epoch, start offset); drained as the gap fills.
    std::map<std::pair<uint64_t, uint64_t>, Bytes> out_of_order;

    // --- shipper side: what the primary believes about this follower ---
    uint64_t shipped_epoch = 0;   ///< epoch the ship offsets refer to
    size_t shipped_bytes = 0;
    size_t shipped_records = 0;
    size_t acked_bytes = 0;
    size_t acked_records = 0;
    bool snap_acked = false;   ///< follower confirmed the current epoch
    bool snap_inflight = false;
    MicrosT stalled_until = 0;  ///< retry-budget backoff, 0 = healthy
    struct InFlight {
      net::MsgId id = 0;
      uint64_t epoch = 0;
      size_t end_bytes = 0;
      size_t end_records = 0;
      bool is_snap = false;
    };
    std::vector<InFlight> inflight;
  };

  struct ShardRepl {
    uint64_t epoch = 0;
    Bytes checkpoint;             ///< primary-side base image of the epoch
    size_t checkpoint_records = 0;  ///< records compacted away, cumulative
    std::vector<Follower> followers;
    /// Cumulative CRC32C per shipped sync point of the current epoch,
    /// aligned with prefix lengths (bytes -> crc of durable[0, bytes)).
    std::map<size_t, uint32_t> prefix_crc;
  };

  Status ShipTo(size_t shard_index, Follower& follower, ShipReport& report);
  size_t FoldAcks(size_t shard_index, Follower& follower);
  /// Starts a new epoch for `shard` based on the current checkpoint;
  /// all followers resync via a fresh snapshot send.
  void BeginEpoch(size_t shard_index);
  uint32_t PrefixCrc(size_t shard_index, size_t bytes);
  void ApplyBatch(size_t shard_index, Follower& follower,
                  const Bytes& payload);
  void ApplySnapshot(size_t shard_index, Follower& follower,
                     const Bytes& payload);
  void RefreshLagGauge(size_t shard_index);

  ShardedDatabaseServer* primary_;
  net::ReliableTransport* transport_;
  const Clock* clock_;
  net::NodeId primary_node_;
  ReplicationOptions options_;
  std::vector<ShardRepl> shards_;
  std::map<net::NodeId, std::pair<size_t, size_t>> node_index_;

  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  int trace_pid_ = 0;
  int trace_tid_ = 0;
  obs::Counter* m_batches_ = nullptr;
  obs::Counter* m_batch_bytes_ = nullptr;
  obs::Counter* m_snapshots_ = nullptr;
  obs::Counter* m_snapshot_bytes_ = nullptr;
  obs::Counter* m_acked_ = nullptr;
  obs::Counter* m_failed_ = nullptr;
  obs::Counter* m_duplicates_ = nullptr;
  obs::Counter* m_divergences_ = nullptr;
  obs::Counter* m_checkpoints_ = nullptr;
  obs::Counter* m_promotions_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
  std::vector<obs::Gauge*> g_lag_;
};

/// Byte-bounded read-through LRU object cache in front of an
/// ObjectStore — the warm tier that keeps reads (the prefetcher's
/// FetchBlob/FetchBlobRange traffic included) off a freshly promoted
/// primary after failover. Records and blob payloads are cached on
/// first fetch; mutations write through and invalidate the touched
/// ref's entries; range reads are sliced from a cached full blob when
/// one is present.
///
/// Coherence on failover (DESIGN.md §16): promotion rolls a shard back
/// to its acked prefix, so entries populated from that shard may
/// describe unacked state — InvalidateShard drops exactly those; every
/// other shard's entries stay warm.
class ReadThroughCache : public ObjectStore {
 public:
  /// `store` must outlive the cache. `capacity_bytes` bounds the sum of
  /// cached payload sizes (metadata is not billed); 0 disables caching
  /// (pure pass-through).
  ReadThroughCache(ObjectStore* store, size_t capacity_bytes);

  ReadThroughCache(const ReadThroughCache&) = delete;
  ReadThroughCache& operator=(const ReadThroughCache&) = delete;

  // --- ObjectStore ---
  Status RegisterStandardTypes() override;
  Status RegisterType(const MediaTypeEntry& entry,
                      std::vector<FieldDef> table_schema) override;
  bool HasType(const std::string& type_name) const override;
  Result<ObjectRef> Store(
      const std::string& type, std::map<std::string, FieldValue> fields,
      const std::map<std::string, Bytes>& blob_payloads) override;
  Result<ObjectRecord> FetchRecord(const ObjectRef& ref) const override;
  Result<Bytes> FetchBlob(const ObjectRef& ref,
                          const std::string& blob_field) const override;
  Result<Bytes> FetchBlobRange(const ObjectRef& ref,
                               const std::string& blob_field, size_t offset,
                               size_t length) const override;
  Result<size_t> BlobSize(const ObjectRef& ref,
                          const std::string& blob_field) const override;
  Status Modify(const ObjectRef& ref,
                const std::map<std::string, FieldValue>& fields,
                const std::map<std::string, Bytes>& blob_payloads) override;
  Status Delete(const ObjectRef& ref) override;
  Result<std::vector<ObjectRef>> List(const std::string& type) const override;

  /// Drops every entry populated from refs `shard_of` maps to `shard` —
  /// the failover coherence hook (see class comment).
  void InvalidateShard(
      size_t shard,
      const std::function<size_t(const ObjectRef&)>& shard_of);
  void InvalidateAll();

  size_t size_bytes() const { return size_bytes_; }
  size_t entries() const { return entries_.size(); }
  size_t hits() const { return hits_; }
  size_t misses() const { return misses_; }
  size_t evictions() const { return evictions_; }

  /// `storage.cache.*` counters and the resident-bytes gauge.
  void SetObserver(obs::MetricsRegistry* metrics);

 private:
  struct Entry {
    ObjectRef ref;
    Bytes blob;                ///< blob payload (empty for records)
    bool is_record = false;
    ObjectRecord record;       ///< valid when is_record
    size_t billed = 0;         ///< bytes charged against the capacity
    std::list<std::string>::iterator lru_it;
  };

  void Touch(const std::string& key, Entry& entry) const;
  void Insert(const std::string& key, Entry entry, size_t bytes);
  void InvalidateRef(const ObjectRef& ref);
  void NoteHit() const;
  void NoteMiss() const;

  ObjectStore* store_;
  size_t capacity_bytes_;
  // Mutable: fetches are logically const but update recency + stats.
  mutable std::map<std::string, Entry> entries_;
  mutable std::list<std::string> lru_;  ///< front = most recent
  mutable size_t size_bytes_ = 0;
  mutable size_t hits_ = 0;
  mutable size_t misses_ = 0;
  mutable size_t evictions_ = 0;

  obs::MetricsRegistry* metrics_ = nullptr;
  mutable obs::Counter* m_hits_ = nullptr;
  mutable obs::Counter* m_misses_ = nullptr;
  obs::Counter* m_evictions_ = nullptr;
  obs::Gauge* g_bytes_ = nullptr;
};

}  // namespace mmconf::storage

#endif  // MMCONF_STORAGE_REPLICATION_H_
