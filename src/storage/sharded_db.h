#ifndef MMCONF_STORAGE_SHARDED_DB_H_
#define MMCONF_STORAGE_SHARDED_DB_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "storage/database.h"
#include "storage/object_store.h"
#include "storage/wal.h"

namespace mmconf::storage {

/// Durable, sharded database-server tier: N DatabaseServer shards, each
/// fronted by its own WriteAheadLog, behind one ObjectStore facade. The
/// ROADMAP's sharding/heavy-traffic direction plus the durability story
/// the paper delegates to Oracle.
///
/// Object ids are assigned by the facade (per type, monotonically), so
/// a ref routes to its shard by hash(type, id) alone — no routing table
/// to persist. All Store/Modify/Delete mutations are validated against
/// the shard first and then appended to that shard's WAL, so each log
/// is the exact successful mutation history of its shard: replaying a
/// log prefix onto a fresh DatabaseServer reproduces the shard's
/// serialized image at that point byte for byte (ids, blob ids and all).
/// Type registrations are fanned out to — and logged by — every shard.
class ShardedDatabaseServer : public ObjectStore {
 public:
  struct Options {
    size_t num_shards = 1;
    WriteAheadLog::Options wal;
  };

  /// `clock` drives WAL group-commit batching and must outlive the
  /// facade. `options.num_shards` must be >= 1 (clamped).
  explicit ShardedDatabaseServer(const Clock* clock);
  ShardedDatabaseServer(const Clock* clock, Options options);

  ShardedDatabaseServer(const ShardedDatabaseServer&) = delete;
  ShardedDatabaseServer& operator=(const ShardedDatabaseServer&) = delete;

  // --- ObjectStore ---
  Status RegisterStandardTypes() override;
  Status RegisterType(const MediaTypeEntry& entry,
                      std::vector<FieldDef> table_schema) override;
  bool HasType(const std::string& type_name) const override;
  Result<ObjectRef> Store(
      const std::string& type, std::map<std::string, FieldValue> fields,
      const std::map<std::string, Bytes>& blob_payloads) override;
  Result<ObjectRecord> FetchRecord(const ObjectRef& ref) const override;
  Result<Bytes> FetchBlob(const ObjectRef& ref,
                          const std::string& blob_field) const override;
  Result<Bytes> FetchBlobRange(const ObjectRef& ref,
                               const std::string& blob_field, size_t offset,
                               size_t length) const override;
  Result<size_t> BlobSize(const ObjectRef& ref,
                          const std::string& blob_field) const override;
  Status Modify(const ObjectRef& ref,
                const std::map<std::string, FieldValue>& fields,
                const std::map<std::string, Bytes>& blob_payloads) override;
  Status Delete(const ObjectRef& ref) override;
  /// Merged across shards, ascending id order — stays correct across
  /// rebalances because ids (not shard positions) identify objects.
  Result<std::vector<ObjectRef>> List(
      const std::string& type) const override;

  // --- sharding ---
  size_t num_shards() const { return shards_.size(); }
  /// The shard `ref` routes to (stable for a given shard count).
  size_t ShardOf(const ObjectRef& ref) const;
  DatabaseServer* shard(size_t index) { return shards_[index]->db.get(); }
  const DatabaseServer* shard(size_t index) const {
    return shards_[index]->db.get();
  }
  WriteAheadLog* shard_wal(size_t index) { return &shards_[index]->wal; }
  const WriteAheadLog* shard_wal(size_t index) const {
    return &shards_[index]->wal;
  }

  /// Re-shards every object onto `new_num_shards` fresh shards with
  /// fresh WALs (a checkpoint: the new logs start from the re-stored
  /// state). ObjectRefs remain valid — only the hash modulus changes.
  Status Rebalance(size_t new_num_shards);

  // --- durability ---
  /// Group-commit barrier on every shard's WAL.
  void SyncAll();

  /// Replays a log image onto `fresh` (a newly constructed
  /// DatabaseServer), stopping cleanly at a torn or corrupt tail.
  static Result<WalReplayStats> ReplayLogInto(const Bytes& log,
                                              DatabaseServer* fresh);

  /// Crash recovery: rebuilds shard `index` from `log` (typically a
  /// WalCrashImage), replacing its DatabaseServer and resetting its WAL
  /// to the clean prefix — group-commit boundaries that survive in the
  /// prefix are preserved so replication shipping keeps its batch
  /// structure. Type registrations the log rolled back past are healed
  /// via HealSchema, and facade id counters are re-derived from the
  /// surviving shards. An image carrying a type the facade never
  /// registered (impossible from this facade's own history) fails with
  /// NotFound before anything is mutated.
  Result<WalReplayStats> RecoverShardFromLog(size_t index, const Bytes& log);

  /// Re-registers on `db` every media type the facade knows that `db`
  /// is missing — the bootstrap step the recovery paths apply to a
  /// replayed image whose log rolled back past (or, on a quiet shard,
  /// never group-committed) a registration. Schema is facade-global
  /// metadata: it is re-pushed like a server re-registering its types
  /// at startup, not treated as lost data. When `wal` is non-null the
  /// matching kRegisterType records are appended so the healed image
  /// stays replayable. No-op for a db already carrying every type.
  /// Public so drivers can apply the same bootstrap to a control
  /// replica when checking recovery byte-exactness.
  Status HealSchema(DatabaseServer* db, WriteAheadLog* wal) const;

  /// Replaces shard `index` wholesale with `db` plus the WAL history
  /// that produced it — the replication tier's promotion/recovery hook.
  /// `db` must already hold the state the log describes (snapshot +
  /// replayed records); `boundaries` carries the group-commit structure
  /// of `wal_log`. Registrations the image never received are healed
  /// via HealSchema. Unlike RecoverShardFromLog this does NOT refuse an
  /// inconsistent image: a takeover has no old primary to fall back to,
  /// so the image is installed and any id-counter rebuild error (a type
  /// the facade never registered) surfaces to the caller.
  Status InstallShard(size_t index, std::unique_ptr<DatabaseServer> db,
                      Bytes wal_log, size_t records,
                      std::vector<WalSyncPoint> boundaries);

  /// Publishes storage activity into the obs layer: `storage.wal.*`
  /// counters (appends, synced batches, replayed records, truncations),
  /// `storage.recoveries` / `storage.rebalances`, per-shard object and
  /// byte gauges (`storage.shard.<i>.*`), and recovery/rebalance spans
  /// on the tracer lane `pid`:"storage". Either pointer may be null;
  /// both must outlive the facade.
  void SetObserver(obs::MetricsRegistry* metrics, obs::Tracer* tracer,
                   int pid = 0);

 private:
  struct Shard {
    std::unique_ptr<DatabaseServer> db;
    WriteAheadLog wal;
    obs::Gauge* g_objects = nullptr;
    obs::Gauge* g_bytes = nullptr;

    Shard(const Clock* clock, WriteAheadLog::Options options)
        : db(std::make_unique<DatabaseServer>()), wal(clock, options) {}
  };

  /// Appends an already-applied mutation to shard `index`'s WAL and
  /// refreshes that shard's gauges.
  void Log(size_t index, WalOp op, const Bytes& payload);
  void RefreshShardGauges(size_t index);
  /// Recomputes per-type next ids from the shards (recovery/rebalance/
  /// promotion). The type universe is the union across shards; a shard
  /// missing a table another shard has (a recovered or replicated image
  /// rolled back past a registration) surfaces as NotFound, with
  /// `next_ids_` left unchanged.
  Status RebuildIdCounters();
  /// Registered types with their schemas, from shard 0 (all shards
  /// agree by construction).
  std::vector<std::pair<MediaTypeEntry, std::vector<FieldDef>>> TypeSpecs()
      const;

  const Clock* clock_;
  WriteAheadLog::Options wal_options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Next id to assign per type. Ids are unique per type across shards.
  std::map<std::string, ObjectId> next_ids_;
  /// Observability (null = not instrumented).
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::Tracer* tracer_ = nullptr;
  int trace_pid_ = 0;
  int trace_tid_ = 0;
  obs::Counter* m_appends_ = nullptr;
  obs::Counter* m_append_bytes_ = nullptr;
  obs::Counter* m_syncs_ = nullptr;
  obs::Counter* m_truncations_ = nullptr;
  obs::Counter* m_replayed_records_ = nullptr;
  obs::Counter* m_recoveries_ = nullptr;
  obs::Counter* m_rebalances_ = nullptr;
};

}  // namespace mmconf::storage

#endif  // MMCONF_STORAGE_SHARDED_DB_H_
