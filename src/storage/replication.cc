#include "storage/replication.h"

#include <algorithm>
#include <utility>

namespace mmconf::storage {

namespace {

constexpr char kBatchTag[] = "repl.batch";
constexpr char kSnapTag[] = "repl.snap";

Bytes EncodeBatch(uint32_t shard, uint64_t epoch, uint64_t start,
                  uint64_t end_records, uint64_t end_lsn, uint32_t cum_crc,
                  const Bytes& batch) {
  ByteWriter w;
  w.PutU32(shard);
  w.PutU64(epoch);
  w.PutU64(start);
  w.PutU64(end_records);
  w.PutU64(end_lsn);
  w.PutU32(cum_crc);
  w.PutBytes(batch);
  return w.Take();
}

Bytes EncodeSnapshot(uint32_t shard, uint64_t epoch, uint64_t base_records,
                     const Bytes& image) {
  ByteWriter w;
  w.PutU32(shard);
  w.PutU64(epoch);
  w.PutU64(base_records);
  w.PutU32(Crc32c(image));
  w.PutBytes(image);
  return w.Take();
}

}  // namespace

ReplicatedShardSet::ReplicatedShardSet(ShardedDatabaseServer* primary,
                                       net::ReliableTransport* transport,
                                       const Clock* clock,
                                       net::NodeId primary_node,
                                       ReplicationOptions options)
    : primary_(primary),
      transport_(transport),
      clock_(clock),
      primary_node_(primary_node),
      options_(options) {
  options_.followers_per_shard =
      std::max<size_t>(1, options_.followers_per_shard);
  net::Network* network = transport_->network();
  shards_.resize(primary_->num_shards());
  for (size_t s = 0; s < shards_.size(); ++s) {
    for (size_t f = 0; f < options_.followers_per_shard; ++f) {
      Follower follower;
      follower.node = network->AddNode("shard" + std::to_string(s) +
                                       "-follower" + std::to_string(f));
      network->SetDuplexLink(primary_node_, follower.node, options_.link);
      node_index_[follower.node] = {s, f};
      shards_[s].followers.push_back(std::move(follower));
    }
  }
}

net::NodeId ReplicatedShardSet::follower_node(size_t shard,
                                              size_t follower) const {
  return shards_[shard].followers[follower].node;
}

uint32_t ReplicatedShardSet::PrefixCrc(size_t shard_index, size_t bytes) {
  ShardRepl& shard = shards_[shard_index];
  if (bytes == 0) return 0;
  auto it = shard.prefix_crc.find(bytes);
  if (it != shard.prefix_crc.end()) return it->second;
  // Extend from the longest cached prefix below `bytes` — cumulative
  // CRC chaining means each new sync point costs only its own bytes.
  size_t base = 0;
  uint32_t crc = 0;
  auto below = shard.prefix_crc.lower_bound(bytes);
  if (below != shard.prefix_crc.begin()) {
    --below;
    base = below->first;
    crc = below->second;
  }
  const Bytes& durable = primary_->shard_wal(shard_index)->durable();
  crc = Crc32c(durable.data() + base, bytes - base, crc);
  shard.prefix_crc[bytes] = crc;
  return crc;
}

size_t ReplicatedShardSet::FoldAcks(size_t shard_index, Follower& follower) {
  size_t folded = 0;
  auto it = follower.inflight.begin();
  while (it != follower.inflight.end()) {
    Result<net::SendState> state = transport_->StateOf(it->id);
    net::SendState resolved =
        state.ok() ? *state : net::SendState::kFailed;
    if (resolved == net::SendState::kInFlight) {
      ++it;
      continue;
    }
    if (resolved == net::SendState::kAcked) {
      ++folded;
      if (m_acked_ != nullptr) m_acked_->Add(1);
      if (it->is_snap) {
        if (it->epoch == shards_[shard_index].epoch) {
          follower.snap_acked = true;
          follower.snap_inflight = false;
        }
      } else if (it->epoch == follower.shipped_epoch &&
                 it->end_bytes > follower.acked_bytes) {
        follower.acked_bytes = it->end_bytes;
        follower.acked_records = it->end_records;
      }
    } else {
      // Retry budget exhausted: everything past the acked prefix is in
      // doubt. Roll the ship cursor back and back off before reshipping
      // so a dead link cannot spin the shipper.
      if (m_failed_ != nullptr) m_failed_->Add(1);
      if (it->is_snap) follower.snap_inflight = false;
      follower.shipped_bytes = follower.acked_bytes;
      follower.shipped_records = follower.acked_records;
      follower.stalled_until =
          (clock_ != nullptr ? clock_->NowMicros() : 0) +
          options_.stall_backoff_micros;
    }
    transport_->Forget(it->id);
    it = follower.inflight.erase(it);
  }
  return folded;
}

Status ReplicatedShardSet::ShipTo(size_t shard_index, Follower& follower,
                                  ShipReport& report) {
  ShardRepl& shard = shards_[shard_index];
  MicrosT now = clock_ != nullptr ? clock_->NowMicros() : 0;
  if (follower.stalled_until != 0) {
    if (now < follower.stalled_until) return Status::OK();
    follower.stalled_until = 0;
  }
  // A follower on an older epoch resyncs from the epoch's base image
  // before any batch of the new epoch ships.
  if (follower.shipped_epoch != shard.epoch || !follower.snap_acked) {
    if (follower.shipped_epoch != shard.epoch) {
      follower.shipped_epoch = shard.epoch;
      follower.shipped_bytes = 0;
      follower.shipped_records = 0;
      follower.acked_bytes = 0;
      follower.acked_records = 0;
      follower.snap_acked = false;
      follower.snap_inflight = false;
    }
    if (!follower.snap_inflight) {
      Bytes payload = EncodeSnapshot(static_cast<uint32_t>(shard_index),
                                     shard.epoch, shard.checkpoint_records,
                                     shard.checkpoint);
      MMCONF_ASSIGN_OR_RETURN(
          net::SendHandle handle,
          transport_->Send(primary_node_, follower.node,
                           payload.size() + options_.header_bytes, kSnapTag,
                           payload));
      follower.inflight.push_back(
          {handle.id, shard.epoch, 0, 0, /*is_snap=*/true});
      follower.snap_inflight = true;
      ++report.snapshots;
      if (m_snapshots_ != nullptr) {
        m_snapshots_->Add(1);
        m_snapshot_bytes_->Add(shard.checkpoint.size());
      }
    }
    return Status::OK();
  }
  const WriteAheadLog* wal = primary_->shard_wal(shard_index);
  const Bytes& durable = wal->durable();
  for (const WalSyncPoint& point : wal->sync_points()) {
    if (point.bytes <= follower.shipped_bytes) continue;
    Bytes batch(durable.begin() + follower.shipped_bytes,
                durable.begin() + point.bytes);
    Bytes payload = EncodeBatch(
        static_cast<uint32_t>(shard_index), shard.epoch,
        follower.shipped_bytes, point.records, point.records,
        PrefixCrc(shard_index, point.bytes), batch);
    MMCONF_ASSIGN_OR_RETURN(
        net::SendHandle handle,
        transport_->Send(primary_node_, follower.node,
                         payload.size() + options_.header_bytes, kBatchTag,
                         payload));
    follower.inflight.push_back(
        {handle.id, shard.epoch, point.bytes, point.records,
         /*is_snap=*/false});
    follower.shipped_bytes = point.bytes;
    follower.shipped_records = point.records;
    ++report.batches;
    report.batch_bytes += batch.size();
    if (m_batches_ != nullptr) {
      m_batches_->Add(1);
      m_batch_bytes_->Add(batch.size());
    }
  }
  return Status::OK();
}

void ReplicatedShardSet::BeginEpoch(size_t shard_index) {
  ShardRepl& shard = shards_[shard_index];
  ++shard.epoch;
  shard.prefix_crc.clear();
  // Followers resync lazily: the epoch mismatch makes the next ShipTo
  // send the new base snapshot before any batch.
}

Result<ShipReport> ReplicatedShardSet::Ship() {
  ShipReport report;
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardRepl& shard = shards_[s];
    const WriteAheadLog* wal = primary_->shard_wal(s);
    for (Follower& follower : shard.followers) {
      report.acks_folded += FoldAcks(s, follower);
    }
    // Checkpoint + compaction: once every follower holds the entire
    // durable log of this epoch, snapshot the shard, truncate the
    // shipped history behind it and start the next epoch. Requiring a
    // fully-acked, nothing-in-flight log keeps the epoch switch trivial
    // — no batch of the old epoch is ever in doubt.
    if (options_.checkpoint_log_bytes > 0 &&
        wal->durable().size() >= options_.checkpoint_log_bytes &&
        wal->pending_records() == 0) {
      bool all_caught_up = true;
      for (const Follower& follower : shard.followers) {
        if (!follower.snap_acked || !follower.inflight.empty() ||
            follower.shipped_epoch != shard.epoch ||
            follower.acked_bytes != wal->durable().size()) {
          all_caught_up = false;
          break;
        }
      }
      if (all_caught_up) {
        obs::ScopedSpan span(tracer_, trace_pid_, trace_tid_, "checkpoint",
                             "replication");
        shard.checkpoint = primary_->shard(s)->Serialize();
        shard.checkpoint_records += wal->durable_records();
        primary_->shard_wal(s)->Truncate();
        BeginEpoch(s);
        ++report.checkpoints;
        if (m_checkpoints_ != nullptr) m_checkpoints_->Add(1);
      }
    }
    for (Follower& follower : shard.followers) {
      MMCONF_RETURN_IF_ERROR(ShipTo(s, follower, report));
    }
    RefreshLagGauge(s);
  }
  return report;
}

void ReplicatedShardSet::ApplySnapshot(size_t shard_index, Follower& follower,
                                       const Bytes& payload) {
  ByteReader r(payload);
  Result<uint32_t> shard = r.GetU32();
  Result<uint64_t> epoch = r.GetU64();
  Result<uint64_t> base_records = r.GetU64();
  Result<uint32_t> crc = r.GetU32();
  Result<Bytes> image = r.GetBytes();
  if (!shard.ok() || !epoch.ok() || !base_records.ok() || !crc.ok() ||
      !image.ok() || *shard != shard_index) {
    return;  // malformed or misrouted frame: drop
  }
  if (*epoch < follower.epoch) return;  // stale resync
  if (Crc32c(*image) != *crc) {
    follower.diverged = true;
    if (m_divergences_ != nullptr) m_divergences_->Add(1);
    return;
  }
  if (*epoch == follower.epoch && !follower.log.empty()) {
    // Duplicate of the snapshot that opened the current epoch, arriving
    // after batches already applied — keep the longer history.
    if (m_duplicates_ != nullptr) m_duplicates_->Add(1);
    return;
  }
  follower.epoch = *epoch;
  follower.snapshot = std::move(*image);
  follower.snapshot_records = *base_records;
  follower.log.clear();
  follower.records = 0;
  follower.crc = 0;
  follower.boundaries.clear();
  follower.diverged = false;
  // Batches of this epoch that raced ahead of the snapshot apply now.
  auto it = follower.out_of_order.begin();
  while (it != follower.out_of_order.end()) {
    if (it->first.first != follower.epoch) {
      it = follower.out_of_order.erase(it);
      continue;
    }
    if (it->first.second == follower.log.size()) {
      Bytes pending = std::move(it->second);
      follower.out_of_order.erase(it);
      ApplyBatch(shard_index, follower, pending);
      it = follower.out_of_order.begin();
      continue;
    }
    ++it;
  }
}

void ReplicatedShardSet::ApplyBatch(size_t shard_index, Follower& follower,
                                    const Bytes& payload) {
  ByteReader r(payload);
  Result<uint32_t> shard = r.GetU32();
  Result<uint64_t> epoch = r.GetU64();
  Result<uint64_t> start = r.GetU64();
  Result<uint64_t> end_records = r.GetU64();
  Result<uint64_t> end_lsn = r.GetU64();
  Result<uint32_t> cum_crc = r.GetU32();
  Result<Bytes> batch = r.GetBytes();
  if (!shard.ok() || !epoch.ok() || !start.ok() || !end_records.ok() ||
      !end_lsn.ok() || !cum_crc.ok() || !batch.ok() ||
      *shard != shard_index) {
    return;
  }
  if (follower.diverged) return;
  if (*epoch != follower.epoch) {
    if (*epoch > follower.epoch) {
      // Raced ahead of the epoch's snapshot: hold until it lands.
      follower.out_of_order[{*epoch, *start}] = payload;
    }
    return;
  }
  if (*start < follower.log.size()) {
    if (m_duplicates_ != nullptr) m_duplicates_->Add(1);
    return;
  }
  if (*start > follower.log.size()) {
    follower.out_of_order[{*epoch, *start}] = payload;
    return;
  }
  // Contiguous: verify the shipped history — the chained CRC over the
  // whole prefix and the lsn/record agreement with the sync point.
  uint32_t check = Crc32c(batch->data(), batch->size(), follower.crc);
  if (check != *cum_crc || *end_lsn != *end_records ||
      *end_records <= follower.records) {
    follower.diverged = true;
    if (m_divergences_ != nullptr) m_divergences_->Add(1);
    return;
  }
  follower.log.insert(follower.log.end(), batch->begin(), batch->end());
  follower.crc = check;
  follower.records = *end_records;
  follower.boundaries.push_back({follower.log.size(), follower.records});
  // Drain any buffered batch that is now contiguous.
  auto next = follower.out_of_order.find({follower.epoch, follower.log.size()});
  if (next != follower.out_of_order.end()) {
    Bytes pending = std::move(next->second);
    follower.out_of_order.erase(next);
    ApplyBatch(shard_index, follower, pending);
  }
}

bool ReplicatedShardSet::HandleDelivery(const net::Delivery& delivery) {
  if (delivery.tag != kBatchTag && delivery.tag != kSnapTag) return false;
  auto it = node_index_.find(delivery.to);
  if (it == node_index_.end()) return false;
  auto [shard_index, follower_index] = it->second;
  Follower& follower = shards_[shard_index].followers[follower_index];
  if (delivery.tag == kSnapTag) {
    ApplySnapshot(shard_index, follower, delivery.payload);
  } else {
    ApplyBatch(shard_index, follower, delivery.payload);
  }
  return true;
}

Result<PromotionReport> ReplicatedShardSet::Promote(size_t shard_index,
                                                    size_t follower_index) {
  if (shard_index >= shards_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(shard_index));
  }
  ShardRepl& shard = shards_[shard_index];
  if (follower_index >= shard.followers.size()) {
    return Status::InvalidArgument("no follower " +
                                   std::to_string(follower_index));
  }
  obs::ScopedSpan span(tracer_, trace_pid_, trace_tid_, "promote",
                       "replication");
  Follower& follower = shard.followers[follower_index];
  PromotionReport report;
  report.shard = shard_index;
  report.follower = follower_index;
  report.snapshot_bytes = follower.snapshot.size();
  report.diverged = follower.diverged;
  // Promotion-time divergence check: the verified prefix must replay
  // cleanly and agree, record for record, with the batch bookkeeping —
  // the (lsn, crc) contract against the last shipped sync point.
  auto promoted = std::make_unique<DatabaseServer>();
  if (!follower.snapshot.empty()) {
    MMCONF_RETURN_IF_ERROR(promoted->LoadFrom(follower.snapshot));
  }
  MMCONF_ASSIGN_OR_RETURN(
      WalReplayStats stats,
      ShardedDatabaseServer::ReplayLogInto(follower.log, promoted.get()));
  if (!stats.clean_end || stats.records_applied != follower.records) {
    report.diverged = true;
  }
  report.replayed_records = stats.records_applied;
  Bytes verified(follower.log.begin(),
                 follower.log.begin() + stats.bytes_scanned);
  MMCONF_RETURN_IF_ERROR(primary_->InstallShard(
      shard_index, std::move(promoted), std::move(verified),
      stats.records_applied, follower.boundaries));
  // The promoted image becomes the shard's new authority: its snapshot
  // is the epoch base, its log the epoch history. A new epoch resyncs
  // every follower (the promoted slot included — conceptually a fresh
  // machine takes it over) behind the new primary.
  shard.checkpoint = follower.snapshot;
  shard.checkpoint_records = follower.snapshot_records;
  for (Follower& f : shard.followers) {
    f.epoch = 0;
    f.snapshot.clear();
    f.snapshot_records = 0;
    f.log.clear();
    f.records = 0;
    f.crc = 0;
    f.boundaries.clear();
    f.diverged = false;
    f.out_of_order.clear();
    f.shipped_epoch = 0;
    f.shipped_bytes = 0;
    f.shipped_records = 0;
    f.acked_bytes = 0;
    f.acked_records = 0;
    f.snap_acked = false;
    f.snap_inflight = false;
    f.stalled_until = 0;
    for (const Follower::InFlight& msg : f.inflight) {
      transport_->Forget(msg.id);
    }
    f.inflight.clear();
  }
  BeginEpoch(shard_index);
  if (m_promotions_ != nullptr) m_promotions_->Add(1);
  RefreshLagGauge(shard_index);
  return report;
}

Result<WalReplayStats> ReplicatedShardSet::RecoverPrimary(
    size_t shard_index, const Bytes& damaged_log) {
  if (shard_index >= shards_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(shard_index));
  }
  obs::ScopedSpan span(tracer_, trace_pid_, trace_tid_, "recover-primary",
                       "replication");
  ShardRepl& shard = shards_[shard_index];
  auto recovered = std::make_unique<DatabaseServer>();
  if (!shard.checkpoint.empty()) {
    MMCONF_RETURN_IF_ERROR(recovered->LoadFrom(shard.checkpoint));
  }
  MMCONF_ASSIGN_OR_RETURN(
      WalReplayStats stats,
      ShardedDatabaseServer::ReplayLogInto(damaged_log, recovered.get()));
  Bytes clean(damaged_log.begin(), damaged_log.begin() + stats.bytes_scanned);
  // The pre-crash boundaries that survive inside the clean prefix keep
  // their batch structure for reshipping.
  std::vector<WalSyncPoint> boundaries =
      primary_->shard_wal(shard_index)->sync_points();
  MMCONF_RETURN_IF_ERROR(primary_->InstallShard(
      shard_index, std::move(recovered), std::move(clean),
      stats.records_applied, std::move(boundaries)));
  // The surviving log may be shorter than what was already shipped —
  // post-recovery appends would diverge from the shipped history at the
  // same offsets. A new epoch disowns everything shipped and resyncs
  // followers from the recovered base.
  BeginEpoch(shard_index);
  if (m_recoveries_ != nullptr) m_recoveries_->Add(1);
  RefreshLagGauge(shard_index);
  return stats;
}

ReplicationLag ReplicatedShardSet::LagOf(size_t shard_index) const {
  const ShardRepl& shard = shards_[shard_index];
  ReplicationLag lag;
  lag.durable_records = primary_->shard_wal(shard_index)->durable_records();
  lag.shipped_records = lag.durable_records;
  lag.acked_records = lag.durable_records;
  for (const Follower& follower : shard.followers) {
    size_t shipped = follower.shipped_epoch == shard.epoch
                         ? follower.shipped_records
                         : 0;
    size_t acked =
        follower.shipped_epoch == shard.epoch ? follower.acked_records : 0;
    lag.shipped_records = std::min(lag.shipped_records, shipped);
    lag.acked_records = std::min(lag.acked_records, acked);
  }
  return lag;
}

void ReplicatedShardSet::RefreshLagGauge(size_t shard_index) {
  if (g_lag_.empty()) return;
  ReplicationLag lag = LagOf(shard_index);
  g_lag_[shard_index]->Set(
      static_cast<int64_t>(lag.durable_records - lag.acked_records));
}

void ReplicatedShardSet::SetObserver(obs::MetricsRegistry* metrics,
                                     obs::Tracer* tracer, int pid) {
  metrics_ = metrics;
  tracer_ = tracer;
  trace_pid_ = pid;
  trace_tid_ = tracer_ != nullptr ? tracer_->Tid(pid, "replication") : 0;
  if (metrics_ == nullptr) return;
  m_batches_ = metrics_->GetCounter("storage.repl.batches");
  m_batch_bytes_ = metrics_->GetCounter("storage.repl.batch_bytes");
  m_snapshots_ = metrics_->GetCounter("storage.repl.snapshots");
  m_snapshot_bytes_ = metrics_->GetCounter("storage.repl.snapshot_bytes");
  m_acked_ = metrics_->GetCounter("storage.repl.acked");
  m_failed_ = metrics_->GetCounter("storage.repl.failed");
  m_duplicates_ = metrics_->GetCounter("storage.repl.duplicates");
  m_divergences_ = metrics_->GetCounter("storage.repl.divergences");
  m_checkpoints_ = metrics_->GetCounter("storage.repl.checkpoints");
  m_promotions_ = metrics_->GetCounter("storage.repl.promotions");
  m_recoveries_ = metrics_->GetCounter("storage.repl.primary_recoveries");
  g_lag_.clear();
  for (size_t s = 0; s < shards_.size(); ++s) {
    g_lag_.push_back(metrics_->GetGauge(
        "storage.repl.shard." + std::to_string(s) + ".lag_records"));
  }
}

// --- ReadThroughCache ---

namespace {

std::string CacheKey(const ObjectRef& ref, const std::string& field,
                     char kind) {
  std::string key;
  key.reserve(ref.type.size() + field.size() + 24);
  key += kind;
  key += ref.type;
  key += '\0';
  key += std::to_string(ref.id);
  key += '\0';
  key += field;
  return key;
}

}  // namespace

ReadThroughCache::ReadThroughCache(ObjectStore* store, size_t capacity_bytes)
    : store_(store), capacity_bytes_(capacity_bytes) {}

Status ReadThroughCache::RegisterStandardTypes() {
  return store_->RegisterStandardTypes();
}

Status ReadThroughCache::RegisterType(const MediaTypeEntry& entry,
                                      std::vector<FieldDef> table_schema) {
  return store_->RegisterType(entry, std::move(table_schema));
}

bool ReadThroughCache::HasType(const std::string& type_name) const {
  return store_->HasType(type_name);
}

void ReadThroughCache::Touch(const std::string& key, Entry& entry) const {
  lru_.erase(entry.lru_it);
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
}

void ReadThroughCache::Insert(const std::string& key, Entry entry,
                              size_t bytes) {
  if (capacity_bytes_ == 0 || bytes > capacity_bytes_) return;
  auto existing = entries_.find(key);
  if (existing != entries_.end()) {
    size_bytes_ -= existing->second.billed;
    lru_.erase(existing->second.lru_it);
    entries_.erase(existing);
  }
  while (size_bytes_ + bytes > capacity_bytes_ && !lru_.empty()) {
    auto victim = entries_.find(lru_.back());
    size_bytes_ -= victim->second.billed;
    entries_.erase(victim);
    lru_.pop_back();
    ++evictions_;
    if (m_evictions_ != nullptr) m_evictions_->Add(1);
  }
  entry.billed = bytes;
  lru_.push_front(key);
  entry.lru_it = lru_.begin();
  size_bytes_ += bytes;
  entries_[key] = std::move(entry);
  if (g_bytes_ != nullptr) g_bytes_->Set(static_cast<int64_t>(size_bytes_));
}

void ReadThroughCache::NoteHit() const {
  ++hits_;
  if (m_hits_ != nullptr) m_hits_->Add(1);
}

void ReadThroughCache::NoteMiss() const {
  ++misses_;
  if (m_misses_ != nullptr) m_misses_->Add(1);
}

Result<ObjectRef> ReadThroughCache::Store(
    const std::string& type, std::map<std::string, FieldValue> fields,
    const std::map<std::string, Bytes>& blob_payloads) {
  MMCONF_ASSIGN_OR_RETURN(ObjectRef ref,
                          store_->Store(type, std::move(fields),
                                        blob_payloads));
  InvalidateRef(ref);  // a reused id must not serve a stale entry
  return ref;
}

Result<ObjectRecord> ReadThroughCache::FetchRecord(const ObjectRef& ref) const {
  std::string key = CacheKey(ref, "", 'r');
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    NoteHit();
    Touch(key, it->second);
    return it->second.record;
  }
  NoteMiss();
  MMCONF_ASSIGN_OR_RETURN(ObjectRecord record, store_->FetchRecord(ref));
  Entry entry;
  entry.ref = ref;
  entry.is_record = true;
  entry.record = record;
  // Bill records by a rough serialized size: field names + payloads.
  size_t bytes = 32;
  for (const auto& [name, value] : record.fields) {
    bytes += name.size() + 16;
    if (TypeOf(value) == FieldType::kString) {
      bytes += std::get<std::string>(value).size();
    }
  }
  const_cast<ReadThroughCache*>(this)->Insert(key, std::move(entry), bytes);
  return record;
}

Result<Bytes> ReadThroughCache::FetchBlob(const ObjectRef& ref,
                                          const std::string& blob_field) const {
  std::string key = CacheKey(ref, blob_field, 'b');
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    NoteHit();
    Touch(key, it->second);
    return it->second.blob;
  }
  NoteMiss();
  MMCONF_ASSIGN_OR_RETURN(Bytes payload, store_->FetchBlob(ref, blob_field));
  Entry entry;
  entry.ref = ref;
  entry.blob = payload;
  const_cast<ReadThroughCache*>(this)->Insert(key, std::move(entry),
                                              payload.size());
  return payload;
}

Result<Bytes> ReadThroughCache::FetchBlobRange(const ObjectRef& ref,
                                               const std::string& blob_field,
                                               size_t offset,
                                               size_t length) const {
  std::string key = CacheKey(ref, blob_field, 'b');
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    const Bytes& blob = it->second.blob;
    if (offset <= blob.size() && length <= blob.size() - offset) {
      NoteHit();
      Touch(key, it->second);
      return Bytes(blob.begin() + offset, blob.begin() + offset + length);
    }
  }
  NoteMiss();
  return store_->FetchBlobRange(ref, blob_field, offset, length);
}

Result<size_t> ReadThroughCache::BlobSize(const ObjectRef& ref,
                                          const std::string& blob_field) const {
  std::string key = CacheKey(ref, blob_field, 'b');
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    NoteHit();
    Touch(key, it->second);
    return it->second.blob.size();
  }
  NoteMiss();
  return store_->BlobSize(ref, blob_field);
}

Status ReadThroughCache::Modify(
    const ObjectRef& ref, const std::map<std::string, FieldValue>& fields,
    const std::map<std::string, Bytes>& blob_payloads) {
  MMCONF_RETURN_IF_ERROR(store_->Modify(ref, fields, blob_payloads));
  InvalidateRef(ref);
  return Status::OK();
}

Status ReadThroughCache::Delete(const ObjectRef& ref) {
  MMCONF_RETURN_IF_ERROR(store_->Delete(ref));
  InvalidateRef(ref);
  return Status::OK();
}

Result<std::vector<ObjectRef>> ReadThroughCache::List(
    const std::string& type) const {
  return store_->List(type);
}

void ReadThroughCache::InvalidateRef(const ObjectRef& ref) {
  auto it = entries_.begin();
  while (it != entries_.end()) {
    if (it->second.ref == ref) {
      size_bytes_ -= it->second.billed;
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (g_bytes_ != nullptr) g_bytes_->Set(static_cast<int64_t>(size_bytes_));
}

void ReadThroughCache::InvalidateShard(
    size_t shard, const std::function<size_t(const ObjectRef&)>& shard_of) {
  auto it = entries_.begin();
  while (it != entries_.end()) {
    if (shard_of(it->second.ref) == shard) {
      size_bytes_ -= it->second.billed;
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
    } else {
      ++it;
    }
  }
  if (g_bytes_ != nullptr) g_bytes_->Set(static_cast<int64_t>(size_bytes_));
}

void ReadThroughCache::InvalidateAll() {
  entries_.clear();
  lru_.clear();
  size_bytes_ = 0;
  if (g_bytes_ != nullptr) g_bytes_->Set(0);
}

void ReadThroughCache::SetObserver(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) return;
  m_hits_ = metrics_->GetCounter("storage.cache.hits");
  m_misses_ = metrics_->GetCounter("storage.cache.misses");
  m_evictions_ = metrics_->GetCounter("storage.cache.evictions");
  g_bytes_ = metrics_->GetGauge("storage.cache.bytes");
}

}  // namespace mmconf::storage
