#ifndef MMCONF_STORAGE_OBJECT_TABLE_H_
#define MMCONF_STORAGE_OBJECT_TABLE_H_

#include <cstdint>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "storage/blob_store.h"

namespace mmconf::storage {

/// Identifier of a typed multimedia object (row id within its table).
using ObjectId = uint64_t;

/// Column types supported by object tables. Mirrors what the paper's
/// Fig. 7 schema uses: scalar metadata columns plus BLOB payload columns.
enum class FieldType : uint8_t {
  kInt64,
  kString,
  kBlob,  ///< value is a BlobId referencing the BlobStore
};

const char* FieldTypeToString(FieldType t);

/// A column value.
using FieldValue = std::variant<int64_t, std::string, BlobId>;

/// Returns the FieldType a FieldValue holds. A BlobId is distinguishable
/// from int64 because the variant index is authoritative.
FieldType TypeOf(const FieldValue& v);

/// Column definition.
struct FieldDef {
  std::string name;
  FieldType type;
};

/// One stored object: a row id plus named column values.
struct ObjectRecord {
  ObjectId id = 0;
  std::map<std::string, FieldValue> fields;
};

/// A typed table of multimedia objects — the analogue of the paper's
/// IMAGE_OBJECTS_TABLE / AUDIO_OBJECTS_TABLE / CMP_OBJECTS_TABLE. Rows are
/// schema-checked on insert and update; BLOB columns hold BlobStore ids.
class ObjectTable {
 public:
  ObjectTable(std::string name, std::vector<FieldDef> schema);

  const std::string& name() const { return name_; }
  const std::vector<FieldDef>& schema() const { return schema_; }
  size_t size() const { return rows_.size(); }

  /// Inserts a row; all schema columns must be present with matching
  /// types, and no extra columns allowed. Returns the new id.
  Result<ObjectId> Insert(std::map<std::string, FieldValue> fields);

  /// Restores a row under its original id (the database load path, which
  /// must preserve ObjectRefs across save/load). Schema-checked;
  /// AlreadyExists if the id is taken. Future Insert ids stay above every
  /// restored id.
  Status RestoreRow(ObjectRecord record);

  /// Fetches a row by id.
  Result<ObjectRecord> Get(ObjectId id) const;

  /// Updates the given columns of an existing row (partial update).
  Status Update(ObjectId id, const std::map<std::string, FieldValue>& fields);

  /// Deletes a row. The caller owns deleting any referenced blobs.
  Status Delete(ObjectId id);

  bool Contains(ObjectId id) const { return rows_.count(id) > 0; }

  /// All ids in ascending order.
  std::vector<ObjectId> Ids() const;

  /// Ids of rows whose string column `field` equals `value`
  /// (InvalidArgument if the column is missing or not a string).
  Result<std::vector<ObjectId>> FindByString(const std::string& field,
                                             const std::string& value) const;

 private:
  Status CheckAgainstSchema(const std::map<std::string, FieldValue>& fields,
                            bool require_all) const;

  std::string name_;
  std::vector<FieldDef> schema_;
  std::map<ObjectId, ObjectRecord> rows_;
  ObjectId next_id_ = 1;
};

}  // namespace mmconf::storage

#endif  // MMCONF_STORAGE_OBJECT_TABLE_H_
