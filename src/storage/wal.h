#ifndef MMCONF_STORAGE_WAL_H_
#define MMCONF_STORAGE_WAL_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"

namespace mmconf::storage {

/// Mutation kinds a WAL record can carry. The payload encoding is owned
/// by the writer (ShardedDatabaseServer for the database tier); the log
/// itself only frames and checksums opaque payloads.
enum class WalOp : uint8_t {
  kRegisterStandardTypes = 0,
  kRegisterType = 1,
  kStore = 2,
  kModify = 3,
  kDelete = 4,
};

/// A group-commit barrier: after `records` records, the durable image
/// was `bytes` long and everything before it had been fsynced.
struct WalSyncPoint {
  size_t bytes = 0;
  size_t records = 0;

  bool operator==(const WalSyncPoint&) const = default;
};

/// Result of scanning/replaying a log image.
struct WalReplayStats {
  size_t records_applied = 0;  ///< complete, checksum-clean records
  size_t bytes_scanned = 0;    ///< log bytes covered by those records
  bool clean_end = true;       ///< false when the tail was torn/corrupt
  std::string stop_reason;     ///< empty, or why the scan stopped early
};

/// Write-ahead log for the storage tier, mirroring the deterministic
/// fault-injection style of net::Network. Records are framed as
///
///   u32 crc32c   over everything after the length field
///   u32 length   of (lsn + op + payload)
///   u64 lsn      sequential from 1, gaps mean a corrupt splice
///   u8  op       WalOp
///   ...          opaque payload
///
/// Appends buffer in a pending (page-cache) region; a group commit
/// (`Sync`) moves the batch to the durable region. Group commits happen
/// automatically when the pending batch exceeds `group_commit_bytes` or
/// when `group_commit_interval_micros` of simulated time passed since
/// the last sync — batching amortizes the (virtual) fsync cost exactly
/// like a real engine batches journal writes. Only the durable region
/// survives a crash; the injector below additionally damages its tail.
class WriteAheadLog {
 public:
  struct Options {
    /// Sync at the first append at least this far past the last sync.
    MicrosT group_commit_interval_micros = 5000;
    /// Sync whenever the pending batch reaches this many bytes.
    size_t group_commit_bytes = 64 * 1024;
  };

  /// `clock` drives group-commit timing and must outlive the log.
  explicit WriteAheadLog(const Clock* clock);
  WriteAheadLog(const Clock* clock, Options options);

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;
  WriteAheadLog(WriteAheadLog&&) = default;
  WriteAheadLog& operator=(WriteAheadLog&&) = default;

  /// Appends one record, returning its lsn. May trigger a group commit
  /// per the options; the record itself lands in the pending region.
  uint64_t Append(WalOp op, const Bytes& payload);

  /// Group-commit barrier: makes every pending record durable. No-op on
  /// an empty pending batch (no empty sync points are recorded).
  void Sync();

  /// Drops the whole log (durable and pending) and restarts lsn
  /// assignment — the post-checkpoint truncation after a snapshot or a
  /// rebalance made the history redundant.
  void Truncate();

  /// Replaces the log with a recovered durable image holding `records`
  /// clean records (the post-crash recovery path). Pending appends are
  /// discarded and lsn assignment resumes after the surviving history.
  ///
  /// `boundaries` carries the group-commit boundaries that produced the
  /// image (typically the pre-crash sync_points()): the strictly
  /// ascending prefix still contained in the surviving image is kept,
  /// and a final boundary covering the whole image is appended when the
  /// history extends past the last surviving one. Without candidates
  /// the whole image collapses into a single boundary — callers that
  /// need the real batch structure (replication shipping) must pass the
  /// history in, or re-derive boundaries via Scan before restoring.
  void RestoreDurable(Bytes log, size_t records,
                      std::vector<WalSyncPoint> boundaries = {});

  /// The bytes that survive a clean crash (pending appends are lost).
  const Bytes& durable() const { return durable_; }
  /// Not-yet-synced bytes (lost on any crash, may tear the tail).
  const Bytes& pending() const { return pending_; }
  /// Durable + pending: what a crash-free shutdown would leave behind.
  Bytes FullImage() const;

  size_t durable_records() const { return durable_records_; }
  size_t pending_records() const { return pending_records_; }
  size_t total_records() const {
    return durable_records_ + pending_records_;
  }
  size_t sync_count() const { return sync_points_.size(); }
  /// Group-commit boundaries in append order.
  const std::vector<WalSyncPoint>& sync_points() const {
    return sync_points_;
  }

  /// Scans `log` from the front, calling `apply(op, payload)` for every
  /// complete, checksum-clean, lsn-sequential record. Stops cleanly at
  /// a torn or corrupt tail (clean_end = false, records after the
  /// damage are ignored — standard WAL recovery). An `apply` error
  /// aborts the replay with that error.
  static Result<WalReplayStats> Replay(
      const Bytes& log,
      const std::function<Status(WalOp op, const Bytes& payload)>& apply);

  /// Replay without side effects: how many clean records `log` holds.
  static WalReplayStats Scan(const Bytes& log);

 private:
  void MaybeGroupCommit();

  const Clock* clock_;
  Options options_;
  Bytes durable_;
  Bytes pending_;
  size_t durable_records_ = 0;
  size_t pending_records_ = 0;
  std::vector<WalSyncPoint> sync_points_;
  uint64_t next_lsn_ = 1;
  MicrosT last_sync_at_ = 0;
};

/// Crash faults the injector can press into a log image. Mirrors
/// net::FaultSpec's seeded-determinism contract: a given seed produces
/// the same damage for the same log, independent of anything else.
enum class WalCrashKind : uint8_t {
  /// Crash mid-append: the durable region plus a prefix of the pending
  /// batch that ends mid-record.
  kTornTail = 0,
  /// The final 4KB page of the image was only partially written; its
  /// lost suffix reads back as zeros.
  kPartialPageWrite = 1,
  /// A lying fsync: the image rolls back to an earlier group-commit
  /// boundary chosen by the seed.
  kFsyncLostSuffix = 2,
};

const char* WalCrashKindToString(WalCrashKind kind);

/// What a simulated crash left on disk.
struct WalCrashImage {
  WalCrashKind kind = WalCrashKind::kTornTail;
  Bytes log;                ///< post-crash log image
  size_t clean_records = 0; ///< complete records recovery will replay
};

/// Seeded crash-fault injector for WriteAheadLog images. All randomness
/// comes from the constructor seed, so a (seed, log) pair reproduces
/// the exact same damage in every run — the property the deterministic
/// recovery tests sweep over.
class WalCrashInjector {
 public:
  static constexpr size_t kPageSize = 4096;

  explicit WalCrashInjector(uint64_t seed) : rng_(seed) {}

  /// Produces the post-crash image for `kind`. The returned
  /// clean_records counts the complete records a subsequent Replay will
  /// apply (verified against Scan).
  WalCrashImage Crash(const WriteAheadLog& wal, WalCrashKind kind);

  /// Picks one of the three kinds at random.
  WalCrashImage CrashRandom(const WriteAheadLog& wal);

 private:
  Rng rng_;
};

}  // namespace mmconf::storage

#endif  // MMCONF_STORAGE_WAL_H_
