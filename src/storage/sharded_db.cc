#include "storage/sharded_db.h"

#include <algorithm>
#include <utility>

namespace mmconf::storage {

namespace {

/// splitmix64 finalizer — the id mixer of the routing hash.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

uint64_t HashRef(const std::string& type, ObjectId id) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a over the type name.
  for (char c : type) {
    h = (h ^ static_cast<uint8_t>(c)) * 1099511628211ull;
  }
  return Mix64(h ^ Mix64(id));
}

void PutFieldValue(ByteWriter& w, const FieldValue& value) {
  w.PutU8(static_cast<uint8_t>(TypeOf(value)));
  switch (TypeOf(value)) {
    case FieldType::kInt64:
      w.PutI64(std::get<int64_t>(value));
      break;
    case FieldType::kString:
      w.PutString(std::get<std::string>(value));
      break;
    case FieldType::kBlob:
      w.PutU64(std::get<BlobId>(value));
      break;
  }
}

Result<FieldValue> GetFieldValue(ByteReader& r) {
  MMCONF_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  switch (tag) {
    case 0: {
      MMCONF_ASSIGN_OR_RETURN(int64_t v, r.GetI64());
      return FieldValue{v};
    }
    case 1: {
      MMCONF_ASSIGN_OR_RETURN(std::string v, r.GetString());
      return FieldValue{std::move(v)};
    }
    case 2: {
      MMCONF_ASSIGN_OR_RETURN(uint64_t v, r.GetU64());
      return FieldValue{BlobId{v}};
    }
    default:
      return Status::Corruption("bad field value tag in WAL record");
  }
}

void PutFieldMap(ByteWriter& w,
                 const std::map<std::string, FieldValue>& fields) {
  w.PutVarint(fields.size());
  for (const auto& [name, value] : fields) {
    w.PutString(name);
    PutFieldValue(w, value);
  }
}

Result<std::map<std::string, FieldValue>> GetFieldMap(ByteReader& r) {
  MMCONF_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  std::map<std::string, FieldValue> fields;
  for (uint64_t i = 0; i < count; ++i) {
    MMCONF_ASSIGN_OR_RETURN(std::string name, r.GetString());
    MMCONF_ASSIGN_OR_RETURN(FieldValue value, GetFieldValue(r));
    fields.emplace(std::move(name), std::move(value));
  }
  return fields;
}

void PutBlobMap(ByteWriter& w, const std::map<std::string, Bytes>& blobs) {
  w.PutVarint(blobs.size());
  for (const auto& [name, payload] : blobs) {
    w.PutString(name);
    w.PutBytes(payload);
  }
}

Result<std::map<std::string, Bytes>> GetBlobMap(ByteReader& r) {
  MMCONF_ASSIGN_OR_RETURN(uint64_t count, r.GetVarint());
  std::map<std::string, Bytes> blobs;
  for (uint64_t i = 0; i < count; ++i) {
    MMCONF_ASSIGN_OR_RETURN(std::string name, r.GetString());
    MMCONF_ASSIGN_OR_RETURN(Bytes payload, r.GetBytes());
    blobs.emplace(std::move(name), std::move(payload));
  }
  return blobs;
}

Bytes EncodeRegisterType(const MediaTypeEntry& entry,
                         const std::vector<FieldDef>& schema) {
  ByteWriter w;
  w.PutString(entry.type_name);
  w.PutString(entry.mime);
  w.PutString(entry.access_type);
  w.PutString(entry.table_name);
  w.PutString(entry.description);
  w.PutVarint(schema.size());
  for (const FieldDef& def : schema) {
    w.PutString(def.name);
    w.PutU8(static_cast<uint8_t>(def.type));
  }
  return w.Take();
}

Bytes EncodeStore(const std::string& type, ObjectId id,
                  const std::map<std::string, FieldValue>& fields,
                  const std::map<std::string, Bytes>& blobs) {
  ByteWriter w;
  w.PutString(type);
  w.PutU64(id);
  PutFieldMap(w, fields);
  PutBlobMap(w, blobs);
  return w.Take();
}

Bytes EncodeDelete(const ObjectRef& ref) {
  ByteWriter w;
  w.PutString(ref.type);
  w.PutU64(ref.id);
  return w.Take();
}

/// Applies one decoded WAL record to `db`. Shared by crash recovery and
/// anything else replaying a storage log.
Status ApplyWalRecord(WalOp op, const Bytes& payload, DatabaseServer* db) {
  ByteReader r(payload);
  switch (op) {
    case WalOp::kRegisterStandardTypes:
      return db->RegisterStandardTypes();
    case WalOp::kRegisterType: {
      MediaTypeEntry entry;
      MMCONF_ASSIGN_OR_RETURN(entry.type_name, r.GetString());
      MMCONF_ASSIGN_OR_RETURN(entry.mime, r.GetString());
      MMCONF_ASSIGN_OR_RETURN(entry.access_type, r.GetString());
      MMCONF_ASSIGN_OR_RETURN(entry.table_name, r.GetString());
      MMCONF_ASSIGN_OR_RETURN(entry.description, r.GetString());
      MMCONF_ASSIGN_OR_RETURN(uint64_t num_fields, r.GetVarint());
      std::vector<FieldDef> schema;
      for (uint64_t i = 0; i < num_fields; ++i) {
        FieldDef def;
        MMCONF_ASSIGN_OR_RETURN(def.name, r.GetString());
        MMCONF_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
        if (type > 2) return Status::Corruption("bad field type in WAL");
        def.type = static_cast<FieldType>(type);
        schema.push_back(std::move(def));
      }
      return db->RegisterType(entry, std::move(schema));
    }
    case WalOp::kStore: {
      MMCONF_ASSIGN_OR_RETURN(std::string type, r.GetString());
      MMCONF_ASSIGN_OR_RETURN(uint64_t id, r.GetU64());
      MMCONF_ASSIGN_OR_RETURN(auto fields, GetFieldMap(r));
      MMCONF_ASSIGN_OR_RETURN(auto blobs, GetBlobMap(r));
      return db->StoreWithId(type, id, std::move(fields), blobs).status();
    }
    case WalOp::kModify: {
      MMCONF_ASSIGN_OR_RETURN(std::string type, r.GetString());
      MMCONF_ASSIGN_OR_RETURN(uint64_t id, r.GetU64());
      MMCONF_ASSIGN_OR_RETURN(auto fields, GetFieldMap(r));
      MMCONF_ASSIGN_OR_RETURN(auto blobs, GetBlobMap(r));
      return db->Modify(ObjectRef{std::move(type), id}, fields, blobs);
    }
    case WalOp::kDelete: {
      MMCONF_ASSIGN_OR_RETURN(std::string type, r.GetString());
      MMCONF_ASSIGN_OR_RETURN(uint64_t id, r.GetU64());
      return db->Delete(ObjectRef{std::move(type), id});
    }
  }
  return Status::Corruption("unknown WAL op");
}

}  // namespace

ShardedDatabaseServer::ShardedDatabaseServer(const Clock* clock)
    : ShardedDatabaseServer(clock, Options()) {}

ShardedDatabaseServer::ShardedDatabaseServer(const Clock* clock,
                                             Options options)
    : clock_(clock), wal_options_(options.wal) {
  size_t count = std::max<size_t>(1, options.num_shards);
  for (size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>(clock_, wal_options_));
  }
}

size_t ShardedDatabaseServer::ShardOf(const ObjectRef& ref) const {
  return static_cast<size_t>(HashRef(ref.type, ref.id) % shards_.size());
}

void ShardedDatabaseServer::Log(size_t index, WalOp op,
                                const Bytes& payload) {
  Shard& shard = *shards_[index];
  size_t syncs_before = shard.wal.sync_count();
  shard.wal.Append(op, payload);
  if (m_appends_ != nullptr) {
    m_appends_->Add(1);
    m_append_bytes_->Add(payload.size());
    m_syncs_->Add(shard.wal.sync_count() - syncs_before);
  }
  RefreshShardGauges(index);
}

void ShardedDatabaseServer::RefreshShardGauges(size_t index) {
  Shard& shard = *shards_[index];
  if (shard.g_objects == nullptr) return;
  int64_t objects = 0;
  for (const MediaTypeEntry& entry : shard.db->catalog().ListTypes()) {
    objects += static_cast<int64_t>(
        shard.db->catalog().TableFor(entry.type_name).value()->size());
  }
  shard.g_objects->Set(objects);
  shard.g_bytes->Set(
      static_cast<int64_t>(shard.db->blob_store().allocated_bytes()));
}

Status ShardedDatabaseServer::RegisterStandardTypes() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    MMCONF_RETURN_IF_ERROR(shards_[i]->db->RegisterStandardTypes());
    Log(i, WalOp::kRegisterStandardTypes, Bytes{});
  }
  return Status::OK();
}

Status ShardedDatabaseServer::RegisterType(const MediaTypeEntry& entry,
                                           std::vector<FieldDef> schema) {
  Bytes payload = EncodeRegisterType(entry, schema);
  for (size_t i = 0; i < shards_.size(); ++i) {
    MMCONF_RETURN_IF_ERROR(shards_[i]->db->RegisterType(entry, schema));
    Log(i, WalOp::kRegisterType, payload);
  }
  return Status::OK();
}

bool ShardedDatabaseServer::HasType(const std::string& type_name) const {
  return shards_[0]->db->HasType(type_name);
}

Result<ObjectRef> ShardedDatabaseServer::Store(
    const std::string& type, std::map<std::string, FieldValue> fields,
    const std::map<std::string, Bytes>& blob_payloads) {
  if (!HasType(type)) {
    return Status::NotFound("no media type \"" + type + "\"");
  }
  auto it = next_ids_.try_emplace(type, 1).first;
  ObjectId id = it->second;
  ObjectRef ref{type, id};
  size_t index = ShardOf(ref);
  MMCONF_ASSIGN_OR_RETURN(
      ObjectRef stored,
      shards_[index]->db->StoreWithId(type, id, fields, blob_payloads));
  it->second = id + 1;
  Log(index, WalOp::kStore, EncodeStore(type, id, fields, blob_payloads));
  return stored;
}

Result<ObjectRecord> ShardedDatabaseServer::FetchRecord(
    const ObjectRef& ref) const {
  return shards_[ShardOf(ref)]->db->FetchRecord(ref);
}

Result<Bytes> ShardedDatabaseServer::FetchBlob(
    const ObjectRef& ref, const std::string& blob_field) const {
  return shards_[ShardOf(ref)]->db->FetchBlob(ref, blob_field);
}

Result<Bytes> ShardedDatabaseServer::FetchBlobRange(
    const ObjectRef& ref, const std::string& blob_field, size_t offset,
    size_t length) const {
  return shards_[ShardOf(ref)]->db->FetchBlobRange(ref, blob_field, offset,
                                                   length);
}

Result<size_t> ShardedDatabaseServer::BlobSize(
    const ObjectRef& ref, const std::string& blob_field) const {
  return shards_[ShardOf(ref)]->db->BlobSize(ref, blob_field);
}

Status ShardedDatabaseServer::Modify(
    const ObjectRef& ref, const std::map<std::string, FieldValue>& fields,
    const std::map<std::string, Bytes>& blob_payloads) {
  size_t index = ShardOf(ref);
  MMCONF_RETURN_IF_ERROR(
      shards_[index]->db->Modify(ref, fields, blob_payloads));
  Log(index, WalOp::kModify,
      EncodeStore(ref.type, ref.id, fields, blob_payloads));
  return Status::OK();
}

Status ShardedDatabaseServer::Delete(const ObjectRef& ref) {
  size_t index = ShardOf(ref);
  MMCONF_RETURN_IF_ERROR(shards_[index]->db->Delete(ref));
  Log(index, WalOp::kDelete, EncodeDelete(ref));
  return Status::OK();
}

Result<std::vector<ObjectRef>> ShardedDatabaseServer::List(
    const std::string& type) const {
  if (!HasType(type)) {
    return Status::NotFound("no media type \"" + type + "\"");
  }
  std::vector<ObjectRef> merged;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    MMCONF_ASSIGN_OR_RETURN(std::vector<ObjectRef> refs,
                            shard->db->List(type));
    merged.insert(merged.end(), refs.begin(), refs.end());
  }
  std::sort(merged.begin(), merged.end());
  return merged;
}

void ShardedDatabaseServer::SyncAll() {
  for (size_t i = 0; i < shards_.size(); ++i) {
    size_t before = shards_[i]->wal.sync_count();
    shards_[i]->wal.Sync();
    if (m_syncs_ != nullptr) {
      m_syncs_->Add(shards_[i]->wal.sync_count() - before);
    }
  }
}

std::vector<std::pair<MediaTypeEntry, std::vector<FieldDef>>>
ShardedDatabaseServer::TypeSpecs() const {
  std::vector<std::pair<MediaTypeEntry, std::vector<FieldDef>>> specs;
  const DatabaseServer& db = *shards_[0]->db;
  for (const MediaTypeEntry& entry : db.catalog().ListTypes()) {
    specs.emplace_back(entry,
                       db.catalog().TableFor(entry.type_name).value()->schema());
  }
  return specs;
}

Status ShardedDatabaseServer::RebuildIdCounters() {
  // The type universe is the union across shards so that asymmetry in
  // either direction — a recovered image rolled back past a
  // registration, or a replicated image ahead of the survivors — is
  // caught here instead of asserting inside Result::value().
  std::vector<std::string> universe;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const MediaTypeEntry& entry : shard->db->catalog().ListTypes()) {
      if (std::find(universe.begin(), universe.end(), entry.type_name) ==
          universe.end()) {
        universe.push_back(entry.type_name);
      }
    }
  }
  std::map<std::string, ObjectId> rebuilt;
  for (const std::string& type : universe) {
    ObjectId next = 1;
    for (size_t i = 0; i < shards_.size(); ++i) {
      Result<const ObjectTable*> table =
          shards_[i]->db->catalog().TableFor(type);
      if (!table.ok()) {
        return Status::NotFound("shard " + std::to_string(i) +
                                " has no table for registered type '" + type +
                                "': shard catalogs disagree");
      }
      std::vector<ObjectId> ids = (*table)->Ids();
      if (!ids.empty()) next = std::max(next, ids.back() + 1);
    }
    rebuilt[type] = next;
  }
  next_ids_ = std::move(rebuilt);
  return Status::OK();
}

Status ShardedDatabaseServer::Rebalance(size_t new_num_shards) {
  new_num_shards = std::max<size_t>(1, new_num_shards);
  obs::ScopedSpan span(tracer_, trace_pid_, trace_tid_, "rebalance",
                       "storage");
  SyncAll();
  std::vector<std::pair<MediaTypeEntry, std::vector<FieldDef>>> specs =
      TypeSpecs();
  std::vector<std::unique_ptr<Shard>> fresh;
  for (size_t i = 0; i < new_num_shards; ++i) {
    fresh.push_back(std::make_unique<Shard>(clock_, wal_options_));
  }
  auto route = [&](const ObjectRef& ref) {
    return static_cast<size_t>(HashRef(ref.type, ref.id) % new_num_shards);
  };
  for (const auto& [entry, schema] : specs) {
    Bytes reg_payload = EncodeRegisterType(entry, schema);
    for (std::unique_ptr<Shard>& shard : fresh) {
      MMCONF_RETURN_IF_ERROR(shard->db->RegisterType(entry, schema));
      shard->wal.Append(WalOp::kRegisterType, reg_payload);
    }
  }
  for (const auto& [entry, schema] : specs) {
    MMCONF_ASSIGN_OR_RETURN(std::vector<ObjectRef> refs,
                            List(entry.type_name));
    for (const ObjectRef& ref : refs) {
      MMCONF_ASSIGN_OR_RETURN(ObjectRecord record, FetchRecord(ref));
      std::map<std::string, FieldValue> scalars;
      std::map<std::string, Bytes> blobs;
      for (const auto& [name, value] : record.fields) {
        if (TypeOf(value) == FieldType::kBlob) {
          MMCONF_ASSIGN_OR_RETURN(Bytes payload, FetchBlob(ref, name));
          blobs.emplace(name, std::move(payload));
        } else {
          scalars.emplace(name, value);
        }
      }
      Shard& target = *fresh[route(ref)];
      MMCONF_RETURN_IF_ERROR(
          target.db->StoreWithId(ref.type, ref.id, scalars, blobs).status());
      target.wal.Append(WalOp::kStore,
                        EncodeStore(ref.type, ref.id, scalars, blobs));
    }
  }
  for (std::unique_ptr<Shard>& shard : fresh) shard->wal.Sync();
  // Gauges of shards that no longer exist must not report stale values.
  if (metrics_ != nullptr) {
    for (size_t i = new_num_shards; i < shards_.size(); ++i) {
      shards_[i]->g_objects->Set(0);
      shards_[i]->g_bytes->Set(0);
    }
    if (m_truncations_ != nullptr) {
      m_truncations_->Add(shards_.size());  // old logs are retired
    }
  }
  shards_ = std::move(fresh);
  if (metrics_ != nullptr) {
    for (size_t i = 0; i < shards_.size(); ++i) {
      const std::string prefix = "storage.shard." + std::to_string(i) + ".";
      shards_[i]->g_objects = metrics_->GetGauge(prefix + "objects");
      shards_[i]->g_bytes = metrics_->GetGauge(prefix + "bytes");
      RefreshShardGauges(i);
    }
    metrics_->GetGauge("storage.num_shards")
        ->Set(static_cast<int64_t>(shards_.size()));
  }
  MMCONF_RETURN_IF_ERROR(RebuildIdCounters());
  if (m_rebalances_ != nullptr) m_rebalances_->Add(1);
  return Status::OK();
}

Result<WalReplayStats> ShardedDatabaseServer::ReplayLogInto(
    const Bytes& log, DatabaseServer* fresh) {
  return WriteAheadLog::Replay(log, [fresh](WalOp op, const Bytes& payload) {
    return ApplyWalRecord(op, payload, fresh);
  });
}

Status ShardedDatabaseServer::HealSchema(DatabaseServer* db,
                                         WriteAheadLog* wal) const {
  if (db == nullptr) {
    return Status::InvalidArgument("HealSchema: null database");
  }
  for (const std::unique_ptr<Shard>& shard : shards_) {
    for (const MediaTypeEntry& entry : shard->db->catalog().ListTypes()) {
      if (db->HasType(entry.type_name)) continue;
      MMCONF_ASSIGN_OR_RETURN(
          const ObjectTable* table,
          shard->db->catalog().TableFor(entry.type_name));
      std::vector<FieldDef> schema = table->schema();
      MMCONF_RETURN_IF_ERROR(db->RegisterType(entry, schema));
      if (wal != nullptr) {
        wal->Append(WalOp::kRegisterType, EncodeRegisterType(entry, schema));
      }
    }
  }
  return Status::OK();
}

Result<WalReplayStats> ShardedDatabaseServer::RecoverShardFromLog(
    size_t index, const Bytes& log) {
  if (index >= shards_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(index));
  }
  obs::ScopedSpan span(tracer_, trace_pid_, trace_tid_, "recover", "storage");
  auto recovered = std::make_unique<DatabaseServer>();
  MMCONF_ASSIGN_OR_RETURN(WalReplayStats stats,
                          ReplayLogInto(log, recovered.get()));
  // A type the image knows but the facade does not cannot come from
  // this facade's history and cannot be healed from the survivors:
  // refuse before mutating anything (the facade keeps serving its
  // pre-recovery state).
  for (const MediaTypeEntry& entry : recovered->catalog().ListTypes()) {
    if (!HasType(entry.type_name)) {
      return Status::NotFound("recovered image carries type '" +
                              entry.type_name +
                              "' the facade never registered");
    }
  }
  Shard& shard = *shards_[index];
  shard.db = std::move(recovered);
  // The WAL restarts from the clean prefix: post-recovery mutations
  // extend the surviving history, not the damaged image. Pre-crash
  // group-commit boundaries that survive in the prefix are kept.
  Bytes clean(log.begin(), log.begin() + stats.bytes_scanned);
  std::vector<WalSyncPoint> boundaries = shard.wal.sync_points();
  shard.wal.RestoreDurable(std::move(clean), stats.records_applied,
                           std::move(boundaries));
  // Registrations the image rolled back past (or that never group-
  // committed on a quiet shard) are re-pushed: schema is facade-global
  // bootstrap metadata, not lost data. The healed records land in the
  // restored WAL so the image stays replayable.
  MMCONF_RETURN_IF_ERROR(HealSchema(shard.db.get(), &shard.wal));
  MMCONF_RETURN_IF_ERROR(RebuildIdCounters());
  if (m_recoveries_ != nullptr) {
    m_recoveries_->Add(1);
    m_replayed_records_->Add(stats.records_applied);
    if (!stats.clean_end) m_truncations_->Add(1);
  }
  RefreshShardGauges(index);
  return stats;
}

Status ShardedDatabaseServer::InstallShard(
    size_t index, std::unique_ptr<DatabaseServer> db, Bytes wal_log,
    size_t records, std::vector<WalSyncPoint> boundaries) {
  if (index >= shards_.size()) {
    return Status::InvalidArgument("no shard " + std::to_string(index));
  }
  if (db == nullptr) {
    return Status::InvalidArgument("InstallShard: null database");
  }
  obs::ScopedSpan span(tracer_, trace_pid_, trace_tid_, "install-shard",
                      "storage");
  Shard& shard = *shards_[index];
  shard.db = std::move(db);
  shard.wal.RestoreDurable(std::move(wal_log), records, std::move(boundaries));
  // Registrations the installed image never received (e.g. the primary
  // lost its machine before a registration group-committed and shipped)
  // are re-pushed from the surviving shards, WAL records included.
  MMCONF_RETURN_IF_ERROR(HealSchema(shard.db.get(), &shard.wal));
  RefreshShardGauges(index);
  if (m_recoveries_ != nullptr) m_recoveries_->Add(1);
  // A takeover has no old primary to fall back to: the image stays
  // installed even when the id-counter rebuild finds it incomplete
  // (a type the facade never registered cannot be healed away), and
  // the error surfaces to the replication tier.
  return RebuildIdCounters();
}

void ShardedDatabaseServer::SetObserver(obs::MetricsRegistry* metrics,
                                        obs::Tracer* tracer, int pid) {
  metrics_ = metrics;
  tracer_ = tracer;
  trace_pid_ = pid;
  trace_tid_ = tracer_ != nullptr ? tracer_->Tid(pid, "storage") : 0;
  if (metrics_ != nullptr) {
    m_appends_ = metrics_->GetCounter("storage.wal.appends");
    m_append_bytes_ = metrics_->GetCounter("storage.wal.append_bytes");
    m_syncs_ = metrics_->GetCounter("storage.wal.syncs");
    m_truncations_ = metrics_->GetCounter("storage.wal.truncations");
    m_replayed_records_ =
        metrics_->GetCounter("storage.wal.replayed_records");
    m_recoveries_ = metrics_->GetCounter("storage.recoveries");
    m_rebalances_ = metrics_->GetCounter("storage.rebalances");
    metrics_->GetGauge("storage.num_shards")
        ->Set(static_cast<int64_t>(shards_.size()));
    for (size_t i = 0; i < shards_.size(); ++i) {
      const std::string prefix = "storage.shard." + std::to_string(i) + ".";
      shards_[i]->g_objects = metrics_->GetGauge(prefix + "objects");
      shards_[i]->g_bytes = metrics_->GetGauge(prefix + "bytes");
      RefreshShardGauges(i);
    }
  } else {
    m_appends_ = nullptr;
    m_append_bytes_ = nullptr;
    m_syncs_ = nullptr;
    m_truncations_ = nullptr;
    m_replayed_records_ = nullptr;
    m_recoveries_ = nullptr;
    m_rebalances_ = nullptr;
    for (std::unique_ptr<Shard>& shard : shards_) {
      shard->g_objects = nullptr;
      shard->g_bytes = nullptr;
    }
  }
}

}  // namespace mmconf::storage
