#ifndef MMCONF_STORAGE_OBJECT_STORE_H_
#define MMCONF_STORAGE_OBJECT_STORE_H_

#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "storage/catalog.h"
#include "storage/object_table.h"

namespace mmconf::storage {

/// Handle identifying one stored multimedia object: its media type plus
/// row id in the type's object table. Refs are stable across snapshots,
/// WAL recovery, and shard rebalancing.
struct ObjectRef {
  std::string type;
  ObjectId id = 0;
};

bool operator==(const ObjectRef& a, const ObjectRef& b);
bool operator<(const ObjectRef& a, const ObjectRef& b);

/// The database-server tier's storage contract (the paper's Fig. 1 "This
/// module is responsible for storing and fetching multimedia objects
/// from the database"). DatabaseServer implements it as a single
/// in-process instance; ShardedDatabaseServer implements it as N
/// hash-routed shards with per-shard write-ahead logs. The interaction
/// server programs against this interface, so durability and sharding
/// are swappable behind it.
class ObjectStore {
 public:
  virtual ~ObjectStore() = default;

  /// Registers the Fig. 7 standard types ("Image", "Audio", "Cmp",
  /// "Text"). Idempotent setup helper.
  virtual Status RegisterStandardTypes() = 0;

  /// Registers an additional media type (the schema-evolution path the
  /// paper designed Fig. 7 for).
  virtual Status RegisterType(const MediaTypeEntry& entry,
                              std::vector<FieldDef> table_schema) = 0;

  /// True when `type_name` is registered.
  virtual bool HasType(const std::string& type_name) const = 0;

  /// Stores an object: blob payloads are written to the BLOB store and
  /// their ids substituted into the record's blob columns.
  virtual Result<ObjectRef> Store(
      const std::string& type, std::map<std::string, FieldValue> fields,
      const std::map<std::string, Bytes>& blob_payloads) = 0;

  /// Fetches the scalar record of an object.
  virtual Result<ObjectRecord> FetchRecord(const ObjectRef& ref) const = 0;

  /// Fetches one blob column's payload.
  virtual Result<Bytes> FetchBlob(const ObjectRef& ref,
                                  const std::string& blob_field) const = 0;

  /// Fetches a byte range of one blob column (progressive delivery).
  virtual Result<Bytes> FetchBlobRange(const ObjectRef& ref,
                                       const std::string& blob_field,
                                       size_t offset, size_t length) const = 0;

  /// Size in bytes of one blob column's payload.
  virtual Result<size_t> BlobSize(const ObjectRef& ref,
                                  const std::string& blob_field) const = 0;

  /// Updates scalar columns and/or replaces blob payloads.
  virtual Status Modify(const ObjectRef& ref,
                        const std::map<std::string, FieldValue>& fields,
                        const std::map<std::string, Bytes>& blob_payloads) = 0;

  /// Deletes an object and all blobs it references.
  virtual Status Delete(const ObjectRef& ref) = 0;

  /// Lists all objects of a type in ascending id order.
  virtual Result<std::vector<ObjectRef>> List(
      const std::string& type) const = 0;
};

}  // namespace mmconf::storage

#endif  // MMCONF_STORAGE_OBJECT_STORE_H_
