#include "storage/object_table.h"

#include <algorithm>

namespace mmconf::storage {

const char* FieldTypeToString(FieldType t) {
  switch (t) {
    case FieldType::kInt64:
      return "int64";
    case FieldType::kString:
      return "string";
    case FieldType::kBlob:
      return "blob";
  }
  return "unknown";
}

FieldType TypeOf(const FieldValue& v) {
  switch (v.index()) {
    case 0:
      return FieldType::kInt64;
    case 1:
      return FieldType::kString;
    default:
      return FieldType::kBlob;
  }
}

ObjectTable::ObjectTable(std::string name, std::vector<FieldDef> schema)
    : name_(std::move(name)), schema_(std::move(schema)) {}

Status ObjectTable::CheckAgainstSchema(
    const std::map<std::string, FieldValue>& fields, bool require_all) const {
  for (const auto& [fname, value] : fields) {
    auto it = std::find_if(schema_.begin(), schema_.end(),
                           [&](const FieldDef& d) { return d.name == fname; });
    if (it == schema_.end()) {
      return Status::InvalidArgument("table " + name_ +
                                     " has no column \"" + fname + "\"");
    }
    if (TypeOf(value) != it->type) {
      return Status::InvalidArgument(
          "column \"" + fname + "\" expects " +
          FieldTypeToString(it->type) + ", got " +
          FieldTypeToString(TypeOf(value)));
    }
  }
  if (require_all) {
    for (const FieldDef& def : schema_) {
      if (fields.count(def.name) == 0) {
        return Status::InvalidArgument("missing column \"" + def.name +
                                       "\" for table " + name_);
      }
    }
  }
  return Status::OK();
}

Result<ObjectId> ObjectTable::Insert(
    std::map<std::string, FieldValue> fields) {
  MMCONF_RETURN_IF_ERROR(CheckAgainstSchema(fields, /*require_all=*/true));
  ObjectId id = next_id_++;
  rows_.emplace(id, ObjectRecord{id, std::move(fields)});
  return id;
}

Status ObjectTable::RestoreRow(ObjectRecord record) {
  MMCONF_RETURN_IF_ERROR(
      CheckAgainstSchema(record.fields, /*require_all=*/true));
  if (record.id == 0) {
    return Status::InvalidArgument("restored row needs a nonzero id");
  }
  if (rows_.count(record.id) > 0) {
    return Status::AlreadyExists("row " + std::to_string(record.id) +
                                 " already present in " + name_);
  }
  next_id_ = std::max(next_id_, record.id + 1);
  ObjectId id = record.id;
  rows_.emplace(id, std::move(record));
  return Status::OK();
}

Result<ObjectRecord> ObjectTable::Get(ObjectId id) const {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound("table " + name_ + " has no object " +
                            std::to_string(id));
  }
  return it->second;
}

Status ObjectTable::Update(ObjectId id,
                           const std::map<std::string, FieldValue>& fields) {
  auto it = rows_.find(id);
  if (it == rows_.end()) {
    return Status::NotFound("table " + name_ + " has no object " +
                            std::to_string(id));
  }
  MMCONF_RETURN_IF_ERROR(CheckAgainstSchema(fields, /*require_all=*/false));
  for (const auto& [fname, value] : fields) {
    it->second.fields[fname] = value;
  }
  return Status::OK();
}

Status ObjectTable::Delete(ObjectId id) {
  if (rows_.erase(id) == 0) {
    return Status::NotFound("table " + name_ + " has no object " +
                            std::to_string(id));
  }
  return Status::OK();
}

std::vector<ObjectId> ObjectTable::Ids() const {
  std::vector<ObjectId> ids;
  ids.reserve(rows_.size());
  for (const auto& [id, row] : rows_) ids.push_back(id);
  return ids;
}

Result<std::vector<ObjectId>> ObjectTable::FindByString(
    const std::string& field, const std::string& value) const {
  auto def = std::find_if(schema_.begin(), schema_.end(),
                          [&](const FieldDef& d) { return d.name == field; });
  if (def == schema_.end() || def->type != FieldType::kString) {
    return Status::InvalidArgument("no string column \"" + field +
                                   "\" in table " + name_);
  }
  std::vector<ObjectId> out;
  for (const auto& [id, row] : rows_) {
    auto it = row.fields.find(field);
    if (it != row.fields.end() &&
        std::get<std::string>(it->second) == value) {
      out.push_back(id);
    }
  }
  return out;
}

}  // namespace mmconf::storage
