#ifndef MMCONF_STORAGE_BLOB_STORE_H_
#define MMCONF_STORAGE_BLOB_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"

namespace mmconf::storage {

/// Identifier of a stored BLOB. Ids are never reused.
using BlobId = uint64_t;

/// Page-based BLOB store, the stand-in for Oracle's BLOB columns (the
/// paper stores every multimedia payload as a BLOB of up to 4GB). Each
/// BLOB is split into fixed-size pages kept on a per-blob chain; deleted
/// pages go to a free list and are reused. Every page carries a CRC32C so
/// corruption is detected on read, not silently returned.
class BlobStore {
 public:
  static constexpr size_t kPageSize = 4096;
  /// Payload bytes per page (page minus CRC and length header).
  static constexpr size_t kPagePayload = kPageSize - 8;

  BlobStore() = default;

  BlobStore(const BlobStore&) = delete;
  BlobStore& operator=(const BlobStore&) = delete;
  BlobStore(BlobStore&&) = default;
  BlobStore& operator=(BlobStore&&) = default;

  /// Stores `data`, returning its id. Empty blobs are allowed.
  Result<BlobId> Put(const Bytes& data);

  /// Fetches a whole blob. Corruption if any page fails its checksum.
  Result<Bytes> Get(BlobId id) const;

  /// Fetches `length` bytes starting at `offset`; clamps at the blob end.
  /// Supports the progressive/layered transfer path, where clients read a
  /// prefix of an encoded image.
  Result<Bytes> GetRange(BlobId id, size_t offset, size_t length) const;

  /// Replaces the contents of `id` in place.
  Status Update(BlobId id, const Bytes& data);

  /// Deletes a blob; its pages return to the free list.
  Status Delete(BlobId id);

  bool Contains(BlobId id) const { return blobs_.count(id) > 0; }
  Result<size_t> SizeOf(BlobId id) const;

  size_t blob_count() const { return blobs_.size(); }
  size_t page_count() const { return pages_.size(); }
  size_t free_page_count() const { return free_pages_.size(); }
  /// Total bytes of page storage held (including free pages).
  size_t allocated_bytes() const { return pages_.size() * kPageSize; }

  /// Verifies every page checksum; returns the first corruption found.
  Status VerifyAllPages() const;

  /// Testing hook: flips one byte inside the stored pages of `id` so
  /// corruption-detection paths can be exercised.
  Status CorruptForTesting(BlobId id, size_t byte_offset);

 private:
  struct Page {
    Bytes data;      // <= kPagePayload bytes
    uint32_t crc = 0;
  };
  struct BlobMeta {
    size_t size = 0;
    std::vector<uint32_t> page_indices;
  };

  uint32_t AllocPage();
  void WritePage(uint32_t index, const uint8_t* data, size_t n);
  Result<const Page*> CheckedPage(uint32_t index) const;

  std::vector<Page> pages_;
  std::vector<uint32_t> free_pages_;
  std::unordered_map<BlobId, BlobMeta> blobs_;
  BlobId next_id_ = 1;
};

}  // namespace mmconf::storage

#endif  // MMCONF_STORAGE_BLOB_STORE_H_
