#include "storage/wal.h"

#include <algorithm>

namespace mmconf::storage {

WriteAheadLog::WriteAheadLog(const Clock* clock)
    : WriteAheadLog(clock, Options()) {}

WriteAheadLog::WriteAheadLog(const Clock* clock, Options options)
    : clock_(clock),
      options_(options),
      last_sync_at_(clock != nullptr ? clock->NowMicros() : 0) {}

uint64_t WriteAheadLog::Append(WalOp op, const Bytes& payload) {
  uint64_t lsn = next_lsn_++;
  ByteWriter body;
  body.PutU64(lsn);
  body.PutU8(static_cast<uint8_t>(op));
  body.PutRaw(payload.data(), payload.size());
  Bytes framed_body = body.Take();
  ByteWriter record;
  record.PutU32(Crc32c(framed_body));
  record.PutU32(static_cast<uint32_t>(framed_body.size()));
  record.PutRaw(framed_body.data(), framed_body.size());
  Bytes bytes = record.Take();
  pending_.insert(pending_.end(), bytes.begin(), bytes.end());
  ++pending_records_;
  MaybeGroupCommit();
  return lsn;
}

void WriteAheadLog::MaybeGroupCommit() {
  if (pending_.empty()) return;
  if (pending_.size() >= options_.group_commit_bytes) {
    Sync();
    return;
  }
  MicrosT now = clock_ != nullptr ? clock_->NowMicros() : 0;
  if (now - last_sync_at_ >= options_.group_commit_interval_micros) Sync();
}

void WriteAheadLog::Sync() {
  last_sync_at_ = clock_ != nullptr ? clock_->NowMicros() : 0;
  if (pending_.empty()) return;
  durable_.insert(durable_.end(), pending_.begin(), pending_.end());
  durable_records_ += pending_records_;
  pending_.clear();
  pending_records_ = 0;
  sync_points_.push_back({durable_.size(), durable_records_});
}

void WriteAheadLog::Truncate() {
  durable_.clear();
  pending_.clear();
  durable_records_ = 0;
  pending_records_ = 0;
  sync_points_.clear();
  next_lsn_ = 1;
  last_sync_at_ = clock_ != nullptr ? clock_->NowMicros() : 0;
}

void WriteAheadLog::RestoreDurable(Bytes log, size_t records,
                                   std::vector<WalSyncPoint> boundaries) {
  durable_ = std::move(log);
  pending_.clear();
  durable_records_ = records;
  pending_records_ = 0;
  sync_points_.clear();
  // Keep the strictly ascending prefix of candidate boundaries the
  // surviving image still covers; a crash that tore the tail or rolled
  // back to an earlier commit invalidates only the suffix.
  for (const WalSyncPoint& point : boundaries) {
    if (point.bytes > durable_.size() || point.records > records) break;
    if (!sync_points_.empty() &&
        (point.bytes <= sync_points_.back().bytes ||
         point.records <= sync_points_.back().records)) {
      break;
    }
    if (point.records == 0) break;
    sync_points_.push_back(point);
  }
  if (records > 0 &&
      (sync_points_.empty() || sync_points_.back().records < records)) {
    sync_points_.push_back({durable_.size(), records});
  }
  next_lsn_ = records + 1;
  last_sync_at_ = clock_ != nullptr ? clock_->NowMicros() : 0;
}

Bytes WriteAheadLog::FullImage() const {
  Bytes image = durable_;
  image.insert(image.end(), pending_.begin(), pending_.end());
  return image;
}

Result<WalReplayStats> WriteAheadLog::Replay(
    const Bytes& log,
    const std::function<Status(WalOp op, const Bytes& payload)>& apply) {
  WalReplayStats stats;
  size_t pos = 0;
  uint64_t expected_lsn = 1;
  while (pos < log.size()) {
    if (log.size() - pos < 8) {
      stats.clean_end = false;
      stats.stop_reason = "torn record header";
      break;
    }
    ByteReader header(log.data() + pos, 8);
    uint32_t crc = header.GetU32().value();
    uint32_t length = header.GetU32().value();
    // lsn (8) + op (1) is the minimum body; an impossible length is
    // frame damage, not a record.
    if (length < 9 || log.size() - pos - 8 < length) {
      stats.clean_end = false;
      stats.stop_reason = "torn record body";
      break;
    }
    const uint8_t* body = log.data() + pos + 8;
    if (Crc32c(body, length) != crc) {
      stats.clean_end = false;
      stats.stop_reason = "record checksum mismatch";
      break;
    }
    ByteReader r(body, length);
    uint64_t lsn = r.GetU64().value();
    uint8_t op = r.GetU8().value();
    if (lsn != expected_lsn) {
      stats.clean_end = false;
      stats.stop_reason = "lsn gap";
      break;
    }
    if (op > static_cast<uint8_t>(WalOp::kDelete)) {
      stats.clean_end = false;
      stats.stop_reason = "unknown op";
      break;
    }
    if (apply != nullptr) {
      Bytes payload(body + 9, body + length);
      MMCONF_RETURN_IF_ERROR(apply(static_cast<WalOp>(op), payload));
    }
    pos += 8 + length;
    ++expected_lsn;
    ++stats.records_applied;
    stats.bytes_scanned = pos;
  }
  return stats;
}

WalReplayStats WriteAheadLog::Scan(const Bytes& log) {
  // Scan cannot hit an apply error, so value() is safe.
  return Replay(log, nullptr).value();
}

const char* WalCrashKindToString(WalCrashKind kind) {
  switch (kind) {
    case WalCrashKind::kTornTail:
      return "torn-tail";
    case WalCrashKind::kPartialPageWrite:
      return "partial-page";
    case WalCrashKind::kFsyncLostSuffix:
      return "fsync-lost";
  }
  return "unknown";
}

WalCrashImage WalCrashInjector::Crash(const WriteAheadLog& wal,
                                      WalCrashKind kind) {
  WalCrashImage image;
  image.kind = kind;
  switch (kind) {
    case WalCrashKind::kTornTail: {
      // The durable region survives; the pending batch was mid-write,
      // so a random strict prefix of it reached the disk.
      image.log = wal.durable();
      const Bytes& pending = wal.pending();
      if (!pending.empty()) {
        size_t kept = static_cast<size_t>(rng_.NextBelow(pending.size()));
        image.log.insert(image.log.end(), pending.begin(),
                         pending.begin() + kept);
      }
      break;
    }
    case WalCrashKind::kPartialPageWrite: {
      // Everything appended so far was heading to disk, but the final
      // 4KB page only partially made it; its lost suffix reads back as
      // zeros (a real torn sector write).
      image.log = wal.FullImage();
      if (!image.log.empty()) {
        size_t last_page_begin = (image.log.size() - 1) / kPageSize * kPageSize;
        size_t page_bytes = image.log.size() - last_page_begin;
        size_t kept = static_cast<size_t>(rng_.NextBelow(page_bytes));
        std::fill(image.log.begin() + last_page_begin + kept,
                  image.log.end(), uint8_t{0});
      }
      break;
    }
    case WalCrashKind::kFsyncLostSuffix: {
      // The device acknowledged syncs it never performed: roll back to
      // a seed-chosen earlier group-commit boundary.
      const std::vector<WalSyncPoint>& points = wal.sync_points();
      if (points.empty()) {
        image.log = Bytes{};
      } else {
        size_t idx = static_cast<size_t>(rng_.NextBelow(points.size()));
        image.log.assign(wal.durable().begin(),
                         wal.durable().begin() + points[idx].bytes);
      }
      break;
    }
  }
  image.clean_records = WriteAheadLog::Scan(image.log).records_applied;
  return image;
}

WalCrashImage WalCrashInjector::CrashRandom(const WriteAheadLog& wal) {
  return Crash(wal, static_cast<WalCrashKind>(rng_.NextBelow(3)));
}

}  // namespace mmconf::storage
