#include "storage/database.h"

#include <cstdio>
#include <tuple>

namespace mmconf::storage {

bool operator==(const ObjectRef& a, const ObjectRef& b) {
  return a.type == b.type && a.id == b.id;
}

bool operator<(const ObjectRef& a, const ObjectRef& b) {
  return std::tie(a.type, a.id) < std::tie(b.type, b.id);
}

Status DatabaseServer::RegisterStandardTypes() {
  struct Spec {
    MediaTypeEntry entry;
    std::vector<FieldDef> schema;
  };
  const Spec specs[] = {
      {{"Image", "image/x-mm-raster", "read-write", "IMAGE_OBJECTS_TABLE",
        "raster images (CT, X-ray) with annotation overlays"},
       {{"FLD_QUALITY", FieldType::kInt64},
        {"FLD_TEXTS", FieldType::kString},
        {"FLD_CM", FieldType::kString},
        {"FLD_DATA", FieldType::kBlob}}},
      {{"Audio", "audio/x-mm-pcm", "read-write", "AUDIO_OBJECTS_TABLE",
        "voice fragments and consultation recordings"},
       {{"FLD_FILENAME", FieldType::kString},
        {"FLD_SECTORS", FieldType::kInt64},
        {"FLD_DATA", FieldType::kBlob}}},
      {{"Cmp", "application/x-mm-layered", "read-write", "CMP_OBJECTS_TABLE",
        "multi-layer compressed image payloads for progressive transfer"},
       {{"FLD_FILENAME", FieldType::kString},
        {"FLD_FILESIZE", FieldType::kInt64},
        {"FLD_CURRENTPOSITION", FieldType::kInt64},
        {"FLD_HEADER", FieldType::kBlob},
        {"FLD_DATA", FieldType::kBlob}}},
      {{"Text", "text/plain", "read-write", "TEXT_OBJECTS_TABLE",
        "textual notes and test results"},
       {{"FLD_TITLE", FieldType::kString},
        {"FLD_DATA", FieldType::kBlob}}},
  };
  for (const Spec& spec : specs) {
    if (catalog_.HasType(spec.entry.type_name)) continue;
    MMCONF_RETURN_IF_ERROR(catalog_.RegisterType(spec.entry, spec.schema));
  }
  return Status::OK();
}

Status DatabaseServer::RegisterType(const MediaTypeEntry& entry,
                                    std::vector<FieldDef> table_schema) {
  return catalog_.RegisterType(entry, std::move(table_schema));
}

Result<ObjectRef> DatabaseServer::Store(
    const std::string& type, std::map<std::string, FieldValue> fields,
    const std::map<std::string, Bytes>& blob_payloads) {
  MMCONF_ASSIGN_OR_RETURN(ObjectTable * table, catalog_.TableFor(type));
  std::vector<BlobId> written;
  for (const auto& [name, payload] : blob_payloads) {
    Result<BlobId> id = blobs_.Put(payload);
    if (!id.ok()) {
      for (BlobId b : written) blobs_.Delete(b).ok();
      return id.status();
    }
    written.push_back(*id);
    fields[name] = *id;
  }
  Result<ObjectId> row = table->Insert(std::move(fields));
  if (!row.ok()) {
    for (BlobId b : written) blobs_.Delete(b).ok();
    return row.status();
  }
  return ObjectRef{type, *row};
}

Result<ObjectRef> DatabaseServer::StoreWithId(
    const std::string& type, ObjectId id,
    std::map<std::string, FieldValue> fields,
    const std::map<std::string, Bytes>& blob_payloads) {
  MMCONF_ASSIGN_OR_RETURN(ObjectTable * table, catalog_.TableFor(type));
  std::vector<BlobId> written;
  for (const auto& [name, payload] : blob_payloads) {
    Result<BlobId> blob = blobs_.Put(payload);
    if (!blob.ok()) {
      for (BlobId b : written) blobs_.Delete(b).ok();
      return blob.status();
    }
    written.push_back(*blob);
    fields[name] = *blob;
  }
  ObjectRecord record;
  record.id = id;
  record.fields = std::move(fields);
  Status restored = table->RestoreRow(std::move(record));
  if (!restored.ok()) {
    for (BlobId b : written) blobs_.Delete(b).ok();
    return restored;
  }
  return ObjectRef{type, id};
}

Result<ObjectRecord> DatabaseServer::FetchRecord(const ObjectRef& ref) const {
  MMCONF_ASSIGN_OR_RETURN(const ObjectTable* table,
                          catalog_.TableFor(ref.type));
  return table->Get(ref.id);
}

Result<BlobId> DatabaseServer::BlobIdOf(const ObjectRef& ref,
                                        const std::string& blob_field) const {
  MMCONF_ASSIGN_OR_RETURN(ObjectRecord record, FetchRecord(ref));
  auto it = record.fields.find(blob_field);
  if (it == record.fields.end()) {
    return Status::NotFound("object has no column \"" + blob_field + "\"");
  }
  if (TypeOf(it->second) != FieldType::kBlob) {
    return Status::InvalidArgument("column \"" + blob_field +
                                   "\" is not a blob");
  }
  return std::get<BlobId>(it->second);
}

Result<Bytes> DatabaseServer::FetchBlob(const ObjectRef& ref,
                                        const std::string& blob_field) const {
  MMCONF_ASSIGN_OR_RETURN(BlobId id, BlobIdOf(ref, blob_field));
  return blobs_.Get(id);
}

Result<Bytes> DatabaseServer::FetchBlobRange(const ObjectRef& ref,
                                             const std::string& blob_field,
                                             size_t offset,
                                             size_t length) const {
  MMCONF_ASSIGN_OR_RETURN(BlobId id, BlobIdOf(ref, blob_field));
  return blobs_.GetRange(id, offset, length);
}

Result<size_t> DatabaseServer::BlobSize(const ObjectRef& ref,
                                        const std::string& blob_field) const {
  MMCONF_ASSIGN_OR_RETURN(BlobId id, BlobIdOf(ref, blob_field));
  return blobs_.SizeOf(id);
}

Status DatabaseServer::Modify(const ObjectRef& ref,
                              const std::map<std::string, FieldValue>& fields,
                              const std::map<std::string, Bytes>& payloads) {
  MMCONF_ASSIGN_OR_RETURN(ObjectTable * table, catalog_.TableFor(ref.type));
  for (const auto& [name, payload] : payloads) {
    MMCONF_ASSIGN_OR_RETURN(BlobId id, BlobIdOf(ref, name));
    MMCONF_RETURN_IF_ERROR(blobs_.Update(id, payload));
  }
  if (!fields.empty()) {
    MMCONF_RETURN_IF_ERROR(table->Update(ref.id, fields));
  }
  return Status::OK();
}

Status DatabaseServer::Delete(const ObjectRef& ref) {
  MMCONF_ASSIGN_OR_RETURN(ObjectTable * table, catalog_.TableFor(ref.type));
  MMCONF_ASSIGN_OR_RETURN(ObjectRecord record, table->Get(ref.id));
  for (const auto& [name, value] : record.fields) {
    if (TypeOf(value) == FieldType::kBlob) {
      MMCONF_RETURN_IF_ERROR(blobs_.Delete(std::get<BlobId>(value)));
    }
  }
  return table->Delete(ref.id);
}

namespace {

constexpr uint32_t kSnapshotMagic = 0x4d4d4442;  // "MMDB"

void WriteFieldValue(ByteWriter& w, const FieldValue& value) {
  w.PutU8(static_cast<uint8_t>(TypeOf(value)));
  switch (TypeOf(value)) {
    case FieldType::kInt64:
      w.PutI64(std::get<int64_t>(value));
      break;
    case FieldType::kString:
      w.PutString(std::get<std::string>(value));
      break;
    case FieldType::kBlob:
      w.PutU64(std::get<BlobId>(value));
      break;
  }
}

Result<FieldValue> ReadFieldValue(ByteReader& r) {
  MMCONF_ASSIGN_OR_RETURN(uint8_t tag, r.GetU8());
  switch (tag) {
    case 0: {
      MMCONF_ASSIGN_OR_RETURN(int64_t v, r.GetI64());
      return FieldValue{v};
    }
    case 1: {
      MMCONF_ASSIGN_OR_RETURN(std::string v, r.GetString());
      return FieldValue{std::move(v)};
    }
    case 2: {
      MMCONF_ASSIGN_OR_RETURN(uint64_t v, r.GetU64());
      return FieldValue{BlobId{v}};
    }
    default:
      return Status::Corruption("bad field value tag");
  }
}

}  // namespace

Bytes DatabaseServer::Serialize() const {
  ByteWriter w;
  w.PutU32(kSnapshotMagic);
  std::vector<MediaTypeEntry> types = catalog_.ListTypes();
  w.PutVarint(types.size());
  for (const MediaTypeEntry& entry : types) {
    w.PutString(entry.type_name);
    w.PutString(entry.mime);
    w.PutString(entry.access_type);
    w.PutString(entry.table_name);
    w.PutString(entry.description);
    const ObjectTable* table = catalog_.TableFor(entry.type_name).value();
    w.PutVarint(table->schema().size());
    for (const FieldDef& def : table->schema()) {
      w.PutString(def.name);
      w.PutU8(static_cast<uint8_t>(def.type));
    }
    std::vector<ObjectId> ids = table->Ids();
    w.PutVarint(ids.size());
    for (ObjectId id : ids) {
      ObjectRecord record = table->Get(id).value();
      w.PutU64(record.id);
      w.PutVarint(record.fields.size());
      for (const auto& [name, value] : record.fields) {
        w.PutString(name);
        WriteFieldValue(w, value);
        // Blob columns carry their payload inline so the snapshot is
        // self-contained.
        if (TypeOf(value) == FieldType::kBlob) {
          Result<Bytes> payload = blobs_.Get(std::get<BlobId>(value));
          w.PutBytes(payload.ok() ? *payload : Bytes{});
        }
      }
    }
  }
  Bytes body = w.Take();
  ByteWriter framed;
  framed.PutU32(Crc32c(body));
  framed.PutRaw(body.data(), body.size());
  return framed.Take();
}

Status DatabaseServer::LoadFrom(const Bytes& snapshot) {
  if (!catalog_.ListTypes().empty()) {
    return Status::FailedPrecondition(
        "LoadFrom requires a freshly constructed database");
  }
  ByteReader framing(snapshot);
  MMCONF_ASSIGN_OR_RETURN(uint32_t expected_crc, framing.GetU32());
  if (snapshot.size() < 4 ||
      Crc32c(snapshot.data() + 4, snapshot.size() - 4) != expected_crc) {
    return Status::Corruption("database snapshot failed checksum");
  }
  ByteReader r(snapshot.data() + 4, snapshot.size() - 4);
  MMCONF_ASSIGN_OR_RETURN(uint32_t magic, r.GetU32());
  if (magic != kSnapshotMagic) {
    return Status::Corruption("bad database snapshot magic");
  }
  MMCONF_ASSIGN_OR_RETURN(uint64_t num_types, r.GetVarint());
  for (uint64_t t = 0; t < num_types; ++t) {
    MediaTypeEntry entry;
    MMCONF_ASSIGN_OR_RETURN(entry.type_name, r.GetString());
    MMCONF_ASSIGN_OR_RETURN(entry.mime, r.GetString());
    MMCONF_ASSIGN_OR_RETURN(entry.access_type, r.GetString());
    MMCONF_ASSIGN_OR_RETURN(entry.table_name, r.GetString());
    MMCONF_ASSIGN_OR_RETURN(entry.description, r.GetString());
    MMCONF_ASSIGN_OR_RETURN(uint64_t num_fields, r.GetVarint());
    std::vector<FieldDef> schema;
    for (uint64_t f = 0; f < num_fields; ++f) {
      FieldDef def;
      MMCONF_ASSIGN_OR_RETURN(def.name, r.GetString());
      MMCONF_ASSIGN_OR_RETURN(uint8_t type, r.GetU8());
      if (type > 2) return Status::Corruption("bad field type");
      def.type = static_cast<FieldType>(type);
      schema.push_back(std::move(def));
    }
    MMCONF_RETURN_IF_ERROR(catalog_.RegisterType(entry, std::move(schema)));
    MMCONF_ASSIGN_OR_RETURN(ObjectTable * table,
                            catalog_.TableFor(entry.type_name));
    MMCONF_ASSIGN_OR_RETURN(uint64_t num_rows, r.GetVarint());
    for (uint64_t row = 0; row < num_rows; ++row) {
      ObjectRecord record;
      MMCONF_ASSIGN_OR_RETURN(record.id, r.GetU64());
      MMCONF_ASSIGN_OR_RETURN(uint64_t field_count, r.GetVarint());
      for (uint64_t f = 0; f < field_count; ++f) {
        MMCONF_ASSIGN_OR_RETURN(std::string name, r.GetString());
        MMCONF_ASSIGN_OR_RETURN(FieldValue value, ReadFieldValue(r));
        if (TypeOf(value) == FieldType::kBlob) {
          MMCONF_ASSIGN_OR_RETURN(Bytes payload, r.GetBytes());
          MMCONF_ASSIGN_OR_RETURN(BlobId fresh, blobs_.Put(payload));
          value = fresh;  // Remap to this store's id space.
        }
        record.fields.emplace(std::move(name), std::move(value));
      }
      MMCONF_RETURN_IF_ERROR(table->RestoreRow(std::move(record)));
    }
  }
  return Status::OK();
}

Status DatabaseServer::SaveToFile(const std::string& path) const {
  Bytes snapshot = Serialize();
  std::string tmp = path + ".tmp";
  FILE* f = std::fopen(tmp.c_str(), "wb");
  if (f == nullptr) {
    return Status::Internal("cannot open " + tmp + " for writing");
  }
  size_t written = std::fwrite(snapshot.data(), 1, snapshot.size(), f);
  int close_rc = std::fclose(f);
  if (written != snapshot.size() || close_rc != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::Internal("cannot rename " + tmp + " to " + path);
  }
  return Status::OK();
}

Status DatabaseServer::LoadFromFile(const std::string& path) {
  // An interrupted SaveToFile can leave `path`.tmp behind. It is at best
  // a torn duplicate of the snapshot we are about to read, so it must
  // never be loaded; drop it so the directory converges to one file.
  std::remove((path + ".tmp").c_str());
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::NotFound("cannot open " + path);
  }
  Bytes snapshot;
  uint8_t buffer[65536];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    snapshot.insert(snapshot.end(), buffer, buffer + n);
  }
  bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    return Status::Corruption("error reading " + path);
  }
  if (snapshot.size() < 8) {
    return Status::Corruption("snapshot " + path + " truncated to " +
                              std::to_string(snapshot.size()) + " bytes");
  }
  return LoadFrom(snapshot);
}

Result<std::vector<ObjectRef>> DatabaseServer::List(
    const std::string& type) const {
  MMCONF_ASSIGN_OR_RETURN(const ObjectTable* table, catalog_.TableFor(type));
  std::vector<ObjectRef> refs;
  for (ObjectId id : table->Ids()) refs.push_back({type, id});
  return refs;
}

}  // namespace mmconf::storage
