#include "storage/cmp_store.h"

#include <algorithm>

#include "compress/layered_codec.h"

namespace mmconf::storage {

Result<ObjectRef> CmpObjectStore::StoreStream(const std::string& filename,
                                              const Bytes& stream) {
  MMCONF_ASSIGN_OR_RETURN(compress::StreamInfo info,
                          compress::LayeredCodec::Inspect(stream));
  Bytes header(stream.begin(),
               stream.begin() + static_cast<long>(info.header_bytes));
  Bytes payload(stream.begin() + static_cast<long>(info.header_bytes),
                stream.begin() + static_cast<long>(info.total_bytes));
  // Taken before the moves below: argument evaluation order must not be
  // able to read a moved-from vector's size.
  const int64_t payload_size = static_cast<int64_t>(payload.size());
  return db_->Store(
      "Cmp",
      {{"FLD_FILENAME", filename},
       {"FLD_FILESIZE", payload_size},
       {"FLD_CURRENTPOSITION", int64_t{0}}},
      {{"FLD_HEADER", std::move(header)}, {"FLD_DATA", std::move(payload)}});
}

Result<Bytes> CmpObjectStore::FetchHeader(const ObjectRef& ref) const {
  return db_->FetchBlob(ref, "FLD_HEADER");
}

Result<size_t> CmpObjectStore::Position(const ObjectRef& ref) const {
  MMCONF_ASSIGN_OR_RETURN(ObjectRecord record, db_->FetchRecord(ref));
  auto it = record.fields.find("FLD_CURRENTPOSITION");
  if (it == record.fields.end() || TypeOf(it->second) != FieldType::kInt64) {
    return Status::InvalidArgument("object is not a Cmp record");
  }
  return static_cast<size_t>(std::get<int64_t>(it->second));
}

Result<size_t> CmpObjectStore::PayloadSize(const ObjectRef& ref) const {
  MMCONF_ASSIGN_OR_RETURN(ObjectRecord record, db_->FetchRecord(ref));
  auto it = record.fields.find("FLD_FILESIZE");
  if (it == record.fields.end() || TypeOf(it->second) != FieldType::kInt64) {
    return Status::InvalidArgument("object is not a Cmp record");
  }
  return static_cast<size_t>(std::get<int64_t>(it->second));
}

Result<bool> CmpObjectStore::Complete(const ObjectRef& ref) const {
  MMCONF_ASSIGN_OR_RETURN(size_t position, Position(ref));
  MMCONF_ASSIGN_OR_RETURN(size_t total, PayloadSize(ref));
  return position >= total;
}

Result<Bytes> CmpObjectStore::FetchNext(const ObjectRef& ref,
                                        size_t budget) {
  MMCONF_ASSIGN_OR_RETURN(size_t position, Position(ref));
  MMCONF_ASSIGN_OR_RETURN(size_t total, PayloadSize(ref));
  if (position >= total || budget == 0) return Bytes{};
  size_t take = std::min(budget, total - position);
  MMCONF_ASSIGN_OR_RETURN(Bytes chunk,
                          db_->FetchBlobRange(ref, "FLD_DATA", position,
                                              take));
  MMCONF_RETURN_IF_ERROR(db_->Modify(
      ref,
      {{"FLD_CURRENTPOSITION", static_cast<int64_t>(position + take)}},
      {}));
  return chunk;
}

Status CmpObjectStore::Reset(const ObjectRef& ref) {
  MMCONF_RETURN_IF_ERROR(Position(ref).status());  // type check
  return db_->Modify(ref, {{"FLD_CURRENTPOSITION", int64_t{0}}}, {});
}

Result<Bytes> CmpObjectStore::AssemblePrefix(const ObjectRef& ref,
                                             size_t position) const {
  MMCONF_ASSIGN_OR_RETURN(Bytes prefix, FetchHeader(ref));
  if (position > 0) {
    MMCONF_ASSIGN_OR_RETURN(Bytes payload,
                            db_->FetchBlobRange(ref, "FLD_DATA", 0,
                                                position));
    prefix.insert(prefix.end(), payload.begin(), payload.end());
  }
  return prefix;
}

Result<Bytes> CmpObjectStore::AssembleCurrent(const ObjectRef& ref) const {
  MMCONF_ASSIGN_OR_RETURN(size_t position, Position(ref));
  return AssemblePrefix(ref, position);
}

}  // namespace mmconf::storage
