#ifndef MMCONF_WORKLOAD_TIMELINE_H_
#define MMCONF_WORKLOAD_TIMELINE_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "doc/document.h"

namespace mmconf::workload {

/// Shape of a scheduled media timeline ("Media Objects in Time",
/// PAPERS.md): an ordered run of media segments, each live for one
/// interval, with the next segment previewed while the current one
/// plays.
struct TimelineOptions {
  size_t segments = 4;
  MicrosT segment_interval_micros = 2'000'000;
  /// Full content bytes per segment (cost-model input).
  size_t segment_bytes = 262'144;
};

/// Name of segment `index` in a timeline document ("seg-<index>").
std::string TimelineSegmentName(size_t index);

/// Builds the timeline document pattern: a "timeline" root holding a
/// "schedule" composite of image segments seg-0..seg-N-1 plus a "notes"
/// text leaf. Author preferences encode the schedule semantics:
///
///   seg-0       : flat first (the timeline opens on its first segment)
///   seg-i (i>0) : conditioned on seg-(i-1) — while the predecessor is
///                 live ("flat"), the successor is previewed (thumbnail
///                 first); in every other context it stays hidden first.
///
/// Advancing the timeline is a pair of viewer choices per boundary
/// (predecessor -> hidden, successor -> flat), which the generator emits
/// on schedule; the CP-net then pulls the following segment's preview in
/// by itself. The document is finalized and ready for a room.
Result<doc::MultimediaDocument> MakeTimelineDocument(
    const TimelineOptions& options);

/// Absolute virtual times at which segment k goes live, k = 0..N-1:
/// `start + k * segment_interval_micros`.
std::vector<MicrosT> TimelineBoundaries(const TimelineOptions& options,
                                        MicrosT start);

}  // namespace mmconf::workload

#endif  // MMCONF_WORKLOAD_TIMELINE_H_
