#include "workload/context.h"

namespace mmconf::workload {

const char* DeviceClassToString(DeviceClass device) {
  switch (device) {
    case DeviceClass::kWorkstation:
      return "workstation";
    case DeviceClass::kLaptop:
      return "laptop";
    case DeviceClass::kHandheld:
      return "handheld";
  }
  return "unknown";
}

const char* FocusStateToString(FocusState focus) {
  switch (focus) {
    case FocusState::kForeground:
      return "fg";
    case FocusState::kBackground:
      return "bg";
  }
  return "unknown";
}

doc::BandwidthLevel EffectiveLevel(const ClientContext& context) {
  int level = static_cast<int>(context.bandwidth);
  if (context.device == DeviceClass::kHandheld &&
      level < static_cast<int>(doc::BandwidthLevel::kMedium)) {
    level = static_cast<int>(doc::BandwidthLevel::kMedium);
  }
  if (context.focus == FocusState::kBackground &&
      level < static_cast<int>(doc::BandwidthLevel::kLow)) {
    ++level;
  }
  return static_cast<doc::BandwidthLevel>(level);
}

net::LinkSpec ContextLinkSpec(const ClientContext& context) {
  switch (context.bandwidth) {
    case doc::BandwidthLevel::kHigh:
      return {8e6, 15000};
    case doc::BandwidthLevel::kMedium:
      return {1e6, 30000};
    case doc::BandwidthLevel::kLow:
      return {128e3, 80000};
  }
  return {1e6, 30000};
}

ClientContext DrawContext(Rng& rng, double handheld_share,
                          double low_bandwidth_share) {
  ClientContext context;
  if (rng.Chance(low_bandwidth_share)) {
    context.bandwidth = doc::BandwidthLevel::kLow;
  } else if (rng.Chance(0.4)) {
    context.bandwidth = doc::BandwidthLevel::kMedium;
  } else {
    context.bandwidth = doc::BandwidthLevel::kHigh;
  }
  if (rng.Chance(handheld_share)) {
    context.device = DeviceClass::kHandheld;
  } else if (rng.Chance(0.5)) {
    context.device = DeviceClass::kLaptop;
  } else {
    context.device = DeviceClass::kWorkstation;
  }
  context.focus =
      rng.Chance(0.2) ? FocusState::kBackground : FocusState::kForeground;
  return context;
}

std::string ContextToString(const ClientContext& context) {
  std::string out = "bw=";
  out += doc::BandwidthLevelToString(context.bandwidth);
  out += " dev=";
  out += DeviceClassToString(context.device);
  out += " focus=";
  out += FocusStateToString(context.focus);
  return out;
}

}  // namespace mmconf::workload
