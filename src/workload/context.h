#ifndef MMCONF_WORKLOAD_CONTEXT_H_
#define MMCONF_WORKLOAD_CONTEXT_H_

#include <string>

#include "common/rng.h"
#include "doc/tuning.h"
#include "net/network.h"

namespace mmconf::workload {

/// Hardware class a conference client runs on. CWcollab's context-aware
/// collaboration treats the client device as a first-class signal; here
/// it caps how rich a presentation the client can usefully receive.
enum class DeviceClass : uint8_t {
  kWorkstation = 0,  ///< full-resolution display, no cap
  kLaptop = 1,       ///< no cap, slower last mile is typical
  kHandheld = 2,     ///< small screen: full-cost renditions are wasted
};

/// Whether the conference window currently has the user's attention.
/// A backgrounded client is deliberately degraded one level — its wire
/// budget is better spent on partners who are looking.
enum class FocusState : uint8_t {
  kForeground = 0,
  kBackground = 1,
};

const char* DeviceClassToString(DeviceClass device);
const char* FocusStateToString(FocusState focus);

/// Per-client context vector: measured bandwidth class, device class,
/// and focus. The generator attaches one to every join and occasionally
/// re-draws it mid-session (focus flips, a client walks out of WiFi
/// range); the chaos driver folds it into CP-net evidence by pinning the
/// document's bandwidth-tuning variable at EffectiveLevel().
struct ClientContext {
  doc::BandwidthLevel bandwidth = doc::BandwidthLevel::kHigh;
  DeviceClass device = DeviceClass::kWorkstation;
  FocusState focus = FocusState::kForeground;

  bool operator==(const ClientContext&) const = default;
};

/// Collapses the context vector into the single tuning level the CP-net
/// conditions on: start from the measured bandwidth class, cap a
/// handheld at kMedium (full renditions are wasted on it), and degrade a
/// backgrounded client one further level.
doc::BandwidthLevel EffectiveLevel(const ClientContext& context);

/// Last-mile link a client of this context connects over (the bandwidth
/// class decides rate and latency; device/focus only shape evidence).
net::LinkSpec ContextLinkSpec(const ClientContext& context);

/// Draws a context from the scenario's population mix: mostly
/// workstations on good links for consults, a long handheld/low tail
/// for lectures. `handheld_share` and `low_bandwidth_share` are
/// probabilities in [0, 1].
ClientContext DrawContext(Rng& rng, double handheld_share,
                          double low_bandwidth_share);

/// Deterministic one-line rendering ("bw=high dev=laptop focus=fg"),
/// used by the trace text the determinism tests compare byte-for-byte.
std::string ContextToString(const ClientContext& context);

}  // namespace mmconf::workload

#endif  // MMCONF_WORKLOAD_CONTEXT_H_
