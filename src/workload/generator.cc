#include "workload/generator.h"

#include <algorithm>
#include <utility>

#include "server/events.h"

namespace mmconf::workload {
namespace {

std::string ViewerName(int slot) { return "u" + std::to_string(slot); }

/// Medical-record components with their choice domains ("" releases the
/// viewer's earlier choice — rooms must survive that too).
struct ChoiceDomain {
  const char* component;
  std::vector<const char*> presentations;
};

const std::vector<ChoiceDomain>& MedicalChoices() {
  static const std::vector<ChoiceDomain> kChoices = {
      {"CT", {"flat", "segmented", "thumbnail", "icon", "hidden", ""}},
      {"XRay", {"flat", "segmented", "thumbnail", "icon", "hidden", ""}},
      {"ExpertVoice", {"audio", "summary", "hidden", ""}},
      {"WardNotes", {"text", "hidden", ""}},
  };
  return kChoices;
}

}  // namespace

const char* ScenarioMixToString(ScenarioMix mix) {
  switch (mix) {
    case ScenarioMix::kLecture:
      return "lecture";
    case ScenarioMix::kConsult:
      return "consult";
    case ScenarioMix::kBrowse:
      return "browse";
    case ScenarioMix::kMixed:
      return "mixed";
  }
  return "unknown";
}

Result<ScenarioMix> ScenarioMixFromString(const std::string& name) {
  if (name == "lecture") return ScenarioMix::kLecture;
  if (name == "consult") return ScenarioMix::kConsult;
  if (name == "browse") return ScenarioMix::kBrowse;
  if (name == "mixed") return ScenarioMix::kMixed;
  return Status::InvalidArgument("unknown scenario mix \"" + name + "\"");
}

WorkloadGenerator::WorkloadGenerator(uint64_t seed, GeneratorOptions options)
    : seed_(seed), options_(std::move(options)), rng_(seed) {
  if (options_.rooms == 0) options_.rooms = 1;
  if (options_.clients < 2) options_.clients = 2;
}

MicrosT WorkloadGenerator::NextActivityAt(MicrosT t, MicrosT base_gap_micros) {
  // Parabolic diurnal curve (no libm, so the trace is bit-deterministic
  // everywhere): modulation peaks at 1 + amplitude mid-run and falls to
  // 1 at the edges; a busier instant means a shorter gap to the next
  // activity round.
  double x = static_cast<double>(t) /
             static_cast<double>(options_.duration_micros);
  if (x < 0) x = 0;
  if (x > 1) x = 1;
  double modulation = 1.0 + options_.diurnal_amplitude * 4.0 * x * (1.0 - x);
  double jitter = rng_.Uniform(0.75, 1.25);
  MicrosT gap = static_cast<MicrosT>(
      static_cast<double>(base_gap_micros) * jitter / modulation);
  if (gap < 1000) gap = 1000;
  return t + gap;
}

void WorkloadGenerator::GenerateLecture(WorkloadTrace& trace,
                                        const std::string& room,
                                        MicrosT open_at,
                                        std::vector<int> slots) {
  // slots[0] lectures first; slots[1] takes over at the mid-run handoff.
  const int speaker = slots[0];
  const int next_speaker = slots.size() > 1 ? slots[1] : slots[0];
  trace.events.push_back({open_at, EventKind::kOpenRoom, room, "", "", "",
                          -1, 1, options_.timeline.segments, {}});
  ClientContext podium{doc::BandwidthLevel::kHigh, DeviceClass::kWorkstation,
                       FocusState::kForeground};
  trace.events.push_back({open_at, EventKind::kJoin, room,
                          ViewerName(speaker), "", "", speaker, 0, 0,
                          podium});

  // Flash crowd: the audience piles in within a 300 ms window of the
  // announced start.
  for (size_t i = 1; i < slots.size(); ++i) {
    MicrosT join_at = open_at + rng_.UniformInt(0, 300'000);
    ClientContext context = DrawContext(rng_, options_.handheld_share,
                                        options_.low_bandwidth_share);
    trace.events.push_back({join_at, EventKind::kJoin, room,
                            ViewerName(slots[i]), "", "", slots[i], 0, 0,
                            context});
  }

  // Broadcast fan-out for the view-only masses: host once the room is
  // up, then admit aggregated viewers in two waves (their own flash
  // crowd).
  size_t audience = 40 * slots.size();
  trace.events.push_back({open_at + 200'000, EventKind::kHostBroadcast,
                          room, "", "", "", -1, audience, 0, {}});
  for (int wave = 0; wave < 2; ++wave) {
    ClientContext crowd = DrawContext(rng_, options_.handheld_share,
                                      options_.low_bandwidth_share);
    trace.events.push_back({open_at + 250'000 + wave * 400'000,
                            EventKind::kAdmitViewers, room, "", "", "", -1,
                            audience / 2, 0, crowd});
  }

  // Scheduled media timeline: at every boundary the current speaker
  // advances the schedule (predecessor hidden, successor live), streams
  // the segment's media to a sampled listener, and pushes a composed
  // broadcast frame.
  std::vector<MicrosT> boundaries =
      TimelineBoundaries(options_.timeline, open_at + 500'000);
  size_t handoff_at = boundaries.size() / 2;
  for (size_t k = 0; k < boundaries.size(); ++k) {
    const int presenter = k < handoff_at ? speaker : next_speaker;
    const std::string presenter_name = ViewerName(presenter);
    MicrosT at = boundaries[k];
    if (k == handoff_at) {
      // Speaker handoff: the outgoing speaker announces it, drops to
      // background (their context evidence degrades), and the incoming
      // speaker drives from here on.
      trace.events.push_back({at, EventKind::kBroadcast, room,
                              ViewerName(speaker), "", "handoff", speaker,
                              2048, 0, {}});
      ClientContext parked = podium;
      parked.focus = FocusState::kBackground;
      trace.events.push_back({at, EventKind::kSetContext, room,
                              ViewerName(speaker), "", "", speaker, 0, 0,
                              parked});
    }
    if (k > 0) {
      trace.events.push_back({at, EventKind::kChoice, room, presenter_name,
                              TimelineSegmentName(k - 1), "hidden", presenter,
                              0, 0, {}});
    }
    trace.events.push_back({at, EventKind::kChoice, room, presenter_name,
                            TimelineSegmentName(k), "flat", presenter, 0, 0,
                            {}});
    if (slots.size() > 2) {
      size_t listener = 2 + rng_.NextBelow(slots.size() - 2);
      trace.events.push_back({at + 50'000, EventKind::kOpenStream, room,
                              ViewerName(slots[listener]), "", "",
                              slots[listener], 1 + rng_.NextBelow(2),
                              200'000, {}});
    }
    trace.events.push_back({at + 100'000, EventKind::kPushFrame, room, "",
                            "", "", -1, 0, 0, {}});
  }

  // Live migration mid-lecture, broadcast and streams carried along.
  if (options_.federation_nodes > 1 && boundaries.size() > 1) {
    MicrosT at = (boundaries[0] + boundaries[boundaries.size() - 1]) / 2 +
                 150'000;
    trace.events.push_back(
        {at, EventKind::kMigrateRoom, room, "", "", "", -1,
         1 + rng_.NextBelow(options_.federation_nodes - 1), 0, {}});
  }

  // Mass leave at the end; a fraction linger for Q&A and a few of the
  // leavers rejoin for it.
  MicrosT lecture_end = boundaries.back() +
                        options_.timeline.segment_interval_micros;
  std::vector<int> rejoiners;
  for (size_t i = 2; i < slots.size(); ++i) {
    if (rng_.Chance(0.7)) {
      MicrosT leave_at = lecture_end + rng_.UniformInt(0, 200'000);
      trace.events.push_back({leave_at, EventKind::kLeave, room,
                              ViewerName(slots[i]), "", "", slots[i], 0, 0,
                              {}});
      if (rng_.Chance(0.25)) rejoiners.push_back(slots[i]);
    }
  }
  for (int slot : rejoiners) {
    MicrosT rejoin_at = lecture_end + 400'000 + rng_.UniformInt(0, 300'000);
    ClientContext context = DrawContext(rng_, options_.handheld_share,
                                        options_.low_bandwidth_share);
    trace.events.push_back({rejoin_at, EventKind::kJoin, room,
                            ViewerName(slot), "", "", slot, 0, 0, context});
  }
  trace.events.push_back({lecture_end + 800'000, EventKind::kBroadcast, room,
                          ViewerName(next_speaker), "", "qna", next_speaker,
                          4096, 0, {}});
}

void WorkloadGenerator::GenerateConsult(WorkloadTrace& trace,
                                        const std::string& room,
                                        MicrosT open_at,
                                        std::vector<int> slots) {
  trace.events.push_back(
      {open_at, EventKind::kOpenRoom, room, "", "", "", -1, 0, 0, {}});
  for (size_t i = 0; i < slots.size(); ++i) {
    MicrosT join_at = open_at + rng_.UniformInt(0, 500'000);
    ClientContext context = DrawContext(rng_, options_.handheld_share,
                                        options_.low_bandwidth_share);
    trace.events.push_back({join_at, EventKind::kJoin, room,
                            ViewerName(slots[i]), "", "", slots[i], 0, 0,
                            context});
  }

  MicrosT consult_end = open_at + options_.duration_micros * 3 / 4;
  MicrosT stream_at = (open_at + consult_end) / 2;
  MicrosT migrate_at = open_at + (consult_end - open_at) * 3 / 5;
  bool streamed = false;
  bool migrated = options_.federation_nodes <= 1;
  // One partner steps out mid-consult and returns later.
  int absent_slot = slots.size() > 2 ? slots.back() : -1;
  MicrosT absent_from = open_at + (consult_end - open_at) / 3;
  MicrosT absent_until = absent_from + (consult_end - open_at) / 4;
  if (absent_slot >= 0) {
    trace.events.push_back({absent_from, EventKind::kLeave, room,
                            ViewerName(absent_slot), "", "", absent_slot, 0,
                            0, {}});
    ClientContext context = DrawContext(rng_, options_.handheld_share,
                                        options_.low_bandwidth_share);
    trace.events.push_back({absent_until, EventKind::kJoin, room,
                            ViewerName(absent_slot), "", "", absent_slot, 0,
                            0, context});
  }

  MicrosT t = open_at + 700'000;
  while (t < consult_end) {
    // Pick an actor present at time t.
    int actor = slots[rng_.NextBelow(slots.size())];
    if (actor == absent_slot && t >= absent_from && t < absent_until) {
      actor = slots[0];
    }
    const std::string actor_name = ViewerName(actor);
    uint64_t dice = rng_.NextBelow(10);
    if (dice < 5) {
      const ChoiceDomain& domain =
          MedicalChoices()[rng_.NextBelow(MedicalChoices().size())];
      const char* presentation =
          domain.presentations[rng_.NextBelow(domain.presentations.size())];
      trace.events.push_back({t, EventKind::kChoice, room, actor_name,
                              domain.component, presentation, actor, 0, 0,
                              {}});
    } else if (dice < 8) {
      static const server::ActionType kOps[] = {
          server::ActionType::kAnnotateText, server::ActionType::kZoom,
          server::ActionType::kSegmentOp};
      server::ActionType op = kOps[rng_.NextBelow(3)];
      const char* target = rng_.Chance(0.5) ? "CT" : "XRay";
      trace.events.push_back({t, EventKind::kOperation, room, actor_name,
                              target, "", actor, static_cast<uint64_t>(op),
                              rng_.Chance(0.3) ? 1u : 0u, {}});
    } else if (dice < 9) {
      trace.events.push_back({t, EventKind::kBroadcast, room, actor_name,
                              "", "finding", actor,
                              512 + rng_.NextBelow(4096), 0, {}});
    } else {
      ClientContext context = DrawContext(rng_, options_.handheld_share,
                                          options_.low_bandwidth_share);
      trace.events.push_back({t, EventKind::kSetContext, room, actor_name,
                              "", "", actor, 0, 0, context});
    }
    if (!streamed && t >= stream_at) {
      streamed = true;
      trace.events.push_back({t + 20'000, EventKind::kOpenStream, room,
                              ViewerName(slots[0]), "", "", slots[0], 2,
                              250'000, {}});
    }
    if (!migrated && t >= migrate_at) {
      migrated = true;
      trace.events.push_back(
          {t + 40'000, EventKind::kMigrateRoom, room, "", "", "", -1,
           1 + rng_.NextBelow(options_.federation_nodes - 1), 0, {}});
    }
    t = NextActivityAt(t, 600'000);
  }
}

void WorkloadGenerator::GenerateBrowse(WorkloadTrace& trace,
                                       const std::string& room,
                                       MicrosT open_at, int slot) {
  trace.events.push_back(
      {open_at, EventKind::kOpenRoom, room, "", "", "", -1, 0, 0, {}});
  ClientContext context = DrawContext(rng_, options_.handheld_share,
                                      options_.low_bandwidth_share);
  const std::string viewer = ViewerName(slot);
  trace.events.push_back({open_at + 30'000, EventKind::kJoin, room, viewer,
                          "", "", slot, 0, 0, context});
  MicrosT t = open_at + 300'000;
  size_t flips = 1 + rng_.NextBelow(3);
  for (size_t i = 0; i < flips; ++i) {
    const ChoiceDomain& domain =
        MedicalChoices()[rng_.NextBelow(MedicalChoices().size())];
    const char* presentation =
        domain.presentations[rng_.NextBelow(domain.presentations.size() - 1)];
    trace.events.push_back({t, EventKind::kChoice, room, viewer,
                            domain.component, presentation, slot, 0, 0, {}});
    t = NextActivityAt(t, 400'000);
  }
  if (rng_.Chance(0.5)) {
    trace.events.push_back({t, EventKind::kOpenStream, room, viewer, "", "",
                            slot, 1, 200'000, {}});
    t += 600'000;
  }
  // A browse session ends: the viewer leaves and the room closes (the
  // open/close churn the placement and storage tiers must absorb).
  trace.events.push_back(
      {t, EventKind::kLeave, room, viewer, "", "", slot, 0, 0, {}});
  trace.events.push_back(
      {t + 50'000, EventKind::kCloseRoom, room, "", "", "", -1, 0, 0, {}});
}

void WorkloadGenerator::GenerateFaultSchedule(WorkloadTrace& trace) {
  if (options_.inject_net_faults) {
    size_t flaps = options_.clients / 3 + 1;
    for (size_t i = 0; i < flaps; ++i) {
      int slot = static_cast<int>(rng_.NextBelow(options_.clients));
      MicrosT at = rng_.UniformInt(options_.duration_micros / 10,
                                   options_.duration_micros * 4 / 5);
      uint64_t outage = 120'000 + rng_.NextBelow(280'000);
      trace.events.push_back({at, EventKind::kLinkFlap, "", "", "", "", slot,
                              outage, 0, {}});
    }
  }
  if (options_.inject_storage_faults && options_.storage_shards > 0) {
    for (MicrosT frac : {options_.duration_micros * 2 / 5,
                         options_.duration_micros * 3 / 4}) {
      trace.events.push_back({frac, EventKind::kShardCrash, "", "", "", "",
                              -1, rng_.NextBelow(options_.storage_shards),
                              rng_.NextBelow(3), {}});
    }
  }
  // Drawn last so traces generated with the flag off stay byte-identical
  // to pre-replication ones (the rng consumes nothing extra).
  if (options_.inject_node_loss && options_.storage_shards > 0) {
    trace.events.push_back({options_.duration_micros * 3 / 5,
                            EventKind::kNodeLoss, "", "", "", "", -1,
                            rng_.NextBelow(options_.storage_shards), 0, {}});
  }
}

WorkloadTrace WorkloadGenerator::Generate() {
  WorkloadTrace trace;
  trace.seed = seed_;
  trace.scenario = ScenarioMixToString(options_.mix);

  auto mix_of = [&](size_t room_index) {
    if (options_.mix != ScenarioMix::kMixed) return options_.mix;
    switch (room_index % 3) {
      case 0:
        return ScenarioMix::kLecture;
      case 1:
        return ScenarioMix::kConsult;
      default:
        return ScenarioMix::kBrowse;
    }
  };

  for (size_t r = 0; r < options_.rooms; ++r) {
    ScenarioMix mix = mix_of(r);
    std::string room = std::string(ScenarioMixToString(mix)) + "-" +
                       std::to_string(r);
    switch (mix) {
      case ScenarioMix::kLecture: {
        // The whole population attends; slot order decides the podium.
        std::vector<int> slots;
        for (size_t i = 0; i < options_.clients; ++i) {
          slots.push_back(static_cast<int>(i));
        }
        rng_.Shuffle(slots);
        MicrosT open_at = options_.duration_micros / 8 +
                          static_cast<MicrosT>(r) * 250'000;
        GenerateLecture(trace, room, open_at, std::move(slots));
        break;
      }
      case ScenarioMix::kConsult: {
        size_t members = 2 + rng_.NextBelow(3);
        std::vector<int> slots;
        for (size_t i = 0; i < members; ++i) {
          slots.push_back(static_cast<int>(
              (r * members + i) % options_.clients));
        }
        MicrosT open_at = options_.duration_micros / 12 +
                          static_cast<MicrosT>(r) * 400'000;
        GenerateConsult(trace, room, open_at, std::move(slots));
        break;
      }
      case ScenarioMix::kBrowse: {
        int slot = static_cast<int>(rng_.NextBelow(options_.clients));
        MicrosT open_at = options_.duration_micros / 10 +
                          static_cast<MicrosT>(r) *
                              (options_.duration_micros /
                               (options_.rooms + 1));
        GenerateBrowse(trace, room, open_at, slot);
        break;
      }
      case ScenarioMix::kMixed:
        break;  // unreachable: mix_of never returns kMixed
    }
  }
  GenerateFaultSchedule(trace);
  trace.SortByTime();
  return trace;
}

}  // namespace mmconf::workload
