#include "workload/chaos.h"

#include <algorithm>
#include <utility>

#include "compress/layered_codec.h"
#include "doc/builder.h"
#include "doc/tuning.h"
#include "media/synthetic.h"
#include "server/events.h"
#include "server/room.h"
#include "storage/database.h"
#include "workload/timeline.h"

namespace mmconf::workload {
namespace {

/// Name of the tuning variable AddBandwidthTuning appends; contexts pin
/// it as evidence through the normal choice path.
constexpr char kTuningVar[] = "net";

Bytes EncodeStreamObject(Rng& rng) {
  media::Image image = media::MakePhantomCt({64, 64, 4, 2.0}, rng);
  compress::LayeredCodec codec;
  return codec.Encode(image).value();
}

}  // namespace

ChaosDriver::ChaosDriver(const ChaosOptions& options,
                         obs::MetricsRegistry* metrics)
    : options_(options),
      metrics_(metrics != nullptr ? metrics : &owned_metrics_) {
  if (options_.federation_nodes == 0) options_.federation_nodes = 1;
  if (options_.storage_shards == 0) options_.storage_shards = 1;
}

ChaosDriver::~ChaosDriver() = default;

Result<doc::MultimediaDocument> ChaosDriver::BuildDocument(
    uint64_t kind, uint64_t segments) {
  Result<doc::MultimediaDocument> built =
      kind == 1 ? MakeTimelineDocument(
                      {segments > 0 ? static_cast<size_t>(segments) : 4})
                : doc::MakeMedicalRecordDocument();
  if (!built.ok()) return built.status();
  doc::MultimediaDocument document = std::move(built).value();
  Result<cpnet::VarId> tuned = doc::AddBandwidthTuning(document, kTuningVar);
  if (!tuned.ok()) return tuned.status();
  return document;
}

Status ChaosDriver::ApplyContext(int slot, const ClientContext& context) {
  net::NodeId node = client_nodes_.at(slot);
  net::LinkSpec spec = ContextLinkSpec(context);
  net::FaultSpec fault;
  fault.drop_probability = options_.drop_probability;
  fault.jitter_micros = options_.jitter_micros;
  auto flaps = client_flaps_.find(slot);
  if (flaps != client_flaps_.end()) fault.flaps = flaps->second;
  for (size_t i = 0; i < tier_->num_nodes(); ++i) {
    net::NodeId server = tier_->node_net(i);
    MMCONF_RETURN_IF_ERROR(network_->SetLink(node, server, spec));
    MMCONF_RETURN_IF_ERROR(network_->SetLink(server, node, spec));
    MMCONF_RETURN_IF_ERROR(network_->SetDuplexFault(node, server, fault));
  }
  client_contexts_[slot] = context;
  return Status::OK();
}

Status ChaosDriver::EnsureClient(int slot, const ClientContext& context) {
  auto found = client_nodes_.find(slot);
  if (found == client_nodes_.end()) {
    net::NodeId node =
        network_->AddNode("client-" + std::to_string(slot));
    MMCONF_RETURN_IF_ERROR(
        tier_->ConnectClient(node, ContextLinkSpec(context)));
    client_nodes_[slot] = node;
    return ApplyContext(slot, context);
  }
  if (!(client_contexts_[slot] == context)) {
    return ApplyContext(slot, context);
  }
  return Status::OK();
}

Status ChaosDriver::PinEvidence(const std::string& room,
                                const std::string& viewer,
                                const ClientContext& context) {
  Result<server::ReconfigResult> pinned = tier_->SubmitChoice(
      room, viewer, kTuningVar,
      doc::BandwidthLevelToString(EffectiveLevel(context)));
  return pinned.ok() ? Status::OK() : pinned.status();
}

void ChaosDriver::SkipEvent(const WorkloadEvent& event, const Status& status,
                            ChaosReport& report) {
  ++report.events_skipped;
  if (report.skip_samples.size() < options_.max_skip_samples) {
    report.skip_samples.push_back(event.ToText() + " -> " +
                                  status.ToString());
  }
}

Status ChaosDriver::SettleStack() {
  while (true) {
    MMCONF_ASSIGN_OR_RETURN(std::vector<net::Delivery> drained,
                            director_->Settle());
    if (repl_ == nullptr) return Status::OK();
    size_t consumed = 0;
    for (const net::Delivery& delivery : drained) {
      if (repl_->HandleDelivery(delivery)) ++consumed;
    }
    MMCONF_ASSIGN_OR_RETURN(storage::ShipReport shipped, repl_->Ship());
    if (consumed == 0 && shipped.batches == 0 && shipped.snapshots == 0) {
      return Status::OK();
    }
  }
}

Status ChaosDriver::RunEvent(const WorkloadEvent& event,
                             ChaosReport& report) {
  switch (event.kind) {
    case EventKind::kOpenRoom: {
      MMCONF_ASSIGN_OR_RETURN(doc::MultimediaDocument document,
                              BuildDocument(event.a, event.b));
      // Through the database on purpose: the document BLOB lands on a
      // WAL-backed shard, so shard crashes have state worth damaging.
      MMCONF_ASSIGN_OR_RETURN(
          storage::ObjectRef ref,
          tier_->node(0)->StoreDocument(document, event.room));
      MMCONF_ASSIGN_OR_RETURN(server::Room * opened,
                              tier_->OpenRoom(event.room, ref));
      (void)opened;
      rooms_[event.room] = {event.a, event.b, false, true};
      ++report.rooms_opened;
      return Status::OK();
    }
    case EventKind::kCloseRoom: {
      // Archive the minutes first (more durable-tier traffic), then tear
      // down broadcast and room.
      Result<size_t> owner = tier_->NodeOf(event.room);
      if (owner.ok()) {
        tier_->node(owner.value())->ArchiveRoomLog(event.room).ok();
      }
      auto info = rooms_.find(event.room);
      if (info != rooms_.end() && info->second.hosted) {
        director_->CloseBroadcast(event.room).ok();
        info->second.hosted = false;
      }
      MMCONF_RETURN_IF_ERROR(tier_->CloseRoom(event.room));
      if (info != rooms_.end()) info->second.open = false;
      ++report.rooms_closed;
      return Status::OK();
    }
    case EventKind::kJoin: {
      MMCONF_RETURN_IF_ERROR(EnsureClient(event.client, event.context));
      Result<MicrosT> joined = tier_->Join(
          event.room, {event.viewer, client_nodes_.at(event.client)});
      if (!joined.ok()) return joined.status();
      return PinEvidence(event.room, event.viewer, event.context);
    }
    case EventKind::kLeave:
      return tier_->Leave(event.room, event.viewer);
    case EventKind::kSetContext: {
      MMCONF_RETURN_IF_ERROR(EnsureClient(event.client, event.context));
      MMCONF_ASSIGN_OR_RETURN(server::Room * room,
                              tier_->GetRoom(event.room));
      if (!room->HasMember(event.viewer)) {
        return Status::NotFound(event.viewer + " not in " + event.room);
      }
      return PinEvidence(event.room, event.viewer, event.context);
    }
    case EventKind::kChoice: {
      Result<server::ReconfigResult> applied =
          tier_->SubmitChoice(event.room, event.viewer, event.component,
                              event.presentation);
      return applied.ok() ? Status::OK() : applied.status();
    }
    case EventKind::kOperation: {
      server::UserAction action;
      action.type = static_cast<server::ActionType>(event.a);
      action.viewer = event.viewer;
      action.component = event.component;
      action.text = "chaos note";
      action.region = {8, 8, 48, 48};
      action.num_segments = 4;
      action.timestamp = clock_.NowMicros();
      Result<server::ReconfigResult> applied =
          tier_->ApplyOperation(event.room, action, event.b != 0);
      return applied.ok() ? Status::OK() : applied.status();
    }
    case EventKind::kBroadcast: {
      std::string tag = "chaos:" + (event.presentation.empty()
                                        ? std::string("note")
                                        : event.presentation);
      Result<MicrosT> sent =
          tier_->Broadcast(event.room, tag, event.a);
      return sent.ok() ? Status::OK() : sent.status();
    }
    case EventKind::kOpenStream: {
      MMCONF_ASSIGN_OR_RETURN(size_t owner, tier_->NodeOf(event.room));
      size_t count = std::max<uint64_t>(1, event.a);
      count = std::min(count, media_pool_.size());
      std::vector<Bytes> objects(media_pool_.begin(),
                                 media_pool_.begin() +
                                     static_cast<ptrdiff_t>(count));
      stream::StreamOptions options;
      options.interval_micros = event.b > 0
                                    ? static_cast<MicrosT>(event.b)
                                    : 200'000;
      options.start_deadline_micros =
          clock_.NowMicros() + options.interval_micros;
      Result<stream::StreamId> opened = tier_->node(owner)->OpenStream(
          event.room, event.viewer, objects, options);
      if (!opened.ok()) return opened.status();
      ++report.streams_opened;
      return Status::OK();
    }
    case EventKind::kMigrateRoom: {
      if (tier_->num_nodes() < 2) return Status::OK();
      MMCONF_ASSIGN_OR_RETURN(size_t owner, tier_->NodeOf(event.room));
      size_t target =
          (owner + std::max<uint64_t>(1, event.a)) % tier_->num_nodes();
      if (target == owner) target = (owner + 1) % tier_->num_nodes();
      auto info = rooms_.find(event.room);
      bool hosted = info != rooms_.end() && info->second.hosted;
      Result<federation::MigrationReport> moved =
          hosted ? director_->MigrateBroadcast(event.room, target)
                 : tier_->MigrateRoom(event.room, target);
      if (moved.ok()) {
        ++report.migrations;
      } else {
        // An aborted migration (e.g. the target flapped mid-transfer)
        // leaves the room intact on the source — tolerated, counted.
        ++report.migrations_failed;
      }
      return Status::OK();
    }
    case EventKind::kHostBroadcast: {
      Result<fanout::BroadcastSession*> hosted =
          director_->HostBroadcast(event.room, event.a);
      if (!hosted.ok()) return hosted.status();
      auto info = rooms_.find(event.room);
      if (info != rooms_.end()) info->second.hosted = true;
      // Give the mosaic pixels to compose: the first two image
      // components of the room's document kind.
      const char* first = "CT";
      const char* second = "XRay";
      std::string seg0 = TimelineSegmentName(0);
      std::string seg1 = TimelineSegmentName(1);
      if (info != rooms_.end() && info->second.doc_kind == 1) {
        first = seg0.c_str();
        second = info->second.segments > 1 ? seg1.c_str() : nullptr;
      }
      director_
          ->RegisterImage(event.room, first,
                          media::MakePhantomCt({64, 64, 4, 2.0}, media_rng_))
          .ok();
      if (second != nullptr) {
        director_
            ->RegisterImage(
                event.room, second,
                media::MakePhantomCt({64, 64, 4, 2.0}, media_rng_))
            .ok();
      }
      return Status::OK();
    }
    case EventKind::kAdmitViewers:
      return director_->AdmitViewers(event.room, event.a,
                                     EffectiveLevel(event.context));
    case EventKind::kPushFrame: {
      MMCONF_RETURN_IF_ERROR(director_->PushFrame(event.room));
      ++report.broadcast_frames;
      return Status::OK();
    }
    case EventKind::kLinkFlap:
      // Installed up front as FaultSpec windows (see Run): the network
      // evaluates them at Send time, so they bite even though Settle()
      // may advance virtual time in large steps.
      return Status::OK();
    case EventKind::kShardCrash: {
      size_t shard = event.a % db_->num_shards();
      auto kind = static_cast<storage::WalCrashKind>(event.b % 3);
      storage::WalCrashImage image =
          injector_->Crash(*db_->shard_wal(shard), kind);
      // Control: a fresh server holding exactly what recovery should
      // reproduce. With replication on, the shard's WAL only covers the
      // current epoch, so the control replays on top of the checkpoint.
      storage::DatabaseServer fresh;
      if (repl_ != nullptr && !repl_->checkpoint(shard).empty()) {
        MMCONF_RETURN_IF_ERROR(fresh.LoadFrom(repl_->checkpoint(shard)));
      }
      Result<storage::WalReplayStats> replayed =
          storage::ShardedDatabaseServer::ReplayLogInto(image.log, &fresh);
      Result<storage::WalReplayStats> recovered =
          repl_ != nullptr ? repl_->RecoverPrimary(shard, image.log)
                           : db_->RecoverShardFromLog(shard, image.log);
      // Recovery re-pushes registrations the damaged image lost (schema
      // is facade-global bootstrap metadata); the control gets the same
      // bootstrap so byte-exactness is judged on equal terms.
      MMCONF_RETURN_IF_ERROR(db_->HealSchema(&fresh, nullptr));
      ++report.shard_crashes;
      std::string detail;
      if (!replayed.ok()) {
        detail = "control replay: " + replayed.status().ToString();
      } else if (!recovered.ok()) {
        detail = "recovery: " + recovered.status().ToString();
      } else if (recovered.value().records_applied != image.clean_records) {
        detail = "replayed " +
                 std::to_string(recovered.value().records_applied) + " of " +
                 std::to_string(image.clean_records) + " clean records";
      } else if (fresh.Serialize() != db_->shard(shard)->Serialize()) {
        detail = "serialized image differs from control";
      } else if (!db_->shard(shard)->blob_store().VerifyAllPages().ok()) {
        detail = "blob page checksum failed";
      }
      if (!detail.empty()) {
        report.invariants.storage_recovery_exact = false;
        report.invariants.violations.push_back(
            "shard " + std::to_string(shard) + " " +
            storage::WalCrashKindToString(kind) +
            " crash did not recover byte-exactly (" + detail + ")");
      }
      // Recovery may have rolled the shard back to the clean prefix:
      // cached reads from the rolled-back tail would be stale.
      if (cache_ != nullptr) {
        cache_->InvalidateShard(
            shard, [this](const storage::ObjectRef& ref) {
              return db_->ShardOf(ref);
            });
      }
      return Status::OK();
    }
    case EventKind::kNodeLoss: {
      ++report.node_losses;
      // Without replication there is no follower to promote; the event
      // is a no-op by design (the generator gates it the same way).
      if (repl_ == nullptr) return Status::OK();
      size_t shard = event.a % db_->num_shards();
      // Drain the wire first: the zero-loss contract covers writes the
      // primary group-committed AND a follower acknowledged. Settling to
      // quiescence makes those two sets equal, so the invariant below
      // can demand byte-exactness rather than a bounded gap.
      MMCONF_RETURN_IF_ERROR(SettleStack());
      // Control: what a never-crashed replica holds — the checkpoint
      // image plus the primary's durable (group-committed) log.
      storage::DatabaseServer control;
      if (!repl_->checkpoint(shard).empty()) {
        MMCONF_RETURN_IF_ERROR(control.LoadFrom(repl_->checkpoint(shard)));
      }
      const storage::WriteAheadLog* wal = db_->shard_wal(shard);
      size_t acked_records = wal->durable_records();
      Result<storage::WalReplayStats> control_replay =
          storage::ShardedDatabaseServer::ReplayLogInto(wal->durable(),
                                                        &control);
      Result<storage::PromotionReport> promoted = repl_->Promote(shard, 0);
      if (promoted.ok()) ++report.promotions;
      // Promotion heals registrations the follower never received; the
      // control replica gets the same bootstrap (see kShardCrash).
      MMCONF_RETURN_IF_ERROR(db_->HealSchema(&control, nullptr));
      std::string detail;
      if (!control_replay.ok()) {
        detail = "control replay: " + control_replay.status().ToString();
      } else if (!promoted.ok()) {
        detail = "promotion: " + promoted.status().ToString();
      } else if (promoted.value().diverged) {
        detail = "follower history diverged";
      } else if (promoted.value().replayed_records != acked_records) {
        detail = "replayed " +
                 std::to_string(promoted.value().replayed_records) + " of " +
                 std::to_string(acked_records) + " acked records";
      } else if (db_->shard(shard)->Serialize() != control.Serialize()) {
        detail = "promoted image differs from never-crashed control";
      }
      if (!detail.empty()) {
        report.invariants.replication_failover_exact = false;
        report.invariants.violations.push_back(
            "shard " + std::to_string(shard) +
            " follower promotion lost acked writes (" + detail + ")");
      }
      // Promotion rolled the shard to the follower's verified prefix;
      // drop exactly that shard's cached entries (coherence hook).
      if (cache_ != nullptr) {
        cache_->InvalidateShard(
            shard, [this](const storage::ObjectRef& ref) {
              return db_->ShardOf(ref);
            });
      }
      // Resync the remaining followers behind the new primary (the
      // promotion began a fresh epoch).
      return SettleStack();
    }
  }
  return Status::InvalidArgument("unknown event kind");
}

void ChaosDriver::CheckInvariants(ChaosReport& report) {
  tier_->Loads();  // refresh fed.node.<i>.* gauges and t2c histograms
  InvariantReport& inv = report.invariants;

  for (const auto& [room_id, info] : rooms_) {
    if (!info.open) continue;
    Result<size_t> owner = tier_->NodeOf(room_id);
    Result<server::Room*> live = tier_->GetRoom(room_id);
    if (!owner.ok() || !live.ok()) {
      inv.rooms_converged = false;
      inv.violations.push_back("room " + room_id +
                               " vanished while marked open");
      continue;
    }
    if (!tier_->node(owner.value())->RoomConverged(room_id)) {
      inv.rooms_converged = false;
      inv.violations.push_back("room " + room_id +
                               " has unsettled reliable messages");
    }
    if (live.value()->replayable()) {
      // Replay against the same provenance the room was opened on:
      // build -> Encode -> Decode, matching the database round trip.
      Result<doc::MultimediaDocument> built =
          BuildDocument(info.doc_kind, info.segments);
      Result<doc::MultimediaDocument> pristine =
          built.ok() ? doc::MultimediaDocument::Decode(built.value().Encode())
                     : built.status();
      Result<std::unique_ptr<server::Room>> replayed =
          pristine.ok() ? server::Room::Replay(room_id,
                                               std::move(pristine).value(),
                                               live.value()->action_log())
                        : pristine.status();
      if (!replayed.ok() ||
          replayed.value()->Serialize() != live.value()->Serialize()) {
        inv.serialize_converged = false;
        inv.violations.push_back(
            "room " + room_id +
            " action-log replay does not reproduce the live state");
      }
    }
  }

  obs::MetricsSnapshot snapshot = metrics_->Snapshot();
  auto counter = [&snapshot](const std::string& name) -> uint64_t {
    auto found = snapshot.counters.find(name);
    return found != snapshot.counters.end() ? found->second : 0;
  };
  uint64_t aborts = counter("stream.aborts");
  if (aborts > 0) {
    inv.base_layers_intact = false;
    inv.violations.push_back(std::to_string(aborts) +
                             " stream(s) aborted a base layer");
  }
  auto stall = snapshot.histograms.find("stream.stall_micros");
  if (stall != snapshot.histograms.end()) {
    report.max_stall_micros = stall->second.max;
    if (stall->second.max > options_.stall_budget_micros) {
      inv.stalls_within_budget = false;
      inv.violations.push_back(
          "max playout stall " + std::to_string(stall->second.max) +
          "us exceeds budget " +
          std::to_string(options_.stall_budget_micros) + "us");
    }
  }
  for (size_t i = 0; i < tier_->num_nodes(); ++i) {
    auto t2c = snapshot.histograms.find("fed.node." + std::to_string(i) +
                                        ".t2c_micros");
    if (t2c == snapshot.histograms.end()) continue;
    report.max_t2c_micros = std::max(report.max_t2c_micros, t2c->second.max);
    if (t2c->second.max > options_.t2c_budget_micros) {
      inv.t2c_within_budget = false;
      inv.violations.push_back(
          "node " + std::to_string(i) + " time-to-consistency " +
          std::to_string(t2c->second.max) + "us exceeds budget " +
          std::to_string(options_.t2c_budget_micros) + "us");
    }
  }
  report.wire_bytes = network_->TotalBytesSent();
  report.end_micros = clock_.NowMicros();
}

Result<ChaosReport> ChaosDriver::Run(const WorkloadTrace& trace) {
  if (ran_) {
    return Status::FailedPrecondition("a ChaosDriver runs one trace");
  }
  ran_ = true;

  // Stand the stack up. Every random stream descends from the trace
  // seed, so the run — metrics snapshot included — is reproducible.
  network_ = std::make_unique<net::Network>(&clock_, trace.seed);
  storage::ShardedDatabaseServer::Options db_options;
  db_options.num_shards = options_.storage_shards;
  db_ = std::make_unique<storage::ShardedDatabaseServer>(&clock_,
                                                         db_options);
  db_node_ = network_->AddNode("db");
  MMCONF_RETURN_IF_ERROR(db_->RegisterStandardTypes());
  if (options_.replication_followers > 0) {
    cache_ = std::make_unique<storage::ReadThroughCache>(
        db_.get(), options_.replication_cache_bytes);
  }
  federation::FederationOptions fed_options;
  fed_options.num_nodes = options_.federation_nodes;
  fed_options.backbone = options_.backbone;
  fed_options.retry = options_.retry;
  tier_ = std::make_unique<federation::FederatedInteractionTier>(
      cache_ != nullptr ? static_cast<storage::ObjectStore*>(cache_.get())
                        : db_.get(),
      network_.get(), db_node_, fed_options);
  director_ =
      std::make_unique<fanout::BroadcastDirector>(tier_.get(), network_.get());
  if (options_.replication_followers > 0) {
    storage::ReplicationOptions repl_options;
    repl_options.followers_per_shard = options_.replication_followers;
    repl_options.checkpoint_log_bytes = options_.replication_checkpoint_bytes;
    repl_ = std::make_unique<storage::ReplicatedShardSet>(
        db_.get(), tier_->transport(), &clock_, db_node_, repl_options);
  }
  injector_ = std::make_unique<storage::WalCrashInjector>(trace.seed);
  media_rng_ = Rng(trace.seed ^ 0x6d656469615f726eull);
  db_->SetObserver(metrics_, nullptr);
  network_->SetObserver(metrics_, nullptr);
  tier_->SetObserver(metrics_, nullptr);
  director_->SetObserver(metrics_, nullptr);
  if (cache_ != nullptr) cache_->SetObserver(metrics_);
  if (repl_ != nullptr) repl_->SetObserver(metrics_, nullptr);
  MMCONF_RETURN_IF_ERROR(tier_->node(0)->RegisterDocumentType());
  media_pool_.clear();
  for (int i = 0; i < 3; ++i) {
    media_pool_.push_back(EncodeStreamObject(media_rng_));
  }

  // Scheduled link flaps must be on the links before traffic starts:
  // Settle() advances virtual time in arbitrary jumps, so mid-run
  // SetFault calls could land after their window. The network checks
  // the windows at Send time, which makes up-front installation exact.
  for (const WorkloadEvent& event : trace.events) {
    if (event.kind != EventKind::kLinkFlap) continue;
    client_flaps_[event.client].push_back(
        {event.at,
         event.at + static_cast<MicrosT>(event.a)});
  }

  ChaosReport report;
  report.events_total = trace.events.size();
  MicrosT batch_at = -1;
  for (const WorkloadEvent& event : trace.events) {
    if (event.at != batch_at) {
      MMCONF_RETURN_IF_ERROR(SettleStack());
      clock_.AdvanceTo(event.at);
      batch_at = event.at;
    }
    Status status = RunEvent(event, report);
    if (status.ok()) {
      ++report.events_applied;
    } else {
      SkipEvent(event, status, report);
    }
  }
  MMCONF_RETURN_IF_ERROR(SettleStack());
  CheckInvariants(report);
  return report;
}

}  // namespace mmconf::workload
