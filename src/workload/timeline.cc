#include "workload/timeline.h"

#include <memory>
#include <utility>

#include "doc/builder.h"

namespace mmconf::workload {

std::string TimelineSegmentName(size_t index) {
  return "seg-" + std::to_string(index);
}

Result<doc::MultimediaDocument> MakeTimelineDocument(
    const TimelineOptions& options) {
  if (options.segments == 0) {
    return Status::InvalidArgument("timeline needs at least one segment");
  }
  doc::TreeBuilder builder("timeline");
  builder.Group("timeline", "schedule");
  for (size_t i = 0; i < options.segments; ++i) {
    builder.Leaf("schedule", TimelineSegmentName(i),
                 {"Image", static_cast<uint64_t>(i + 1),
                  options.segment_bytes},
                 doc::ImagePresentations());
  }
  builder.Leaf("timeline", "notes", {"Text", 1, 2048},
               doc::TextPresentations());
  auto document = builder.Build();
  if (!document.ok()) return document.status();
  doc::MultimediaDocument timeline = std::move(document).value();

  // The first segment opens the show; everything else enters hidden and
  // is previewed only while its predecessor is live.
  const std::vector<std::string> kLiveFirst = {"flat", "segmented",
                                               "thumbnail", "icon", "hidden"};
  const std::vector<std::string> kPreview = {"thumbnail", "icon", "hidden",
                                             "flat", "segmented"};
  const std::vector<std::string> kHiddenFirst = {"hidden", "icon",
                                                 "thumbnail", "flat",
                                                 "segmented"};
  Status status = timeline.SetUnconditionalPreferenceByName(
      TimelineSegmentName(0), kLiveFirst);
  if (!status.ok()) return status;
  for (size_t i = 1; i < options.segments; ++i) {
    const std::string segment = TimelineSegmentName(i);
    const std::string predecessor = TimelineSegmentName(i - 1);
    status = timeline.SetParentsByName(segment, {predecessor});
    if (!status.ok()) return status;
    for (const std::string& parent_value : kLiveFirst) {
      status = timeline.SetPreferenceByName(
          segment, {parent_value},
          parent_value == "flat" ? kPreview : kHiddenFirst);
      if (!status.ok()) return status;
    }
  }
  status = timeline.Finalize();
  if (!status.ok()) return status;
  return timeline;
}

std::vector<MicrosT> TimelineBoundaries(const TimelineOptions& options,
                                        MicrosT start) {
  std::vector<MicrosT> boundaries;
  boundaries.reserve(options.segments);
  for (size_t i = 0; i < options.segments; ++i) {
    boundaries.push_back(start + static_cast<MicrosT>(i) *
                                     options.segment_interval_micros);
  }
  return boundaries;
}

}  // namespace mmconf::workload
