#ifndef MMCONF_WORKLOAD_CHAOS_H_
#define MMCONF_WORKLOAD_CHAOS_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "doc/document.h"
#include "fanout/director.h"
#include "federation/tier.h"
#include "net/network.h"
#include "net/reliable.h"
#include "obs/metrics.h"
#include "storage/replication.h"
#include "storage/sharded_db.h"
#include "storage/wal.h"
#include "workload/trace.h"

namespace mmconf::workload {

/// Shape of the stack a chaos run stands up, plus the background fault
/// pressure and the whole-run budgets the invariants assert.
struct ChaosOptions {
  size_t federation_nodes = 2;
  size_t storage_shards = 2;
  /// Background random faults on every client last mile, on top of the
  /// trace's scheduled link flaps. 0 disables them.
  double drop_probability = 0.005;
  MicrosT jitter_micros = 2000;
  net::LinkSpec backbone{50e6, 1000};
  /// Generous retry schedule: its total span must exceed the longest
  /// scheduled flap, or base-layer continuity cannot hold by design.
  net::RetryPolicy retry{120000, 2.0, 1000000, 12, 1 << 16};
  /// Whole-run tail budgets, asserted against the obs histograms. The
  /// t2c budget must sit above the retry policy's worst-case span
  /// (sum of its backoff schedule, ~9.9s for the default above): a
  /// message that exhausts every retry during a flap legitimately takes
  /// that long, and the budget bounds the tail *beyond* what the retry
  /// design already permits.
  MicrosT stall_budget_micros = 2'000'000;
  MicrosT t2c_budget_micros = 12'000'000;
  /// How many skipped-event samples the report keeps for debugging.
  size_t max_skip_samples = 5;
  /// Followers per primary shard. 0 (the default) runs without
  /// replication — existing traces and reports stay byte-identical.
  /// With followers, every shard's WAL is shipped between settle
  /// rounds, kNodeLoss events promote a follower, and kShardCrash
  /// recovery becomes checkpoint-aware (storage::ReplicatedShardSet).
  size_t replication_followers = 0;
  /// Checkpoint/compaction threshold handed to the replica set. Small
  /// by default so smoke-length runs exercise compaction + resync.
  size_t replication_checkpoint_bytes = 64 * 1024;
  /// Read-through object cache in front of the shard facade (bytes);
  /// only stood up when replication is on. 0 disables the cache.
  size_t replication_cache_bytes = 1 << 20;
};

/// Whole-run invariants of one chaos run. Every `false` comes with a
/// human-readable entry in `violations`.
struct InvariantReport {
  /// stream.aborts == 0: no base layer ever exhausted its retry budget —
  /// enhancements may shed, bases may stall, continuity never breaks.
  bool base_layers_intact = true;
  /// Every injected shard crash recovered byte-exactly: replaying the
  /// damaged log onto a fresh server reproduced the recovered shard's
  /// serialized image, record counts matched the crash image's clean
  /// prefix, and every blob page checksum verified.
  bool storage_recovery_exact = true;
  /// Every room still open at the end has all its reliable messages
  /// acked or failed (no propagation round left dangling).
  bool rooms_converged = true;
  /// Replaying each open room's action log against its pristine document
  /// reproduces the live room byte for byte (Room::Serialize equality) —
  /// the same convergence a live migration verifies, asserted at end of
  /// run across everything faults touched.
  bool serialize_converged = true;
  /// Max playout stall (stream.stall_micros) within budget.
  bool stalls_within_budget = true;
  /// Max per-node time-to-consistency (fed.node.<i>.t2c_micros) within
  /// budget.
  bool t2c_within_budget = true;
  /// Every kNodeLoss promoted a follower with zero acked-write loss:
  /// the promoted shard's serialized image is byte-identical to a
  /// never-crashed control (checkpoint + durable-log replay), the
  /// replayed record count matches the acked count, and the follower's
  /// received history verified clean. Trivially true when the run has
  /// no replication or no node losses.
  bool replication_failover_exact = true;
  std::vector<std::string> violations;

  bool AllHeld() const {
    return base_layers_intact && storage_recovery_exact && rooms_converged &&
           serialize_converged && stalls_within_budget && t2c_within_budget &&
           replication_failover_exact;
  }
};

/// What one chaos run did and found.
struct ChaosReport {
  size_t events_total = 0;
  size_t events_applied = 0;
  /// Events that could not apply because faults got there first (a
  /// choice by an evicted member, a join into a room whose document a
  /// shard crash rolled away). Expected under chaos; sampled below.
  size_t events_skipped = 0;
  std::vector<std::string> skip_samples;
  size_t rooms_opened = 0;
  size_t rooms_closed = 0;
  size_t migrations = 0;
  size_t migrations_failed = 0;  ///< aborted cleanly, room intact
  size_t shard_crashes = 0;
  size_t node_losses = 0;   ///< kNodeLoss events seen (applied or not)
  size_t promotions = 0;    ///< follower promotions performed
  size_t streams_opened = 0;
  size_t broadcast_frames = 0;
  size_t wire_bytes = 0;
  MicrosT end_micros = 0;
  int64_t max_stall_micros = 0;
  int64_t max_t2c_micros = 0;
  InvariantReport invariants;
};

/// Runs one workload trace against the full stack — federated
/// interaction tier over a sharded durable database, streams, broadcast
/// fan-out — while injecting the trace's scheduled faults (link flaps
/// installed as net::FaultSpec windows up front, shard crashes applied
/// at event time) plus background drop/jitter, and asserts the
/// whole-run invariants at the end.
///
/// One driver runs one trace: construct, Run, read the report. All
/// randomness descends from the trace seed, so a run is reproducible
/// bit for bit — including the metrics snapshot, which is how the
/// determinism tests compare two runs byte for byte.
class ChaosDriver {
 public:
  /// `metrics` may be null (the driver then uses an internal registry).
  /// It must outlive the driver and should be freshly reset: the
  /// invariant checks read absolute counter values.
  explicit ChaosDriver(const ChaosOptions& options,
                       obs::MetricsRegistry* metrics = nullptr);
  ~ChaosDriver();

  ChaosDriver(const ChaosDriver&) = delete;
  ChaosDriver& operator=(const ChaosDriver&) = delete;

  /// Executes the trace: events are applied in timestamp order, the
  /// stack is settled between timestamp batches, and the clock jumps to
  /// each batch's timestamp when the settle left it behind.
  /// FailedPrecondition on a second call.
  Result<ChaosReport> Run(const WorkloadTrace& trace);

  obs::MetricsRegistry* metrics() { return metrics_; }
  net::Network* network() { return network_.get(); }
  federation::FederatedInteractionTier* tier() { return tier_.get(); }

 private:
  struct RoomInfo {
    uint64_t doc_kind = 0;  ///< 0 medical, 1 timeline
    uint64_t segments = 0;
    bool hosted = false;  ///< has a broadcast session
    bool open = false;
  };

  /// The document a room of `kind` opens on, bandwidth tuning included.
  /// Deterministic: building twice yields identical documents — the
  /// pristine base the serialize-convergence check replays against.
  Result<doc::MultimediaDocument> BuildDocument(uint64_t kind,
                                                uint64_t segments);

  /// Creates the client's network node on first sight and (re)applies
  /// its context: last-mile link spec from the bandwidth class, fault
  /// spec carrying the background faults plus the slot's scheduled
  /// flaps.
  Status EnsureClient(int slot, const ClientContext& context);
  Status ApplyContext(int slot, const ClientContext& context);

  /// Pins the room's bandwidth-tuning variable at the client's
  /// effective level — the context-as-CP-net-evidence path.
  Status PinEvidence(const std::string& room, const std::string& viewer,
                     const ClientContext& context);

  Status RunEvent(const WorkloadEvent& event, ChaosReport& report);
  void SkipEvent(const WorkloadEvent& event, const Status& status,
                 ChaosReport& report);
  void CheckInvariants(ChaosReport& report);

  /// Settles the whole stack to quiescence: pumps the director/tier
  /// settle loop, forwards replication passthrough deliveries into the
  /// replica set and ships newly committed batches, repeating until a
  /// round neither consumes nor produces replication traffic. With
  /// replication off this is a single director settle.
  Status SettleStack();

  ChaosOptions options_;
  obs::MetricsRegistry owned_metrics_;
  obs::MetricsRegistry* metrics_;

  Clock clock_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<storage::ShardedDatabaseServer> db_;
  net::NodeId db_node_ = 0;
  /// Fronts db_ when replication is on; the tier reads through it.
  std::unique_ptr<storage::ReadThroughCache> cache_;
  std::unique_ptr<federation::FederatedInteractionTier> tier_;
  std::unique_ptr<fanout::BroadcastDirector> director_;
  std::unique_ptr<storage::ReplicatedShardSet> repl_;
  std::unique_ptr<storage::WalCrashInjector> injector_;
  Rng media_rng_{1};

  std::map<int, net::NodeId> client_nodes_;
  std::map<int, ClientContext> client_contexts_;
  std::map<int, std::vector<net::LinkFlap>> client_flaps_;
  std::map<std::string, RoomInfo> rooms_;
  std::vector<Bytes> media_pool_;  ///< pre-encoded layered stream objects
  bool ran_ = false;
};

}  // namespace mmconf::workload

#endif  // MMCONF_WORKLOAD_CHAOS_H_
