#include "workload/trace.h"

#include <algorithm>

namespace mmconf::workload {

const char* EventKindToString(EventKind kind) {
  switch (kind) {
    case EventKind::kOpenRoom:
      return "open_room";
    case EventKind::kCloseRoom:
      return "close_room";
    case EventKind::kJoin:
      return "join";
    case EventKind::kLeave:
      return "leave";
    case EventKind::kSetContext:
      return "set_context";
    case EventKind::kChoice:
      return "choice";
    case EventKind::kOperation:
      return "operation";
    case EventKind::kBroadcast:
      return "broadcast";
    case EventKind::kOpenStream:
      return "open_stream";
    case EventKind::kMigrateRoom:
      return "migrate_room";
    case EventKind::kHostBroadcast:
      return "host_broadcast";
    case EventKind::kAdmitViewers:
      return "admit_viewers";
    case EventKind::kPushFrame:
      return "push_frame";
    case EventKind::kLinkFlap:
      return "link_flap";
    case EventKind::kShardCrash:
      return "shard_crash";
    case EventKind::kNodeLoss:
      return "node_loss";
  }
  return "unknown";
}

std::string WorkloadEvent::ToText() const {
  std::string line = std::to_string(at);
  line += ' ';
  line += EventKindToString(kind);
  line += " room=";
  line += room;
  line += " viewer=";
  line += viewer;
  line += " component=";
  line += component;
  line += " presentation=";
  line += presentation;
  line += " client=";
  line += std::to_string(client);
  line += " a=";
  line += std::to_string(a);
  line += " b=";
  line += std::to_string(b);
  line += ' ';
  line += ContextToString(context);
  return line;
}

void WorkloadTrace::SortByTime() {
  std::stable_sort(events.begin(), events.end(),
                   [](const WorkloadEvent& x, const WorkloadEvent& y) {
                     return x.at < y.at;
                   });
}

std::string WorkloadTrace::ToText() const {
  std::string out = "workload scenario=" + scenario +
                    " seed=" + std::to_string(seed) +
                    " events=" + std::to_string(events.size()) + "\n";
  for (const WorkloadEvent& event : events) {
    out += event.ToText();
    out += '\n';
  }
  return out;
}

}  // namespace mmconf::workload
