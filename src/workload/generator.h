#ifndef MMCONF_WORKLOAD_GENERATOR_H_
#define MMCONF_WORKLOAD_GENERATOR_H_

#include <string>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/rng.h"
#include "workload/timeline.h"
#include "workload/trace.h"

namespace mmconf::workload {

/// Conference shape families the generator composes.
enum class ScenarioMix : uint8_t {
  kLecture = 0,  ///< one speaker, flash-crowd audience, scheduled timeline,
                 ///< broadcast fan-out, speaker handoffs, mass leave/rejoin
  kConsult = 1,  ///< small rooms, dense choice/operation rounds, streams
  kBrowse = 2,   ///< many single-viewer rooms, open/close churn
  kMixed = 3,    ///< all three families side by side on one tier
};

const char* ScenarioMixToString(ScenarioMix mix);
Result<ScenarioMix> ScenarioMixFromString(const std::string& name);

/// Knobs of one generated workload. Defaults are the smoke-scale shape
/// the chaos bench and tests sweep; the nightly CI leg turns them up.
struct GeneratorOptions {
  ScenarioMix mix = ScenarioMix::kConsult;
  size_t rooms = 2;
  /// Client-slot population the rooms draw members from.
  size_t clients = 12;
  MicrosT duration_micros = 12'000'000;
  /// Diurnal load curve: activity-round spacing is modulated by a
  /// parabola peaking at 1 + amplitude mid-run — the run opens quiet,
  /// peaks mid-way, and tails off, like a conferencing day compressed
  /// into one trace. 0 disables the curve.
  double diurnal_amplitude = 0.6;
  /// Context population (see DrawContext).
  double handheld_share = 0.2;
  double low_bandwidth_share = 0.2;
  /// Emit kLinkFlap events against client last miles.
  bool inject_net_faults = true;
  /// Emit kShardCrash events (indices drawn below storage_shards).
  bool inject_storage_faults = true;
  /// Emit a kNodeLoss event (primary machine loss -> follower
  /// promotion). Off by default: it only makes sense against a driver
  /// running with replication enabled, and existing traces must stay
  /// byte-identical.
  bool inject_node_loss = false;
  size_t storage_shards = 2;
  /// Migration targets are offsets below this node count.
  size_t federation_nodes = 2;
  /// Timeline shape for lecture rooms.
  TimelineOptions timeline{};
};

/// Seeded, deterministic workload generator: the same (seed, options)
/// pair yields a byte-identical trace on every run and platform — the
/// contract that makes a failing CI seed replayable locally.
class WorkloadGenerator {
 public:
  WorkloadGenerator(uint64_t seed, GeneratorOptions options);

  /// Composes the trace for the configured mix, sorted by time.
  WorkloadTrace Generate();

 private:
  /// Next activity timestamp after `t`: the base gap shrunk where the
  /// diurnal curve peaks, with +/-25% seeded jitter.
  MicrosT NextActivityAt(MicrosT t, MicrosT base_gap_micros);

  void GenerateLecture(WorkloadTrace& trace, const std::string& room,
                       MicrosT open_at, std::vector<int> slots);
  void GenerateConsult(WorkloadTrace& trace, const std::string& room,
                       MicrosT open_at, std::vector<int> slots);
  void GenerateBrowse(WorkloadTrace& trace, const std::string& room,
                      MicrosT open_at, int slot);
  void GenerateFaultSchedule(WorkloadTrace& trace);

  uint64_t seed_;
  GeneratorOptions options_;
  Rng rng_;
};

}  // namespace mmconf::workload

#endif  // MMCONF_WORKLOAD_GENERATOR_H_
