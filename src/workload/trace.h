#ifndef MMCONF_WORKLOAD_TRACE_H_
#define MMCONF_WORKLOAD_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/clock.h"
#include "workload/context.h"

namespace mmconf::workload {

/// Primitive events a workload trace is composed of. Scenario shapes
/// (flash crowds, speaker handoffs, timeline progressions, fault
/// schedules) are compositions of these primitives, so one driver can
/// replay any mix.
enum class EventKind : uint8_t {
  kOpenRoom = 0,   ///< a = doc kind (0 medical, 1 timeline), b = segments
  kCloseRoom,
  kJoin,           ///< client slot + context; pins tuning evidence
  kLeave,
  kSetContext,     ///< context changed mid-session; evidence re-pinned
  kChoice,         ///< component/presentation selection
  kOperation,      ///< a = server::ActionType, b = globally_important
  kBroadcast,      ///< a = bytes
  kOpenStream,     ///< a = object count, b = per-object interval micros
  kMigrateRoom,    ///< a = target-node offset from the owner
  kHostBroadcast,  ///< a = expected audience (lecture fan-out)
  kAdmitViewers,   ///< a = aggregated viewer count at context's level
  kPushFrame,      ///< compose + fan out one broadcast frame
  kLinkFlap,       ///< a = outage micros on the client's last mile
  kShardCrash,     ///< a = shard index, b = storage::WalCrashKind
  kNodeLoss,       ///< a = shard index whose primary machine is lost;
                   ///< a follower is promoted (no-op without replication)
};

const char* EventKindToString(EventKind kind);

/// One timestamped workload event. Which fields are meaningful depends
/// on the kind (see EventKind); unused fields keep their defaults so the
/// text rendering stays canonical.
struct WorkloadEvent {
  MicrosT at = 0;
  EventKind kind = EventKind::kOpenRoom;
  std::string room;
  std::string viewer;
  std::string component;
  std::string presentation;
  int client = -1;  ///< client slot in the driver's population, -1 = none
  uint64_t a = 0;   ///< kind-specific scalar (see EventKind comments)
  uint64_t b = 0;   ///< second kind-specific scalar
  ClientContext context{};

  /// Canonical one-line rendering (every field, fixed order).
  std::string ToText() const;
};

/// A generated workload: the seed and scenario it came from plus the
/// time-ordered event list. Determinism contract: generating twice from
/// the same seed and options yields byte-identical ToText() — the
/// property tests/workload_test.cc pins and CI replays rely on.
struct WorkloadTrace {
  uint64_t seed = 0;
  std::string scenario;
  std::vector<WorkloadEvent> events;

  /// Stable-sorts events by timestamp (ties keep generation order, which
  /// is how bursts at one instant stay causally ordered).
  void SortByTime();

  /// Header line plus one line per event; byte-deterministic.
  std::string ToText() const;
};

}  // namespace mmconf::workload

#endif  // MMCONF_WORKLOAD_TRACE_H_
