#include "doc/component.h"

#include <algorithm>

namespace mmconf::doc {

bool CompositeMultimediaComponent::RemoveChild(const std::string& name) {
  auto it = std::find_if(
      children_.begin(), children_.end(),
      [&](const std::unique_ptr<MultimediaComponent>& child) {
        return child->name() == name;
      });
  if (it == children_.end()) return false;
  children_.erase(it);
  return true;
}

std::vector<std::string> PrimitiveMultimediaComponent::DomainValueNames()
    const {
  std::vector<std::string> names;
  names.reserve(presentations_.size());
  for (const MMPresentation& presentation : presentations_) {
    names.push_back(presentation.name);
  }
  return names;
}

Result<MMPresentation> PrimitiveMultimediaComponent::PresentationAt(
    int value) const {
  if (value < 0 || static_cast<size_t>(value) >= presentations_.size()) {
    return Status::OutOfRange("component \"" + name() +
                              "\" has no presentation option " +
                              std::to_string(value));
  }
  return presentations_[static_cast<size_t>(value)];
}

namespace {

void FlattenInto(const MultimediaComponent* node,
                 std::vector<const MultimediaComponent*>& out) {
  out.push_back(node);
  if (const CompositeMultimediaComponent* composite = node->AsComposite()) {
    for (const auto& child : composite->children()) {
      FlattenInto(child.get(), out);
    }
  }
}

}  // namespace

std::vector<const MultimediaComponent*> FlattenTree(
    const MultimediaComponent* root) {
  std::vector<const MultimediaComponent*> out;
  if (root != nullptr) FlattenInto(root, out);
  return out;
}

}  // namespace mmconf::doc
