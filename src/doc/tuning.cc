#include "doc/tuning.h"

#include <algorithm>

namespace mmconf::doc {

using cpnet::Cpt;
using cpnet::PreferenceRanking;
using cpnet::ValueId;
using cpnet::VarId;

const char* BandwidthLevelToString(BandwidthLevel level) {
  switch (level) {
    case BandwidthLevel::kHigh:
      return "high";
    case BandwidthLevel::kMedium:
      return "medium";
    case BandwidthLevel::kLow:
      return "low";
  }
  return "unknown";
}

BandwidthLevel ClassifyBandwidth(double bytes_per_second) {
  // A ~256 KB full image within 2 s needs ~128 KB/s; within 20 s, ~13
  // KB/s. Below that, only icon-class payloads stay interactive.
  if (bytes_per_second >= 128e3) return BandwidthLevel::kHigh;
  if (bytes_per_second >= 13e3) return BandwidthLevel::kMedium;
  return BandwidthLevel::kLow;
}

namespace {

/// True when a presentation is cheap enough to survive a congested link.
bool IsCheap(const MMPresentation& presentation) {
  switch (presentation.kind) {
    case PresentationKind::kHidden:
    case PresentationKind::kIcon:
    case PresentationKind::kThumbnail:
    case PresentationKind::kAudioSummary:
    case PresentationKind::kText:
      return true;
    default:
      return false;
  }
}

/// True when the component's domain contains a full-cost media
/// presentation — the "bandwidth/buffer consuming components" the paper
/// conditions on the tuning variable.
bool IsHeavy(const PrimitiveMultimediaComponent& primitive) {
  for (const MMPresentation& presentation : primitive.presentations()) {
    if (!IsCheap(presentation)) return true;
  }
  return false;
}

/// Medium template: stable-partition the author's ranking so cheap
/// presentations come first, preserving relative order within each class.
PreferenceRanking MediumTemplate(const PreferenceRanking& author,
                                 const PrimitiveMultimediaComponent& comp) {
  PreferenceRanking out;
  for (ValueId v : author) {
    if (IsCheap(comp.presentations()[static_cast<size_t>(v)])) {
      out.push_back(v);
    }
  }
  for (ValueId v : author) {
    if (!IsCheap(comp.presentations()[static_cast<size_t>(v)])) {
      out.push_back(v);
    }
  }
  return out;
}

/// Low template: ascending delivery cost; author order breaks ties.
PreferenceRanking LowTemplate(const PreferenceRanking& author,
                              const PrimitiveMultimediaComponent& comp) {
  PreferenceRanking out = author;
  std::stable_sort(out.begin(), out.end(), [&](ValueId a, ValueId b) {
    size_t full = comp.content().content_bytes;
    return PresentationCostBytes(
               comp.presentations()[static_cast<size_t>(a)], full) <
           PresentationCostBytes(
               comp.presentations()[static_cast<size_t>(b)], full);
  });
  return out;
}

}  // namespace

Result<VarId> AddBandwidthTuning(MultimediaDocument& document,
                                 const std::string& tuning_name) {
  cpnet::CpNet& net = document.net_;
  if (net.FindVariable(tuning_name).ok()) {
    return Status::AlreadyExists("variable \"" + tuning_name +
                                 "\" already exists");
  }
  VarId tuning = net.AddVariable(tuning_name, {"high", "medium", "low"});
  // The link is assumed good until measured otherwise.
  MMCONF_RETURN_IF_ERROR(net.SetUnconditionalPreference(tuning, {0, 1, 2}));

  for (size_t i = 0; i < document.num_components(); ++i) {
    const MultimediaComponent* component = document.components()[i];
    const PrimitiveMultimediaComponent* primitive = component->AsPrimitive();
    if (primitive == nullptr || !IsHeavy(*primitive)) continue;
    VarId var = static_cast<VarId>(i);

    // Snapshot the author's CPT, then rebuild with the tuning variable
    // appended to the parent list (least significant digit of the row
    // index, so old rows map contiguously).
    const Cpt old_cpt = net.CptOf(var);
    std::vector<VarId> parents = net.Parents(var);
    parents.push_back(tuning);
    MMCONF_RETURN_IF_ERROR(net.SetParents(var, parents));
    for (size_t row = 0; row < old_cpt.num_rows(); ++row) {
      MMCONF_ASSIGN_OR_RETURN(PreferenceRanking author,
                              old_cpt.Ranking(row));
      std::vector<ValueId> parent_values = old_cpt.RowValues(row);
      parent_values.push_back(0);  // high
      MMCONF_RETURN_IF_ERROR(net.SetPreference(var, parent_values, author));
      parent_values.back() = 1;  // medium
      MMCONF_RETURN_IF_ERROR(net.SetPreference(
          var, parent_values, MediumTemplate(author, *primitive)));
      parent_values.back() = 2;  // low
      MMCONF_RETURN_IF_ERROR(net.SetPreference(
          var, parent_values, LowTemplate(author, *primitive)));
    }
  }
  MMCONF_RETURN_IF_ERROR(net.Validate());
  return tuning;
}

ViewerChoice TuningChoice(const std::string& tuning_name,
                          BandwidthLevel level) {
  return {tuning_name, BandwidthLevelToString(level)};
}

Result<size_t> TranscodedDeliveryCost(
    const MultimediaDocument& document,
    const cpnet::Assignment& configuration, BandwidthLevel level) {
  size_t total = 0;
  for (size_t i = 0; i < document.num_components(); ++i) {
    const MultimediaComponent* component = document.components()[i];
    const PrimitiveMultimediaComponent* primitive = component->AsPrimitive();
    if (primitive == nullptr) continue;
    MMCONF_ASSIGN_OR_RETURN(
        bool visible, document.IsVisible(configuration, component->name()));
    if (!visible) continue;
    MMCONF_ASSIGN_OR_RETURN(
        MMPresentation configured,
        document.PresentationFor(configuration, component->name()));
    if (configured.kind == PresentationKind::kHidden) continue;
    total += TranscodedPresentationCost(*primitive, configured, level);
  }
  return total;
}

size_t TranscodedPresentationCost(
    const PrimitiveMultimediaComponent& primitive,
    const MMPresentation& configured, BandwidthLevel level) {
  const size_t full = primitive.content().content_bytes;
  size_t cost = PresentationCostBytes(configured, full);
  if (level == BandwidthLevel::kHigh) return cost;
  // Cheapest non-hidden rendition available in the domain (medium only
  // considers the cheap class; low considers everything).
  size_t cheapest = cost;
  for (const MMPresentation& option : primitive.presentations()) {
    if (option.kind == PresentationKind::kHidden) continue;
    if (level == BandwidthLevel::kMedium && !IsCheap(option)) continue;
    cheapest = std::min(cheapest, PresentationCostBytes(option, full));
  }
  return cheapest;
}

}  // namespace mmconf::doc
