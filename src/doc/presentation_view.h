#ifndef MMCONF_DOC_PRESENTATION_VIEW_H_
#define MMCONF_DOC_PRESENTATION_VIEW_H_

#include <vector>

#include "common/status.h"
#include "cpnet/assignment.h"
#include "doc/document.h"

namespace mmconf::doc {

/// Cache of what one configuration of a document shows: for every
/// component, whether it is visible (ancestors included) and, for
/// primitives, the selected presentation option and its untranscoded
/// delivery cost. A room keeps one of these in sync with its shared
/// configuration so the propagation path answers "what does component v
/// look like right now" without string lookups, ancestor walks, or
/// per-member recomputation.
///
/// Invalidation rules:
///  - Update(config, changed_vars) re-resolves presentations only for the
///    changed variables; visibility is recomputed in one O(components)
///    pre-order pass because flipping an ancestor changes its whole
///    subtree's visibility.
///  - A change of MultimediaDocument::structure_version() (component
///    added/removed — the tree was rebound and cached pointers are
///    stale) forces a full Rebuild regardless of changed_vars.
class PresentationView {
 public:
  /// `document` must outlive the view. The view starts empty; call
  /// Rebuild before querying.
  explicit PresentationView(const MultimediaDocument* document)
      : document_(document) {}

  /// Full re-resolution of every component under `configuration`.
  Status Rebuild(const cpnet::Assignment& configuration);

  /// Incremental refresh after a reconfiguration whose delta is
  /// `changed_vars` (variable ids whose value changed — extension
  /// variables beyond num_components() are ignored). Falls back to
  /// Rebuild when the document structure changed underneath the cache.
  Status Update(const cpnet::Assignment& configuration,
                const std::vector<cpnet::VarId>& changed_vars);

  size_t num_components() const { return entries_.size(); }

  /// Preconditions for the three accessors: 0 <= var < num_components()
  /// and a successful Rebuild/Update.
  bool visible(cpnet::VarId var) const {
    return visibility_[static_cast<size_t>(var)] != 0;
  }
  /// The component as a primitive; nullptr for composites.
  const PrimitiveMultimediaComponent* primitive(cpnet::VarId var) const {
    return entries_[static_cast<size_t>(var)].primitive;
  }
  /// Selected presentation option; nullptr for composites.
  const MMPresentation* presentation(cpnet::VarId var) const {
    return entries_[static_cast<size_t>(var)].presentation;
  }
  /// PresentationCostBytes of the selected option (0 for composites).
  size_t cost_bytes(cpnet::VarId var) const {
    return entries_[static_cast<size_t>(var)].cost_bytes;
  }

 private:
  struct Entry {
    const PrimitiveMultimediaComponent* primitive = nullptr;
    const MMPresentation* presentation = nullptr;
    size_t cost_bytes = 0;
  };

  Status ResolveEntry(const cpnet::Assignment& configuration,
                      cpnet::VarId var);

  const MultimediaDocument* document_;
  uint64_t structure_version_ = 0;  ///< 0 = never built
  std::vector<Entry> entries_;
  std::vector<char> visibility_;
};

}  // namespace mmconf::doc

#endif  // MMCONF_DOC_PRESENTATION_VIEW_H_
