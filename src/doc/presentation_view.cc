#include "doc/presentation_view.h"

#include "doc/presentation.h"

namespace mmconf::doc {

Status PresentationView::ResolveEntry(const cpnet::Assignment& configuration,
                                      cpnet::VarId var) {
  Entry& entry = entries_[static_cast<size_t>(var)];
  const MultimediaComponent* component = document_->ComponentAt(var);
  const PrimitiveMultimediaComponent* primitive = component->AsPrimitive();
  if (primitive == nullptr) {
    entry = Entry{};
    return Status::OK();
  }
  cpnet::ValueId value = configuration.Get(var);
  if (value < 0 ||
      static_cast<size_t>(value) >= primitive->presentations().size()) {
    return Status::OutOfRange("value outside domain of \"" +
                              primitive->name() + "\"");
  }
  entry.primitive = primitive;
  entry.presentation = &primitive->presentations()[static_cast<size_t>(value)];
  entry.cost_bytes = PresentationCostBytes(*entry.presentation,
                                           primitive->content().content_bytes);
  return Status::OK();
}

Status PresentationView::Rebuild(const cpnet::Assignment& configuration) {
  const size_t n = document_->num_components();
  // ComputeVisibility checks that every component variable is assigned
  // and sized to the net, so the entry pass below can read values bare.
  MMCONF_RETURN_IF_ERROR(
      document_->ComputeVisibility(configuration, &visibility_));
  entries_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    MMCONF_RETURN_IF_ERROR(
        ResolveEntry(configuration, static_cast<cpnet::VarId>(i)));
  }
  structure_version_ = document_->structure_version();
  return Status::OK();
}

Status PresentationView::Update(
    const cpnet::Assignment& configuration,
    const std::vector<cpnet::VarId>& changed_vars) {
  if (structure_version_ != document_->structure_version() ||
      entries_.size() != document_->num_components()) {
    return Rebuild(configuration);
  }
  // Flipping any ancestor toggles its whole subtree, so visibility is
  // always refreshed in full (one linear pass); only the presentation
  // resolution is restricted to the changed variables.
  MMCONF_RETURN_IF_ERROR(
      document_->ComputeVisibility(configuration, &visibility_));
  for (cpnet::VarId var : changed_vars) {
    if (var < 0 || static_cast<size_t>(var) >= entries_.size()) {
      continue;  // Extension variables carry no content to cache.
    }
    MMCONF_RETURN_IF_ERROR(ResolveEntry(configuration, var));
  }
  return Status::OK();
}

}  // namespace mmconf::doc
