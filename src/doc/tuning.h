#ifndef MMCONF_DOC_TUNING_H_
#define MMCONF_DOC_TUNING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cpnet/cpnet.h"
#include "doc/document.h"

namespace mmconf::doc {

/// Network condition levels a tuned document reacts to.
enum class BandwidthLevel : int {
  kHigh = 0,    ///< LAN / workstation: richest presentations win
  kMedium = 1,  ///< broadband: drop to thumbnails where the author allows
  kLow = 2,     ///< modem / congested: icons and summaries only
};

const char* BandwidthLevelToString(BandwidthLevel level);

/// Classifies a measured link into a level. Thresholds follow the cost
/// model: a level is "enough" when a full image (256 KB class) ships
/// within ~2 s.
BandwidthLevel ClassifyBandwidth(double bytes_per_second);

/// The paper's Section 4.4 first alternative, implemented: "if the above
/// parameters are measurable, then we can add corresponding 'tuning'
/// variables into the preference model of the document presentation, and
/// to condition on them the preferential ordering of the presentation
/// alternatives for various bandwidth/buffer consuming components. Such
/// model extension can be done automatically, according to some
/// predefined ordering templates."
///
/// AddBandwidthTuning appends one root variable named `tuning_name` with
/// domain {high, medium, low} to the document's CP-net and rewires every
/// *heavy* primitive component (image/audio presentations) so its parents
/// gain the tuning variable, with the ordering templates:
///
///   high   : the author's original ranking, unchanged
///   medium : cheap presentations (thumbnail/icon/summary/hidden) are
///            promoted above full-cost ones, preserving relative order
///   low    : ranking sorted by ascending delivery cost
///
/// Text-only and composite components are left untouched. Returns the
/// tuning variable id. The document must be finalized; it is revalidated
/// before returning.
Result<cpnet::VarId> AddBandwidthTuning(MultimediaDocument& document,
                                        const std::string& tuning_name);

/// Pins the tuning variable in an evidence set: returns the choice event
/// that fixes it at `level` (viewers never set this variable; the client
/// runtime measures the link and pins it).
ViewerChoice TuningChoice(const std::string& tuning_name,
                          BandwidthLevel level);

/// The Section 4.4 closing note, made concrete: "the pre-fetching option
/// allows the use of various transcoding formats of the multimedia
/// objects according to the communication bandwidth and the client's
/// software." The room's *shared* configuration stays one truth; what
/// each partner's wire carries is a transcoded rendition of it:
///
///   high   : every visible presentation ships as configured
///   medium : heavy presentations ship as their cheapest *visible*
///            sibling in the component's domain (thumbnail / summary /
///            icon class), cheap ones ship as configured
///   low    : everything ships as its cheapest non-hidden option
///
/// Returns the bytes delivered to a `level` client for `configuration`.
Result<size_t> TranscodedDeliveryCost(const MultimediaDocument& document,
                                      const cpnet::Assignment& configuration,
                                      BandwidthLevel level);

/// Bytes one component costs a `level` client when it presents as
/// `configured` (the per-component unit TranscodedDeliveryCost sums;
/// exposed so the interaction server can price per-client deltas).
size_t TranscodedPresentationCost(
    const PrimitiveMultimediaComponent& primitive,
    const MMPresentation& configured, BandwidthLevel level);

}  // namespace mmconf::doc

#endif  // MMCONF_DOC_TUNING_H_
