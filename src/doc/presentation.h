#ifndef MMCONF_DOC_PRESENTATION_H_
#define MMCONF_DOC_PRESENTATION_H_

#include <cstdint>
#include <string>

namespace mmconf::doc {

/// Kind of a presentation option — the ground specifications of the
/// paper's abstract MMPresentation class ("Text, JPGImage,
/// SegmentedJPGImage, etc."), extended with the multi-resolution and
/// hidden forms the presentation module chooses among.
enum class PresentationKind : uint8_t {
  kHidden = 0,      ///< component not shown at all
  kText,            ///< textual rendering
  kImage,           ///< full-resolution flat image
  kSegmentedImage,  ///< image with segmentation overlay
  kThumbnail,       ///< reduced-resolution image
  kIcon,            ///< minimal placeholder ("presented as a small icon")
  kAudio,           ///< playable audio fragment
  kAudioSummary,    ///< segment/speaker summary instead of full audio
};

const char* PresentationKindToString(PresentationKind kind);

/// One option for presenting a component's content. A primitive
/// component's domain is its list of MMPresentations; the CP-net variable
/// bound to the component ranges over exactly these options, in order.
struct MMPresentation {
  std::string name;  ///< domain value name, e.g. "flat", "segmented"
  PresentationKind kind = PresentationKind::kHidden;
  /// Resolution reduction for kThumbnail (image side divided by
  /// 2^resolution_drop); 0 otherwise.
  int resolution_drop = 0;
};

bool operator==(const MMPresentation& a, const MMPresentation& b);

/// Approximate bytes a presentation costs to deliver, given the
/// component's full-content byte size. This is the cost model the
/// pre-fetching and bandwidth-adaptation logic plans with (Section 4.4):
/// hidden/icon cost (almost) nothing, thumbnails cost geometrically less
/// than full images, summaries cost a fraction of the full audio.
size_t PresentationCostBytes(const MMPresentation& presentation,
                             size_t full_content_bytes);

}  // namespace mmconf::doc

#endif  // MMCONF_DOC_PRESENTATION_H_
