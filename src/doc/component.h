#ifndef MMCONF_DOC_COMPONENT_H_
#define MMCONF_DOC_COMPONENT_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "doc/presentation.h"

namespace mmconf::doc {

/// Where a primitive component's actual content lives. The paper stores
/// all components as BLOBs in typed object tables and fetches them on
/// demand ("all the components of the record can be retrieved from their
/// actual storage on demand"); the document model keeps only this
/// reference plus the content size used for delivery planning.
struct ContentRef {
  std::string media_type;    ///< catalog type, e.g. "Image", "Audio"
  uint64_t object_id = 0;    ///< row id in the type's object table
  size_t content_bytes = 0;  ///< full payload size (cost-model input)
};

class CompositeMultimediaComponent;
class PrimitiveMultimediaComponent;

/// Abstract node of the hierarchical component structure (the paper's
/// Fig. 6: MultimediaComponent with ground specifications
/// CompositeMultimediaComponent and PrimitiveMultimediaComponent).
/// Every component has a document-unique name (the CP-net variable name)
/// and a presentation domain.
class MultimediaComponent {
 public:
  explicit MultimediaComponent(std::string name) : name_(std::move(name)) {}
  virtual ~MultimediaComponent() = default;

  MultimediaComponent(const MultimediaComponent&) = delete;
  MultimediaComponent& operator=(const MultimediaComponent&) = delete;

  const std::string& name() const { return name_; }

  virtual bool IsComposite() const = 0;

  /// Names of the presentation options, in domain order. Composite
  /// components are restricted to binary domains ("it only can be either
  /// presented or hidden").
  virtual std::vector<std::string> DomainValueNames() const = 0;

  /// Downcasts; return nullptr on kind mismatch.
  virtual const CompositeMultimediaComponent* AsComposite() const {
    return nullptr;
  }
  virtual const PrimitiveMultimediaComponent* AsPrimitive() const {
    return nullptr;
  }

 private:
  std::string name_;
};

/// Internal node: a named grouping of sub-components (e.g. "Imaging"
/// containing CT and X-ray). Domain: {presented, hidden}.
class CompositeMultimediaComponent : public MultimediaComponent {
 public:
  /// Domain value indices of the fixed composite domain.
  static constexpr int kPresented = 0;
  static constexpr int kHidden = 1;

  explicit CompositeMultimediaComponent(std::string name)
      : MultimediaComponent(std::move(name)) {}

  bool IsComposite() const override { return true; }
  std::vector<std::string> DomainValueNames() const override {
    return {"presented", "hidden"};
  }
  const CompositeMultimediaComponent* AsComposite() const override {
    return this;
  }

  void AddChild(std::unique_ptr<MultimediaComponent> child) {
    children_.push_back(std::move(child));
  }
  /// Detaches the direct child with `name`; false if no such child.
  bool RemoveChild(const std::string& name);
  const std::vector<std::unique_ptr<MultimediaComponent>>& children() const {
    return children_;
  }

 private:
  std::vector<std::unique_ptr<MultimediaComponent>> children_;
};

/// Leaf node: actual content with a list of alternative presentations.
class PrimitiveMultimediaComponent : public MultimediaComponent {
 public:
  /// `presentations` must be non-empty; the first option is the implicit
  /// "most natural" form, but the author's CP-net decides what is shown.
  PrimitiveMultimediaComponent(std::string name, ContentRef content,
                               std::vector<MMPresentation> presentations)
      : MultimediaComponent(std::move(name)),
        content_(std::move(content)),
        presentations_(std::move(presentations)) {}

  bool IsComposite() const override { return false; }
  std::vector<std::string> DomainValueNames() const override;
  const PrimitiveMultimediaComponent* AsPrimitive() const override {
    return this;
  }

  const ContentRef& content() const { return content_; }
  const std::vector<MMPresentation>& presentations() const {
    return presentations_;
  }

  /// Presentation option by domain value index.
  Result<MMPresentation> PresentationAt(int value) const;

 private:
  ContentRef content_;
  std::vector<MMPresentation> presentations_;
};

/// Depth-first (pre-order) traversal collecting raw pointers; the order
/// defines the component indices the document binds to CP-net variables.
std::vector<const MultimediaComponent*> FlattenTree(
    const MultimediaComponent* root);

}  // namespace mmconf::doc

#endif  // MMCONF_DOC_COMPONENT_H_
