#include "doc/presentation.h"

namespace mmconf::doc {

const char* PresentationKindToString(PresentationKind kind) {
  switch (kind) {
    case PresentationKind::kHidden:
      return "hidden";
    case PresentationKind::kText:
      return "text";
    case PresentationKind::kImage:
      return "image";
    case PresentationKind::kSegmentedImage:
      return "segmented-image";
    case PresentationKind::kThumbnail:
      return "thumbnail";
    case PresentationKind::kIcon:
      return "icon";
    case PresentationKind::kAudio:
      return "audio";
    case PresentationKind::kAudioSummary:
      return "audio-summary";
  }
  return "unknown";
}

bool operator==(const MMPresentation& a, const MMPresentation& b) {
  return a.name == b.name && a.kind == b.kind &&
         a.resolution_drop == b.resolution_drop;
}

size_t PresentationCostBytes(const MMPresentation& presentation,
                             size_t full_content_bytes) {
  switch (presentation.kind) {
    case PresentationKind::kHidden:
      return 0;
    case PresentationKind::kIcon:
      return 256;  // fixed glyph payload
    case PresentationKind::kText:
      return full_content_bytes;
    case PresentationKind::kImage:
      return full_content_bytes;
    case PresentationKind::kSegmentedImage:
      // Segmentation overlay adds roughly a label plane.
      return full_content_bytes + full_content_bytes / 4;
    case PresentationKind::kThumbnail: {
      int drop = presentation.resolution_drop > 0
                     ? presentation.resolution_drop
                     : 1;
      size_t divisor = static_cast<size_t>(1) << (2 * drop);
      return full_content_bytes / divisor + 64;
    }
    case PresentationKind::kAudio:
      return full_content_bytes;
    case PresentationKind::kAudioSummary:
      return full_content_bytes / 16 + 128;
  }
  return full_content_bytes;
}

}  // namespace mmconf::doc
