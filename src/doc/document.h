#ifndef MMCONF_DOC_DOCUMENT_H_
#define MMCONF_DOC_DOCUMENT_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/result.h"
#include "common/status.h"
#include "cpnet/cpnet.h"
#include "doc/component.h"

namespace mmconf::doc {

/// One viewer choice: an explicit selection of a presentation form for a
/// component ("By a choice of a viewer we mean its explicit specification
/// of the presentation form for some component"). An empty presentation
/// releases the viewer's earlier choice for the component.
struct ViewerChoice {
  std::string component;
  std::string presentation;  ///< domain value name; "" = release choice
};

/// A multimedia document: the hierarchical component tree
/// (MultimediaComponent) plus the author's preference specification over
/// its presentation (CPNetwork) — the paper's MultimediaDocument class,
/// whose interface this mirrors:
///
///   paper                      | here
///   ---------------------------+------------------------------------
///   getContent()               | Content()
///   defaultPresentation()      | DefaultPresentation()
///   reconfigPresentation(evts) | ReconfigPresentation(evts)
///
/// CP-net binding: components are numbered in depth-first pre-order;
/// component i is CP-net variable i; a component's domain values are its
/// presentation option names ({presented, hidden} for composites).
class MultimediaDocument {
 public:
  /// Builds a document over `root`. Every component gets a CP-net
  /// variable with a default unconditional preference (domain order —
  /// composites prefer presented, primitives prefer their first listed
  /// option). Author preferences are then refined via SetParentsByName /
  /// SetPreferenceByName. Fails if component names are not unique.
  static Result<MultimediaDocument> Create(
      std::unique_ptr<MultimediaComponent> root);

  MultimediaDocument(MultimediaDocument&&) = default;
  MultimediaDocument& operator=(MultimediaDocument&&) = default;

  /// Accessor to the component tree (paper: getContent).
  const MultimediaComponent& Content() const { return *root_; }

  /// Components in depth-first order; index = CP-net variable id.
  const std::vector<const MultimediaComponent*>& components() const {
    return flat_;
  }
  size_t num_components() const { return flat_.size(); }

  Result<cpnet::VarId> VarOf(const std::string& component_name) const;
  Result<const MultimediaComponent*> Find(
      const std::string& component_name) const;

  /// Component behind a bound variable id, without a name lookup.
  /// Precondition: 0 <= var < num_components().
  const MultimediaComponent* ComponentAt(cpnet::VarId var) const {
    return flat_[static_cast<size_t>(var)];
  }

  /// Counter bumped every time the component tree is (re)bound to the
  /// CP-net (Create/Decode/AddComponent/RemoveComponent). Caches holding
  /// pointers into the tree use it to detect staleness.
  uint64_t structure_version() const { return structure_version_; }

  const cpnet::CpNet& net() const { return net_; }

  /// --- Author preference elicitation (done off-line, once, by the
  /// document authors) ---

  /// Declares that the preferences over `component`'s presentations
  /// depend on the presentations of `parents` (the CP-net arc set
  /// Pi(component)). Resets previously set rankings of `component`.
  Status SetParentsByName(const std::string& component,
                          const std::vector<std::string>& parents);

  /// Sets the preference ranking of `component` for one assignment of
  /// its parents, all by name.
  Status SetPreferenceByName(const std::string& component,
                             const std::vector<std::string>& parent_values,
                             const std::vector<std::string>& ranking);

  /// Sets the same ranking for every parent assignment.
  Status SetUnconditionalPreferenceByName(
      const std::string& component, const std::vector<std::string>& ranking);

  /// Revalidates the CP-net after elicitation; must be called (and
  /// succeed) before the query methods.
  Status Finalize();

  /// --- Presentation queries ---

  /// Optimal presentation with no viewer choices (paper:
  /// defaultPresentation, delegated to the CP-net).
  Result<cpnet::Assignment> DefaultPresentation() const;

  /// Optimal presentation given the viewers' recent choices (paper:
  /// reconfigPresentation(eventList)). Later choices on the same
  /// component win; released choices are dropped.
  Result<cpnet::Assignment> ReconfigPresentation(
      const std::vector<ViewerChoice>& events) const;

  /// Converts choice events to the CP-net evidence they pin.
  Result<cpnet::Assignment> EvidenceFrom(
      const std::vector<ViewerChoice>& events) const;

  /// Presentation option a configuration selects for a primitive
  /// component; composites report a pseudo-presentation (kImage-less
  /// "presented" or kHidden).
  Result<MMPresentation> PresentationFor(
      const cpnet::Assignment& configuration,
      const std::string& component_name) const;

  /// True when the component and all its ancestors are shown under
  /// `configuration` (a composite hides its whole subtree).
  Result<bool> IsVisible(const cpnet::Assignment& configuration,
                         const std::string& component_name) const;

  /// Visibility of *every* component under `configuration` in a single
  /// pre-order pass (components precede their children in flat order, so
  /// each entry reuses its parent's answer instead of re-walking the
  /// ancestor chain). `(*visible)[i]` matches IsVisible for component i;
  /// the vector is resized to num_components(). This is the hot-path
  /// bulk form the prefetch ranker and the room presentation cache use.
  Status ComputeVisibility(const cpnet::Assignment& configuration,
                           std::vector<char>* visible) const;

  /// Total bytes needed to deliver the visible content of
  /// `configuration` (the Section 4.4 cost model).
  Result<size_t> DeliveryCostBytes(
      const cpnet::Assignment& configuration) const;

  /// What changed between two configurations, from the delivery
  /// perspective: the components whose presentation differs, and the
  /// bytes needed to redisplay the ones now visible ("the hierarchical
  /// structure of the object permits sending only the relevant parts of
  /// the object for redisplay"). `before` may be shorter than `after`
  /// when extension variables were added in between; components beyond
  /// `before` count as changed.
  struct ConfigurationDelta {
    std::vector<std::string> changed_components;
    /// Variable ids of changed_components, same order — lets callers on
    /// the propagation hot path skip the string lookups.
    std::vector<cpnet::VarId> changed_vars;
    size_t redisplay_cost_bytes = 0;
  };
  Result<ConfigurationDelta> DiffConfigurations(
      const cpnet::Assignment& before, const cpnet::Assignment& after) const;

  /// Section 4.2 "Adding a component": appends `component` as the last
  /// child of the named composite. The new component receives the
  /// default unconditional preference over its presentations (the
  /// paper's "simple yet reasonable" policy — the author never ranked
  /// it); every existing preference, operation variable, and tuning
  /// variable is preserved. Component variable ids are re-bound
  /// (pre-order), so external ViewerOverlays must be rebuilt afterwards.
  /// Returns the new component's variable id.
  Result<cpnet::VarId> AddComponent(
      const std::string& parent_composite,
      std::unique_ptr<PrimitiveMultimediaComponent> component);

  /// Section 4.2 "Removing a component": removes the named primitive
  /// component (the root and non-empty composites cannot be removed).
  /// Components whose preferences conditioned on it keep only the rows
  /// where it took its hidden presentation (or its first option when it
  /// has none) — the removed component is absent, so conditional
  /// preferences restrict to that context. Variable ids are re-bound.
  Status RemoveComponent(const std::string& component_name);

  /// Online update of Section 4.2: after a viewer performs `op_name`
  /// (e.g. "CT.segmentation") on `component` while it presented as
  /// `trigger_presentation`, appends a derived operation variable to the
  /// CP-net preferring the applied form exactly when the component
  /// presents at the trigger value. The new variable is NOT a component
  /// (components() is unchanged); configurations simply grow by one
  /// variable. Returns the new variable id.
  Result<cpnet::VarId> AddOperationVariable(
      const std::string& component, const std::string& trigger_presentation,
      const std::string& op_name);

  /// Number of CP-net variables (components + operation variables).
  size_t num_variables() const { return net_.num_variables(); }

  /// Serialization for BLOB storage (tree + CP-net text).
  Bytes Encode() const;
  static Result<MultimediaDocument> Decode(const Bytes& bytes);

 private:
  MultimediaDocument() = default;

  Status BindTree();

  // The Section 4.4 tuning extension rewires CPTs of heavy components in
  // place; it preserves the component-variable binding (ids and domains
  // unchanged), which is the invariant this class protects.
  friend Result<cpnet::VarId> AddBandwidthTuning(
      MultimediaDocument& document, const std::string& tuning_name);

  std::unique_ptr<MultimediaComponent> root_;
  std::vector<const MultimediaComponent*> flat_;
  std::vector<int> parent_index_;  ///< flat index of parent, -1 for root
  std::map<std::string, cpnet::VarId> by_name_;
  cpnet::CpNet net_;
  uint64_t structure_version_ = 0;
};

}  // namespace mmconf::doc

#endif  // MMCONF_DOC_DOCUMENT_H_
