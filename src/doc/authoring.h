#ifndef MMCONF_DOC_AUTHORING_H_
#define MMCONF_DOC_AUTHORING_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "cpnet/cpnet.h"
#include "doc/document.h"

namespace mmconf::doc {

/// Severity of an authoring finding.
enum class LintSeverity : int {
  kInfo = 0,
  kWarning = 1,
  kError = 2,
};

const char* LintSeverityToString(LintSeverity severity);

/// One finding of the authoring linter.
struct LintFinding {
  LintSeverity severity = LintSeverity::kInfo;
  std::string component;  ///< variable the finding concerns ("" = global)
  std::string message;
};

/// Result of linting a document's preference specification.
struct AuthoringReport {
  std::vector<LintFinding> findings;

  bool HasErrors() const;
  size_t CountAtLeast(LintSeverity severity) const;
  std::string ToString() const;
};

/// Static analysis of an authored preference model — the "advanced
/// authoring tool" the paper lists as future work. Checks, per component:
///
///  - *unreachable presentations* (warning): a presentation option that is
///    not top-ranked in any CPT row can never be chosen by the optimizer;
///    only an explicit viewer choice surfaces it. Often an authoring
///    oversight.
///  - *effectively hidden* (warning): "hidden" tops every row — the
///    component can never appear without viewer intervention, which
///    contradicts including it in the document.
///  - *CPT blow-up* (warning): more than `max_rows` parent contexts; the
///    elicitation burden grows multiplicatively with parents.
///  - *constant rankings* (info): every row carries the same ranking —
///    the declared parents are preferentially irrelevant and could be
///    dropped (cheaper reconfiguration).
///
/// The document must be finalized (errors otherwise).
Result<AuthoringReport> LintDocument(const MultimediaDocument& document,
                                     size_t max_rows = 64);

/// Elicitation helper for incremental authoring: rows of `var` that still
/// lack a ranking, rendered with parent value names (e.g.
/// "CT=flat, XRay=hidden"). Empty when the CPT is complete.
std::vector<std::string> DescribeMissingRows(const cpnet::CpNet& net,
                                             cpnet::VarId var);

}  // namespace mmconf::doc

#endif  // MMCONF_DOC_AUTHORING_H_
