#ifndef MMCONF_DOC_BUILDER_H_
#define MMCONF_DOC_BUILDER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "cpnet/cpnet.h"
#include "doc/document.h"

namespace mmconf::doc {

/// Convenience tree builder for documents.
class TreeBuilder {
 public:
  explicit TreeBuilder(std::string root_name);

  /// Adds a composite under `parent` (by name). Returns *this for
  /// chaining; errors are deferred and reported by Build().
  TreeBuilder& Group(const std::string& parent, const std::string& name);

  /// Adds a primitive leaf under `parent`.
  TreeBuilder& Leaf(const std::string& parent, const std::string& name,
                    ContentRef content,
                    std::vector<MMPresentation> presentations);

  /// Finishes the tree and creates the document (with default
  /// preferences; refine via the document's elicitation API).
  Result<MultimediaDocument> Build();

 private:
  CompositeMultimediaComponent* FindComposite(const std::string& name,
                                              MultimediaComponent* node);

  std::unique_ptr<CompositeMultimediaComponent> root_;
  Status deferred_error_;
};

/// Standard presentation domains.
std::vector<MMPresentation> ImagePresentations();  ///< flat/segmented/thumb/icon/hidden
std::vector<MMPresentation> AudioPresentations();  ///< audio/summary/hidden
std::vector<MMPresentation> TextPresentations();   ///< text/hidden

/// The running example of the paper: a patient medical record with CT and
/// X-ray images, test results, voice fragments and notes, organized
/// hierarchically, with the author preferences of Section 4 ("the author
/// of the document may prefer to present a CT image together with a voice
/// fragment of expertise... if a CT image is presented, then a correlated
/// X-ray image is preferred by the author to be hidden, or to be
/// presented as a small icon"). `content_bytes_scale` scales the content
/// sizes used by the delivery cost model.
Result<MultimediaDocument> MakeMedicalRecordDocument(
    size_t content_bytes_scale = 1);

/// The exact worked CP-net of the paper's Figure 2: five binary variables
/// c1..c5 with
///   c1: c1^1 > c1^2            (unconditional)
///   c2: c2^2 > c2^1            (unconditional)
///   c3 <- {c1, c2}: agree -> c3^1 > c3^2 ; disagree -> c3^2 > c3^1
///   c4 <- {c3}: c3^1 -> c4^1 > c4^2 ; c3^2 -> c4^2 > c4^1
///   c5 <- {c3}: c3^1 -> c5^1 > c5^2 ; c3^2 -> c5^2 > c5^1
/// Value index 0 is the superscript-1 value.
cpnet::CpNet MakePaperFigure2Net();

/// Random acyclic CP-net generator for property tests and scaling
/// benches: `num_vars` variables with domains of 2..max_domain values,
/// each with up to `max_parents` parents drawn from earlier variables,
/// and random complete CPTs. The result is validated.
cpnet::CpNet MakeRandomCpNet(int num_vars, int max_parents, int max_domain,
                             Rng& rng);

/// Random document generator: a tree of `num_leaves` primitives under
/// `num_groups` composites with random conditional author preferences —
/// workload for the presentation/prefetch benches.
Result<MultimediaDocument> MakeRandomDocument(int num_groups, int num_leaves,
                                              Rng& rng);

}  // namespace mmconf::doc

#endif  // MMCONF_DOC_BUILDER_H_
