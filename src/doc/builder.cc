#include "doc/builder.h"

#include <algorithm>

namespace mmconf::doc {

using cpnet::CpNet;
using cpnet::PreferenceRanking;
using cpnet::ValueId;
using cpnet::VarId;

TreeBuilder::TreeBuilder(std::string root_name)
    : root_(std::make_unique<CompositeMultimediaComponent>(
          std::move(root_name))) {}

CompositeMultimediaComponent* TreeBuilder::FindComposite(
    const std::string& name, MultimediaComponent* node) {
  if (node == nullptr || !node->IsComposite()) return nullptr;
  auto* composite = static_cast<CompositeMultimediaComponent*>(node);
  if (composite->name() == name) return composite;
  for (const auto& child : composite->children()) {
    if (CompositeMultimediaComponent* found =
            FindComposite(name, child.get())) {
      return found;
    }
  }
  return nullptr;
}

TreeBuilder& TreeBuilder::Group(const std::string& parent,
                                const std::string& name) {
  if (!deferred_error_.ok()) return *this;
  CompositeMultimediaComponent* target = FindComposite(parent, root_.get());
  if (target == nullptr) {
    deferred_error_ =
        Status::NotFound("no composite named \"" + parent + "\"");
    return *this;
  }
  target->AddChild(std::make_unique<CompositeMultimediaComponent>(name));
  return *this;
}

TreeBuilder& TreeBuilder::Leaf(const std::string& parent,
                               const std::string& name, ContentRef content,
                               std::vector<MMPresentation> presentations) {
  if (!deferred_error_.ok()) return *this;
  CompositeMultimediaComponent* target = FindComposite(parent, root_.get());
  if (target == nullptr) {
    deferred_error_ =
        Status::NotFound("no composite named \"" + parent + "\"");
    return *this;
  }
  target->AddChild(std::make_unique<PrimitiveMultimediaComponent>(
      name, std::move(content), std::move(presentations)));
  return *this;
}

Result<MultimediaDocument> TreeBuilder::Build() {
  MMCONF_RETURN_IF_ERROR(deferred_error_);
  return MultimediaDocument::Create(std::move(root_));
}

std::vector<MMPresentation> ImagePresentations() {
  return {
      {"flat", PresentationKind::kImage, 0},
      {"segmented", PresentationKind::kSegmentedImage, 0},
      {"thumbnail", PresentationKind::kThumbnail, 2},
      {"icon", PresentationKind::kIcon, 0},
      {"hidden", PresentationKind::kHidden, 0},
  };
}

std::vector<MMPresentation> AudioPresentations() {
  return {
      {"audio", PresentationKind::kAudio, 0},
      {"summary", PresentationKind::kAudioSummary, 0},
      {"hidden", PresentationKind::kHidden, 0},
  };
}

std::vector<MMPresentation> TextPresentations() {
  return {
      {"text", PresentationKind::kText, 0},
      {"hidden", PresentationKind::kHidden, 0},
  };
}

Result<MultimediaDocument> MakeMedicalRecordDocument(
    size_t content_bytes_scale) {
  const size_t kImageBytes = 262144 * content_bytes_scale;
  const size_t kAudioBytes = 96000 * content_bytes_scale;
  const size_t kTextBytes = 2048 * content_bytes_scale;

  TreeBuilder builder("MedicalRecord");
  builder.Group("MedicalRecord", "Imaging")
      .Leaf("Imaging", "CT", {"Image", 1, kImageBytes},
            ImagePresentations())
      .Leaf("Imaging", "XRay", {"Image", 2, kImageBytes},
            ImagePresentations())
      .Group("MedicalRecord", "Consultations")
      .Leaf("Consultations", "ExpertVoice", {"Audio", 1, kAudioBytes},
            AudioPresentations())
      .Leaf("Consultations", "WardNotes", {"Text", 1, kTextBytes},
            TextPresentations())
      .Group("MedicalRecord", "Labs")
      .Leaf("Labs", "TestResults", {"Text", 2, kTextBytes},
            TextPresentations())
      .Leaf("Labs", "TrendGraph", {"Image", 3, kImageBytes / 4},
            ImagePresentations());
  MMCONF_ASSIGN_OR_RETURN(MultimediaDocument document, builder.Build());

  // Author preferences (Section 4 running example).
  // The CT is the centerpiece: prefer it flat, then segmented.
  MMCONF_RETURN_IF_ERROR(document.SetUnconditionalPreferenceByName(
      "CT", {"flat", "segmented", "thumbnail", "icon", "hidden"}));
  // "if a CT image is presented, then a correlated X-ray image is
  // preferred by the author to be hidden, or to be presented as a small
  // icon."
  MMCONF_RETURN_IF_ERROR(document.SetParentsByName("XRay", {"CT"}));
  for (const char* ct_shown : {"flat", "segmented", "thumbnail"}) {
    MMCONF_RETURN_IF_ERROR(document.SetPreferenceByName(
        "XRay", {ct_shown},
        {"hidden", "icon", "thumbnail", "flat", "segmented"}));
  }
  for (const char* ct_absent : {"icon", "hidden"}) {
    MMCONF_RETURN_IF_ERROR(document.SetPreferenceByName(
        "XRay", {ct_absent},
        {"flat", "segmented", "thumbnail", "icon", "hidden"}));
  }
  // "the author of the document may prefer to present a CT image together
  // with a voice fragment of expertise": voice follows the CT.
  MMCONF_RETURN_IF_ERROR(document.SetParentsByName("ExpertVoice", {"CT"}));
  for (const char* ct_shown : {"flat", "segmented", "thumbnail"}) {
    MMCONF_RETURN_IF_ERROR(document.SetPreferenceByName(
        "ExpertVoice", {ct_shown}, {"audio", "summary", "hidden"}));
  }
  for (const char* ct_absent : {"icon", "hidden"}) {
    MMCONF_RETURN_IF_ERROR(document.SetPreferenceByName(
        "ExpertVoice", {ct_absent}, {"summary", "hidden", "audio"}));
  }
  // The trend graph accompanies the test results.
  MMCONF_RETURN_IF_ERROR(
      document.SetParentsByName("TrendGraph", {"TestResults"}));
  MMCONF_RETURN_IF_ERROR(document.SetPreferenceByName(
      "TrendGraph", {"text"},
      {"flat", "thumbnail", "segmented", "icon", "hidden"}));
  MMCONF_RETURN_IF_ERROR(document.SetPreferenceByName(
      "TrendGraph", {"hidden"},
      {"hidden", "icon", "thumbnail", "flat", "segmented"}));
  MMCONF_RETURN_IF_ERROR(document.Finalize());
  return document;
}

CpNet MakePaperFigure2Net() {
  CpNet net;
  VarId c1 = net.AddVariable("c1", {"c1_1", "c1_2"});
  VarId c2 = net.AddVariable("c2", {"c2_1", "c2_2"});
  VarId c3 = net.AddVariable("c3", {"c3_1", "c3_2"});
  VarId c4 = net.AddVariable("c4", {"c4_1", "c4_2"});
  VarId c5 = net.AddVariable("c5", {"c5_1", "c5_2"});
  net.SetUnconditionalPreference(c1, {0, 1}).ok();
  net.SetUnconditionalPreference(c2, {1, 0}).ok();
  net.SetParents(c3, {c1, c2}).ok();
  // (c1_1 ^ c2_1) v (c1_2 ^ c2_2) : c3_1 > c3_2
  net.SetPreference(c3, {0, 0}, {0, 1}).ok();
  net.SetPreference(c3, {1, 1}, {0, 1}).ok();
  // (c1_1 ^ c2_2) v (c1_2 ^ c2_1) : c3_2 > c3_1
  net.SetPreference(c3, {0, 1}, {1, 0}).ok();
  net.SetPreference(c3, {1, 0}, {1, 0}).ok();
  net.SetParents(c4, {c3}).ok();
  net.SetPreference(c4, {0}, {0, 1}).ok();
  net.SetPreference(c4, {1}, {1, 0}).ok();
  net.SetParents(c5, {c3}).ok();
  net.SetPreference(c5, {0}, {0, 1}).ok();
  net.SetPreference(c5, {1}, {1, 0}).ok();
  net.Validate().ok();
  return net;
}

CpNet MakeRandomCpNet(int num_vars, int max_parents, int max_domain,
                      Rng& rng) {
  CpNet net;
  for (int v = 0; v < num_vars; ++v) {
    int domain = static_cast<int>(rng.UniformInt(2, std::max(2, max_domain)));
    std::vector<std::string> values;
    for (int k = 0; k < domain; ++k) {
      values.push_back("v" + std::to_string(v) + "_" + std::to_string(k));
    }
    net.AddVariable("x" + std::to_string(v), std::move(values));
  }
  for (int v = 1; v < num_vars; ++v) {
    int parents = static_cast<int>(
        rng.UniformInt(0, std::min(v, std::max(0, max_parents))));
    std::vector<VarId> chosen;
    std::vector<VarId> pool;
    for (int p = 0; p < v; ++p) pool.push_back(p);
    rng.Shuffle(pool);
    chosen.assign(pool.begin(), pool.begin() + parents);
    net.SetParents(v, chosen).ok();
  }
  for (int v = 0; v < num_vars; ++v) {
    const cpnet::Cpt& cpt = net.CptOf(v);
    int domain = net.DomainSize(v);
    for (size_t row = 0; row < cpt.num_rows(); ++row) {
      PreferenceRanking ranking(static_cast<size_t>(domain));
      for (int k = 0; k < domain; ++k) {
        ranking[static_cast<size_t>(k)] = k;
      }
      rng.Shuffle(ranking);
      net.SetPreference(v, cpt.RowValues(row), std::move(ranking)).ok();
    }
  }
  net.Validate().ok();
  return net;
}

Result<MultimediaDocument> MakeRandomDocument(int num_groups, int num_leaves,
                                              Rng& rng) {
  TreeBuilder builder("Root");
  std::vector<std::string> groups = {"Root"};
  for (int g = 0; g < num_groups; ++g) {
    std::string name = "Group" + std::to_string(g);
    builder.Group(groups[rng.NextBelow(groups.size())], name);
    groups.push_back(name);
  }
  for (int leaf = 0; leaf < num_leaves; ++leaf) {
    std::string name = "Leaf" + std::to_string(leaf);
    std::vector<MMPresentation> presentations;
    switch (rng.NextBelow(3)) {
      case 0:
        presentations = ImagePresentations();
        break;
      case 1:
        presentations = AudioPresentations();
        break;
      default:
        presentations = TextPresentations();
        break;
    }
    ContentRef content{"Image", static_cast<uint64_t>(leaf + 1),
                       static_cast<size_t>(rng.UniformInt(4096, 524288))};
    builder.Leaf(groups[rng.NextBelow(groups.size())], name,
                 std::move(content), std::move(presentations));
  }
  MMCONF_ASSIGN_OR_RETURN(MultimediaDocument document, builder.Build());

  // Random conditional author preferences: each leaf may depend on one
  // earlier leaf.
  const auto& components = document.components();
  std::vector<std::string> leaf_names;
  for (const MultimediaComponent* component : components) {
    if (!component->IsComposite()) leaf_names.push_back(component->name());
  }
  for (size_t i = 1; i < leaf_names.size(); ++i) {
    if (!rng.Chance(0.5)) continue;
    const std::string& child = leaf_names[i];
    const std::string& parent = leaf_names[rng.NextBelow(i)];
    MMCONF_RETURN_IF_ERROR(document.SetParentsByName(child, {parent}));
    MMCONF_ASSIGN_OR_RETURN(const MultimediaComponent* parent_component,
                            document.Find(parent));
    MMCONF_ASSIGN_OR_RETURN(const MultimediaComponent* child_component,
                            document.Find(child));
    std::vector<std::string> child_domain =
        child_component->DomainValueNames();
    for (const std::string& parent_value :
         parent_component->DomainValueNames()) {
      std::vector<std::string> ranking = child_domain;
      rng.Shuffle(ranking);
      MMCONF_RETURN_IF_ERROR(
          document.SetPreferenceByName(child, {parent_value}, ranking));
    }
  }
  MMCONF_RETURN_IF_ERROR(document.Finalize());
  return document;
}

}  // namespace mmconf::doc
