#include "doc/authoring.h"

#include <algorithm>
#include <set>

namespace mmconf::doc {

using cpnet::Cpt;
using cpnet::PreferenceRanking;
using cpnet::ValueId;
using cpnet::VarId;

const char* LintSeverityToString(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kInfo:
      return "info";
    case LintSeverity::kWarning:
      return "warning";
    case LintSeverity::kError:
      return "error";
  }
  return "unknown";
}

bool AuthoringReport::HasErrors() const {
  return std::any_of(findings.begin(), findings.end(),
                     [](const LintFinding& finding) {
                       return finding.severity == LintSeverity::kError;
                     });
}

size_t AuthoringReport::CountAtLeast(LintSeverity severity) const {
  return static_cast<size_t>(std::count_if(
      findings.begin(), findings.end(), [&](const LintFinding& finding) {
        return static_cast<int>(finding.severity) >=
               static_cast<int>(severity);
      }));
}

std::string AuthoringReport::ToString() const {
  std::string out;
  for (const LintFinding& finding : findings) {
    out += LintSeverityToString(finding.severity);
    out += ": ";
    if (!finding.component.empty()) {
      out += finding.component;
      out += ": ";
    }
    out += finding.message;
    out += '\n';
  }
  return out;
}

Result<AuthoringReport> LintDocument(const MultimediaDocument& document,
                                     size_t max_rows) {
  const cpnet::CpNet& net = document.net();
  if (!net.validated()) {
    return Status::FailedPrecondition(
        "document must be finalized before linting");
  }
  AuthoringReport report;
  for (size_t i = 0; i < document.num_components(); ++i) {
    const MultimediaComponent* component = document.components()[i];
    VarId var = static_cast<VarId>(i);
    const Cpt& cpt = net.CptOf(var);
    const std::vector<std::string>& value_names = net.ValueNames(var);

    // Which values ever top a row? Is any ranking distinct?
    std::set<ValueId> top_values;
    bool all_rows_equal = true;
    PreferenceRanking first_ranking;
    for (size_t row = 0; row < cpt.num_rows(); ++row) {
      MMCONF_ASSIGN_OR_RETURN(PreferenceRanking ranking, cpt.Ranking(row));
      top_values.insert(ranking.front());
      if (row == 0) {
        first_ranking = ranking;
      } else if (ranking != first_ranking) {
        all_rows_equal = false;
      }
    }

    for (size_t v = 0; v < value_names.size(); ++v) {
      if (top_values.count(static_cast<ValueId>(v)) == 0) {
        report.findings.push_back(
            {LintSeverity::kWarning, component->name(),
             "presentation \"" + value_names[v] +
                 "\" is never optimal in any context; only an explicit "
                 "viewer choice can surface it"});
      }
    }

    // Effectively hidden: the hidden value tops every row.
    const PrimitiveMultimediaComponent* primitive = component->AsPrimitive();
    if (primitive != nullptr) {
      int hidden_value = -1;
      for (size_t v = 0; v < primitive->presentations().size(); ++v) {
        if (primitive->presentations()[v].kind == PresentationKind::kHidden) {
          hidden_value = static_cast<int>(v);
        }
      }
      if (hidden_value >= 0 && top_values.size() == 1 &&
          *top_values.begin() == hidden_value) {
        report.findings.push_back(
            {LintSeverity::kWarning, component->name(),
             "\"hidden\" tops every parent context; the component never "
             "appears without viewer intervention"});
      }
    }

    if (cpt.num_rows() > max_rows) {
      report.findings.push_back(
          {LintSeverity::kWarning, component->name(),
           "CPT has " + std::to_string(cpt.num_rows()) +
               " parent contexts (> " + std::to_string(max_rows) +
               "); consider fewer preference parents"});
    }

    if (all_rows_equal && !net.Parents(var).empty()) {
      report.findings.push_back(
          {LintSeverity::kInfo, component->name(),
           "every parent context carries the same ranking; the declared "
           "parents are preferentially irrelevant"});
    }
  }
  return report;
}

std::vector<std::string> DescribeMissingRows(const cpnet::CpNet& net,
                                             VarId var) {
  std::vector<std::string> out;
  const Cpt& cpt = net.CptOf(var);
  const std::vector<VarId>& parents = net.Parents(var);
  for (size_t row : cpt.MissingRows()) {
    std::vector<ValueId> values = cpt.RowValues(row);
    std::string description;
    for (size_t i = 0; i < parents.size(); ++i) {
      if (i > 0) description += ", ";
      description += net.VariableName(parents[i]);
      description += '=';
      description +=
          net.ValueNames(parents[i])[static_cast<size_t>(values[i])];
    }
    if (description.empty()) description = "(unconditional)";
    out.push_back(std::move(description));
  }
  return out;
}

}  // namespace mmconf::doc
